/**
 * @file
 * Shared infrastructure for the figure-reproduction harnesses: sweep a
 * workload over (STM kind x metadata tier x tasklet count x seeds) and
 * print the throughput / abort-rate / time-breakdown series that
 * correspond to the paper's plots.
 *
 * Every bench binary accepts:
 *   --quick        smaller workloads (default when PIMSTM_FULL unset)
 *   --full         paper-scale workloads
 *   --csv          machine-readable output
 *   --seeds=N      number of seeds to average (default 3)
 *   --jobs=N       host threads for the sweep (default: PIMSTM_JOBS
 *                  env var, else all hardware threads); results are
 *                  bitwise identical for every N
 *   --perf-json=F  write a host-performance artifact (wall-clock and
 *                  simulated cycles/sec per sweep point) to F on exit;
 *                  never affects the simulated output
 *   --faults=SPEC  deterministic fault-injection plan (grammar in
 *                  docs/robustness.md); default empty = no injection
 *                  and bitwise-identical output
 *   --watchdog-cycles=N  abort with a diagnostic dump and exit code 3
 *                  when no transaction commits for N simulated cycles
 *                  (0 = off; deadlock detection is always on)
 *   --serial-fallback=K  escalate a transaction to serial-irrevocable
 *                  mode after K consecutive aborts (0 = off, the
 *                  paper's behaviour)
 *   --durable=on|off  durable transactions (docs/durability.md):
 *                  commits are persistently logged at the MRAM persist
 *                  boundary and whole-DPU crashes (`dpu-crash=` fault
 *                  plans) are recovered and the run restarted; off
 *                  (default) is bitwise identical to builds without
 *                  the subsystem
 *   --trace        record per-run transaction/scheduler traces and
 *                  export the aggregate `trace` block in --perf-json;
 *                  host-only, simulated output is bitwise unchanged
 *   --trace-out=F  stream every traced run to F in Chrome/Perfetto
 *                  JSON array format (implies --trace)
 *   --trace-buf=N  per-run trace ring capacity in records
 *                  (default 4096; aggregates are unaffected by drops)
 *
 * The full flag/env-var reference lives in README.md §"Command-line
 * flags and environment variables"; the trace format and perf-json
 * schema are specified in docs/observability.md.
 *
 * Unknown --flags are rejected with exit code 2.
 */

#ifndef PIMSTM_BENCH_COMMON_HH
#define PIMSTM_BENCH_COMMON_HH

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/dpu_pool.hh"
#include "runtime/driver.hh"
#include "runtime/shared_array.hh"
#include "sim/fault.hh"
#include "util/logging.hh"
#include "util/stats_math.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace pimstm::bench
{

/** Peak resident set size of this process in KB (VmHWM), or 0 when
 * /proc is unavailable. Host-side observability for --perf-json. */
inline u64
peakRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            u64 kb = 0;
            std::sscanf(line.c_str(), "VmHWM: %llu",
                        reinterpret_cast<unsigned long long *>(&kb));
            return kb;
        }
    }
    return 0;
}

/**
 * One timed unit of host work for the perf artifact: a sweep point of
 * a figure harness, or a micro_sched scenario. Wall-clock is host time
 * and therefore machine-dependent and non-deterministic — it is only
 * ever written to the perf JSON, never to the simulated CSV output.
 */
struct PerfRecord
{
    std::string bench; ///< harness name (argv[0] basename)
    std::string label; ///< sweep point / scenario label
    double wall_s = 0; ///< host seconds spent on this unit
    double sim_cycles = 0;  ///< simulated cycles produced
    u64 sched_switches = 0; ///< fiber switches performed
    u64 sched_elisions = 0; ///< switches elided by the scheduler
};

/**
 * Collector behind --perf-json=FILE: sweep points record their
 * wall-clock and simulated-cycle throughput as they finish (from any
 * pool thread), and the file is written once at process exit. CI
 * uploads it as the non-gating BENCH_sim.json artifact, so the
 * simulator's host-performance trajectory is tracked per commit.
 */
class PerfReporter
{
  public:
    static PerfReporter &
    instance()
    {
        static PerfReporter r;
        return r;
    }

    void
    enable(std::string path, std::string bench)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        path_ = std::move(path);
        bench_ = std::move(bench);
        if (!registered_) {
            registered_ = true;
            std::atexit([] { PerfReporter::instance().write(); });
        }
    }

    bool
    enabled() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return !path_.empty();
    }

    void
    record(PerfRecord r)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (path_.empty())
            return;
        if (r.bench.empty())
            r.bench = bench_;
        records_.push_back(std::move(r));
    }

    /** Attach a named top-level JSON block (@p json must be one JSON
     * value, e.g. the `distributed` object from twoPcStatsJson).
     * Written once, between the trace block and the totals; unknown
     * blocks are ignored by scripts/check_perf_json.py's gate. */
    void
    setExtraBlock(const std::string &name, std::string json)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        extra_blocks_[name] = std::move(json);
    }

    /** Write the JSON artifact; called automatically at exit. */
    void
    write()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (path_.empty())
            return;
        std::ofstream out(path_);
        if (!out) {
            std::cerr << "perf-json: cannot write " << path_ << "\n";
            return;
        }
        out.precision(17); // simulated-cycle fields must round-trip
        double wall = 0, cycles = 0;
        u64 switches = 0, elisions = 0;
        for (const auto &r : records_) {
            wall += r.wall_s;
            cycles += r.sim_cycles;
            switches += r.sched_switches;
            elisions += r.sched_elisions;
        }
        const auto pool = runtime::DpuPool::global().stats();
        const auto idx = core::txIndexTotals();
        const auto flt = sim::faultTotals();
        const auto trc = core::traceTotals();
        out << "{\n  \"bench\": \"" << escape(bench_) << "\",\n"
            << "  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"host\": {"
            << "\"peak_rss_kb\": " << peakRssKb()
            << ", \"dpu_pool_hits\": " << pool.hits
            << ", \"dpu_pool_misses\": " << pool.misses
            << ", \"dpu_pool_discards\": " << pool.discards
            << ", \"txindex_lookups\": " << idx.lookups
            << ", \"txindex_probes\": " << idx.probes
            << ", \"txindex_inserts\": " << idx.inserts
            << ", \"txindex_avg_probe\": "
            << (idx.lookups > 0
                    ? static_cast<double>(idx.probes) /
                          static_cast<double>(idx.lookups)
                    : 0)
            << ", \"txindex_max_probe\": " << idx.max_probe
            << ", \"faults\": {"
            << "\"injected_stalls\": " << flt.injected_stalls
            << ", \"injected_acq_delays\": " << flt.injected_acq_delays
            << ", \"tasklet_crashes\": " << flt.tasklet_crashes
            << ", \"injected_aborts\": " << flt.injected_aborts
            << ", \"escalations\": " << flt.escalations
            << ", \"serial_commits\": " << flt.serial_commits << "}},\n";
        if (trc.runs > 0)
            writeTraceBlock(out, trc);
        const auto bst = core::boostedTotals();
        if (bst.acquires != 0 || bst.waits != 0 ||
            bst.semantic_undos != 0) {
            out << "  \"boosted\": {\"acquires\": " << bst.acquires
                << ", \"waits\": " << bst.waits
                << ", \"semantic_undos\": " << bst.semantic_undos
                << ", \"false_conflicts_avoided\": "
                << bst.false_conflicts_avoided << "},\n";
        }
        const auto dur = core::durableTotals();
        if (dur.flush_fences != 0 || dur.recoveries != 0 ||
            dur.log_appends != 0) {
            out << "  \"durable\": {\"log_bytes\": " << dur.log_bytes
                << ", \"log_appends\": " << dur.log_appends
                << ", \"flush_fences\": " << dur.flush_fences
                << ", \"durable_commits\": " << dur.durable_commits
                << ", \"recoveries\": " << dur.recoveries
                << ", \"log_redone\": " << dur.log_redone
                << ", \"log_undone\": " << dur.log_undone
                << ", \"log_discarded\": " << dur.log_discarded
                << ", \"torn_logs\": " << dur.torn_logs << "},\n";
        }
        for (const auto &[name, json] : extra_blocks_)
            out << "  \"" << escape(name) << "\": " << json << ",\n";
        out << "  \"totals\": {"
            << "\"wall_s\": " << wall
            << ", \"sim_cycles\": " << cycles
            << ", \"sim_cycles_per_wall_s\": "
            << (wall > 0 ? cycles / wall : 0)
            << ", \"sched_switches\": " << switches
            << ", \"sched_elisions\": " << elisions << "},\n"
            << "  \"points\": [\n";
        for (size_t i = 0; i < records_.size(); ++i) {
            const auto &r = records_[i];
            out << "    {\"bench\": \"" << escape(r.bench)
                << "\", \"label\": \"" << escape(r.label)
                << "\", \"wall_s\": " << r.wall_s
                << ", \"sim_cycles\": " << r.sim_cycles
                << ", \"sim_cycles_per_wall_s\": "
                << (r.wall_s > 0 ? r.sim_cycles / r.wall_s : 0)
                << ", \"sched_switches\": " << r.sched_switches
                << ", \"sched_elisions\": " << r.sched_elisions << "}"
                << (i + 1 < records_.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        path_.clear(); // write once
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    /** One LogHistogram as JSON (nonzero buckets as [low, count]). */
    static void
    writeHistogram(std::ostream &out, const core::LogHistogram &h)
    {
        out << "{\"count\": " << h.count << ", \"sum\": " << h.sum
            << ", \"mean\": " << h.mean()
            << ", \"min\": " << (h.count > 0 ? h.min : 0)
            << ", \"max\": " << h.max << ", \"buckets\": [";
        bool first = true;
        for (size_t b = 0; b < core::LogHistogram::kBuckets; ++b) {
            if (h.buckets[b] == 0)
                continue;
            out << (first ? "" : ", ") << "["
                << core::LogHistogram::bucketLow(b) << ", "
                << h.buckets[b] << "]";
            first = false;
        }
        out << "]}";
    }

    /** The --perf-json `trace` block (schema: docs/observability.md). */
    static void
    writeTraceBlock(std::ostream &out, const core::TraceTotals &trc)
    {
        out << "  \"trace\": {\"runs\": " << trc.runs
            << ", \"dropped\": " << trc.dropped << ",\n    \"events\": {";
        for (size_t e = 0; e < core::kNumTxEvents; ++e) {
            out << (e ? ", " : "") << "\""
                << core::txEventName(static_cast<core::TxEvent>(e))
                << "\": " << trc.events[e];
        }
        out << "},\n    \"aborts_by_reason\": {";
        for (size_t r = 0; r < core::kNumAbortReasons; ++r) {
            out << (r ? ", " : "") << "\""
                << core::abortReasonName(static_cast<core::AbortReason>(r))
                << "\": " << trc.aborts_by_reason[r];
        }
        out << "},\n    \"aborts_by_structure\": {";
        for (size_t s = 0; s < core::kNumStructures; ++s) {
            out << (s ? ", " : "") << "\""
                << core::structureName(static_cast<core::StructureId>(s))
                << "\": " << trc.aborts_by_structure[s];
        }
        out << "},\n    \"tx_latency\": ";
        writeHistogram(out, trc.tx_latency);
        out << ",\n    \"commit_latency\": ";
        writeHistogram(out, trc.commit_latency);
        out << ",\n    \"read_set_size\": ";
        writeHistogram(out, trc.read_set_size);
        out << ",\n    \"write_set_size\": ";
        writeHistogram(out, trc.write_set_size);
        // Heatmap summary: the K hottest locks by cycles burned
        // waiting (ties: aborts caused, then index).
        struct Hot
        {
            u32 index;
            core::LockContention c;
        };
        std::vector<Hot> hot;
        for (u32 i = 0; i < trc.locks.size(); ++i)
            if (trc.locks[i].any())
                hot.push_back({i, trc.locks[i]});
        std::sort(hot.begin(), hot.end(), [](const Hot &a, const Hot &b) {
            if (a.c.wait_cycles != b.c.wait_cycles)
                return a.c.wait_cycles > b.c.wait_cycles;
            if (a.c.aborts_caused != b.c.aborts_caused)
                return a.c.aborts_caused > b.c.aborts_caused;
            return a.index < b.index;
        });
        constexpr size_t kTopLocks = 16;
        out << ",\n    \"locks_tracked\": " << hot.size()
            << ", \"hot_locks\": [";
        for (size_t i = 0; i < hot.size() && i < kTopLocks; ++i) {
            out << (i ? ", " : "") << "{\"lock\": " << hot[i].index
                << ", \"acquires\": " << hot[i].c.acquires
                << ", \"waits\": " << hot[i].c.waits
                << ", \"wait_cycles\": " << hot[i].c.wait_cycles
                << ", \"aborts_caused\": " << hot[i].c.aborts_caused
                << "}";
        }
        out << "]},\n";
    }

    mutable std::mutex mutex_;
    std::string path_;
    std::string bench_;
    std::vector<PerfRecord> records_;
    std::map<std::string, std::string> extra_blocks_;
    bool registered_ = false;
};

/**
 * Collector behind --trace-out=FILE: every traced run is appended as
 * one Perfetto "process" (named after its sweep point) to a single
 * Chrome/Perfetto JSON array file, written incrementally and closed at
 * process exit. Load in https://ui.perfetto.dev or chrome://tracing;
 * format spec in docs/observability.md.
 */
class TraceFileWriter
{
  public:
    static TraceFileWriter &
    instance()
    {
        static TraceFileWriter w;
        return w;
    }

    void
    enable(const std::string &path)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (out_.is_open())
            return;
        out_.open(path);
        if (!out_) {
            std::cerr << "trace-out: cannot write " << path << "\n";
            return;
        }
        out_ << "[\n";
        if (!registered_) {
            registered_ = true;
            std::atexit([] { TraceFileWriter::instance().close(); });
        }
    }

    bool
    enabled() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return out_.is_open();
    }

    /** Append one run's trace as process @p process_name. Safe from
     * pool threads; each buffer is written atomically. */
    void
    add(const core::TraceBuffer &buf, const std::string &process_name)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!out_.is_open())
            return;
        buf.writePerfetto(out_, next_pid_++, process_name, first_);
    }

    /** Write the closing bracket; called automatically at exit. */
    void
    close()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!out_.is_open())
            return;
        out_ << "\n]\n";
        out_.close();
    }

  private:
    mutable std::mutex mutex_;
    std::ofstream out_;
    bool first_ = true;
    u32 next_pid_ = 1;
    bool registered_ = false;
};

/**
 * Contention-knob flags (README §flags), part of the common grammar:
 * BenchOptions::parse consumes them for every harness and
 * BenchOptions::applyTo copies them into the sweep base. tryParse()
 * keeps the ExtraFlag hook shape so a harness with its own parser can
 * reuse it standalone.
 *
 *   --backoff=BASE:SHIFT  post-abort randomized backoff: base window
 *                 in cycles (>= 1) and the doubling cap as a shift
 *                 (window <= BASE << SHIFT). Defaults 16:12.
 *   --cm=POLLS:CYCLES  wait-on-contention manager: polls of a held
 *                 lock before aborting (0 = abort immediately) and the
 *                 per-poll wait in cycles (>= 1). Defaults 0:64.
 *
 * Malformed values print a diagnostic and exit(2), exactly like the
 * common flags. Passing the defaults explicitly is bitwise identical
 * to not passing the flag (CI-gated).
 */
struct KnobFlags
{
    /** @{ --backoff=BASE:SHIFT (set = the flag was given). */
    bool backoff_set = false;
    Cycles backoff_base = 0;
    unsigned backoff_max_shift = 0;
    /** @} */

    /** @{ --cm=POLLS:CYCLES. */
    bool cm_set = false;
    unsigned cm_polls = 0;
    Cycles cm_cycles = 0;
    /** @} */

    /** ExtraFlag hook body: consume --backoff=/--cm= (exit 2 when
     * malformed), return false on anything else. */
    bool
    tryParse(const char *prog, const std::string &a)
    {
        if (a.rfind("--backoff=", 0) == 0) {
            u64 base = 0, shift = 0;
            parsePair(prog, a, "--backoff=", base, shift);
            if (base == 0)
                knobError(prog, a, "BASE must be at least 1");
            if (shift > 32)
                knobError(prog, a, "SHIFT must be at most 32");
            backoff_set = true;
            backoff_base = base;
            backoff_max_shift = static_cast<unsigned>(shift);
            return true;
        }
        if (a.rfind("--cm=", 0) == 0) {
            u64 polls = 0, cycles = 0;
            parsePair(prog, a, "--cm=", polls, cycles);
            if (cycles == 0)
                knobError(prog, a, "CYCLES must be at least 1");
            cm_set = true;
            cm_polls = static_cast<unsigned>(polls);
            cm_cycles = cycles;
            return true;
        }
        return false;
    }

    /** Copy the given knobs into a RunSpec (sweep base config). */
    void
    applyTo(runtime::RunSpec &spec) const
    {
        if (backoff_set) {
            spec.abort_backoff_base_override = backoff_base;
            spec.abort_backoff_max_shift_override =
                static_cast<int>(backoff_max_shift);
        }
        if (cm_set) {
            spec.cm_wait_polls_override = static_cast<int>(cm_polls);
            spec.cm_wait_cycles_override = cm_cycles;
        }
    }

  private:
    [[noreturn]] static void
    knobError(const char *prog, const std::string &arg, const char *why)
    {
        std::cerr << (prog ? prog : "bench") << ": invalid option '"
                  << arg << "': " << why << "\n";
        std::exit(2);
    }

    /** Strict A:B decimal parse of the value after @p prefix. */
    static void
    parsePair(const char *prog, const std::string &arg,
              const char *prefix, u64 &first_out, u64 &second_out)
    {
        const std::string v = arg.substr(std::strlen(prefix));
        const auto colon = v.find(':');
        if (colon == std::string::npos)
            knobError(prog, arg, "expected A:B");
        auto parseOne = [&](const std::string &s, u64 &out) {
            const char *first = s.data();
            const char *last = s.data() + s.size();
            const auto [ptr, ec] = std::from_chars(first, last, out);
            if (s.empty() || ec != std::errc() || ptr != last)
                knobError(prog, arg,
                          "expected an unsigned decimal integer");
        };
        parseOne(v.substr(0, colon), first_out);
        parseOne(v.substr(colon + 1), second_out);
    }
};

/** Command-line options shared by all harnesses. */
struct BenchOptions
{
    bool full = false;
    bool csv = false;
    unsigned seeds = 3;
    /** Host threads for the sweep; 0 = auto (PIMSTM_JOBS / all cores). */
    unsigned jobs = 0;
    /** Perf-artifact output file; empty = disabled. */
    std::string perf_json;
    /** Fault-injection plan from --faults= (empty = no injection). */
    sim::FaultPlan faults;
    /** Livelock watchdog budget from --watchdog-cycles= (0 = off). */
    Cycles watchdog_cycles = 0;
    /** Serial-irrevocable escalation threshold from --serial-fallback=
     * (0 = off, preserving the paper's algorithms unmodified). */
    unsigned serial_fallback = 0;
    /** Route structure operations through the boosted library
     * (--boosting=on|off; RunSpec::boosting, docs/boosting.md). */
    bool boosting = false;
    /** Durable transactions (--durable=on|off; RunSpec::durable,
     * docs/durability.md): persistently logged commits plus the
     * driver's whole-DPU crash-restart loop. */
    bool durable = false;
    /** Record traces (--trace, or implied by --trace-out=). */
    bool trace = false;
    /** Perfetto trace output file from --trace-out= (empty = none). */
    std::string trace_out;
    /** Per-run trace ring capacity from --trace-buf=. */
    size_t trace_buf = 4096;
    /** Static contention-knob starting points (--backoff=, --cm=). */
    KnobFlags knobs;

    /** Hook for harness-specific flags: return true when the argument
     * was recognised and consumed. Checked before the unknown-flag
     * rejection, so harnesses can extend the common grammar. */
    using ExtraFlag = std::function<bool(const std::string &)>;

    /**
     * Parse @p argv; on a malformed or unknown flag, print a
     * diagnostic and exit(2) instead of silently continuing with a
     * configuration the user did not ask for. Also sizes the global
     * util::ThreadPool from --jobs / PIMSTM_JOBS, so harnesses need no
     * extra setup to run parallel sweeps.
     */
    static BenchOptions
    parse(int argc, char **argv, const ExtraFlag &extra = {})
    {
        BenchOptions o;
        if (const char *env = std::getenv("PIMSTM_FULL"))
            o.full = std::strcmp(env, "0") != 0;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--full")
                o.full = true;
            else if (a == "--quick")
                o.full = false;
            else if (a == "--csv")
                o.csv = true;
            else if (a.rfind("--seeds=", 0) == 0)
                o.seeds = parseUnsigned(argv[0], a, "--seeds=");
            else if (a.rfind("--jobs=", 0) == 0) {
                o.jobs = parseUnsigned(argv[0], a, "--jobs=");
                if (o.jobs == 0)
                    usageError(argv[0], a, "must be at least 1");
            } else if (a.rfind("--perf-json=", 0) == 0) {
                o.perf_json = a.substr(std::strlen("--perf-json="));
                if (o.perf_json.empty())
                    usageError(argv[0], a, "expected a file name");
            } else if (a.rfind("--faults=", 0) == 0) {
                try {
                    o.faults = sim::FaultPlan::parse(
                        a.substr(std::strlen("--faults=")));
                } catch (const FatalError &e) {
                    usageError(argv[0], a, e.what());
                }
            } else if (a.rfind("--watchdog-cycles=", 0) == 0) {
                o.watchdog_cycles =
                    parseU64(argv[0], a, "--watchdog-cycles=");
                if (o.watchdog_cycles == 0)
                    usageError(argv[0], a, "must be at least 1");
            } else if (a.rfind("--serial-fallback=", 0) == 0) {
                o.serial_fallback =
                    parseUnsigned(argv[0], a, "--serial-fallback=");
                if (o.serial_fallback == 0)
                    usageError(argv[0], a, "must be at least 1");
            } else if (a.rfind("--boosting=", 0) == 0) {
                const std::string v =
                    a.substr(std::strlen("--boosting="));
                if (v == "on")
                    o.boosting = true;
                else if (v == "off")
                    o.boosting = false;
                else
                    usageError(argv[0], a, "expected on or off");
            } else if (a.rfind("--durable=", 0) == 0) {
                const std::string v =
                    a.substr(std::strlen("--durable="));
                if (v == "on")
                    o.durable = true;
                else if (v == "off")
                    o.durable = false;
                else
                    usageError(argv[0], a, "expected on or off");
            } else if (a == "--trace") {
                o.trace = true;
            } else if (a.rfind("--trace-out=", 0) == 0) {
                o.trace_out = a.substr(std::strlen("--trace-out="));
                if (o.trace_out.empty())
                    usageError(argv[0], a, "expected a file name");
                o.trace = true;
            } else if (a.rfind("--trace-buf=", 0) == 0) {
                o.trace_buf = parseU64(argv[0], a, "--trace-buf=");
                if (o.trace_buf == 0)
                    usageError(argv[0], a, "must be at least 1");
            } else if (o.knobs.tryParse(argv[0], a)) {
                // common contention knobs (--backoff=, --cm=)
            } else if (extra && extra(a)) {
                // consumed by the harness-specific hook
            } else
                usageError(argv[0], a, "unknown option");
        }
        if (o.seeds == 0)
            o.seeds = 1;
        util::ThreadPool::setGlobalJobs(o.jobs);
        if (!o.perf_json.empty()) {
            std::string prog = argv && argv[0] ? argv[0] : "bench";
            const auto slash = prog.find_last_of('/');
            if (slash != std::string::npos)
                prog = prog.substr(slash + 1);
            PerfReporter::instance().enable(o.perf_json, prog);
        }
        if (!o.trace_out.empty())
            TraceFileWriter::instance().enable(o.trace_out);
        return o;
    }

    /** Copy the robustness flags into a RunSpec (sweep base config). */
    void
    applyTo(runtime::RunSpec &spec) const
    {
        spec.faults = faults;
        if (boosting)
            spec.boosting = true;
        if (durable)
            spec.durable = true;
        if (watchdog_cycles != 0)
            spec.watchdog_cycles = watchdog_cycles;
        if (serial_fallback != 0)
            spec.serial_fallback_override = serial_fallback;
        if (trace) {
            spec.trace = true;
            spec.trace_buffer_capacity = trace_buf;
        }
        knobs.applyTo(spec);
    }

  private:
    [[noreturn]] static void
    usageError(const char *prog, const std::string &arg,
               const char *why)
    {
        std::cerr << (prog ? prog : "bench") << ": invalid option '"
                  << arg << "': " << why << "\n";
        std::exit(2);
    }

    /** Strict decimal parse of the value after @p prefix. */
    static unsigned
    parseUnsigned(const char *prog, const std::string &arg,
                  const char *prefix)
    {
        const std::string v = arg.substr(std::strlen(prefix));
        unsigned out = 0;
        const char *first = v.data();
        const char *last = v.data() + v.size();
        const auto [ptr, ec] = std::from_chars(first, last, out);
        if (v.empty() || ec != std::errc() || ptr != last)
            usageError(prog, arg,
                       "expected an unsigned decimal integer");
        return out;
    }

    /** Strict 64-bit decimal parse of the value after @p prefix. */
    static u64
    parseU64(const char *prog, const std::string &arg,
             const char *prefix)
    {
        const std::string v = arg.substr(std::strlen(prefix));
        u64 out = 0;
        const char *first = v.data();
        const char *last = v.data() + v.size();
        const auto [ptr, ec] = std::from_chars(first, last, out);
        if (v.empty() || ec != std::errc() || ptr != last)
            usageError(prog, arg,
                       "expected an unsigned decimal integer");
        return out;
    }
};

/**
 * Run a harness body with the robustness layer's failure protocol: a
 * WatchdogError (deadlock / livelock verdict) prints its structured
 * diagnostic dump to stderr and exits with sim::kWatchdogExitCode (3),
 * distinct from generic failure (1) and usage errors (2), so CI and
 * scripts can tell "the workload wedged" from "the harness broke".
 */
inline int
guardedMain(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const sim::WatchdogError &e) {
        std::cerr << e.what();
        return sim::kWatchdogExitCode;
    } catch (const sim::DpuCrashError &e) {
        // A whole-DPU crash outside durable mode is unrecoverable by
        // design: the run's data died with the DPU. Same "workload
        // died, harness fine" exit as the watchdog.
        std::cerr << "whole-DPU crash at cycle " << e.atCycle() << ": "
                  << e.what()
                  << "\n(run with --durable=on to recover; "
                     "docs/durability.md)\n";
        return sim::kWatchdogExitCode;
    }
}

/** Aggregated multi-seed result at one sweep point. */
struct PointResult
{
    core::StmKind kind{};
    core::MetadataTier tier{};
    unsigned tasklets = 0;

    bool runnable = true;        ///< false when WRAM placement failed
    double throughput_mean = 0;  ///< committed tx/s
    double throughput_std = 0;
    double abort_rate_mean = 0;
    double app_ops_mean = 0;

    /** Mean share of busy cycles per phase. */
    std::array<double, sim::kNumPhases> phase_share{};

    /** Extra workload metrics, averaged. */
    std::map<std::string, double> extra;

    /** @{ Host-perf bookkeeping for --perf-json (summed over seeds;
     * never printed to the simulated tables/CSV). */
    double sim_cycles_total = 0;
    u64 sched_switches_total = 0;
    u64 sched_elisions_total = 0;
    /** @} */
};

using runtime::WorkloadFactory;

/**
 * Run one sweep point, averaging over @p seeds seeds. Seed replicas
 * run concurrently on the global pool (inline when this is itself
 * called from a parallel sweep); aggregation walks the outcomes in
 * seed order, so the result is identical to the old serial loop.
 */
inline PointResult
runPoint(const WorkloadFactory &factory, core::StmKind kind,
         core::MetadataTier tier, unsigned tasklets, unsigned seeds,
         const runtime::RunSpec &base = {})
{
    PointResult pr;
    pr.kind = kind;
    pr.tier = tier;
    pr.tasklets = tasklets;

    std::vector<runtime::RunSpec> specs(seeds, base);
    for (unsigned s = 0; s < seeds; ++s) {
        specs[s].kind = kind;
        specs[s].tier = tier;
        specs[s].tasklets = tasklets;
        specs[s].seed = base.seed + s * 7919;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = runtime::runWorkloadMany(factory, specs);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    const std::string point_label =
        std::string(core::stmKindName(kind)) + "/" +
        core::metadataTierName(tier) + "/t" + std::to_string(tasklets) +
        (base.boosting ? "/boosted" : "") +
        (base.adaptive.enabled ? "/adaptive" : "") +
        (base.durable ? "/durable" : "");

    std::vector<double> tputs, aborts, apps;
    std::array<std::vector<double>, sim::kNumPhases> shares;
    std::map<std::string, std::vector<double>> extras;
    for (size_t s = 0; s < outcomes.size(); ++s) {
        const auto &o = outcomes[s];
        if (!o.ok) {
            // Infeasible configuration (e.g. WRAM metadata that does
            // not fit): the paper marks these "not runnable".
            pr.runnable = false;
            return pr;
        }
        const auto &r = o.result;
        tputs.push_back(r.throughput);
        aborts.push_back(r.abort_rate);
        apps.push_back(r.app_ops_per_sec);
        for (size_t p = 0; p < sim::kNumPhases; ++p)
            shares[p].push_back(r.phase_share[p]);
        for (const auto &[k, v] : r.extra)
            extras[k].push_back(v);
        pr.sim_cycles_total += static_cast<double>(r.dpu.total_cycles);
        pr.sched_switches_total += r.dpu.sched_switches;
        pr.sched_elisions_total += r.dpu.sched_elisions;
        if (r.trace && TraceFileWriter::instance().enabled()) {
            TraceFileWriter::instance().add(
                *r.trace, point_label + "/seed" + std::to_string(s));
        }
    }
    pr.throughput_mean = mean(tputs);
    pr.throughput_std = stddev(tputs);
    pr.abort_rate_mean = mean(aborts);
    pr.app_ops_mean = mean(apps);
    for (size_t p = 0; p < sim::kNumPhases; ++p)
        pr.phase_share[p] = mean(shares[p]);
    for (auto &[k, v] : extras)
        pr.extra[k] = mean(v);

    if (PerfReporter::instance().enabled()) {
        PerfRecord rec;
        rec.label = point_label;
        rec.wall_s = wall_s;
        rec.sim_cycles = pr.sim_cycles_total;
        rec.sched_switches = pr.sched_switches_total;
        rec.sched_elisions = pr.sched_elisions_total;
        PerfReporter::instance().record(std::move(rec));
    }
    return pr;
}

/** Default tasklet-count series used by the figures. */
inline std::vector<unsigned>
taskletSeries(bool full)
{
    if (full)
        return {1, 2, 4, 6, 8, 11, 16, 20, 24};
    return {1, 2, 4, 8, 11, 16};
}

/**
 * Sweep all STM kinds over the tasklet series and print a throughput /
 * abort-rate / breakdown table, one row per (kind, tasklets).
 *
 * The (kind, tasklets) points fan out over the global thread pool;
 * each point writes its PointResult into a slot indexed by its sweep
 * position, and the table is rendered serially after the barrier, so
 * row order and contents are independent of the job count.
 */
inline std::vector<PointResult>
sweepKinds(const std::string &title, const WorkloadFactory &factory,
           core::MetadataTier tier, const BenchOptions &opt,
           const runtime::RunSpec &base = {})
{
    struct SweepPoint
    {
        core::StmKind kind;
        unsigned tasklets;
    };
    std::vector<SweepPoint> points;
    for (core::StmKind kind : core::allStmKinds())
        for (unsigned t : taskletSeries(opt.full))
            points.push_back({kind, t});

    runtime::RunSpec spec_base = base;
    opt.applyTo(spec_base);

    std::vector<PointResult> results(points.size());
    util::parallelFor(points.size(), [&](size_t i) {
        results[i] = runPoint(factory, points[i].kind, tier,
                              points[i].tasklets, opt.seeds, spec_base);
    });

    Table table({"stm", "tasklets", "tput_tx_per_s", "stddev",
                 "abort_rate", "read%", "write%", "validate%", "commit%",
                 "wasted%", "other%"});
    for (size_t i = 0; i < points.size(); ++i) {
        const PointResult &pr = results[i];
        table.newRow()
            .cell(core::stmKindName(points[i].kind))
            .cell(points[i].tasklets);
        if (!pr.runnable) {
            for (int c = 0; c < 9; ++c)
                table.cell("n/a");
            continue;
        }
        auto share = [&](sim::Phase p) {
            return 100.0 * pr.phase_share[static_cast<size_t>(p)];
        };
        table.cell(pr.throughput_mean, 1)
            .cell(pr.throughput_std, 1)
            .cell(pr.abort_rate_mean, 4)
            .cell(share(sim::Phase::TxRead), 1)
            .cell(share(sim::Phase::TxWrite), 1)
            .cell(share(sim::Phase::TxValidate), 1)
            .cell(share(sim::Phase::TxCommit), 1)
            .cell(share(sim::Phase::Wasted), 1)
            .cell(share(sim::Phase::TxOther) +
                      share(sim::Phase::NonTx) +
                      share(sim::Phase::TxStart),
                  1);
    }
    std::cout << "== " << title << " (metadata "
              << core::metadataTierName(tier) << ") ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
    return results;
}

/** Parameters shaping a PhasedWorkload instance. */
struct PhasedParams
{
    /** Words in the large read/scan region. */
    u32 large_words = 8192;
    /** Words in the tiny contended RMW region. */
    u32 hot_words = 8;

    /** @{ Phase 1 — read-heavy, low contention. */
    u32 read_txs = 40;  ///< transactions per tasklet
    u32 read_ops = 40;  ///< random reads per transaction
    /** @} */

    /** @{ Phase 2 — high-contention writes on the hot region. */
    u32 write_txs = 120;
    u32 rmw_ops = 4;
    /** @} */

    /** @{ Phase 3 — scans with sparse updates: long read sets plus a
     * few random-word RMWs. The writers make this the regime where
     * value-validation STMs (NOrec) revalidate whole scans per
     * concurrent commit while per-word-lock kinds are untouched. */
    u32 scan_txs = 16;
    u32 scan_ops = 128;
    u32 scan_rmw = 2;
    /** @} */

    static PhasedParams
    quick()
    {
        return {};
    }

    static PhasedParams
    full()
    {
        PhasedParams p;
        p.read_txs = 120;
        p.write_txs = 400;
        p.scan_txs = 40;
        return p;
    }

    u32 totalWords() const { return large_words + hot_words; }
};

/**
 * The phased workload behind bench/ablation_adaptive: each tasklet
 * runs three back-to-back phases whose contention regimes differ —
 * read-heavy random reads over a large region, then tiny
 * read-modify-write transactions on a hot region (high contention),
 * then long scans with sparse random-word updates. No single static
 * configuration is right for all three, which is what the epoch
 * controller exploits (docs/adaptive.md).
 *
 * Invariant: every write is a +1 RMW on some word, so
 *     sum(array) == phase-2 commits x rmw_ops
 *                 + phase-3 commits x scan_rmw.
 */
class PhasedWorkload : public runtime::Workload
{
  public:
    explicit PhasedWorkload(const PhasedParams &params)
        : params_(params)
    {}

    const char *name() const override { return "Phased"; }

    void
    configure(core::StmConfig &cfg) const override
    {
        cfg.max_read_set =
            std::max({params_.read_ops,
                      params_.scan_ops + params_.scan_rmw,
                      params_.rmw_ops}) +
            8;
        cfg.max_write_set =
            std::max(params_.rmw_ops, params_.scan_rmw) + 8;
        cfg.data_words_hint = params_.totalWords();
    }

    void
    setup(sim::Dpu &dpu, core::Stm &) override
    {
        array_ = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                        params_.totalWords());
        array_.fill(dpu, 0);
        rmw_commits_ = 0;
        scan_commits_ = 0;
    }

    void
    tasklet(sim::DpuContext &ctx, core::Stm &stm) override
    {
        // Phase 1: read-heavy over the large region.
        for (u32 t = 0; t < params_.read_txs; ++t) {
            core::atomically(stm, ctx, [&](core::TxHandle &tx) {
                for (u32 i = 0; i < params_.read_ops; ++i) {
                    const u32 idx = static_cast<u32>(
                        ctx.rng().below(params_.large_words));
                    tx.read(array_.at(idx));
                }
            });
        }
        // Phase 2: contended RMWs on the hot region.
        for (u32 t = 0; t < params_.write_txs; ++t) {
            core::atomically(stm, ctx, [&](core::TxHandle &tx) {
                for (u32 i = 0; i < params_.rmw_ops; ++i) {
                    const u32 idx = params_.large_words +
                        static_cast<u32>(
                            ctx.rng().below(params_.hot_words));
                    const u32 v = tx.read(array_.at(idx));
                    tx.write(array_.at(idx), v + 1);
                }
            });
            // Tasklets are fibers of one simulated DPU: no host race.
            ++rmw_commits_;
        }
        // Phase 3: long scans with a few sparse random-word updates —
        // the concurrent writers force value-validation kinds to
        // revalidate whole scans while per-word locks see no conflict.
        for (u32 t = 0; t < params_.scan_txs; ++t) {
            core::atomically(stm, ctx, [&](core::TxHandle &tx) {
                const u32 span = params_.large_words > params_.scan_ops
                    ? params_.large_words - params_.scan_ops
                    : 1;
                const u32 start =
                    static_cast<u32>(ctx.rng().below(span));
                for (u32 i = 0; i < params_.scan_ops; ++i)
                    tx.read(array_.at(start + i));
                for (u32 i = 0; i < params_.scan_rmw; ++i) {
                    const u32 idx = static_cast<u32>(
                        ctx.rng().below(params_.large_words));
                    const u32 v = tx.read(array_.at(idx));
                    tx.write(array_.at(idx), v + 1);
                }
            });
            ++scan_commits_;
        }
    }

    void
    verify(sim::Dpu &dpu, core::Stm &) override
    {
        u64 sum = 0;
        for (u32 i = 0; i < params_.totalWords(); ++i)
            sum += array_.peek(dpu, i);
        const u64 expected =
            rmw_commits_ * static_cast<u64>(params_.rmw_ops) +
            scan_commits_ * static_cast<u64>(params_.scan_rmw);
        fatalIf(sum != expected, "PhasedWorkload invariant broken: sum ",
                sum, " != committed RMW count ", expected);
    }

  private:
    PhasedParams params_;
    runtime::SharedArray32 array_;
    u64 rmw_commits_ = 0;
    u64 scan_commits_ = 0;
};

/** Peak throughput over the tasklet series for one (kind, tier). */
inline double
peakThroughput(const std::vector<PointResult> &results,
               core::StmKind kind, core::MetadataTier tier)
{
    double best = 0;
    for (const auto &r : results)
        if (r.kind == kind && r.tier == tier && r.runnable)
            best = std::max(best, r.throughput_mean);
    return best;
}

} // namespace pimstm::bench

#endif // PIMSTM_BENCH_COMMON_HH
