/**
 * @file
 * Shared infrastructure for the figure-reproduction harnesses: sweep a
 * workload over (STM kind x metadata tier x tasklet count x seeds) and
 * print the throughput / abort-rate / time-breakdown series that
 * correspond to the paper's plots.
 *
 * Every bench binary accepts:
 *   --quick        smaller workloads (default when PIMSTM_FULL unset)
 *   --full         paper-scale workloads
 *   --csv          machine-readable output
 *   --seeds=N      number of seeds to average (default 3)
 */

#ifndef PIMSTM_BENCH_COMMON_HH
#define PIMSTM_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "runtime/driver.hh"
#include "util/stats_math.hh"
#include "util/table.hh"

namespace pimstm::bench
{

/** Command-line options shared by all harnesses. */
struct BenchOptions
{
    bool full = false;
    bool csv = false;
    unsigned seeds = 3;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        if (const char *env = std::getenv("PIMSTM_FULL"))
            o.full = std::strcmp(env, "0") != 0;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--full")
                o.full = true;
            else if (a == "--quick")
                o.full = false;
            else if (a == "--csv")
                o.csv = true;
            else if (a.rfind("--seeds=", 0) == 0)
                o.seeds = static_cast<unsigned>(
                    std::stoul(a.substr(std::strlen("--seeds="))));
            else
                std::cerr << "ignoring unknown option " << a << "\n";
        }
        if (o.seeds == 0)
            o.seeds = 1;
        return o;
    }
};

/** Aggregated multi-seed result at one sweep point. */
struct PointResult
{
    core::StmKind kind{};
    core::MetadataTier tier{};
    unsigned tasklets = 0;

    bool runnable = true;        ///< false when WRAM placement failed
    double throughput_mean = 0;  ///< committed tx/s
    double throughput_std = 0;
    double abort_rate_mean = 0;
    double app_ops_mean = 0;

    /** Mean share of busy cycles per phase. */
    std::array<double, sim::kNumPhases> phase_share{};

    /** Extra workload metrics, averaged. */
    std::map<std::string, double> extra;
};

using WorkloadFactory =
    std::function<std::unique_ptr<runtime::Workload>()>;

/** Run one sweep point, averaging over @p seeds seeds. */
inline PointResult
runPoint(const WorkloadFactory &factory, core::StmKind kind,
         core::MetadataTier tier, unsigned tasklets, unsigned seeds,
         const runtime::RunSpec &base = {})
{
    PointResult pr;
    pr.kind = kind;
    pr.tier = tier;
    pr.tasklets = tasklets;

    std::vector<double> tputs, aborts, apps;
    std::array<std::vector<double>, sim::kNumPhases> shares;
    std::map<std::string, std::vector<double>> extras;

    for (unsigned s = 0; s < seeds; ++s) {
        runtime::RunSpec spec = base;
        spec.kind = kind;
        spec.tier = tier;
        spec.tasklets = tasklets;
        spec.seed = base.seed + s * 7919;
        auto wl = factory();
        try {
            const auto r = runWorkload(*wl, spec);
            tputs.push_back(r.throughput);
            aborts.push_back(r.abort_rate);
            apps.push_back(r.app_ops_per_sec);
            for (size_t p = 0; p < sim::kNumPhases; ++p)
                shares[p].push_back(r.phase_share[p]);
            for (const auto &[k, v] : r.extra)
                extras[k].push_back(v);
        } catch (const FatalError &) {
            // Infeasible configuration (e.g. WRAM metadata that does
            // not fit): the paper marks these "not runnable".
            pr.runnable = false;
            return pr;
        }
    }
    pr.throughput_mean = mean(tputs);
    pr.throughput_std = stddev(tputs);
    pr.abort_rate_mean = mean(aborts);
    pr.app_ops_mean = mean(apps);
    for (size_t p = 0; p < sim::kNumPhases; ++p)
        pr.phase_share[p] = mean(shares[p]);
    for (auto &[k, v] : extras)
        pr.extra[k] = mean(v);
    return pr;
}

/** Default tasklet-count series used by the figures. */
inline std::vector<unsigned>
taskletSeries(bool full)
{
    if (full)
        return {1, 2, 4, 6, 8, 11, 16, 20, 24};
    return {1, 2, 4, 8, 11, 16};
}

/**
 * Sweep all STM kinds over the tasklet series and print a throughput /
 * abort-rate / breakdown table, one row per (kind, tasklets).
 */
inline std::vector<PointResult>
sweepKinds(const std::string &title, const WorkloadFactory &factory,
           core::MetadataTier tier, const BenchOptions &opt,
           const runtime::RunSpec &base = {})
{
    std::vector<PointResult> results;
    Table table({"stm", "tasklets", "tput_tx_per_s", "stddev",
                 "abort_rate", "read%", "write%", "validate%", "commit%",
                 "wasted%", "other%"});
    for (core::StmKind kind : core::allStmKinds()) {
        for (unsigned t : taskletSeries(opt.full)) {
            PointResult pr =
                runPoint(factory, kind, tier, t, opt.seeds, base);
            results.push_back(pr);
            table.newRow().cell(core::stmKindName(kind)).cell(t);
            if (!pr.runnable) {
                for (int c = 0; c < 9; ++c)
                    table.cell("n/a");
                continue;
            }
            auto share = [&](sim::Phase p) {
                return 100.0 *
                       pr.phase_share[static_cast<size_t>(p)];
            };
            table.cell(pr.throughput_mean, 1)
                .cell(pr.throughput_std, 1)
                .cell(pr.abort_rate_mean, 4)
                .cell(share(sim::Phase::TxRead), 1)
                .cell(share(sim::Phase::TxWrite), 1)
                .cell(share(sim::Phase::TxValidate), 1)
                .cell(share(sim::Phase::TxCommit), 1)
                .cell(share(sim::Phase::Wasted), 1)
                .cell(share(sim::Phase::TxOther) +
                          share(sim::Phase::NonTx) +
                          share(sim::Phase::TxStart),
                      1);
        }
    }
    std::cout << "== " << title << " (metadata "
              << core::metadataTierName(tier) << ") ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
    return results;
}

/** Peak throughput over the tasklet series for one (kind, tier). */
inline double
peakThroughput(const std::vector<PointResult> &results,
               core::StmKind kind, core::MetadataTier tier)
{
    double best = 0;
    for (const auto &r : results)
        if (r.kind == kind && r.tier == tier && r.runnable)
            best = std::max(best, r.throughput_mean);
    return best;
}

} // namespace pimstm::bench

#endif // PIMSTM_BENCH_COMMON_HH
