/**
 * @file
 * Shared infrastructure for the figure-reproduction harnesses: sweep a
 * workload over (STM kind x metadata tier x tasklet count x seeds) and
 * print the throughput / abort-rate / time-breakdown series that
 * correspond to the paper's plots.
 *
 * Every bench binary accepts:
 *   --quick        smaller workloads (default when PIMSTM_FULL unset)
 *   --full         paper-scale workloads
 *   --csv          machine-readable output
 *   --seeds=N      number of seeds to average (default 3)
 *   --jobs=N       host threads for the sweep (default: PIMSTM_JOBS
 *                  env var, else all hardware threads); results are
 *                  bitwise identical for every N
 */

#ifndef PIMSTM_BENCH_COMMON_HH
#define PIMSTM_BENCH_COMMON_HH

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "runtime/driver.hh"
#include "util/stats_math.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace pimstm::bench
{

/** Command-line options shared by all harnesses. */
struct BenchOptions
{
    bool full = false;
    bool csv = false;
    unsigned seeds = 3;
    /** Host threads for the sweep; 0 = auto (PIMSTM_JOBS / all cores). */
    unsigned jobs = 0;

    /**
     * Parse @p argv; on a malformed numeric flag, print a diagnostic
     * and exit(2) instead of dying on an unhandled exception. Also
     * sizes the global util::ThreadPool from --jobs / PIMSTM_JOBS, so
     * harnesses need no extra setup to run parallel sweeps.
     */
    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        if (const char *env = std::getenv("PIMSTM_FULL"))
            o.full = std::strcmp(env, "0") != 0;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--full")
                o.full = true;
            else if (a == "--quick")
                o.full = false;
            else if (a == "--csv")
                o.csv = true;
            else if (a.rfind("--seeds=", 0) == 0)
                o.seeds = parseUnsigned(argv[0], a, "--seeds=");
            else if (a.rfind("--jobs=", 0) == 0) {
                o.jobs = parseUnsigned(argv[0], a, "--jobs=");
                if (o.jobs == 0)
                    usageError(argv[0], a, "must be at least 1");
            } else
                std::cerr << "ignoring unknown option " << a << "\n";
        }
        if (o.seeds == 0)
            o.seeds = 1;
        util::ThreadPool::setGlobalJobs(o.jobs);
        return o;
    }

  private:
    [[noreturn]] static void
    usageError(const char *prog, const std::string &arg,
               const char *why)
    {
        std::cerr << (prog ? prog : "bench") << ": invalid option '"
                  << arg << "': " << why << "\n";
        std::exit(2);
    }

    /** Strict decimal parse of the value after @p prefix. */
    static unsigned
    parseUnsigned(const char *prog, const std::string &arg,
                  const char *prefix)
    {
        const std::string v = arg.substr(std::strlen(prefix));
        unsigned out = 0;
        const char *first = v.data();
        const char *last = v.data() + v.size();
        const auto [ptr, ec] = std::from_chars(first, last, out);
        if (v.empty() || ec != std::errc() || ptr != last)
            usageError(prog, arg,
                       "expected an unsigned decimal integer");
        return out;
    }
};

/** Aggregated multi-seed result at one sweep point. */
struct PointResult
{
    core::StmKind kind{};
    core::MetadataTier tier{};
    unsigned tasklets = 0;

    bool runnable = true;        ///< false when WRAM placement failed
    double throughput_mean = 0;  ///< committed tx/s
    double throughput_std = 0;
    double abort_rate_mean = 0;
    double app_ops_mean = 0;

    /** Mean share of busy cycles per phase. */
    std::array<double, sim::kNumPhases> phase_share{};

    /** Extra workload metrics, averaged. */
    std::map<std::string, double> extra;
};

using runtime::WorkloadFactory;

/**
 * Run one sweep point, averaging over @p seeds seeds. Seed replicas
 * run concurrently on the global pool (inline when this is itself
 * called from a parallel sweep); aggregation walks the outcomes in
 * seed order, so the result is identical to the old serial loop.
 */
inline PointResult
runPoint(const WorkloadFactory &factory, core::StmKind kind,
         core::MetadataTier tier, unsigned tasklets, unsigned seeds,
         const runtime::RunSpec &base = {})
{
    PointResult pr;
    pr.kind = kind;
    pr.tier = tier;
    pr.tasklets = tasklets;

    std::vector<runtime::RunSpec> specs(seeds, base);
    for (unsigned s = 0; s < seeds; ++s) {
        specs[s].kind = kind;
        specs[s].tier = tier;
        specs[s].tasklets = tasklets;
        specs[s].seed = base.seed + s * 7919;
    }
    const auto outcomes = runtime::runWorkloadMany(factory, specs);

    std::vector<double> tputs, aborts, apps;
    std::array<std::vector<double>, sim::kNumPhases> shares;
    std::map<std::string, std::vector<double>> extras;
    for (const auto &o : outcomes) {
        if (!o.ok) {
            // Infeasible configuration (e.g. WRAM metadata that does
            // not fit): the paper marks these "not runnable".
            pr.runnable = false;
            return pr;
        }
        const auto &r = o.result;
        tputs.push_back(r.throughput);
        aborts.push_back(r.abort_rate);
        apps.push_back(r.app_ops_per_sec);
        for (size_t p = 0; p < sim::kNumPhases; ++p)
            shares[p].push_back(r.phase_share[p]);
        for (const auto &[k, v] : r.extra)
            extras[k].push_back(v);
    }
    pr.throughput_mean = mean(tputs);
    pr.throughput_std = stddev(tputs);
    pr.abort_rate_mean = mean(aborts);
    pr.app_ops_mean = mean(apps);
    for (size_t p = 0; p < sim::kNumPhases; ++p)
        pr.phase_share[p] = mean(shares[p]);
    for (auto &[k, v] : extras)
        pr.extra[k] = mean(v);
    return pr;
}

/** Default tasklet-count series used by the figures. */
inline std::vector<unsigned>
taskletSeries(bool full)
{
    if (full)
        return {1, 2, 4, 6, 8, 11, 16, 20, 24};
    return {1, 2, 4, 8, 11, 16};
}

/**
 * Sweep all STM kinds over the tasklet series and print a throughput /
 * abort-rate / breakdown table, one row per (kind, tasklets).
 *
 * The (kind, tasklets) points fan out over the global thread pool;
 * each point writes its PointResult into a slot indexed by its sweep
 * position, and the table is rendered serially after the barrier, so
 * row order and contents are independent of the job count.
 */
inline std::vector<PointResult>
sweepKinds(const std::string &title, const WorkloadFactory &factory,
           core::MetadataTier tier, const BenchOptions &opt,
           const runtime::RunSpec &base = {})
{
    struct SweepPoint
    {
        core::StmKind kind;
        unsigned tasklets;
    };
    std::vector<SweepPoint> points;
    for (core::StmKind kind : core::allStmKinds())
        for (unsigned t : taskletSeries(opt.full))
            points.push_back({kind, t});

    std::vector<PointResult> results(points.size());
    util::parallelFor(points.size(), [&](size_t i) {
        results[i] = runPoint(factory, points[i].kind, tier,
                              points[i].tasklets, opt.seeds, base);
    });

    Table table({"stm", "tasklets", "tput_tx_per_s", "stddev",
                 "abort_rate", "read%", "write%", "validate%", "commit%",
                 "wasted%", "other%"});
    for (size_t i = 0; i < points.size(); ++i) {
        const PointResult &pr = results[i];
        table.newRow()
            .cell(core::stmKindName(points[i].kind))
            .cell(points[i].tasklets);
        if (!pr.runnable) {
            for (int c = 0; c < 9; ++c)
                table.cell("n/a");
            continue;
        }
        auto share = [&](sim::Phase p) {
            return 100.0 * pr.phase_share[static_cast<size_t>(p)];
        };
        table.cell(pr.throughput_mean, 1)
            .cell(pr.throughput_std, 1)
            .cell(pr.abort_rate_mean, 4)
            .cell(share(sim::Phase::TxRead), 1)
            .cell(share(sim::Phase::TxWrite), 1)
            .cell(share(sim::Phase::TxValidate), 1)
            .cell(share(sim::Phase::TxCommit), 1)
            .cell(share(sim::Phase::Wasted), 1)
            .cell(share(sim::Phase::TxOther) +
                      share(sim::Phase::NonTx) +
                      share(sim::Phase::TxStart),
                  1);
    }
    std::cout << "== " << title << " (metadata "
              << core::metadataTierName(tier) << ") ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
    return results;
}

/** Peak throughput over the tasklet series for one (kind, tier). */
inline double
peakThroughput(const std::vector<PointResult> &results,
               core::StmKind kind, core::MetadataTier tier)
{
    double best = 0;
    for (const auto &r : results)
        if (r.kind == kind && r.tier == tier && r.runnable)
            best = std::max(best, r.throughput_mean);
    return best;
}

} // namespace pimstm::bench

#endif // PIMSTM_BENCH_COMMON_HH
