/**
 * @file
 * Reproduces the §3.1 latency measurement that motivates PIM-STM's
 * DPU-local transaction design: a CPU-mediated inter-DPU read of one
 * 64-bit word costs three orders of magnitude more than a local MRAM
 * read (paper: 331 us vs 231 ns).
 *
 * Also exercises the simulator's primitive costs as google-benchmark
 * micro-benchmarks (WRAM vs MRAM access, atomic acquire/release, STM
 * read/write instrumentation per algorithm).
 */

#include <benchmark/benchmark.h>

#include "core/stm_factory.hh"
#include "runtime/boosted.hh"
#include "runtime/shared_array.hh"
#include "runtime/tx_hashmap.hh"
#include "sim/pim_system.hh"

using namespace pimstm;
using namespace pimstm::sim;

namespace
{

DpuConfig
smallDpu()
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 * 1024 * 1024;
    return cfg;
}

/** Simulated nanoseconds of one 64-bit read per tier. */
double
simulatedReadNs(Tier tier)
{
    TimingConfig timing;
    Dpu dpu(smallDpu(), timing);
    const u32 off = dpu.memory(tier).alloc(64);
    Cycles cost = 0;
    dpu.addTasklet([&](DpuContext &ctx) {
        const Cycles t0 = ctx.now();
        ctx.read64(makeAddr(tier, off));
        cost = ctx.now() - t0;
    });
    dpu.run();
    return timing.cyclesToSeconds(cost) * 1e9;
}

void
BM_LocalMramRead64(benchmark::State &state)
{
    double ns = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(ns = simulatedReadNs(Tier::Mram));
    state.counters["sim_ns"] = ns;
    state.counters["paper_ns"] = 231.0;
}
BENCHMARK(BM_LocalMramRead64);

void
BM_LocalWramRead64(benchmark::State &state)
{
    double ns = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(ns = simulatedReadNs(Tier::Wram));
    state.counters["sim_ns"] = ns;
}
BENCHMARK(BM_LocalWramRead64);

void
BM_InterDpuRead64(benchmark::State &state)
{
    PimSystem sys(4, 1, smallDpu(), TimingConfig{}, HostLinkConfig{});
    double us = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            us = sys.interDpuWordReadSeconds() * 1e6);
    state.counters["sim_us"] = us;
    state.counters["paper_us"] = 331.0;
    state.counters["vs_local_mram_x"] =
        sys.interDpuWordReadSeconds() / (simulatedReadNs(Tier::Mram) * 1e-9);
}
BENCHMARK(BM_InterDpuRead64);

/** Cost of one instrumented STM read+write pair, per algorithm. */
void
BM_StmReadWriteCost(benchmark::State &state)
{
    const auto kind = static_cast<core::StmKind>(state.range(0));
    TimingConfig timing;
    double ns_per_op = 0;
    for (auto _ : state) {
        Dpu dpu(smallDpu(), timing);
        core::StmConfig cfg;
        cfg.kind = kind;
        cfg.num_tasklets = 1;
        cfg.max_read_set = 64;
        cfg.max_write_set = 64;
        auto stm = core::makeStm(dpu, cfg);
        runtime::SharedArray32 arr(dpu, Tier::Mram, 32);
        dpu.addTasklet([&](DpuContext &ctx) {
            for (int i = 0; i < 16; ++i) {
                core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                    const u32 v = tx.read(arr.at(static_cast<size_t>(i) % 32));
                    tx.write(arr.at(static_cast<size_t>(i) % 32), v + 1);
                });
            }
        });
        dpu.run();
        ns_per_op =
            timing.cyclesToSeconds(dpu.stats().total_cycles) * 1e9 / 16;
    }
    state.SetLabel(core::stmKindName(kind));
    state.counters["sim_ns_per_tx"] = ns_per_op;
}
BENCHMARK(BM_StmReadWriteCost)->DenseRange(0, 6);

/**
 * Cost of one uncontended map operation (insert+lookup+erase) through
 * the two structure-selection modes: word-based TxHashMap transactions
 * (arg 0) vs the boosted library's abstract locks + direct accesses
 * (arg 1) — the same switch RunSpec::boosting / --boosting=on flips in
 * the sweep harnesses. Boosting trades read/write-set maintenance for
 * two stripe-word touches and a latch, so the uncontended delta is the
 * price paid for contention immunity.
 */
void
BM_MapOpCost(benchmark::State &state)
{
    const bool boosted = state.range(0) != 0;
    TimingConfig timing;
    double ns_per_op = 0;
    for (auto _ : state) {
        Dpu dpu(smallDpu(), timing);
        core::StmConfig cfg;
        cfg.num_tasklets = 1;
        cfg.max_read_set = 64;
        cfg.max_write_set = 64;
        cfg.boosting = boosted;
        auto stm = core::makeStm(dpu, cfg);
        runtime::TxHashMap map(dpu, Tier::Mram, 64);
        std::unique_ptr<runtime::BoostedMap> bmap;
        if (boosted)
            bmap = std::make_unique<runtime::BoostedMap>(dpu, *stm, map);
        dpu.addTasklet([&](DpuContext &ctx) {
            for (u32 i = 0; i < 16; ++i) {
                core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                    u32 v = 0;
                    if (boosted) {
                        bmap->insert(tx, i, i * 3);
                        bmap->lookup(tx, i, v);
                        bmap->erase(tx, i);
                    } else {
                        map.insert(tx, i, i * 3);
                        map.lookup(tx, i, v);
                        map.erase(tx, i);
                    }
                });
            }
        });
        dpu.run();
        ns_per_op =
            timing.cyclesToSeconds(dpu.stats().total_cycles) * 1e9 / 16;
    }
    state.SetLabel(boosted ? "boosted" : "word");
    state.counters["sim_ns_per_tx"] = ns_per_op;
}
BENCHMARK(BM_MapOpCost)->DenseRange(0, 1);

} // namespace

BENCHMARK_MAIN();
