/**
 * @file
 * serve_kv: the open-loop traffic front-end (ROADMAP item 2,
 * docs/serving.md). Drives the sharded DistributedKv fleet and a
 * sharded vacation-style reservation fleet with the
 * runtime/serving.hh harness: Poisson or bursty (MMPP-2) arrivals,
 * Zipfian key popularity, batch formation under a latency budget,
 * bounded per-shard admission queues with shed-and-count overflow,
 * and p50/p99/p999 SLO accounting from arrival to completion —
 * including the PimSystem launch + host-link transfer cost.
 *
 * Everything runs on simulated time, so output is bitwise identical
 * for any --jobs value, and the harness composes with the prior
 * subsystems: --faults= injects into every shard DPU, --boosting=on /
 * --durable=on select the KV fleet's isolation / persistence modes,
 * and --adaptive=on attaches one runtime::AdaptiveController per KV
 * shard (backoff/CM + hot-lock migration) via the DistributedKv
 * composition hooks.
 *
 * Extra flags (grammar in README; defaults in docs/serving.md):
 *   --workload=kv|vacation   restrict the scenario set
 *   --shards=N --rate=R --arrival=poisson|bursty --requests=N
 *                            run one custom scenario instead
 *   --zipf=F                 popularity skew theta in [0,1)
 *   --batch-budget-us=N --max-batch=N --queue-cap=N
 *   --slo-p99-ms=F           the p99 SLO judged by --check/--find-capacity
 *   --find-capacity          max-throughput-under-SLO search mode
 *   --adaptive=on|off        per-shard adaptive controllers (KV only)
 *   --check                  assert the acceptance gates (capacity
 *                            monotone in shard count; zero shed below
 *                            the knee) and exit non-zero on violation
 *
 * CI's serving-smoke job gates a fresh --perf-json run against the
 * committed BENCH_sim.serving.json via scripts/check_perf_json.py.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "bench/common.hh"
#include "hostapp/distributed_kv.hh"
#include "runtime/adaptive.hh"
#include "runtime/serving.hh"
#include "runtime/shared_array.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::hostapp;

namespace
{

//
// KV backend: the DistributedKv fleet behind the serving harness.
//

/** Op classes of the KV request stream (StreamConfig::op_weights). */
enum KvReqOp : u8
{
    kKvGet = 0,
    kKvPut = 1,
    kKvMove = 2, ///< cross-shard relocation through 2PC
};

class KvServingBackend : public runtime::ServingBackend
{
  public:
    struct Config
    {
        u32 keyspace = 0; ///< popularity ranks, mapped to keys 1..K
        DistributedKvConfig kv;
        bool adaptive = false;
    };

    explicit KvServingBackend(const Config &c) : cfg_(c), kv_(c.kv)
    {
        // Preload every rank so gets hit and moves have a source; the
        // seeding batch's cost is excluded via per-round deltas.
        std::vector<KvOp> seed_ops;
        seed_ops.reserve(cfg_.keyspace);
        for (u32 r = 0; r < cfg_.keyspace; ++r)
            seed_ops.push_back(KvOp::put(rankKey(r), 0x10000u + r));
        kv_.execute(seed_ops);

        if (cfg_.adaptive) {
            // Per-shard epoch feedback (docs/adaptive.md) on the
            // knobs that compose with a shared store: backoff/CM
            // re-tuning and hot-lock WRAM migration. Tasklet
            // throttling and kind switching stay off — the KV sizes
            // its launches itself and its shard state is bound to one
            // STM instance.
            runtime::AdaptiveSpec spec;
            spec.enabled = true;
            spec.epoch_cycles = 50000;
            spec.tune_throttle = false;
            spec.tune_kind = false;
            for (unsigned s = 0; s < kv_.numShards(); ++s) {
                controllers_.push_back(
                    std::make_unique<runtime::AdaptiveController>(
                        kv_.shardStm(s), kv_.shardDpu(s), spec));
                runtime::AdaptiveController *ctl =
                    controllers_.back().get();
                kv_.shardDpu(s).setEpochHook(
                    spec.epoch_cycles, [ctl] { ctl->onEpoch(); });
            }
        }
        busy0_.resize(kv_.numShards());
    }

    unsigned
    numShards() const override
    {
        return kv_.numShards();
    }

    unsigned
    shardOf(const runtime::ServingRequest &req) const override
    {
        return kv_.shardOf(rankKey(req.key));
    }

    runtime::RoundCost
    executeRound(const std::vector<std::vector<runtime::ServingRequest>>
                     &batches) override
    {
        std::vector<KvOp> ops;
        std::vector<CrossShardTx> txs;
        for (const auto &batch : batches) {
            for (const runtime::ServingRequest &r : batch) {
                const u32 key = rankKey(r.key);
                switch (r.op) {
                  case kKvGet:
                    ops.push_back(KvOp::get(key));
                    break;
                  case kKvPut:
                    ops.push_back(KvOp::put(key, r.value | 1));
                    break;
                  default: {
                    // Relocations ping-pong a rank between its home
                    // key and a shadow key on another shard; the
                    // direction follows the store's current state.
                    const u32 shadow = key + cfg_.keyspace;
                    u32 v = 0;
                    if (kv_.peek(key, v))
                        txs.push_back(CrossShardTx::move(key, shadow));
                    else
                        txs.push_back(CrossShardTx::move(shadow, key));
                    break;
                  }
                }
            }
        }

        const double e0 = kv_.elapsedSeconds();
        for (unsigned s = 0; s < kv_.numShards(); ++s)
            busy0_[s] = kv_.shardBusySeconds(s);
        const KvBatchResult res = kv_.execute(ops, txs);
        for (const auto &tr : res.txs)
            tx_commits_ += tr.committed ? 1 : 0;

        runtime::RoundCost cost;
        cost.round_seconds = kv_.elapsedSeconds() - e0;
        cost.shard_busy_seconds.resize(kv_.numShards());
        for (unsigned s = 0; s < kv_.numShards(); ++s)
            cost.shard_busy_seconds[s] =
                kv_.shardBusySeconds(s) - busy0_[s];
        return cost;
    }

    /** Post-run sanity: the fleet is quiescent and no key leaked
     * outside the rank/shadow universe. */
    void
    verify() const
    {
        panicIf(kv_.livePins() != 0, "serving left pins outstanding");
        panicIf(kv_.population() > 2 * cfg_.keyspace,
                "serving grew the store past the key universe");
    }

    u64 simCycles() const { return kv_.simCycles(); }
    u64 schedSwitches() const { return kv_.schedSwitches(); }
    u64 schedElisions() const { return kv_.schedElisions(); }
    u64 txCommits() const { return tx_commits_; }

    u64
    adaptiveDecisions() const
    {
        u64 n = 0;
        for (const auto &c : controllers_)
            n += c->report()->decisions.size();
        return n;
    }

  private:
    u32
    rankKey(u32 rank) const
    {
        return rank + 1; // 0 stays clear of degenerate keys
    }

    Config cfg_;
    DistributedKv kv_;
    std::vector<std::unique_ptr<runtime::AdaptiveController>>
        controllers_;
    std::vector<double> busy0_;
    u64 tx_commits_ = 0;
};

//
// Vacation backend: a sharded reservation fleet. Each shard is one
// DPU holding the vacation shape (docs/serving.md): kTables
// reservation tables (free/price words) plus per-customer slot
// arrays, mutated by STM transactions.
//

/** Op classes of the vacation request stream. */
enum VacReqOp : u8
{
    kVacReserve = 0, ///< cheapest available item per table -> slots
    kVacCancel = 1,  ///< release all of the customer's slots
    kVacUpdate = 2,  ///< re-price one item
};

class VacationServingBackend : public runtime::ServingBackend
{
  public:
    static constexpr u32 kTables = 3;
    static constexpr u32 kEmptySlot = 0xffffffffu;

    struct Config
    {
        unsigned shards = 16;
        u32 customers = 64; ///< per shard
        u32 items = 64;     ///< per table
        u32 slots_per_customer = 6;
        u32 query = 4; ///< items scanned per table per reservation
        u32 initial_free = 50;
        unsigned tasklets = 4;
        u64 seed = 1;
        sim::TimingConfig timing{};
        sim::HostLinkConfig link{};
        sim::FaultPlan faults;
    };

    explicit VacationServingBackend(const Config &c) : cfg_(c)
    {
        sim::DpuConfig dpu_cfg;
        dpu_cfg.mram_bytes = 1 << 20;
        dpu_cfg.seed = deriveSeed(c.seed, 0x766163);
        dpu_cfg.faults = c.faults;
        system_ = std::make_unique<sim::PimSystem>(
            c.shards, c.shards, dpu_cfg, c.timing, c.link);

        shards_.resize(c.shards);
        for (unsigned s = 0; s < c.shards; ++s) {
            Shard &sh = shards_[s];
            sh.dpu = &system_->dpu(s);

            core::StmConfig stm_cfg;
            stm_cfg.num_tasklets = c.tasklets;
            stm_cfg.max_read_set =
                2 * kTables * c.query + 2 * c.slots_per_customer + 16;
            stm_cfg.max_write_set =
                2 * kTables + c.slots_per_customer + 8;
            stm_cfg.data_words_hint = kTables * c.items * 2
                + c.customers * c.slots_per_customer;
            sh.stm = core::makeStm(*sh.dpu, stm_cfg);

            Rng rng(deriveSeed(c.seed, 0x7661, s));
            for (u32 t = 0; t < kTables; ++t) {
                sh.free[t] = runtime::SharedArray32(
                    *sh.dpu, sim::Tier::Mram, c.items);
                sh.price[t] = runtime::SharedArray32(
                    *sh.dpu, sim::Tier::Mram, c.items);
                sh.free[t].fill(*sh.dpu, c.initial_free);
                for (u32 i = 0; i < c.items; ++i)
                    sh.price[t].poke(
                        *sh.dpu, i,
                        static_cast<u32>(rng.range(50, 500)));
            }
            sh.slots = runtime::SharedArray32(
                *sh.dpu, sim::Tier::Mram,
                static_cast<size_t>(c.customers)
                    * c.slots_per_customer);
            sh.slots.fill(*sh.dpu, kEmptySlot);
        }
    }

    unsigned
    numShards() const override
    {
        return cfg_.shards;
    }

    unsigned
    shardOf(const runtime::ServingRequest &req) const override
    {
        return req.key % cfg_.shards;
    }

    runtime::RoundCost
    executeRound(const std::vector<std::vector<runtime::ServingRequest>>
                     &batches) override
    {
        std::vector<unsigned> involved;
        size_t total = 0;
        for (unsigned s = 0; s < cfg_.shards; ++s) {
            if (!batches[s].empty()) {
                involved.push_back(s);
                total += batches[s].size();
            }
        }
        runtime::RoundCost cost;
        cost.shard_busy_seconds.assign(cfg_.shards, 0.0);
        if (involved.empty())
            return cost;

        struct SlotResult
        {
            double seconds = 0;
            u64 cycles = 0;
            u64 switches = 0;
            u64 elisions = 0;
        };
        std::vector<SlotResult> runs(involved.size());

        // Involved shards run concurrently on host threads; each
        // result lands in its own slot so output is identical for any
        // --jobs value (same discipline as DistributedKv::runLaunch).
        util::parallelFor(involved.size(), [&](size_t ii) {
            const unsigned s = involved[ii];
            Shard &sh = shards_[s];
            const auto &reqs = batches[s];
            sh.dpu->resetRun(/*reset_faults=*/false);
            const unsigned tasklets = static_cast<unsigned>(
                std::min<size_t>(cfg_.tasklets, reqs.size()));
            for (unsigned t = 0; t < tasklets; ++t) {
                sh.dpu->addTasklet(
                    [this, &sh, &reqs, t, tasklets](
                        sim::DpuContext &ctx) {
                        for (size_t i = t; i < reqs.size();
                             i += tasklets)
                            runRequest(sh, ctx, reqs[i]);
                    });
            }
            sh.dpu->run();
            const auto &st = sh.dpu->stats();
            runs[ii].seconds =
                cfg_.timing.cyclesToSeconds(st.total_cycles);
            runs[ii].cycles = st.total_cycles;
            runs[ii].switches = st.sched_switches;
            runs[ii].elisions = st.sched_elisions;
        });

        double worst = 0.0;
        for (size_t ii = 0; ii < involved.size(); ++ii) {
            cost.shard_busy_seconds[involved[ii]] = runs[ii].seconds;
            worst = std::max(worst, runs[ii].seconds);
            cycles_ += runs[ii].cycles;
            switches_ += runs[ii].switches;
            elisions_ += runs[ii].elisions;
        }
        // Request down / result up, through the same CPU-mediated
        // link model the KV fleet is charged with.
        cost.round_seconds = system_->launchOverheadSeconds()
            + system_->transferSeconds(
                static_cast<double>(kReqBytesDown * total))
            + system_->transferSeconds(
                static_cast<double>(kRespBytesUp * total))
            + worst;
        return cost;
    }

    /**
     * Conservation check (runs are self-verifying, like every
     * workload in the repo): per shard and table, the total free-count
     * deficit must equal the number of occupied slots pointing at
     * that table — reservations and cancellations never create or
     * leak inventory.
     */
    void
    verify() const
    {
        for (const Shard &sh : shards_) {
            u64 deficit[kTables] = {};
            u64 occupied[kTables] = {};
            for (u32 t = 0; t < kTables; ++t)
                for (u32 i = 0; i < cfg_.items; ++i)
                    deficit[t] += cfg_.initial_free
                        - sh.free[t].peek(*sh.dpu, i);
            for (size_t w = 0; w < sh.slots.size(); ++w) {
                const u32 v = sh.slots.peek(*sh.dpu, w);
                if (v != kEmptySlot)
                    ++occupied[v >> 24];
            }
            for (u32 t = 0; t < kTables; ++t)
                panicIf(deficit[t] != occupied[t],
                        "vacation serving conservation violated: "
                        "table ",
                        t, " deficit ", deficit[t], " != occupied ",
                        occupied[t]);
        }
    }

    u64 simCycles() const { return cycles_; }
    u64 schedSwitches() const { return switches_; }
    u64 schedElisions() const { return elisions_; }
    u64 reservations() const { return reservations_; }

  private:
    static constexpr size_t kReqBytesDown = 16;
    static constexpr size_t kRespBytesUp = 8;

    struct Shard
    {
        sim::Dpu *dpu = nullptr;
        std::unique_ptr<core::Stm> stm;
        runtime::SharedArray32 free[kTables];
        runtime::SharedArray32 price[kTables];
        runtime::SharedArray32 slots;
    };

    u32
    customerOf(const runtime::ServingRequest &r) const
    {
        return (r.key / cfg_.shards) % cfg_.customers;
    }

    sim::Addr
    slotAddr(const Shard &sh, u32 customer, u32 slot) const
    {
        return sh.slots.at(static_cast<size_t>(customer)
                               * cfg_.slots_per_customer
                           + slot);
    }

    /** Deterministic item pick q for table t of request payload v —
     * a pure function, so an aborted transaction retries the same
     * picks (like Vacation's pre-drawn queries). */
    u32
    pickItem(u32 v, u32 t, u32 q) const
    {
        const u64 z = deriveSeed(v, t, q);
        return static_cast<u32>(z % cfg_.items);
    }

    void
    runRequest(Shard &sh, sim::DpuContext &ctx,
               const runtime::ServingRequest &r)
    {
        const u32 customer = customerOf(r);
        switch (r.op) {
          case kVacReserve:
            reserve(sh, ctx, customer, r.value);
            break;
          case kVacCancel:
            cancel(sh, ctx, customer);
            break;
          default:
            updatePrice(sh, ctx, r.value);
            break;
        }
    }

    void
    reserve(Shard &sh, sim::DpuContext &ctx, u32 customer, u32 payload)
    {
        core::atomically(*sh.stm, ctx, [&](core::TxHandle &tx) {
            // Cheapest available item per table among the picks.
            u32 chosen[kTables];
            for (u32 t = 0; t < kTables; ++t) {
                u32 best = kEmptySlot;
                u32 best_price = 0;
                for (u32 q = 0; q < cfg_.query; ++q) {
                    const u32 item = pickItem(payload, t, q);
                    if (tx.read(sh.free[t].at(item)) == 0)
                        continue;
                    const u32 p = tx.read(sh.price[t].at(item));
                    if (best == kEmptySlot || p < best_price) {
                        best = item;
                        best_price = p;
                    }
                }
                if (best == kEmptySlot)
                    return; // sold out: committed no-op
                chosen[t] = best;
            }
            // One empty slot per table.
            u32 free_slots[kTables];
            u32 found = 0;
            for (u32 w = 0;
                 w < cfg_.slots_per_customer && found < kTables; ++w)
                if (tx.read(slotAddr(sh, customer, w)) == kEmptySlot)
                    free_slots[found++] = w;
            if (found < kTables)
                return; // customer fully booked: committed no-op
            for (u32 t = 0; t < kTables; ++t) {
                const u32 avail = tx.read(sh.free[t].at(chosen[t]));
                if (avail == 0)
                    return; // raced out by this round's siblings
                tx.write(sh.free[t].at(chosen[t]), avail - 1);
                tx.write(slotAddr(sh, customer, free_slots[t]),
                         (t << 24) | chosen[t]);
            }
        });
        ++reservations_;
    }

    void
    cancel(Shard &sh, sim::DpuContext &ctx, u32 customer)
    {
        core::atomically(*sh.stm, ctx, [&](core::TxHandle &tx) {
            for (u32 w = 0; w < cfg_.slots_per_customer; ++w) {
                const u32 v = tx.read(slotAddr(sh, customer, w));
                if (v == kEmptySlot)
                    continue;
                const u32 t = v >> 24;
                const u32 item = v & 0xffffffu;
                tx.write(slotAddr(sh, customer, w), kEmptySlot);
                tx.write(sh.free[t].at(item),
                         tx.read(sh.free[t].at(item)) + 1);
            }
        });
    }

    void
    updatePrice(Shard &sh, sim::DpuContext &ctx, u32 payload)
    {
        const u32 t = payload % kTables;
        const u32 item = (payload >> 8) % cfg_.items;
        const u32 price = 50 + (payload >> 16) % 450;
        core::atomically(*sh.stm, ctx, [&](core::TxHandle &tx) {
            tx.write(sh.price[t].at(item), price);
        });
    }

    Config cfg_;
    std::unique_ptr<sim::PimSystem> system_;
    std::vector<Shard> shards_;
    u64 cycles_ = 0;
    u64 switches_ = 0;
    u64 elisions_ = 0;
    u64 reservations_ = 0;
};

//
// Scenario driver
//

struct ServeFlags
{
    std::string workload; ///< empty = both
    unsigned shards = 0;  ///< 0 = scenario default
    double rate = 0;      ///< 0 = scenario default
    u64 requests = 0;     ///< 0 = quick/full default
    std::string arrival;  ///< empty = scenario default
    double zipf = 0.99;
    unsigned batch_budget_us = 200;
    unsigned max_batch = 16;
    unsigned queue_cap = 64;
    double slo_p99_ms = 2.0;
    bool find_capacity = false;
    bool adaptive = false;
    bool check = false;

    bool
    customScenario() const
    {
        return shards != 0 || rate != 0 || !arrival.empty();
    }
};

struct Scenario
{
    std::string name;
    std::string workload; ///< "kv" | "vacation"
    unsigned shards = 0;
    runtime::ArrivalKind arrival = runtime::ArrivalKind::Poisson;
    double rate = 0;
    u64 requests = 0;
};

struct ScenarioResult
{
    runtime::ServingReport rep;
    u64 sim_cycles = 0;
    u64 sched_switches = 0;
    u64 sched_elisions = 0;
    u64 adaptive_decisions = 0;
    double wall_s = 0;
};

KvServingBackend::Config
kvBackendConfig(unsigned shards, const ServeFlags &f,
                const BenchOptions &opt)
{
    KvServingBackend::Config c;
    c.keyspace = shards * 32;
    c.kv.shards = shards;
    c.kv.capacity_per_shard = 256;
    c.kv.tasklets_per_dpu = 4;
    c.kv.mram_bytes = 1 << 20;
    c.kv.seed = 1;
    c.kv.faults = opt.faults;
    c.kv.boosting = opt.boosting;
    c.kv.durable = opt.durable;
    c.adaptive = f.adaptive;
    return c;
}

VacationServingBackend::Config
vacBackendConfig(unsigned shards, const BenchOptions &opt)
{
    VacationServingBackend::Config c;
    c.shards = shards;
    c.faults = opt.faults;
    return c;
}

runtime::StreamConfig
streamConfig(const Scenario &sc, const ServeFlags &f, u64 keys)
{
    runtime::StreamConfig s;
    s.arrival.kind = sc.arrival;
    s.arrival.rate_per_s = sc.rate;
    s.keys = keys;
    s.zipf_theta = f.zipf;
    s.seed = 1;
    if (sc.workload == "kv")
        s.op_weights = {0.60, 0.37, 0.03}; // get / put / movek
    else
        s.op_weights = {0.65, 0.20, 0.15}; // reserve/cancel/update
    return s;
}

runtime::ServingConfig
servingConfig(const ServeFlags &f)
{
    runtime::ServingConfig c;
    c.batch_budget_s = static_cast<double>(f.batch_budget_us) * 1e-6;
    c.max_batch_per_shard = f.max_batch;
    c.queue_cap_per_shard = f.queue_cap;
    return c;
}

ScenarioResult
runScenario(const Scenario &sc, const ServeFlags &f,
            const BenchOptions &opt)
{
    const auto wall0 = std::chrono::steady_clock::now();
    ScenarioResult out;
    if (sc.workload == "kv") {
        KvServingBackend backend(kvBackendConfig(sc.shards, f, opt));
        const auto stream = runtime::makeStream(
            streamConfig(sc, f, sc.shards * 32ull), sc.requests);
        out.rep =
            runServing(backend, stream, servingConfig(f));
        backend.verify();
        out.sim_cycles = backend.simCycles();
        out.sched_switches = backend.schedSwitches();
        out.sched_elisions = backend.schedElisions();
        out.adaptive_decisions = backend.adaptiveDecisions();
    } else {
        VacationServingBackend backend(
            vacBackendConfig(sc.shards, opt));
        const auto stream = runtime::makeStream(
            streamConfig(sc, f, sc.shards * 64ull), sc.requests);
        out.rep =
            runServing(backend, stream, servingConfig(f));
        backend.verify();
        out.sim_cycles = backend.simCycles();
        out.sched_switches = backend.schedSwitches();
        out.sched_elisions = backend.schedElisions();
    }
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall0)
                     .count();
    return out;
}

std::vector<Scenario>
scenarioTable(const ServeFlags &f, bool full)
{
    const u64 req = f.requests ? f.requests : (full ? 6000 : 1200);
    std::vector<Scenario> out;
    if (f.customScenario()) {
        Scenario sc;
        sc.workload = f.workload.empty() ? "kv" : f.workload;
        sc.shards = f.shards ? f.shards
                             : (sc.workload == "kv" ? 64u : 16u);
        sc.arrival = f.arrival == "bursty"
            ? runtime::ArrivalKind::Bursty
            : runtime::ArrivalKind::Poisson;
        sc.rate = f.rate != 0
            ? f.rate
            : (sc.workload == "kv" ? 450e3 : 200e3);
        sc.requests = req;
        std::ostringstream n;
        n << sc.workload << "/"
          << (sc.arrival == runtime::ArrivalKind::Bursty ? "bursty"
                                                         : "poisson")
          << "/s" << sc.shards;
        sc.name = n.str();
        out.push_back(sc);
        return out;
    }
    const bool kv = f.workload.empty() || f.workload == "kv";
    const bool vac = f.workload.empty() || f.workload == "vacation";
    if (kv) {
        out.push_back({"kv/poisson/s16", "kv", 16,
                       runtime::ArrivalKind::Poisson, 300e3, req});
        out.push_back({"kv/poisson/s64", "kv", 64,
                       runtime::ArrivalKind::Poisson, 450e3, req});
        out.push_back({"kv/bursty/s64", "kv", 64,
                       runtime::ArrivalKind::Bursty, 450e3, req});
    }
    if (vac)
        out.push_back({"vacation/poisson/s16", "vacation", 16,
                       runtime::ArrivalKind::Poisson, 200e3, req});
    return out;
}

double
msOf(u64 ns)
{
    return static_cast<double>(ns) * 1e-6;
}

void
recordScenario(const Scenario &sc, const ScenarioResult &r)
{
    if (!PerfReporter::instance().enabled())
        return;
    PerfRecord rec;
    rec.label = sc.name;
    rec.wall_s = r.wall_s;
    rec.sim_cycles = static_cast<double>(r.sim_cycles);
    rec.sched_switches = r.sched_switches;
    rec.sched_elisions = r.sched_elisions;
    PerfReporter::instance().record(std::move(rec));
}

//
// Capacity search mode
//

struct CapacityRow
{
    std::string name;
    runtime::CapacityResult res;
};

CapacityRow
searchCapacity(const std::string &workload, unsigned shards,
               const ServeFlags &f, const BenchOptions &opt, u64 req)
{
    Scenario sc;
    sc.workload = workload;
    sc.shards = shards;
    sc.arrival = runtime::ArrivalKind::Poisson;
    sc.requests = req;
    std::ostringstream n;
    n << workload << "/s" << shards;
    CapacityRow row;
    row.name = n.str();

    runtime::SloSpec slo;
    slo.p99_s = f.slo_p99_ms * 1e-3;
    row.res = runtime::findCapacity(
        [&](double rate) {
            Scenario probe = sc;
            probe.rate = rate;
            return runScenario(probe, f, opt).rep;
        },
        slo, /*lo_rate=*/2e3, /*max_rate=*/4e6);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    ServeFlags f;
    const BenchOptions opt = BenchOptions::parse(
        argc, argv, [&](const std::string &a) {
            auto val = [&](const char *p) {
                return a.substr(std::strlen(p));
            };
            auto dbl = [&](const char *p) {
                const std::string v = val(p);
                char *end = nullptr;
                const double d = std::strtod(v.c_str(), &end);
                if (v.empty() || !end || *end != '\0') {
                    std::cerr << argv[0] << ": invalid option '" << a
                              << "': expected a number\n";
                    std::exit(2);
                }
                return d;
            };
            auto uns = [&](const char *p) {
                const double d = dbl(p);
                if (d < 0 || d != static_cast<double>(
                        static_cast<unsigned>(d))) {
                    std::cerr << argv[0] << ": invalid option '" << a
                              << "': expected an unsigned integer\n";
                    std::exit(2);
                }
                return static_cast<unsigned>(d);
            };
            if (a.rfind("--workload=", 0) == 0) {
                f.workload = val("--workload=");
                if (f.workload != "kv" && f.workload != "vacation") {
                    std::cerr << argv[0]
                              << ": --workload= expects kv or "
                                 "vacation\n";
                    std::exit(2);
                }
                return true;
            }
            if (a.rfind("--shards=", 0) == 0) {
                f.shards = uns("--shards=");
                return true;
            }
            if (a.rfind("--rate=", 0) == 0) {
                f.rate = dbl("--rate=");
                return true;
            }
            if (a.rfind("--requests=", 0) == 0) {
                f.requests = uns("--requests=");
                return true;
            }
            if (a.rfind("--arrival=", 0) == 0) {
                f.arrival = val("--arrival=");
                if (f.arrival != "poisson" && f.arrival != "bursty") {
                    std::cerr << argv[0]
                              << ": --arrival= expects poisson or "
                                 "bursty\n";
                    std::exit(2);
                }
                return true;
            }
            if (a.rfind("--zipf=", 0) == 0) {
                f.zipf = dbl("--zipf=");
                return true;
            }
            if (a.rfind("--batch-budget-us=", 0) == 0) {
                f.batch_budget_us = uns("--batch-budget-us=");
                return true;
            }
            if (a.rfind("--max-batch=", 0) == 0) {
                f.max_batch = uns("--max-batch=");
                return true;
            }
            if (a.rfind("--queue-cap=", 0) == 0) {
                f.queue_cap = uns("--queue-cap=");
                return true;
            }
            if (a.rfind("--slo-p99-ms=", 0) == 0) {
                f.slo_p99_ms = dbl("--slo-p99-ms=");
                return true;
            }
            if (a.rfind("--adaptive=", 0) == 0) {
                const std::string v = val("--adaptive=");
                if (v == "on")
                    f.adaptive = true;
                else if (v == "off")
                    f.adaptive = false;
                else {
                    std::cerr << argv[0]
                              << ": --adaptive= expects on or off\n";
                    std::exit(2);
                }
                return true;
            }
            if (a == "--find-capacity") {
                f.find_capacity = true;
                return true;
            }
            if (a == "--check") {
                f.check = true;
                return true;
            }
            return false;
        });

    return guardedMain([&] {
        std::ostringstream serving_json;
        serving_json.precision(17);

        if (f.find_capacity || f.check) {
            // Max-throughput-under-SLO search (kv at two shard
            // counts to expose the scaling knee, plus vacation).
            const u64 req = f.requests ? f.requests
                                       : (opt.full ? 2400 : 800);
            const bool kv =
                f.workload.empty() || f.workload == "kv";
            const bool vac =
                f.workload.empty() || f.workload == "vacation";
            std::vector<CapacityRow> rows;
            if (kv) {
                rows.push_back(
                    searchCapacity("kv", 16, f, opt, req));
                rows.push_back(
                    searchCapacity("kv", 64, f, opt, req));
            }
            if (vac)
                rows.push_back(
                    searchCapacity("vacation", 16, f, opt, req));

            Table table({"scenario", "capacity_req_per_s",
                         "tput_at_cap", "p99_at_cap_ms", "shed",
                         "probes"});
            for (const auto &row : rows) {
                const auto &r = row.res;
                table.newRow()
                    .cell(row.name)
                    .cell(r.capacity_per_s, 1)
                    .cell(r.at_capacity.throughputPerSec(), 1)
                    .cell(msOf(runtime::histogramPercentile(
                              r.at_capacity.e2e_ns, 0.99)),
                          3)
                    .cell(r.at_capacity.shed)
                    .cell(r.probes.size());
            }
            std::cout << "== serve_kv  max throughput under p99 <= "
                      << f.slo_p99_ms << " ms ==\n";
            if (opt.csv)
                table.printCsv(std::cout);
            else
                table.printText(std::cout);
            std::cout << "\n";

            serving_json << "{\"mode\": \"capacity\", \"slo_p99_ms\": "
                         << f.slo_p99_ms << ", \"capacity\": [";
            for (size_t i = 0; i < rows.size(); ++i) {
                const auto &r = rows[i].res;
                serving_json
                    << (i ? ", " : "") << "{\"name\": \""
                    << rows[i].name << "\", \"capacity_per_s\": "
                    << r.capacity_per_s << ", \"probes\": "
                    << r.probes.size() << ", \"at_capacity\": "
                    << runtime::servingReportJson(r.at_capacity)
                    << "}";
            }
            serving_json << "]}";

            if (f.check) {
                int failures = 0;
                double cap16 = 0, cap64 = 0, capvac = 0;
                for (const auto &row : rows) {
                    if (row.name == "kv/s16")
                        cap16 = row.res.capacity_per_s;
                    else if (row.name == "kv/s64")
                        cap64 = row.res.capacity_per_s;
                    else if (row.name == "vacation/s16")
                        capvac = row.res.capacity_per_s;
                }
                if (kv && (cap16 <= 0 || cap64 <= cap16)) {
                    std::cerr << "CHECK FAILED: capacity not "
                                 "monotone in shard count: s16 -> "
                              << cap16 << ", s64 -> " << cap64
                              << "\n";
                    ++failures;
                }
                if (vac && capvac <= 0) {
                    std::cerr << "CHECK FAILED: vacation capacity "
                                 "search found no sustainable rate\n";
                    ++failures;
                }
                if (kv) {
                    // Below the knee the system must be shed-free
                    // and inside the SLO.
                    Scenario below;
                    below.workload = "kv";
                    below.shards = 64;
                    below.arrival = runtime::ArrivalKind::Poisson;
                    below.rate = 0.5 * cap64;
                    below.requests = req;
                    below.name = "kv/below-knee/s64";
                    const ScenarioResult r =
                        runScenario(below, f, opt);
                    runtime::SloSpec slo;
                    slo.p99_s = f.slo_p99_ms * 1e-3;
                    if (r.rep.shed != 0
                        || !runtime::meetsSlo(r.rep, slo)) {
                        std::cerr
                            << "CHECK FAILED: below-knee run at "
                            << below.rate << " req/s shed "
                            << r.rep.shed << " and p99 "
                            << msOf(runtime::histogramPercentile(
                                   r.rep.e2e_ns, 0.99))
                            << " ms\n";
                        ++failures;
                    }
                }
                if (failures) {
                    if (PerfReporter::instance().enabled())
                        PerfReporter::instance().setExtraBlock(
                            "serving", serving_json.str());
                    return 1;
                }
                std::cout << "CHECK OK: capacity monotone in shard "
                             "count; zero shed below the knee\n";
            }
        } else {
            // Scenario table mode.
            const auto scenarios = scenarioTable(f, opt.full);
            Table table({"scenario", "rate_req_per_s", "offered",
                         "completed", "shed", "tput_req_per_s",
                         "p50_ms", "p99_ms", "p999_ms", "occupancy"});
            serving_json << "{\"mode\": \"scenarios\", "
                         << "\"scenarios\": [";
            bool first = true;
            for (const Scenario &sc : scenarios) {
                const ScenarioResult r = runScenario(sc, f, opt);
                recordScenario(sc, r);
                const auto &rep = r.rep;
                table.newRow()
                    .cell(sc.name)
                    .cell(sc.rate, 0)
                    .cell(rep.offered)
                    .cell(rep.completed)
                    .cell(rep.shed)
                    .cell(rep.throughputPerSec(), 1)
                    .cell(msOf(runtime::histogramPercentile(
                              rep.e2e_ns, 0.50)),
                          3)
                    .cell(msOf(runtime::histogramPercentile(
                              rep.e2e_ns, 0.99)),
                          3)
                    .cell(msOf(runtime::histogramPercentile(
                              rep.e2e_ns, 0.999)),
                          3)
                    .cell(rep.meanOccupancy(), 3);
                serving_json
                    << (first ? "" : ", ") << "{\"name\": \""
                    << sc.name << "\", \"rate_per_s\": " << sc.rate
                    << ", \"adaptive_decisions\": "
                    << r.adaptive_decisions << ", \"report\": "
                    << runtime::servingReportJson(rep) << "}";
                first = false;
            }
            serving_json << "]}";
            std::cout << "== serve_kv  open-loop serving ==\n";
            if (opt.csv)
                table.printCsv(std::cout);
            else
                table.printText(std::cout);
            std::cout << "\n";
        }

        if (PerfReporter::instance().enabled())
            PerfReporter::instance().setExtraBlock(
                "serving", serving_json.str());
        return 0;
    });
}
