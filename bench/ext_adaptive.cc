/**
 * @file
 * Extension bench: adaptive STM selection. The paper's bottom line is
 * that no single STM wins everywhere and developers should pick per
 * workload; runtime/adaptive.hh automates the pick with a short probe
 * phase. This bench compares, per workload:
 *   - oracle: the best fixed STM (full sweep),
 *   - adaptive: probe-then-run,
 *   - default: always-NOrec (the paper's recommended default).
 * The adaptive pick should land within a few percent of the oracle and
 * beat the fixed default wherever NOrec is not the winner.
 */

#include "bench/common.hh"
#include "runtime/adaptive.hh"
#include "workloads/arraybench.hh"
#include "workloads/linkedlist.hh"
#include "workloads/skiplist.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::runtime;
using namespace pimstm::workloads;

namespace
{

struct Case
{
    std::string name;
    AdaptiveFactory factory;
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 full_tx = opt.full ? 60 : 25;
    const u32 probe_tx = 4;
    const u32 full_ops = opt.full ? 120 : 50;
    const u32 probe_ops = 10;

    const std::vector<Case> cases = {
        {"ArrayBench A",
         [&](bool probe) -> std::unique_ptr<Workload> {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadA(probe ? probe_tx
                                                   : full_tx));
         }},
        {"ArrayBench B",
         [&](bool probe) -> std::unique_ptr<Workload> {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadB(probe ? 4 * probe_tx
                                                   : 4 * full_tx));
         }},
        {"Linked-List HC",
         [&](bool probe) -> std::unique_ptr<Workload> {
             return std::make_unique<LinkedList>(
                 LinkedListParams::highContention(probe ? probe_ops
                                                        : full_ops));
         }},
        {"Skip-List LC",
         [&](bool probe) -> std::unique_ptr<Workload> {
             return std::make_unique<SkipList>(
                 SkipListParams::lowContention(probe ? probe_ops
                                                     : full_ops));
         }},
    };

    Table table({"workload", "adaptive_pick", "adaptive_tput",
                 "oracle_stm", "oracle_tput", "norec_tput",
                 "adaptive_vs_oracle", "probe_cost_ms"});

    for (const auto &c : cases) {
        RunSpec spec;
        spec.tasklets = 11;
        spec.mram_bytes = 8 * 1024 * 1024;

        const AdaptiveResult ar = adaptiveRun(c.factory, spec);

        // Oracle: run the FULL workload under every kind.
        double oracle = 0, norec = 0;
        core::StmKind oracle_kind = core::StmKind::NOrec;
        for (core::StmKind kind : core::allStmKinds()) {
            RunSpec s = spec;
            s.kind = kind;
            auto wl = c.factory(false);
            const double tput = runWorkload(*wl, s).throughput;
            if (tput > oracle) {
                oracle = tput;
                oracle_kind = kind;
            }
            if (kind == core::StmKind::NOrec)
                norec = tput;
        }

        table.newRow()
            .cell(c.name)
            .cell(core::stmKindName(ar.chosen_kind))
            .cell(ar.final.throughput, 1)
            .cell(core::stmKindName(oracle_kind))
            .cell(oracle, 1)
            .cell(norec, 1)
            .cell(oracle > 0 ? ar.final.throughput / oracle : 0, 3)
            .cell(ar.probe_seconds * 1e3, 3);
    }

    std::cout << "== EXT  adaptive STM selection vs oracle and fixed "
                 "NOrec (11 tasklets, MRAM) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
