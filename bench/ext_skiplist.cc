/**
 * @file
 * Extension bench: the Skip-List set vs the paper's Linked-List under
 * the same operation mixes. Skip-list transactions have O(log n) read
 * sets where the linked list's are O(n), so the STM ranking shifts —
 * shorter transactions favour the lean NOrec design even more, while
 * the linked list's long read-mostly traversals are where the ORec
 * designs close the gap. Run across the whole taxonomy.
 */

#include "bench/common.hh"
#include "workloads/linkedlist.hh"
#include "workloads/skiplist.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 ops = opt.full ? 100 : 40;

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;

    sweepKinds(
        "EXT  Skip-List LC (90% contains, 64 elems)",
        [&] {
            return std::make_unique<SkipList>(
                SkipListParams::lowContention(ops));
        },
        core::MetadataTier::Mram, opt, base);

    sweepKinds(
        "EXT  Skip-List HC (50% contains, 64 elems)",
        [&] {
            return std::make_unique<SkipList>(
                SkipListParams::highContention(ops));
        },
        core::MetadataTier::Mram, opt, base);

    // Same set size for the linked list, for a like-for-like contrast.
    LinkedListParams ll = LinkedListParams::lowContention(ops);
    ll.initial_size = 64;
    ll.value_range = 256;
    sweepKinds(
        "EXT  Linked-List LC at 64 elems (contrast)",
        [&] { return std::make_unique<LinkedList>(ll); },
        core::MetadataTier::Mram, opt, base);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
