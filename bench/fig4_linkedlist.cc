/**
 * @file
 * Reproduces Fig. 4 (c,d,g,h,k,l): the concurrent Linked-List under low
 * (90% contains) and high (50% contains) contention, metadata in MRAM.
 *
 * Paper shapes to check against:
 *  - NOrec best in both workloads (LC: +6% over Tiny, HC: +15%).
 *  - VR variants clearly worst — much higher abort rate from read->
 *    write upgrade conflicts on list nodes.
 *  - ETL slightly ahead of CTL; write policy (WB vs WT) negligible.
 */

#include "bench/common.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 ops = opt.full ? 100 : 40;

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;

    sweepKinds(
        "Fig 4c/g/k  Linked-List LC (90% contains)",
        [&] {
            return std::make_unique<LinkedList>(
                LinkedListParams::lowContention(ops));
        },
        core::MetadataTier::Mram, opt, base);

    sweepKinds(
        "Fig 4d/h/l  Linked-List HC (50% contains)",
        [&] {
            return std::make_unique<LinkedList>(
                LinkedListParams::highContention(ops));
        },
        core::MetadataTier::Mram, opt, base);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
