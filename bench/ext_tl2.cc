/**
 * @file
 * Extension bench: Tiny vs TL2 — quantifying the snapshot-extension
 * mechanism. §3.2.1 of the paper: "This extension mechanism might
 * allow transactions from being spared from aborting, enhancing
 * efficiency with respect to simpler designs (e.g., TL2)." TL2 here is
 * Tiny CTLWB with a fixed read window (version > snapshot always
 * aborts), so the delta against Tiny CTLWB isolates the extension.
 *
 * The extension matters most when transactions are long relative to
 * the commit rate (every concurrent commit moves the clock past open
 * snapshots): ArrayBench A with many tasklets is the showcase.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 tx_a = opt.full ? 30 : 10;
    const u32 tx_b = opt.full ? 400 : 150;
    const u32 ll_ops = opt.full ? 100 : 40;

    struct Case
    {
        const char *name;
        WorkloadFactory factory;
    };
    const std::vector<Case> cases = {
        {"ArrayBench A (long tx)",
         [&] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadA(tx_a));
         }},
        {"ArrayBench B (tiny tx)",
         [&] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadB(tx_b));
         }},
        {"Linked-List HC",
         [&] {
             return std::make_unique<LinkedList>(
                 LinkedListParams::highContention(ll_ops));
         }},
    };

    Table table({"workload", "stm", "tasklets", "tput_tx_per_s",
                 "abort_rate", "extensions"});

    for (const auto &c : cases) {
        for (core::StmKind kind :
             {core::StmKind::TinyCtlWb, core::StmKind::Tl2}) {
            for (unsigned t : {4u, 11u}) {
                runtime::RunSpec base;
                base.mram_bytes = 8 * 1024 * 1024;
                const auto pr = runPoint(c.factory, kind,
                                         core::MetadataTier::Mram, t,
                                         opt.seeds, base);
                table.newRow()
                    .cell(c.name)
                    .cell(core::stmKindName(kind))
                    .cell(t)
                    .cell(pr.throughput_mean, 1)
                    .cell(pr.abort_rate_mean, 4)
                    .cell(kind == core::StmKind::Tl2 ? "n/a (fixed)"
                                                     : "per-run");
            }
        }
    }

    std::cout << "== EXT  Tiny (snapshot extension) vs TL2 (fixed "
                 "window) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
