/**
 * @file
 * Observability microbenchmark: the cost and the fidelity of the trace
 * layer (docs/observability.md).
 *
 *  - off-mode overhead: runs the Fig. 4 ArrayBench point with tracing
 *    compiled in but disabled, twice, and reports the wall-clock
 *    spread. The disabled path is one null compare per instrumented
 *    site, so the gate (CI compares this binary against the
 *    pre-observability one) expects well under 1% — the table here
 *    reports the run-to-run noise floor that gate must beat.
 *  - on-mode cost: the same point traced vs untraced. The simulated
 *    statistics must be bitwise identical (tracing is host-only); the
 *    table reports the host wall-clock price of recording, plus what
 *    was recorded (events, ring drops).
 *  - per-kind fidelity: for every STM kind, a contended run with
 *    tracing on; the trace aggregates must agree with StmStats (aborts
 *    by reason, commit counts), demonstrating the heatmap and the
 *    histograms measure the same run the stats do.
 */

#include <chrono>

#include "bench/common.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

namespace
{

/** Simulated fields that must not change when tracing is on. */
void
expectSameSimulation(const runtime::RunResult &a,
                     const runtime::RunResult &b)
{
    fatalIf(a.dpu.total_cycles != b.dpu.total_cycles ||
                a.dpu.instructions != b.dpu.instructions ||
                a.dpu.mram_reads != b.dpu.mram_reads ||
                a.dpu.mram_writes != b.dpu.mram_writes ||
                a.dpu.atomic_acquires != b.dpu.atomic_acquires ||
                a.dpu.atomic_stall_cycles != b.dpu.atomic_stall_cycles ||
                a.dpu.phase_cycles != b.dpu.phase_cycles ||
                a.stm.starts != b.stm.starts ||
                a.stm.commits != b.stm.commits ||
                a.stm.aborts != b.stm.aborts ||
                a.stm.abort_reasons != b.stm.abort_reasons ||
                a.stm.reads != b.stm.reads ||
                a.stm.writes != b.stm.writes,
            "tracing changed the simulation");
}

/** Trace aggregates must describe the same run StmStats does. */
void
expectTraceMatchesStats(const runtime::RunResult &r)
{
    fatalIf(!r.trace, "traced run returned no TraceBuffer");
    const core::TraceBuffer &t = *r.trace;
    fatalIf(t.count(core::TxEvent::Start) != r.stm.starts ||
                t.count(core::TxEvent::Commit) != r.stm.commits ||
                t.count(core::TxEvent::Abort) != r.stm.aborts,
            "trace event counts diverge from StmStats");
    fatalIf(t.abortsByReason() != r.stm.abort_reasons,
            "trace abort attribution diverges from StmStats");
    fatalIf(t.txLatency().count != r.stm.commits,
            "tx-latency histogram count diverges from commits");
}

double
timedRun(runtime::Workload &wl, const runtime::RunSpec &spec,
         runtime::RunResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = runtime::runWorkload(wl, spec);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Off-mode noise floor and on-mode recording cost on the Fig. 4
 * fast path. */
void
traceOverhead(const BenchOptions &opt)
{
    const u32 tx = opt.full ? 30 : 8;
    runtime::RunSpec off;
    off.kind = core::StmKind::NOrec;
    off.tasklets = 11;
    off.mram_bytes = 8 * 1024 * 1024;

    runtime::RunSpec on = off;
    on.trace = true;
    on.trace_buffer_capacity = 4096;

    const int reps = opt.full ? 5 : 3;
    double best_off = 1e300, best_off2 = 1e300, best_on = 1e300;
    runtime::RunResult r_off, r_off2, r_on;
    for (int i = 0; i < reps; ++i) {
        ArrayBench a(ArrayBenchParams::workloadA(tx));
        best_off = std::min(best_off, timedRun(a, off, r_off));
        ArrayBench a2(ArrayBenchParams::workloadA(tx));
        best_off2 = std::min(best_off2, timedRun(a2, off, r_off2));
        ArrayBench b(ArrayBenchParams::workloadA(tx));
        best_on = std::min(best_on, timedRun(b, on, r_on));
    }
    expectSameSimulation(r_off, r_off2);
    expectSameSimulation(r_off, r_on);
    expectTraceMatchesStats(r_on);

    u64 events = 0;
    for (size_t e = 0; e < core::kNumTxEvents; ++e)
        events += r_on.trace->count(static_cast<core::TxEvent>(e));

    Table table({"config", "wall_s", "overhead_pct", "events", "dropped"});
    table.newRow().cell("trace-off").cell(best_off, 4).cell(0.0, 2)
        .cell(u64{0}).cell(u64{0});
    table.newRow()
        .cell("trace-off-again")
        .cell(best_off2, 4)
        .cell(100.0 * (best_off2 - best_off) / best_off, 2)
        .cell(u64{0})
        .cell(u64{0});
    table.newRow()
        .cell("trace-on")
        .cell(best_on, 4)
        .cell(100.0 * (best_on - best_off) / best_off, 2)
        .cell(events)
        .cell(r_on.trace->dropped());
    std::cout << "== micro_trace  overhead (ArrayBench A, NOrec, 11 "
                 "tasklets; simulated stats bitwise equal) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

/** Traced contended run per STM kind: aggregates vs StmStats. */
void
perKindFidelity(const BenchOptions &opt)
{
    const u32 tx = opt.full ? 60 : 20;

    Table table({"stm", "commits", "aborts", "lock_acquires",
                 "lock_waits", "validates", "tx_lat_mean", "dropped"});
    for (core::StmKind kind : core::allStmKinds()) {
        runtime::RunSpec spec;
        spec.kind = kind;
        spec.tasklets = 8;
        spec.mram_bytes = 8 * 1024 * 1024;
        spec.trace = true;

        ArrayBench wl(ArrayBenchParams::workloadB(tx));
        const auto r = runtime::runWorkload(wl, spec);
        expectTraceMatchesStats(r);
        const core::TraceBuffer &t = *r.trace;
        table.newRow()
            .cell(core::stmKindName(kind))
            .cell(r.stm.commits)
            .cell(r.stm.aborts)
            .cell(t.count(core::TxEvent::LockAcquire))
            .cell(t.count(core::TxEvent::LockWait))
            .cell(t.count(core::TxEvent::Validate))
            .cell(t.txLatency().mean(), 1)
            .cell(t.dropped());
    }
    std::cout << "== micro_trace  per-kind fidelity (ArrayBench B, 8 "
                 "tasklets; trace aggregates agree with StmStats) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = BenchOptions::parse(argc, argv);
    return guardedMain([&] {
        traceOverhead(opt);
        perKindFidelity(opt);
        return 0;
    });
}
