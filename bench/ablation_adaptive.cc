/**
 * @file
 * Ablation A6: the online epoch feedback controller vs static
 * configurations (docs/adaptive.md). Sweeps every STM kind over the
 * tasklet series with the controller off (static) and on (adaptive,
 * tuning backoff/CM, the tasklet throttle and hot-lock migration), on
 * one phased workload whose contention regime changes mid-run and on
 * two stable ArrayBench workloads.
 *
 * --check asserts the acceptance gates: the best adaptive point must
 * be at least as good as the best static point on the phased workload
 * (no static configuration is right for all three phases; the
 * controller re-tunes at phase boundaries), and within 2% of the best
 * static point on every stable workload (the controller must not
 * hurt workloads that need no adaptation).
 *
 * A separate single run with live STM-kind switching enabled records
 * the controller's decision timeline; --perf-json surfaces it as the
 * deterministic `adaptive` block (exact-match gated by
 * scripts/check_perf_json.py against BENCH_sim.adaptive.json).
 *
 * The common contention-knob flags --backoff=BASE:SHIFT and
 * --cm=POLLS:CYCLES (bench/common.hh KnobFlags) apply to the static
 * sweeps and set the controller's starting point.
 */

#include <sstream>

#include "bench/common.hh"
#include "runtime/adaptive.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

namespace
{

/** Best-throughput point of one (workload, mode) sweep. */
struct BestPoint
{
    double tput = 0;
    double abort_rate = 0;
    core::StmKind kind{};
    unsigned tasklets = 0;
};

/** Controller configuration used by the adaptive sweeps: every knob
 * except kind switching (exercised by the timeline run below, where a
 * single deterministic run keeps the decision log readable). */
runtime::AdaptiveSpec
sweepAdaptiveSpec(bool full)
{
    runtime::AdaptiveSpec a;
    a.enabled = true;
    a.epoch_cycles = full ? 200000 : 50000;
    a.tune_kind = false;
    return a;
}

/** Render an AdaptiveReport as the deterministic `adaptive` perf-json
 * block: simulated cycles and decisions only, no host time. */
std::string
reportJson(const runtime::AdaptiveReport &rep)
{
    std::ostringstream os;
    os << "{\n      \"epochs\": " << rep.epochs
       << ",\n      \"final_kind\": \""
       << core::stmKindName(rep.final_kind)
       << "\",\n      \"final_tasklet_limit\": "
       << rep.final_tasklet_limit
       << ",\n      \"promotions\": " << rep.promotions
       << ",\n      \"demotions\": " << rep.demotions
       << ",\n      \"decisions\": [";
    for (size_t i = 0; i < rep.decisions.size(); ++i) {
        const auto &d = rep.decisions[i];
        os << (i ? "," : "") << "\n        {\"epoch\": " << d.epoch
           << ", \"cycle\": " << d.cycle << ", \"action\": \""
           << runtime::adaptiveActionName(d.action)
           << "\", \"value\": " << d.value << "}";
    }
    os << (rep.decisions.empty() ? "]" : "\n      ]") << "\n    }";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    const BenchOptions opt = BenchOptions::parse(
        argc, argv, [&](const std::string &a) {
            if (a == "--check") {
                check = true;
                return true;
            }
            return false;
        });

    return guardedMain([&] {
        const std::vector<unsigned> tasklet_series =
            opt.full ? std::vector<unsigned>{1, 2, 4, 8, 11, 16, 24}
                     : std::vector<unsigned>{1, 4, 8, 16};

        struct Case
        {
            const char *name;
            bool phased; ///< gated "adaptive >= best static"
            WorkloadFactory factory;
        };
        const std::vector<Case> cases = {
            {"Phased", true,
             [&] {
                 return std::make_unique<PhasedWorkload>(
                     opt.full ? PhasedParams::full()
                              : PhasedParams::quick());
             }},
            {"ArrayBench A", false,
             [&] {
                 return std::make_unique<ArrayBench>(
                     ArrayBenchParams::workloadA(opt.full ? 50 : 20));
             }},
            {"ArrayBench B", false,
             [&] {
                 return std::make_unique<ArrayBench>(
                     ArrayBenchParams::workloadB(opt.full ? 200 : 80));
             }},
        };

        Table table({"workload", "mode", "stm", "tasklets",
                     "tput_tx_per_s", "abort_rate"});
        // cases.size() x {static, adaptive}
        std::vector<std::array<BestPoint, 2>> best(cases.size());

        for (size_t c = 0; c < cases.size(); ++c) {
            for (const bool adaptive : {false, true}) {
                for (core::StmKind kind : core::allStmKinds()) {
                    for (const unsigned tasklets : tasklet_series) {
                        runtime::RunSpec base;
                        base.mram_bytes = 8 * 1024 * 1024;
                        opt.applyTo(base);
                        if (adaptive)
                            base.adaptive = sweepAdaptiveSpec(opt.full);
                        const auto pr = runPoint(
                            cases[c].factory, kind,
                            core::MetadataTier::Mram, tasklets,
                            opt.seeds, base);
                        if (!pr.runnable)
                            continue;
                        table.newRow()
                            .cell(cases[c].name)
                            .cell(adaptive ? "adaptive" : "static")
                            .cell(core::stmKindName(kind))
                            .cell(tasklets)
                            .cell(pr.throughput_mean, 1)
                            .cell(pr.abort_rate_mean, 4);
                        BestPoint &b = best[c][adaptive ? 1 : 0];
                        if (pr.throughput_mean > b.tput) {
                            b.tput = pr.throughput_mean;
                            b.abort_rate = pr.abort_rate_mean;
                            b.kind = kind;
                            b.tasklets = tasklets;
                        }
                    }
                }
            }
        }

        std::cout << "== Ablation A6  epoch feedback controller vs "
                     "static configs ==\n";
        if (opt.csv)
            table.printCsv(std::cout);
        else
            table.printText(std::cout);
        std::cout << "\n";
        for (size_t c = 0; c < cases.size(); ++c) {
            const BestPoint &s = best[c][0];
            const BestPoint &a = best[c][1];
            std::cout << cases[c].name << ": best static "
                      << core::stmKindName(s.kind) << "/t" << s.tasklets
                      << " " << s.tput << " tx/s (abort "
                      << s.abort_rate << "), best adaptive "
                      << core::stmKindName(a.kind) << "/t" << a.tasklets
                      << " " << a.tput << " tx/s (abort "
                      << a.abort_rate << "), ratio "
                      << (s.tput > 0 ? a.tput / s.tput : 0) << "x\n";
        }

        // Deterministic kind-switch timeline: one run of the phased
        // workload with every knob live, starting from NOrec with the
        // full word-based taxonomy spread as candidates. Its decision
        // log becomes the `adaptive` perf-json block.
        {
            auto wl = cases[0].factory();
            runtime::RunSpec spec;
            spec.mram_bytes = 8 * 1024 * 1024;
            opt.applyTo(spec);
            spec.kind = core::StmKind::NOrec;
            spec.tasklets = 16;
            spec.seed = 1;
            spec.adaptive = sweepAdaptiveSpec(opt.full);
            spec.adaptive.tune_kind = true;
            spec.adaptive.kind_candidates = {core::StmKind::NOrec,
                                             core::StmKind::TinyEtlWb,
                                             core::StmKind::VrEtlWb};
            const auto r = runtime::runWorkload(*wl, spec);
            std::cout << "\nKind-switch timeline (Phased, NOrec start, "
                      << r.adaptive->epochs << " epochs): final kind "
                      << core::stmKindName(r.adaptive->final_kind)
                      << ", " << r.adaptive->decisions.size()
                      << " decisions, " << r.stm.kind_switches
                      << " switches, " << r.stm.lock_migrations
                      << " migrations\n";
            if (PerfReporter::instance().enabled())
                PerfReporter::instance().setExtraBlock(
                    "adaptive", reportJson(*r.adaptive));
        }

        if (check) {
            int failures = 0;
            for (size_t c = 0; c < cases.size(); ++c) {
                const BestPoint &s = best[c][0];
                const BestPoint &a = best[c][1];
                if (cases[c].phased) {
                    if (a.tput < s.tput) {
                        std::cerr << "CHECK FAILED: " << cases[c].name
                                  << " adaptive best " << a.tput
                                  << " tx/s < static best " << s.tput
                                  << " tx/s\n";
                        ++failures;
                    }
                } else if (a.tput < 0.98 * s.tput) {
                    std::cerr << "CHECK FAILED: " << cases[c].name
                              << " adaptive best " << a.tput
                              << " tx/s < 0.98x static best " << s.tput
                              << " tx/s\n";
                    ++failures;
                }
            }
            if (failures)
                return 1;
            std::cout << "CHECK OK: adaptive >= best static on the "
                         "phased workload and within 2% of best "
                         "static on every stable workload\n";
        }
        return 0;
    });
}
