/**
 * @file
 * Reproduces the paper's §4.2.2 developer guidance as a *generated*
 * table: sweep a synthetic workload-characteristic space (read-set
 * size x contention level x update fraction, all shaped with
 * ArrayBench-style transactions) and report which STM wins each cell.
 *
 * Paper claims this table should echo:
 *  - no one-size-fits-all STM exists;
 *  - NOrec wins small-transaction and contended cells;
 *  - VR ETL wins large-read-set, low-conflict cells;
 *  - the best-vs-NOrec gap approaches ~2x in VR-favoured cells.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

namespace
{

struct Cell
{
    const char *reads_label;
    u32 read_ops;    // phase-1 read-only accesses
    const char *contention_label;
    u32 region_k;    // smaller region -> more conflicts
    u32 rmw_ops;
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const unsigned tasklets = 11;
    const u32 tx = opt.full ? 60 : 20;

    const std::vector<Cell> cells = {
        {"large-RS", 100, "low-contention", 10000, 10},
        {"large-RS", 100, "high-contention", 32, 10},
        {"small-RS", 4, "low-contention", 10000, 4},
        {"small-RS", 4, "high-contention", 16, 4},
        {"read-only-heavy", 60, "low-contention", 8192, 2},
        {"write-heavy", 0, "high-contention", 64, 16},
    };

    Table table({"workload_shape", "contention", "best_stm",
                 "best_tput", "norec_tput", "best_vs_norec"});

    for (const Cell &c : cells) {
        ArrayBenchParams params;
        params.region_y = c.read_ops > 0 ? 2500 : 0;
        params.read_ops = c.read_ops;
        params.region_k = c.region_k;
        params.rmw_ops = c.rmw_ops;
        params.tx_per_tasklet = tx;

        double best = 0, norec = 0;
        core::StmKind best_kind = core::StmKind::NOrec;
        for (core::StmKind kind : core::allStmKinds()) {
            runtime::RunSpec base;
            base.mram_bytes = 8 * 1024 * 1024;
            const auto pr = runPoint(
                [&] { return std::make_unique<ArrayBench>(params); },
                kind, core::MetadataTier::Mram, tasklets, opt.seeds,
                base);
            if (pr.throughput_mean > best) {
                best = pr.throughput_mean;
                best_kind = kind;
            }
            if (kind == core::StmKind::NOrec)
                norec = pr.throughput_mean;
        }
        table.newRow()
            .cell(c.reads_label)
            .cell(c.contention_label)
            .cell(core::stmKindName(best_kind))
            .cell(best, 1)
            .cell(norec, 1)
            .cell(norec > 0 ? best / norec : 0.0, 3);
    }

    std::cout << "== §4.2.2  Which STM fits which workload "
                 "(11 tasklets, metadata MRAM) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
