/**
 * @file
 * Reproduces Fig. 6: for each workload, the peak throughput of every
 * STM normalized by the peak throughput of the best STM for that
 * workload (lower is better), for metadata in MRAM (6a) and WRAM (6b).
 * Also prints the §4.2.3 WRAM-over-MRAM speedups (E17).
 *
 * Paper shapes to check against:
 *  - 6a (MRAM): NOrec has the best average and median ratio; no STM is
 *    within ~2x of the best on every workload (no one-size-fits-all).
 *  - 6b (WRAM): the Tiny ETL variants become the best on average;
 *    NOrec remains the most competitive in most workloads.
 *  - WRAM speedups: ~5% for KMeans LC, 2.46x-5.1x elsewhere with a
 *    geometric mean around 2.86x.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"
#include "workloads/kmeans.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

namespace
{

struct NamedWorkload
{
    std::string name;
    WorkloadFactory factory;
};

std::vector<NamedWorkload>
workloadSet(const BenchOptions &opt)
{
    const u32 tx_a = opt.full ? 20 : 6;
    const u32 tx_b = opt.full ? 300 : 80;
    const u32 ll_ops = opt.full ? 100 : 30;
    const u32 km_pts = opt.full ? 16 : 6;
    return {
        {"ArrayBench A",
         [=] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadA(tx_a));
         }},
        {"ArrayBench B",
         [=] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadB(tx_b));
         }},
        {"Linked-List LC",
         [=] {
             return std::make_unique<LinkedList>(
                 LinkedListParams::lowContention(ll_ops));
         }},
        {"Linked-List HC",
         [=] {
             return std::make_unique<LinkedList>(
                 LinkedListParams::highContention(ll_ops));
         }},
        {"KMeans LC",
         [=] {
             return std::make_unique<KMeans>(
                 KMeansParams::lowContention(km_pts));
         }},
        {"KMeans HC",
         [=] {
             return std::make_unique<KMeans>(
                 KMeansParams::highContention(km_pts));
         }},
    };
}

} // namespace

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const auto workloads = workloadSet(opt);

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;
    opt.applyTo(base);

    // peak[workload][kind][tier]
    std::map<std::string, std::map<core::StmKind, std::map<int, double>>>
        peaks;

    // Flatten the whole (tier x workload x kind x tasklets) sweep into
    // one job list and fan it out over the host thread pool; the peak
    // reduction below walks per-index slots in sweep order, so the
    // result is identical for any --jobs value.
    struct Job
    {
        core::MetadataTier tier;
        size_t wl;
        core::StmKind kind;
        unsigned tasklets;
    };
    std::vector<Job> sweep;
    for (const auto tier :
         {core::MetadataTier::Mram, core::MetadataTier::Wram})
        for (size_t w = 0; w < workloads.size(); ++w)
            for (core::StmKind kind : core::allStmKinds())
                for (unsigned t : taskletSeries(opt.full))
                    sweep.push_back({tier, w, kind, t});

    std::vector<PointResult> prs(sweep.size());
    util::parallelFor(sweep.size(), [&](size_t i) {
        prs[i] = runPoint(workloads[sweep[i].wl].factory, sweep[i].kind,
                          sweep[i].tier, sweep[i].tasklets, opt.seeds,
                          base);
    });

    for (size_t i = 0; i < sweep.size(); ++i) {
        const Job &j = sweep[i];
        double &best =
            peaks[workloads[j.wl].name][j.kind][static_cast<int>(j.tier)];
        if (prs[i].runnable)
            best = std::max(best, prs[i].throughput_mean);
    }

    for (const auto tier :
         {core::MetadataTier::Mram, core::MetadataTier::Wram}) {
        const int ti = static_cast<int>(tier);
        Table table({"stm", "mean_ratio", "median_ratio", "max_ratio",
                     "workloads_won"});
        for (core::StmKind kind : core::allStmKinds()) {
            std::vector<double> ratios;
            unsigned won = 0;
            for (const auto &wl : workloads) {
                double best_any = 0;
                for (core::StmKind k2 : core::allStmKinds())
                    best_any =
                        std::max(best_any, peaks[wl.name][k2][ti]);
                const double mine = peaks[wl.name][kind][ti];
                if (mine <= 0)
                    continue;
                ratios.push_back(best_any / mine);
                if (mine >= best_any * 0.999)
                    ++won;
            }
            table.newRow()
                .cell(core::stmKindName(kind))
                .cell(mean(ratios), 3)
                .cell(median(ratios), 3)
                .cell(maxOf(ratios), 3)
                .cell(won);
        }
        std::cout << "== Fig 6" << (tier == core::MetadataTier::Mram
                                        ? "a (metadata MRAM)"
                                        : "b (metadata WRAM)")
                  << "  peak-throughput ratio vs best (lower=better) ==\n";
        if (opt.csv)
            table.printCsv(std::cout);
        else
            table.printText(std::cout);
        std::cout << "\n";
    }

    // E17: WRAM speedup over MRAM, per workload (best STM each side).
    Table table({"workload", "best_peak_mram", "best_peak_wram",
                 "wram_speedup"});
    std::vector<double> speedups;
    for (const auto &wl : workloads) {
        double best_m = 0, best_w = 0;
        for (core::StmKind k : core::allStmKinds()) {
            best_m = std::max(
                best_m,
                peaks[wl.name][k][static_cast<int>(
                    core::MetadataTier::Mram)]);
            best_w = std::max(
                best_w,
                peaks[wl.name][k][static_cast<int>(
                    core::MetadataTier::Wram)]);
        }
        const double speedup = best_m > 0 ? best_w / best_m : 0;
        if (speedup > 0)
            speedups.push_back(speedup);
        table.newRow()
            .cell(wl.name)
            .cell(best_m, 1)
            .cell(best_w, 1)
            .cell(speedup, 3);
    }
    std::cout << "== §4.2.3  WRAM-over-MRAM peak-throughput speedups "
                 "(geomean "
              << (speedups.empty() ? 0.0 : geomean(speedups)) << ") ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
