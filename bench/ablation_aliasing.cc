/**
 * @file
 * Ablation A3: atomic-register aliasing (§3.2.1). The hardware hashes
 * lock addresses onto 256 register bits, so unrelated CAS emulations
 * can serialize. The paper claims the impact is negligible because the
 * bits are held only for the instants needed to inspect/update a lock
 * word. Shrinking the usable register amplifies aliasing until the
 * claim visibly breaks — this bench quantifies where.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 tx = opt.full ? 20 : 8;
    const unsigned tasklets = 11;

    Table table({"stm", "atomic_bits", "tput_tx_per_s", "abort_rate",
                 "tput_vs_256bits"});

    for (core::StmKind kind :
         {core::StmKind::TinyEtlWb, core::StmKind::VrEtlWb,
          core::StmKind::NOrec}) {
        double baseline = 0;
        for (unsigned bits : {256u, 64u, 16u, 4u, 1u}) {
            runtime::RunSpec base;
            base.mram_bytes = 8 * 1024 * 1024;
            base.atomic_bits_override = bits;
            const auto pr = runPoint(
                [&] {
                    return std::make_unique<ArrayBench>(
                        ArrayBenchParams::workloadA(tx));
                },
                kind, core::MetadataTier::Mram, tasklets, opt.seeds,
                base);
            if (bits == 256)
                baseline = pr.throughput_mean;
            table.newRow()
                .cell(core::stmKindName(kind))
                .cell(bits)
                .cell(pr.throughput_mean, 1)
                .cell(pr.abort_rate_mean, 4)
                .cell(baseline > 0 ? pr.throughput_mean / baseline : 1.0,
                      3);
        }
    }

    std::cout << "== Ablation A3  atomic-register aliasing "
                 "(ArrayBench A, 11 tasklets) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
