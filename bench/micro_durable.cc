/**
 * @file
 * Durable-transaction microbenchmark (docs/durability.md).
 *
 *  - durability cost: every STM kind runs a bank-transfer workload
 *    with --durable off and on; reports the throughput ratio and the
 *    per-commit persist cost (flush fences, log bytes).
 *  - crash matrix: every STM kind under seeded whole-DPU crash plans
 *    (`dpu-crash=`) with durable mode on — each run must recover,
 *    restart, complete, and keep the transfer sum invariant; the table
 *    shows what recovery found (redone / undone / discarded / torn).
 *  - --check: the fast-path gate. A durable-off run must be bitwise
 *    identical to a plain run (the flag adds only never-taken
 *    branches) with host wall-clock overhead <= 1% (best-of-N), and
 *    the config exclusions (serial fallback, boosting) must be
 *    refused loudly.
 *
 * With --perf-json=F the cost and crash-matrix points land in the
 * artifact together with the aggregate `durable` block; CI diffs it
 * against bench/baselines/BENCH_sim.durable.json via
 * scripts/check_perf_json.py.
 */

#include <chrono>

#include "bench/common.hh"
#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

namespace
{

/** Parameters for TransferWorkload. */
struct TransferParams
{
    u32 accounts = 256;
    u32 initial = 100; ///< starting balance per account
    u32 txs = 30;      ///< transactions per tasklet
    u32 hops = 2;      ///< transfers per transaction

    static TransferParams
    sized(bool full)
    {
        TransferParams p;
        p.txs = full ? 150 : 30;
        return p;
    }
};

/**
 * Bank transfers: each transaction moves one unit between @p hops
 * random account pairs. The invariant — the total balance never
 * changes — holds across aborts, whole-DPU crashes, recoveries and
 * restarts, which makes it the right oracle for crash-stitched
 * histories: re-executed transfers after a restart are new committed
 * transactions, not double-applied old ones.
 */
class TransferWorkload : public runtime::Workload
{
  public:
    explicit TransferWorkload(const TransferParams &params)
        : params_(params)
    {}

    const char *name() const override { return "Transfer"; }

    void
    configure(core::StmConfig &cfg) const override
    {
        cfg.max_read_set = 2 * params_.hops + 8;
        cfg.max_write_set = 2 * params_.hops + 8;
        cfg.data_words_hint = params_.accounts;
    }

    void
    setup(sim::Dpu &dpu, core::Stm &) override
    {
        accounts_ = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                           params_.accounts);
        accounts_.fill(dpu, params_.initial);
    }

    void
    tasklet(sim::DpuContext &ctx, core::Stm &stm) override
    {
        for (u32 t = 0; t < params_.txs; ++t) {
            core::atomically(stm, ctx, [&](core::TxHandle &tx) {
                for (u32 h = 0; h < params_.hops; ++h) {
                    const u32 src = static_cast<u32>(
                        ctx.rng().below(params_.accounts));
                    const u32 dst = static_cast<u32>(
                        ctx.rng().below(params_.accounts));
                    const u32 s = tx.read(accounts_.at(src));
                    const u32 d = tx.read(accounts_.at(dst));
                    if (src == dst || s == 0)
                        continue;
                    tx.write(accounts_.at(src), s - 1);
                    tx.write(accounts_.at(dst), d + 1);
                }
            });
        }
    }

    void
    verify(sim::Dpu &dpu, core::Stm &) override
    {
        u64 sum = 0;
        for (u32 i = 0; i < params_.accounts; ++i)
            sum += accounts_.peek(dpu, i);
        const u64 expected = static_cast<u64>(params_.accounts) *
                             static_cast<u64>(params_.initial);
        fatalIf(sum != expected,
                "transfer sum invariant broken: total balance ", sum,
                " != ", expected);
    }

  private:
    TransferParams params_;
    runtime::SharedArray32 accounts_;
};

double
timedRun(runtime::Workload &wl, const runtime::RunSpec &spec,
         runtime::RunResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = runtime::runWorkload(wl, spec);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

void
recordPoint(const std::string &label, double wall_s,
            const runtime::RunResult &r)
{
    if (!PerfReporter::instance().enabled())
        return;
    PerfRecord rec;
    rec.label = label;
    rec.wall_s = wall_s;
    rec.sim_cycles = static_cast<double>(r.dpu.total_cycles);
    rec.sched_switches = r.dpu.sched_switches;
    rec.sched_elisions = r.dpu.sched_elisions;
    PerfReporter::instance().record(std::move(rec));
}

/** Fault-free transfer run per kind, durable off vs on: what the
 * persist protocol costs when nothing ever crashes. */
void
durabilityCost(const BenchOptions &opt)
{
    const TransferParams params = TransferParams::sized(opt.full);
    const unsigned tasklets = 11;

    Table table({"stm", "commits", "tput_ratio", "fences_per_commit",
                 "log_bytes_per_commit", "extra_cycles_pct"});
    for (core::StmKind kind : core::allStmKinds()) {
        runtime::RunSpec spec;
        spec.kind = kind;
        spec.tasklets = tasklets;
        spec.mram_bytes = 8 * 1024 * 1024;
        opt.applyTo(spec);
        spec.durable = false;

        TransferWorkload off_wl(params);
        runtime::RunResult off;
        const double off_wall = timedRun(off_wl, spec, off);
        recordPoint(std::string(core::stmKindName(kind)) + "/cost/off",
                    off_wall, off);

        spec.durable = true;
        TransferWorkload on_wl(params);
        runtime::RunResult on;
        const double on_wall = timedRun(on_wl, spec, on);
        recordPoint(std::string(core::stmKindName(kind)) + "/cost/on",
                    on_wall, on);

        fatalIf(on.stm.commits == 0 || on.stm.flush_fences == 0,
                "durable run under ", core::stmKindName(kind),
                " issued no persist fences");
        const double commits = static_cast<double>(on.stm.commits);
        table.newRow()
            .cell(core::stmKindName(kind))
            .cell(on.stm.commits)
            .cell(off.throughput > 0 ? on.throughput / off.throughput : 0,
                  3)
            .cell(static_cast<double>(on.stm.flush_fences) / commits, 2)
            .cell(static_cast<double>(on.stm.log_bytes) / commits, 1)
            .cell(off.dpu.total_cycles > 0
                      ? 100.0 *
                            (static_cast<double>(on.dpu.total_cycles) -
                             static_cast<double>(off.dpu.total_cycles)) /
                            static_cast<double>(off.dpu.total_cycles)
                      : 0,
                  1);
    }
    std::cout << "== micro_durable  durability cost (transfer workload, "
              << tasklets << " tasklets, no faults) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

/** Whole-DPU crash plans x every STM kind: recover, restart, finish,
 * and keep the transfer sum invariant (verified inside runWorkload). */
void
crashMatrix(const BenchOptions &opt)
{
    const TransferParams params = TransferParams::sized(opt.full);
    const struct
    {
        const char *label;
        const char *plan;
    } plans[] = {
        {"early", "dpu-crash=150"},
        {"late", "dpu-crash=900"},
        {"double", "dpu-crash=300;dpu-crash=1100;seed=7"},
    };

    Table table({"stm", "plan", "crashes", "restart_commits", "redone",
                 "undone", "discarded", "torn"});
    for (core::StmKind kind : core::allStmKinds()) {
        for (const auto &p : plans) {
            runtime::RunSpec spec;
            spec.kind = kind;
            spec.tasklets = 8;
            spec.mram_bytes = 8 * 1024 * 1024;
            opt.applyTo(spec);
            spec.durable = true;
            spec.faults = sim::FaultPlan::parse(p.plan);
            spec.watchdog_cycles = 500'000'000; // safety net only
            // A crash-restart run floods the default ring with
            // scheduler switches; size it to hold the whole run so
            // the "recovery" instants survive for the timeline.
            if (spec.trace) {
                spec.trace_buffer_capacity = std::max<size_t>(
                    spec.trace_buffer_capacity, size_t{1} << 17);
            }

            TransferWorkload wl(params);
            runtime::RunResult r;
            const double wall = timedRun(wl, spec, r);
            recordPoint(std::string(core::stmKindName(kind)) +
                            "/crash/" + p.label,
                        wall, r);
            if (r.trace && TraceFileWriter::instance().enabled()) {
                // Feeds the recovery timeline of trace_report.py:
                // each crash shows up as a "recovery" instant with
                // the durable commits banked before it.
                TraceFileWriter::instance().add(
                    *r.trace, std::string(core::stmKindName(kind)) +
                                  "/crash/" + p.label);
            }

            fatalIf(r.dpu.dpu_crashes == 0,
                    "crash plan '", p.plan, "' under ",
                    core::stmKindName(kind), " never fired");
            fatalIf(r.stm.recoveries != r.dpu.dpu_crashes,
                    "every crash must be followed by exactly one "
                    "recovery (", r.stm.recoveries, " recoveries for ",
                    r.dpu.dpu_crashes, " crashes)");
            table.newRow()
                .cell(core::stmKindName(kind))
                .cell(p.label)
                .cell(r.dpu.dpu_crashes)
                .cell(r.stm.commits)
                .cell(r.stm.log_redone)
                .cell(r.stm.log_undone)
                .cell(r.stm.log_discarded)
                .cell(r.stm.torn_logs);
        }
    }
    std::cout << "== micro_durable  whole-DPU crash matrix (durable on; "
                 "sum invariant verified after recovery + restart) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

/** Simulated fields that must not change when durable mode is merely
 * compiled in but off. */
void
expectSameSimulation(const runtime::RunResult &a,
                     const runtime::RunResult &b)
{
    fatalIf(a.dpu.total_cycles != b.dpu.total_cycles ||
                a.dpu.instructions != b.dpu.instructions ||
                a.dpu.mram_reads != b.dpu.mram_reads ||
                a.dpu.mram_writes != b.dpu.mram_writes ||
                a.dpu.atomic_acquires != b.dpu.atomic_acquires ||
                a.dpu.atomic_stall_cycles != b.dpu.atomic_stall_cycles ||
                a.dpu.phase_cycles != b.dpu.phase_cycles ||
                a.stm.starts != b.stm.starts ||
                a.stm.commits != b.stm.commits ||
                a.stm.aborts != b.stm.aborts ||
                a.stm.reads != b.stm.reads ||
                a.stm.writes != b.stm.writes,
            "durable-off changed the simulation");
    fatalIf(b.dpu.mram_fences != 0 || b.stm.flush_fences != 0 ||
                b.stm.log_appends != 0 || b.stm.log_bytes != 0 ||
                b.stm.durable_commits != 0 || b.stm.recoveries != 0,
            "durable counters nonzero with durable mode off");
}

/**
 * Paired wall-clock comparison, noise-hardened for shared CI hosts:
 * each rep times plain and durable-off back to back (inner order
 * alternating, so slow drift cancels within a pair), the per-pair
 * ratio is recorded, and the verdict is the median ratio — a single
 * preempted run perturbs one pair, not the statistic.
 */
double
pairedOverheadPct(const runtime::RunSpec &plain,
                  const runtime::RunSpec &durable_off, u32 tx, int pairs,
                  runtime::RunResult &r_plain, runtime::RunResult &r_off,
                  double &best_plain, double &best_off)
{
    std::vector<double> ratios;
    for (int i = 0; i < pairs; ++i) {
        double wp, wo;
        if (i % 2 == 0) {
            ArrayBench a(ArrayBenchParams::workloadA(tx));
            wp = timedRun(a, plain, r_plain);
            ArrayBench b(ArrayBenchParams::workloadA(tx));
            wo = timedRun(b, durable_off, r_off);
        } else {
            ArrayBench b(ArrayBenchParams::workloadA(tx));
            wo = timedRun(b, durable_off, r_off);
            ArrayBench a(ArrayBenchParams::workloadA(tx));
            wp = timedRun(a, plain, r_plain);
        }
        best_plain = std::min(best_plain, wp);
        best_off = std::min(best_off, wo);
        ratios.push_back(wo / wp);
    }
    std::sort(ratios.begin(), ratios.end());
    return 100.0 * (ratios[ratios.size() / 2] - 1.0);
}

/** The --check gate: durable-off is free (bitwise identical, <= 1%
 * wall overhead) and the config exclusions are refused. */
int
checkFastPath(const BenchOptions &opt)
{
    // Each timed run must sit well clear of scheduler / timer
    // granularity: ~3ms per transaction batch at this scale means
    // tx=100 gives ~0.2s runs.
    const u32 tx = opt.full ? 200 : 100;
    runtime::RunSpec plain;
    plain.kind = core::StmKind::NOrec;
    plain.tasklets = 11;
    plain.mram_bytes = 8 * 1024 * 1024;

    runtime::RunSpec durable_off = plain;
    durable_off.durable = false; // explicit, and documents the intent

    double best_plain = 1e300, best_off = 1e300;
    runtime::RunResult r_plain, r_off;
    {
        // Warmup pair (not timed): page in both code paths.
        ArrayBench a(ArrayBenchParams::workloadA(8));
        (void)runtime::runWorkload(a, plain);
        ArrayBench b(ArrayBenchParams::workloadA(8));
        (void)runtime::runWorkload(b, durable_off);
    }
    double overhead_pct =
        pairedOverheadPct(plain, durable_off, tx, opt.full ? 9 : 7,
                          r_plain, r_off, best_plain, best_off);
    if (overhead_pct > 1.0) {
        // One escalation before failing: double the sample and keep
        // the better verdict, so a noisy first batch on a loaded host
        // does not fail a gate whose true value is ~0.
        std::cerr << "fast-path gate: first batch measured "
                  << overhead_pct << "%, re-measuring with 2x pairs\n";
        overhead_pct = std::min(
            overhead_pct,
            pairedOverheadPct(plain, durable_off, tx, opt.full ? 18 : 14,
                              r_plain, r_off, best_plain, best_off));
    }
    expectSameSimulation(r_plain, r_off);

    // Exclusions: a durable configuration that cannot keep its crash
    // guarantees must be refused at construction, not degraded.
    for (const char *what : {"serial-fallback", "boosting"}) {
        runtime::RunSpec bad = plain;
        bad.durable = true;
        if (std::string(what) == "serial-fallback")
            bad.serial_fallback_override = 4;
        else
            bad.boosting = true;
        bool refused = false;
        try {
            ArrayBench wl(ArrayBenchParams::workloadA(2));
            (void)runtime::runWorkload(wl, bad);
        } catch (const FatalError &) {
            refused = true;
        }
        fatalIf(!refused, "durable + ", what,
                " was accepted; the exclusion matrix requires a "
                "loud refusal (docs/durability.md)");
    }

    Table table({"config", "wall_s", "overhead_pct"});
    table.newRow().cell("plain").cell(best_plain, 4).cell(0.0, 2);
    table.newRow()
        .cell("durable-off")
        .cell(best_off, 4)
        .cell(overhead_pct, 2);
    std::cout << "== micro_durable --check  fast-path gate (simulated "
                 "stats bitwise equal; exclusions refused) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";

    fatalIf(overhead_pct > 1.0,
            "durable-off fast path exceeded the 1% wall-clock budget (",
            overhead_pct, "%)");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    const auto opt =
        BenchOptions::parse(argc, argv, [&](const std::string &a) {
            if (a == "--check")
                return check = true;
            return false;
        });

    return guardedMain([&] {
        try {
            if (check)
                return checkFastPath(opt);
            durabilityCost(opt);
            crashMatrix(opt);
            return 0;
        } catch (const FatalError &e) {
            // A failed gate or invariant is a harness verdict, not a
            // wedged workload: report it and exit 1.
            std::cerr << e.what() << "\n";
            return 1;
        }
    });
}
