/**
 * @file
 * Reproduces Fig. 10 (appendix A): KMeans LC/HC with STM metadata in
 * WRAM. (Labyrinth is absent from the paper's WRAM study because its
 * read/write sets exceed WRAM — reproduced as a loud failure, see the
 * LabyrinthTest.WramMetadataInfeasibleForLargeGrids test.)
 *
 * Paper shapes to check against:
 *  - LC: all implementations still perform similarly.
 *  - HC: NOrec best, but the gap to the ETL ORec variants shrinks
 *    versus the MRAM-metadata case; VR CTLWB remains pathologically
 *    slow despite its low abort rate (wasted work on long txs).
 */

#include "bench/common.hh"
#include "workloads/kmeans.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 points = opt.full ? 24 : 8;

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;

    sweepKinds(
        "Fig 10a/c  KMeans LC (k=15)",
        [&] {
            return std::make_unique<KMeans>(
                KMeansParams::lowContention(points));
        },
        core::MetadataTier::Wram, opt, base);

    sweepKinds(
        "Fig 10b/d  KMeans HC (k=2)",
        [&] {
            return std::make_unique<KMeans>(
                KMeansParams::highContention(points));
        },
        core::MetadataTier::Wram, opt, base);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
