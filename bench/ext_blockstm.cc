/**
 * @file
 * Extension bench: the cost of blockchain-style ordered execution
 * (§5's Block-STM direction) on a DPU. Runs blocks of account-transfer
 * transactions at varying conflict density, ordered vs unordered, and
 * reports the ordering overhead (speculative retries) per STM design.
 */

#include "bench/common.hh"
#include "hostapp/block_executor.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::hostapp;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 txs = opt.full ? 256 : 96;

    Table table({"accounts", "stm", "mode", "block_tx_per_s",
                 "abort_rate"});

    for (const u32 accounts : {256u, 16u}) { // sparse vs dense conflicts
        for (core::StmKind kind :
             {core::StmKind::NOrec, core::StmKind::TinyEtlWb}) {
            for (const bool ordered : {true, false}) {
                BlockExecutorConfig cfg;
                cfg.kind = kind;
                cfg.tasklets = 8;
                cfg.state_words = accounts;
                const double seeds = opt.seeds;
                double tput = 0, aborts = 0;
                for (unsigned s = 0; s < opt.seeds; ++s) {
                    cfg.seed = 1 + s * 7919;
                    BlockExecutor exec(cfg);
                    Rng rng(cfg.seed);
                    // Pre-draw a transfer plan: (from, to, amount).
                    std::vector<std::array<u32, 3>> plan(txs);
                    for (auto &p : plan) {
                        p[0] = static_cast<u32>(rng.below(accounts));
                        p[1] = static_cast<u32>(rng.below(accounts));
                        if (p[1] == p[0])
                            p[1] = (p[1] + 1) % accounts;
                        p[2] = static_cast<u32>(rng.range(1, 9));
                    }
                    const auto r = exec.run(
                        txs,
                        [&](core::TxHandle &tx, u32 i) {
                            auto &st = exec.state();
                            const auto &p = plan[i];
                            const u32 f = tx.read(st.at(p[0]));
                            const u32 t = tx.read(st.at(p[1]));
                            tx.write(st.at(p[0]), f - p[2]);
                            tx.write(st.at(p[1]), t + p[2]);
                        },
                        ordered);
                    tput += static_cast<double>(txs) / r.seconds;
                    aborts += r.abort_rate;
                }
                table.newRow()
                    .cell(accounts)
                    .cell(core::stmKindName(kind))
                    .cell(ordered ? "ordered" : "unordered")
                    .cell(tput / seeds, 1)
                    .cell(aborts / seeds, 4);
            }
        }
    }

    std::cout << "== EXT  Block-STM-style ordered blocks (96 transfers, "
                 "8 tasklets) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
