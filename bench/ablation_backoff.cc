/**
 * @file
 * Ablation A2: NOrec's wait-until-seqlock-free start policy — the
 * paper credits it as a contention manager that helps NOrec win the
 * high-contention workloads (§4.2.1, ArrayBench B analysis: "NOrec
 * transactions wait until the global sequence lock is free before
 * starting, which acts as a contention management mechanism").
 * Disabling it should cost throughput under contention and matter
 * little when contention is low.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 tx_a = opt.full ? 20 : 8;
    const u32 tx_b = opt.full ? 400 : 150;

    Table table({"workload", "start_wait", "tasklets", "tput_tx_per_s",
                 "abort_rate"});

    struct Case
    {
        const char *name;
        WorkloadFactory factory;
    };
    const std::vector<Case> cases = {
        {"ArrayBench A (low contention)",
         [&] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadA(tx_a));
         }},
        {"ArrayBench B (high contention)",
         [&] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadB(tx_b));
         }},
    };

    for (const auto &c : cases) {
        for (const int wait : {1, 0}) {
            for (unsigned t : {4u, 11u}) {
                runtime::RunSpec base;
                base.mram_bytes = 8 * 1024 * 1024;
                base.norec_start_wait_override = wait;
                const auto pr =
                    runPoint(c.factory, core::StmKind::NOrec,
                             core::MetadataTier::Mram, t, opt.seeds,
                             base);
                table.newRow()
                    .cell(c.name)
                    .cell(wait ? "on" : "off")
                    .cell(t)
                    .cell(pr.throughput_mean, 1)
                    .cell(pr.abort_rate_mean, 4);
            }
        }
    }

    std::cout << "== Ablation A2  NOrec start-wait contention manager ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
