/**
 * @file
 * Robustness microbenchmark: the cost and the behaviour of the fault
 * layer.
 *
 *  - fast-path overhead: runs the Fig. 4 ArrayBench point with the
 *    robustness features off and with the watchdog armed (but never
 *    firing), checks the simulated statistics are bitwise identical,
 *    and reports the host wall-clock overhead (expected well under 1%:
 *    the armed fast path is one compare per scheduler event).
 *  - abort storm: `abort=1000` (every injectable STM operation aborts)
 *    plus the serial-irrevocable fallback, across all seven STM kinds —
 *    every run must terminate with full commit counts, demonstrating
 *    the fallback's termination guarantee.
 *  - --demo-deadlock / --demo-livelock: construct a real deadlock
 *    (opposite-order atomic acquisition) or livelock (abort storm with
 *    no fallback, watchdog armed) and exit through the watchdog
 *    protocol: diagnostic dump on stderr, exit code 3.
 *  - --demo-dpu-crash: a whole-DPU crash (`dpu-crash=` plan) with
 *    durable mode OFF — unrecoverable by design, so the run dies
 *    through the same diagnostic exit-3 protocol as the watchdog.
 *    bench/micro_durable demonstrates the recoverable counterpart.
 *  - --demo-vr-livelock: the paper's §3.2.1 upgrade rule turned
 *    livelock — two lockstep read->write upgrades under VR ETLWB with
 *    abort backoff off. Combine with --trace-out=FILE for the worked
 *    Perfetto example in docs/observability.md.
 */

#include <chrono>

#include "bench/common.hh"
#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

namespace
{

/** Fields that must not change when the watchdog is armed but silent. */
void
expectSameSimulation(const runtime::RunResult &a,
                     const runtime::RunResult &b)
{
    fatalIf(a.dpu.total_cycles != b.dpu.total_cycles ||
                a.dpu.instructions != b.dpu.instructions ||
                a.dpu.mram_reads != b.dpu.mram_reads ||
                a.dpu.mram_writes != b.dpu.mram_writes ||
                a.dpu.atomic_acquires != b.dpu.atomic_acquires ||
                a.dpu.atomic_stall_cycles != b.dpu.atomic_stall_cycles ||
                a.dpu.phase_cycles != b.dpu.phase_cycles ||
                a.stm.starts != b.stm.starts ||
                a.stm.commits != b.stm.commits ||
                a.stm.aborts != b.stm.aborts ||
                a.stm.abort_reasons != b.stm.abort_reasons ||
                a.stm.reads != b.stm.reads ||
                a.stm.writes != b.stm.writes,
            "armed-but-silent watchdog changed the simulation");
    fatalIf(a.dpu.injected_stalls != 0 || a.dpu.injected_acq_delays != 0 ||
                a.dpu.tasklet_crashes != 0 || a.stm.injected_aborts != 0 ||
                a.stm.escalations != 0 || a.stm.serial_commits != 0,
            "robustness counters nonzero without a fault plan");
}

double
timedRun(runtime::Workload &wl, const runtime::RunSpec &spec,
         runtime::RunResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = runtime::runWorkload(wl, spec);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Overhead of the armed-but-silent watchdog on the Fig. 4 fast path. */
void
fastPathOverhead(const BenchOptions &opt)
{
    const u32 tx = opt.full ? 30 : 8;
    runtime::RunSpec plain;
    plain.kind = core::StmKind::NOrec;
    plain.tasklets = 11;
    plain.mram_bytes = 8 * 1024 * 1024;

    runtime::RunSpec armed = plain;
    armed.watchdog_cycles = ~Cycles{0} / 2; // armed, never fires

    const int reps = opt.full ? 5 : 3;
    double best_plain = 1e300, best_armed = 1e300;
    runtime::RunResult r_plain, r_armed;
    for (int i = 0; i < reps; ++i) {
        ArrayBench a(ArrayBenchParams::workloadA(tx));
        best_plain = std::min(best_plain, timedRun(a, plain, r_plain));
        ArrayBench b(ArrayBenchParams::workloadA(tx));
        best_armed = std::min(best_armed, timedRun(b, armed, r_armed));
    }
    expectSameSimulation(r_plain, r_armed);

    Table table({"config", "wall_s", "overhead_pct"});
    table.newRow().cell("features-off").cell(best_plain, 4).cell(0.0, 2);
    table.newRow()
        .cell("watchdog-armed")
        .cell(best_armed, 4)
        .cell(100.0 * (best_armed - best_plain) / best_plain, 2);
    std::cout << "== micro_faults  fast-path overhead (ArrayBench A, "
                 "NOrec, 11 tasklets; simulated stats bitwise equal) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

/** 100%-abort storm + serial-irrevocable fallback: must terminate with
 * full commit counts for every STM kind. */
void
abortStorm(const BenchOptions &opt)
{
    const u32 tx = opt.full ? 60 : 20;
    const unsigned tasklets = 8;

    Table table({"stm", "commits", "aborts", "escalations",
                 "serial_commits", "injected_aborts"});
    for (core::StmKind kind : core::allStmKinds()) {
        runtime::RunSpec spec;
        spec.kind = kind;
        spec.tasklets = tasklets;
        spec.mram_bytes = 8 * 1024 * 1024;
        spec.faults = sim::FaultPlan::parse("abort=1000");
        spec.serial_fallback_override = 4;
        spec.watchdog_cycles = 500'000'000; // safety net only

        ArrayBench wl(ArrayBenchParams::workloadB(tx));
        const auto r = runtime::runWorkload(wl, spec);
        fatalIf(r.stm.commits !=
                    static_cast<u64>(tasklets) * static_cast<u64>(tx),
                "abort storm under ", core::stmKindName(kind),
                " lost transactions");
        fatalIf(r.stm.escalations == 0 || r.stm.serial_commits == 0,
                "abort storm under ", core::stmKindName(kind),
                " never escalated");
        table.newRow()
            .cell(core::stmKindName(kind))
            .cell(r.stm.commits)
            .cell(r.stm.aborts)
            .cell(r.stm.escalations)
            .cell(r.stm.serial_commits)
            .cell(r.stm.injected_aborts);
    }
    std::cout << "== micro_faults  100%-abort storm + --serial-fallback=4 "
                 "(terminates for every STM kind) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

/** Construct a real ABBA deadlock on the atomic register; the watchdog
 * must exit the process with the dump and code 3. */
int
demoDeadlock()
{
    sim::DpuConfig cfg;
    cfg.mram_bytes = 1 << 20;
    sim::Dpu dpu(cfg, sim::TimingConfig{});
    dpu.addTasklet([](sim::DpuContext &ctx) {
        ctx.acquire(0);
        ctx.compute(100);
        ctx.acquire(1); // t1 holds it and waits for key 0: deadlock
        ctx.release(1);
        ctx.release(0);
    });
    dpu.addTasklet([](sim::DpuContext &ctx) {
        ctx.acquire(1);
        ctx.compute(100);
        ctx.acquire(0);
        ctx.release(0);
        ctx.release(1);
    });
    dpu.run(); // throws WatchdogError; guardedMain turns it into exit 3
    return 1;  // unreachable when the demo works
}

/** Abort storm with no fallback: no transaction ever commits, so the
 * livelock watchdog must fire. */
int
demoLivelock()
{
    runtime::RunSpec spec;
    spec.kind = core::StmKind::NOrec;
    spec.tasklets = 4;
    spec.mram_bytes = 8 * 1024 * 1024;
    spec.faults = sim::FaultPlan::parse("abort=1000");
    spec.watchdog_cycles = 2'000'000;

    ArrayBench wl(ArrayBenchParams::workloadB(10));
    (void)runtime::runWorkload(wl, spec); // throws WatchdogError
    return 1; // unreachable when the demo works
}

/** A whole-DPU crash with durable mode off: the data died with the
 * DPU, so runWorkload propagates sim::DpuCrashError and guardedMain
 * exits through the diagnostic exit-3 protocol. */
int
demoDpuCrash()
{
    runtime::RunSpec spec;
    spec.kind = core::StmKind::NOrec;
    spec.tasklets = 4;
    spec.mram_bytes = 8 * 1024 * 1024;
    spec.faults = sim::FaultPlan::parse("dpu-crash=200");

    ArrayBench wl(ArrayBenchParams::workloadB(10));
    (void)runtime::runWorkload(wl, spec); // throws DpuCrashError
    return 1; // unreachable when the demo works
}

/**
 * The VR read->write upgrade livelock (docs/observability.md's worked
 * Perfetto example): with abort backoff disabled, two tasklets running
 * the identical upgrade on one cell stay in deterministic lockstep —
 * both read-lock, both fail the sole-reader upgrade, both abort and
 * retry, forever. Only the cycle-budget watchdog can diagnose it.
 */
int
demoVrLivelock(const BenchOptions &opt)
{
    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 << 20;
    dpu_cfg.watchdog_cycles = 300'000;
    sim::Dpu dpu(dpu_cfg, sim::TimingConfig{});

    core::TraceBuffer trace(opt.trace_buf);

    core::StmConfig cfg;
    cfg.kind = core::StmKind::VrEtlWb;
    cfg.num_tasklets = 2;
    cfg.abort_backoff = false; // keep the tasklets in lockstep
    cfg.data_words_hint = 16;
    if (opt.trace) {
        cfg.trace = &trace;
        dpu.setTraceSink(&trace);
    }
    auto stm = core::makeStm(dpu, cfg);

    runtime::SharedArray32 cells(dpu, sim::Tier::Mram, 16);
    cells.fill(dpu, 0);
    dpu.addTasklets(2, [&](sim::DpuContext &ctx) {
        core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
            const u32 v = tx.read(cells.at(0));
            tx.write(cells.at(0), v + 1);
        });
    });
    try {
        dpu.run(); // throws WatchdogError (livelock)
    } catch (...) {
        if (opt.trace && TraceFileWriter::instance().enabled())
            TraceFileWriter::instance().add(trace, "vr-livelock");
        throw;
    }
    return 1; // unreachable when the demo works
}

} // namespace

int
main(int argc, char **argv)
{
    bool deadlock = false, livelock = false, vr_livelock = false;
    bool dpu_crash = false;
    const auto opt = BenchOptions::parse(
        argc, argv, [&](const std::string &a) {
            if (a == "--demo-deadlock")
                return deadlock = true;
            if (a == "--demo-livelock")
                return livelock = true;
            if (a == "--demo-vr-livelock")
                return vr_livelock = true;
            if (a == "--demo-dpu-crash")
                return dpu_crash = true;
            return false;
        });

    return guardedMain([&] {
        if (deadlock)
            return demoDeadlock();
        if (livelock)
            return demoLivelock();
        if (vr_livelock)
            return demoVrLivelock(opt);
        if (dpu_crash)
            return demoDpuCrash();
        fastPathOverhead(opt);
        abortStorm(opt);
        return 0;
    });
}
