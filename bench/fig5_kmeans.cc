/**
 * @file
 * Reproduces Fig. 5 (a,b,e,f,i,j): KMeans LC (k=15) and HC (k=2),
 * N = 14 dimensions, metadata in MRAM.
 *
 * Paper shapes to check against:
 *  - LC: near-linear scalability for NOrec and the ETL variants; very
 *    similar peak throughput (most time is non-transactional), despite
 *    wildly different abort rates.
 *  - HC: gaps amplify; NOrec ~22% over Tiny ETL, which lead VR ETL;
 *    CTL variants suffer the largest penalty (late conflict detection
 *    wastes long transactions).
 */

#include "bench/common.hh"
#include "workloads/kmeans.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 points = opt.full ? 24 : 8;

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;

    sweepKinds(
        "Fig 5a/e/i  KMeans LC (k=15)",
        [&] {
            return std::make_unique<KMeans>(
                KMeansParams::lowContention(points));
        },
        core::MetadataTier::Mram, opt, base);

    sweepKinds(
        "Fig 5b/f/j  KMeans HC (k=2)",
        [&] {
            return std::make_unique<KMeans>(
                KMeansParams::highContention(points));
        },
        core::MetadataTier::Mram, opt, base);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
