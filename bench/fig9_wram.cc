/**
 * @file
 * Reproduces Fig. 9 (appendix A): ArrayBench A/B and Linked-List LC/HC
 * with STM metadata hosted in WRAM.
 *
 * Paper shapes to check against:
 *  - ArrayBench A: the ORec lock tables of Tiny and VR exceed WRAM and
 *    spill to MRAM (only there); NOrec keeps everything in WRAM but
 *    still loses (readset revalidation), as with MRAM metadata.
 *  - ArrayBench B: NOrec outperforms the best Tiny/VR variant by ~20%;
 *    WB gains over WT are amplified (up to 14% for VR ETL).
 *  - Linked-List LC: Tiny ETLWT best (shorter read phase); NOrec just
 *    behind. HC: NOrec ~9% over the best Tiny; VR worst by far.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 tx_a = opt.full ? 30 : 8;
    const u32 tx_b = opt.full ? 400 : 100;
    const u32 ll_ops = opt.full ? 100 : 40;

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;

    sweepKinds(
        "Fig 9a/e/i  ArrayBench A",
        [&] {
            return std::make_unique<ArrayBench>(
                ArrayBenchParams::workloadA(tx_a));
        },
        core::MetadataTier::Wram, opt, base);

    sweepKinds(
        "Fig 9b/f/j  ArrayBench B",
        [&] {
            return std::make_unique<ArrayBench>(
                ArrayBenchParams::workloadB(tx_b));
        },
        core::MetadataTier::Wram, opt, base);

    sweepKinds(
        "Fig 9c/g/k  Linked-List LC",
        [&] {
            return std::make_unique<LinkedList>(
                LinkedListParams::lowContention(ll_ops));
        },
        core::MetadataTier::Wram, opt, base);

    sweepKinds(
        "Fig 9d/h/l  Linked-List HC",
        [&] {
            return std::make_unique<LinkedList>(
                LinkedListParams::highContention(ll_ops));
        },
        core::MetadataTier::Wram, opt, base);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
