/**
 * @file
 * Transactional-set microbenchmark: quantifies the host-side cost of
 * the structures this repo uses on the simulation hot path.
 *
 * Three scenario groups:
 *  - txindex_*: raw TxDescriptor write-set lookups, O(1) hash index
 *    vs the linear-scan reference, across set sizes. Host-only (no
 *    simulated cycles — the simulated machine is billed by scanCost()
 *    regardless of how the host answers the lookup).
 *  - stm_bigws: a full STM run whose transactions carry large write
 *    sets, recording simulated cycles (deterministic, CI-gated) and
 *    host wall time.
 *  - dpu_fresh / dpu_pooled: constructing a DPU per run vs recycling
 *    one through runtime::DpuPool, with a workload that materializes
 *    several MB of MRAM; simulated stats are cross-checked identical.
 *
 * With --perf-json=FILE the per-scenario numbers are appended to the
 * artifact tracked by CI (sim_cycles hard-gated, wall time recorded).
 */

#include <chrono>
#include <random>

#include "bench/common.hh"
#include "core/stm_factory.hh"
#include "runtime/dpu_pool.hh"
#include "runtime/shared_array.hh"
#include "sim/dpu.hh"

using namespace pimstm;
using namespace pimstm::sim;
using namespace pimstm::core;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Indexed vs linear lookups over a write set of @p entries. */
struct LookupTimes
{
    double index_s = 0;
    double linear_s = 0;
    u64 checksum = 0; ///< defeats dead-code elimination
};

LookupTimes
timeLookups(unsigned entries, u64 lookups)
{
    TxDescriptor tx(0, 8, entries);
    std::mt19937 rng(entries);
    for (unsigned i = 0; i < entries; ++i) {
        WriteEntry e;
        e.addr = i * 4;
        tx.pushWrite(e);
    }
    // Address stream with ~50% hits, identical for both variants.
    std::vector<Addr> stream(4096);
    for (auto &a : stream)
        a = (rng() % (2 * entries)) * 4;

    LookupTimes r;
    auto t0 = std::chrono::steady_clock::now();
    for (u64 i = 0; i < lookups; ++i)
        r.checksum +=
            static_cast<u64>(tx.findWrite(stream[i % stream.size()]) + 1);
    r.index_s = secondsSince(t0);

    u64 check2 = 0;
    t0 = std::chrono::steady_clock::now();
    for (u64 i = 0; i < lookups; ++i)
        check2 += static_cast<u64>(
            tx.findWriteLinear(stream[i % stream.size()]) + 1);
    r.linear_s = secondsSince(t0);
    fatalIf(check2 != r.checksum,
            "index and linear lookups disagreed (entries=", entries, ")");
    return r;
}

/** One STM run whose transactions write @p ws_size distinct words. */
struct StmRun
{
    DpuStats dpu;
    StmStats stm;
    double wall_s = 0;
};

StmRun
runBigWriteSet(unsigned ws_size, unsigned txs)
{
    DpuConfig cfg;
    cfg.mram_bytes = 4 * 1024 * 1024;
    cfg.seed = 9;
    Dpu dpu(cfg, TimingConfig{});
    StmConfig scfg;
    scfg.kind = StmKind::TinyEtlWb;
    scfg.num_tasklets = 2;
    scfg.max_read_set = 2 * ws_size + 8;
    scfg.max_write_set = ws_size + 8;
    scfg.data_words_hint = 4 * ws_size;
    auto stm = makeStm(dpu, scfg);
    runtime::SharedArray32 arr(dpu, Tier::Mram, 4 * ws_size);
    arr.fill(dpu, 0);

    dpu.addTasklets(2, [&](DpuContext &ctx) {
        for (unsigned t = 0; t < txs; ++t) {
            atomically(*stm, ctx, [&](TxHandle &tx) {
                const u32 base = (ctx.taskletId() * 2 + t % 2) * ws_size;
                for (unsigned i = 0; i < ws_size; ++i) {
                    const Addr a = arr.at(base + i);
                    // Read-after-write exercises the index on every op.
                    tx.write(a, tx.read(a) + 1);
                }
            });
        }
    });

    StmRun r;
    const auto t0 = std::chrono::steady_clock::now();
    dpu.run();
    r.wall_s = secondsSince(t0);
    r.dpu = dpu.stats();
    r.stm = stm->stats();
    return r;
}

/** Stream @p touch_bytes of MRAM, fresh Dpu or pooled, @p reps times. */
struct PoolRun
{
    DpuStats last;
    double wall_s = 0;
};

PoolRun
runDpuCycle(bool pooled, unsigned reps, size_t touch_bytes)
{
    DpuConfig cfg;
    cfg.mram_bytes = 64 * 1024 * 1024;
    cfg.seed = 21;
    const TimingConfig timing{};
    auto &pool = runtime::DpuPool::global();

    PoolRun r;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned rep = 0; rep < reps; ++rep) {
        std::unique_ptr<Dpu> owner;
        if (pooled)
            owner = pool.acquire(cfg, timing);
        else
            owner = std::make_unique<Dpu>(cfg, timing);
        Dpu &dpu = *owner;
        dpu.addTasklets(4, [&](DpuContext &ctx) {
            char buf[2048] = {};
            const size_t per = touch_bytes / 4;
            const u32 base = static_cast<u32>(ctx.taskletId() * per);
            for (size_t off = 0; off + sizeof buf <= per;
                 off += sizeof buf) {
                ctx.writeBlock(
                    makeAddr(Tier::Mram,
                             base + static_cast<u32>(off)),
                    buf, sizeof buf);
            }
        });
        dpu.run();
        r.last = dpu.stats();
        if (pooled)
            pool.release(std::move(owner));
    }
    r.wall_s = secondsSince(t0);
    return r;
}

void
record(const char *label, double wall_s, double sim_cycles)
{
    bench::PerfRecord rec;
    rec.label = label;
    rec.wall_s = wall_s;
    rec.sim_cycles = sim_cycles;
    bench::PerfReporter::instance().record(std::move(rec));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::BenchOptions::parse(argc, argv);
    const u64 scale = opt.full ? 8 : 1;

    std::cout << "== micro_txset: transactional-set index & DPU pool ==\n";

    // --- Raw lookups: hash index vs linear scan ---------------------
    Table lookup_table({"scenario", "entries", "lookups",
                        "host_ms_index", "host_ms_linear", "speedup"});
    const struct
    {
        const char *name;
        unsigned entries;
        u64 lookups;
    } lookup_scenarios[] = {
        {"txindex_ws16", 16, 2000000 * scale},
        {"txindex_ws128", 128, 500000 * scale},
        {"txindex_ws1024", 1024, 100000 * scale},
    };
    for (const auto &s : lookup_scenarios) {
        const auto t = timeLookups(s.entries, s.lookups);
        lookup_table.newRow()
            .cell(s.name)
            .cell(s.entries)
            .cell(s.lookups)
            .cell(t.index_s * 1e3, 1)
            .cell(t.linear_s * 1e3, 1)
            .cell(t.index_s > 0 ? t.linear_s / t.index_s : 0.0, 2);
        record(s.name, t.index_s, 0.0);
    }
    if (opt.csv)
        lookup_table.printCsv(std::cout);
    else
        lookup_table.printText(std::cout);

    // --- Full STM run with large write sets -------------------------
    const unsigned ws = 256;
    const unsigned txs = static_cast<unsigned>(40 * scale);
    const auto stm_run = runBigWriteSet(ws, txs);
    fatalIf(stm_run.stm.commits != 2ull * txs,
            "stm_bigws: unexpected commit count ", stm_run.stm.commits);
    std::cout << "\nstm_bigws: write-set " << ws << ", "
              << stm_run.stm.commits << " commits, "
              << stm_run.dpu.total_cycles << " sim cycles, "
              << stm_run.wall_s * 1e3 << " host ms\n";
    record("stm_bigws",
           stm_run.wall_s,
           static_cast<double>(stm_run.dpu.total_cycles));

    // --- Fresh vs pooled DPU construction ---------------------------
    const unsigned reps = static_cast<unsigned>(12 * scale);
    const size_t touch = 8 * 1024 * 1024;
    runtime::DpuPool::global().clear();
    const auto fresh = runDpuCycle(false, reps, touch);
    const auto pooled = runDpuCycle(true, reps, touch);
    fatalIf(fresh.last.total_cycles != pooled.last.total_cycles ||
                fresh.last.mram_writes != pooled.last.mram_writes ||
                fresh.last.instructions != pooled.last.instructions,
            "fresh and pooled DPU runs diverged");
    std::cout << "dpu_fresh:  " << reps << " runs touching "
              << touch / (1024 * 1024) << " MB: " << fresh.wall_s * 1e3
              << " host ms\n";
    std::cout << "dpu_pooled: " << reps << " runs touching "
              << touch / (1024 * 1024) << " MB: " << pooled.wall_s * 1e3
              << " host ms ("
              << (pooled.wall_s > 0 ? fresh.wall_s / pooled.wall_s : 0.0)
              << "x)\n";
    record("dpu_fresh", fresh.wall_s,
           static_cast<double>(fresh.last.total_cycles));
    record("dpu_pooled", pooled.wall_s,
           static_cast<double>(pooled.last.total_cycles));

    std::cout << "\nfresh vs pooled simulated stats: identical\n";
    return 0;
}
