/**
 * @file
 * micro_2pc: the headline number of the cross-shard redesign — the
 * same mixed KV workload (gets/puts with ~10% movek) executed twice
 * per shard count, once with every movek as the old §3.1 serialized
 * escape hatch (two full pipeline drains each) and once through the
 * host-coordinated two-phase-commit batch path, comparing simulated
 * ops/s.
 *
 * Both modes run the byte-identical operation stream against a fresh
 * store, so the ratio isolates the coordination strategy. All columns
 * are simulated/modelled and bitwise stable across runs and --jobs.
 *
 * Extra flag:
 *   --check   assert the acceptance gates (2PC >= 5x serialized at 64
 *             shards; 2PC ops/s monotonically increasing over the
 *             shard series) and exit non-zero on violation.
 *
 * CI's scale-smoke job gates a fresh --perf-json run against the
 * committed BENCH_sim.2pc.json via scripts/check_perf_json.py.
 */

#include <chrono>

#include "bench/common.hh"
#include "hostapp/distributed_kv.hh"
#include "util/rng.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::hostapp;

namespace
{

const std::vector<unsigned> kShardSeries = {4, 16, 64, 256};

/** One batch of the generated workload. */
struct Batch
{
    std::vector<KvOp> ops;
    std::vector<CrossShardTx> txs;
};

/** Deterministic mixed workload: one seeding batch of puts, then
 * @p batches batches of ~10% movek / 45% get / 45% put. */
std::vector<Batch>
makeWorkload(unsigned shards, u32 per_batch, u32 batches, u64 seed)
{
    Rng rng(deriveSeed(seed, 0x29c0, shards));
    u32 next_key = 1;
    std::vector<u32> tokens;

    std::vector<Batch> out;
    Batch seed_batch;
    for (u32 i = 0; i < per_batch; ++i) {
        const u32 key = next_key++;
        seed_batch.ops.push_back(KvOp::put(key, 100000u + key));
        tokens.push_back(key);
    }
    out.push_back(std::move(seed_batch));

    for (u32 b = 0; b < batches; ++b) {
        Batch batch;
        // Moveks only relocate keys that existed before this batch
        // (each at most once), so both execution modes commit the
        // identical set regardless of intra-batch scheduling.
        std::vector<size_t> movable(tokens.size());
        for (size_t i = 0; i < movable.size(); ++i)
            movable[i] = i;
        for (u32 i = 0; i < per_batch; ++i) {
            if (rng.below(10) == 0 && !movable.empty()) {
                const size_t slot = rng.below(movable.size());
                const size_t pick = movable[slot];
                movable[slot] = movable.back();
                movable.pop_back();
                const u32 src = tokens[pick];
                const u32 dst = next_key++;
                tokens[pick] = dst;
                batch.txs.push_back(CrossShardTx::move(src, dst));
            } else if (rng.chance(0.5)) {
                batch.ops.push_back(
                    KvOp::get(tokens[rng.below(tokens.size())]));
            } else {
                const u32 key = next_key++;
                batch.ops.push_back(KvOp::put(key, 100000u + key));
                tokens.push_back(key);
            }
        }
        out.push_back(std::move(batch));
    }
    return out;
}

DistributedKvConfig
storeConfig(unsigned shards, const BenchOptions &opt)
{
    DistributedKvConfig cfg;
    cfg.shards = shards;
    cfg.capacity_per_shard = 512;
    cfg.tasklets_per_dpu = 4;
    cfg.mram_bytes = 1 << 20;
    cfg.seed = 1;
    cfg.faults = opt.faults;
    return cfg;
}

struct ModeResult
{
    u64 items = 0;
    u64 tx_commits = 0;
    double sim_s = 0;
    double ops_per_s = 0;
};

/** Run @p workload with each movek as a serialized moveKeySerialized
 * (the pre-2PC escape hatch: two full drains per movek). */
ModeResult
runSerialized(const std::vector<Batch> &workload, unsigned shards,
              const BenchOptions &opt)
{
    DistributedKv kv(storeConfig(shards, opt));
    const auto wall0 = std::chrono::steady_clock::now();
    ModeResult r;
    for (const Batch &batch : workload) {
        if (!batch.ops.empty())
            kv.execute(batch.ops);
        for (const CrossShardTx &tx : batch.txs)
            r.tx_commits += kv.moveKeySerialized(tx.src_key, tx.dst_key);
        r.items += batch.ops.size() + batch.txs.size();
    }
    r.sim_s = kv.elapsedSeconds();
    r.ops_per_s = static_cast<double>(r.items) / r.sim_s;

    if (PerfReporter::instance().enabled()) {
        PerfRecord rec;
        rec.label = "serialized/s" + std::to_string(shards);
        rec.wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall0)
                         .count();
        rec.sim_cycles = static_cast<double>(kv.simCycles());
        rec.sched_switches = kv.schedSwitches();
        rec.sched_elisions = kv.schedElisions();
        PerfReporter::instance().record(std::move(rec));
    }
    return r;
}

/** Run @p workload through the mixed-batch 2PC path. */
ModeResult
runTwoPc(const std::vector<Batch> &workload, unsigned shards,
         const BenchOptions &opt)
{
    DistributedKv kv(storeConfig(shards, opt));
    const auto wall0 = std::chrono::steady_clock::now();
    ModeResult r;
    for (const Batch &batch : workload) {
        const auto res = kv.execute(batch.ops, batch.txs);
        for (const auto &tr : res.txs)
            r.tx_commits += tr.committed ? 1 : 0;
        r.items += batch.ops.size() + batch.txs.size();
    }
    r.sim_s = kv.elapsedSeconds();
    r.ops_per_s = static_cast<double>(r.items) / r.sim_s;

    if (PerfReporter::instance().enabled()) {
        PerfRecord rec;
        rec.label = "2pc/s" + std::to_string(shards);
        rec.wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall0)
                         .count();
        rec.sim_cycles = static_cast<double>(kv.simCycles());
        rec.sched_switches = kv.schedSwitches();
        rec.sched_elisions = kv.schedElisions();
        PerfReporter::instance().record(std::move(rec));
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    const BenchOptions opt = BenchOptions::parse(
        argc, argv, [&](const std::string &a) {
            if (a == "--check") {
                check = true;
                return true;
            }
            return false;
        });

    return guardedMain([&] {
        const u32 per_shard = opt.full ? 16 : 4;
        const u32 batches = 2;

        Table table({"shards", "items", "serial_sim_s",
                     "serial_ops_per_s", "2pc_sim_s", "2pc_ops_per_s",
                     "speedup"});
        std::vector<double> twopc_ops_per_s;
        double speedup_at_64 = 0;
        for (unsigned shards : kShardSeries) {
            const auto workload = makeWorkload(
                shards, shards * per_shard, batches, 1);
            const ModeResult serial =
                runSerialized(workload, shards, opt);
            const ModeResult twopc = runTwoPc(workload, shards, opt);
            panicIf(serial.tx_commits != twopc.tx_commits &&
                        opt.faults.empty(),
                    "micro_2pc: modes disagree on committed moveks");

            const double speedup = twopc.ops_per_s / serial.ops_per_s;
            if (shards == 64)
                speedup_at_64 = speedup;
            twopc_ops_per_s.push_back(twopc.ops_per_s);
            table.newRow()
                .cell(shards)
                .cell(twopc.items)
                .cell(serial.sim_s, 6)
                .cell(serial.ops_per_s, 1)
                .cell(twopc.sim_s, 6)
                .cell(twopc.ops_per_s, 1)
                .cell(speedup, 2);
        }
        std::cout
            << "== micro_2pc  serialized movek vs two-phase commit ==\n";
        if (opt.csv)
            table.printCsv(std::cout);
        else
            table.printText(std::cout);
        std::cout << "\n";

        if (PerfReporter::instance().enabled()) {
            PerfReporter::instance().setExtraBlock(
                "distributed", twoPcStatsJson(twoPcTotals()));
        }

        if (check) {
            int failures = 0;
            if (speedup_at_64 < 5.0) {
                std::cerr << "CHECK FAILED: 2PC speedup at 64 shards "
                          << speedup_at_64 << " < 5.0\n";
                ++failures;
            }
            for (size_t i = 1; i < twopc_ops_per_s.size(); ++i) {
                if (twopc_ops_per_s[i] <= twopc_ops_per_s[i - 1]) {
                    std::cerr
                        << "CHECK FAILED: 2PC ops/s not monotonic: "
                        << kShardSeries[i - 1] << " shards -> "
                        << twopc_ops_per_s[i - 1] << ", "
                        << kShardSeries[i] << " shards -> "
                        << twopc_ops_per_s[i] << "\n";
                    ++failures;
                }
            }
            if (failures)
                return 1;
            std::cout << "CHECK OK: 2PC " << speedup_at_64
                      << "x serialized at 64 shards; ops/s monotonic "
                         "over the shard series\n";
        }
        return 0;
    });
}
