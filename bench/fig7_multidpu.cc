/**
 * @file
 * Reproduces Fig. 7: speedup of the multi-DPU PIM-STM ports of KMeans
 * (LC and HC) and Labyrinth (S, M, L) over their CPU implementations,
 * as the number of DPUs grows.
 *
 * Per §4.3.1 the DPU side uses NOrec at the peak tasklet count (WRAM
 * metadata for KMeans; MRAM for Labyrinth, whose sets exceed WRAM);
 * the CPU side uses the host NOrec at its optimal thread count (4 for
 * KMeans, 8 for Labyrinth, 4 independent processes for Labyrinth to
 * fill all 32 hardware threads). KMeans assigns a fixed shard per DPU,
 * so the total input grows with the DPU count; Labyrinth gives each
 * DPU an independent instance.
 *
 * Paper shapes to check against:
 *  - A single DPU is FAR slower than the CPU (100-300x for KMeans).
 *  - Break-even at a few hundred DPUs; speedup grows ~linearly beyond.
 *  - KMeans peaks ~14x (HC) / ~6x (LC) at 2500 DPUs.
 *  - Labyrinth peak gains shrink with grid size (8.48x S -> 2.22x L):
 *    larger grids under-utilize the DPU pipeline.
 */

#include "bench/common.hh"
#include "cpu/kmeans_cpu.hh"
#include "cpu/labyrinth_cpu.hh"
#include "hostapp/multi_dpu.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::hostapp;

namespace
{

const std::vector<unsigned> kDpuSeries = {1,   8,    32,   128, 300,
                                          600, 1200, 2000, 2500};

void
kmeansStudy(const BenchOptions &opt, bool high_contention)
{
    MultiKMeansParams mp;
    mp.clusters = high_contention ? 2 : 15;
    mp.points_per_dpu = opt.full ? 9600 : 1200;
    mp.sample_dpus = 2;

    // CPU baseline measured once at a tractable scale; its runtime is
    // linear in the point count (verified by KMeansCpuScalesLinearly
    // in the test suite), so larger inputs are extrapolated.
    const u32 cpu_measure_points = opt.full ? 480000 : 96000;
    cpu::KMeansCpuParams cp;
    cp.clusters = mp.clusters;
    cp.total_points = cpu_measure_points;
    cp.threads = 4;
    const auto cpu = cpu::runKMeansCpu(cp);
    const double cpu_sec_per_point = cpu.seconds / cp.total_points;

    Table table({"dpus", "dpu_total_s", "dpu_compute_s", "transfer_s",
                 "merge_s", "cpu_s", "speedup"});
    for (unsigned d : kDpuSeries) {
        const auto t = runKMeansMultiDpu(d, mp);
        const double cpu_s = cpu_sec_per_point *
                             static_cast<double>(mp.points_per_dpu) * d;
        table.newRow()
            .cell(d)
            .cell(t.total(), 6)
            .cell(t.compute_seconds, 6)
            .cell(t.transfer_seconds, 6)
            .cell(t.merge_seconds, 6)
            .cell(cpu_s, 6)
            .cell(cpu_s / t.total(), 3);
    }
    std::cout << "== Fig 7a  KMeans "
              << (high_contention ? "HC (k=2)" : "LC (k=15)")
              << " speedup vs CPU ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

void
labyrinthStudy(const BenchOptions &opt, const char *label, u32 x, u32 y,
               u32 z)
{
    MultiLabyrinthParams mp;
    mp.x = x;
    mp.y = y;
    mp.z = z;
    mp.num_paths = opt.full ? 100 : 32;
    mp.sample_dpus = 2;

    cpu::LabyrinthCpuParams cp;
    cp.x = x;
    cp.y = y;
    cp.z = z;
    cp.num_paths = mp.num_paths;
    cp.threads = 8;
    const auto cpu = cpu::runLabyrinthCpu(cp);

    Table table({"dpus", "dpu_total_s", "dpu_compute_s", "transfer_s",
                 "cpu_s", "speedup"});
    for (unsigned d : kDpuSeries) {
        const auto t = runLabyrinthMultiDpu(d, mp);
        // The CPU runs 4 independent 8-thread processes, so D
        // instances take ceil(D/4) sequential rounds per process.
        const double cpu_s = cpu.seconds * divCeil(d, 4);
        table.newRow()
            .cell(d)
            .cell(t.total(), 6)
            .cell(t.compute_seconds, 6)
            .cell(t.transfer_seconds, 6)
            .cell(cpu_s, 6)
            .cell(cpu_s / t.total(), 3);
    }
    std::cout << "== Fig 7b  Labyrinth " << label
              << " speedup vs CPU ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    kmeansStudy(opt, false);
    kmeansStudy(opt, true);
    labyrinthStudy(opt, "S (16x16x3)", 16, 16, 3);
    labyrinthStudy(opt, "M (32x32x3)", 32, 32, 3);
    labyrinthStudy(opt, "L (128x128x3)", 128, 128, 3);
    return 0;
}
