/**
 * @file
 * Reproduces Fig. 7: speedup of the multi-DPU PIM-STM ports of KMeans
 * (LC and HC) and Labyrinth (S, M, L) over their CPU implementations,
 * as the number of DPUs grows — plus the cross-shard DistributedKv
 * scaling study (shards x mixed op/movek batches under 2PC).
 *
 * Per §4.3.1 the DPU side uses NOrec at the peak tasklet count (WRAM
 * metadata for KMeans; MRAM for Labyrinth, whose sets exceed WRAM);
 * the CPU side uses the host NOrec at its optimal thread count (4 for
 * KMeans, 8 for Labyrinth, 4 independent processes for Labyrinth to
 * fill all 32 hardware threads). KMeans assigns a fixed shard per DPU,
 * so the total input grows with the DPU count; Labyrinth gives each
 * DPU an independent instance.
 *
 * The cpu_s / merge_s / speedup columns are charged through the
 * deterministic host cost model (sim::HostCpuConfig), so every column
 * is bitwise stable across runs, machines and --jobs settings;
 * --measured-cpu restores the wall-clock-timed CPU baselines.
 *
 * Paper shapes to check against:
 *  - A single DPU is FAR slower than the CPU (100-300x for KMeans).
 *  - Break-even at a few hundred DPUs; speedup grows ~linearly beyond.
 *  - KMeans peaks ~14x (HC) / ~6x (LC) at 2500 DPUs.
 *  - Labyrinth peak gains shrink with grid size (8.48x S -> 2.22x L):
 *    larger grids under-utilize the DPU pipeline.
 */

#include <chrono>

#include "bench/common.hh"
#include "cpu/kmeans_cpu.hh"
#include "cpu/labyrinth_cpu.hh"
#include "hostapp/distributed_kv.hh"
#include "hostapp/multi_dpu.hh"
#include "util/rng.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::hostapp;

namespace
{

const std::vector<unsigned> kDpuSeries = {1,   8,    32,   128, 300,
                                          600, 1200, 2000, 2500};

void
kmeansStudy(const BenchOptions &opt, bool high_contention,
            bool measured_cpu)
{
    MultiKMeansParams mp;
    mp.clusters = high_contention ? 2 : 15;
    mp.points_per_dpu = opt.full ? 9600 : 1200;
    mp.sample_dpus = 2;

    // CPU baseline at a tractable scale; its runtime is linear in the
    // point count (verified by KMeansCpuScalesLinearly in the test
    // suite), so larger inputs are extrapolated. Modelled by default
    // (bitwise stable); --measured-cpu times the real threads.
    const u32 cpu_measure_points = opt.full ? 480000 : 96000;
    cpu::KMeansCpuParams cp;
    cp.clusters = mp.clusters;
    cp.total_points = cpu_measure_points;
    cp.threads = 4;
    const double cpu_seconds = measured_cpu
                                   ? cpu::runKMeansCpu(cp).seconds
                                   : cpu::modelKMeansCpuSeconds(cp);
    const double cpu_sec_per_point = cpu_seconds / cp.total_points;

    Table table({"dpus", "dpu_total_s", "dpu_compute_s", "transfer_s",
                 "merge_s", "cpu_s", "speedup"});
    for (unsigned d : kDpuSeries) {
        const auto t = runKMeansMultiDpu(d, mp);
        const double cpu_s = cpu_sec_per_point *
                             static_cast<double>(mp.points_per_dpu) * d;
        table.newRow()
            .cell(d)
            .cell(t.total(), 6)
            .cell(t.compute_seconds, 6)
            .cell(t.transfer_seconds, 6)
            .cell(t.merge_seconds, 6)
            .cell(cpu_s, 6)
            .cell(cpu_s / t.total(), 3);
    }
    std::cout << "== Fig 7a  KMeans "
              << (high_contention ? "HC (k=2)" : "LC (k=15)")
              << " speedup vs CPU ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

void
labyrinthStudy(const BenchOptions &opt, const char *label, u32 x, u32 y,
               u32 z, bool measured_cpu)
{
    MultiLabyrinthParams mp;
    mp.x = x;
    mp.y = y;
    mp.z = z;
    mp.num_paths = opt.full ? 100 : 32;
    mp.sample_dpus = 2;

    cpu::LabyrinthCpuParams cp;
    cp.x = x;
    cp.y = y;
    cp.z = z;
    cp.num_paths = mp.num_paths;
    cp.threads = 8;
    const double cpu_seconds =
        measured_cpu ? cpu::runLabyrinthCpu(cp).seconds
                     : cpu::modelLabyrinthCpuSeconds(cp);

    Table table({"dpus", "dpu_total_s", "dpu_compute_s", "transfer_s",
                 "cpu_s", "speedup"});
    for (unsigned d : kDpuSeries) {
        const auto t = runLabyrinthMultiDpu(d, mp);
        // The CPU runs 4 independent 8-thread processes, so D
        // instances take ceil(D/4) sequential rounds per process.
        const double cpu_s = cpu_seconds * divCeil(d, 4);
        table.newRow()
            .cell(d)
            .cell(t.total(), 6)
            .cell(t.compute_seconds, 6)
            .cell(t.transfer_seconds, 6)
            .cell(cpu_s, 6)
            .cell(cpu_s / t.total(), 3);
    }
    std::cout << "== Fig 7b  Labyrinth " << label
              << " speedup vs CPU ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";
}

/**
 * Cross-shard DistributedKv scaling: mixed batches (gets/puts with
 * ~10% movek) against shard counts up to the hundreds. Each batch
 * flows through the same launches — single-shard ops in parallel
 * across DPUs, cross-shard transactions under two-phase commit — so
 * the simulated ops/s column is the headline the 2PC path buys over
 * the old serialized movek (bench/micro_2pc.cc measures that ratio
 * directly). All columns are simulated/modelled and bitwise stable.
 */
void
kvStudy(const BenchOptions &opt)
{
    const std::vector<unsigned> shard_series =
        opt.full ? std::vector<unsigned>{4, 16, 64, 256, 512}
                 : std::vector<unsigned>{4, 16, 64, 256};
    const u32 per_shard = opt.full ? 16 : 4;
    const u32 batches = 2;

    Table table({"shards", "batch_ops", "moveks", "tx_commits",
                 "sim_s", "ops_per_sim_s", "prep_rounds",
                 "commit_rounds", "occupancy"});
    for (unsigned shards : shard_series) {
        DistributedKvConfig cfg;
        cfg.shards = shards;
        cfg.capacity_per_shard = 512;
        cfg.tasklets_per_dpu = 4;
        cfg.mram_bytes = 1 << 20;
        cfg.seed = 1;
        cfg.faults = opt.faults;
        DistributedKv kv(cfg);

        const auto wall0 = std::chrono::steady_clock::now();
        const u32 per_batch = shards * per_shard;
        Rng rng(deriveSeed(cfg.seed, 0xf197, shards));
        u32 next_key = 1;
        std::vector<u32> tokens;

        // Seed one batch of puts so moveks have tokens to relocate.
        std::vector<KvOp> seed_ops;
        for (u32 i = 0; i < per_batch; ++i) {
            const u32 key = next_key++;
            seed_ops.push_back(KvOp::put(key, 100000u + key));
            tokens.push_back(key);
        }
        kv.execute(seed_ops);

        u64 total_items = seed_ops.size();
        u64 moveks = 0, tx_commits = 0;
        for (u32 b = 0; b < batches; ++b) {
            std::vector<KvOp> ops;
            std::vector<CrossShardTx> txs;
            for (u32 i = 0; i < per_batch; ++i) {
                if (rng.below(10) == 0) {
                    const size_t pick = rng.below(tokens.size());
                    const u32 src = tokens[pick];
                    const u32 dst = next_key++;
                    tokens[pick] = dst;
                    txs.push_back(CrossShardTx::move(src, dst));
                } else if (rng.chance(0.5)) {
                    ops.push_back(KvOp::get(
                        tokens[rng.below(tokens.size())]));
                } else {
                    const u32 key = next_key++;
                    ops.push_back(KvOp::put(key, 100000u + key));
                    tokens.push_back(key);
                }
            }
            const auto res = kv.execute(ops, txs);
            total_items += ops.size() + txs.size();
            moveks += txs.size();
            for (const auto &tr : res.txs)
                tx_commits += tr.committed ? 1 : 0;
        }

        const auto &st = kv.stats();
        const double sim_s = kv.elapsedSeconds();
        table.newRow()
            .cell(shards)
            .cell(per_batch)
            .cell(moveks)
            .cell(tx_commits)
            .cell(sim_s, 6)
            .cell(static_cast<double>(total_items) / sim_s, 1)
            .cell(st.prepare_rounds)
            .cell(st.commit_rounds)
            .cell(st.meanShardOccupancy(), 4);

        if (PerfReporter::instance().enabled()) {
            PerfRecord rec;
            rec.label = "kv/s" + std::to_string(shards);
            rec.wall_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();
            rec.sim_cycles = static_cast<double>(kv.simCycles());
            rec.sched_switches = kv.schedSwitches();
            rec.sched_elisions = kv.schedElisions();
            PerfReporter::instance().record(std::move(rec));
        }
    }
    std::cout << "== Fig 7c  DistributedKv cross-shard scaling "
                 "(2PC movek) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\n";

    if (PerfReporter::instance().enabled()) {
        PerfReporter::instance().setExtraBlock(
            "distributed", twoPcStatsJson(twoPcTotals()));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool measured_cpu = false;
    const BenchOptions opt = BenchOptions::parse(
        argc, argv, [&](const std::string &a) {
            if (a == "--measured-cpu") {
                measured_cpu = true;
                return true;
            }
            return false;
        });
    return guardedMain([&] {
        kmeansStudy(opt, false, measured_cpu);
        kmeansStudy(opt, true, measured_cpu);
        labyrinthStudy(opt, "S (16x16x3)", 16, 16, 3, measured_cpu);
        labyrinthStudy(opt, "M (32x32x3)", 32, 32, 3, measured_cpu);
        labyrinthStudy(opt, "L (128x128x3)", 128, 128, 3, measured_cpu);
        kvStudy(opt);
        return 0;
    });
}
