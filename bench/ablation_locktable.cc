/**
 * @file
 * Ablation A1 (§3.2.1's lock-table sizing discussion): sweep the ORec
 * lock-table size for Tiny and VR on ArrayBench A and measure the
 * memory-vs-aliasing trade-off. Smaller tables save WRAM/MRAM but
 * alias more addresses onto each ORec, inflating spurious conflicts —
 * "using a larger lock table leads to less aliasing (and thus, less
 * unnecessary aborts); however, a larger lock table takes up more
 * space".
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 tx = opt.full ? 20 : 8;
    const unsigned tasklets = 11;

    Table table({"stm", "lock_table_entries", "table_bytes",
                 "tput_tx_per_s", "abort_rate"});

    for (core::StmKind kind :
         {core::StmKind::TinyEtlWb, core::StmKind::VrEtlWb}) {
        for (u32 entries : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
            runtime::RunSpec base;
            base.mram_bytes = 8 * 1024 * 1024;
            base.lock_table_entries_override = entries;
            const auto pr = runPoint(
                [&] {
                    return std::make_unique<ArrayBench>(
                        ArrayBenchParams::workloadA(tx));
                },
                kind, core::MetadataTier::Mram, tasklets, opt.seeds,
                base);
            const size_t entry_bytes =
                kind == core::StmKind::VrEtlWb ? 4 : 8;
            table.newRow()
                .cell(core::stmKindName(kind))
                .cell(entries)
                .cell(static_cast<u64>(entries * entry_bytes))
                .cell(pr.throughput_mean, 1)
                .cell(pr.abort_rate_mean, 4);
        }
    }

    std::cout << "== Ablation A1  ORec lock-table size vs aliasing "
                 "(ArrayBench A, 11 tasklets) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
