/**
 * @file
 * Reproduces Fig. 8: speedup and energy gain at full system scale
 * (2500 DPUs) for KMeans LC/HC and Labyrinth S/M/L.
 *
 * Energy follows the paper's own method on the PIM side (370 W system
 * TDP x time, Falevoz & Legriel) and a TDP-based model on the CPU side
 * (RAPL is unavailable here — see DESIGN.md).
 *
 * Paper shapes to check against:
 *  - Energy gains are consistently LOWER than speedups.
 *  - Labyrinth L (speedup ~2.2x) actually CONSUMES MORE energy on the
 *    PIM system (-31.5%, i.e. gain < 1).
 */

#include "bench/common.hh"
#include "cpu/kmeans_cpu.hh"
#include "cpu/labyrinth_cpu.hh"
#include "hostapp/energy.hh"
#include "hostapp/multi_dpu.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::hostapp;

int
main(int argc, char **argv)
{
    bool measured_cpu = false;
    const BenchOptions opt = BenchOptions::parse(
        argc, argv, [&](const std::string &a) {
            if (a == "--measured-cpu") {
                measured_cpu = true;
                return true;
            }
            return false;
        });
    constexpr unsigned kDpus = 2500;
    const sim::EnergyConfig energy_cfg;

    Table table({"workload", "dpu_s", "cpu_s", "speedup", "pim_J",
                 "cpu_J", "energy_gain"});

    auto add_row = [&](const char *name, double dpu_s, double cpu_s) {
        const auto e = estimateEnergy(energy_cfg, dpu_s, kDpus, cpu_s);
        table.newRow()
            .cell(name)
            .cell(dpu_s, 6)
            .cell(cpu_s, 6)
            .cell(cpu_s / dpu_s, 3)
            .cell(e.pim_joules, 3)
            .cell(e.cpu_joules, 3)
            .cell(e.gain(), 3);
    };

    // KMeans LC and HC.
    for (const bool hc : {false, true}) {
        MultiKMeansParams mp;
        mp.clusters = hc ? 2 : 15;
        mp.points_per_dpu = opt.full ? 9600 : 1200;
        const auto t = runKMeansMultiDpu(kDpus, mp);

        cpu::KMeansCpuParams cp;
        cp.clusters = mp.clusters;
        cp.total_points = opt.full ? 480000 : 96000;
        cp.threads = 4;
        const double cpu_seconds =
            measured_cpu ? cpu::runKMeansCpu(cp).seconds
                         : cpu::modelKMeansCpuSeconds(cp);
        const double cpu_s = cpu_seconds / cp.total_points *
                             static_cast<double>(mp.points_per_dpu) *
                             kDpus;
        add_row(hc ? "KMeans HC" : "KMeans LC", t.total(), cpu_s);
    }

    // Labyrinth S, M, L.
    struct Grid
    {
        const char *name;
        u32 x, y, z;
    };
    for (const Grid g : {Grid{"Labyrinth S", 16, 16, 3},
                         Grid{"Labyrinth M", 32, 32, 3},
                         Grid{"Labyrinth L", 128, 128, 3}}) {
        MultiLabyrinthParams mp;
        mp.x = g.x;
        mp.y = g.y;
        mp.z = g.z;
        mp.num_paths = opt.full ? 100 : 32;
        const auto t = runLabyrinthMultiDpu(kDpus, mp);

        cpu::LabyrinthCpuParams cp;
        cp.x = g.x;
        cp.y = g.y;
        cp.z = g.z;
        cp.num_paths = mp.num_paths;
        cp.threads = 8;
        const double cpu_seconds =
            measured_cpu ? cpu::runLabyrinthCpu(cp).seconds
                         : cpu::modelLabyrinthCpuSeconds(cp);
        const double cpu_s = cpu_seconds * divCeil(kDpus, 4);
        add_row(g.name, t.total(), cpu_s);
    }

    std::cout << "== Fig 8  Speedup and energy gain at " << kDpus
              << " DPUs ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
