/**
 * @file
 * Scheduler microbenchmark: measures the host-side speed of the DPU
 * inner simulation loop (simulated cycles per host second) across the
 * scheduling patterns that dominate the figure harnesses — pure
 * round-robin compute, mixed WRAM work, MRAM streaming, atomic
 * ping-pong and barrier storms — and cross-checks that fiber-switch
 * elision leaves every simulated statistic bitwise identical to the
 * always-switch schedule.
 *
 * With --perf-json=FILE the per-scenario numbers are written as the
 * BENCH_sim.json artifact CI tracks per commit. The simulated-cycle
 * columns are deterministic; the host wall-clock columns are not.
 */

#include <chrono>
#include <cstdlib>

#include "bench/common.hh"
#include "sim/dpu.hh"

using namespace pimstm;
using namespace pimstm::sim;

namespace
{

struct ScenarioRun
{
    DpuStats stats;
    double wall_s = 0;
};

ScenarioRun
runScenario(unsigned tasklets, u64 iters, bool always_switch,
            const TaskletBody &body)
{
    DpuConfig cfg;
    cfg.mram_bytes = 1 << 20;
    cfg.always_switch = always_switch;
    Dpu dpu(cfg, TimingConfig{});
    (void)iters;
    dpu.addTasklets(tasklets, body);
    const auto t0 = std::chrono::steady_clock::now();
    dpu.run();
    ScenarioRun r;
    r.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    r.stats = dpu.stats();
    return r;
}

void
expectSameSimulation(const char *name, const DpuStats &a,
                     const DpuStats &b)
{
    fatalIf(a.total_cycles != b.total_cycles ||
                a.instructions != b.instructions ||
                a.wram_accesses != b.wram_accesses ||
                a.mram_reads != b.mram_reads ||
                a.mram_writes != b.mram_writes ||
                a.atomic_acquires != b.atomic_acquires ||
                a.atomic_stalls != b.atomic_stalls ||
                a.atomic_stall_cycles != b.atomic_stall_cycles ||
                a.phase_cycles != b.phase_cycles,
            "scenario '", name,
            "': elided and always-switch schedules diverged");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::BenchOptions::parse(argc, argv);
    const u64 scale = opt.full ? 4 : 1;

    struct Scenario
    {
        const char *name;
        unsigned tasklets;
        u64 iters;
        std::function<TaskletBody(u64)> make;
    };

    // Bodies are built per scenario so the iteration count can scale.
    const auto compute1 = [](u64 iters) -> TaskletBody {
        return [iters](DpuContext &ctx) {
            for (u64 i = 0; i < iters; ++i)
                ctx.compute(1);
        };
    };
    const auto wramMixed = [](u64 iters) -> TaskletBody {
        return [iters](DpuContext &ctx) {
            for (u64 i = 0; i < iters; ++i) {
                ctx.compute(1 + ctx.rng().below(8));
                const Addr a = makeAddr(
                    Tier::Wram,
                    static_cast<u32>(4 * ctx.rng().below(256)));
                ctx.write32(a, ctx.read32(a) + 1);
            }
        };
    };
    const auto mramStream = [](u64 iters) -> TaskletBody {
        return [iters](DpuContext &ctx) {
            char buf[64] = {};
            for (u64 i = 0; i < iters; ++i) {
                const Addr a = makeAddr(
                    Tier::Mram,
                    static_cast<u32>(64 * ctx.rng().below(1024)));
                ctx.readBlock(a, buf, sizeof buf);
                ctx.writeBlock(a, buf, sizeof buf);
            }
        };
    };
    const auto atomicPingPong = [](u64 iters) -> TaskletBody {
        return [iters](DpuContext &ctx) {
            for (u64 i = 0; i < iters; ++i) {
                ctx.acquire(3);
                ctx.compute(4);
                ctx.release(3);
                ctx.compute(2);
            }
        };
    };
    const auto barrierStorm = [](u64 iters) -> TaskletBody {
        return [iters](DpuContext &ctx) {
            for (u64 i = 0; i < iters; ++i) {
                ctx.compute(2 + ctx.taskletId() % 5);
                ctx.barrier();
            }
        };
    };

    const std::vector<Scenario> scenarios = {
        {"compute1_t1", 1, 400000 * scale, compute1},
        {"compute1_t11", 11, 40000 * scale, compute1},
        {"compute1_t24", 24, 20000 * scale, compute1},
        {"wram_mixed_t11", 11, 20000 * scale, wramMixed},
        {"mram_stream_t11", 11, 10000 * scale, mramStream},
        {"atomic_pingpong_t8", 8, 10000 * scale, atomicPingPong},
        {"barrier_storm_t11", 11, 4000 * scale, barrierStorm},
    };

    Table table({"scenario", "tasklets", "sim_Mcycles", "elide%",
                 "host_ms_elided", "host_ms_switch", "speedup",
                 "Mcyc_per_s"});
    for (const auto &s : scenarios) {
        const auto body = s.make(s.iters);
        const auto elided = runScenario(s.tasklets, s.iters, false, body);
        const auto switched = runScenario(s.tasklets, s.iters, true, body);
        expectSameSimulation(s.name, elided.stats, switched.stats);

        const double sim_mcyc =
            static_cast<double>(elided.stats.total_cycles) / 1e6;
        const u64 events =
            elided.stats.sched_elisions + elided.stats.sched_switches;
        table.newRow()
            .cell(s.name)
            .cell(s.tasklets)
            .cell(sim_mcyc, 2)
            .cell(events ? 100.0 *
                               static_cast<double>(
                                   elided.stats.sched_elisions) /
                               static_cast<double>(events)
                         : 0.0,
                  1)
            .cell(elided.wall_s * 1e3, 1)
            .cell(switched.wall_s * 1e3, 1)
            .cell(elided.wall_s > 0 ? switched.wall_s / elided.wall_s
                                    : 0.0,
                  2)
            .cell(elided.wall_s > 0 ? sim_mcyc / elided.wall_s : 0.0, 1);

        bench::PerfRecord rec;
        rec.label = s.name;
        rec.wall_s = elided.wall_s;
        rec.sim_cycles = static_cast<double>(elided.stats.total_cycles);
        rec.sched_switches = elided.stats.sched_switches;
        rec.sched_elisions = elided.stats.sched_elisions;
        bench::PerfReporter::instance().record(std::move(rec));
    }

    std::cout << "== micro_sched: inner-loop scheduler performance ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    std::cout << "\nelided vs always-switch simulated stats: identical\n";
    return 0;
}
