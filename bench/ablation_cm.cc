/**
 * @file
 * Ablation A4: the wait-on-contention policy the paper's taxonomy
 * mentions but excludes ("allowing transactions to wait when lock
 * contention is encountered, rather than simply aborting", §3.2).
 * This bench quantifies what the paper left on the table: bounded
 * waiting on held ORecs/rw-locks for Tiny and VR, under the low- and
 * high-contention ArrayBench workloads.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 tx_a = opt.full ? 20 : 8;
    const u32 tx_b = opt.full ? 400 : 150;
    const unsigned tasklets = 11;

    Table table({"workload", "stm", "wait_polls", "tput_tx_per_s",
                 "abort_rate"});

    struct Case
    {
        const char *name;
        WorkloadFactory factory;
    };
    const std::vector<Case> cases = {
        {"ArrayBench A",
         [&] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadA(tx_a));
         }},
        {"ArrayBench B",
         [&] {
             return std::make_unique<ArrayBench>(
                 ArrayBenchParams::workloadB(tx_b));
         }},
    };

    for (const auto &c : cases) {
        for (core::StmKind kind :
             {core::StmKind::TinyEtlWb, core::StmKind::VrEtlWb}) {
            for (const int polls : {0, 2, 8, 32}) {
                runtime::RunSpec base;
                base.mram_bytes = 8 * 1024 * 1024;
                base.cm_wait_polls_override = polls;
                const auto pr =
                    runPoint(c.factory, kind, core::MetadataTier::Mram,
                             tasklets, opt.seeds, base);
                table.newRow()
                    .cell(c.name)
                    .cell(core::stmKindName(kind))
                    .cell(polls)
                    .cell(pr.throughput_mean, 1)
                    .cell(pr.abort_rate_mean, 4);
            }
        }
    }

    std::cout << "== Ablation A4  wait-on-contention vs abort-immediately "
                 "(11 tasklets) ==\n";
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.printText(std::cout);
    return 0;
}
