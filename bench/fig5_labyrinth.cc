/**
 * @file
 * Reproduces Fig. 5 (c,d,g,h,k,l): Labyrinth S / M / L, metadata in
 * MRAM (WRAM metadata is infeasible for this benchmark — appendix A).
 *
 * Paper shapes to check against:
 *  - All STMs achieve similar peak throughput at ~5 tasklets: the
 *    workload is strongly memory-bound and the DPU saturates at the
 *    hardware level, not the STM level.
 *  - "Other (Executing)" dominates the breakdown (private grid copy +
 *    Lee expansion inside the transaction).
 *  - VR variants incur extra aborts on the short queue-pop transaction
 *    with limited throughput impact.
 */

#include "bench/common.hh"
#include "workloads/labyrinth.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    runtime::RunSpec base;
    base.mram_bytes = 64 * 1024 * 1024;

    struct GridSpec
    {
        const char *title;
        LabyrinthParams params;
    };
    const std::vector<GridSpec> grids = {
        {"Fig 5c/g/k  Labyrinth S (16x16x3)",
         LabyrinthParams::small(opt.full ? 100 : 32)},
        {"Fig 5c/g/k  Labyrinth M (32x32x3)",
         LabyrinthParams::medium(opt.full ? 100 : 24)},
        {"Fig 5d/h/l  Labyrinth L (128x128x3)",
         LabyrinthParams::large(opt.full ? 100 : 12)},
    };

    for (const auto &g : grids) {
        sweepKinds(
            g.title,
            [&] { return std::make_unique<Labyrinth>(g.params); },
            core::MetadataTier::Mram, opt, base);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
