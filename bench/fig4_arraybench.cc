/**
 * @file
 * Reproduces Fig. 4 (a,b,e,f,i,j) of the paper: throughput, abort rate
 * and time breakdown of the seven STMs on ArrayBench workloads A and B,
 * STM metadata in MRAM, as the tasklet count varies.
 *
 * Paper shapes to check against:
 *  - Workload A: VR ETL variants best, then VR CTL; Tiny ~2x slower
 *    than the best VR; NOrec worst (~2.5x at 11 tasklets), dominated
 *    by readset validations.
 *  - Workload B: order nearly reversed — NOrec best, VR ETL stops
 *    scaling around 4 tasklets (~40% below NOrec), CTL variants trail
 *    their ETL counterparts.
 */

#include "bench/common.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 tx_a = opt.full ? 30 : 8;
    const u32 tx_b = opt.full ? 400 : 100;

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;

    sweepKinds(
        "Fig 4a/e/i  ArrayBench A",
        [&] {
            return std::make_unique<ArrayBench>(
                ArrayBenchParams::workloadA(tx_a));
        },
        core::MetadataTier::Mram, opt, base);

    sweepKinds(
        "Fig 4b/f/j  ArrayBench B",
        [&] {
            return std::make_unique<ArrayBench>(
                ArrayBenchParams::workloadB(tx_b));
        },
        core::MetadataTier::Mram, opt, base);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
