/**
 * @file
 * Ablation A5: transactional boosting vs word-based STM on the
 * structure-heavy extension workloads (docs/boosting.md). Sweeps every
 * STM kind (including Tl2) with structure operations routed through
 * word-based transactions and through the boosted library
 * (runtime/boosted.hh), at low and high contention.
 *
 * Word-based STMs conflict on the *physical* words a structure
 * operation happens to touch — probe chains, predecessor towers,
 * shared counters — so high-contention structure workloads abort on
 * accesses that commute at the abstract level. Boosting replaces that
 * with key-granular abstract locks plus semantic undo; this bench
 * quantifies the gap the word-level false conflicts cost.
 *
 * --check asserts the acceptance gates on the high-contention sweeps:
 * for Skip-List HC and Vacation HC, the best boosted configuration
 * must beat the best word-based configuration by >= 1.3x committed
 * ops/s, with its abort rate at least 3x lower (compared at each
 * mode's best-throughput point).
 */

#include "bench/common.hh"
#include "workloads/skiplist.hh"
#include "workloads/vacation.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

namespace
{

/** Best-throughput point of one (workload, mode) sweep. */
struct BestPoint
{
    double tput = 0;
    double abort_rate = 0;
    core::StmKind kind{};
    unsigned tasklets = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    const BenchOptions opt = BenchOptions::parse(
        argc, argv, [&](const std::string &a) {
            if (a == "--check") {
                check = true;
                return true;
            }
            return false;
        });

    return guardedMain([&] {
        const u32 ops = opt.full ? 200 : 60;
        const std::vector<unsigned> tasklet_series =
            opt.full ? std::vector<unsigned>{1, 2, 4, 8, 11, 16, 24}
                     : std::vector<unsigned>{1, 8, 16};

        struct Case
        {
            const char *name;
            bool high_contention; ///< --check gates only these
            WorkloadFactory factory;
        };
        const std::vector<Case> cases = {
            {"Skip-List LC", false,
             [&] {
                 return std::make_unique<SkipList>(
                     SkipListParams::lowContention(ops));
             }},
            {"Skip-List HC", true,
             [&] {
                 return std::make_unique<SkipList>(
                     SkipListParams::highContention(ops));
             }},
            {"Vacation LC", false,
             [&] {
                 return std::make_unique<Vacation>(
                     VacationParams::lowContention(ops));
             }},
            {"Vacation HC", true,
             [&] {
                 return std::make_unique<Vacation>(
                     VacationParams::highContention(ops));
             }},
        };

        Table table({"workload", "mode", "stm", "tasklets",
                     "tput_tx_per_s", "abort_rate"});
        // cases.size() x {word, boosted}
        std::vector<std::array<BestPoint, 2>> best(cases.size());

        for (size_t c = 0; c < cases.size(); ++c) {
            for (const bool boosted : {false, true}) {
                for (core::StmKind kind : core::allStmKindsExtended()) {
                    for (const unsigned tasklets : tasklet_series) {
                        runtime::RunSpec base;
                        base.mram_bytes = 8 * 1024 * 1024;
                        opt.applyTo(base);
                        base.boosting = boosted;
                        const auto pr = runPoint(
                            cases[c].factory, kind,
                            core::MetadataTier::Mram, tasklets,
                            opt.seeds, base);
                        if (!pr.runnable)
                            continue;
                        table.newRow()
                            .cell(cases[c].name)
                            .cell(boosted ? "boosted" : "word")
                            .cell(core::stmKindName(kind))
                            .cell(tasklets)
                            .cell(pr.throughput_mean, 1)
                            .cell(pr.abort_rate_mean, 4);
                        BestPoint &b = best[c][boosted ? 1 : 0];
                        if (pr.throughput_mean > b.tput) {
                            b.tput = pr.throughput_mean;
                            b.abort_rate = pr.abort_rate_mean;
                            b.kind = kind;
                            b.tasklets = tasklets;
                        }
                    }
                }
            }
        }

        std::cout << "== Ablation A5  transactional boosting vs "
                     "word-based STM ==\n";
        if (opt.csv)
            table.printCsv(std::cout);
        else
            table.printText(std::cout);
        std::cout << "\n";
        for (size_t c = 0; c < cases.size(); ++c) {
            const BestPoint &w = best[c][0];
            const BestPoint &b = best[c][1];
            std::cout << cases[c].name << ": best word "
                      << core::stmKindName(w.kind) << "/t" << w.tasklets
                      << " " << w.tput << " tx/s (abort "
                      << w.abort_rate << "), best boosted "
                      << core::stmKindName(b.kind) << "/t" << b.tasklets
                      << " " << b.tput << " tx/s (abort "
                      << b.abort_rate << "), speedup "
                      << (w.tput > 0 ? b.tput / w.tput : 0) << "x\n";
        }

        if (check) {
            int failures = 0;
            for (size_t c = 0; c < cases.size(); ++c) {
                if (!cases[c].high_contention)
                    continue;
                const BestPoint &w = best[c][0];
                const BestPoint &b = best[c][1];
                if (b.tput < 1.3 * w.tput) {
                    std::cerr << "CHECK FAILED: " << cases[c].name
                              << " boosted best " << b.tput
                              << " tx/s < 1.3x word best " << w.tput
                              << " tx/s\n";
                    ++failures;
                }
                if (w.abort_rate < 3.0 * b.abort_rate) {
                    std::cerr << "CHECK FAILED: " << cases[c].name
                              << " abort at best points: word "
                              << w.abort_rate << " < 3x boosted "
                              << b.abort_rate << "\n";
                    ++failures;
                }
            }
            if (failures)
                return 1;
            std::cout << "CHECK OK: boosted best >= 1.3x word best "
                         "ops/s with >= 3x lower abort rate on every "
                         "high-contention sweep\n";
        }
        return 0;
    });
}
