/**
 * @file
 * Extension bench: Vacation (simplified STAMP travel reservations)
 * across the full taxonomy — medium-size transactions (dozens of
 * reads, ~10 writes) between ArrayBench B's tiny ones and Labyrinth's
 * huge ones. Expected from the paper's analysis: NOrec leads under
 * high contention; the ORec ETL designs close in at low contention
 * where its extra validations bite; CTL and VR pay their usual
 * late-detection / spurious-upgrade taxes.
 */

#include "bench/common.hh"
#include "workloads/vacation.hh"

using namespace pimstm;
using namespace pimstm::bench;
using namespace pimstm::workloads;

static int
run(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const u32 ops = opt.full ? 120 : 40;

    runtime::RunSpec base;
    base.mram_bytes = 8 * 1024 * 1024;

    sweepKinds(
        "EXT  Vacation LC (64 items/table, 80% reservations)",
        [&] {
            return std::make_unique<Vacation>(
                VacationParams::lowContention(ops));
        },
        core::MetadataTier::Mram, opt, base);

    sweepKinds(
        "EXT  Vacation HC (8 items/table, heavy churn)",
        [&] {
            return std::make_unique<Vacation>(
                VacationParams::highContention(ops));
        },
        core::MetadataTier::Mram, opt, base);

    sweepKinds(
        "EXT  Vacation LC, metadata WRAM",
        [&] {
            return std::make_unique<Vacation>(
                VacationParams::lowContention(ops));
        },
        core::MetadataTier::Wram, opt, base);
    return 0;
}

int
main(int argc, char **argv)
{
    return guardedMain([&] { return run(argc, argv); });
}
