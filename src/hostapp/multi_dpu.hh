/**
 * @file
 * Multi-DPU execution models for the §4.3 experiments.
 *
 * Both multi-DPU benchmarks are embarrassingly parallel across DPUs —
 * KMeans shards disjoint points and merges centroids on the CPU each
 * round; Labyrinth gives each DPU an independent instance. Following
 * the paper's own scaling argument (per-DPU time is constant as DPUs
 * and total input grow together), the models fully simulate a small
 * sample of DPUs and derive whole-system time as
 *
 *   time(D) = max(sampled per-DPU time)
 *           + per-round host transfers (cost model, scales with D)
 *           + modelled host-side merge time (KMeans only).
 */

#ifndef PIMSTM_HOSTAPP_MULTI_DPU_HH
#define PIMSTM_HOSTAPP_MULTI_DPU_HH

#include "core/stm.hh"
#include "sim/config.hh"
#include "util/types.hh"

namespace pimstm::hostapp
{

struct MultiKMeansParams
{
    u32 clusters = 15;
    u32 dims = 14;
    /** Points assigned to each DPU (the paper uses 200K; simulation
     * uses a smaller default — per-DPU time is what matters and it is
     * linear in this value on both the DPU and CPU sides). */
    u32 points_per_dpu = 2400;
    u32 rounds = 3;
    /** Tasklets per DPU (the peak-throughput configuration). */
    unsigned tasklets = 11;
    /** Fully-simulated DPU sample size. */
    unsigned sample_dpus = 2;
    core::MetadataTier tier = core::MetadataTier::Wram; // as in §4.3.1
    u64 seed = 1;
};

struct MultiLabyrinthParams
{
    u32 x = 16, y = 16, z = 3;
    u32 num_paths = 100;
    unsigned tasklets = 8;
    unsigned sample_dpus = 2;
    u64 seed = 1;
};

/** Decomposed whole-system execution time for D DPUs. */
struct MultiDpuTime
{
    unsigned dpus = 0;
    double compute_seconds = 0;  ///< slowest sampled DPU, simulated
    double transfer_seconds = 0; ///< host<->MRAM copies, cost model
    double merge_seconds = 0;    ///< modelled host-side merge (KMeans)
    double launch_seconds = 0;   ///< batch launch/sync overhead

    double
    total() const
    {
        return compute_seconds + transfer_seconds + merge_seconds +
               launch_seconds;
    }
};

/**
 * Model the multi-DPU KMeans execution for @p dpus DPUs.
 * Simulates @p params.sample_dpus DPUs with distinct shards/seeds.
 */
MultiDpuTime runKMeansMultiDpu(unsigned dpus,
                               const MultiKMeansParams &params,
                               const sim::HostLinkConfig &link = {});

/** Model the multi-DPU Labyrinth execution for @p dpus DPUs. */
MultiDpuTime runLabyrinthMultiDpu(unsigned dpus,
                                  const MultiLabyrinthParams &params,
                                  const sim::HostLinkConfig &link = {});

} // namespace pimstm::hostapp

#endif // PIMSTM_HOSTAPP_MULTI_DPU_HH
