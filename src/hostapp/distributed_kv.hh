/**
 * @file
 * DistributedKv — the paper's future-work item (§5): a concurrent
 * key-value store distributed across multiple DPUs so the dataset can
 * exceed one DPU's 64 MB, built on PIM-STM.
 *
 * Design, following the paper's constraints:
 *  - Keys are hashed to shards; each shard is a TxHashMap in one DPU's
 *    MRAM. Within a shard, PIM-STM transparently regulates concurrency
 *    among the tasklets executing that shard's operations.
 *  - DPUs cannot talk to each other, so the host routes operations:
 *    execute() groups a batch by shard, runs every involved DPU
 *    concurrently (host threads via util::ThreadPool; the modelled
 *    batch takes as long as the slowest shard) and charges the
 *    PimSystem host-link cost model for every fragment/vote/decision
 *    transfer and launch.
 *  - Cross-shard transactions (movek: atomically relocate a key) run
 *    under host-coordinated two-phase commit over per-shard fragments:
 *    each involved DPU executes its fragment as a shard-local STM
 *    transaction that acquires a *pin* (an entry in a per-shard
 *    transactional pin table) on its key, the host collects votes and
 *    delivers commit/abort decisions, and pins are held across the
 *    prepare -> decision window so no conflicting shard-local operation
 *    can slip between the phases. Single-shard ops and cross-shard
 *    transactions flow through the same launches; ops that touch a
 *    pinned key are deferred to the next round (the pin read is what
 *    orders them after the in-flight transaction). Full protocol,
 *    cost accounting and failure matrix: docs/distributed.md.
 */

#ifndef PIMSTM_HOSTAPP_DISTRIBUTED_KV_HH
#define PIMSTM_HOSTAPP_DISTRIBUTED_KV_HH

#include <memory>
#include <string>
#include <vector>

#include "core/stm_factory.hh"
#include "runtime/boosted.hh"
#include "runtime/tx_hashmap.hh"
#include "sim/config.hh"
#include "sim/dpu.hh"
#include "sim/pim_system.hh"

namespace pimstm::hostapp
{

/** A host-issued KV operation. */
struct KvOp
{
    enum class Type : u8
    {
        Put,
        Get,
        Erase,
    };
    Type type = Type::Get;
    u32 key = 0;
    u32 value = 0;

    static KvOp
    put(u32 key, u32 value)
    {
        return {Type::Put, key, value};
    }

    static KvOp
    get(u32 key)
    {
        return {Type::Get, key, 0};
    }

    static KvOp
    erase(u32 key)
    {
        return {Type::Erase, key, 0};
    }
};

/** Result of one KV operation. */
struct KvResult
{
    bool ok = false; ///< found / inserted / erased
    u32 value = 0;   ///< Get only
};

/**
 * A cross-shard transaction: atomically relocate @p src_key to
 * @p dst_key. Its read/write set is partitioned into one fragment per
 * involved shard (source: predicate "present", erase on commit;
 * destination: predicate "absent", insert on commit), each executed as
 * a shard-local STM transaction inside its DPU.
 */
struct CrossShardTx
{
    u32 src_key = 0;
    u32 dst_key = 0;

    static CrossShardTx
    move(u32 src_key, u32 dst_key)
    {
        return {src_key, dst_key};
    }
};

/** Outcome of one cross-shard transaction. */
struct CrossShardTxResult
{
    bool committed = false;
    u32 value = 0;          ///< relocated value, when committed
    unsigned attempts = 0;  ///< prepare attempts (1 = first try)
    bool serialized = false; ///< resolved under the serial token
};

/** Results of one mixed batch, positionally aligned with the inputs. */
struct KvBatchResult
{
    std::vector<KvResult> ops;
    std::vector<CrossShardTxResult> txs;
};

/**
 * Coordinator / participant statistics, per DistributedKv instance and
 * accumulated process-wide (twoPcTotals) for the --perf-json
 * `distributed` block. Host-side observability only.
 */
struct TwoPcStats
{
    u64 batches = 0;        ///< execute() batches processed
    u64 prepare_rounds = 0; ///< op+prepare launches issued
    u64 commit_rounds = 0;  ///< decision launches (incl. re-deliveries)
    u64 tx_commits = 0;
    u64 tx_predicate_fails = 0;  ///< absent source / occupied dest
    u64 tx_conflict_retries = 0; ///< pin conflicts sent back to retry
    u64 serial_fallbacks = 0;    ///< txs resolved under the serial token
    u64 deferred_ops = 0;        ///< ops postponed by a pinned key
    u64 participant_redeliveries = 0; ///< fragments re-sent after a crash
    u64 crashes_in_prepare = 0; ///< injected crashes during prepare rounds
    u64 crashes_in_commit = 0;  ///< injected crashes during decision rounds
    u64 shard_recoveries = 0;   ///< whole-DPU shard crashes recovered
    u64 wal_persists = 0;       ///< commit decisions persisted to the WAL
    u64 decisions_replayed = 0; ///< persisted decisions replayed by recover()
    u64 bytes_down = 0;         ///< host -> DPU fragment/decision bytes
    u64 bytes_up = 0;           ///< DPU -> host result/vote/ack bytes
    double shard_busy_seconds = 0;     ///< summed per-shard simulated time
    double shard_capacity_seconds = 0; ///< num_shards x batch makespans

    /** Mean fraction of batch time the average shard spent busy. */
    double
    meanShardOccupancy() const
    {
        return shard_capacity_seconds > 0
                   ? shard_busy_seconds / shard_capacity_seconds
                   : 0.0;
    }
};

/** Snapshot of the process-wide 2PC totals. */
TwoPcStats twoPcTotals();

/** Fold one instance's counters into the process-wide totals. */
void accumulateTwoPcTotals(const TwoPcStats &delta);

/** The `distributed` --perf-json block for @p s (one JSON object). */
std::string twoPcStatsJson(const TwoPcStats &s);

/** Shard a key belongs to in an @p shards-way store (host-pure;
 * independent of the in-shard slot hash so shards stay balanced). */
unsigned shardOfKey(u32 key, unsigned shards);

/** How the coordinator routes one CrossShardTx. */
enum class TxRoute : u8
{
    /** src and dst shards differ: genuine two-phase commit. */
    Cross,
    /** Both keys hash to one shard: degrade to a single shard-local
     * transaction (erase+insert atomically) — never a degenerate 2PC. */
    Local,
    /** src_key == dst_key: rejected up front (committed = false). */
    Degenerate,
};

/** Routing decision for one CrossShardTx (host-pure, unit-testable
 * without DPUs). */
struct TxPlan
{
    TxRoute route = TxRoute::Cross;
    unsigned src_shard = 0;
    unsigned dst_shard = 0;
};

/** Classify @p tx for an @p shards-way store. Keys must be valid. */
TxPlan planCrossShardTx(const CrossShardTx &tx, unsigned shards);

struct DistributedKvConfig
{
    unsigned shards = 4;
    u32 capacity_per_shard = 4096;
    core::StmKind kind = core::StmKind::NOrec;
    core::MetadataTier tier = core::MetadataTier::Wram;
    unsigned tasklets_per_dpu = 11;
    size_t mram_bytes = 4 * 1024 * 1024;
    u64 seed = 1;
    sim::TimingConfig timing{};
    sim::HostLinkConfig link{};

    /** Fault-injection plan applied to every shard DPU (operation
     * counts accumulate across all launches of the instance, so a
     * `crash=` point fires once per shard DPU lifetime, wherever the
     * count lands — seeding, a prepare round, or a decision round). */
    sim::FaultPlan faults;

    /** Coordinator backstop: after this many pin-conflict retries a
     * cross-shard transaction takes the serial token — remaining
     * transactions resolve one at a time, which breaks any
     * deterministic conflict cycle. Must be >= 1. */
    unsigned serial_token_after = 4;

    /** In-DPU backstop (PR 4 machinery): escalate a shard-local
     * transaction to serial-irrevocable mode after this many
     * consecutive aborts. 0 disables. */
    unsigned stm_serial_fallback_after = 64;

    /** Pin-table capacity per shard; bounds in-flight fragments (a
     * prepare that cannot pin votes Conflict and retries). */
    u32 max_inflight_per_shard = 64;

    /** Route shard-local map and pin-table accesses — including the
     * 2PC prepare/decision fragments — through boosted views
     * (runtime::BoostedMap, docs/boosting.md) instead of word-based
     * transactions. */
    bool boosting = false;

    /** Durable shards (StmConfig::durable, docs/durability.md): every
     * shard STM logs its commits at the MRAM persist boundary, and a
     * whole-DPU shard crash (`dpu-crash=` fault plan) is recovered
     * in-launch — unfinished fragments re-run, finished outcomes are
     * host state and survive. Forces stm_serial_fallback_after off
     * (incompatible with durable mode) and excludes boosting. */
    bool durable = false;
};

/** A KV store sharded over several simulated DPUs. */
class DistributedKv
{
  public:
    explicit DistributedKv(const DistributedKvConfig &cfg);
    ~DistributedKv();

    DistributedKv(const DistributedKv &) = delete;
    DistributedKv &operator=(const DistributedKv &) = delete;

    /** Shard a key belongs to. */
    unsigned shardOf(u32 key) const;

    /**
     * Execute a mixed batch: single-shard operations and cross-shard
     * transactions flow through the same launches. Operations on
     * different shards run on their DPUs in parallel (modelled, and on
     * host threads); operations on the same shard run concurrently
     * across that DPU's tasklets, isolated by the STM; cross-shard
     * transactions commit via two-phase commit over per-shard
     * fragments. Results are positionally aligned with the inputs.
     */
    KvBatchResult execute(const std::vector<KvOp> &ops,
                          const std::vector<CrossShardTx> &txs);

    /** Operations-only batch. */
    std::vector<KvResult> execute(const std::vector<KvOp> &ops);

    /**
     * Atomically relocate @p key to @p new_key (which may live on a
     * different shard) via one cross-shard transaction. Returns false
     * (and changes nothing) when @p key is absent or @p new_key
     * already exists.
     */
    bool moveKey(u32 key, u32 new_key);

    /**
     * The §3.1 serialized escape hatch the 2PC path replaces, kept as
     * the measured baseline (bench/micro_2pc.cc): probe both keys with
     * one whole-batch execute, then erase+put with another, each a
     * full pipeline drain. Semantics match moveKey.
     */
    bool moveKeySerialized(u32 key, u32 new_key);

    /** Total simulated+modelled time spent so far (seconds). */
    double elapsedSeconds() const { return elapsed_seconds_; }

    /** Committed transactions across all shards so far. */
    u64 totalCommits() const;
    u64 totalAborts() const;

    /** Summed simulated cycles / scheduler counters across shards and
     * launches (for --perf-json records). */
    u64 simCycles() const;
    u64 schedSwitches() const;
    u64 schedElisions() const;

    /** 2PC statistics for this instance. */
    const TwoPcStats &stats() const { return stats_; }

    /** Simulated busy seconds of shard @p s across all launches. */
    double shardBusySeconds(unsigned s) const;

    /** Host-side exact population (verification). */
    u32 population() const;

    /** Host-side lookup without timing (verification). */
    bool peek(u32 key, u32 &value_out) const;

    /** Outstanding pins across all shards (0 when quiescent). */
    u32 livePins() const;

    /**
     * @{ Composition hooks (bench/serve_kv.cc, docs/serving.md):
     * borrow one shard's STM / DPU, e.g. to attach a per-shard
     * runtime::AdaptiveController via Dpu::setEpochHook. Callers must
     * not run the DPU themselves and must leave both quiescent
     * between execute() calls.
     */
    core::Stm &shardStm(unsigned s);
    sim::Dpu &shardDpu(unsigned s);
    /** @} */

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    //
    // Coordinator-failure test hooks (fault-injection only).
    //

    /** Where an injected coordinator crash fires inside execute(). */
    enum class CrashPoint : u8
    {
        None,
        /** After votes return, before the decision is logged: a
         * recovering coordinator finds no decision record and must
         * presume abort. */
        AfterPrepare,
        /** After the decision is logged and delivered to at most
         * @p max_decision_shards shards: recovery must re-deliver the
         * logged decision to the rest, idempotently. */
        MidDecision,
    };

    /** Thrown by execute() when the armed crash point fires. */
    struct CoordinatorCrashed
    {
    };

    /** Arm a one-shot coordinator crash for the next execute(). */
    void injectCoordinatorCrash(CrashPoint point,
                                unsigned max_decision_shards = 0);

    /** True after a coordinator crash until recover() completes;
     * execute() refuses to run in this state. */
    bool needsRecovery() const { return recovery_needed_; }

    /**
     * Coordinator recovery: walk the in-flight transaction log,
     * re-deliver logged commit decisions until every fragment has
     * applied (idempotent), and abort every undecided transaction
     * (presumed abort — release its pins). Afterwards every shard's
     * map reflects some serial order of the committed transactions
     * and all pins are released.
     */
    void recover();

  private:
    struct Shard
    {
        sim::Dpu *dpu = nullptr; ///< owned by system_
        std::unique_ptr<core::Stm> stm;
        runtime::TxHashMap map;
        runtime::TxHashMap pins; ///< key -> in-flight tx token
        /** Boosted views of map/pins; non-null iff cfg.boosting. */
        std::unique_ptr<runtime::BoostedMap> bmap;
        std::unique_ptr<runtime::BoostedMap> bpins;
        unsigned live_pins = 0;  ///< host view of committed pins
        bool pins_dirty = false; ///< pin table has tombstones to recycle
        u64 commits = 0;
        u64 aborts = 0;
        u64 cum_cycles = 0;
        u64 cum_switches = 0;
        u64 cum_elisions = 0;
        double busy_seconds = 0;
    };

    struct WorkItem;
    struct Outcome;
    struct InFlight;

    /** Execute one work item as a shard-local transaction. */
    void runItem(Shard &shard, sim::DpuContext &ctx, const WorkItem &it,
                 Outcome &out, bool check_pins);

    /** Run one launch over the shards with work; returns the slowest
     * shard's simulated seconds and fills per-item outcomes. */
    double runLaunch(std::vector<std::vector<WorkItem>> &work,
                     std::vector<std::vector<Outcome>> &outcomes,
                     bool decision_launch);

    /** Charge one round's launch + transfer costs and makespan. */
    void chargeRound(const std::vector<std::vector<WorkItem>> &work,
                     double worst_shard_seconds);

    /** Deliver decisions for @p wal entries, re-delivering fragments
     * that a participant crash left unapplied. Fires the MidDecision
     * crash hook when armed. */
    void deliverDecisions(std::vector<InFlight *> &wal);

    /** Recycle quiescent dirty pin tables (tombstone cleanup). */
    void recyclePins();

    /** Persist one logged commit decision (the coordinator WAL's
     * durability seam — presumed abort needs no persisted record). */
    void persistDecision(const InFlight &f);

    /** Persisted decision for @p token, or null (presumed abort). */
    const InFlight *findPersisted(u32 token) const;

    void foldTotalsDelta();

    DistributedKvConfig cfg_;
    std::unique_ptr<sim::PimSystem> system_;
    std::vector<Shard> shards_; ///< destroyed before system_ (STMs
                                ///< unregister from their DPUs)
    double elapsed_seconds_ = 0;
    u32 next_token_ = 1;
    TwoPcStats stats_;
    TwoPcStats folded_; ///< portion already folded into the globals

    std::vector<InFlight> wal_; ///< in-flight tx log (coordinator WAL)
    /** Durable copy of logged commit decisions: persisted before any
     * delivery, truncated once every fragment has applied. recover()
     * trusts only this copy — the in-memory wal_'s vote/pin flags are
     * treated as lost with the crashed coordinator. */
    std::vector<InFlight> persisted_wal_;
    bool recovery_needed_ = false;
    CrashPoint crash_point_ = CrashPoint::None;
    unsigned crash_decision_shards_ = 0;
};

} // namespace pimstm::hostapp

#endif // PIMSTM_HOSTAPP_DISTRIBUTED_KV_HH
