/**
 * @file
 * DistributedKv — the paper's future-work item (§5): a concurrent
 * key-value store distributed across multiple DPUs so the dataset can
 * exceed one DPU's 64 MB, built on PIM-STM.
 *
 * Design, following the paper's constraints:
 *  - Keys are hashed to shards; each shard is a TxHashMap in one DPU's
 *    MRAM. Within a shard, PIM-STM transparently regulates concurrency
 *    among the tasklets executing that shard's operations.
 *  - DPUs cannot talk to each other, so the host routes operations:
 *    execute() groups a batch by shard, runs each involved DPU once
 *    (its tasklets drain the shard's operation list transactionally)
 *    and charges the host-link cost model for the op/result transfers
 *    and the launch overhead.
 *  - Cross-shard operations (movek: atomically relocate a key) are
 *    CPU-coordinated and sequential — §3.1: updating data on multiple
 *    DPUs "can still be achieved, albeit sequentially, by coordinating
 *    the data manipulation via the CPU". The host serializes them
 *    against whole-batch execution, which is exactly the consistency
 *    the paper's design affords (no distributed transactions).
 */

#ifndef PIMSTM_HOSTAPP_DISTRIBUTED_KV_HH
#define PIMSTM_HOSTAPP_DISTRIBUTED_KV_HH

#include <memory>
#include <vector>

#include "core/stm_factory.hh"
#include "runtime/tx_hashmap.hh"
#include "sim/config.hh"
#include "sim/dpu.hh"

namespace pimstm::hostapp
{

/** A host-issued KV operation. */
struct KvOp
{
    enum class Type : u8
    {
        Put,
        Get,
        Erase,
    };
    Type type = Type::Get;
    u32 key = 0;
    u32 value = 0;

    static KvOp
    put(u32 key, u32 value)
    {
        return {Type::Put, key, value};
    }

    static KvOp
    get(u32 key)
    {
        return {Type::Get, key, 0};
    }

    static KvOp
    erase(u32 key)
    {
        return {Type::Erase, key, 0};
    }
};

/** Result of one KV operation. */
struct KvResult
{
    bool ok = false; ///< found / inserted / erased
    u32 value = 0;   ///< Get only
};

struct DistributedKvConfig
{
    unsigned shards = 4;
    u32 capacity_per_shard = 4096;
    core::StmKind kind = core::StmKind::NOrec;
    core::MetadataTier tier = core::MetadataTier::Wram;
    unsigned tasklets_per_dpu = 11;
    size_t mram_bytes = 4 * 1024 * 1024;
    u64 seed = 1;
    sim::TimingConfig timing{};
    sim::HostLinkConfig link{};
};

/** A KV store sharded over several simulated DPUs. */
class DistributedKv
{
  public:
    explicit DistributedKv(const DistributedKvConfig &cfg);
    ~DistributedKv();

    DistributedKv(const DistributedKv &) = delete;
    DistributedKv &operator=(const DistributedKv &) = delete;

    /** Shard a key belongs to. */
    unsigned shardOf(u32 key) const;

    /**
     * Execute a batch of operations. Operations on different shards
     * run on their DPUs in parallel (modelled); operations on the same
     * shard run concurrently across that DPU's tasklets, isolated by
     * the STM. Results are positionally aligned with @p ops.
     */
    std::vector<KvResult> execute(const std::vector<KvOp> &ops);

    /**
     * Atomically relocate @p key to @p new_key (which may live on a
     * different shard), CPU-coordinated: erase on the source shard,
     * insert on the destination. Returns false (and changes nothing)
     * when @p key is absent or @p new_key already exists.
     */
    bool moveKey(u32 key, u32 new_key);

    /** Total simulated+modelled time spent so far (seconds). */
    double elapsedSeconds() const { return elapsed_seconds_; }

    /** Committed transactions across all shards so far. */
    u64 totalCommits() const;
    u64 totalAborts() const;

    /** Host-side exact population (verification). */
    u32 population() const;

    /** Host-side lookup without timing (verification). */
    bool peek(u32 key, u32 &value_out) const;

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

  private:
    struct Shard
    {
        std::unique_ptr<sim::Dpu> dpu;
        std::unique_ptr<core::Stm> stm;
        runtime::TxHashMap map;
        u64 commits = 0;
        u64 aborts = 0;
    };

    /** Run @p shard's DPU over its pending slice of @p ops. */
    double runShard(Shard &shard, const std::vector<KvOp> &ops,
                    const std::vector<size_t> &indices,
                    std::vector<KvResult> &results);

    DistributedKvConfig cfg_;
    std::vector<Shard> shards_;
    double elapsed_seconds_ = 0;
};

} // namespace pimstm::hostapp

#endif // PIMSTM_HOSTAPP_DISTRIBUTED_KV_HH
