/**
 * @file
 * Energy model for the Fig. 8 reproduction (§4.3.3).
 *
 * The paper itself estimates UPMEM energy as full-system TDP (370 W)
 * times execution time, because the hardware has no energy counters;
 * the CPU side is measured with RAPL. RAPL is not readable in this
 * environment, so the CPU is modelled the same way: package TDP plus a
 * DRAM term, times execution time. Both estimates and the resulting
 * gain ratio are therefore TDP-based on both sides — documented in
 * DESIGN.md as a substitution.
 */

#ifndef PIMSTM_HOSTAPP_ENERGY_HH
#define PIMSTM_HOSTAPP_ENERGY_HH

#include "sim/config.hh"

namespace pimstm::hostapp
{

/** Energy estimates for one workload at one scale. */
struct EnergyEstimate
{
    double pim_joules = 0;
    double cpu_joules = 0;

    /** The paper's energy gain: CPU energy over PIM energy. */
    double
    gain() const
    {
        return pim_joules > 0 ? cpu_joules / pim_joules : 0.0;
    }
};

/** PIM energy: system TDP scaled by the fraction of DPUs in use. */
inline double
pimEnergyJoules(const sim::EnergyConfig &cfg, double seconds,
                unsigned dpus_used)
{
    const double fraction =
        std::min(1.0, static_cast<double>(dpus_used) /
                          static_cast<double>(cfg.pim_system_dpus));
    return cfg.pim_system_tdp_w * fraction * seconds;
}

/** CPU energy: package + DRAM power times time. */
inline double
cpuEnergyJoules(const sim::EnergyConfig &cfg, double seconds)
{
    return (cfg.cpu_package_w + cfg.cpu_dram_w) * seconds;
}

inline EnergyEstimate
estimateEnergy(const sim::EnergyConfig &cfg, double pim_seconds,
               unsigned dpus_used, double cpu_seconds)
{
    EnergyEstimate e;
    e.pim_joules = pimEnergyJoules(cfg, pim_seconds, dpus_used);
    e.cpu_joules = cpuEnergyJoules(cfg, cpu_seconds);
    return e;
}

} // namespace pimstm::hostapp

#endif // PIMSTM_HOSTAPP_ENERGY_HH
