#include "hostapp/multi_dpu.hh"

#include <vector>

#include "runtime/driver.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workloads/kmeans.hh"
#include "workloads/labyrinth.hh"

namespace pimstm::hostapp
{

namespace
{

/** Host-side per-round centroid merge for D DPUs: the CPU folds D
 * partial (sums, counts) blocks into global centroids. The arithmetic
 * count is exact — clusters x (dims+1) adds per DPU per round — and is
 * charged against the calibrated merge rate instead of being timed, so
 * the merge column of Fig. 7 is bitwise stable across runs. */
double
modelMergeSeconds(unsigned dpus, u32 clusters, u32 dims, u32 rounds,
                  const sim::HostCpuConfig &cpu)
{
    const double adds = static_cast<double>(clusters) * (dims + 1) *
                        dpus * rounds;
    return adds / cpu.merge_adds_per_s;
}

} // namespace

MultiDpuTime
runKMeansMultiDpu(unsigned dpus, const MultiKMeansParams &params,
                  const sim::HostLinkConfig &link)
{
    fatalIf(dpus == 0, "need at least one DPU");
    const unsigned sample = std::min(params.sample_dpus, dpus);

    // Per-DPU compute: simulate `sample` DPUs with distinct seeds (the
    // shards are statistically identical; the max over the sample is
    // the modelled critical path).
    sim::TimingConfig timing;
    std::vector<double> sample_seconds(sample, 0.0);
    util::parallelFor(sample, [&](size_t d) {
        workloads::KMeansParams kp;
        kp.clusters = params.clusters;
        kp.dims = params.dims;
        kp.rounds = params.rounds;
        kp.max_tasklets = 24;
        kp.points_per_tasklet = std::max<u32>(1, params.points_per_dpu / 24);
        workloads::KMeans wl(kp);

        runtime::RunSpec spec;
        spec.kind = core::StmKind::NOrec; // §4.3.1: NOrec on the DPU
        spec.tier = params.tier;
        spec.tasklets = params.tasklets;
        spec.seed = deriveSeed(params.seed, 0xd1d1, d);
        spec.mram_bytes = 16 * 1024 * 1024;
        spec.timing = timing;
        sample_seconds[d] = runWorkload(wl, spec).seconds;
    });
    double worst = 0;
    for (double s : sample_seconds)
        worst = std::max(worst, s);

    MultiDpuTime t;
    t.dpus = dpus;
    t.compute_seconds = worst;

    // Per round: centroids broadcast down, partial sums gathered up.
    const size_t down_bytes =
        static_cast<size_t>(params.clusters) * params.dims * 4;
    const size_t up_bytes =
        static_cast<size_t>(params.clusters) * (params.dims + 1) * 4;
    const double total_bytes =
        static_cast<double>(down_bytes + up_bytes) * dpus * params.rounds;
    t.transfer_seconds =
        params.rounds * 2 * link.copy_base_us * 1e-6 +
        total_bytes / (link.host_copy_bandwidth_gbps * 1e9);

    // Input point distribution (once).
    const double input_bytes = static_cast<double>(params.points_per_dpu) *
                               params.dims * 4 * dpus;
    t.transfer_seconds +=
        input_bytes / (link.host_copy_bandwidth_gbps * 1e9);

    t.merge_seconds = modelMergeSeconds(dpus, params.clusters,
                                        params.dims, params.rounds,
                                        sim::HostCpuConfig{});
    t.launch_seconds = params.rounds * link.launch_overhead_us * 1e-6;
    return t;
}

MultiDpuTime
runLabyrinthMultiDpu(unsigned dpus, const MultiLabyrinthParams &params,
                     const sim::HostLinkConfig &link)
{
    fatalIf(dpus == 0, "need at least one DPU");
    const unsigned sample = std::min(params.sample_dpus, dpus);

    sim::TimingConfig timing;
    std::vector<double> sample_seconds(sample, 0.0);
    util::parallelFor(sample, [&](size_t d) {
        workloads::LabyrinthParams lp;
        lp.x = params.x;
        lp.y = params.y;
        lp.z = params.z;
        lp.num_paths = params.num_paths;
        workloads::Labyrinth wl(lp);

        runtime::RunSpec spec;
        spec.kind = core::StmKind::NOrec;
        spec.tier = core::MetadataTier::Mram; // WRAM infeasible (§4.3.1)
        spec.tasklets = params.tasklets;
        spec.seed = deriveSeed(params.seed, 0x1abcafe, d);
        spec.mram_bytes = 64 * 1024 * 1024;
        spec.timing = timing;
        sample_seconds[d] = runWorkload(wl, spec).seconds;
    });
    double worst = 0;
    for (double s : sample_seconds)
        worst = std::max(worst, s);

    MultiDpuTime t;
    t.dpus = dpus;
    t.compute_seconds = worst;

    // Problem input down (endpoint list) and solved grid back up.
    const size_t grid_bytes =
        static_cast<size_t>(params.x) * params.y * params.z * 4;
    const size_t job_bytes = static_cast<size_t>(params.num_paths) * 8;
    const double total_bytes =
        static_cast<double>(grid_bytes + job_bytes) * dpus;
    t.transfer_seconds =
        2 * link.copy_base_us * 1e-6 +
        total_bytes / (link.host_copy_bandwidth_gbps * 1e9);
    t.launch_seconds = link.launch_overhead_us * 1e-6;
    return t;
}

} // namespace pimstm::hostapp
