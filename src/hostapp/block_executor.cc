#include "hostapp/block_executor.hh"

#include "util/logging.hh"

namespace pimstm::hostapp
{

BlockExecutor::BlockExecutor(const BlockExecutorConfig &cfg)
    : cfg_(cfg)
{
    fatalIf(cfg.tasklets == 0 || cfg.tasklets > 24,
            "tasklets must be in [1, 24]");

    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = cfg.mram_bytes;
    dpu_cfg.seed = cfg.seed;
    dpu_ = std::make_unique<sim::Dpu>(dpu_cfg, cfg.timing);

    core::StmConfig stm_cfg;
    stm_cfg.kind = cfg.kind;
    stm_cfg.metadata_tier = cfg.tier;
    stm_cfg.num_tasklets = cfg.tasklets;
    stm_cfg.max_read_set = cfg.max_read_set;
    stm_cfg.max_write_set = cfg.max_write_set;
    stm_cfg.data_words_hint = cfg.state_words + 1;
    stm_ = core::makeStm(*dpu_, stm_cfg);

    state_ = runtime::SharedArray32(*dpu_, sim::Tier::Mram,
                                    cfg.state_words);
    state_.fill(*dpu_, 0);
    turn_ = runtime::SharedArray32(*dpu_, sim::Tier::Mram, 1);
    turn_.poke(*dpu_, 0, 0);
}

BlockExecutor::~BlockExecutor() = default;

BlockResult
BlockExecutor::run(u32 num_txs, const BlockBody &body, bool ordered)
{
    dpu_->resetRun();
    turn_.poke(*dpu_, 0, 0);
    const u64 commits_before = stm_->stats().commits;
    const u64 aborts_before = stm_->stats().aborts;

    const unsigned tasklets =
        std::min<unsigned>(cfg_.tasklets, std::max<u32>(num_txs, 1));
    for (unsigned t = 0; t < tasklets; ++t) {
        dpu_->addTasklet([this, t, tasklets, num_txs, &body,
                          ordered](sim::DpuContext &ctx) {
            for (u32 i = t; i < num_txs; i += tasklets) {
                core::atomically(*stm_, ctx, [&](core::TxHandle &tx) {
                    // Speculative execution of the body...
                    body(tx, i);
                    if (!ordered)
                        return;
                    // ...then the turn gate: commit only when every
                    // lower-index transaction has committed. A retry
                    // here re-runs the body against fresh state.
                    if (tx.read(turn_.at(0)) != i)
                        tx.retry();
                    tx.write(turn_.at(0), i + 1);
                });
            }
        });
    }
    dpu_->run();

    if (ordered) {
        panicIf(turn_.peek(*dpu_, 0) != num_txs,
                "block executor turn gate ended out of step");
    }

    BlockResult r;
    r.seconds = cfg_.timing.cyclesToSeconds(dpu_->stats().total_cycles);
    r.commits = stm_->stats().commits - commits_before;
    r.aborts = stm_->stats().aborts - aborts_before;
    const u64 total = r.commits + r.aborts;
    r.abort_rate =
        total ? static_cast<double>(r.aborts) / static_cast<double>(total)
              : 0.0;
    return r;
}

} // namespace pimstm::hostapp
