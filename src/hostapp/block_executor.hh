/**
 * @file
 * BlockExecutor — the paper's other future-work direction (§5):
 * STM-parallelized blockchain block execution ("a relevant domain,
 * where STM is already being employed, is parallelization of
 * block-chains", citing Block-STM). A block is a list of transactions
 * with a MANDATED serialization order: the committed state must equal
 * executing tx 0..N-1 sequentially.
 *
 * Mapping Block-STM's optimistic ordered execution onto PIM-STM:
 * tasklets pick transactions round-robin and execute each body
 * speculatively inside a PIM-STM transaction; the body's last step
 * reads a shared `turn` word and retries unless it equals the
 * transaction's index, then advances it. Thus commits happen in index
 * order, speculative work overlaps across tasklets, and a speculation
 * invalidated by an earlier commit is re-executed from fresh state by
 * the STM's ordinary validation/abort machinery — no new concurrency
 * control is needed, which is exactly the pitch of building on a TM.
 */

#ifndef PIMSTM_HOSTAPP_BLOCK_EXECUTOR_HH
#define PIMSTM_HOSTAPP_BLOCK_EXECUTOR_HH

#include <functional>
#include <memory>

#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"

namespace pimstm::hostapp
{

/** A transaction body: index-aware, operating through the STM. */
using BlockBody = std::function<void(core::TxHandle &, u32 tx_index)>;

struct BlockExecutorConfig
{
    core::StmKind kind = core::StmKind::NOrec;
    core::MetadataTier tier = core::MetadataTier::Mram;
    unsigned tasklets = 8;
    /** Words of shared block state to allocate. */
    u32 state_words = 256;
    unsigned max_read_set = 128;
    unsigned max_write_set = 64;
    size_t mram_bytes = 4 * 1024 * 1024;
    u64 seed = 1;
    sim::TimingConfig timing{};
};

struct BlockResult
{
    double seconds = 0;
    u64 commits = 0;
    u64 aborts = 0;
    double abort_rate = 0;
};

/** Executes blocks of ordered transactions on one simulated DPU. */
class BlockExecutor
{
  public:
    explicit BlockExecutor(const BlockExecutorConfig &cfg);
    ~BlockExecutor();

    BlockExecutor(const BlockExecutor &) = delete;
    BlockExecutor &operator=(const BlockExecutor &) = delete;

    /** The shared state array transactions operate on. */
    runtime::SharedArray32 &state() { return state_; }
    sim::Dpu &dpu() { return *dpu_; }

    /**
     * Execute @p num_txs transactions of @p body with serialization
     * order 0..num_txs-1. May be called repeatedly; state persists
     * between blocks.
     *
     * @param ordered when false, the turn gate is skipped and
     *        transactions commit in any serializable order — the
     *        baseline for measuring the cost of ordering.
     */
    BlockResult run(u32 num_txs, const BlockBody &body,
                    bool ordered = true);

  private:
    BlockExecutorConfig cfg_;
    std::unique_ptr<sim::Dpu> dpu_;
    std::unique_ptr<core::Stm> stm_;
    runtime::SharedArray32 state_;
    runtime::SharedArray32 turn_;
};

} // namespace pimstm::hostapp

#endif // PIMSTM_HOSTAPP_BLOCK_EXECUTOR_HH
