#include "hostapp/distributed_kv.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pimstm::hostapp
{

DistributedKv::DistributedKv(const DistributedKvConfig &cfg)
    : cfg_(cfg)
{
    fatalIf(cfg.shards == 0, "DistributedKv needs at least one shard");
    fatalIf(cfg.tasklets_per_dpu == 0 || cfg.tasklets_per_dpu > 24,
            "tasklets_per_dpu must be in [1, 24]");

    shards_.resize(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
        sim::DpuConfig dpu_cfg;
        dpu_cfg.mram_bytes = cfg.mram_bytes;
        dpu_cfg.seed = deriveSeed(cfg.seed, 0x6b76, s);

        auto &shard = shards_[s];
        shard.dpu = std::make_unique<sim::Dpu>(dpu_cfg, cfg.timing);

        core::StmConfig stm_cfg;
        stm_cfg.kind = cfg.kind;
        stm_cfg.metadata_tier = cfg.tier;
        stm_cfg.num_tasklets = cfg.tasklets_per_dpu;
        // Probe chains bound the footprint of one operation; at sane
        // load factors they stay short, so cap the reservation rather
        // than provisioning for a full-table probe (an overflow would
        // still fail loudly via the descriptor capacity check).
        stm_cfg.max_read_set =
            std::min<u32>(2 * cfg.capacity_per_shard + 8, 256);
        stm_cfg.max_write_set = 8;
        stm_cfg.data_words_hint = cfg.capacity_per_shard * 2;
        shard.stm = core::makeStm(*shard.dpu, stm_cfg);

        shard.map = runtime::TxHashMap(*shard.dpu, sim::Tier::Mram,
                                       cfg.capacity_per_shard);
    }
}

DistributedKv::~DistributedKv() = default;

unsigned
DistributedKv::shardOf(u32 key) const
{
    // Independent of the in-shard slot hash so shards stay balanced.
    const u32 h = (key ^ 0x9e3779b9u) * 0x85ebca6bu;
    return (h >> 16) % static_cast<unsigned>(shards_.size());
}

double
DistributedKv::runShard(Shard &shard, const std::vector<KvOp> &ops,
                        const std::vector<size_t> &indices,
                        std::vector<KvResult> &results)
{
    if (indices.empty())
        return 0.0;

    shard.dpu->resetRun();
    const u64 commits_before = shard.stm->stats().commits;
    const u64 aborts_before = shard.stm->stats().aborts;

    const unsigned tasklets = static_cast<unsigned>(
        std::min<size_t>(cfg_.tasklets_per_dpu, indices.size()));

    // Round-robin slices: tasklet t handles indices[t], [t+T], ...
    for (unsigned t = 0; t < tasklets; ++t) {
        shard.dpu->addTasklet([&, t](sim::DpuContext &ctx) {
            for (size_t i = t; i < indices.size(); i += tasklets) {
                const KvOp &op = ops[indices[i]];
                KvResult &res = results[indices[i]];
                core::atomically(
                    *shard.stm, ctx, [&](core::TxHandle &tx) {
                        switch (op.type) {
                          case KvOp::Type::Put:
                            res.ok = shard.map.insert(tx, op.key,
                                                      op.value);
                            break;
                          case KvOp::Type::Get:
                            res.ok = shard.map.lookup(tx, op.key,
                                                      res.value);
                            break;
                          case KvOp::Type::Erase:
                            res.ok = shard.map.erase(tx, op.key);
                            break;
                        }
                    });
            }
        });
    }
    shard.dpu->run();
    shard.commits += shard.stm->stats().commits - commits_before;
    shard.aborts += shard.stm->stats().aborts - aborts_before;
    return cfg_.timing.cyclesToSeconds(shard.dpu->stats().total_cycles);
}

std::vector<KvResult>
DistributedKv::execute(const std::vector<KvOp> &ops)
{
    std::vector<KvResult> results(ops.size());
    std::vector<std::vector<size_t>> per_shard(shards_.size());
    for (size_t i = 0; i < ops.size(); ++i) {
        fatalIf(!runtime::TxHashMap::validKey(ops[i].key),
                "invalid key in KV batch");
        per_shard[shardOf(ops[i].key)].push_back(i);
    }

    // DPUs run in parallel: the batch takes as long as the slowest
    // shard, plus CPU-mediated transfers of ops down and results up.
    double worst = 0.0;
    for (unsigned s = 0; s < shards_.size(); ++s)
        worst = std::max(
            worst, runShard(shards_[s], ops, per_shard[s], results));

    const double bytes = static_cast<double>(ops.size()) * (12 + 8);
    elapsed_seconds_ += worst +
                        cfg_.link.launch_overhead_us * 1e-6 +
                        cfg_.link.copy_base_us * 1e-6 +
                        bytes / (cfg_.link.host_copy_bandwidth_gbps * 1e9);
    return results;
}

bool
DistributedKv::moveKey(u32 key, u32 new_key)
{
    fatalIf(!runtime::TxHashMap::validKey(key) ||
                !runtime::TxHashMap::validKey(new_key),
            "invalid key in moveKey");
    if (key == new_key)
        return false;

    // CPU-coordinated sequence (§3.1): each step is one DPU-local
    // transaction; the host serializes the steps. Nothing else runs
    // between steps, so the relocation is atomic w.r.t. every other
    // host-issued operation.
    const auto probe = execute({KvOp::get(key), KvOp::get(new_key)});
    if (!probe[0].ok || probe[1].ok)
        return false;
    const auto commit = execute(
        {KvOp::erase(key), KvOp::put(new_key, probe[0].value)});
    panicIf(!commit[0].ok || !commit[1].ok,
            "moveKey lost a step despite host serialization");
    return true;
}

u64
DistributedKv::totalCommits() const
{
    u64 n = 0;
    for (const auto &s : shards_)
        n += s.commits;
    return n;
}

u64
DistributedKv::totalAborts() const
{
    u64 n = 0;
    for (const auto &s : shards_)
        n += s.aborts;
    return n;
}

u32
DistributedKv::population() const
{
    u32 n = 0;
    for (const auto &s : shards_)
        n += s.map.population(*s.dpu);
    return n;
}

bool
DistributedKv::peek(u32 key, u32 &value_out) const
{
    const auto &s = shards_[shardOf(key)];
    return s.map.peekValue(*s.dpu, key, value_out);
}

} // namespace pimstm::hostapp
