/**
 * @file
 * DistributedKv implementation: host-coordinated two-phase commit over
 * per-shard transaction fragments. See the header and
 * docs/distributed.md for the protocol; the invariants the code leans
 * on are called out inline.
 */

#include "hostapp/distributed_kv.hh"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pimstm::hostapp
{

namespace
{

// Modelled per-message link payloads (bytes). Ops carry (type, key,
// value) down and (ok, value) up; local moves carry both keys; prepare
// fragments carry (op, key, token) down and (vote, value, token) up;
// decisions carry (verdict, key, value, token) down and one ack word
// up. All rounds are batched copies, so totals feed
// PimSystem::transferSeconds directly.
constexpr size_t kOpBytesDown = 12;
constexpr size_t kOpBytesUp = 8;
constexpr size_t kLocalMoveBytesDown = 16;
constexpr size_t kLocalMoveBytesUp = 8;
constexpr size_t kPrepareBytesDown = 16;
constexpr size_t kVoteBytesUp = 12;
constexpr size_t kDecisionBytesDown = 16;
constexpr size_t kAckBytesUp = 4;

/** Coordinator's view of one fragment's prepare outcome. */
enum class Vote : u8
{
    Missing, ///< fragment never ran (participant crash): abort + retry
    Yes,     ///< predicate holds, key pinned
    Conflict,      ///< key pinned by another tx (or pin table full)
    PredicateFail, ///< source absent / destination occupied: final
};

std::mutex g_totals_mutex;
TwoPcStats g_totals;

} // namespace

TwoPcStats
twoPcTotals()
{
    std::lock_guard<std::mutex> lock(g_totals_mutex);
    return g_totals;
}

void
accumulateTwoPcTotals(const TwoPcStats &d)
{
    std::lock_guard<std::mutex> lock(g_totals_mutex);
    g_totals.batches += d.batches;
    g_totals.prepare_rounds += d.prepare_rounds;
    g_totals.commit_rounds += d.commit_rounds;
    g_totals.tx_commits += d.tx_commits;
    g_totals.tx_predicate_fails += d.tx_predicate_fails;
    g_totals.tx_conflict_retries += d.tx_conflict_retries;
    g_totals.serial_fallbacks += d.serial_fallbacks;
    g_totals.deferred_ops += d.deferred_ops;
    g_totals.participant_redeliveries += d.participant_redeliveries;
    g_totals.crashes_in_prepare += d.crashes_in_prepare;
    g_totals.crashes_in_commit += d.crashes_in_commit;
    g_totals.shard_recoveries += d.shard_recoveries;
    g_totals.wal_persists += d.wal_persists;
    g_totals.decisions_replayed += d.decisions_replayed;
    g_totals.bytes_down += d.bytes_down;
    g_totals.bytes_up += d.bytes_up;
    g_totals.shard_busy_seconds += d.shard_busy_seconds;
    g_totals.shard_capacity_seconds += d.shard_capacity_seconds;
}

std::string
twoPcStatsJson(const TwoPcStats &s)
{
    std::ostringstream o;
    o.precision(17);
    o << "{\"batches\": " << s.batches
      << ", \"prepare_rounds\": " << s.prepare_rounds
      << ", \"commit_rounds\": " << s.commit_rounds
      << ", \"tx_commits\": " << s.tx_commits
      << ", \"tx_predicate_fails\": " << s.tx_predicate_fails
      << ", \"tx_conflict_retries\": " << s.tx_conflict_retries
      << ", \"serial_fallbacks\": " << s.serial_fallbacks
      << ", \"deferred_ops\": " << s.deferred_ops
      << ", \"participant_redeliveries\": " << s.participant_redeliveries
      << ", \"crashes_in_prepare\": " << s.crashes_in_prepare
      << ", \"crashes_in_commit\": " << s.crashes_in_commit
      << ", \"shard_recoveries\": " << s.shard_recoveries
      << ", \"wal_persists\": " << s.wal_persists
      << ", \"decisions_replayed\": " << s.decisions_replayed
      << ", \"bytes_down\": " << s.bytes_down
      << ", \"bytes_up\": " << s.bytes_up
      << ", \"mean_shard_occupancy\": " << s.meanShardOccupancy() << "}";
    return o.str();
}

unsigned
shardOfKey(u32 key, unsigned shards)
{
    // Independent of the in-shard slot hash so shards stay balanced.
    const u32 h = (key ^ 0x9e3779b9u) * 0x85ebca6bu;
    return (h >> 16) % shards;
}

TxPlan
planCrossShardTx(const CrossShardTx &tx, unsigned shards)
{
    TxPlan p;
    p.src_shard = shardOfKey(tx.src_key, shards);
    p.dst_shard = shardOfKey(tx.dst_key, shards);
    if (tx.src_key == tx.dst_key)
        p.route = TxRoute::Degenerate;
    else if (p.src_shard == p.dst_shard)
        p.route = TxRoute::Local;
    else
        p.route = TxRoute::Cross;
    return p;
}

/** One message of a launch, executed as a shard-local transaction. */
struct DistributedKv::WorkItem
{
    enum class Kind : u8
    {
        Op,         ///< single-shard KvOp
        LocalMove,  ///< same-shard CrossShardTx (degraded, satellite 6)
        PrepareSrc, ///< 2PC fragment: predicate "present", pin
        PrepareDst, ///< 2PC fragment: predicate "absent", reserve + pin
        CommitSrc,  ///< decision: erase + unpin (idempotent on token)
        CommitDst,  ///< decision: fill reservation + unpin
        AbortSrc,   ///< decision: unpin
        AbortDst,   ///< decision: drop reservation + unpin
    };
    Kind kind = Kind::Op;
    KvOp::Type op = KvOp::Type::Get;
    u32 key = 0;
    u32 value = 0; ///< Put value / LocalMove dst key / CommitDst value
    u32 token = 0; ///< in-flight tx identity (pins store it)
    size_t slot = 0; ///< op index / tx index / WAL index (x2 + side)
};

/** What came back up the link for one work item. */
struct DistributedKv::Outcome
{
    enum class Status : u8
    {
        NotRun,   ///< tasklet crashed before this item committed
        Done,     ///< item's transaction committed
        Deferred, ///< op touched a pinned key; retry next round
    };
    Status status = Status::NotRun;
    bool ok = false;       ///< op result / prepare predicate held
    bool conflict = false; ///< prepare only: pinned by another tx
    u32 value = 0;         ///< Get result / prepared source value
};

/** Coordinator WAL entry for one cross-shard transaction attempt. */
struct DistributedKv::InFlight
{
    u32 src_key = 0;
    u32 dst_key = 0;
    u32 value = 0; ///< source value captured at prepare
    u32 token = 0;
    unsigned src_shard = 0;
    unsigned dst_shard = 0;
    size_t tx_index = 0; ///< position in the caller's txs vector
    bool decided = false; ///< decision logged (the WAL write)
    bool commit = false;
    bool src_pinned = false; ///< prepare voted Yes (pin exists)
    bool dst_pinned = false;
    bool src_done = false; ///< decision fragment applied + acked
    bool dst_done = false;
};

DistributedKv::DistributedKv(const DistributedKvConfig &cfg) : cfg_(cfg)
{
    fatalIf(cfg.shards == 0, "DistributedKv needs at least one shard");
    fatalIf(cfg.tasklets_per_dpu == 0 || cfg.tasklets_per_dpu > 24,
            "tasklets_per_dpu must be in [1, 24]");
    fatalIf(cfg.serial_token_after == 0,
            "serial_token_after must be >= 1");
    fatalIf(cfg.max_inflight_per_shard == 0,
            "max_inflight_per_shard must be >= 1");
    fatalIf(cfg.durable && cfg.boosting,
            "durable shards are incompatible with boosting "
            "(semantic undo logs are not crash-redoable)");

    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = cfg.mram_bytes;
    dpu_cfg.seed = deriveSeed(cfg.seed, 0x6b76);
    dpu_cfg.faults = cfg.faults;
    system_ = std::make_unique<sim::PimSystem>(
        cfg.shards, cfg.shards, dpu_cfg, cfg.timing, cfg.link);

    u32 pin_cap = 16;
    while (pin_cap < 2 * cfg.max_inflight_per_shard)
        pin_cap <<= 1;

    shards_.resize(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
        auto &shard = shards_[s];
        shard.dpu = &system_->dpu(s);

        core::StmConfig stm_cfg;
        stm_cfg.kind = cfg.kind;
        stm_cfg.metadata_tier = cfg.tier;
        stm_cfg.num_tasklets = cfg.tasklets_per_dpu;
        // Probe chains bound the footprint of one operation; at sane
        // load factors they stay short, so cap the reservation rather
        // than provisioning for a full-table probe (an overflow would
        // still fail loudly via the descriptor capacity check). Pin
        // tables are recycled while quiescent, so their chains stay
        // bounded by the in-flight count.
        stm_cfg.max_read_set = std::min<u32>(
            2 * cfg.capacity_per_shard + 4 * cfg.max_inflight_per_shard +
                24,
            256);
        stm_cfg.max_write_set = 8;
        stm_cfg.data_words_hint = cfg.capacity_per_shard * 2 + pin_cap * 2;
        stm_cfg.serial_fallback_after =
            cfg.durable ? 0 : cfg.stm_serial_fallback_after;
        stm_cfg.boosting = cfg.boosting;
        stm_cfg.durable = cfg.durable;
        shard.stm = core::makeStm(*shard.dpu, stm_cfg);

        shard.map = runtime::TxHashMap(*shard.dpu, sim::Tier::Mram,
                                       cfg.capacity_per_shard);
        shard.pins =
            runtime::TxHashMap(*shard.dpu, sim::Tier::Mram, pin_cap);
        if (cfg.boosting) {
            shard.bmap = std::make_unique<runtime::BoostedMap>(
                *shard.dpu, *shard.stm, shard.map, 64,
                core::StructureId::KvMap);
            shard.bpins = std::make_unique<runtime::BoostedMap>(
                *shard.dpu, *shard.stm, shard.pins, 64,
                core::StructureId::KvPins);
        }
        // The hash-map bucket image is host-loaded after makeStm armed
        // persist tracking; fence it so a crash in the first launch
        // cannot revert the table structure to zeroes.
        if (cfg.durable)
            shard.dpu->mram().fence();
    }
}

DistributedKv::~DistributedKv() = default;

unsigned
DistributedKv::shardOf(u32 key) const
{
    return shardOfKey(key, static_cast<unsigned>(shards_.size()));
}

void
DistributedKv::runItem(Shard &shard, sim::DpuContext &ctx,
                       const WorkItem &it, Outcome &out, bool check_pins)
{
    // The body may retry: build the outcome in a local and publish it
    // only after the transaction commits, so a crashed (unwound) item
    // stays NotRun and an aborted attempt leaves no stale fields.
    Outcome tmp;
    core::atomically(*shard.stm, ctx, [&](core::TxHandle &tx) {
        tmp = Outcome{};
        u32 tok = 0;
        u32 v = 0;
        // Same fragment logic either way; boosting only swaps the
        // isolation mechanism (key-granular abstract locks instead of
        // word-based read/write sets).
        const bool boosted = shard.bmap != nullptr;
        const auto mapInsert = [&](u32 k, u32 val) {
            return boosted ? shard.bmap->insert(tx, k, val)
                           : shard.map.insert(tx, k, val);
        };
        const auto mapLookup = [&](u32 k, u32 &out_v) {
            return boosted ? shard.bmap->lookup(tx, k, out_v)
                           : shard.map.lookup(tx, k, out_v);
        };
        const auto mapErase = [&](u32 k) {
            return boosted ? shard.bmap->erase(tx, k)
                           : shard.map.erase(tx, k);
        };
        const auto pinLookup = [&](u32 k, u32 &out_v) {
            return boosted ? shard.bpins->lookup(tx, k, out_v)
                           : shard.pins.lookup(tx, k, out_v);
        };
        const auto pinInsert = [&](u32 k, u32 val) {
            return boosted ? shard.bpins->insert(tx, k, val)
                           : shard.pins.insert(tx, k, val);
        };
        const auto pinErase = [&](u32 k) {
            return boosted ? shard.bpins->erase(tx, k)
                           : shard.pins.erase(tx, k);
        };
        switch (it.kind) {
          case WorkItem::Kind::Op:
            // Reading the pin slot is what orders this op after the
            // in-flight cross-shard transaction: if the pin commits
            // first we defer; if we commit first, the prepare's pin
            // insert conflicts with this read and the STM retries one
            // of the two.
            if (check_pins && pinLookup(it.key, tok)) {
                tmp.status = Outcome::Status::Deferred;
                return;
            }
            switch (it.op) {
              case KvOp::Type::Put:
                tmp.ok = mapInsert(it.key, it.value);
                break;
              case KvOp::Type::Get:
                tmp.ok = mapLookup(it.key, tmp.value);
                break;
              case KvOp::Type::Erase:
                tmp.ok = mapErase(it.key);
                break;
            }
            tmp.status = Outcome::Status::Done;
            break;

          case WorkItem::Kind::LocalMove:
            // Same-shard movek: one shard-local transaction, never a
            // degenerate 2PC. key = src, value = dst key.
            if (check_pins && (pinLookup(it.key, tok) ||
                               pinLookup(it.value, tok))) {
                tmp.status = Outcome::Status::Deferred;
                return;
            }
            if (!mapLookup(it.key, v) ||
                mapLookup(it.value, tok)) {
                tmp.status = Outcome::Status::Done; // predicate fail
                return;
            }
            // Insert before erase: a full-table insert failure must
            // leave the source untouched.
            if (!mapInsert(it.value, v)) {
                tmp.status = Outcome::Status::Done;
                return;
            }
            mapErase(it.key);
            tmp.ok = true;
            tmp.value = v;
            tmp.status = Outcome::Status::Done;
            break;

          case WorkItem::Kind::PrepareSrc:
            if (pinLookup(it.key, tok)) {
                if (tok == it.token) {
                    // Re-run after a recovered shard crash: our pin
                    // from the interrupted round committed durably.
                    // Re-vote Yes, idempotently.
                    mapLookup(it.key, v);
                    tmp.ok = true;
                    tmp.value = v;
                    tmp.status = Outcome::Status::Done;
                    return;
                }
                tmp.conflict = true;
                tmp.status = Outcome::Status::Done;
                return;
            }
            if (!mapLookup(it.key, v)) {
                tmp.status = Outcome::Status::Done; // predicate fail
                return;
            }
            if (!pinInsert(it.key, it.token)) {
                tmp.conflict = true; // pin table full: retryable
                tmp.status = Outcome::Status::Done;
                return;
            }
            tmp.ok = true;
            tmp.value = v;
            tmp.status = Outcome::Status::Done;
            break;

          case WorkItem::Kind::PrepareDst:
            if (pinLookup(it.key, tok)) {
                if (tok == it.token) {
                    // Idempotent re-vote: reservation + pin survived
                    // the recovered crash.
                    tmp.ok = true;
                    tmp.status = Outcome::Status::Done;
                    return;
                }
                tmp.conflict = true;
                tmp.status = Outcome::Status::Done;
                return;
            }
            if (mapLookup(it.key, v)) {
                tmp.status = Outcome::Status::Done; // occupied: fail
                return;
            }
            // Reserve the slot now so the later commit is a guaranteed
            // overwrite — a commit must never fail on a full table.
            if (!mapInsert(it.key, 0)) {
                tmp.status = Outcome::Status::Done; // full: fail
                return;
            }
            if (!pinInsert(it.key, it.token)) {
                mapErase(it.key); // undo the reservation
                tmp.conflict = true;
                tmp.status = Outcome::Status::Done;
                return;
            }
            tmp.ok = true;
            tmp.status = Outcome::Status::Done;
            break;

          case WorkItem::Kind::CommitSrc:
            // Decisions are idempotent, keyed on the pin token: a
            // re-delivered fragment finds its pin gone and acks.
            if (pinLookup(it.key, tok) && tok == it.token) {
                mapErase(it.key);
                pinErase(it.key);
                tmp.ok = true;
            }
            tmp.status = Outcome::Status::Done;
            break;

          case WorkItem::Kind::CommitDst:
            if (pinLookup(it.key, tok) && tok == it.token) {
                mapInsert(it.key, it.value);
                pinErase(it.key);
                tmp.ok = true;
            }
            tmp.status = Outcome::Status::Done;
            break;

          case WorkItem::Kind::AbortSrc:
            if (pinLookup(it.key, tok) && tok == it.token) {
                pinErase(it.key);
                tmp.ok = true;
            }
            tmp.status = Outcome::Status::Done;
            break;

          case WorkItem::Kind::AbortDst:
            if (pinLookup(it.key, tok) && tok == it.token) {
                mapErase(it.key); // drop the reservation
                pinErase(it.key);
                tmp.ok = true;
            }
            tmp.status = Outcome::Status::Done;
            break;
        }
    });
    out = tmp;
}

double
DistributedKv::runLaunch(std::vector<std::vector<WorkItem>> &work,
                         std::vector<std::vector<Outcome>> &outcomes,
                         bool decision_launch)
{
    std::vector<unsigned> involved;
    for (unsigned s = 0; s < shards_.size(); ++s)
        if (!work[s].empty())
            involved.push_back(s);
    if (involved.empty())
        return 0.0;

    struct ShardRun
    {
        double seconds = 0;
        u64 crashes = 0;
        u64 dpu_crashes = 0;
    };
    std::vector<ShardRun> runs(involved.size());

    // Involved DPUs run concurrently on host threads; each result lands
    // in its own slot, so output is identical for any --jobs value.
    util::parallelFor(involved.size(), [&](size_t ii) {
        const unsigned s = involved[ii];
        Shard &shard = shards_[s];
        auto &items = work[s];
        auto &outs = outcomes[s];
        outs.assign(items.size(), Outcome{});

        // Ops must read the pin table whenever a pin could exist during
        // this launch: either one survives from an earlier round, or a
        // prepare fragment in this very launch may create one.
        bool check_pins = shard.live_pins > 0;
        for (const auto &it : items)
            check_pins = check_pins ||
                         it.kind == WorkItem::Kind::PrepareSrc ||
                         it.kind == WorkItem::Kind::PrepareDst;

        // Keep fault-injection op counts across the batch's launches so
        // a crash point fires once per batch, not once per round.
        shard.dpu->resetRun(/*reset_faults=*/false);
        const u64 commits_before = shard.stm->stats().commits;
        const u64 aborts_before = shard.stm->stats().aborts;

        // Round-robin slices: tasklet t handles items[t], [t+T], ...
        // Items already Done are skipped — that makes the bodies
        // re-registrable after a recovered whole-DPU crash, where
        // finished outcomes are host state and survive.
        const unsigned tasklets = static_cast<unsigned>(
            std::min<size_t>(cfg_.tasklets_per_dpu, items.size()));
        const auto add_bodies = [&] {
            for (unsigned t = 0; t < tasklets; ++t) {
                shard.dpu->addTasklet([this, &shard, &items, &outs, t,
                                       tasklets,
                                       check_pins](sim::DpuContext &ctx) {
                    for (size_t i = t; i < items.size(); i += tasklets)
                        if (outs[i].status == Outcome::Status::NotRun)
                            runItem(shard, ctx, items[i], outs[i],
                                    check_pins);
                });
            }
        };
        const auto charge_round = [&] {
            const auto &st = shard.dpu->stats();
            shard.cum_cycles += st.total_cycles;
            shard.cum_switches += st.sched_switches;
            shard.cum_elisions += st.sched_elisions;
            const double secs =
                cfg_.timing.cyclesToSeconds(st.total_cycles);
            shard.busy_seconds += secs;
            runs[ii].seconds += secs;
            for (const auto &f : shard.dpu->taskletFaults())
                if (f.injected_crash)
                    ++runs[ii].crashes;
        };
        add_bodies();
        for (;;) {
            try {
                shard.dpu->run();
                charge_round();
                break;
            } catch (const sim::DpuCrashError &) {
                // Whole-DPU shard crash. Without durable shards the
                // store is gone — propagate. With them, recover the
                // shard from its durable log and re-run the launch's
                // unfinished items (dpu-crash points are one-shot per
                // DPU lifetime, so this terminates).
                if (!cfg_.durable)
                    throw;
                charge_round();
                ++runs[ii].dpu_crashes;
                shard.dpu->resetRun(/*reset_faults=*/false);
                shard.stm->recoverAfterCrash();
                add_bodies();
            }
        }

        shard.commits += shard.stm->stats().commits - commits_before;
        shard.aborts += shard.stm->stats().aborts - aborts_before;
    });

    double worst = 0.0;
    for (const auto &r : runs) {
        worst = std::max(worst, r.seconds);
        stats_.shard_busy_seconds += r.seconds;
        stats_.shard_recoveries += r.dpu_crashes;
        if (decision_launch)
            stats_.crashes_in_commit += r.crashes;
        else
            stats_.crashes_in_prepare += r.crashes;
    }
    return worst;
}

void
DistributedKv::chargeRound(const std::vector<std::vector<WorkItem>> &work,
                           double worst_shard_seconds)
{
    size_t down = 0;
    size_t up = 0;
    for (const auto &items : work) {
        for (const auto &it : items) {
            switch (it.kind) {
              case WorkItem::Kind::Op:
                down += kOpBytesDown;
                up += kOpBytesUp;
                break;
              case WorkItem::Kind::LocalMove:
                down += kLocalMoveBytesDown;
                up += kLocalMoveBytesUp;
                break;
              case WorkItem::Kind::PrepareSrc:
              case WorkItem::Kind::PrepareDst:
                down += kPrepareBytesDown;
                up += kVoteBytesUp;
                break;
              default:
                down += kDecisionBytesDown;
                up += kAckBytesUp;
                break;
            }
        }
    }
    const double t = system_->launchOverheadSeconds() +
                     system_->transferSeconds(static_cast<double>(down)) +
                     system_->transferSeconds(static_cast<double>(up)) +
                     worst_shard_seconds;
    elapsed_seconds_ += t;
    stats_.bytes_down += down;
    stats_.bytes_up += up;
    stats_.shard_capacity_seconds +=
        static_cast<double>(shards_.size()) * t;
}

void
DistributedKv::deliverDecisions(std::vector<InFlight *> &wal)
{
    if (wal.empty())
        return;
    const bool crash_mid = crash_point_ == CrashPoint::MidDecision;

    for (size_t round = 0;; ++round) {
        panicIf(round > 200 + shards_.size(),
                "2PC decision delivery made no progress");

        std::vector<std::vector<WorkItem>> work(shards_.size());
        std::vector<std::vector<Outcome>> outs(shards_.size());
        for (size_t wi = 0; wi < wal.size(); ++wi) {
            const InFlight &f = *wal[wi];
            // Abort fragments exist only where a pin does; slot encodes
            // (WAL index, side) so acks can clear the done flags.
            if ((f.commit || f.src_pinned) && !f.src_done) {
                WorkItem it;
                it.kind = f.commit ? WorkItem::Kind::CommitSrc
                                   : WorkItem::Kind::AbortSrc;
                it.key = f.src_key;
                it.token = f.token;
                it.slot = wi * 2;
                work[f.src_shard].push_back(it);
            }
            if ((f.commit || f.dst_pinned) && !f.dst_done) {
                WorkItem it;
                it.kind = f.commit ? WorkItem::Kind::CommitDst
                                   : WorkItem::Kind::AbortDst;
                it.key = f.dst_key;
                it.value = f.value;
                it.token = f.token;
                it.slot = wi * 2 + 1;
                work[f.dst_shard].push_back(it);
            }
        }

        // MidDecision coordinator crash: deliver to only the first
        // crash_decision_shards_ involved shards, then die.
        if (crash_mid) {
            unsigned kept = 0;
            for (unsigned s = 0; s < shards_.size(); ++s) {
                if (work[s].empty())
                    continue;
                if (kept >= crash_decision_shards_)
                    work[s].clear();
                else
                    ++kept;
            }
        }

        size_t item_count = 0;
        for (const auto &items : work)
            item_count += items.size();

        if (item_count > 0) {
            if (round > 0)
                stats_.participant_redeliveries += item_count;
            ++stats_.commit_rounds;
            const double worst =
                runLaunch(work, outs, /*decision_launch=*/true);
            chargeRound(work, worst);

            for (unsigned s = 0; s < shards_.size(); ++s) {
                for (size_t i = 0; i < work[s].size(); ++i) {
                    if (outs[s][i].status != Outcome::Status::Done)
                        continue; // participant crash: re-deliver
                    InFlight &f = *wal[work[s][i].slot / 2];
                    if (work[s][i].slot % 2 == 0)
                        f.src_done = true;
                    else
                        f.dst_done = true;
                    // ok reports that the decision transaction found
                    // and released the pin; an idempotent re-delivery
                    // that found it gone must not double-count.
                    if (outs[s][i].ok) {
                        panicIf(shards_[s].live_pins == 0,
                                "2PC pin accounting underflow");
                        --shards_[s].live_pins;
                    }
                }
            }
        }

        if (crash_mid) {
            crash_point_ = CrashPoint::None;
            recovery_needed_ = true;
            foldTotalsDelta();
            throw CoordinatorCrashed{};
        }
        if (item_count == 0)
            return;
    }
}

KvBatchResult
DistributedKv::execute(const std::vector<KvOp> &ops,
                       const std::vector<CrossShardTx> &txs)
{
    fatalIf(recovery_needed_, "DistributedKv::execute after a "
                              "coordinator crash: call recover() first");

    KvBatchResult result;
    result.ops.resize(ops.size());
    result.txs.resize(txs.size());

    for (const auto &op : ops)
        fatalIf(!runtime::TxHashMap::validKey(op.key),
                "invalid key in KV batch");

    const unsigned num_shards = numShards();
    std::vector<TxPlan> plans(txs.size());
    std::vector<size_t> pending_cross;
    std::vector<size_t> pending_local;
    for (size_t i = 0; i < txs.size(); ++i) {
        fatalIf(!runtime::TxHashMap::validKey(txs[i].src_key) ||
                    !runtime::TxHashMap::validKey(txs[i].dst_key),
                "invalid key in cross-shard transaction");
        plans[i] = planCrossShardTx(txs[i], num_shards);
        switch (plans[i].route) {
          case TxRoute::Degenerate:
            break; // refused up front: committed = false, attempts = 0
          case TxRoute::Local:
            pending_local.push_back(i);
            break;
          case TxRoute::Cross:
            pending_cross.push_back(i);
            break;
        }
    }
    std::vector<size_t> pending_ops(ops.size());
    for (size_t i = 0; i < ops.size(); ++i)
        pending_ops[i] = i;

    if (pending_ops.empty() && pending_local.empty() &&
        pending_cross.empty())
        return result;

    ++stats_.batches;
    std::vector<unsigned> attempts(txs.size(), 0);
    bool serial_mode = false;
    size_t guard = 0;
    const size_t guard_limit = 1000 + 10 * (ops.size() + txs.size());

    while (!pending_ops.empty() || !pending_local.empty() ||
           !pending_cross.empty()) {
        panicIf(++guard > guard_limit,
                "2PC coordinator made no progress");

        // Under the serial token only the oldest cross-shard tx runs —
        // one tx alone cannot pin-conflict, which breaks deterministic
        // conflict cycles (the coordinator-level backstop).
        std::vector<size_t> round_cross =
            (serial_mode && pending_cross.size() > 1)
                ? std::vector<size_t>{pending_cross.front()}
                : pending_cross;

        wal_.clear();
        wal_.reserve(round_cross.size());
        for (size_t ti : round_cross) {
            InFlight f;
            f.src_key = txs[ti].src_key;
            f.dst_key = txs[ti].dst_key;
            f.token = next_token_++;
            f.src_shard = plans[ti].src_shard;
            f.dst_shard = plans[ti].dst_shard;
            f.tx_index = ti;
            ++attempts[ti];
            wal_.push_back(f);
        }

        // One launch carries this round's ops, local moves and prepare
        // fragments together — single-shard traffic is not stalled by
        // in-flight 2PC.
        std::vector<std::vector<WorkItem>> work(shards_.size());
        std::vector<std::vector<Outcome>> outs(shards_.size());
        for (size_t oi : pending_ops) {
            WorkItem it;
            it.kind = WorkItem::Kind::Op;
            it.op = ops[oi].type;
            it.key = ops[oi].key;
            it.value = ops[oi].value;
            it.slot = oi;
            work[shardOf(ops[oi].key)].push_back(it);
        }
        for (size_t ti : pending_local) {
            WorkItem it;
            it.kind = WorkItem::Kind::LocalMove;
            it.key = txs[ti].src_key;
            it.value = txs[ti].dst_key;
            it.slot = ti;
            ++attempts[ti];
            work[plans[ti].src_shard].push_back(it);
        }
        for (size_t wi = 0; wi < wal_.size(); ++wi) {
            const InFlight &f = wal_[wi];
            WorkItem src;
            src.kind = WorkItem::Kind::PrepareSrc;
            src.key = f.src_key;
            src.token = f.token;
            src.slot = wi;
            work[f.src_shard].push_back(src);
            WorkItem dst;
            dst.kind = WorkItem::Kind::PrepareDst;
            dst.key = f.dst_key;
            dst.token = f.token;
            dst.slot = wi;
            work[f.dst_shard].push_back(dst);
        }

        ++stats_.prepare_rounds;
        const double worst =
            runLaunch(work, outs, /*decision_launch=*/false);
        chargeRound(work, worst);

        // Collect results. Deferred and not-run (crashed-tasklet) items
        // simply stay pending for the next round.
        std::vector<size_t> next_ops;
        std::vector<size_t> next_local;
        std::vector<Vote> src_votes(wal_.size(), Vote::Missing);
        std::vector<Vote> dst_votes(wal_.size(), Vote::Missing);
        for (unsigned s = 0; s < shards_.size(); ++s) {
            for (size_t i = 0; i < work[s].size(); ++i) {
                const WorkItem &it = work[s][i];
                const Outcome &o = outs[s][i];
                switch (it.kind) {
                  case WorkItem::Kind::Op:
                    if (o.status == Outcome::Status::Done) {
                        result.ops[it.slot] = {o.ok, o.value};
                    } else {
                        next_ops.push_back(it.slot);
                        if (o.status == Outcome::Status::Deferred)
                            ++stats_.deferred_ops;
                    }
                    break;
                  case WorkItem::Kind::LocalMove:
                    if (o.status == Outcome::Status::Done) {
                        CrossShardTxResult r;
                        r.committed = o.ok;
                        r.value = o.value;
                        r.attempts = attempts[it.slot];
                        result.txs[it.slot] = r;
                        if (o.ok)
                            ++stats_.tx_commits;
                        else
                            ++stats_.tx_predicate_fails;
                    } else {
                        next_local.push_back(it.slot);
                        if (o.status == Outcome::Status::Deferred)
                            ++stats_.deferred_ops;
                    }
                    break;
                  case WorkItem::Kind::PrepareSrc:
                  case WorkItem::Kind::PrepareDst: {
                    const Vote v = o.status != Outcome::Status::Done
                                       ? Vote::Missing
                                   : o.ok        ? Vote::Yes
                                   : o.conflict ? Vote::Conflict
                                                : Vote::PredicateFail;
                    InFlight &f = wal_[it.slot];
                    if (it.kind == WorkItem::Kind::PrepareSrc) {
                        src_votes[it.slot] = v;
                        if (v == Vote::Yes) {
                            f.src_pinned = true;
                            f.value = o.value;
                            ++shards_[s].live_pins;
                            shards_[s].pins_dirty = true;
                        }
                    } else {
                        dst_votes[it.slot] = v;
                        if (v == Vote::Yes) {
                            f.dst_pinned = true;
                            ++shards_[s].live_pins;
                            shards_[s].pins_dirty = true;
                        }
                    }
                    break;
                  }
                  default:
                    panic("decision item in a prepare launch");
                }
            }
        }
        std::sort(next_ops.begin(), next_ops.end());
        std::sort(next_local.begin(), next_local.end());
        pending_ops = std::move(next_ops);
        pending_local = std::move(next_local);

        // Coordinator crash hook: die after votes, before any decision
        // is logged — recovery must presume abort.
        if (crash_point_ == CrashPoint::AfterPrepare && !wal_.empty()) {
            crash_point_ = CrashPoint::None;
            recovery_needed_ = true;
            foldTotalsDelta();
            throw CoordinatorCrashed{};
        }

        // Decide: commit iff both fragments voted Yes. Logging the
        // decision (f.decided/f.commit in the WAL) happens before any
        // delivery, so a MidDecision crash can re-deliver it.
        std::vector<size_t> next_cross;
        std::vector<InFlight *> decided;
        decided.reserve(wal_.size());
        for (size_t wi = 0; wi < wal_.size(); ++wi) {
            InFlight &f = wal_[wi];
            const size_t ti = f.tx_index;
            const Vote sv = src_votes[wi];
            const Vote dv = dst_votes[wi];
            f.decided = true;
            if (sv == Vote::Yes && dv == Vote::Yes) {
                f.commit = true;
                // The WAL write: the commit decision is durable before
                // any fragment is delivered (presumed abort needs no
                // record for the other outcomes).
                persistDecision(f);
                CrossShardTxResult r;
                r.committed = true;
                r.value = f.value;
                r.attempts = attempts[ti];
                r.serialized = serial_mode;
                result.txs[ti] = r;
                ++stats_.tx_commits;
                if (serial_mode)
                    ++stats_.serial_fallbacks;
            } else if (sv == Vote::PredicateFail ||
                       dv == Vote::PredicateFail) {
                CrossShardTxResult r;
                r.committed = false;
                r.attempts = attempts[ti];
                r.serialized = serial_mode;
                result.txs[ti] = r;
                ++stats_.tx_predicate_fails;
                if (serial_mode)
                    ++stats_.serial_fallbacks;
            } else {
                // Pin conflict or participant crash: abort this
                // attempt (releasing whatever it pinned) and retry.
                next_cross.push_back(ti);
                ++stats_.tx_conflict_retries;
                if (attempts[ti] >= cfg_.serial_token_after)
                    serial_mode = true;
            }
            decided.push_back(&f);
        }
        for (size_t ti : pending_cross) {
            // Txs parked by the serial token stay pending.
            bool in_round = false;
            for (size_t rt : round_cross)
                in_round = in_round || rt == ti;
            if (!in_round)
                next_cross.push_back(ti);
        }
        std::sort(next_cross.begin(), next_cross.end());
        pending_cross = std::move(next_cross);

        deliverDecisions(decided);
        wal_.clear();
        // Every fragment of every persisted decision has applied and
        // acked: truncate the coordinator WAL.
        persisted_wal_.clear();
    }

    recyclePins();
    foldTotalsDelta();
    return result;
}

std::vector<KvResult>
DistributedKv::execute(const std::vector<KvOp> &ops)
{
    return execute(ops, {}).ops;
}

bool
DistributedKv::moveKey(u32 key, u32 new_key)
{
    const auto r = execute({}, {CrossShardTx::move(key, new_key)});
    return r.txs[0].committed;
}

bool
DistributedKv::moveKeySerialized(u32 key, u32 new_key)
{
    fatalIf(!runtime::TxHashMap::validKey(key) ||
                !runtime::TxHashMap::validKey(new_key),
            "invalid key in moveKey");
    if (key == new_key)
        return false;

    // CPU-coordinated sequence (§3.1): each step is one DPU-local
    // transaction; the host serializes the steps. Nothing else runs
    // between steps, so the relocation is atomic w.r.t. every other
    // host-issued operation — at the price of two full pipeline drains
    // per movek.
    const auto probe = execute({KvOp::get(key), KvOp::get(new_key)});
    if (!probe[0].ok || probe[1].ok)
        return false;
    const auto commit = execute(
        {KvOp::erase(key), KvOp::put(new_key, probe[0].value)});
    panicIf(!commit[0].ok || !commit[1].ok,
            "moveKey lost a step despite host serialization");
    return true;
}

void
DistributedKv::injectCoordinatorCrash(CrashPoint point,
                                      unsigned max_decision_shards)
{
    crash_point_ = point;
    crash_decision_shards_ = max_decision_shards;
}

void
DistributedKv::persistDecision(const InFlight &f)
{
    // Model of the durable write: the copy keeps only what recovery
    // may trust — identity, routing and the verdict. Vote/pin flags
    // and delivery progress are coordinator memory and die with it.
    InFlight p;
    p.src_key = f.src_key;
    p.dst_key = f.dst_key;
    p.value = f.value;
    p.token = f.token;
    p.src_shard = f.src_shard;
    p.dst_shard = f.dst_shard;
    p.tx_index = f.tx_index;
    p.decided = true;
    p.commit = f.commit;
    persisted_wal_.push_back(p);
    ++stats_.wal_persists;
}

const DistributedKv::InFlight *
DistributedKv::findPersisted(u32 token) const
{
    for (const auto &p : persisted_wal_)
        if (p.token == token)
            return &p;
    return nullptr;
}

void
DistributedKv::recover()
{
    crash_point_ = CrashPoint::None;
    crash_decision_shards_ = 0;
    if (!recovery_needed_)
        return;

    // Rebuild the recovery set from the persisted WAL: a transaction
    // with a persisted record replays its logged commit; any other is
    // presumed aborted. The crashed coordinator's vote/pin flags and
    // delivery progress are not trusted — abort fragments go to both
    // sides regardless (idempotent on the pin token), and re-delivered
    // commit fragments that find their pin gone ack as no-ops.
    for (auto &f : wal_) {
        if (const InFlight *p = findPersisted(f.token)) {
            f.decided = true;
            f.commit = p->commit;
            f.src_done = false;
            f.dst_done = false;
            ++stats_.decisions_replayed;
        } else {
            f.decided = true;
            f.commit = false;
            f.src_pinned = true; // conservative: abort both sides
            f.dst_pinned = true;
            f.src_done = false;
            f.dst_done = false;
        }
    }
    // Pin bookkeeping is coordinator memory too: recount from the pin
    // tables themselves so delivery's release accounting stays exact.
    for (auto &shard : shards_) {
        shard.live_pins = shard.pins.population(*shard.dpu);
        shard.pins_dirty = shard.pins_dirty || shard.live_pins > 0;
    }
    std::vector<InFlight *> ptrs;
    ptrs.reserve(wal_.size());
    for (auto &f : wal_)
        ptrs.push_back(&f);
    deliverDecisions(ptrs);
    wal_.clear();
    persisted_wal_.clear();
    recovery_needed_ = false;
    recyclePins();
    foldTotalsDelta();
}

void
DistributedKv::recyclePins()
{
    // Tombstones from released pins would grow probe chains without
    // bound across batches; while a shard is quiescent the host resets
    // its pin table (a DPU-idle MRAM copy, charged per capacity).
    double bytes = 0;
    for (auto &shard : shards_) {
        if (!shard.pins_dirty || shard.live_pins != 0)
            continue;
        shard.pins.clear(*shard.dpu);
        shard.pins_dirty = false;
        bytes += static_cast<double>(shard.pins.capacity()) * 8;
    }
    if (bytes > 0)
        elapsed_seconds_ += system_->transferSeconds(bytes);
}

u64
DistributedKv::totalCommits() const
{
    u64 n = 0;
    for (const auto &s : shards_)
        n += s.commits;
    return n;
}

u64
DistributedKv::totalAborts() const
{
    u64 n = 0;
    for (const auto &s : shards_)
        n += s.aborts;
    return n;
}

u64
DistributedKv::simCycles() const
{
    u64 n = 0;
    for (const auto &s : shards_)
        n += s.cum_cycles;
    return n;
}

u64
DistributedKv::schedSwitches() const
{
    u64 n = 0;
    for (const auto &s : shards_)
        n += s.cum_switches;
    return n;
}

u64
DistributedKv::schedElisions() const
{
    u64 n = 0;
    for (const auto &s : shards_)
        n += s.cum_elisions;
    return n;
}

double
DistributedKv::shardBusySeconds(unsigned s) const
{
    panicIf(s >= shards_.size(), "shard index out of range");
    return shards_[s].busy_seconds;
}

u32
DistributedKv::population() const
{
    u32 n = 0;
    for (const auto &s : shards_)
        n += s.map.population(*s.dpu);
    return n;
}

bool
DistributedKv::peek(u32 key, u32 &value_out) const
{
    const auto &s = shards_[shardOf(key)];
    return s.map.peekValue(*s.dpu, key, value_out);
}

u32
DistributedKv::livePins() const
{
    u32 n = 0;
    for (const auto &s : shards_)
        n += s.live_pins;
    return n;
}

core::Stm &
DistributedKv::shardStm(unsigned s)
{
    panicIf(s >= shards_.size(), "shardStm: shard out of range");
    return *shards_[s].stm;
}

sim::Dpu &
DistributedKv::shardDpu(unsigned s)
{
    panicIf(s >= shards_.size(), "shardDpu: shard out of range");
    return *shards_[s].dpu;
}

void
DistributedKv::foldTotalsDelta()
{
    TwoPcStats d;
    d.batches = stats_.batches - folded_.batches;
    d.prepare_rounds = stats_.prepare_rounds - folded_.prepare_rounds;
    d.commit_rounds = stats_.commit_rounds - folded_.commit_rounds;
    d.tx_commits = stats_.tx_commits - folded_.tx_commits;
    d.tx_predicate_fails =
        stats_.tx_predicate_fails - folded_.tx_predicate_fails;
    d.tx_conflict_retries =
        stats_.tx_conflict_retries - folded_.tx_conflict_retries;
    d.serial_fallbacks = stats_.serial_fallbacks - folded_.serial_fallbacks;
    d.deferred_ops = stats_.deferred_ops - folded_.deferred_ops;
    d.participant_redeliveries = stats_.participant_redeliveries -
                                 folded_.participant_redeliveries;
    d.crashes_in_prepare =
        stats_.crashes_in_prepare - folded_.crashes_in_prepare;
    d.crashes_in_commit =
        stats_.crashes_in_commit - folded_.crashes_in_commit;
    d.shard_recoveries = stats_.shard_recoveries - folded_.shard_recoveries;
    d.wal_persists = stats_.wal_persists - folded_.wal_persists;
    d.decisions_replayed =
        stats_.decisions_replayed - folded_.decisions_replayed;
    d.bytes_down = stats_.bytes_down - folded_.bytes_down;
    d.bytes_up = stats_.bytes_up - folded_.bytes_up;
    d.shard_busy_seconds =
        stats_.shard_busy_seconds - folded_.shard_busy_seconds;
    d.shard_capacity_seconds =
        stats_.shard_capacity_seconds - folded_.shard_capacity_seconds;
    accumulateTwoPcTotals(d);
    folded_ = stats_;
}

} // namespace pimstm::hostapp
