#include "workloads/vacation.hh"

#include "util/logging.hh"

namespace pimstm::workloads
{

void
Vacation::configure(core::StmConfig &cfg) const
{
    // makeReservation: query_range x 3 tables x 2 words, plus slot
    // scan; deleteCustomer: all slots + their items.
    cfg.max_read_set = 2 * kNumTables * params_.query_range +
                       3 * params_.slots_per_customer + 16;
    cfg.max_write_set = 2 * kNumTables + params_.slots_per_customer + 8;
    cfg.data_words_hint =
        kNumTables * params_.items_per_table * 2 +
        params_.customers * params_.slots_per_customer;
}

void
Vacation::setup(sim::Dpu &dpu, core::Stm &)
{
    Rng rng(deriveSeed(dpu.config().seed, 0x7ac47101u));
    for (u32 t = 0; t < kNumTables; ++t) {
        free_[t] = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                          params_.items_per_table);
        price_[t] = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                           params_.items_per_table);
        free_[t].fill(dpu, params_.initial_free);
        for (u32 i = 0; i < params_.items_per_table; ++i)
            price_[t].poke(dpu, i,
                           static_cast<u32>(rng.range(50, 500)));
    }
    slots_ = runtime::SharedArray32(
        dpu, sim::Tier::Mram,
        static_cast<size_t>(params_.customers) *
            params_.slots_per_customer);
    slots_.fill(dpu, kEmptySlot);

    reservations_ok_.assign(params_.max_tasklets, 0);
    deletes_ok_.assign(params_.max_tasklets, 0);
    updates_ok_.assign(params_.max_tasklets, 0);
}

bool
Vacation::makeReservation(sim::DpuContext &ctx, core::Stm &stm)
{
    const u32 customer =
        static_cast<u32>(ctx.rng().below(params_.customers));
    // Pre-draw the queried items so retries look at the same set.
    u32 queried[kNumTables][16];
    panicIf(params_.query_range > 16, "query_range too large");
    for (u32 t = 0; t < kNumTables; ++t)
        for (u32 q = 0; q < params_.query_range; ++q)
            queried[t][q] = static_cast<u32>(
                ctx.rng().below(params_.items_per_table));

    bool reserved = false;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        reserved = false;
        // Cheapest available item per table.
        u32 chosen[kNumTables];
        bool found_all = true;
        for (u32 t = 0; t < kNumTables; ++t) {
            u32 best_item = kEmptySlot;
            u32 best_price = 0;
            for (u32 q = 0; q < params_.query_range; ++q) {
                const u32 item = queried[t][q];
                const u32 avail = tx.read(freeAddr(t, item));
                if (avail == 0)
                    continue;
                const u32 p = tx.read(priceAddr(t, item));
                if (best_item == kEmptySlot || p < best_price) {
                    best_item = item;
                    best_price = p;
                }
            }
            if (best_item == kEmptySlot) {
                found_all = false;
                break;
            }
            chosen[t] = best_item;
        }
        if (!found_all)
            return; // nothing available: committed no-op

        // Three free customer slots.
        u32 free_slots[kNumTables];
        u32 found_slots = 0;
        for (u32 s = 0;
             s < params_.slots_per_customer && found_slots < kNumTables;
             ++s) {
            if (tx.read(slotAddr(customer, s)) == kEmptySlot)
                free_slots[found_slots++] = s;
        }
        if (found_slots < kNumTables)
            return; // customer is fully booked: committed no-op

        for (u32 t = 0; t < kNumTables; ++t) {
            const u32 avail = tx.read(freeAddr(t, chosen[t]));
            tx.write(freeAddr(t, chosen[t]), avail - 1);
            tx.write(slotAddr(customer, free_slots[t]),
                     encodeSlot(t, chosen[t]));
        }
        reserved = true;
    });
    return reserved;
}

bool
Vacation::deleteCustomer(sim::DpuContext &ctx, core::Stm &stm)
{
    const u32 customer =
        static_cast<u32>(ctx.rng().below(params_.customers));
    bool released_any = false;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        released_any = false;
        for (u32 s = 0; s < params_.slots_per_customer; ++s) {
            const u32 v = tx.read(slotAddr(customer, s));
            if (v == kEmptySlot)
                continue;
            const u32 t = v >> 24;
            const u32 item = v & 0xffffffu;
            tx.write(freeAddr(t, item),
                     tx.read(freeAddr(t, item)) + 1);
            tx.write(slotAddr(customer, s), kEmptySlot);
            released_any = true;
        }
    });
    return released_any;
}

void
Vacation::updateTables(sim::DpuContext &ctx, core::Stm &stm)
{
    const u32 t = static_cast<u32>(ctx.rng().below(kNumTables));
    const u32 item =
        static_cast<u32>(ctx.rng().below(params_.items_per_table));
    const u32 new_price = static_cast<u32>(ctx.rng().range(50, 500));
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        tx.write(priceAddr(t, item), new_price);
    });
}

void
Vacation::tasklet(sim::DpuContext &ctx, core::Stm &stm)
{
    const unsigned me = ctx.taskletId();
    for (u32 op = 0; op < params_.ops_per_tasklet; ++op) {
        const double dice = ctx.rng().uniform();
        if (dice < params_.reserve_ratio) {
            if (makeReservation(ctx, stm))
                ++reservations_ok_[me];
        } else if (dice < params_.reserve_ratio + params_.delete_ratio) {
            if (deleteCustomer(ctx, stm))
                ++deletes_ok_[me];
        } else {
            updateTables(ctx, stm);
            ++updates_ok_[me];
        }
    }
}

void
Vacation::verify(sim::Dpu &dpu, core::Stm &)
{
    // Per-item: reservations outstanding must equal consumed
    // availability; slots must reference valid items.
    std::vector<std::vector<u32>> referenced(
        kNumTables, std::vector<u32>(params_.items_per_table, 0));
    for (u32 c = 0; c < params_.customers; ++c) {
        for (u32 s = 0; s < params_.slots_per_customer; ++s) {
            const u32 v = slots_.peek(
                dpu, static_cast<size_t>(c) * params_.slots_per_customer +
                         s);
            if (v == kEmptySlot)
                continue;
            const u32 t = v >> 24;
            const u32 item = v & 0xffffffu;
            fatalIf(t >= kNumTables || item >= params_.items_per_table,
                    "Vacation slot references bogus item");
            ++referenced[t][item];
        }
    }
    for (u32 t = 0; t < kNumTables; ++t) {
        for (u32 i = 0; i < params_.items_per_table; ++i) {
            const u32 avail = free_[t].peek(dpu, i);
            fatalIf(avail > params_.initial_free,
                    "Vacation availability exceeded initial stock");
            fatalIf(avail + referenced[t][i] != params_.initial_free,
                    "Vacation conservation broken: table ", t, " item ",
                    i, " free ", avail, " + referenced ",
                    referenced[t][i], " != ", params_.initial_free);
        }
    }
}

u64
Vacation::appOps() const
{
    u64 n = 0;
    for (u32 t = 0; t < params_.max_tasklets; ++t)
        n += reservations_ok_[t] + deletes_ok_[t] + updates_ok_[t];
    return n;
}

std::map<std::string, double>
Vacation::extraMetrics() const
{
    u64 r = 0, d = 0, u = 0;
    for (u32 t = 0; t < params_.max_tasklets; ++t) {
        r += reservations_ok_[t];
        d += deletes_ok_[t];
        u += updates_ok_[t];
    }
    return {
        {"reservations", static_cast<double>(r)},
        {"deletes", static_cast<double>(d)},
        {"updates", static_cast<double>(u)},
    };
}

} // namespace pimstm::workloads
