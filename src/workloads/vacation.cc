#include "workloads/vacation.hh"

#include "util/logging.hh"

namespace pimstm::workloads
{

void
Vacation::configure(core::StmConfig &cfg) const
{
    // makeReservation: query_range x 3 tables x 2 words, plus slot
    // scan; deleteCustomer: all slots + their items.
    cfg.max_read_set = 2 * kNumTables * params_.query_range +
                       3 * params_.slots_per_customer + 16;
    cfg.max_write_set = 2 * kNumTables + params_.slots_per_customer + 8;
    cfg.data_words_hint =
        kNumTables * params_.items_per_table * 2 +
        params_.customers * params_.slots_per_customer;
}

namespace
{

/** Append one word-restoring inverse operation to the undo log. */
void
logRestore(core::TxHandle &tx, core::StructureId sid, sim::Addr addr,
           u32 old_value)
{
    if (tx.descriptor().irrevocable)
        return;
    tx.descriptor().semantic_undo.push_back(core::SemanticUndo{
        [addr, old_value](sim::DpuContext &c) {
            c.write32(addr, old_value);
        },
        static_cast<u8>(sid)});
}

} // namespace

void
Vacation::setup(sim::Dpu &dpu, core::Stm &stm)
{
    if (stm.config().boosting) {
        item_locks_ = std::make_unique<runtime::AbstractLockManager>(
            dpu, stm, core::StructureId::VacationTables, 64);
        customer_locks_ = std::make_unique<runtime::AbstractLockManager>(
            dpu, stm, core::StructureId::VacationCustomers, 64);
    }
    Rng rng(deriveSeed(dpu.config().seed, 0x7ac47101u));
    for (u32 t = 0; t < kNumTables; ++t) {
        free_[t] = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                          params_.items_per_table);
        price_[t] = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                           params_.items_per_table);
        free_[t].fill(dpu, params_.initial_free);
        for (u32 i = 0; i < params_.items_per_table; ++i)
            price_[t].poke(dpu, i,
                           static_cast<u32>(rng.range(50, 500)));
    }
    slots_ = runtime::SharedArray32(
        dpu, sim::Tier::Mram,
        static_cast<size_t>(params_.customers) *
            params_.slots_per_customer);
    slots_.fill(dpu, kEmptySlot);

    reservations_ok_.assign(params_.max_tasklets, 0);
    deletes_ok_.assign(params_.max_tasklets, 0);
    updates_ok_.assign(params_.max_tasklets, 0);
}

bool
Vacation::makeReservationBoosted(sim::DpuContext &ctx, core::Stm &stm)
{
    const u32 customer =
        static_cast<u32>(ctx.rng().below(params_.customers));
    u32 queried[kNumTables][16];
    panicIf(params_.query_range > 16, "query_range too large");
    for (u32 t = 0; t < kNumTables; ++t)
        for (u32 q = 0; q < params_.query_range; ++q)
            queried[t][q] = static_cast<u32>(
                ctx.rng().below(params_.items_per_table));

    bool reserved = false;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        reserved = false;
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::VacationTables);
        // Unlocked scan: availability/price reads here are only a
        // heuristic for picking a candidate per table. Correctness
        // comes from locking the three chosen items and revalidating
        // below — the semantic operation is "reserve item", and only
        // reservations of the same item conflict.
        u32 chosen[kNumTables];
        bool found_all = true;
        for (u32 t = 0; t < kNumTables; ++t) {
            u32 best_item = kEmptySlot;
            u32 best_price = 0;
            for (u32 q = 0; q < params_.query_range; ++q) {
                const u32 item = queried[t][q];
                const u32 avail = ctx.read32(freeAddr(t, item));
                if (avail == 0)
                    continue;
                const u32 p = ctx.read32(priceAddr(t, item));
                if (best_item == kEmptySlot || p < best_price) {
                    best_item = item;
                    best_price = p;
                }
            }
            if (best_item == kEmptySlot) {
                found_all = false;
                break;
            }
            chosen[t] = best_item;
        }
        if (!found_all)
            return; // nothing available: committed no-op

        // Global order: customer lock, then items ascending.
        customer_locks_->acquireKey(tx, customer, true);
        u32 keys[kNumTables];
        for (u32 t = 0; t < kNumTables; ++t)
            keys[t] = itemKey(t, chosen[t]);
        item_locks_->acquireKeys(tx, keys, kNumTables, true);

        // Revalidate under the locks; a candidate that sold out since
        // the scan makes this a committed failed reservation.
        for (u32 t = 0; t < kNumTables; ++t) {
            if (ctx.read32(freeAddr(t, chosen[t])) == 0)
                return;
        }

        u32 free_slots[kNumTables];
        u32 found_slots = 0;
        for (u32 s = 0;
             s < params_.slots_per_customer && found_slots < kNumTables;
             ++s) {
            if (ctx.read32(slotAddr(customer, s)) == kEmptySlot)
                free_slots[found_slots++] = s;
        }
        if (found_slots < kNumTables)
            return; // customer is fully booked: committed no-op

        for (u32 t = 0; t < kNumTables; ++t) {
            const u32 avail = ctx.read32(freeAddr(t, chosen[t]));
            ctx.write32(freeAddr(t, chosen[t]), avail - 1);
            logRestore(tx, core::StructureId::VacationTables,
                       freeAddr(t, chosen[t]), avail);
            ctx.write32(slotAddr(customer, free_slots[t]),
                        encodeSlot(t, chosen[t]));
            logRestore(tx, core::StructureId::VacationCustomers,
                       slotAddr(customer, free_slots[t]), kEmptySlot);
        }
        reserved = true;
    });
    return reserved;
}

bool
Vacation::deleteCustomerBoosted(sim::DpuContext &ctx, core::Stm &stm)
{
    const u32 customer =
        static_cast<u32>(ctx.rng().below(params_.customers));
    bool released_any = false;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        released_any = false;
        core::StructureScope scope(
            tx.descriptor(), core::StructureId::VacationCustomers);
        customer_locks_->acquireKey(tx, customer, true);
        // Discover held reservations under the customer lock, then
        // lock their items (ascending) before releasing them.
        u32 held_slot[64];
        u32 held_val[64];
        u32 keys[64];
        u32 n = 0;
        panicIf(params_.slots_per_customer > 64,
                "slots_per_customer too large for boosted delete");
        for (u32 s = 0; s < params_.slots_per_customer; ++s) {
            const u32 v = ctx.read32(slotAddr(customer, s));
            if (v == kEmptySlot)
                continue;
            held_slot[n] = s;
            held_val[n] = v;
            keys[n] = itemKey(v >> 24, v & 0xffffffu);
            ++n;
        }
        if (n == 0)
            return;
        item_locks_->acquireKeys(tx, keys, n, true);
        for (u32 i = 0; i < n; ++i) {
            const u32 t = held_val[i] >> 24;
            const u32 item = held_val[i] & 0xffffffu;
            const u32 avail = ctx.read32(freeAddr(t, item));
            ctx.write32(freeAddr(t, item), avail + 1);
            logRestore(tx, core::StructureId::VacationTables,
                       freeAddr(t, item), avail);
            ctx.write32(slotAddr(customer, held_slot[i]), kEmptySlot);
            logRestore(tx, core::StructureId::VacationCustomers,
                       slotAddr(customer, held_slot[i]), held_val[i]);
        }
        released_any = true;
    });
    return released_any;
}

void
Vacation::updateTablesBoosted(sim::DpuContext &ctx, core::Stm &stm)
{
    const u32 t = static_cast<u32>(ctx.rng().below(kNumTables));
    const u32 item =
        static_cast<u32>(ctx.rng().below(params_.items_per_table));
    const u32 new_price = static_cast<u32>(ctx.rng().range(50, 500));
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::VacationTables);
        item_locks_->acquireKey(tx, itemKey(t, item), true);
        const u32 old = ctx.read32(priceAddr(t, item));
        ctx.write32(priceAddr(t, item), new_price);
        logRestore(tx, core::StructureId::VacationTables,
                   priceAddr(t, item), old);
    });
}

bool
Vacation::makeReservation(sim::DpuContext &ctx, core::Stm &stm)
{
    if (item_locks_)
        return makeReservationBoosted(ctx, stm);
    const u32 customer =
        static_cast<u32>(ctx.rng().below(params_.customers));
    // Pre-draw the queried items so retries look at the same set.
    u32 queried[kNumTables][16];
    panicIf(params_.query_range > 16, "query_range too large");
    for (u32 t = 0; t < kNumTables; ++t)
        for (u32 q = 0; q < params_.query_range; ++q)
            queried[t][q] = static_cast<u32>(
                ctx.rng().below(params_.items_per_table));

    bool reserved = false;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::VacationTables);
        reserved = false;
        // Cheapest available item per table.
        u32 chosen[kNumTables];
        bool found_all = true;
        for (u32 t = 0; t < kNumTables; ++t) {
            u32 best_item = kEmptySlot;
            u32 best_price = 0;
            for (u32 q = 0; q < params_.query_range; ++q) {
                const u32 item = queried[t][q];
                const u32 avail = tx.read(freeAddr(t, item));
                if (avail == 0)
                    continue;
                const u32 p = tx.read(priceAddr(t, item));
                if (best_item == kEmptySlot || p < best_price) {
                    best_item = item;
                    best_price = p;
                }
            }
            if (best_item == kEmptySlot) {
                found_all = false;
                break;
            }
            chosen[t] = best_item;
        }
        if (!found_all)
            return; // nothing available: committed no-op

        // Three free customer slots.
        u32 free_slots[kNumTables];
        u32 found_slots = 0;
        for (u32 s = 0;
             s < params_.slots_per_customer && found_slots < kNumTables;
             ++s) {
            if (tx.read(slotAddr(customer, s)) == kEmptySlot)
                free_slots[found_slots++] = s;
        }
        if (found_slots < kNumTables)
            return; // customer is fully booked: committed no-op

        for (u32 t = 0; t < kNumTables; ++t) {
            const u32 avail = tx.read(freeAddr(t, chosen[t]));
            tx.write(freeAddr(t, chosen[t]), avail - 1);
            tx.write(slotAddr(customer, free_slots[t]),
                     encodeSlot(t, chosen[t]));
        }
        reserved = true;
    });
    return reserved;
}

bool
Vacation::deleteCustomer(sim::DpuContext &ctx, core::Stm &stm)
{
    if (customer_locks_)
        return deleteCustomerBoosted(ctx, stm);
    const u32 customer =
        static_cast<u32>(ctx.rng().below(params_.customers));
    bool released_any = false;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(
            tx.descriptor(), core::StructureId::VacationCustomers);
        released_any = false;
        for (u32 s = 0; s < params_.slots_per_customer; ++s) {
            const u32 v = tx.read(slotAddr(customer, s));
            if (v == kEmptySlot)
                continue;
            const u32 t = v >> 24;
            const u32 item = v & 0xffffffu;
            tx.write(freeAddr(t, item),
                     tx.read(freeAddr(t, item)) + 1);
            tx.write(slotAddr(customer, s), kEmptySlot);
            released_any = true;
        }
    });
    return released_any;
}

void
Vacation::updateTables(sim::DpuContext &ctx, core::Stm &stm)
{
    if (item_locks_) {
        updateTablesBoosted(ctx, stm);
        return;
    }
    const u32 t = static_cast<u32>(ctx.rng().below(kNumTables));
    const u32 item =
        static_cast<u32>(ctx.rng().below(params_.items_per_table));
    const u32 new_price = static_cast<u32>(ctx.rng().range(50, 500));
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::VacationTables);
        tx.write(priceAddr(t, item), new_price);
    });
}

void
Vacation::tasklet(sim::DpuContext &ctx, core::Stm &stm)
{
    const unsigned me = ctx.taskletId();
    for (u32 op = 0; op < params_.ops_per_tasklet; ++op) {
        const double dice = ctx.rng().uniform();
        if (dice < params_.reserve_ratio) {
            if (makeReservation(ctx, stm))
                ++reservations_ok_[me];
        } else if (dice < params_.reserve_ratio + params_.delete_ratio) {
            if (deleteCustomer(ctx, stm))
                ++deletes_ok_[me];
        } else {
            updateTables(ctx, stm);
            ++updates_ok_[me];
        }
    }
}

void
Vacation::verify(sim::Dpu &dpu, core::Stm &)
{
    // Per-item: reservations outstanding must equal consumed
    // availability; slots must reference valid items.
    std::vector<std::vector<u32>> referenced(
        kNumTables, std::vector<u32>(params_.items_per_table, 0));
    for (u32 c = 0; c < params_.customers; ++c) {
        for (u32 s = 0; s < params_.slots_per_customer; ++s) {
            const u32 v = slots_.peek(
                dpu, static_cast<size_t>(c) * params_.slots_per_customer +
                         s);
            if (v == kEmptySlot)
                continue;
            const u32 t = v >> 24;
            const u32 item = v & 0xffffffu;
            fatalIf(t >= kNumTables || item >= params_.items_per_table,
                    "Vacation slot references bogus item");
            ++referenced[t][item];
        }
    }
    for (u32 t = 0; t < kNumTables; ++t) {
        for (u32 i = 0; i < params_.items_per_table; ++i) {
            const u32 avail = free_[t].peek(dpu, i);
            fatalIf(avail > params_.initial_free,
                    "Vacation availability exceeded initial stock");
            fatalIf(avail + referenced[t][i] != params_.initial_free,
                    "Vacation conservation broken: table ", t, " item ",
                    i, " free ", avail, " + referenced ",
                    referenced[t][i], " != ", params_.initial_free);
        }
    }
}

u64
Vacation::appOps() const
{
    u64 n = 0;
    for (u32 t = 0; t < params_.max_tasklets; ++t)
        n += reservations_ok_[t] + deletes_ok_[t] + updates_ok_[t];
    return n;
}

std::map<std::string, double>
Vacation::extraMetrics() const
{
    u64 r = 0, d = 0, u = 0;
    for (u32 t = 0; t < params_.max_tasklets; ++t) {
        r += reservations_ok_[t];
        d += deletes_ok_[t];
        u += updates_ok_[t];
    }
    return {
        {"reservations", static_cast<double>(r)},
        {"deletes", static_cast<double>(d)},
        {"updates", static_cast<double>(u)},
    };
}

} // namespace pimstm::workloads
