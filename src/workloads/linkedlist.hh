/**
 * @file
 * Linked-List — the paper's concurrent sorted linked list (§4.1).
 *
 * A set implemented as a sorted singly-linked list with a head
 * sentinel; add / remove / contains are each one transaction. The low
 * contention (LC) workload is 90% contains; high contention (HC) is
 * 50%. Adds and removes alternate so the list size stays near its
 * initial 10 elements. Each tasklet performs 100 operations.
 *
 * Nodes live in a simulated-MRAM pool; each tasklet recycles removed
 * nodes through a private stash. Traversals by concurrent invisible-
 * read transactions can wander across recycled nodes; a step bound
 * converts a (theoretically possible) stale cycle into a retry.
 */

#ifndef PIMSTM_WORKLOADS_LINKEDLIST_HH
#define PIMSTM_WORKLOADS_LINKEDLIST_HH

#include <vector>

#include "runtime/driver.hh"
#include "runtime/shared_array.hh"

namespace pimstm::workloads
{

struct LinkedListParams
{
    /** Fraction of contains (read-only) operations. */
    double contains_ratio = 0.9;
    /** Operations per tasklet. */
    u32 ops_per_tasklet = 100;
    /** Initial list size. */
    u32 initial_size = 10;
    /** Key universe [0, value_range). */
    u32 value_range = 32;
    /** Tasklets the node pool must provision for. */
    u32 max_tasklets = 24;

    static LinkedListParams
    lowContention(u32 ops = 100)
    {
        LinkedListParams p;
        p.contains_ratio = 0.9;
        p.ops_per_tasklet = ops;
        return p;
    }

    static LinkedListParams
    highContention(u32 ops = 100)
    {
        LinkedListParams p;
        p.contains_ratio = 0.5;
        p.ops_per_tasklet = ops;
        return p;
    }

    u32
    poolNodes() const
    {
        return initial_size + max_tasklets * ops_per_tasklet + 1;
    }
};

class LinkedList : public runtime::Workload
{
  public:
    explicit LinkedList(const LinkedListParams &params)
        : params_(params)
    {}

    const char *
    name() const override
    {
        return params_.contains_ratio >= 0.75 ? "Linked-List LC"
                                              : "Linked-List HC";
    }

    void
    configure(core::StmConfig &cfg) const override
    {
        // A traversal reads two words per visited node; bound by the
        // step limit plus slack for the update itself.
        cfg.max_read_set = 2 * stepBound() + 16;
        cfg.max_write_set = 8;
        cfg.data_words_hint = params_.poolNodes() * 2;
    }

    void
    setup(sim::Dpu &dpu, core::Stm &) override
    {
        // Node i occupies words [2i] = value, [2i+1] = next address
        // (0 == null; the pool starts at a non-zero offset so address 0
        // is never a real node).
        dpu.mram().alloc(8); // guard: keep node addresses non-zero
        pool_ = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                       params_.poolNodes() * 2);

        stashes_.assign(params_.max_tasklets, {});
        add_ok_.assign(params_.max_tasklets, 0);
        remove_ok_.assign(params_.max_tasklets, 0);

        // Node 0 is the head sentinel.
        u32 next_free = 1;
        head_ = nodeAddr(0);
        pool_.poke(dpu, 0, 0);
        pool_.poke(dpu, 1, 0);

        // Initial elements: evenly spaced keys, densest possible chain.
        u32 prev = 0;
        for (u32 i = 0; i < params_.initial_size; ++i) {
            const u32 node = next_free++;
            const u32 value =
                (i + 1) * params_.value_range / (params_.initial_size + 1);
            pool_.poke(dpu, node * 2, value);
            pool_.poke(dpu, node * 2 + 1, 0);
            pool_.poke(dpu, prev * 2 + 1, nodeAddr(node));
            prev = node;
        }

        // Remaining nodes are distributed to per-tasklet stashes.
        const u32 per_tasklet =
            (params_.poolNodes() - next_free) / params_.max_tasklets;
        for (u32 t = 0; t < params_.max_tasklets; ++t)
            for (u32 i = 0; i < per_tasklet; ++i)
                stashes_[t].push_back(next_free++);
    }

    void
    tasklet(sim::DpuContext &ctx, core::Stm &stm) override
    {
        const unsigned me = ctx.taskletId();
        bool next_is_add = (me % 2) == 0; // global add/remove balance
        for (u32 op = 0; op < params_.ops_per_tasklet; ++op) {
            const u32 value =
                static_cast<u32>(ctx.rng().below(params_.value_range));
            if (ctx.rng().chance(params_.contains_ratio)) {
                contains(ctx, stm, value);
            } else if (next_is_add) {
                if (add(ctx, stm, value))
                    ++add_ok_[me];
                next_is_add = false;
            } else {
                if (remove(ctx, stm, value))
                    ++remove_ok_[me];
                next_is_add = true;
            }
        }
    }

    void
    verify(sim::Dpu &dpu, core::Stm &) override
    {
        // Walk the list host-side: sorted, acyclic, size consistent
        // with the successful-operation counts.
        u64 adds = 0, removes = 0;
        for (u32 t = 0; t < params_.max_tasklets; ++t) {
            adds += add_ok_[t];
            removes += remove_ok_[t];
        }
        const u64 expected_size = params_.initial_size + adds - removes;

        u64 size = 0;
        s64 prev_value = -1;
        u32 cur = pool_.peek(dpu, 1); // head->next
        while (cur != 0) {
            fatalIf(size > params_.poolNodes(), "linked list has a cycle");
            const u32 idx = nodeIndex(cur);
            const u32 value = pool_.peek(dpu, idx * 2);
            fatalIf(static_cast<s64>(value) <= prev_value,
                    "linked list not strictly sorted at node ", idx);
            prev_value = value;
            cur = pool_.peek(dpu, idx * 2 + 1);
            ++size;
        }
        fatalIf(size != expected_size, "linked list size ", size,
                " != expected ", expected_size);
    }

    u64
    appOps() const override
    {
        u64 ops = 0;
        for (u32 t = 0; t < params_.max_tasklets; ++t)
            ops += add_ok_[t] + remove_ok_[t];
        return ops;
    }

  private:
    u32
    stepBound() const
    {
        // The list hovers around initial_size; transient growth is
        // bounded by one in-flight add per tasklet.
        return params_.initial_size + params_.max_tasklets + 8;
    }

    sim::Addr
    nodeAddr(u32 index) const
    {
        return pool_.at(index * 2);
    }

    u32
    nodeIndex(sim::Addr a) const
    {
        return static_cast<u32>((a - pool_.base()) / 8);
    }

    /** Find (prev, cur) such that cur is the first node with
     * value >= v; cur == 0 when none. Retries on a step-bound trip. */
    void
    locate(core::TxHandle &tx, u32 v, sim::Addr &prev, sim::Addr &cur)
    {
        prev = head_;
        cur = tx.read(head_ + 4);
        u32 steps = 0;
        while (cur != 0) {
            if (++steps > stepBound())
                tx.retry(); // stale traversal across recycled nodes
            const u32 value = tx.read(cur);
            if (value >= v)
                return;
            prev = cur;
            cur = tx.read(cur + 4);
        }
    }

    bool
    contains(sim::DpuContext &ctx, core::Stm &stm, u32 v)
    {
        bool found = false;
        core::atomically(stm, ctx, [&](core::TxHandle &tx) {
            sim::Addr prev, cur;
            locate(tx, v, prev, cur);
            found = cur != 0 && tx.read(cur) == v;
        });
        return found;
    }

    bool
    add(sim::DpuContext &ctx, core::Stm &stm, u32 v)
    {
        const unsigned me = ctx.taskletId();
        if (stashes_[me].empty())
            fatal("linked-list node stash exhausted for tasklet ", me);
        const u32 node = stashes_[me].back();
        bool inserted = false;
        core::atomically(stm, ctx, [&](core::TxHandle &tx) {
            sim::Addr prev, cur;
            locate(tx, v, prev, cur);
            if (cur != 0 && tx.read(cur) == v) {
                inserted = false;
                return; // already present
            }
            tx.write(nodeAddr(node), v);
            tx.write(nodeAddr(node) + 4, cur);
            tx.write(prev + 4, nodeAddr(node));
            inserted = true;
        });
        if (inserted)
            stashes_[me].pop_back();
        return inserted;
    }

    bool
    remove(sim::DpuContext &ctx, core::Stm &stm, u32 v)
    {
        const unsigned me = ctx.taskletId();
        bool removed = false;
        u32 victim = 0;
        core::atomically(stm, ctx, [&](core::TxHandle &tx) {
            sim::Addr prev, cur;
            locate(tx, v, prev, cur);
            if (cur == 0 || tx.read(cur) != v) {
                removed = false;
                return;
            }
            const u32 next = tx.read(cur + 4);
            tx.write(prev + 4, next);
            victim = nodeIndex(cur);
            removed = true;
        });
        if (removed)
            stashes_[me].push_back(victim);
        return removed;
    }

    LinkedListParams params_;
    runtime::SharedArray32 pool_;
    sim::Addr head_ = 0;
    std::vector<std::vector<u32>> stashes_;
    std::vector<u64> add_ok_;
    std::vector<u64> remove_ok_;
};

} // namespace pimstm::workloads

#endif // PIMSTM_WORKLOADS_LINKEDLIST_HH
