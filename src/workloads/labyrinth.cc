#include "workloads/labyrinth.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"

namespace pimstm::workloads
{

namespace
{

constexpr u32 kFree = 0;
/** Distance-field marker for blocked cells during expansion. */
constexpr u32 kBlocked = 0xffffffffu;
constexpr u32 kUnvisited = 0xfffffffeu;

} // namespace

Labyrinth::Labyrinth(const LabyrinthParams &params)
    : params_(params)
{}

const char *
Labyrinth::name() const
{
    if (params_.x >= 128)
        return "Labyrinth L";
    if (params_.x >= 32)
        return "Labyrinth M";
    return "Labyrinth S";
}

void
Labyrinth::configure(core::StmConfig &cfg) const
{
    cfg.max_read_set = params_.maxPathCells() + 16;
    cfg.max_write_set = params_.maxPathCells() + 16;
    cfg.data_words_hint = params_.cells();
}

void
Labyrinth::cellCoords(u32 index, u32 &cx, u32 &cy, u32 &cz) const
{
    cx = index % params_.x;
    cy = (index / params_.x) % params_.y;
    cz = index / (params_.x * params_.y);
}

unsigned
Labyrinth::neighbors(u32 index, u32 *out) const
{
    u32 cx, cy, cz;
    cellCoords(index, cx, cy, cz);
    unsigned n = 0;
    if (cx > 0)
        out[n++] = cellIndex(cx - 1, cy, cz);
    if (cx + 1 < params_.x)
        out[n++] = cellIndex(cx + 1, cy, cz);
    if (cy > 0)
        out[n++] = cellIndex(cx, cy - 1, cz);
    if (cy + 1 < params_.y)
        out[n++] = cellIndex(cx, cy + 1, cz);
    if (cz > 0)
        out[n++] = cellIndex(cx, cy, cz - 1);
    if (cz + 1 < params_.z)
        out[n++] = cellIndex(cx, cy, cz + 1);
    return n;
}

void
Labyrinth::setup(sim::Dpu &dpu, core::Stm &stm)
{
    dpu_ = &dpu;
    grid_ = runtime::SharedArray32(dpu, sim::Tier::Mram, params_.cells());
    grid_.fill(dpu, kFree);
    queue_ = runtime::TxQueue(dpu, sim::Tier::Mram, params_.num_paths);

    // Tasklet-private grid copies live in MRAM too (they exceed WRAM
    // for every grid size beyond S) — reserve them for capacity truth.
    const unsigned tasklets = stm.config().num_tasklets;
    for (unsigned t = 0; t < tasklets; ++t)
        dpu.mram().alloc(static_cast<size_t>(params_.cells()) * 4);
    scratch_.assign(tasklets, {});

    // Deterministic job generation: endpoint cells are all distinct,
    // and each pair is within the distance cap (like STAMP's generated
    // inputs, which keep dense instances mostly routable).
    Rng rng(deriveSeed(dpu.config().seed, 0x1abu));
    std::vector<u8> used(params_.cells(), 0);
    jobs_.clear();
    jobs_.reserve(params_.num_paths);
    const u32 cap = params_.distanceCap();
    for (u32 j = 0; j < params_.num_paths; ++j) {
        Job job;
        for (int attempt = 0;; ++attempt) {
            fatalIf(attempt > 10000,
                    "could not place Labyrinth endpoints; grid too dense");
            job.src = static_cast<u32>(rng.below(params_.cells()));
            if (used[job.src])
                continue;
            u32 sx, sy, sz;
            cellCoords(job.src, sx, sy, sz);
            // Pick dst within the cap box around src.
            const u32 dx = static_cast<u32>(rng.range(0, cap));
            const u32 dy = static_cast<u32>(rng.range(0, cap - dx));
            const u32 tx = static_cast<u32>(
                std::min<u64>(params_.x - 1,
                              rng.chance(0.5) && sx >= dx ? sx - dx
                                                          : sx + dx));
            const u32 ty = static_cast<u32>(
                std::min<u64>(params_.y - 1,
                              rng.chance(0.5) && sy >= dy ? sy - dy
                                                          : sy + dy));
            const u32 tz = static_cast<u32>(rng.below(params_.z));
            job.dst = cellIndex(tx, ty, tz);
            if (job.dst == job.src || used[job.dst])
                continue;
            break;
        }
        used[job.src] = 1;
        used[job.dst] = 1;
        jobs_.push_back(job);
    }
    routed_.assign(params_.num_paths, 0);
    routed_count_ = 0;
    failed_count_ = 0;
}

void
Labyrinth::copyGrid(sim::DpuContext &ctx, std::vector<u32> &local)
{
    const size_t bytes = static_cast<size_t>(params_.cells()) * 4;
    // Shared grid -> WRAM staging -> private MRAM copy, in 2 KB DMA
    // chunks; the host-side image is what route() actually inspects.
    const size_t chunk = 2048;
    for (size_t off = 0; off < bytes; off += chunk) {
        const size_t n = std::min(chunk, bytes - off);
        ctx.touchRead(sim::Tier::Mram, n);
        ctx.touchWrite(sim::Tier::Mram, n);
    }
    local.resize(params_.cells());
    auto &mem = dpu_->mram();
    const u32 base = sim::addrOffset(grid_.base());
    for (u32 i = 0; i < params_.cells(); ++i)
        local[i] = mem.read32(base + i * 4);
}

std::vector<u32>
Labyrinth::route(sim::DpuContext &ctx, std::vector<u32> &local,
                 const Job &job)
{
    // Lee expansion: BFS distance field over free cells of the private
    // snapshot. Costs are charged per wavefront: the real kernel reads
    // and writes the private MRAM grid as it expands.
    // Either endpoint may have been routed over by a committed path
    // (endpoints are only reserved against *other endpoints*): such a
    // job is unroutable, exactly like a blocked STAMP input.
    if (local[job.src] != kFree || local[job.dst] != kFree)
        return {};
    std::vector<u32> &dist = local; // reuse: rewrite values in place
    for (u32 i = 0; i < params_.cells(); ++i)
        dist[i] = (local[i] == kFree) ? kUnvisited : kBlocked;
    dist[job.src] = 0;

    std::deque<u32> frontier{job.src};
    bool found = false;
    u64 expansions = 0;
    u32 nb[6];
    while (!frontier.empty() && !found) {
        const size_t level_size = frontier.size();
        for (size_t i = 0; i < level_size && !found; ++i) {
            const u32 cell = frontier.front();
            frontier.pop_front();
            ++expansions;
            const unsigned n = neighbors(cell, nb);
            for (unsigned k = 0; k < n; ++k) {
                if (dist[nb[k]] != kUnvisited)
                    continue;
                dist[nb[k]] = dist[cell] + 1;
                if (nb[k] == job.dst) {
                    found = true;
                    break;
                }
                frontier.push_back(nb[k]);
            }
        }
        // Charge the wavefront. Lee expansion is pointer-chasing over
        // the private MRAM grid: per expanded cell, random word reads
        // of the neighbours, a distance write, and queue bookkeeping.
        const u64 level_cells = expansions;
        ctx.touchRandom(sim::Tier::Mram, level_cells * 3, 4, false);
        ctx.touchRandom(sim::Tier::Mram, level_cells, 4, true);
        // Queue push/pop, bounds checks and 3-D index arithmetic cost
        // dozens of instructions per cell on the 32-bit in-order core.
        ctx.compute(level_cells * 60);
        expansions = 0;
    }
    if (!found)
        return {};

    // Backtrack from dst following strictly-decreasing distances.
    std::vector<u32> path;
    path.push_back(job.dst);
    u32 cur = job.dst;
    while (cur != job.src) {
        const unsigned n = neighbors(cur, nb);
        u32 next = kBlocked;
        for (unsigned k = 0; k < n; ++k) {
            if (dist[nb[k]] < dist[cur] && dist[nb[k]] != kBlocked) {
                next = nb[k];
                break;
            }
        }
        panicIf(next == kBlocked, "Lee backtrack lost the trail");
        path.push_back(next);
        cur = next;
    }
    // Backtracking re-reads the neighbours of every path cell.
    ctx.touchRandom(sim::Tier::Mram, path.size() * 4, 4, false);
    ctx.compute(path.size() * 30);
    std::reverse(path.begin(), path.end());
    if (path.size() > params_.maxPathCells())
        return {}; // treat over-long detours as unroutable
    return path;
}

void
Labyrinth::runJob(sim::DpuContext &ctx, core::Stm &stm, u32 job_index)
{
    const Job &job = jobs_[job_index];
    bool routed = false;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        routed = false;
        std::vector<u32> &local = scratch_[ctx.taskletId()];
        copyGrid(ctx, local);
        const std::vector<u32> path = route(ctx, local, job);
        if (path.empty())
            return; // unroutable: commit without writes, job consumed
        // Claim the path through the STM. Any cell concurrently taken
        // forces a retry, which re-snapshots and re-routes.
        for (const u32 cell : path) {
            if (tx.read(grid_.at(cell)) != kFree)
                tx.retry();
            tx.write(grid_.at(cell), job_index + 1);
        }
        routed = true;
    });
    routed_[job_index] = routed ? 1 : 0;
    if (routed)
        ++routed_count_;
    else
        ++failed_count_;
}

void
Labyrinth::tasklet(sim::DpuContext &ctx, core::Stm &stm)
{
    for (;;) {
        const s64 job = queue_.pop(stm, ctx);
        if (job < 0)
            return;
        runJob(ctx, stm, static_cast<u32>(job));
    }
}

void
Labyrinth::verify(sim::Dpu &dpu, core::Stm &)
{
    fatalIf(routed_count_ + failed_count_ != params_.num_paths,
            "Labyrinth consumed ", routed_count_ + failed_count_,
            " of ", params_.num_paths, " jobs");

    // Group grid cells by path id.
    std::vector<std::vector<u32>> cells_of(params_.num_paths + 1);
    for (u32 i = 0; i < params_.cells(); ++i) {
        const u32 v = grid_.peek(dpu, i);
        fatalIf(v > params_.num_paths, "grid cell holds bogus path id ", v);
        if (v != kFree)
            cells_of[v].push_back(i);
    }

    u32 nb[6];
    for (u32 j = 0; j < params_.num_paths; ++j) {
        const auto &cells = cells_of[j + 1];
        if (!routed_[j]) {
            fatalIf(!cells.empty(), "failed path ", j, " left ",
                    cells.size(), " cells on the grid");
            continue;
        }
        // The routed path must contain both endpoints and be connected.
        fatalIf(cells.empty(), "routed path ", j, " has no cells");
        std::vector<u8> member(params_.cells(), 0);
        for (const u32 c : cells)
            member[c] = 1;
        auto has = [&](u32 c) { return member[c] != 0; };
        fatalIf(!has(jobs_[j].src) || !has(jobs_[j].dst),
                "path ", j, " missing an endpoint");
        // Flood from src across this path's cells; must reach dst.
        std::vector<u32> stack{jobs_[j].src};
        std::vector<u8> seen(params_.cells(), 0);
        seen[jobs_[j].src] = 1;
        bool reached = jobs_[j].src == jobs_[j].dst;
        while (!stack.empty()) {
            const u32 cur = stack.back();
            stack.pop_back();
            const unsigned n = neighbors(cur, nb);
            for (unsigned k = 0; k < n; ++k) {
                if (seen[nb[k]] || !has(nb[k]))
                    continue;
                seen[nb[k]] = 1;
                if (nb[k] == jobs_[j].dst)
                    reached = true;
                stack.push_back(nb[k]);
            }
        }
        fatalIf(!reached, "path ", j, " is not connected");
    }
}

u64
Labyrinth::appOps() const
{
    return routed_count_;
}

std::map<std::string, double>
Labyrinth::extraMetrics() const
{
    return {
        {"routed", static_cast<double>(routed_count_)},
        {"failed", static_cast<double>(failed_count_)},
    };
}

} // namespace pimstm::workloads
