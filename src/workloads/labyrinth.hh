/**
 * @file
 * Labyrinth — TM port of the STAMP Labyrinth benchmark (Lee's routing
 * algorithm) per §4.1 of the paper.
 *
 * Transactions concurrently route paths over a shared 3-D grid while
 * guaranteeing paths do not overlap. Each routing transaction:
 *   1. snapshots the shared grid into a tasklet-private MRAM copy
 *      (plain DMA, no STM instrumentation — "Other (Executing)" time),
 *   2. runs a breadth-first Lee expansion + backtrack on the private
 *      copy (compute + private-MRAM traffic),
 *   3. claims the chosen path through the STM: every cell is read
 *      (must still be free) and written with the path id. A cell taken
 *      by a concurrently-committed path forces a retry, which re-runs
 *      the whole copy+route — exactly STAMP's structure.
 * Jobs are dispensed by a short transactional queue pop, the paper's
 * "very short transaction used to extract jobs from a shared queue".
 *
 * The workload is strongly MRAM-bound (grid copies dominate), so the
 * DPU saturates below 11 tasklets — the paper's Fig. 5 observation.
 */

#ifndef PIMSTM_WORKLOADS_LABYRINTH_HH
#define PIMSTM_WORKLOADS_LABYRINTH_HH

#include <vector>

#include "runtime/driver.hh"
#include "runtime/shared_array.hh"
#include "runtime/tx_queue.hh"

namespace pimstm::workloads
{

struct LabyrinthParams
{
    u32 x = 16, y = 16, z = 3;
    /** Paths to route (100 in the paper). */
    u32 num_paths = 100;
    /** Manhattan-distance cap between endpoints (0 = x/2+y/2+z),
     * keeps dense instances routable like STAMP's generated inputs. */
    u32 endpoint_distance_cap = 0;

    static LabyrinthParams
    small(u32 paths = 100)
    {
        return {16, 16, 3, paths, 0};
    }

    static LabyrinthParams
    medium(u32 paths = 100)
    {
        return {32, 32, 3, paths, 0};
    }

    static LabyrinthParams
    large(u32 paths = 100)
    {
        return {128, 128, 3, paths, 0};
    }

    u32 cells() const { return x * y * z; }

    u32
    distanceCap() const
    {
        return endpoint_distance_cap ? endpoint_distance_cap
                                     : x / 2 + y / 2 + z;
    }

    /** Upper bound on a routed path's cell count. */
    u32
    maxPathCells() const
    {
        return std::min(cells(), 4 * (x + y + z) + 64);
    }
};

class Labyrinth : public runtime::Workload
{
  public:
    explicit Labyrinth(const LabyrinthParams &params);

    const char *name() const override;
    void configure(core::StmConfig &cfg) const override;
    void setup(sim::Dpu &dpu, core::Stm &stm) override;
    void tasklet(sim::DpuContext &ctx, core::Stm &stm) override;
    void verify(sim::Dpu &dpu, core::Stm &stm) override;
    u64 appOps() const override;
    std::map<std::string, double> extraMetrics() const override;

    u64 routedPaths() const { return routed_count_; }
    u64 failedPaths() const { return failed_count_; }

    /** Untimed host-side grid peek (rendering / inspection). */
    u32
    gridValue(sim::Dpu &dpu, u32 cell) const
    {
        return grid_.peek(dpu, cell);
    }

  private:
    struct Job
    {
        u32 src = 0;
        u32 dst = 0;
    };

    u32
    cellIndex(u32 cx, u32 cy, u32 cz) const
    {
        return (cz * params_.y + cy) * params_.x + cx;
    }

    void cellCoords(u32 index, u32 &cx, u32 &cy, u32 &cz) const;

    /** Neighbors of @p index into @p out; returns count (<= 6). */
    unsigned neighbors(u32 index, u32 *out) const;

    /** Snapshot the shared grid into @p local, charging the DMA cost. */
    void copyGrid(sim::DpuContext &ctx, std::vector<u32> &local);

    /**
     * Lee expansion + backtrack on @p local. Returns the path
     * (src..dst inclusive) or empty when unroutable.
     */
    std::vector<u32> route(sim::DpuContext &ctx, std::vector<u32> &local,
                           const Job &job);

    void runJob(sim::DpuContext &ctx, core::Stm &stm, u32 job_index);

    LabyrinthParams params_;
    sim::Dpu *dpu_ = nullptr;
    runtime::SharedArray32 grid_;
    runtime::TxQueue queue_;
    std::vector<Job> jobs_;
    std::vector<u8> routed_;
    u64 routed_count_ = 0;
    u64 failed_count_ = 0;
    // Scratch distance field reused across jobs (host-side image of the
    // tasklet-private MRAM grid copy).
    std::vector<std::vector<u32>> scratch_;
};

} // namespace pimstm::workloads

#endif // PIMSTM_WORKLOADS_LABYRINTH_HH
