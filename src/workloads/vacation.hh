/**
 * @file
 * Vacation — an extension workload: a simplified port of STAMP's
 * travel-reservation benchmark (the suite the paper takes KMeans and
 * Labyrinth from). An in-memory reservation system with three resource
 * tables (cars, flights, rooms) and a customer table, all in MRAM;
 * every user action is one transaction of a dozen-plus reads and a
 * handful of writes — the "medium transaction" point between
 * ArrayBench B (tiny) and Labyrinth (huge) on the STM design axes.
 *
 * Actions (mix controlled by parameters, as in STAMP):
 *  - makeReservation: scan `query_range` random items in each of the
 *    three tables, pick the cheapest available one per table, reserve
 *    it for a random customer (decrement availability, fill one of the
 *    customer's reservation slots).
 *  - deleteCustomer: release every reservation a customer holds.
 *  - updateTables: re-price / restock random items.
 *
 * Verified invariant: for every item, initial availability minus
 * final availability equals the live reservation slots referencing it.
 */

#ifndef PIMSTM_WORKLOADS_VACATION_HH
#define PIMSTM_WORKLOADS_VACATION_HH

#include <memory>

#include "runtime/boosted.hh"
#include "runtime/driver.hh"
#include "runtime/shared_array.hh"

namespace pimstm::workloads
{

struct VacationParams
{
    /** Items per resource table (cars / flights / rooms). */
    u32 items_per_table = 64;
    /** Initial availability per item. */
    u32 initial_free = 8;
    /** Customers. */
    u32 customers = 64;
    /** Reservation slots per customer. */
    u32 slots_per_customer = 8;
    /** Items scanned per table by one makeReservation. */
    u32 query_range = 4;
    /** Action mix (remainder = updateTables). */
    double reserve_ratio = 0.8;
    double delete_ratio = 0.1;
    u32 ops_per_tasklet = 60;
    u32 max_tasklets = 24;

    /** STAMP-like low contention: wide tables, mostly reservations. */
    static VacationParams
    lowContention(u32 ops = 60)
    {
        VacationParams p;
        p.ops_per_tasklet = ops;
        return p;
    }

    /** High contention: few hot items, more mutation. */
    static VacationParams
    highContention(u32 ops = 60)
    {
        VacationParams p;
        p.items_per_table = 8;
        p.customers = 16;
        p.query_range = 4;
        p.reserve_ratio = 0.6;
        p.delete_ratio = 0.25;
        p.ops_per_tasklet = ops;
        return p;
    }
};

class Vacation : public runtime::Workload
{
  public:
    static constexpr u32 kNumTables = 3; // cars, flights, rooms
    static constexpr u32 kEmptySlot = 0xffffffffu;

    explicit Vacation(const VacationParams &params)
        : params_(params)
    {}

    const char *
    name() const override
    {
        return params_.items_per_table <= 16 ? "Vacation HC"
                                             : "Vacation LC";
    }

    void configure(core::StmConfig &cfg) const override;
    void setup(sim::Dpu &dpu, core::Stm &stm) override;
    void tasklet(sim::DpuContext &ctx, core::Stm &stm) override;
    void verify(sim::Dpu &dpu, core::Stm &stm) override;
    u64 appOps() const override;
    std::map<std::string, double> extraMetrics() const override;

  private:
    /** free[] word of item @p i in table @p t. */
    sim::Addr freeAddr(u32 t, u32 i) const { return free_[t].at(i); }
    /** price[] word of item @p i in table @p t. */
    sim::Addr priceAddr(u32 t, u32 i) const { return price_[t].at(i); }
    /** Slot word: encodes (table, item) or kEmptySlot. */
    sim::Addr
    slotAddr(u32 customer, u32 slot) const
    {
        return slots_.at(static_cast<size_t>(customer) *
                             params_.slots_per_customer +
                         slot);
    }

    static u32
    encodeSlot(u32 table, u32 item)
    {
        return (table << 24) | item;
    }

    bool makeReservation(sim::DpuContext &ctx, core::Stm &stm);
    bool deleteCustomer(sim::DpuContext &ctx, core::Stm &stm);
    void updateTables(sim::DpuContext &ctx, core::Stm &stm);

    /**
     * @{ Boosted path (docs/boosting.md). Item-granular locks on the
     * reservation tables plus customer-granular locks on the slot
     * table; the global acquisition order is customer lock first, then
     * item keys in ascending stripe order, so composed actions are
     * deadlock-free. All mutated words sit under exclusive abstract
     * locks, so no physical latch is needed; undo closures restore the
     * displaced word values.
     */
    u32 itemKey(u32 t, u32 i) const
    {
        return t * params_.items_per_table + i;
    }
    bool makeReservationBoosted(sim::DpuContext &ctx, core::Stm &stm);
    bool deleteCustomerBoosted(sim::DpuContext &ctx, core::Stm &stm);
    void updateTablesBoosted(sim::DpuContext &ctx, core::Stm &stm);
    /** @} */

    VacationParams params_;
    /** Non-null when boosting is on (created in setup()). */
    std::unique_ptr<runtime::AbstractLockManager> item_locks_;
    std::unique_ptr<runtime::AbstractLockManager> customer_locks_;
    runtime::SharedArray32 free_[kNumTables];
    runtime::SharedArray32 price_[kNumTables];
    runtime::SharedArray32 slots_;
    std::vector<u64> reservations_ok_;
    std::vector<u64> deletes_ok_;
    std::vector<u64> updates_ok_;
};

} // namespace pimstm::workloads

#endif // PIMSTM_WORKLOADS_VACATION_HH
