/**
 * @file
 * Skip-List — an extension workload beyond the paper's benchmark set:
 * a concurrent ordered set implemented as a skip list over PIM-STM,
 * the "richer concurrent data structures on top of PIM-STM" direction
 * of the paper's conclusion. Compared to the Linked-List benchmark,
 * traversals are O(log n), so transactions have much smaller read
 * sets at equal set sizes — a qualitatively different STM stress
 * (bench/ext_skiplist.cc contrasts the two).
 *
 * Node layout in simulated memory (words):
 *   [0] value   [1] height   [2..2+height-1] next pointer per level
 * Tower heights are a deterministic function of the key, so the
 * structure is identical across runs and STMs.
 */

#ifndef PIMSTM_WORKLOADS_SKIPLIST_HH
#define PIMSTM_WORKLOADS_SKIPLIST_HH

#include <memory>
#include <vector>

#include "runtime/boosted.hh"
#include "runtime/driver.hh"
#include "runtime/shared_array.hh"

namespace pimstm::workloads
{

struct SkipListParams
{
    /** Fraction of contains (read-only) operations. */
    double contains_ratio = 0.9;
    u32 ops_per_tasklet = 100;
    u32 initial_size = 64;
    u32 value_range = 256;
    u32 max_tasklets = 24;
    /** Maximum tower height (level count). */
    u32 max_height = 8;

    static SkipListParams
    lowContention(u32 ops = 100)
    {
        SkipListParams p;
        p.contains_ratio = 0.9;
        p.ops_per_tasklet = ops;
        return p;
    }

    static SkipListParams
    highContention(u32 ops = 100)
    {
        SkipListParams p;
        p.contains_ratio = 0.5;
        p.ops_per_tasklet = ops;
        return p;
    }

    u32
    poolNodes() const
    {
        return initial_size + max_tasklets * ops_per_tasklet + 2;
    }

    /** Words per node slot (worst-case height). */
    u32
    nodeWords() const
    {
        return 2 + max_height;
    }
};

class SkipList : public runtime::Workload
{
  public:
    explicit SkipList(const SkipListParams &params)
        : params_(params)
    {}

    const char *
    name() const override
    {
        return params_.contains_ratio >= 0.75 ? "Skip-List LC"
                                              : "Skip-List HC";
    }

    void configure(core::StmConfig &cfg) const override;
    void setup(sim::Dpu &dpu, core::Stm &stm) override;
    void tasklet(sim::DpuContext &ctx, core::Stm &stm) override;
    void verify(sim::Dpu &dpu, core::Stm &stm) override;
    u64 appOps() const override;

    /** Deterministic tower height for @p value in [1, max_height]. */
    u32 heightFor(u32 value) const;

  private:
    sim::Addr nodeAddr(u32 index) const;
    u32 nodeIndex(sim::Addr a) const;

    /** Word addresses within a node. */
    sim::Addr valueAddr(u32 index) const { return nodeAddr(index); }
    sim::Addr heightAddr(u32 index) const { return nodeAddr(index) + 4; }
    sim::Addr
    nextAddr(u32 index, u32 level) const
    {
        return nodeAddr(index) + 8 + level * 4;
    }

    /**
     * Find the predecessor node index at every level for @p value.
     * Fills @p preds (size max_height). Returns the node at level 0
     * after preds[0] (candidate match), or 0 when none.
     */
    sim::Addr locate(core::TxHandle &tx, u32 value,
                     std::vector<sim::Addr> &preds);

    bool contains(sim::DpuContext &ctx, core::Stm &stm, u32 value);
    bool add(sim::DpuContext &ctx, core::Stm &stm, u32 value);
    bool remove(sim::DpuContext &ctx, core::Stm &stm, u32 value);

    /**
     * @{ Boosted path (StmConfig::boosting; docs/boosting.md):
     * value-granular abstract locks decide conflicts — adds/removes of
     * different values commute even though they physically rewrite
     * shared predecessor towers — while a structure latch serializes
     * the physical relink. Inverse operations (unlink-for-add,
     * relink-for-remove) are logged for abort.
     */
    sim::Addr locateDirect(sim::DpuContext &ctx, u32 value,
                           std::vector<sim::Addr> &preds);
    /**
     * Result of a latch-free traversal: valid only when ok, i.e. the
     * structure version was identical before and after the walk (no
     * splice interleaved, so preds/cand describe a consistent snapshot
     * as of @ref version).
     */
    struct OptLocate
    {
        sim::Addr cand = 0;
        u32 cand_value = 0;
        u32 version = 0;
        bool ok = false;
    };
    OptLocate locateOptimistic(sim::DpuContext &ctx, u32 value,
                               std::vector<sim::Addr> &preds);
    bool containsBoosted(sim::DpuContext &ctx, core::Stm &stm, u32 value);
    bool addBoosted(sim::DpuContext &ctx, core::Stm &stm, u32 value);
    bool removeBoosted(sim::DpuContext &ctx, core::Stm &stm, u32 value);
    void undoAdd(sim::DpuContext &ctx, u32 node, u32 value, u32 height);
    void undoRemove(sim::DpuContext &ctx, u32 node, u32 value,
                    u32 height);
    /** @} */

    SkipListParams params_;
    runtime::SharedArray32 pool_;
    u32 head_index_ = 0;
    std::vector<std::vector<u32>> stashes_;
    std::vector<u64> add_ok_;
    std::vector<u64> remove_ok_;

    /** Non-null when boosting is on (created in setup()). */
    std::unique_ptr<runtime::AbstractLockManager> locks_;
    u32 latch_key_ = 0;
    /** Structure version word, bumped under the latch by every splice;
     * lets optimistic mutator traversals validate their predecessor
     * sets with a single read. */
    runtime::SharedArray32 version_;
};

} // namespace pimstm::workloads

#endif // PIMSTM_WORKLOADS_SKIPLIST_HH
