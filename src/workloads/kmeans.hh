/**
 * @file
 * KMeans — TM port of the STAMP k-means kernel (§4.1).
 *
 * Given P points of N = 14 dimensions, the kernel assigns each point to
 * the nearest centroid and accumulates it into that centroid's running
 * sums. The distance computation is non-transactional (it reads the
 * previous round's centroids, which are stable within a round); only
 * the accumulator update is a transaction, with read and write sets of
 * size N+1 — exactly the structure the paper describes. The fraction
 * of transactional time shrinks as k grows, which is why k = 15 (LC)
 * barely separates the STMs while k = 2 (HC) amplifies their gaps.
 *
 * Rounds are separated by barriers; tasklet 0 recomputes centroids
 * from the accumulators between rounds, as in the multi-DPU port the
 * CPU does the merge.
 */

#ifndef PIMSTM_WORKLOADS_KMEANS_HH
#define PIMSTM_WORKLOADS_KMEANS_HH

#include <bit>
#include <cmath>
#include <vector>

#include "runtime/driver.hh"
#include "runtime/shared_array.hh"

namespace pimstm::workloads
{

struct KMeansParams
{
    /** Number of clusters (k = 15 -> LC, k = 2 -> HC in the paper). */
    u32 clusters = 15;
    /** Point dimensionality (N = 14 in the paper). */
    u32 dims = 14;
    /** Points per tasklet per round. */
    u32 points_per_tasklet = 32;
    /** Rounds (3 in the paper's multi-DPU setup). */
    u32 rounds = 3;
    /** Tasklets the point shards must provision for. */
    u32 max_tasklets = 24;

    static KMeansParams
    lowContention(u32 points = 32)
    {
        KMeansParams p;
        p.clusters = 15;
        p.points_per_tasklet = points;
        return p;
    }

    static KMeansParams
    highContention(u32 points = 32)
    {
        KMeansParams p;
        p.clusters = 2;
        p.points_per_tasklet = points;
        return p;
    }
};

class KMeans : public runtime::Workload
{
  public:
    explicit KMeans(const KMeansParams &params)
        : params_(params)
    {}

    const char *
    name() const override
    {
        return params_.clusters <= 4 ? "KMeans HC" : "KMeans LC";
    }

    void
    configure(core::StmConfig &cfg) const override
    {
        cfg.max_read_set = params_.dims + 8;
        cfg.max_write_set = params_.dims + 8;
        // Shared words: accumulators (k * (N+1)) + centroids (k * N).
        cfg.data_words_hint =
            params_.clusters * (2 * params_.dims + 1);
    }

    void
    setup(sim::Dpu &dpu, core::Stm &) override
    {
        const u32 k = params_.clusters;
        const u32 n = params_.dims;

        centroids_ = runtime::SharedArray32(dpu, sim::Tier::Mram, k * n);
        sums_ = runtime::SharedArray32(dpu, sim::Tier::Mram, k * n);
        counts_ = runtime::SharedArray32(dpu, sim::Tier::Mram, k);

        // Deterministic synthetic input: clustered Gaussian-ish blobs.
        Rng rng(deriveSeed(dpu.config().seed, 0x6b6d6561u));
        const u32 total_points =
            params_.max_tasklets * params_.points_per_tasklet;
        points_.assign(static_cast<size_t>(total_points) * n, 0.0f);
        points_mem_ = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                             total_points * n);
        for (u32 p = 0; p < total_points; ++p) {
            const u32 blob = static_cast<u32>(rng.below(k));
            for (u32 d = 0; d < n; ++d) {
                const float center =
                    static_cast<float>(blob * 10 + d % 3);
                const float jitter =
                    static_cast<float>(rng.uniform() * 4.0 - 2.0);
                const float v = center + jitter;
                points_[static_cast<size_t>(p) * n + d] = v;
                points_mem_.poke(dpu, static_cast<size_t>(p) * n + d,
                                 std::bit_cast<u32>(v));
            }
        }

        // Initial centroids: the first k points.
        for (u32 c = 0; c < k; ++c)
            for (u32 d = 0; d < n; ++d)
                centroids_.poke(dpu, c * n + d,
                                points_mem_.peek(dpu, c * n + d));
        sums_.fill(dpu, std::bit_cast<u32>(0.0f));
        counts_.fill(dpu, 0);
        final_count_total_ = 0;
    }

    void
    tasklet(sim::DpuContext &ctx, core::Stm &stm) override
    {
        const u32 k = params_.clusters;
        const u32 n = params_.dims;
        const u32 me = ctx.taskletId();
        const u32 tasklets = ctx.numTasklets();

        for (u32 round = 0; round < params_.rounds; ++round) {
            // Points are sharded round-robin over the active tasklets.
            for (u32 p = me; p < params_.max_tasklets *
                                     params_.points_per_tasklet;
                 p += tasklets) {
                // Stream the point's coordinates in from MRAM.
                ctx.touchRead(sim::Tier::Mram, n * 4);
                // Non-transactional: nearest centroid under the
                // previous round's coordinates.
                u32 best = 0;
                float best_dist = 0.0f;
                for (u32 c = 0; c < k; ++c) {
                    float dist = 0.0f;
                    for (u32 d = 0; d < n; ++d) {
                        const float cv = std::bit_cast<float>(
                            ctx.read32(centroids_.at(c * n + d)));
                        const float pv =
                            points_[static_cast<size_t>(p) * n + d];
                        dist += (cv - pv) * (cv - pv);
                    }
                    // Software floating point: sub/mul/add per dim.
                    ctx.compute(3ull * n *
                                ctx.dpu().timing().float_op_instrs);
                    if (c == 0 || dist < best_dist) {
                        best_dist = dist;
                        best = c;
                    }
                }

                // Transactional: fold the point into the accumulator.
                core::atomically(stm, ctx, [&](core::TxHandle &tx) {
                    for (u32 d = 0; d < n; ++d) {
                        const float s =
                            tx.readFloat(sums_.at(best * n + d));
                        // One software-emulated float add.
                        ctx.compute(ctx.dpu().timing().float_op_instrs);
                        tx.writeFloat(
                            sums_.at(best * n + d),
                            s + points_[static_cast<size_t>(p) * n + d]);
                    }
                    tx.write(counts_.at(best),
                             tx.read(counts_.at(best)) + 1);
                });
            }

            ctx.barrier();
            if (me == 0)
                mergeRound(ctx, round);
            ctx.barrier();
        }
    }

    void
    verify(sim::Dpu &dpu, core::Stm &) override
    {
        // Every round must have folded every point exactly once.
        const u64 total_points =
            static_cast<u64>(params_.max_tasklets) *
            params_.points_per_tasklet;
        fatalIf(final_count_total_ != total_points * params_.rounds,
                "KMeans lost updates: folded ", final_count_total_,
                " of ", total_points * params_.rounds);
        // Centroids must be finite.
        for (u32 i = 0; i < params_.clusters * params_.dims; ++i) {
            const float v =
                std::bit_cast<float>(centroids_.peek(dpu, i));
            fatalIf(!std::isfinite(v), "KMeans centroid not finite");
        }
    }

    u64
    appOps() const override
    {
        return static_cast<u64>(params_.max_tasklets) *
               params_.points_per_tasklet * params_.rounds;
    }

  private:
    /** Sequential inter-round step on tasklet 0 (the CPU's role in the
     * multi-DPU port): new centroids = sums / counts, then reset. */
    void
    mergeRound(sim::DpuContext &ctx, u32 round)
    {
        const u32 k = params_.clusters;
        const u32 n = params_.dims;
        u64 round_total = 0;
        for (u32 c = 0; c < k; ++c) {
            const u32 count = ctx.read32(counts_.at(c));
            round_total += count;
            for (u32 d = 0; d < n; ++d) {
                const float s = std::bit_cast<float>(
                    ctx.read32(sums_.at(c * n + d)));
                if (count > 0) {
                    ctx.write32(centroids_.at(c * n + d),
                                std::bit_cast<u32>(
                                    s / static_cast<float>(count)));
                }
                ctx.write32(sums_.at(c * n + d),
                            std::bit_cast<u32>(0.0f));
            }
            ctx.write32(counts_.at(c), 0);
            // Division per dimension, software floating point.
            ctx.compute(2ull * n * ctx.dpu().timing().float_op_instrs);
        }
        (void)round;
        final_count_total_ += round_total;
    }

    KMeansParams params_;
    runtime::SharedArray32 centroids_;
    runtime::SharedArray32 sums_;
    runtime::SharedArray32 counts_;
    runtime::SharedArray32 points_mem_;
    std::vector<float> points_;
    u64 final_count_total_ = 0;
};

} // namespace pimstm::workloads

#endif // PIMSTM_WORKLOADS_KMEANS_HH
