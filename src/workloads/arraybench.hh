/**
 * @file
 * ArrayBench — the paper's synthetic array benchmark (§4.1).
 *
 * Transactions manipulate an array of N 32-bit words split into two
 * regions. Workload A (N = 12500): phase 1 reads 100 random entries
 * from region Y (2500 words), phase 2 read-modify-writes 20 random
 * entries in region K (10000 words) — many reads, low contention.
 * Workload B (K = 10, phase 2 only, 4 entries) — tiny, highly
 * contended transactions.
 *
 * Invariant checked after the run: every committed transaction adds
 * exactly `rmw_ops` to the array sum, so
 *     sum(array) == commits * rmw_ops.
 */

#ifndef PIMSTM_WORKLOADS_ARRAYBENCH_HH
#define PIMSTM_WORKLOADS_ARRAYBENCH_HH

#include "runtime/driver.hh"
#include "runtime/shared_array.hh"

namespace pimstm::workloads
{

/** Parameters shaping an ArrayBench workload. */
struct ArrayBenchParams
{
    /** Words in the read-only-phase region (0 disables phase 1). */
    u32 region_y = 2500;
    /** Words in the read-modify-write region. */
    u32 region_k = 10000;
    /** Random reads in phase 1. */
    u32 read_ops = 100;
    /** Random read-modify-writes in phase 2. */
    u32 rmw_ops = 20;
    /** Transactions per tasklet. */
    u32 tx_per_tasklet = 50;

    /** Workload A of the paper. */
    static ArrayBenchParams
    workloadA(u32 tx_per_tasklet = 50)
    {
        return {2500, 10000, 100, 20, tx_per_tasklet};
    }

    /** Workload B of the paper. */
    static ArrayBenchParams
    workloadB(u32 tx_per_tasklet = 200)
    {
        return {0, 10, 0, 4, tx_per_tasklet};
    }

    u32 totalWords() const { return region_y + region_k; }
};

class ArrayBench : public runtime::Workload
{
  public:
    explicit ArrayBench(const ArrayBenchParams &params)
        : params_(params)
    {}

    const char *
    name() const override
    {
        return params_.region_y > 0 ? "ArrayBench A" : "ArrayBench B";
    }

    void
    configure(core::StmConfig &cfg) const override
    {
        cfg.max_read_set = params_.read_ops + params_.rmw_ops + 8;
        cfg.max_write_set = params_.rmw_ops + 8;
        cfg.data_words_hint = params_.totalWords();
    }

    void
    setup(sim::Dpu &dpu, core::Stm &) override
    {
        array_ = runtime::SharedArray32(dpu, sim::Tier::Mram,
                                        params_.totalWords());
        array_.fill(dpu, 0);
    }

    void
    tasklet(sim::DpuContext &ctx, core::Stm &stm) override
    {
        for (u32 t = 0; t < params_.tx_per_tasklet; ++t) {
            core::atomically(stm, ctx, [&](core::TxHandle &tx) {
                // Phase 1: plain reads in the uncontended region Y.
                for (u32 i = 0; i < params_.read_ops; ++i) {
                    const u32 idx =
                        static_cast<u32>(ctx.rng().below(params_.region_y));
                    tx.read(array_.at(idx));
                }
                // Phase 2: read-modify-writes in region K.
                for (u32 i = 0; i < params_.rmw_ops; ++i) {
                    const u32 idx =
                        params_.region_y +
                        static_cast<u32>(ctx.rng().below(params_.region_k));
                    const u32 v = tx.read(array_.at(idx));
                    tx.write(array_.at(idx), v + 1);
                }
            });
        }
    }

    void
    verify(sim::Dpu &dpu, core::Stm &stm) override
    {
        u64 sum = 0;
        for (u32 i = 0; i < params_.totalWords(); ++i)
            sum += array_.peek(dpu, i);
        // aggregateStats: under the SwitchableStm router the commits
        // live in the inner STMs (docs/adaptive.md).
        const u64 expected = stm.aggregateStats().commits *
            static_cast<u64>(params_.rmw_ops);
        fatalIf(sum != expected, "ArrayBench invariant broken: sum ", sum,
                " != commits*rmw ", expected);
    }

    u64
    appOps() const override
    {
        return 0; // one app op == one transaction; throughput covers it
    }

  private:
    ArrayBenchParams params_;
    runtime::SharedArray32 array_;
};

} // namespace pimstm::workloads

#endif // PIMSTM_WORKLOADS_ARRAYBENCH_HH
