#include "workloads/skiplist.hh"

#include <set>

#include "util/logging.hh"

namespace pimstm::workloads
{

void
SkipList::configure(core::StmConfig &cfg) const
{
    // Balanced towers keep traversals logarithmic; the step bound in
    // locate() turns degenerate stale traversals into retries well
    // before this capacity is reached.
    cfg.max_read_set = 512;
    cfg.max_write_set = 4 * params_.max_height + 8;
    cfg.data_words_hint = params_.poolNodes() * params_.nodeWords();
}

u32
SkipList::heightFor(u32 value) const
{
    // Deterministic geometric heights: the structure is identical
    // across runs, seeds and STMs.
    u32 h = value * 2654435761u;
    h ^= h >> 15;
    u32 height = 1;
    while ((h & 1) && height < params_.max_height) {
        ++height;
        h >>= 1;
    }
    return height;
}

sim::Addr
SkipList::nodeAddr(u32 index) const
{
    return pool_.at(static_cast<size_t>(index) * params_.nodeWords());
}

u32
SkipList::nodeIndex(sim::Addr a) const
{
    return static_cast<u32>((a - pool_.base()) /
                            (params_.nodeWords() * 4));
}

void
SkipList::setup(sim::Dpu &dpu, core::Stm &stm)
{
    if (stm.config().boosting) {
        // One stripe per possible value: adds/removes of distinct
        // values never alias, so every wait is a true conflict.
        u32 stripes = 64;
        while (stripes < params_.value_range && stripes < 1024)
            stripes <<= 1;
        locks_ = std::make_unique<runtime::AbstractLockManager>(
            dpu, stm, core::StructureId::SkipList, stripes);
        latch_key_ = runtime::boostLatchKey(core::StructureId::SkipList);
        version_ = runtime::SharedArray32(dpu, sim::Tier::Mram, 1);
        version_.poke(dpu, 0, 0);
    }
    dpu.mram().alloc(8); // keep node addresses non-zero
    pool_ = runtime::SharedArray32(
        dpu, sim::Tier::Mram,
        static_cast<size_t>(params_.poolNodes()) * params_.nodeWords());

    stashes_.assign(params_.max_tasklets, {});
    add_ok_.assign(params_.max_tasklets, 0);
    remove_ok_.assign(params_.max_tasklets, 0);

    // Node 0: head sentinel with a full-height tower.
    head_index_ = 0;
    const u32 words = params_.nodeWords();
    pool_.poke(dpu, 0, 0);          // head value (unused)
    pool_.poke(dpu, 1, params_.max_height);
    for (u32 l = 0; l < params_.max_height; ++l)
        pool_.poke(dpu, 2 + l, 0);

    // Initial elements: evenly spaced keys, linked at every level of
    // their deterministic towers.
    u32 next_free = 1;
    std::vector<u32> level_tail(params_.max_height, 0); // node index
    for (u32 i = 0; i < params_.initial_size; ++i) {
        const u32 node = next_free++;
        const u32 value =
            (i + 1) * params_.value_range / (params_.initial_size + 1);
        const u32 height = heightFor(value);
        pool_.poke(dpu, node * words, value);
        pool_.poke(dpu, node * words + 1, height);
        for (u32 l = 0; l < params_.max_height; ++l) {
            if (l < height) {
                pool_.poke(dpu, node * words + 2 + l, 0);
                // Link the previous node of this level to us.
                const u32 tail = level_tail[l];
                pool_.poke(dpu, tail * words + 2 + l, nodeAddr(node));
                level_tail[l] = node;
            }
        }
    }

    const u32 per_tasklet =
        (params_.poolNodes() - next_free) / params_.max_tasklets;
    for (u32 t = 0; t < params_.max_tasklets; ++t)
        for (u32 i = 0; i < per_tasklet; ++i)
            stashes_[t].push_back(next_free++);
}

sim::Addr
SkipList::locate(core::TxHandle &tx, u32 value,
                 std::vector<sim::Addr> &preds)
{
    preds.assign(params_.max_height, 0);
    sim::Addr cur = nodeAddr(head_index_);
    u32 steps = 0;
    const u32 bound = 4 * params_.max_height +
                      2 * (params_.initial_size + params_.max_tasklets);
    for (u32 level = params_.max_height; level-- > 0;) {
        for (;;) {
            if (++steps > bound)
                tx.retry(); // stale traversal over recycled nodes
            const sim::Addr next = tx.read(cur + 8 + level * 4);
            if (next == 0 || tx.read(next) >= value)
                break;
            cur = next;
        }
        preds[level] = cur;
    }
    return tx.read(preds[0] + 8);
}

sim::Addr
SkipList::locateDirect(sim::DpuContext &ctx, u32 value,
                       std::vector<sim::Addr> &preds)
{
    // Runs under the structure latch: the list is consistent, so a
    // bound overrun is a structural bug, not a stale traversal.
    preds.assign(params_.max_height, 0);
    sim::Addr cur = nodeAddr(head_index_);
    u64 steps = 0;
    const u64 bound =
        static_cast<u64>(params_.poolNodes()) * params_.max_height;
    for (u32 level = params_.max_height; level-- > 0;) {
        for (;;) {
            panicIf(++steps > bound, "boosted skip-list traversal "
                    "exceeded bound under latch");
            const sim::Addr next = ctx.read32(cur + 8 + level * 4);
            if (next == 0 || ctx.read32(next) >= value)
                break;
            cur = next;
        }
        preds[level] = cur;
    }
    return ctx.read32(preds[0] + 8);
}

/**
 * Latch-free traversal. Reads the structure version word before and
 * after the walk; a mismatch (or a step-bound overrun over recycled
 * nodes) voids the attempt. Retries a few times, then reports !ok and
 * the caller falls back to a latched locateDirect().
 */
SkipList::OptLocate
SkipList::locateOptimistic(sim::DpuContext &ctx, u32 value,
                           std::vector<sim::Addr> &preds)
{
    constexpr u32 kAttempts = 8;
    const u32 bound = 4 * params_.max_height +
                      2 * (params_.initial_size + params_.max_tasklets);
    OptLocate r;
    for (u32 attempt = 0; attempt < kAttempts; ++attempt) {
        const u32 v0 = ctx.read32(version_.at(0));
        preds.assign(params_.max_height, 0);
        sim::Addr cur = nodeAddr(head_index_);
        sim::Addr cand = 0;
        u32 cand_value = 0;
        u32 steps = 0;
        bool overrun = false;
        for (u32 level = params_.max_height; level-- > 0 && !overrun;) {
            for (;;) {
                if (++steps > bound) {
                    overrun = true;
                    break;
                }
                const sim::Addr next = ctx.read32(cur + 8 + level * 4);
                if (next == 0) {
                    cand = 0;
                    cand_value = 0;
                    break;
                }
                // Capture the candidate and its value in-loop: a
                // re-read after the walk could observe a concurrent
                // splice the version check would then miss.
                const u32 nv = ctx.read32(next);
                if (nv >= value) {
                    cand = next;
                    cand_value = nv;
                    break;
                }
                cur = next;
            }
            preds[level] = cur;
        }
        if (overrun)
            continue;
        if (ctx.read32(version_.at(0)) == v0) {
            r.cand = cand;
            r.cand_value = cand_value;
            r.version = v0;
            r.ok = true;
            return r;
        }
    }
    return r;
}

void
SkipList::undoAdd(sim::DpuContext &ctx, u32 node, u32 value, u32 height)
{
    runtime::LatchGuard latch(ctx, latch_key_);
    std::vector<sim::Addr> preds;
    locateDirect(ctx, value, preds);
    const sim::Addr na = nodeAddr(node);
    for (u32 l = 0; l < height; ++l) {
        if (ctx.read32(preds[l] + 8 + l * 4) == na)
            ctx.write32(preds[l] + 8 + l * 4,
                        ctx.read32(na + 8 + l * 4));
    }
    ctx.write32(version_.at(0), ctx.read32(version_.at(0)) + 1);
}

void
SkipList::undoRemove(sim::DpuContext &ctx, u32 node, u32 value,
                     u32 height)
{
    // The removed node's value/height/next words were never cleared;
    // splice it back in front of the current successors.
    runtime::LatchGuard latch(ctx, latch_key_);
    std::vector<sim::Addr> preds;
    locateDirect(ctx, value, preds);
    const sim::Addr na = nodeAddr(node);
    for (u32 l = 0; l < height; ++l) {
        ctx.write32(na + 8 + l * 4, ctx.read32(preds[l] + 8 + l * 4));
        ctx.write32(preds[l] + 8 + l * 4, na);
    }
    ctx.write32(version_.at(0), ctx.read32(version_.at(0)) + 1);
}

bool
SkipList::containsBoosted(sim::DpuContext &ctx, core::Stm &stm,
                          u32 value)
{
    bool found = false;
    std::vector<sim::Addr> preds;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::SkipList);
        locks_->acquireKey(tx, value, false);
        // The shared lock freezes `value`'s membership, so a
        // version-validated latch-free walk decides it exactly.
        const OptLocate loc = locateOptimistic(ctx, value, preds);
        if (loc.ok) {
            found = loc.cand != 0 && loc.cand_value == value;
        } else {
            runtime::LatchGuard latch(ctx, latch_key_);
            const sim::Addr cand = locateDirect(ctx, value, preds);
            found = cand != 0 && ctx.read32(cand) == value;
        }
    });
    return found;
}

bool
SkipList::addBoosted(sim::DpuContext &ctx, core::Stm &stm, u32 value)
{
    const unsigned me = ctx.taskletId();
    fatalIf(stashes_[me].empty(), "skip-list stash exhausted");
    const u32 node = stashes_[me].back();
    const u32 height = heightFor(value);

    bool inserted = false;
    std::vector<sim::Addr> preds;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::SkipList);
        locks_->acquireKey(tx, value, true);
        // Traverse outside the latch; the latch section only
        // revalidates (one version read) and splices.
        const OptLocate loc = locateOptimistic(ctx, value, preds);
        {
            runtime::LatchGuard latch(ctx, latch_key_);
            if (!loc.ok ||
                ctx.read32(version_.at(0)) != loc.version)
                locateDirect(ctx, value, preds);
            const sim::Addr cand = ctx.read32(preds[0] + 8);
            if (cand != 0 && ctx.read32(cand) == value) {
                inserted = false;
                return;
            }
            ctx.write32(valueAddr(node), value);
            ctx.write32(heightAddr(node), height);
            for (u32 l = 0; l < height; ++l) {
                const sim::Addr succ = ctx.read32(preds[l] + 8 + l * 4);
                ctx.write32(nextAddr(node, l), succ);
                ctx.write32(preds[l] + 8 + l * 4, nodeAddr(node));
            }
            ctx.write32(version_.at(0),
                        ctx.read32(version_.at(0)) + 1);
        }
        if (!tx.descriptor().irrevocable) {
            tx.descriptor().semantic_undo.push_back(core::SemanticUndo{
                [this, node, value, height](sim::DpuContext &c) {
                    undoAdd(c, node, value, height);
                },
                static_cast<u8>(core::StructureId::SkipList)});
        }
        inserted = true;
    });
    if (inserted)
        stashes_[me].pop_back();
    return inserted;
}

bool
SkipList::removeBoosted(sim::DpuContext &ctx, core::Stm &stm, u32 value)
{
    const unsigned me = ctx.taskletId();
    bool removed = false;
    u32 victim = 0;
    std::vector<sim::Addr> preds;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::SkipList);
        locks_->acquireKey(tx, value, true);
        const OptLocate loc = locateOptimistic(ctx, value, preds);
        u32 height = 0;
        {
            runtime::LatchGuard latch(ctx, latch_key_);
            if (!loc.ok ||
                ctx.read32(version_.at(0)) != loc.version)
                locateDirect(ctx, value, preds);
            const sim::Addr cand = ctx.read32(preds[0] + 8);
            if (cand == 0 || ctx.read32(cand) != value) {
                removed = false;
                return;
            }
            height = ctx.read32(cand + 4);
            for (u32 l = 0; l < height; ++l) {
                const sim::Addr succ_of_pred =
                    ctx.read32(preds[l] + 8 + l * 4);
                if (succ_of_pred == cand) {
                    ctx.write32(preds[l] + 8 + l * 4,
                                ctx.read32(cand + 8 + l * 4));
                }
            }
            ctx.write32(version_.at(0),
                        ctx.read32(version_.at(0)) + 1);
            victim = nodeIndex(cand);
        }
        if (!tx.descriptor().irrevocable) {
            const u32 node = victim;
            tx.descriptor().semantic_undo.push_back(core::SemanticUndo{
                [this, node, value, height](sim::DpuContext &c) {
                    undoRemove(c, node, value, height);
                },
                static_cast<u8>(core::StructureId::SkipList)});
        }
        removed = true;
    });
    if (removed)
        stashes_[me].push_back(victim);
    return removed;
}

bool
SkipList::contains(sim::DpuContext &ctx, core::Stm &stm, u32 value)
{
    if (locks_)
        return containsBoosted(ctx, stm, value);
    bool found = false;
    std::vector<sim::Addr> preds;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::SkipList);
        const sim::Addr cand = locate(tx, value, preds);
        found = cand != 0 && tx.read(cand) == value;
    });
    return found;
}

bool
SkipList::add(sim::DpuContext &ctx, core::Stm &stm, u32 value)
{
    if (locks_)
        return addBoosted(ctx, stm, value);
    const unsigned me = ctx.taskletId();
    fatalIf(stashes_[me].empty(), "skip-list stash exhausted");
    const u32 node = stashes_[me].back();
    const u32 height = heightFor(value);

    bool inserted = false;
    std::vector<sim::Addr> preds;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::SkipList);
        const sim::Addr cand = locate(tx, value, preds);
        if (cand != 0 && tx.read(cand) == value) {
            inserted = false;
            return;
        }
        tx.write(valueAddr(node), value);
        tx.write(heightAddr(node), height);
        for (u32 l = 0; l < height; ++l) {
            const sim::Addr succ = tx.read(preds[l] + 8 + l * 4);
            tx.write(nextAddr(node, l), succ);
            tx.write(preds[l] + 8 + l * 4, nodeAddr(node));
        }
        inserted = true;
    });
    if (inserted)
        stashes_[me].pop_back();
    return inserted;
}

bool
SkipList::remove(sim::DpuContext &ctx, core::Stm &stm, u32 value)
{
    if (locks_)
        return removeBoosted(ctx, stm, value);
    const unsigned me = ctx.taskletId();
    bool removed = false;
    u32 victim = 0;
    std::vector<sim::Addr> preds;
    core::atomically(stm, ctx, [&](core::TxHandle &tx) {
        core::StructureScope scope(tx.descriptor(),
                                   core::StructureId::SkipList);
        const sim::Addr cand = locate(tx, value, preds);
        if (cand == 0 || tx.read(cand) != value) {
            removed = false;
            return;
        }
        const u32 height = tx.read(cand + 4);
        for (u32 l = 0; l < height; ++l) {
            // preds[l] may precede other nodes below cand's height at
            // upper levels; only unlink where cand is the successor.
            const sim::Addr succ_of_pred = tx.read(preds[l] + 8 + l * 4);
            if (succ_of_pred == cand) {
                tx.write(preds[l] + 8 + l * 4,
                         tx.read(cand + 8 + l * 4));
            }
        }
        victim = nodeIndex(cand);
        removed = true;
    });
    if (removed)
        stashes_[me].push_back(victim);
    return removed;
}

void
SkipList::tasklet(sim::DpuContext &ctx, core::Stm &stm)
{
    const unsigned me = ctx.taskletId();
    bool next_is_add = (me % 2) == 0;
    for (u32 op = 0; op < params_.ops_per_tasklet; ++op) {
        const u32 value =
            static_cast<u32>(ctx.rng().below(params_.value_range));
        if (ctx.rng().chance(params_.contains_ratio)) {
            contains(ctx, stm, value);
        } else if (next_is_add) {
            if (add(ctx, stm, value))
                ++add_ok_[me];
            next_is_add = false;
        } else {
            if (remove(ctx, stm, value))
                ++remove_ok_[me];
            next_is_add = true;
        }
    }
}

void
SkipList::verify(sim::Dpu &dpu, core::Stm &)
{
    u64 adds = 0, removes = 0;
    for (u32 t = 0; t < params_.max_tasklets; ++t) {
        adds += add_ok_[t];
        removes += remove_ok_[t];
    }
    const u64 expected_size = params_.initial_size + adds - removes;
    const u32 words = params_.nodeWords();

    // Level 0: strictly sorted, exact size.
    std::set<u32> level0_values;
    u64 size = 0;
    s64 prev = -1;
    u32 cur = pool_.peek(dpu, head_index_ * words + 2);
    while (cur != 0) {
        fatalIf(size > params_.poolNodes(), "skip list level-0 cycle");
        const u32 idx = nodeIndex(cur);
        const u32 value = pool_.peek(dpu, idx * words);
        fatalIf(static_cast<s64>(value) <= prev,
                "skip list not sorted at node ", idx);
        prev = value;
        level0_values.insert(value);
        cur = pool_.peek(dpu, idx * words + 2);
        ++size;
    }
    fatalIf(size != expected_size, "skip list size ", size,
            " != expected ", expected_size);

    // Upper levels: sorted sublists of level 0, and every node's
    // height admits the level it appears on.
    for (u32 l = 1; l < params_.max_height; ++l) {
        u64 steps = 0;
        prev = -1;
        cur = pool_.peek(dpu, head_index_ * words + 2 + l);
        while (cur != 0) {
            fatalIf(++steps > size + 1, "skip list level ", l, " cycle");
            const u32 idx = nodeIndex(cur);
            const u32 value = pool_.peek(dpu, idx * words);
            const u32 height = pool_.peek(dpu, idx * words + 1);
            fatalIf(height <= l, "node on level ", l,
                    " with height ", height);
            fatalIf(static_cast<s64>(value) <= prev,
                    "skip list level ", l, " not sorted");
            fatalIf(level0_values.count(value) == 0,
                    "level ", l, " node missing from level 0");
            prev = value;
            cur = pool_.peek(dpu, idx * words + 2 + l);
        }
    }
}

u64
SkipList::appOps() const
{
    u64 ops = 0;
    for (u32 t = 0; t < params_.max_tasklets; ++t)
        ops += add_ok_[t] + remove_ok_[t];
    return ops;
}

} // namespace pimstm::workloads
