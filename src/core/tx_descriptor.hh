/**
 * @file
 * Per-tasklet transaction descriptor: read set, write set, held locks
 * and snapshot bounds. One struct serves all seven algorithms; each
 * algorithm uses the fields it needs (NOrec: value-based read set;
 * Tiny: version-based read set + write orecs; VR: lock list only).
 *
 * The entry *values* live in host memory (the simulation is
 * single-threaded), but every append / lookup / scan is priced at the
 * configured metadata tier by the Stm base class, and the capacity is
 * reserved in simulated memory so WRAM placement fails exactly when the
 * paper says it must.
 *
 * Lookup cost model vs host cost
 * ------------------------------
 * findWrite()/hasRead() are answered from an O(1) epoch-invalidated
 * hash index (util::EpochIndex) so the *host* never walks the sets,
 * while the callers keep charging the *simulated* machine the exact
 * same linear scanCost() as before — the simulated DPU has no hash
 * index, only contiguous sets it must stream. findWriteLinear()/
 * hasReadLinear() are the linear-scan reference implementations kept
 * for differential tests, and setCrossCheck(true) makes every indexed
 * lookup verify itself against the linear answer.
 */

#ifndef PIMSTM_CORE_TX_DESCRIPTOR_HH
#define PIMSTM_CORE_TX_DESCRIPTOR_HH

#include <atomic>
#include <functional>
#include <vector>

#include "sim/addr.hh"
#include "util/epoch_index.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace pimstm::sim
{
class DpuContext;
}

namespace pimstm::core
{

/**
 * Owner-side release hook for abstract (semantic) locks held by a
 * boosted transaction. Implemented by runtime::AbstractLockManager;
 * declared here so the Stm commit/abort wrappers can hand locks back
 * without the core depending on the runtime layer (docs/boosting.md).
 */
class SemanticLockOwner
{
  public:
    virtual ~SemanticLockOwner() = default;

    /** Release the @p stripe lock held by @p tasklet in the given
     * mode, charging the release at the owner's metadata tier. */
    virtual void releaseAbstract(sim::DpuContext &ctx, unsigned tasklet,
                                 u32 stripe, bool exclusive) = 0;
};

/** One abstract lock held by the transaction (2PL: released only at
 * commit/abort, in reverse acquisition order). */
struct SemanticLock
{
    SemanticLockOwner *owner = nullptr;
    u32 stripe = 0;
    bool exclusive = false;
};

/** One semantic undo-log entry: the inverse of an eagerly applied
 * boosted operation (erase-for-insert, reinsert-for-erase, ...),
 * replayed LIFO on abort after word-level rollback. The closure
 * charges its own simulated accesses; the log-scan cost is charged by
 * Stm::txAbort. */
struct SemanticUndo
{
    std::function<void(sim::DpuContext &)> apply;
    /** StructureId of the structure the operation mutated. */
    u8 structure = 0;
};

/** One read-set entry. */
struct ReadEntry
{
    sim::Addr addr = 0;
    /** Value observed (NOrec value-based validation). */
    u32 value = 0;
    /** ORec version observed (Tiny). */
    u64 version = 0;
    /** Lock-table index of addr (Tiny; avoids rehashing). */
    u32 lock_index = 0;
};

/** One write-set entry (WB: new value buffered; WT: undo value). */
struct WriteEntry
{
    sim::Addr addr = 0;
    /** New value (write-back). */
    u32 value = 0;
    /** Previous memory value (write-through undo). */
    u32 old_value = 0;
    /** ORec version before acquisition (Tiny WT abort path). */
    u64 old_version = 0;
    /** Lock-table index of addr. */
    u32 lock_index = 0;
};

/** A lock held by the transaction (lock-table index + mode). */
struct HeldLock
{
    u32 index = 0;
    bool write_mode = false;
};

/** Per-tasklet transaction context. */
class TxDescriptor
{
  public:
    TxDescriptor(unsigned tasklet, unsigned rs_cap, unsigned ws_cap)
        : tasklet_(tasklet), rs_cap_(rs_cap), ws_cap_(ws_cap)
    {
        read_set.reserve(rs_cap);
        write_set.reserve(ws_cap);
        locks.reserve(static_cast<size_t>(rs_cap) + ws_cap);
        read_index_.init(rs_cap);
        write_index_.init(ws_cap);
    }

    unsigned tasklet() const { return tasklet_; }

    /** Reset for a fresh transaction attempt. O(1): the set indexes are
     * invalidated by bumping their epoch, not by re-zeroing. */
    void
    reset()
    {
        read_set.clear();
        write_set.clear();
        locks.clear();
        read_index_.clear();
        write_index_.clear();
        snapshot = 0;
        upper = 0;
        read_only = true;
        irrevocable = false;
    }

    /** Append to the read set, enforcing the reserved capacity. */
    void
    pushRead(const ReadEntry &e)
    {
        fatalIf(read_set.size() >= rs_cap_,
                "read-set overflow (capacity ", rs_cap_,
                "); raise StmConfig::max_read_set");
        read_index_.insert(e.addr,
                           static_cast<u32>(read_set.size()));
        read_set.push_back(e);
    }

    /** Append to the write set, enforcing the reserved capacity. */
    void
    pushWrite(const WriteEntry &e)
    {
        fatalIf(write_set.size() >= ws_cap_,
                "write-set overflow (capacity ", ws_cap_,
                "); raise StmConfig::max_write_set");
        write_index_.insert(e.addr,
                            static_cast<u32>(write_set.size()));
        write_set.push_back(e);
    }

    /** Write-set lookup; returns index or -1. O(1) hash probe on the
     * host; the *simulated cost* of the scan is charged by the caller
     * (it depends on the metadata tier). */
    int
    findWrite(sim::Addr a) const
    {
        const int w = write_index_.find(a);
        if (cross_check_.load(std::memory_order_relaxed)) {
            const int ref = findWriteLinear(a);
            panicIf(w != ref, "tx write-set index diverged from linear ",
                    "scan: addr ", a, " index says ", w, ", scan says ",
                    ref);
        }
        return w;
    }

    /** Read-set membership check (simulated cost charged by caller). */
    bool
    hasRead(sim::Addr a) const
    {
        const bool r = read_index_.find(a) >= 0;
        if (cross_check_.load(std::memory_order_relaxed)) {
            const bool ref = hasReadLinear(a);
            panicIf(r != ref, "tx read-set index diverged from linear ",
                    "scan: addr ", a, " index says ", r, ", scan says ",
                    ref);
        }
        return r;
    }

    /** @{ Linear-scan reference implementations (differential tests). */
    int
    findWriteLinear(sim::Addr a) const
    {
        for (size_t i = 0; i < write_set.size(); ++i)
            if (write_set[i].addr == a)
                return static_cast<int>(i);
        return -1;
    }

    bool
    hasReadLinear(sim::Addr a) const
    {
        for (const auto &e : read_set)
            if (e.addr == a)
                return true;
        return false;
    }
    /** @} */

    /** When enabled, every indexed lookup re-runs the linear scan and
     * panics on divergence. Host-side debug knob for tests; applies to
     * all descriptors process-wide. */
    static void
    setCrossCheck(bool on)
    {
        cross_check_.store(on, std::memory_order_relaxed);
    }

    /** Combined host-side probe statistics of both set indexes. */
    util::EpochIndexStats
    indexStats() const
    {
        util::EpochIndexStats s = read_index_.stats();
        s += write_index_.stats();
        return s;
    }

    unsigned readCapacity() const { return rs_cap_; }
    unsigned writeCapacity() const { return ws_cap_; }

    std::vector<ReadEntry> read_set;
    std::vector<WriteEntry> write_set;
    std::vector<HeldLock> locks;

    /**
     * @{ Transactional-boosting state (empty unless StmConfig::boosting
     * is on). Both are owned by the Stm commit/abort wrappers — commit
     * discards the undo log and releases the locks, abort replays the
     * log LIFO (locks still held) and then releases — so they are
     * always empty by the time reset() runs a fresh attempt.
     */
    std::vector<SemanticLock> semantic_locks;
    std::vector<SemanticUndo> semantic_undo;
    /** @} */

    /** StructureId of the tagged data structure the transaction is
     * currently operating inside (0 = none). Host-only: feeds trace
     * events and per-structure abort attribution; set/restored by
     * core::StructureScope. */
    u8 structure = 0;

    /** Snapshot timestamp (NOrec seqlock value / Tiny lower bound). */
    u64 snapshot = 0;
    /** Tiny snapshot upper bound (extensible). */
    u64 upper = 0;
    /** True until the first write. */
    bool read_only = true;

    /** Consecutive aborts of the current atomic block (drives the
     * randomized retry back-off; cleared on commit, not by reset()). */
    u64 retries = 0;

    /** True while running in serial-irrevocable mode: the tasklet holds
     * the global token, accesses go direct, and the transaction cannot
     * abort (StmConfig::serial_fallback_after). */
    bool irrevocable = false;

    /** Simulated cycle this attempt's txStart completed at. Host-only
     * observability (the tx-latency histogram when tracing is on);
     * never read by any algorithm. */
    u64 trace_start_cycle = 0;

  private:
    inline static std::atomic<bool> cross_check_{false};

    unsigned tasklet_;
    unsigned rs_cap_;
    unsigned ws_cap_;

    /** addr -> first read-set entry index (membership). */
    util::EpochIndex<sim::Addr> read_index_;
    /** addr -> write-set entry index (unique per address). */
    util::EpochIndex<sim::Addr> write_index_;
};

} // namespace pimstm::core

#endif // PIMSTM_CORE_TX_DESCRIPTOR_HH
