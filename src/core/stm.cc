#include "core/stm.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <ostream>
#include <utility>

#include "util/logging.hh"

namespace pimstm::core
{

namespace
{

// Process-wide tx-set index counters; folded in by Stm::~Stm.
std::atomic<u64> g_idx_lookups{0};
std::atomic<u64> g_idx_probes{0};
std::atomic<u64> g_idx_inserts{0};
std::atomic<u64> g_idx_max_probe{0};

// Process-wide boosting counters; folded in by Stm::~Stm.
std::atomic<u64> g_boost_acquires{0};
std::atomic<u64> g_boost_waits{0};
std::atomic<u64> g_boost_undos{0};
std::atomic<u64> g_boost_avoided{0};

// Process-wide durable-transaction counters; folded in by Stm::~Stm.
std::atomic<u64> g_dur_log_bytes{0};
std::atomic<u64> g_dur_log_appends{0};
std::atomic<u64> g_dur_fences{0};
std::atomic<u64> g_dur_commits{0};
std::atomic<u64> g_dur_recoveries{0};
std::atomic<u64> g_dur_redone{0};
std::atomic<u64> g_dur_undone{0};
std::atomic<u64> g_dur_discarded{0};
std::atomic<u64> g_dur_torn{0};

//
// Durable-log record format (docs/durability.md).
//
// Header copy (16 bytes, two per slot, written ping-pong):
//   word0 = seq:32 | entries:16 | state:16
//   word1 = mix64(word0 ^ kLogHeaderSalt)
// Entry i (16 bytes at +32 + 16*i):
//   word0 = addr:32 | payload:32     (payload: WB new value, WT old)
//   word1 = mix64(word0 ^ mix64(seq ^ kLogEntrySalt))
//
// The checksum is the splitmix64 finalizer — not cryptographic, but
// any reverted or half-torn 8-byte line fails it with overwhelming
// probability, and binding entries to the header's sequence number
// makes stale entries from an earlier slot incarnation unreadable.
//

constexpr u64 kLogHeaderSalt = 0x9e3779b97f4a7c15ull;
constexpr u64 kLogEntrySalt = 0xd1b54a32d192ed03ull;

/** Bytes of the duplexed header area at the front of each slot. */
constexpr u32 kLogHeaderBytes = 32;

/** Slot header states. */
constexpr u32 kSlotEmpty = 0;
constexpr u32 kSlotActive = 1;    // WT undo log; in-place writes underway
constexpr u32 kSlotCommitted = 2; // WB redo log, sealed

u64
mix64(u64 x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

u64
logHeaderWord(u32 seq, u32 entries, u32 state)
{
    return (static_cast<u64>(seq) << 32) |
           (static_cast<u64>(entries & 0xffffu) << 16) | (state & 0xffffu);
}

u64
logEntryWord(sim::Addr a, u32 payload)
{
    return (static_cast<u64>(a) << 32) | payload;
}

u64
logEntryCheck(u32 seq, u64 word)
{
    return mix64(word ^ mix64(seq ^ kLogEntrySalt));
}

void
accumulateIndexStats(const util::EpochIndexStats &s)
{
    g_idx_lookups.fetch_add(s.lookups, std::memory_order_relaxed);
    g_idx_probes.fetch_add(s.probes, std::memory_order_relaxed);
    g_idx_inserts.fetch_add(s.inserts, std::memory_order_relaxed);
    u64 prev = g_idx_max_probe.load(std::memory_order_relaxed);
    while (prev < s.max_probe &&
           !g_idx_max_probe.compare_exchange_weak(
               prev, s.max_probe, std::memory_order_relaxed)) {
    }
}

} // namespace

TxIndexTotals
txIndexTotals()
{
    TxIndexTotals t;
    t.lookups = g_idx_lookups.load(std::memory_order_relaxed);
    t.probes = g_idx_probes.load(std::memory_order_relaxed);
    t.inserts = g_idx_inserts.load(std::memory_order_relaxed);
    t.max_probe = g_idx_max_probe.load(std::memory_order_relaxed);
    return t;
}

DurableTotals
durableTotals()
{
    DurableTotals t;
    t.log_bytes = g_dur_log_bytes.load(std::memory_order_relaxed);
    t.log_appends = g_dur_log_appends.load(std::memory_order_relaxed);
    t.flush_fences = g_dur_fences.load(std::memory_order_relaxed);
    t.durable_commits = g_dur_commits.load(std::memory_order_relaxed);
    t.recoveries = g_dur_recoveries.load(std::memory_order_relaxed);
    t.log_redone = g_dur_redone.load(std::memory_order_relaxed);
    t.log_undone = g_dur_undone.load(std::memory_order_relaxed);
    t.log_discarded = g_dur_discarded.load(std::memory_order_relaxed);
    t.torn_logs = g_dur_torn.load(std::memory_order_relaxed);
    return t;
}

BoostedTotals
boostedTotals()
{
    BoostedTotals t;
    t.acquires = g_boost_acquires.load(std::memory_order_relaxed);
    t.waits = g_boost_waits.load(std::memory_order_relaxed);
    t.semantic_undos = g_boost_undos.load(std::memory_order_relaxed);
    t.false_conflicts_avoided =
        g_boost_avoided.load(std::memory_order_relaxed);
    return t;
}

const char *
stmKindName(StmKind kind)
{
    switch (kind) {
      case StmKind::NOrec: return "NOrec";
      case StmKind::TinyEtlWb: return "Tiny ETLWB";
      case StmKind::TinyEtlWt: return "Tiny ETLWT";
      case StmKind::TinyCtlWb: return "Tiny CTLWB";
      case StmKind::VrEtlWb: return "VR ETLWB";
      case StmKind::VrEtlWt: return "VR ETLWT";
      case StmKind::VrCtlWb: return "VR CTLWB";
      case StmKind::Tl2: return "TL2";
      default: return "?";
    }
}

const std::vector<StmKind> &
allStmKinds()
{
    static const std::vector<StmKind> kinds = {
        StmKind::NOrec,
        StmKind::TinyEtlWb,
        StmKind::TinyEtlWt,
        StmKind::TinyCtlWb,
        StmKind::VrEtlWb,
        StmKind::VrEtlWt,
        StmKind::VrCtlWb,
    };
    return kinds;
}

const std::vector<StmKind> &
allStmKindsExtended()
{
    static const std::vector<StmKind> kinds = [] {
        std::vector<StmKind> all = allStmKinds();
        all.push_back(StmKind::Tl2);
        return all;
    }();
    return kinds;
}

//
// TxHandle
//

u32
TxHandle::read(Addr a)
{
    return stm_.txRead(ctx_, tx_, a);
}

void
TxHandle::write(Addr a, u32 v)
{
    stm_.txWrite(ctx_, tx_, a, v);
}

float
TxHandle::readFloat(Addr a)
{
    return std::bit_cast<float>(read(a));
}

void
TxHandle::writeFloat(Addr a, float v)
{
    write(a, std::bit_cast<u32>(v));
}

void
TxHandle::retry()
{
    stm_.txAbort(ctx_, tx_, AbortReason::UserAbort);
}

//
// Stm base
//

Stm::Stm(sim::Dpu &dpu, const StmConfig &cfg)
    : dpu_(dpu), cfg_(cfg)
{
    fatalIf(cfg.num_tasklets == 0, "StmConfig::num_tasklets must be > 0");
    fatalIf(cfg.num_tasklets > dpu.config().max_tasklets,
            "StmConfig::num_tasklets exceeds the DPU tasklet count");
    fatalIf(cfg.durable && cfg.serial_fallback_after != 0,
            "durable mode is incompatible with serial_fallback_after: "
            "irrevocable transactions write in place without a log");
    fatalIf(cfg.durable && cfg.boosting,
            "durable mode is incompatible with boosting: semantic "
            "operations have no word-level redo image");
    fatalIf(cfg.durable && cfg.external_layout,
            "durable mode is incompatible with the kind-switch wrapper "
            "(external_layout): no instance would own the log region");
    descriptors_.reserve(cfg.num_tasklets);
    for (unsigned t = 0; t < cfg.num_tasklets; ++t)
        descriptors_.emplace_back(t, cfg.max_read_set, cfg.max_write_set);
}

Stm::~Stm()
{
    dpu_.removeDiagnostic(this);
    for (const auto &tx : descriptors_)
        accumulateIndexStats(tx.indexStats());
    g_boost_acquires.fetch_add(stats_.boosted_acquires,
                               std::memory_order_relaxed);
    g_boost_waits.fetch_add(stats_.boosted_waits,
                            std::memory_order_relaxed);
    g_boost_undos.fetch_add(stats_.semantic_undos,
                            std::memory_order_relaxed);
    g_boost_avoided.fetch_add(stats_.false_conflicts_avoided,
                              std::memory_order_relaxed);
    g_dur_log_bytes.fetch_add(stats_.log_bytes, std::memory_order_relaxed);
    g_dur_log_appends.fetch_add(stats_.log_appends,
                                std::memory_order_relaxed);
    g_dur_fences.fetch_add(stats_.flush_fences, std::memory_order_relaxed);
    g_dur_commits.fetch_add(stats_.durable_commits,
                            std::memory_order_relaxed);
    g_dur_recoveries.fetch_add(stats_.recoveries,
                               std::memory_order_relaxed);
    g_dur_redone.fetch_add(stats_.log_redone, std::memory_order_relaxed);
    g_dur_undone.fetch_add(stats_.log_undone, std::memory_order_relaxed);
    g_dur_discarded.fetch_add(stats_.log_discarded,
                              std::memory_order_relaxed);
    g_dur_torn.fetch_add(stats_.torn_logs, std::memory_order_relaxed);
}

TxDescriptor &
Stm::descriptor(unsigned tasklet)
{
    panicIf(tasklet >= descriptors_.size(),
            "no descriptor for tasklet ", tasklet);
    return descriptors_[tasklet];
}

void
Stm::finalizeLayout()
{
    panicIf(layout_done_, "finalizeLayout called twice");
    reserveMetadata();
    layout_done_ = true;
    // The watchdog's diagnostic dump includes this instance's held
    // ownership records and abort histogram. Registered here (not the
    // base ctor) so the virtuals dispatch on the concrete class.
    dpu_.addDiagnostic(this,
                       [this](std::ostream &os) { dumpDiagnostics(os); });
}

void
Stm::dumpDiagnostics(std::ostream &os) const
{
    os << "  [stm " << name() << "] held ownership records: "
       << heldOwnershipCount() << "\n";
    dumpOwnership(os);
    os << "    commits=" << stats_.commits << " aborts=" << stats_.aborts
       << " escalations=" << stats_.escalations
       << " serial_commits=" << stats_.serial_commits << "\n";
    os << "    aborts by reason:";
    for (size_t r = 0; r < kNumAbortReasons; ++r) {
        if (stats_.abort_reasons[r] == 0)
            continue;
        os << " " << abortReasonName(static_cast<AbortReason>(r)) << "="
           << stats_.abort_reasons[r];
    }
    os << "\n";
}

u32
Stm::computedLockTableEntries() const
{
    u32 entries = cfg_.lock_table_entries_override
        ? cfg_.lock_table_entries_override
        : static_cast<u32>(nextPow2(cfg_.data_words_hint));
    entries = std::max(entries, cfg_.min_lock_table_entries);
    entries = std::min(entries, cfg_.max_lock_table_entries);
    fatalIf(!isPow2(entries), "lock-table size must be a power of two");
    return entries;
}

void
Stm::initLockAdaptState()
{
    if (lock_table_entries_ == 0)
        return;
    if (cfg_.lock_heat || hot_capacity_ != 0)
        lock_heat_.assign(lock_table_entries_, 0);
    if (hot_capacity_ != 0)
        hot_state_.assign(lock_table_entries_, kCold);
}

void
Stm::reserveMetadata()
{
    if (cfg_.external_layout) {
        // An enclosing SwitchableStm reserved the maximum footprint
        // across its candidates once; this instance only derives the
        // geometry its lock indexing and charging need.
        if (lockTableEntryBytes() == 0) {
            lock_table_entries_ = 0;
            lock_table_tier_ = toSimTier(cfg_.metadata_tier);
            return;
        }
        lock_table_entries_ = computedLockTableEntries();
        lock_table_tier_ = cfg_.external_table_tier;
        if (lock_table_tier_ != Tier::Wram)
            hot_capacity_ =
                std::min(cfg_.hot_lock_capacity, lock_table_entries_);
        initLockAdaptState();
        return;
    }

    // Per-tasklet descriptors (read set + write set + lock list).
    const size_t per_tasklet =
        static_cast<size_t>(cfg_.max_read_set) * readEntryBytes() +
        static_cast<size_t>(cfg_.max_write_set) * writeEntryBytes() +
        (static_cast<size_t>(cfg_.max_read_set) + cfg_.max_write_set) * 4 +
        64; // descriptor header (snapshot bounds, counters)
    const size_t sets_bytes = per_tasklet * cfg_.num_tasklets;

    const Tier meta_tier = toSimTier(cfg_.metadata_tier);
    auto &meta_mem = dpu_.memory(meta_tier);
    if (!meta_mem.canAlloc(sets_bytes)) {
        fatal("STM metadata (", sets_bytes, " bytes of read/write sets) ",
              "does not fit in ", sim::tierName(meta_tier));
    }
    meta_mem.alloc(sets_bytes);
    if (meta_tier == Tier::Wram)
        meta_bytes_wram_ += sets_bytes;
    else
        meta_bytes_mram_ += sets_bytes;

    // Durable redo/undo log: one slot per tasklet, always MRAM (the
    // only tier that survives a crash), sized for a full write set.
    // Reserving it also arms the MRAM persist boundary — from here on
    // every MRAM write tracks its unflushed lines (docs/durability.md).
    if (cfg_.durable) {
        log_slot_bytes_ = kLogHeaderBytes +
                          static_cast<size_t>(cfg_.max_write_set) * 16;
        const size_t log_bytes = log_slot_bytes_ * cfg_.num_tasklets;
        if (!dpu_.mram().canAlloc(log_bytes)) {
            fatal("durable log region (", log_bytes,
                  " bytes) does not fit in MRAM");
        }
        log_base_ = dpu_.mram().alloc(log_bytes);
        meta_bytes_mram_ += log_bytes;
        slot_state_.assign(cfg_.num_tasklets, 0);
        slot_seq_.assign(cfg_.num_tasklets, 0);
        slot_flip_.assign(cfg_.num_tasklets, 0);
        dpu_.mram().setPersistTracking(true);
        durable_log_ = true;
    }

    // ORec lock table (absent for NOrec).
    const size_t entry_bytes = lockTableEntryBytes();
    if (entry_bytes == 0) {
        lock_table_entries_ = 0;
        lock_table_tier_ = meta_tier;
        return;
    }

    const u32 entries = computedLockTableEntries();
    lock_table_entries_ = entries;

    const size_t table_bytes = static_cast<size_t>(entries) * entry_bytes;
    Tier table_tier = meta_tier;
    if (!dpu_.memory(table_tier).canAlloc(table_bytes)) {
        // The paper's ArrayBench A case: WRAM metadata requested but the
        // lock table alone exceeds WRAM — spill only the table to MRAM.
        if (table_tier == Tier::Wram && cfg_.allow_lock_table_spill &&
            dpu_.mram().canAlloc(table_bytes)) {
            table_tier = Tier::Mram;
        } else {
            fatal("ORec lock table (", table_bytes, " bytes) does not fit ",
                  "in ", sim::tierName(table_tier));
        }
    }
    dpu_.memory(table_tier).alloc(table_bytes);
    if (table_tier == Tier::Wram)
        meta_bytes_wram_ += table_bytes;
    else
        meta_bytes_mram_ += table_bytes;
    lock_table_tier_ = table_tier;

    // WRAM hot-lock cache (docs/adaptive.md): reserved up front (the
    // bump allocator cannot free); inert when the table is already
    // WRAM-resident or the region does not fit.
    const u32 hot = std::min(cfg_.hot_lock_capacity, entries);
    if (hot != 0 && table_tier != Tier::Wram) {
        const size_t hot_bytes = static_cast<size_t>(hot) * entry_bytes;
        if (dpu_.wram().canAlloc(hot_bytes)) {
            dpu_.wram().alloc(hot_bytes);
            meta_bytes_wram_ += hot_bytes;
            hot_capacity_ = hot;
        }
    }
    initLockAdaptState();
}

void
Stm::metaRead(DpuContext &ctx, size_t bytes)
{
    ctx.touchRead(toSimTier(cfg_.metadata_tier), bytes);
}

void
Stm::metaWrite(DpuContext &ctx, size_t bytes)
{
    ctx.touchWrite(toSimTier(cfg_.metadata_tier), bytes);
}

void
Stm::lockTableRead(DpuContext &ctx, u32 index, size_t bytes)
{
    if (!lock_heat_.empty())
        ++lock_heat_[index];
    if (!hot_state_.empty()) {
        if (hot_state_[index] >= kPromotePending)
            settleMigration(ctx, index);
        if (hot_state_[index] == kHot) {
            ctx.touchRead(Tier::Wram, bytes);
            return;
        }
    }
    ctx.touchRead(lock_table_tier_, bytes);
}

void
Stm::lockTableWrite(DpuContext &ctx, u32 index, size_t bytes)
{
    if (!lock_heat_.empty())
        ++lock_heat_[index];
    if (!hot_state_.empty()) {
        if (hot_state_[index] >= kPromotePending)
            settleMigration(ctx, index);
        if (hot_state_[index] == kHot) {
            ctx.touchWrite(Tier::Wram, bytes);
            return;
        }
    }
    ctx.touchWrite(lock_table_tier_, bytes);
}

void
Stm::settleMigration(DpuContext &ctx, u32 index)
{
    // Lazy settlement: the controller only flips host-side state; the
    // copy itself is charged here, on the first post-decision access,
    // through the same transfer cost model as any other traffic.
    const size_t entry_bytes = lockTableEntryBytes();
    u8 &st = hot_state_[index];
    if (st == kPromotePending) {
        ctx.touchRead(lock_table_tier_, entry_bytes);
        ctx.touchWrite(Tier::Wram, entry_bytes);
        st = kHot;
    } else {
        ctx.touchRead(Tier::Wram, entry_bytes);
        ctx.touchWrite(lock_table_tier_, entry_bytes);
        st = kCold;
    }
    ++stats_.lock_migrations;
}

void
Stm::migrateLocks(const std::vector<u32> &promote,
                  const std::vector<u32> &demote)
{
    if (hot_state_.empty())
        return;
    // Host-only decision flip; cost is charged lazily in settleMigration.
    // Demotions first so a promote/demote pair in the same epoch never
    // transiently exceeds the hot capacity.
    for (u32 i : demote) {
        if (i >= hot_state_.size())
            continue;
        u8 &st = hot_state_[i];
        if (st == kHot)
            st = kDemotePending;
        else if (st == kPromotePending)
            st = kCold; // never copied up: cancellation is free
    }
    for (u32 i : promote) {
        if (i >= hot_state_.size())
            continue;
        u8 &st = hot_state_[i];
        if (st == kCold)
            st = kPromotePending;
        else if (st == kDemotePending)
            st = kHot; // still WRAM-resident: cancel the eviction
    }
}

void
Stm::setBackoffParams(Cycles base, unsigned max_shift)
{
    if (base == 0) {
        cfg_.abort_backoff = false;
        cfg_.abort_backoff_base = 1;
    } else {
        cfg_.abort_backoff = true;
        cfg_.abort_backoff_base = base;
    }
    cfg_.abort_backoff_max_shift = max_shift;
}

void
Stm::setCmWaitPolls(unsigned polls)
{
    cfg_.cm_wait_polls = polls;
}

void
Stm::setCmWaitCycles(Cycles cycles)
{
    cfg_.cm_wait_cycles = cycles;
}

void
Stm::setTaskletLimit(unsigned limit)
{
    tasklet_limit_ = limit;
}

void
Stm::scanCost(DpuContext &ctx, size_t entries, size_t entry_bytes)
{
    if (entries == 0)
        return;
    // Sets are contiguous, so a scan streams them in one DMA (MRAM) or
    // walks them word by word (WRAM).
    metaRead(ctx, entries * entry_bytes);
}

void
Stm::maybeInjectFault(DpuContext &ctx, TxDescriptor &tx, bool can_abort,
                      bool in_tx)
{
    sim::FaultInjector *fi = dpu_.faultInjector();
    // Serial-irrevocable transactions are exempt: they are the
    // termination guarantee under injected abort storms, and undoing
    // their direct writes after a crash would be impossible.
    if (fi == nullptr || tx.irrevocable)
        return;
    switch (fi->onStmOp(tx.tasklet(), can_abort)) {
      case sim::StmFault::None:
        return;
      case sim::StmFault::SpuriousAbort:
        ++stats_.injected_aborts;
        txAbort(ctx, tx, AbortReason::ValidationFail);
      case sim::StmFault::Crash:
        crashOut(ctx, tx, in_tx);
      case sim::StmFault::DpuCrash:
        // Whole-DPU power loss: deliberately NO cleanup — the volatile
        // state simply vanishes. The scheduler drains the run, wipes
        // WRAM, resolves the unflushed MRAM lines and surfaces
        // sim::DpuCrashError from Dpu::run().
        dpu_.beginCrash();
        ctx.setPhase(sim::Phase::NonTx);
        throw sim::DpuCrashException{tx.tasklet()};
    }
}

void
Stm::replaySemanticUndo(DpuContext &ctx, TxDescriptor &tx)
{
    if (tx.semantic_undo.empty())
        return;
    // Log-scan cost: the undo log is contiguous descriptor metadata
    // the simulated machine must stream before replaying (each entry
    // is an op code plus captured operands, ~16 bytes).
    scanCost(ctx, tx.semantic_undo.size(), 16);
    while (!tx.semantic_undo.empty()) {
        SemanticUndo entry = std::move(tx.semantic_undo.back());
        tx.semantic_undo.pop_back();
        if (cfg_.trace) {
            cfg_.trace->record(
                ctx.now(), ctx.taskletId(), TxEvent::SemanticUndo,
                static_cast<u32>(tx.semantic_undo.size()), 0,
                static_cast<StructureId>(entry.structure));
        }
        entry.apply(ctx);
        ++stats_.semantic_undos;
    }
}

void
Stm::releaseSemanticLocks(DpuContext &ctx, TxDescriptor &tx)
{
    while (!tx.semantic_locks.empty()) {
        const SemanticLock l = tx.semantic_locks.back();
        tx.semantic_locks.pop_back();
        l.owner->releaseAbstract(ctx, tx.tasklet(), l.stripe,
                                 l.exclusive);
    }
}

void
Stm::crashOut(DpuContext &ctx, TxDescriptor &tx, bool in_tx)
{
    ++stats_.crashes;
    if (in_tx) {
        // Clean termination mid-transaction: release every lock / ORec
        // the transaction holds, exactly as an abort would — including
        // replaying the semantic undo log so eagerly applied boosted
        // operations do not leak into the committed state.
        doAbortCleanup(ctx, tx);
        replaySemanticUndo(ctx, tx);
        releaseSemanticLocks(ctx, tx);
        --active_txs_;
        ctx.txAccountingAbort();
    }
    ctx.setPhase(sim::Phase::NonTx);
    throw sim::TaskletCrashException{tx.tasklet()};
}

void
Stm::acquireSerialToken(DpuContext &ctx, TxDescriptor &tx)
{
    // Win the global token. The token word is host state guarded by an
    // atomic-register bracket (so the claim itself is a scheduling
    // point with real cost, like any CAS emulation in the library).
    for (;;) {
        ctx.acquire(kSerialTokenKey);
        const bool won = serial_owner_ < 0;
        if (won)
            serial_owner_ = static_cast<int>(tx.tasklet());
        ctx.release(kSerialTokenKey);
        if (won)
            break;
        ctx.delay(cfg_.serial_wait_cycles);
    }
    // Quiesce: new transactions now park in txStart, so waiting for the
    // in-flight count to drain gives this tasklet exclusive access.
    // Every in-flight transaction finishes in bounded simulated time
    // (all STM waits are bounded polls), so this loop terminates.
    while (active_txs_ != 0)
        ctx.delay(cfg_.serial_wait_cycles);
}

void
Stm::releaseSerialToken(DpuContext &ctx, TxDescriptor &tx)
{
    ctx.acquire(kSerialTokenKey);
    panicIf(serial_owner_ != static_cast<int>(tx.tasklet()),
            "serial token released by a non-owner");
    serial_owner_ = -1;
    ctx.release(kSerialTokenKey);
}

void
Stm::txStart(DpuContext &ctx, TxDescriptor &tx)
{
    panicIf(!layout_done_, "STM used before finalizeLayout");
    // Dynamic throttle (docs/adaptive.md): surplus tasklets park at the
    // transaction boundary — the one point where holding no ownership
    // records is guaranteed — until the controller raises the limit.
    // A single always-false compare when throttling is off.
    while (tasklet_limit_ != 0 && tx.tasklet() >= tasklet_limit_) {
        ++stats_.park_polls;
        ctx.delay(cfg_.park_poll_cycles);
    }
    maybeInjectFault(ctx, tx, /*can_abort=*/false, /*in_tx=*/false);
    ctx.txAccountingBegin();
    ctx.setPhase(sim::Phase::TxStart);
    const bool escalate = cfg_.serial_fallback_after != 0
        && tx.retries >= cfg_.serial_fallback_after;
    if (escalate) {
        acquireSerialToken(ctx, tx);
    } else {
        // While a serial-irrevocable transaction is running, new ones
        // park here; a single always-false compare when the fallback
        // is disabled.
        while (serial_owner_ >= 0)
            ctx.delay(cfg_.serial_wait_cycles);
    }
    ++stats_.starts;
    if (cfg_.trace) {
        tx.trace_start_cycle = ctx.now();
        cfg_.trace->record(ctx.now(), ctx.taskletId(), TxEvent::Start);
    }
    ++active_txs_;
    tx.reset();
    if (escalate) {
        tx.irrevocable = true;
        ++stats_.escalations;
    } else {
        doStart(ctx, tx);
    }
    ctx.setPhase(sim::Phase::TxOther);
}

u32
Stm::txRead(DpuContext &ctx, TxDescriptor &tx, Addr a)
{
    maybeInjectFault(ctx, tx, /*can_abort=*/true, /*in_tx=*/true);
    ctx.setPhase(sim::Phase::TxRead);
    const u32 v = tx.irrevocable ? ctx.read32(a) : doRead(ctx, tx, a);
    ++stats_.reads;
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(), TxEvent::Read, a,
                           0, static_cast<StructureId>(tx.structure));
    }
    ctx.setPhase(sim::Phase::TxOther);
    return v;
}

void
Stm::txWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v)
{
    maybeInjectFault(ctx, tx, /*can_abort=*/true, /*in_tx=*/true);
    ctx.setPhase(sim::Phase::TxWrite);
    if (tx.irrevocable)
        ctx.write32(a, v); // exclusive access: write in place
    else
        doWrite(ctx, tx, a, v);
    tx.read_only = false;
    ++stats_.writes;
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(), TxEvent::Write, a,
                           0, static_cast<StructureId>(tx.structure));
    }
    ctx.setPhase(sim::Phase::TxOther);
}

void
Stm::txCommit(DpuContext &ctx, TxDescriptor &tx)
{
    maybeInjectFault(ctx, tx, /*can_abort=*/true, /*in_tx=*/true);
    ctx.setPhase(sim::Phase::TxCommit);
    const Cycles commit_begin = cfg_.trace ? ctx.now() : 0;
    if (tx.irrevocable) {
        // Direct writes are already in memory; committing is just
        // handing the token back.
        releaseSerialToken(ctx, tx);
        ++stats_.serial_commits;
    } else {
        doCommit(ctx, tx);
    }
    // Boosted state: the eager writes are now the committed truth;
    // discard the inverse log and hand the abstract locks back.
    if (!tx.semantic_undo.empty())
        tx.semantic_undo.clear();
    if (!tx.semantic_locks.empty())
        releaseSemanticLocks(ctx, tx);
    ++stats_.commits;
    if (cfg_.trace) {
        const Cycles end = ctx.now();
        cfg_.trace->record(end, ctx.taskletId(), TxEvent::Commit,
                           static_cast<u32>(tx.write_set.size()));
        cfg_.trace->noteCommit(end - tx.trace_start_cycle,
                               end - commit_begin, tx.read_set.size(),
                               tx.write_set.size());
    }
    if (tx.read_only)
        ++stats_.read_only_commits;
    tx.retries = 0;
    tx.irrevocable = false;
    --active_txs_;
    dpu_.noteProgress();
    ctx.txAccountingCommit();
    ctx.setPhase(sim::Phase::NonTx);
}

void
Stm::txAbort(DpuContext &ctx, TxDescriptor &tx, AbortReason reason,
             u32 conflict_lock, Addr conflict_addr)
{
    if (tx.irrevocable) {
        // Only TxHandle::retry() can reach here — conflict aborts are
        // impossible in serial mode and injection is suppressed. The
        // direct writes cannot be undone, so this is a misuse, not a
        // recoverable state.
        panic("TxHandle::retry() inside a serial-irrevocable transaction; "
              "serial_fallback_after is incompatible with retry()-based "
              "atomic blocks");
    }
    doAbortCleanup(ctx, tx);
    // Word-level rollback done; now undo the eagerly applied boosted
    // operations (LIFO, abstract locks still held) and release.
    replaySemanticUndo(ctx, tx);
    releaseSemanticLocks(ctx, tx);
    ++stats_.aborts;
    ++stats_.abort_reasons[static_cast<size_t>(reason)];
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(), TxEvent::Abort,
                           static_cast<u32>(reason), conflict_addr,
                           static_cast<StructureId>(tx.structure));
        cfg_.trace->noteAbort(reason, conflict_lock,
                              static_cast<StructureId>(tx.structure));
    }
    ++tx.retries;
    --active_txs_;
    ctx.txAccountingAbort();
    if (cfg_.abort_backoff) {
        // Randomized exponential back-off: breaks deterministic
        // abort-retry lockstep between symmetric tasklets.
        const unsigned shift = static_cast<unsigned>(
            std::min<u64>(tx.retries, cfg_.abort_backoff_max_shift));
        const Cycles window = cfg_.abort_backoff_base << shift;
        const Cycles d = ctx.rng().range(1, window);
        stats_.backoff_cycles += d;
        ctx.setPhase(sim::Phase::Wasted);
        ctx.delay(d);
    }
    ctx.setPhase(sim::Phase::NonTx);
    throw TxAbortException{reason};
}

//
// Durable commit protocol (docs/durability.md)
//

void
Stm::writeLogHeader(DpuContext &ctx, unsigned tasklet, u32 seq,
                    u32 entries, u32 state)
{
    // Ping-pong between the two header copies: the previous state is
    // never overwritten, so a crash that tears this (unflushed) copy
    // always leaves the other copy — flushed by an earlier fence —
    // readable. Recovery picks the valid copy with the larger
    // (seq, entries) pair.
    const u32 off = logSlotBase(tasklet) + 16u * slot_flip_[tasklet];
    slot_flip_[tasklet] ^= 1;
    u64 rec[2];
    rec[0] = logHeaderWord(seq, entries, state);
    rec[1] = mix64(rec[0] ^ kLogHeaderSalt);
    ctx.writeBlock(sim::makeAddr(Tier::Mram, off), rec, 16);
}

void
Stm::durableFence(DpuContext &ctx)
{
    const size_t lines = dpu_.mram().pendingPersistLines();
    ctx.flushFence();
    ++stats_.flush_fences;
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(), TxEvent::FlushFence,
                           static_cast<u32>(lines));
    }
}

void
Stm::durableCommitPoint(DpuContext &ctx, TxDescriptor &tx)
{
    if (!durable_log_ || tx.write_set.empty())
        return;
    const unsigned t = tx.tasklet();
    const u32 seq = static_cast<u32>(++durable_seq_);
    const u32 n = static_cast<u32>(tx.write_set.size());
    log_scratch_.resize(static_cast<size_t>(n) * 16);
    u8 *p = log_scratch_.data();
    for (const WriteEntry &e : tx.write_set) {
        fatalIf(sim::addrTier(e.addr) != Tier::Mram,
                "durable transactions require MRAM-resident data: WRAM "
                "address in the write set of a durable commit");
        const u64 w = logEntryWord(e.addr, e.value);
        const u64 c = logEntryCheck(seq, w);
        std::memcpy(p, &w, 8);
        std::memcpy(p + 8, &c, 8);
        p += 16;
    }
    ctx.writeBlock(sim::makeAddr(Tier::Mram, logSlotBase(t) +
                                                 kLogHeaderBytes),
                   log_scratch_.data(), log_scratch_.size());
    writeLogHeader(ctx, t, seq, n, kSlotCommitted);
    ++stats_.log_appends;
    stats_.log_bytes += log_scratch_.size() + 16;
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(), TxEvent::LogAppend,
                           static_cast<u32>(log_scratch_.size() + 16), n);
    }
    // The durability point: redo image + commit record reach the
    // persist boundary before the first in-place write exists.
    durableFence(ctx);
    ++stats_.durable_commits;
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(),
                           TxEvent::DurableCommit, seq);
    }
    slot_state_[t] = kSlotCommitted;
    slot_seq_[t] = seq;
}

void
Stm::durableAfterApply(DpuContext &ctx, TxDescriptor &tx)
{
    const unsigned t = tx.tasklet();
    if (!durable_log_ || slot_state_[t] != kSlotCommitted)
        return;
    // Flush the applied data before the record can be retired: the
    // truncation must never become durable while a data line the
    // record covers is still unflushed. The truncation itself stays
    // unfenced — if it is lost, recovery merely re-applies committed
    // values (idempotent); any later fence on this DPU flushes it.
    durableFence(ctx);
    writeLogHeader(ctx, t, static_cast<u32>(++durable_seq_), 0,
                   kSlotEmpty);
    slot_state_[t] = kSlotEmpty;
}

void
Stm::durableWalBeforeWrite(DpuContext &ctx, TxDescriptor &tx, Addr a,
                           u32 old_value)
{
    if (!durable_log_)
        return;
    if (tx.findWrite(a) >= 0)
        return; // already undo-logged (and fenced) by the first write
    fatalIf(sim::addrTier(a) != Tier::Mram,
            "durable transactions require MRAM-resident data: "
            "write-through store to a WRAM address");
    const unsigned t = tx.tasklet();
    const u32 n = static_cast<u32>(tx.write_set.size());
    if (n >= cfg_.max_write_set)
        return; // let pushWrite report the overflow
    if (slot_state_[t] != kSlotActive)
        slot_seq_[t] = static_cast<u32>(++durable_seq_);
    const u32 seq = slot_seq_[t];
    u64 rec[2];
    rec[0] = logEntryWord(a, old_value);
    rec[1] = logEntryCheck(seq, rec[0]);
    ctx.writeBlock(sim::makeAddr(Tier::Mram, logSlotBase(t) +
                                                 kLogHeaderBytes + n * 16),
                   rec, 16);
    writeLogHeader(ctx, t, seq, n + 1, kSlotActive);
    ++stats_.log_appends;
    stats_.log_bytes += 32; // entry + header rewrite
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(), TxEvent::LogAppend,
                           32, 1);
    }
    // Write-ahead rule: the undo entry is durable before the in-place
    // write that it covers can exist.
    durableFence(ctx);
    slot_state_[t] = kSlotActive;
}

void
Stm::durableCommitInPlace(DpuContext &ctx, TxDescriptor &tx)
{
    const unsigned t = tx.tasklet();
    if (!durable_log_ || slot_state_[t] != kSlotActive)
        return;
    // The durability point of a write-through commit: the in-place
    // writes are flushed while the undo log still stands.
    durableFence(ctx);
    ++stats_.durable_commits;
    if (cfg_.trace) {
        cfg_.trace->record(ctx.now(), ctx.taskletId(),
                           TxEvent::DurableCommit, slot_seq_[t]);
    }
    // Retire the undo log and fence the truncation: unlike a stale
    // committed record (idempotent redo), a stale *active* record
    // would undo data the fence above just made durable, so it must
    // be impossible for it to resurface.
    writeLogHeader(ctx, t, static_cast<u32>(++durable_seq_), 0,
                   kSlotEmpty);
    durableFence(ctx);
    slot_state_[t] = kSlotEmpty;
}

void
Stm::durableAbortTruncate(DpuContext &ctx, TxDescriptor &tx)
{
    const unsigned t = tx.tasklet();
    if (!durable_log_ || slot_state_[t] != kSlotActive)
        return;
    // The caller (doAbortCleanup) restored every old value with the
    // ownership records still held; flush those restores, then retire
    // the log. The truncation stays unfenced: a resurrected undo
    // record replays exactly the values the restore just flushed.
    durableFence(ctx);
    writeLogHeader(ctx, t, static_cast<u32>(++durable_seq_), 0,
                   kSlotEmpty);
    slot_state_[t] = kSlotEmpty;
}

RecoveryReport
Stm::recoverAfterCrash()
{
    RecoveryReport r;
    sim::Memory &mram = dpu_.mram();
    if (durable_log_) {
        struct CommittedLog
        {
            u32 seq;
            std::vector<std::pair<Addr, u32>> writes;
        };
        std::vector<CommittedLog> committed;

        for (unsigned t = 0; t < cfg_.num_tasklets; ++t) {
            const u32 base = logSlotBase(t);
            // Decode both header copies; adopt the valid one with the
            // larger (seq, entries) pair. At most one copy is ever
            // unflushed (every header write is covered by the next
            // fence before the other copy is touched again), so a torn
            // copy never hides the slot's last durable state.
            bool have = false, torn = false;
            u32 seq = 0, n = 0, state = kSlotEmpty;
            bool untouched = true;
            for (u32 c = 0; c < 2; ++c) {
                const u64 w0 = mram.read64(base + 16 * c);
                const u64 w1 = mram.read64(base + 16 * c + 8);
                if (w0 == 0 && w1 == 0)
                    continue; // never written
                untouched = false;
                if (w1 != mix64(w0 ^ kLogHeaderSalt)) {
                    torn = true; // an unflushed header write, resolved torn
                    continue;
                }
                const u32 cseq = static_cast<u32>(w0 >> 32);
                const u32 cn = static_cast<u32>((w0 >> 16) & 0xffffu);
                const u32 cstate = static_cast<u32>(w0 & 0xffffu);
                if (!have || cseq > seq || (cseq == seq && cn > n)) {
                    seq = cseq;
                    n = cn;
                    state = cstate;
                }
                have = true;
            }
            if (untouched)
                continue;
            if (!have || state == kSlotEmpty || n > cfg_.max_write_set) {
                // Truncated slot, or nothing readable: nothing the
                // crash can have torn depends on it (every data write
                // is ordered behind its record's fence).
                if (torn || (have && n > cfg_.max_write_set)) {
                    ++r.torn;
                    ++r.discarded;
                }
                mram.fill(base, 0, kLogHeaderBytes);
                continue;
            }

            // Validate the entries under the header's sequence number.
            std::vector<std::pair<Addr, u32>> writes;
            std::vector<bool> valid(n, false);
            bool all_valid = true;
            for (u32 i = 0; i < n; ++i) {
                const u32 off = base + kLogHeaderBytes + i * 16;
                const u64 ew = mram.read64(off);
                const u64 ec = mram.read64(off + 8);
                if (ec == logEntryCheck(seq, ew)) {
                    valid[i] = true;
                    writes.emplace_back(static_cast<Addr>(ew >> 32),
                                        static_cast<u32>(ew));
                } else {
                    all_valid = false;
                    writes.emplace_back(0, 0);
                }
            }

            if (state == kSlotCommitted) {
                if (all_valid) {
                    // Sealed redo log — including the "luck commit"
                    // case where the crash preceded the fence but every
                    // line happened to survive: the record is
                    // indistinguishable from a fenced one and replaying
                    // it is correct either way.
                    committed.push_back({seq, std::move(writes)});
                } else {
                    // A record that never reached its fence: no
                    // in-place write existed yet, discarding loses
                    // nothing.
                    ++r.torn;
                    ++r.discarded;
                }
            } else { // kSlotActive: write-through undo log
                // A torn entry means its fence — and therefore the
                // in-place write it covers — never happened; skipping
                // it is exactly right. Valid entries are replayed in
                // reverse append order.
                if (!all_valid || torn)
                    ++r.torn;
                bool any = false;
                for (u32 i = n; i-- > 0;) {
                    if (!valid[i])
                        continue;
                    mram.write32(sim::addrOffset(writes[i].first),
                                 writes[i].second);
                    any = true;
                }
                if (any)
                    ++r.undone;
                else
                    ++r.discarded;
            }
            mram.fill(base, 0, kLogHeaderBytes);
        }

        // Redo in commit order. Sequence numbers are assigned with
        // every ownership record held, so this order agrees with the
        // per-address commit order of the crashed run.
        std::sort(committed.begin(), committed.end(),
                  [](const CommittedLog &a, const CommittedLog &b) {
                      return a.seq < b.seq;
                  });
        for (const CommittedLog &log : committed) {
            for (const auto &[addr, value] : log.writes)
                mram.write32(sim::addrOffset(addr), value);
            ++r.redone;
        }

        // Recovery's own writes are host DMA followed by a flush: they
        // are durable before the program restarts.
        mram.fence();

        std::fill(slot_state_.begin(), slot_state_.end(), 0);
        std::fill(slot_seq_.begin(), slot_seq_.end(), 0);
        std::fill(slot_flip_.begin(), slot_flip_.end(), 0);
    }

    // Volatile STM bookkeeping: the host vectors survived the crash,
    // but the transactions they describe did not.
    clearLocksForRecovery();
    for (auto &d : descriptors_) {
        d.reset();
        d.retries = 0;
        d.structure = 0;
    }
    active_txs_ = 0;
    serial_owner_ = -1;

    ++stats_.recoveries;
    stats_.log_redone += r.redone;
    stats_.log_undone += r.undone;
    stats_.log_discarded += r.discarded;
    stats_.torn_logs += r.torn;
    if (cfg_.trace) {
        cfg_.trace->record(dpu_.now(), 0, TxEvent::Recovery, r.redone,
                           r.undone + r.discarded);
    }
    return r;
}

} // namespace pimstm::core
