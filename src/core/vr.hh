/**
 * @file
 * VR — the Visible-Reads STM designed by the paper (§3.2.1), inspired by
 * classic DBMS lock-based concurrency control and adapted to guarantee
 * opacity. Covers the ORec + visible-reads sub-tree of the taxonomy:
 * ETL+WB, ETL+WT and CTL+WB.
 *
 * Every lock-table entry is the 32-bit rw-lock word of Fig. 3 (reader
 * count + 24-bit reader-identity bitmap, or write owner). Reads acquire
 * the rw-lock in read mode immediately — making them visible — so no
 * readset validation is ever needed: writers simply cannot invalidate a
 * location someone is reading. The price is spurious aborts: any
 * incompatible acquisition (including read->write upgrades while other
 * readers are present) aborts immediately to stay deadlock-free.
 *
 * Lock-word RMWs are bracketed by the DPU atomic register, whose
 * hash-aliasing is faithfully modelled.
 */

#ifndef PIMSTM_CORE_VR_HH
#define PIMSTM_CORE_VR_HH

#include <vector>

#include "core/stm.hh"

namespace pimstm::core
{

class VrStm : public Stm
{
  public:
    VrStm(sim::Dpu &dpu, const StmConfig &cfg);

    const char *name() const override;

    bool encounterTimeLocking() const { return etl_; }
    bool writeBack() const { return wb_; }

    /** Raw lock word (tests only). */
    u32 lockWord(u32 index) const { return table_[index]; }

    /** Non-free rw-lock words in the table (0 when quiescent). */
    unsigned heldOwnershipCount() const override;

    void dumpOwnership(std::ostream &os) const override;

  protected:
    void doStart(DpuContext &ctx, TxDescriptor &tx) override;
    u32 doRead(DpuContext &ctx, TxDescriptor &tx, Addr a) override;
    void doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v) override;
    void doCommit(DpuContext &ctx, TxDescriptor &tx) override;
    void doAbortCleanup(DpuContext &ctx, TxDescriptor &tx) override;

    size_t readEntryBytes() const override { return 8; }
    size_t writeEntryBytes() const override { return 16; }
    size_t lockTableEntryBytes() const override { return 4; }

    bool writesInPlace() const override { return !wb_; }

    /** Free every stale rw-lock word after a crash. */
    void
    clearLocksForRecovery() override
    {
        for (u32 &w : table_)
            w = 0;
    }

  private:
    /**
     * Acquire the rw-lock at @p index in read mode. No-op when this
     * tasklet already covers the slot (reader bit set, or write owner).
     * Aborts on a write lock held by another transaction.
     * @param a data address covered by the lock (trace attribution only).
     */
    void readLock(DpuContext &ctx, TxDescriptor &tx, u32 index, Addr a);

    /**
     * Acquire the rw-lock at @p index in write mode, upgrading a sole
     * read lock if needed. Aborts on any incompatible state.
     * @param at_commit selects the abort reason bucket.
     * @param a data address covered by the lock (trace attribution only).
     */
    void writeLock(DpuContext &ctx, TxDescriptor &tx, u32 index,
                   bool at_commit, Addr a);

    /** Release every lock @p tx holds. */
    void releaseAll(DpuContext &ctx, TxDescriptor &tx);

    /** Buffer (WB) or apply (WT) a write. */
    void recordWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v,
                     u32 index);

    bool etl_;
    bool wb_;
    std::vector<u32> table_;
};

} // namespace pimstm::core

#endif // PIMSTM_CORE_VR_HH
