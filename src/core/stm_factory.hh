/**
 * @file
 * Factory: StmKind -> concrete STM instance. This is the runtime
 * analogue of the paper's compile-time algorithm-selection macros, and
 * the entry point sweep harnesses use to iterate the whole taxonomy.
 */

#ifndef PIMSTM_CORE_STM_FACTORY_HH
#define PIMSTM_CORE_STM_FACTORY_HH

#include <memory>

#include "core/stm.hh"

namespace pimstm::core
{

/**
 * Create the STM implementation selected by @p cfg.kind for @p dpu.
 * Throws FatalError when the metadata placement cannot be satisfied
 * (e.g. WRAM metadata that does not fit), which the sweep harnesses
 * catch to reproduce the paper's "not runnable in WRAM" cases.
 */
std::unique_ptr<Stm> makeStm(sim::Dpu &dpu, const StmConfig &cfg);

} // namespace pimstm::core

#endif // PIMSTM_CORE_STM_FACTORY_HH
