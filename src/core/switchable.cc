#include "core/switchable.hh"

#include <algorithm>
#include <ostream>

#include "core/stm_factory.hh"
#include "util/logging.hh"

namespace pimstm::core
{

namespace
{

// Per-kind descriptor / lock-table entry sizes, mirroring the concrete
// classes' overrides (norec.hh / tiny.hh / vr.hh). Static so the router
// can size the shared worst-case reservation before any inner exists.
size_t
readEntryBytesFor(StmKind k)
{
    switch (k) {
      case StmKind::NOrec: return 8;
      case StmKind::VrEtlWb:
      case StmKind::VrEtlWt:
      case StmKind::VrCtlWb: return 8;
      default: return 16; // Tiny family + TL2
    }
}

size_t
writeEntryBytesFor(StmKind k)
{
    switch (k) {
      case StmKind::NOrec: return 8;
      case StmKind::VrEtlWb:
      case StmKind::VrEtlWt:
      case StmKind::VrCtlWb: return 16;
      default: return 24;
    }
}

size_t
lockEntryBytesFor(StmKind k)
{
    switch (k) {
      case StmKind::NOrec: return 0;
      case StmKind::VrEtlWb:
      case StmKind::VrEtlWt:
      case StmKind::VrCtlWb: return 4;
      default: return 8;
    }
}

} // namespace

SwitchableStm::SwitchableStm(sim::Dpu &dpu, const StmConfig &cfg,
                             const std::vector<StmKind> &candidates)
    : Stm(dpu, cfg)
{
    // The serial-irrevocable escalation quiesces inside the inner's
    // start path; a tasklet waiting there would straddle a kind
    // switch (same hazard as the throttle gate, which the router
    // therefore keeps to itself — see setTaskletLimit).
    fatalIf(cfg.serial_fallback_after != 0,
            "live kind switching is incompatible with the "
            "serial-irrevocable fallback");
    kinds_.push_back(cfg.kind);
    for (StmKind k : candidates) {
        if (std::find(kinds_.begin(), kinds_.end(), k) == kinds_.end())
            kinds_.push_back(k);
    }
    for (StmKind k : kinds_) {
        max_read_entry_ = std::max(max_read_entry_, readEntryBytesFor(k));
        max_write_entry_ =
            std::max(max_write_entry_, writeEntryBytesFor(k));
        max_lock_entry_ = std::max(max_lock_entry_, lockEntryBytesFor(k));
    }
    // Reserves descriptors + lock table + hot cache at the maxima above
    // (virtual dispatch lands on this class's overrides).
    finalizeLayout();

    // Construct every candidate against the shared reservation. The
    // inners compute identical lock-table geometry (entry count depends
    // only on the data hint) but reserve no simulated memory.
    StmConfig inner_cfg = cfg;
    inner_cfg.external_layout = true;
    inner_cfg.external_table_tier = lockTableTier();
    inner_cfg.hot_lock_capacity = hotLockCapacity();
    for (StmKind k : kinds_) {
        inner_cfg.kind = k;
        inners_.push_back(makeStm(dpu, inner_cfg));
    }
    current_ = 0;
    cfg_.kind = kinds_[current_];
}

bool
SwitchableStm::requestKindSwitch(StmKind k)
{
    for (size_t i = 0; i < kinds_.size(); ++i) {
        if (kinds_[i] != k)
            continue;
        if (i == current_)
            return false;
        pending_ = static_cast<int>(i);
        return true;
    }
    return false;
}

void
SwitchableStm::performSwitch(DpuContext &ctx)
{
    const size_t from = current_;
    const size_t to = static_cast<size_t>(pending_);
    pending_ = -1;
    // The inner is drained, so every ownership record must have been
    // released by the final commit/abort — a leak here would corrupt
    // the next kind's view of the (shared) data words.
    panicIf(inners_[from]->heldOwnershipCount() != 0,
            "kind switch with ownership records still held by ",
            inners_[from]->name());
    current_ = to;
    cfg_.kind = kinds_[to];
    ++stats_.kind_switches;
    // Metadata translation: stream the old kind's lock table out and
    // initialize the new kind's — both at the resolved table tier.
    const size_t old_bytes =
        static_cast<size_t>(inners_[from]->lockTableEntries()) *
        lockEntryBytesFor(kinds_[from]);
    const size_t new_bytes =
        static_cast<size_t>(inners_[to]->lockTableEntries()) *
        lockEntryBytesFor(kinds_[to]);
    if (old_bytes != 0)
        ctx.touchRead(lockTableTier(), old_bytes);
    if (new_bytes != 0)
        ctx.touchWrite(lockTableTier(), new_bytes);
}

void
SwitchableStm::txStart(DpuContext &ctx, TxDescriptor &tx)
{
    // Dynamic throttle at the router level (setTaskletLimit is not
    // forwarded to the inners): a parked tasklet must not sit inside
    // an inner's start path across a kind switch.
    while (taskletLimit() != 0 && tx.tasklet() >= taskletLimit()) {
        ++stats_.park_polls;
        ctx.delay(cfg_.park_poll_cycles);
    }
    if (pending_ >= 0) {
        // Quiesce: park until the in-flight transactions of the current
        // inner drain (each finishes in bounded simulated time). The
        // first tasklet to observe the drain performs the switch; the
        // pending_ flip is host-side with no scheduling point between
        // the check and the swap, so exactly one tasklet switches.
        while (pending_ >= 0 && inners_[current_]->activeTxCount() != 0)
            ctx.delay(cfg_.serial_wait_cycles);
        if (pending_ >= 0)
            performSwitch(ctx);
    }
    inners_[current_]->txStart(ctx, tx);
}

u32
SwitchableStm::txRead(DpuContext &ctx, TxDescriptor &tx, Addr a)
{
    return inners_[current_]->txRead(ctx, tx, a);
}

void
SwitchableStm::txWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v)
{
    inners_[current_]->txWrite(ctx, tx, a, v);
}

void
SwitchableStm::txCommit(DpuContext &ctx, TxDescriptor &tx)
{
    inners_[current_]->txCommit(ctx, tx);
}

void
SwitchableStm::txAbort(DpuContext &ctx, TxDescriptor &tx,
                       AbortReason reason, u32 conflict_lock,
                       Addr conflict_addr)
{
    inners_[current_]->txAbort(ctx, tx, reason, conflict_lock,
                               conflict_addr);
    __builtin_unreachable(); // txAbort always throws
}

const StmStats &
SwitchableStm::aggregateStats() const
{
    merged_ = stats_;
    for (const auto &in : inners_)
        merged_ += in->stats();
    return merged_;
}

unsigned
SwitchableStm::activeTxCount() const
{
    return inners_[current_]->activeTxCount();
}

void
SwitchableStm::setBackoffParams(Cycles base, unsigned max_shift)
{
    Stm::setBackoffParams(base, max_shift);
    for (auto &in : inners_)
        in->setBackoffParams(base, max_shift);
}

void
SwitchableStm::setCmWaitPolls(unsigned polls)
{
    Stm::setCmWaitPolls(polls);
    for (auto &in : inners_)
        in->setCmWaitPolls(polls);
}

void
SwitchableStm::setCmWaitCycles(Cycles cycles)
{
    Stm::setCmWaitCycles(cycles);
    for (auto &in : inners_)
        in->setCmWaitCycles(cycles);
}

void
SwitchableStm::setTaskletLimit(unsigned limit)
{
    // Router-level only, deliberately NOT forwarded: a tasklet parked
    // inside an inner's txStart gate would straddle a kind switch —
    // it would finish starting on the old inner while its reads and
    // commit route through the new one, corrupting both inners'
    // active-transaction counts. Parking in SwitchableStm::txStart,
    // before any inner is entered, keeps the quiesce sound.
    Stm::setTaskletLimit(limit);
}

const std::vector<u32> &
SwitchableStm::lockHeat() const
{
    heat_merged_.clear();
    for (const auto &in : inners_) {
        const auto &h = in->lockHeat();
        if (h.size() > heat_merged_.size())
            heat_merged_.resize(h.size(), 0);
        for (size_t i = 0; i < h.size(); ++i)
            heat_merged_[i] += h[i];
    }
    return heat_merged_;
}

void
SwitchableStm::migrateLocks(const std::vector<u32> &promote,
                            const std::vector<u32> &demote)
{
    for (auto &in : inners_)
        in->migrateLocks(promote, demote);
}

unsigned
SwitchableStm::heldOwnershipCount() const
{
    unsigned n = 0;
    for (const auto &in : inners_)
        n += in->heldOwnershipCount();
    return n;
}

void
SwitchableStm::dumpOwnership(std::ostream &os) const
{
    for (const auto &in : inners_)
        in->dumpOwnership(os);
}

void
SwitchableStm::doStart(DpuContext &, TxDescriptor &)
{
    panic("SwitchableStm::doStart is unreachable");
}

u32
SwitchableStm::doRead(DpuContext &, TxDescriptor &, Addr)
{
    panic("SwitchableStm::doRead is unreachable");
}

void
SwitchableStm::doWrite(DpuContext &, TxDescriptor &, Addr, u32)
{
    panic("SwitchableStm::doWrite is unreachable");
}

void
SwitchableStm::doCommit(DpuContext &, TxDescriptor &)
{
    panic("SwitchableStm::doCommit is unreachable");
}

void
SwitchableStm::doAbortCleanup(DpuContext &, TxDescriptor &)
{
    panic("SwitchableStm::doAbortCleanup is unreachable");
}

std::unique_ptr<Stm>
makeSwitchableStm(sim::Dpu &dpu, const StmConfig &cfg,
                  const std::vector<StmKind> &candidates)
{
    return std::make_unique<SwitchableStm>(dpu, cfg, candidates);
}

} // namespace pimstm::core
