#include "core/vr.hh"

#include <ostream>

#include "core/rw_lock.hh"
#include "util/logging.hh"

namespace pimstm::core
{

VrStm::VrStm(sim::Dpu &dpu, const StmConfig &cfg)
    : Stm(dpu, cfg)
{
    switch (cfg.kind) {
      case StmKind::VrEtlWb:
        etl_ = true;
        wb_ = true;
        break;
      case StmKind::VrEtlWt:
        etl_ = true;
        wb_ = false;
        break;
      case StmKind::VrCtlWb:
        etl_ = false;
        wb_ = true;
        break;
      default:
        fatal("VrStm constructed with non-VR kind");
    }
    finalizeLayout();
    table_.assign(lockTableEntries(), rwlock::Free);
}

const char *
VrStm::name() const
{
    if (etl_)
        return wb_ ? "VR ETLWB" : "VR ETLWT";
    return "VR CTLWB";
}

void
VrStm::doStart(DpuContext &, TxDescriptor &)
{
    // No snapshot, no clock: visible reads need no start bookkeeping.
}

void
VrStm::readLock(DpuContext &ctx, TxDescriptor &tx, u32 index, Addr a)
{
    const unsigned me = tx.tasklet();
    unsigned poll = 0;
retry:
    ctx.acquire(index);
    lockTableRead(ctx, index, 4);
    const u32 w = table_[index];

    if (rwlock::isWrite(w)) {
        const bool mine = rwlock::writeOwner(w) == me;
        ctx.release(index);
        if (mine)
            return; // our write lock subsumes read permission
        if (poll < cfg_.cm_wait_polls) {
            // Wait-on-contention: poll the writer a bounded number of
            // times before aborting.
            ++poll;
            traceLockWait(ctx, index, cfg_.cm_wait_cycles);
            ctx.delay(cfg_.cm_wait_cycles);
            goto retry;
        }
        txAbort(ctx, tx, AbortReason::ReadConflict, index, a);
    }
    if (rwlock::hasReader(w, me)) {
        ctx.release(index);
        return; // already visible — the reader bitmap spares re-locking
    }
    table_[index] = rwlock::addReader(w, me);
    lockTableWrite(ctx, index, 4);
    ctx.release(index);
    tx.locks.push_back({index, false});
    traceLockAcquire(ctx, index, poll * u64{cfg_.cm_wait_cycles});
}

void
VrStm::writeLock(DpuContext &ctx, TxDescriptor &tx, u32 index,
                 bool at_commit, Addr a)
{
    const unsigned me = tx.tasklet();
    unsigned poll = 0;
retry:
    ctx.acquire(index);
    lockTableRead(ctx, index, 4);
    const u32 w = table_[index];

    if (rwlock::isWrite(w)) {
        const bool mine = rwlock::writeOwner(w) == me;
        ctx.release(index);
        if (mine)
            return;
        if (poll < cfg_.cm_wait_polls) {
            ++poll;
            traceLockWait(ctx, index, cfg_.cm_wait_cycles);
            ctx.delay(cfg_.cm_wait_cycles);
            goto retry;
        }
        txAbort(ctx, tx,
                at_commit ? AbortReason::CommitConflict
                          : AbortReason::WriteConflict,
                index, a);
    }
    if (rwlock::isFree(w)) {
        table_[index] = rwlock::makeWrite(me);
        lockTableWrite(ctx, index, 4);
        ctx.release(index);
        tx.locks.push_back({index, true});
        traceLockAcquire(ctx, index, poll * u64{cfg_.cm_wait_cycles});
        return;
    }
    // Read mode: upgrade only if we are the sole reader; otherwise
    // abort immediately (deadlock avoidance, §3.2.1 — the source of
    // VR's spurious aborts under contention).
    if (rwlock::soleReader(w, me)) {
        table_[index] = rwlock::makeWrite(me);
        lockTableWrite(ctx, index, 4);
        ctx.release(index);
        for (auto &l : tx.locks) {
            if (l.index == index) {
                l.write_mode = true;
                return;
            }
        }
        panic("upgraded a read lock that was not recorded");
    }
    const bool i_am_reader = rwlock::hasReader(w, me);
    ctx.release(index);
    txAbort(ctx, tx,
            i_am_reader ? AbortReason::UpgradeConflict
                        : (at_commit ? AbortReason::CommitConflict
                                     : AbortReason::WriteConflict),
            index, a);
}

void
VrStm::releaseAll(DpuContext &ctx, TxDescriptor &tx)
{
    const unsigned me = tx.tasklet();
    for (const auto &l : tx.locks) {
        ctx.acquire(l.index);
        lockTableRead(ctx, l.index, 4);
        const u32 w = table_[l.index];
        if (rwlock::isWrite(w)) {
            panicIf(rwlock::writeOwner(w) != me,
                    "releasing a write lock we do not own");
            table_[l.index] = rwlock::Free;
        } else {
            panicIf(!rwlock::hasReader(w, me),
                    "releasing a read lock we do not hold");
            table_[l.index] = rwlock::removeReader(w, me);
        }
        lockTableWrite(ctx, l.index, 4);
        ctx.release(l.index);
    }
    tx.locks.clear();
}

u32
VrStm::doRead(DpuContext &ctx, TxDescriptor &tx, Addr a)
{
    const u32 index = lockIndexFor(a);
    readLock(ctx, tx, index, a);

    if (wb_ && !tx.write_set.empty()) {
        // Write-back: our own pending write must win. With ETL we only
        // need to scan when we hold the slot in write mode, which the
        // reader bitmap / owner check told us for free; CTL buffers
        // writes without locks, so it must always scan.
        bool might_have_written = !etl_;
        if (etl_) {
            const u32 w = table_[index];
            might_have_written = rwlock::isWrite(w) &&
                                 rwlock::writeOwner(w) == tx.tasklet();
        }
        if (might_have_written) {
            scanCost(ctx, tx.write_set.size(), writeEntryBytes());
            const int i = tx.findWrite(a);
            if (i >= 0)
                return tx.write_set[static_cast<size_t>(i)].value;
        }
    }
    // Visible read: the read lock protects the location until commit,
    // so no validation is ever needed.
    return ctx.read32(a);
}

void
VrStm::recordWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v,
                   u32 index)
{
    scanCost(ctx, tx.write_set.size(), writeEntryBytes());
    const int i = tx.findWrite(a);
    if (i >= 0) {
        tx.write_set[static_cast<size_t>(i)].value = v;
        metaWrite(ctx, writeEntryBytes());
        if (!wb_)
            ctx.write32(a, v);
        return;
    }
    WriteEntry e;
    e.addr = a;
    e.value = v;
    e.lock_index = index;
    if (!wb_) {
        e.old_value = ctx.read32(a);
        // Write-ahead rule (no-op unless durable): the undo entry is
        // fenced before the in-place write below, with the write lock
        // held.
        durableWalBeforeWrite(ctx, tx, a, e.old_value);
    }
    tx.pushWrite(e);
    metaWrite(ctx, writeEntryBytes());
    if (!wb_)
        ctx.write32(a, v);
}

void
VrStm::doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v)
{
    const u32 index = lockIndexFor(a);
    if (etl_)
        writeLock(ctx, tx, index, false, a);
    recordWrite(ctx, tx, a, v, index);
}

void
VrStm::doCommit(DpuContext &ctx, TxDescriptor &tx)
{
    if (!etl_) {
        // Commit-time locking: upgrade/acquire write locks for the
        // whole write set now.
        for (const auto &e : tx.write_set)
            writeLock(ctx, tx, e.lock_index, true, e.addr);
    }
    if (wb_ && !tx.write_set.empty()) {
        // Durability point (no-op unless durable): every write lock is
        // held, visible reads need no validation.
        durableCommitPoint(ctx, tx);
        scanCost(ctx, tx.write_set.size(), writeEntryBytes());
        for (const auto &e : tx.write_set)
            ctx.write32(e.addr, e.value);
        durableAfterApply(ctx, tx);
    } else if (!wb_) {
        // WT durability point: in-place writes flushed, undo retired,
        // before any rw-lock is released.
        durableCommitInPlace(ctx, tx);
    }
    releaseAll(ctx, tx);
}

void
VrStm::doAbortCleanup(DpuContext &ctx, TxDescriptor &tx)
{
    if (!wb_) {
        for (auto it = tx.write_set.rbegin(); it != tx.write_set.rend();
             ++it) {
            ctx.write32(it->addr, it->old_value);
        }
        // Flush the restores and retire the undo log while the write
        // locks are still held (no-op unless durable).
        durableAbortTruncate(ctx, tx);
    }
    releaseAll(ctx, tx);
}

unsigned
VrStm::heldOwnershipCount() const
{
    unsigned held = 0;
    for (u32 w : table_)
        held += rwlock::isFree(w) ? 0 : 1;
    return held;
}

void
VrStm::dumpOwnership(std::ostream &os) const
{
    unsigned listed = 0;
    for (u32 i = 0; i < table_.size() && listed < 16; ++i) {
        const u32 w = table_[i];
        if (rwlock::isFree(w))
            continue;
        os << "    rwlock " << i << ": ";
        if (rwlock::isWrite(w))
            os << "write-owned by tasklet " << rwlock::writeOwner(w);
        else
            os << rwlock::readerCount(w) << " reader(s)";
        os << "\n";
        ++listed;
    }
}

} // namespace pimstm::core
