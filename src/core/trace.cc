#include "core/trace.hh"

#include <algorithm>
#include <mutex>
#include <string>

namespace pimstm::core
{

//
// Text dump
//

void
TraceBuffer::printRecord(std::ostream &os, const TraceRecord &r)
{
    os << r.time << " t" << static_cast<unsigned>(r.tasklet) << " "
       << txEventName(r.event);
    switch (r.event) {
      case TxEvent::Read:
      case TxEvent::Write:
        os << " " << sim::tierName(sim::addrTier(r.arg)) << "+"
           << sim::addrOffset(r.arg);
        break;
      case TxEvent::Abort:
        os << " " << r.arg;
        if (r.arg2 != 0) {
            const auto a = static_cast<sim::Addr>(r.arg2);
            os << " @" << sim::tierName(sim::addrTier(a)) << "+"
               << sim::addrOffset(a);
        }
        break;
      case TxEvent::LockAcquire:
      case TxEvent::LockWait:
        os << " lock=" << r.arg << " wait=" << r.arg2;
        break;
      case TxEvent::BoostAcquire:
      case TxEvent::BoostWait:
        os << " stripe=" << r.arg << " wait=" << r.arg2;
        break;
      case TxEvent::SemanticUndo:
        os << " depth=" << r.arg;
        break;
      case TxEvent::Validate:
        os << " entries=" << r.arg;
        break;
      case TxEvent::SchedStall:
      case TxEvent::SchedWake:
        os << " bit=" << r.arg;
        if (r.event == TxEvent::SchedWake)
            os << " blocked=" << r.arg2;
        break;
      case TxEvent::FaultStall:
      case TxEvent::FaultAcqDelay:
        os << " cycles=" << r.arg;
        break;
      case TxEvent::LogAppend:
        os << " bytes=" << r.arg << " entries=" << r.arg2;
        break;
      case TxEvent::FlushFence:
        os << " lines=" << r.arg;
        break;
      case TxEvent::DurableCommit:
        os << " seq=" << r.arg;
        break;
      case TxEvent::Recovery:
        os << " redone=" << r.arg << " dropped=" << r.arg2;
        break;
      default:
        break;
    }
    if (r.structure != 0) {
        os << " struct="
           << structureName(static_cast<StructureId>(r.structure));
    }
    os << "\n";
}

void
TraceBuffer::dump(std::ostream &os, int tasklet_filter) const
{
    for (const auto &r : snapshot()) {
        if (tasklet_filter >= 0 && r.tasklet != tasklet_filter)
            continue;
        printRecord(os, r);
    }
}

void
TraceBuffer::dumpTail(std::ostream &os, size_t n) const
{
    const auto events = snapshot();
    if (events.empty())
        return;
    const size_t start = events.size() > n ? events.size() - n : 0;
    os << "  last " << (events.size() - start) << " trace records ("
       << dropped_ << " older dropped):\n";
    for (size_t i = start; i < events.size(); ++i) {
        os << "    ";
        printRecord(os, events[i]);
    }
}

//
// Perfetto / chrome://tracing export
//

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Common event prefix: {"pid":..,"tid":..,"ts":..  (caller closes). */
void
evHead(std::ostream &os, bool &first, u32 pid, unsigned tid, Cycles ts)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":" << ts;
}

} // namespace

void
TraceBuffer::writePerfetto(std::ostream &os, u32 pid,
                           const std::string &process_name,
                           bool &first) const
{
    const auto events = snapshot();

    // Process metadata; one thread per tasklet seen in the ring.
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"pid\":" << pid << ",\"ph\":\"M\",\"name\":\"process_name\","
       << "\"args\":{\"name\":\"" << jsonEscape(process_name) << "\"}}";
    bool seen[256] = {};
    for (const auto &r : events) {
        if (seen[r.tasklet])
            continue;
        seen[r.tasklet] = true;
        os << ",\n{\"pid\":" << pid << ",\"tid\":"
           << static_cast<unsigned>(r.tasklet)
           << ",\"ph\":\"M\",\"name\":\"thread_name\","
           << "\"args\":{\"name\":\"tasklet "
           << static_cast<unsigned>(r.tasklet) << "\"}}";
    }

    // Balanced B/E emission: the ring may have dropped a span's B
    // (emit no E then) or hold a B whose E is beyond the end (close it
    // at the final timestamp so the output stays valid and loadable).
    bool tx_open[256] = {};
    bool stall_open[256] = {};
    Cycles last_ts = events.empty() ? 0 : events.back().time;

    for (const auto &r : events) {
        const unsigned tid = r.tasklet;
        switch (r.event) {
          case TxEvent::Start:
            if (tx_open[tid]) { // dropped abort/commit: close first
                evHead(os, first, pid, tid, r.time);
                os << ",\"ph\":\"E\"}";
            }
            tx_open[tid] = true;
            evHead(os, first, pid, tid, r.time);
            os << ",\"ph\":\"B\",\"cat\":\"stm\",\"name\":\"tx\"}";
            break;
          case TxEvent::Commit:
          case TxEvent::Abort:
            if (r.event == TxEvent::Abort) {
                evHead(os, first, pid, tid, r.time);
                os << ",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"stm\","
                   << "\"name\":\"abort\",\"args\":{\"reason\":\""
                   << abortReasonName(static_cast<AbortReason>(r.arg))
                   << "\",\"addr\":" << r.arg2 << ",\"structure\":\""
                   << structureName(static_cast<StructureId>(r.structure))
                   << "\"}}";
            }
            if (tx_open[tid]) {
                tx_open[tid] = false;
                evHead(os, first, pid, tid, r.time);
                os << ",\"ph\":\"E\",\"args\":{\"outcome\":\""
                   << (r.event == TxEvent::Commit ? "commit" : "abort")
                   << "\"}}";
            }
            break;
          case TxEvent::SchedStall:
            if (!stall_open[tid]) {
                stall_open[tid] = true;
                evHead(os, first, pid, tid, r.time);
                os << ",\"ph\":\"B\",\"cat\":\"sched\","
                   << "\"name\":\"atomic stall\",\"args\":{\"bit\":"
                   << r.arg << "}}";
            }
            break;
          case TxEvent::SchedWake:
            if (stall_open[tid]) {
                stall_open[tid] = false;
                evHead(os, first, pid, tid, r.time);
                os << ",\"ph\":\"E\",\"args\":{\"blocked_cycles\":"
                   << r.arg2 << "}}";
            }
            break;
          default:
            // Everything else is an instant on its tasklet's track.
            evHead(os, first, pid, tid, r.time);
            os << ",\"ph\":\"i\",\"s\":\"t\",\"cat\":\""
               << (r.event == TxEvent::Read || r.event == TxEvent::Write
                       ? "data"
                       : (r.event == TxEvent::LockAcquire ||
                          r.event == TxEvent::LockWait ||
                          r.event == TxEvent::Validate ||
                          r.event == TxEvent::BoostAcquire ||
                          r.event == TxEvent::BoostWait ||
                          r.event == TxEvent::SemanticUndo ||
                          r.event == TxEvent::LogAppend ||
                          r.event == TxEvent::FlushFence ||
                          r.event == TxEvent::DurableCommit ||
                          r.event == TxEvent::Recovery
                              ? "stm"
                              : "sched"))
               << "\",\"name\":\"" << txEventName(r.event)
               << "\",\"args\":{\"arg\":" << r.arg << ",\"arg2\":"
               << r.arg2 << "}}";
            break;
        }
    }

    for (unsigned tid = 0; tid < 256; ++tid) {
        if (stall_open[tid]) {
            evHead(os, first, pid, tid, last_ts);
            os << ",\"ph\":\"E\"}";
        }
        if (tx_open[tid]) {
            evHead(os, first, pid, tid, last_ts);
            os << ",\"ph\":\"E\"}";
        }
    }
}

//
// Process-wide totals
//

namespace
{

std::mutex g_trace_mutex;
TraceTotals g_trace_totals;

} // namespace

TraceTotals
traceTotals()
{
    std::lock_guard<std::mutex> lk(g_trace_mutex);
    return g_trace_totals;
}

void
accumulateTraceTotals(const TraceBuffer &trace)
{
    std::lock_guard<std::mutex> lk(g_trace_mutex);
    TraceTotals &t = g_trace_totals;
    ++t.runs;
    for (size_t e = 0; e < kNumTxEvents; ++e)
        t.events[e] += trace.count(static_cast<TxEvent>(e));
    t.dropped += trace.dropped();
    for (size_t r = 0; r < kNumAbortReasons; ++r)
        t.aborts_by_reason[r] += trace.abortsByReason()[r];
    for (size_t s = 0; s < kNumStructures; ++s)
        t.aborts_by_structure[s] += trace.abortsByStructure()[s];
    t.tx_latency.merge(trace.txLatency());
    t.commit_latency.merge(trace.commitLatency());
    t.read_set_size.merge(trace.readSetSize());
    t.write_set_size.merge(trace.writeSetSize());
    const auto &locks = trace.lockContention();
    if (locks.size() > t.locks.size())
        t.locks.resize(locks.size());
    for (size_t i = 0; i < locks.size(); ++i) {
        t.locks[i].acquires += locks[i].acquires;
        t.locks[i].waits += locks[i].waits;
        t.locks[i].wait_cycles += locks[i].wait_cycles;
        t.locks[i].aborts_caused += locks[i].aborts_caused;
    }
}

} // namespace pimstm::core
