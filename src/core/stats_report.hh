/**
 * @file
 * Human-readable reporting of STM + DPU statistics: one-line summaries
 * and full breakdown blocks, shared by the examples and ad-hoc tools so
 * they all present numbers the same way.
 */

#ifndef PIMSTM_CORE_STATS_REPORT_HH
#define PIMSTM_CORE_STATS_REPORT_HH

#include <ostream>
#include <string>

#include "core/stats.hh"
#include "sim/config.hh"
#include "sim/dpu.hh"

namespace pimstm::core
{

/** Render "12.3 Mtx/s" style human-friendly rates. */
std::string formatRate(double per_second);

/** Render "1.23 ms" style durations. */
std::string formatSeconds(double seconds);

/** One line: commits, aborts, abort rate, throughput. */
void printSummaryLine(std::ostream &os, const StmStats &stm,
                      const sim::DpuStats &dpu,
                      const sim::TimingConfig &timing);

/**
 * Full block: the summary line plus abort-reason histogram, operation
 * counters and the per-phase time breakdown (the paper's breakdown
 * bars, as text).
 */
void printReport(std::ostream &os, const StmStats &stm,
                 const sim::DpuStats &dpu,
                 const sim::TimingConfig &timing);

} // namespace pimstm::core

#endif // PIMSTM_CORE_STATS_REPORT_HH
