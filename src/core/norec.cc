#include "core/norec.hh"

#include <ostream>

namespace pimstm::core
{

NOrecStm::NOrecStm(sim::Dpu &dpu, const StmConfig &cfg)
    : Stm(dpu, cfg)
{
    finalizeLayout();
}

void
NOrecStm::doStart(DpuContext &ctx, TxDescriptor &tx)
{
    // Snapshot an even (free) sequence lock. The wait while it is odd
    // is NOrec's built-in contention manager. The trace layer reports
    // the global seqlock as lock index 0.
    for (;;) {
        metaRead(ctx, 8);
        const u64 s = seqlock_;
        if ((s & 1) == 0) {
            tx.snapshot = s;
            return;
        }
        traceLockWait(ctx, kSeqLockTraceIndex,
                      cfg_.norec_start_wait ? cfg_.norec_wait_cycles : 0);
        if (cfg_.norec_start_wait)
            ctx.delay(cfg_.norec_wait_cycles);
        else
            ctx.yield();
    }
}

void
NOrecStm::validateAndExtend(DpuContext &ctx, TxDescriptor &tx)
{
    const auto prev_phase = ctx.phase();
    ctx.setPhase(sim::Phase::TxValidate);
    for (;;) {
        metaRead(ctx, 8);
        const u64 s = seqlock_;
        if (s & 1) {
            traceLockWait(ctx, kSeqLockTraceIndex, cfg_.norec_wait_cycles);
            ctx.delay(cfg_.norec_wait_cycles);
            continue;
        }
        // Value-based validation: every previously-read location must
        // still hold the value this transaction observed.
        ++stats_.validations;
        traceValidate(ctx, tx.read_set.size());
        scanCost(ctx, tx.read_set.size(), readEntryBytes());
        for (const auto &e : tx.read_set) {
            const u32 cur = ctx.read32(e.addr);
            if (cur != e.value) {
                txAbort(ctx, tx, AbortReason::ValidationFail,
                        kSeqLockTraceIndex, e.addr);
            }
        }
        // The snapshot is only good if no commit raced the validation.
        metaRead(ctx, 8);
        if (seqlock_ == s) {
            tx.snapshot = s;
            ctx.setPhase(prev_phase);
            return;
        }
    }
}

u32
NOrecStm::doRead(DpuContext &ctx, TxDescriptor &tx, Addr a)
{
    // Write-back means reads must consult the write set first.
    if (!tx.write_set.empty()) {
        scanCost(ctx, tx.write_set.size(), writeEntryBytes());
        const int w = tx.findWrite(a);
        if (w >= 0)
            return tx.write_set[static_cast<size_t>(w)].value;
    }

    u32 v = ctx.read32(a);
    for (;;) {
        // Compare the global seqlock against the descriptor's snapshot
        // — both live in the metadata tier.
        metaRead(ctx, 16);
        if (seqlock_ == tx.snapshot)
            break;
        // A concurrent commit happened: revalidate, then re-read.
        validateAndExtend(ctx, tx);
        v = ctx.read32(a);
    }

    ReadEntry e;
    e.addr = a;
    e.value = v;
    tx.pushRead(e);
    // Entry plus the descriptor's set-size counter.
    metaWrite(ctx, readEntryBytes() + 8);
    return v;
}

void
NOrecStm::doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v)
{
    scanCost(ctx, tx.write_set.size(), writeEntryBytes());
    const int w = tx.findWrite(a);
    if (w >= 0) {
        tx.write_set[static_cast<size_t>(w)].value = v;
        metaWrite(ctx, writeEntryBytes());
        return;
    }
    WriteEntry e;
    e.addr = a;
    e.value = v;
    tx.pushWrite(e);
    metaWrite(ctx, writeEntryBytes());
}

void
NOrecStm::doCommit(DpuContext &ctx, TxDescriptor &tx)
{
    if (tx.write_set.empty())
        return; // invisible reads + valid snapshot: nothing to do

    // Acquire the sequence lock with the emulated CAS: succeed only if
    // it still equals our snapshot; otherwise revalidate and retry.
    const Cycles acquire_from = cfg_.trace ? ctx.now() : 0;
    bool contended = false;
    for (;;) {
        ctx.acquire(kSeqKey);
        metaRead(ctx, 8);
        if (seqlock_ == tx.snapshot) {
            seqlock_ = tx.snapshot + 1;
            metaWrite(ctx, 8);
            ctx.release(kSeqKey);
            break;
        }
        ctx.release(kSeqKey);
        contended = true;
        validateAndExtend(ctx, tx);
    }
    if (cfg_.trace) {
        // Wait = the whole CAS-retry span (revalidation included);
        // 0 when the seqlock was won on the first attempt.
        traceLockAcquire(ctx, kSeqLockTraceIndex,
                        contended ? ctx.now() - acquire_from : 0);
    }

    // Durability point (no-op unless durable): the redo image and the
    // commit record are sealed while the seqlock is odd, so no other
    // commit can interleave between the record and the write-back.
    durableCommitPoint(ctx, tx);

    // Write back under the (odd) sequence lock.
    scanCost(ctx, tx.write_set.size(), writeEntryBytes());
    for (const auto &e : tx.write_set)
        ctx.write32(e.addr, e.value);

    durableAfterApply(ctx, tx);

    // Publish: single writer, so a plain store suffices.
    seqlock_ = tx.snapshot + 2;
    metaWrite(ctx, 8);
}

void
NOrecStm::doAbortCleanup(DpuContext &, TxDescriptor &)
{
    // Write-back with commit-time locking: nothing to undo or release.
}

void
NOrecStm::dumpOwnership(std::ostream &os) const
{
    os << "    seqlock=" << seqlock_
       << ((seqlock_ & 1) != 0 ? " (held: commit in progress)" : " (free)")
       << "\n";
}

} // namespace pimstm::core
