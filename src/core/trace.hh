/**
 * @file
 * Transaction-level observability: a bounded ring buffer of
 * timestamped per-tasklet events (STM operations, lock traffic and
 * scheduler activity on one simulated clock), plus the aggregations
 * the ring alone cannot answer — a per-lock contention heatmap,
 * log2-bucketed latency/set-size histograms and an abort-attribution
 * table. Attached via StmConfig::trace (STM events) and
 * Dpu::setTraceSink (scheduler events); see docs/observability.md.
 *
 * Debugging concurrency on PIM devices is notoriously hard (no
 * debugger attaches to 24 tasklets in a DRAM chip); a post-mortem
 * event trace of the exact interleaving is the pragmatic substitute,
 * and determinism makes every trace replayable. Everything in this
 * file is host-side: tracing never charges simulated cycles, so a
 * traced run is bitwise identical to an untraced one (CI-gated).
 */

#ifndef PIMSTM_CORE_TRACE_HH
#define PIMSTM_CORE_TRACE_HH

#include <array>
#include <bit>
#include <ostream>
#include <string_view>
#include <vector>

#include "core/stats.hh"
#include "sim/addr.hh"
#include "sim/sched_trace.hh"
#include "util/types.hh"

namespace pimstm::core
{

/**
 * Well-known data-structure identities for per-structure abort
 * attribution (a fixed enum, not a runtime registry, so ids are
 * deterministic across runs and host threads). 0 = "no structure":
 * plain word accesses outside any tagged container.
 */
enum class StructureId : u8
{
    None = 0,
    Map,                ///< TxHashMap / BoostedMap
    Set,                ///< BoostedSet
    Queue,              ///< BoostedQueue
    SkipList,           ///< workloads/skiplist
    VacationTables,     ///< vacation free/price tables
    VacationCustomers,  ///< vacation customer slot table
    KvMap,              ///< distributed_kv per-shard store
    KvPins,             ///< distributed_kv per-shard pin table
    NumStructures,
};

constexpr size_t kNumStructures =
    static_cast<size_t>(StructureId::NumStructures);

constexpr std::string_view
structureName(StructureId s)
{
    switch (s) {
      case StructureId::None: return "none";
      case StructureId::Map: return "map";
      case StructureId::Set: return "set";
      case StructureId::Queue: return "queue";
      case StructureId::SkipList: return "skiplist";
      case StructureId::VacationTables: return "vacation-tables";
      case StructureId::VacationCustomers: return "vacation-customers";
      case StructureId::KvMap: return "kv-map";
      case StructureId::KvPins: return "kv-pins";
      default: return "?";
    }
}

enum class TxEvent : u8
{
    Start = 0,
    Read,
    Write,
    Commit,
    Abort,
    /** ORec / rw-lock / seqlock acquired (arg = lock index,
     * arg2 = cycles spent waiting for it, 0 when uncontended). */
    LockAcquire,
    /** A contended lock was polled without acquiring it yet
     * (arg = lock index, arg2 = cycles this wait charged). */
    LockWait,
    /** Read-set validation / snapshot extension (arg = entries). */
    Validate,
    /** @{ Scheduler events forwarded from sim::SchedTraceSink; arg
     * meanings are per sim::SchedEvent. */
    SchedSwitch,
    SchedStall,
    SchedWake,
    BarrierArrive,
    BarrierRelease,
    FaultStall,
    FaultAcqDelay,
    /** @} */
    /** Abstract lock acquired by a boosted operation (arg = stripe,
     * arg2 = cycles spent waiting for it). */
    BoostAcquire,
    /** A held abstract lock was polled without acquiring it
     * (arg = stripe, arg2 = cycles this wait charged). */
    BoostWait,
    /** One semantic inverse operation replayed on abort
     * (arg = remaining undo-log depth). */
    SemanticUndo,
    /** @{ Durable-transaction events (docs/durability.md). */
    /** Redo/undo entries appended to the MRAM log (arg = bytes,
     * arg2 = entries). */
    LogAppend,
    /** MRAM flush fence issued (arg = lines pushed durable). */
    FlushFence,
    /** Commit record durable — the transaction's persistence point
     * (arg = global durable sequence number). */
    DurableCommit,
    /** Post-crash recovery pass completed (arg = logs redone,
     * arg2 = logs discarded or undone). */
    Recovery,
    /** @} */
    NumEvents,
};

constexpr size_t kNumTxEvents = static_cast<size_t>(TxEvent::NumEvents);

constexpr std::string_view
txEventName(TxEvent e)
{
    switch (e) {
      case TxEvent::Start: return "start";
      case TxEvent::Read: return "read";
      case TxEvent::Write: return "write";
      case TxEvent::Commit: return "commit";
      case TxEvent::Abort: return "abort";
      case TxEvent::LockAcquire: return "lock_acquire";
      case TxEvent::LockWait: return "lock_wait";
      case TxEvent::Validate: return "validate";
      case TxEvent::SchedSwitch: return "sched_switch";
      case TxEvent::SchedStall: return "sched_stall";
      case TxEvent::SchedWake: return "sched_wake";
      case TxEvent::BarrierArrive: return "barrier_arrive";
      case TxEvent::BarrierRelease: return "barrier_release";
      case TxEvent::FaultStall: return "fault_stall";
      case TxEvent::FaultAcqDelay: return "fault_acq_delay";
      case TxEvent::BoostAcquire: return "boost_acquire";
      case TxEvent::BoostWait: return "boost_wait";
      case TxEvent::SemanticUndo: return "semantic_undo";
      case TxEvent::LogAppend: return "log_append";
      case TxEvent::FlushFence: return "flush_fence";
      case TxEvent::DurableCommit: return "durable_commit";
      case TxEvent::Recovery: return "recovery";
      default: return "?";
    }
}

/** Sentinel lock index for aborts not attributable to one lock
 * (e.g. NOrec value validation, injected aborts, user retry()). */
constexpr u32 kNoLockIndex = ~u32{0};

/** One traced event. */
struct TraceRecord
{
    Cycles time = 0;
    u8 tasklet = 0;
    TxEvent event = TxEvent::Start;
    /** Address for Read/Write; abort-reason index for Abort; lock
     * index for LockAcquire/LockWait; see TxEvent per-event notes. */
    u32 arg = 0;
    /** Second operand: conflicting address for Abort, wait cycles for
     * LockAcquire/LockWait, event-specific for scheduler events. */
    u64 arg2 = 0;
    /** Data structure the event happened inside (StructureId; 0 when
     * the event is not attributable to one tagged structure). */
    u8 structure = 0;
};

/**
 * log2-bucketed histogram: bucket i counts values v with
 * bit_width(v) == i, i.e. bucket 0 holds {0} and bucket i >= 1 holds
 * [2^(i-1), 2^i). 48 buckets cover every cycle count the simulator
 * can produce.
 */
struct LogHistogram
{
    static constexpr size_t kBuckets = 48;

    std::array<u64, kBuckets> buckets{};
    u64 count = 0;
    u64 sum = 0;
    u64 min = ~u64{0};
    u64 max = 0;

    static size_t
    bucketOf(u64 v)
    {
        const size_t b = static_cast<size_t>(std::bit_width(v));
        return b < kBuckets ? b : kBuckets - 1;
    }

    /** Lower bound of bucket @p b (0, 1, 2, 4, 8, ...). */
    static u64
    bucketLow(size_t b)
    {
        return b == 0 ? 0 : u64{1} << (b - 1);
    }

    void
    add(u64 v)
    {
        ++buckets[bucketOf(v)];
        ++count;
        sum += v;
        if (v < min)
            min = v;
        if (v > max)
            max = v;
    }

    void
    merge(const LogHistogram &o)
    {
        for (size_t b = 0; b < kBuckets; ++b)
            buckets[b] += o.buckets[b];
        count += o.count;
        sum += o.sum;
        if (o.count != 0) {
            if (o.min < min)
                min = o.min;
            if (o.max > max)
                max = o.max;
        }
    }

    double
    mean() const
    {
        return count > 0
            ? static_cast<double>(sum) / static_cast<double>(count)
            : 0.0;
    }
};

/** Per-lock contention counters (one heatmap cell). NOrec's global
 * seqlock is reported as lock index 0. */
struct LockContention
{
    u64 acquires = 0;     ///< successful acquisitions
    u64 waits = 0;        ///< polls of a lock held by another tx
    u64 wait_cycles = 0;  ///< cycles spent in those polls
    u64 aborts_caused = 0;///< aborts attributed to this lock

    bool
    any() const
    {
        return acquires | waits | wait_cycles | aborts_caused;
    }
};

/**
 * Bounded ring buffer of TraceRecords (oldest entries are dropped)
 * plus the run-lifetime aggregations: the ring answers "what was the
 * interleaving", the aggregates answer "which lock is hot and where
 * did the time go" even after the ring has wrapped.
 */
class TraceBuffer : public sim::SchedTraceSink
{
  public:
    explicit TraceBuffer(size_t capacity = 4096)
        : capacity_(capacity)
    {
        records_.reserve(capacity);
    }

    void
    record(Cycles time, unsigned tasklet, TxEvent event, u32 arg = 0,
           u64 arg2 = 0, StructureId structure = StructureId::None)
    {
        TraceRecord r;
        r.time = time;
        r.tasklet = static_cast<u8>(tasklet);
        r.event = event;
        r.arg = arg;
        r.arg2 = arg2;
        r.structure = static_cast<u8>(structure);
        ++counts_[static_cast<size_t>(event)];
        if (records_.size() < capacity_) {
            records_.push_back(r);
        } else {
            records_[head_] = r;
            head_ = (head_ + 1) % capacity_;
            ++dropped_;
        }
    }

    /** @{ Aggregation entry points, called by the Stm wrappers. */

    /** A lock was acquired after @p wait_cycles of waiting. */
    void
    noteLockAcquire(u32 index, u64 wait_cycles)
    {
        touchLock(index).acquires += 1;
        if (wait_cycles != 0)
            touchLock(index).wait_cycles += wait_cycles;
    }

    /** A held lock was polled without acquiring (one wait round). */
    void
    noteLockWait(u32 index, u64 cycles)
    {
        LockContention &c = touchLock(index);
        ++c.waits;
        c.wait_cycles += cycles;
    }

    /** An abort happened; @p lock is the conflicting lock index or
     * kNoLockIndex when the conflict has no single-lock attribution;
     * @p structure the tagged structure the aborting operation was
     * inside (None when untagged). */
    void
    noteAbort(AbortReason reason, u32 lock,
              StructureId structure = StructureId::None)
    {
        ++aborts_by_reason_[static_cast<size_t>(reason)];
        ++aborts_by_structure_[static_cast<size_t>(structure)];
        if (lock != kNoLockIndex)
            ++touchLock(lock).aborts_caused;
    }

    /** A transaction committed: attempt latency (txStart of the
     * committing attempt to commit end), cycles inside doCommit, and
     * the set sizes at commit. */
    void
    noteCommit(u64 tx_latency, u64 commit_latency, u64 read_set,
               u64 write_set)
    {
        tx_latency_.add(tx_latency);
        commit_latency_.add(commit_latency);
        read_set_size_.add(read_set);
        write_set_size_.add(write_set);
    }
    /** @} */

    /** sim::SchedTraceSink: scheduler events share the ring. */
    void
    schedEvent(Cycles time, unsigned tasklet, sim::SchedEvent e,
               u64 arg, u64 arg2) override
    {
        static constexpr TxEvent kMap[] = {
            TxEvent::SchedSwitch,    TxEvent::SchedStall,
            TxEvent::SchedWake,      TxEvent::BarrierArrive,
            TxEvent::BarrierRelease, TxEvent::FaultStall,
            TxEvent::FaultAcqDelay,
        };
        static_assert(std::size(kMap) == sim::kNumSchedEvents);
        record(time, tasklet, kMap[static_cast<size_t>(e)],
               static_cast<u32>(arg), arg2);
    }

    /** sim::SchedTraceSink: last @p n records, for the watchdog dump. */
    void
    dumpTail(std::ostream &os, size_t n) const override;

    /** Events in chronological order (oldest first). */
    std::vector<TraceRecord>
    snapshot() const
    {
        std::vector<TraceRecord> out;
        out.reserve(records_.size());
        for (size_t i = 0; i < records_.size(); ++i)
            out.push_back(records_[(head_ + i) % records_.size()]);
        return out;
    }

    /** Total events of @p e ever recorded (including dropped). */
    u64
    count(TxEvent e) const
    {
        return counts_[static_cast<size_t>(e)];
    }

    u64 dropped() const { return dropped_; }
    size_t size() const { return records_.size(); }
    size_t capacity() const { return capacity_; }

    /** @{ Aggregate accessors (docs/observability.md semantics). */
    const std::vector<LockContention> &
    lockContention() const
    {
        return lock_contention_;
    }

    const std::array<u64, kNumAbortReasons> &
    abortsByReason() const
    {
        return aborts_by_reason_;
    }

    const std::array<u64, kNumStructures> &
    abortsByStructure() const
    {
        return aborts_by_structure_;
    }

    const LogHistogram &txLatency() const { return tx_latency_; }
    const LogHistogram &commitLatency() const { return commit_latency_; }
    const LogHistogram &readSetSize() const { return read_set_size_; }
    const LogHistogram &writeSetSize() const { return write_set_size_; }
    /** @} */

    void
    clear()
    {
        records_.clear();
        head_ = 0;
        dropped_ = 0;
        counts_.fill(0);
        lock_contention_.clear();
        aborts_by_reason_.fill(0);
        aborts_by_structure_.fill(0);
        tx_latency_ = LogHistogram{};
        commit_latency_ = LogHistogram{};
        read_set_size_ = LogHistogram{};
        write_set_size_ = LogHistogram{};
    }

    /** Dump as "cycle tasklet event arg" lines, optionally filtered
     * to one tasklet (pass -1 for all). */
    void dump(std::ostream &os, int tasklet_filter = -1) const;

    /**
     * Append the ring's events to @p os in Chrome chrome://tracing /
     * Perfetto "JSON array format": one emitted process per traced
     * run (@p pid, named @p process_name), one thread per tasklet.
     * Transactions become B/E duration spans, reads/writes/locks
     * instants, atomic stalls spans closed by their wake event.
     * Timestamps are raw simulated cycles in the "us" field — exact,
     * at the price of the UI's time unit reading "us" for cycles.
     * Emits only the events (comma-separated, @p first tracking
     * whether a leading comma is needed); the caller owns the
     * enclosing "[" ... "]".
     */
    void writePerfetto(std::ostream &os, u32 pid,
                       const std::string &process_name,
                       bool &first) const;

  private:
    static void printRecord(std::ostream &os, const TraceRecord &r);

    /** Heatmap cell for @p index, growing the table on demand (the
     * table is host memory; its simulated twin is the lock table the
     * STM already pays for). */
    LockContention &
    touchLock(u32 index)
    {
        if (index >= lock_contention_.size())
            lock_contention_.resize(static_cast<size_t>(index) + 1);
        return lock_contention_[index];
    }

    size_t capacity_;
    std::vector<TraceRecord> records_;
    size_t head_ = 0;
    u64 dropped_ = 0;
    std::array<u64, kNumTxEvents> counts_{};

    std::vector<LockContention> lock_contention_;
    std::array<u64, kNumAbortReasons> aborts_by_reason_{};
    std::array<u64, kNumStructures> aborts_by_structure_{};
    LogHistogram tx_latency_;
    LogHistogram commit_latency_;
    LogHistogram read_set_size_;
    LogHistogram write_set_size_;
};

/**
 * Process-wide totals of every traced run, accumulated by
 * runtime::runWorkload and exported as the `trace` block of
 * --perf-json (schema in docs/observability.md). Mirrors
 * sim::FaultTotals / core::txIndexTotals.
 */
struct TraceTotals
{
    u64 runs = 0; ///< traced runs folded in
    std::array<u64, kNumTxEvents> events{};
    u64 dropped = 0;
    std::array<u64, kNumAbortReasons> aborts_by_reason{};
    std::array<u64, kNumStructures> aborts_by_structure{};
    LogHistogram tx_latency;
    LogHistogram commit_latency;
    LogHistogram read_set_size;
    LogHistogram write_set_size;
    /** Merged heatmap, indexed by lock index (cross-run: the same
     * index in different runs lands in the same cell). */
    std::vector<LockContention> locks;
};

/** Snapshot of the accumulated totals (thread-safe). */
TraceTotals traceTotals();

/** Fold one run's trace into the process-wide totals (thread-safe). */
void accumulateTraceTotals(const TraceBuffer &trace);

} // namespace pimstm::core

#endif // PIMSTM_CORE_TRACE_HH
