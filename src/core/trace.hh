/**
 * @file
 * Transaction event tracing: an optional bounded ring buffer of
 * timestamped per-tasklet STM events (start/read/write/commit/abort),
 * attached via StmConfig::trace. Debugging concurrency on PIM devices
 * is notoriously hard (no debugger attaches to 24 tasklets in a DRAM
 * chip); a post-mortem event trace of the exact interleaving is the
 * pragmatic substitute, and determinism makes every trace replayable.
 */

#ifndef PIMSTM_CORE_TRACE_HH
#define PIMSTM_CORE_TRACE_HH

#include <array>
#include <ostream>
#include <string_view>
#include <vector>

#include "sim/addr.hh"
#include "util/types.hh"

namespace pimstm::core
{

enum class TxEvent : u8
{
    Start = 0,
    Read,
    Write,
    Commit,
    Abort,
    NumEvents,
};

constexpr size_t kNumTxEvents = static_cast<size_t>(TxEvent::NumEvents);

constexpr std::string_view
txEventName(TxEvent e)
{
    switch (e) {
      case TxEvent::Start: return "start";
      case TxEvent::Read: return "read";
      case TxEvent::Write: return "write";
      case TxEvent::Commit: return "commit";
      case TxEvent::Abort: return "abort";
      default: return "?";
    }
}

/** One traced event. */
struct TraceRecord
{
    Cycles time = 0;
    u8 tasklet = 0;
    TxEvent event = TxEvent::Start;
    /** Address for Read/Write; abort-reason index for Abort. */
    u32 arg = 0;
};

/** Bounded ring buffer of TraceRecords; oldest entries are dropped. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(size_t capacity = 4096)
        : capacity_(capacity)
    {
        records_.reserve(capacity);
    }

    void
    record(Cycles time, unsigned tasklet, TxEvent event, u32 arg = 0)
    {
        TraceRecord r;
        r.time = time;
        r.tasklet = static_cast<u8>(tasklet);
        r.event = event;
        r.arg = arg;
        ++counts_[static_cast<size_t>(event)];
        if (records_.size() < capacity_) {
            records_.push_back(r);
        } else {
            records_[head_] = r;
            head_ = (head_ + 1) % capacity_;
            ++dropped_;
        }
    }

    /** Events in chronological order (oldest first). */
    std::vector<TraceRecord>
    snapshot() const
    {
        std::vector<TraceRecord> out;
        out.reserve(records_.size());
        for (size_t i = 0; i < records_.size(); ++i)
            out.push_back(records_[(head_ + i) % records_.size()]);
        return out;
    }

    /** Total events of @p e ever recorded (including dropped). */
    u64
    count(TxEvent e) const
    {
        return counts_[static_cast<size_t>(e)];
    }

    u64 dropped() const { return dropped_; }
    size_t size() const { return records_.size(); }
    size_t capacity() const { return capacity_; }

    void
    clear()
    {
        records_.clear();
        head_ = 0;
        dropped_ = 0;
        counts_.fill(0);
    }

    /** Dump as "cycle tasklet event arg" lines, optionally filtered
     * to one tasklet (pass -1 for all). */
    void
    dump(std::ostream &os, int tasklet_filter = -1) const
    {
        for (const auto &r : snapshot()) {
            if (tasklet_filter >= 0 && r.tasklet != tasklet_filter)
                continue;
            os << r.time << " t" << static_cast<unsigned>(r.tasklet)
               << " " << txEventName(r.event);
            if (r.event == TxEvent::Read || r.event == TxEvent::Write) {
                os << " " << sim::tierName(sim::addrTier(r.arg)) << "+"
                   << sim::addrOffset(r.arg);
            } else if (r.event == TxEvent::Abort) {
                os << " " << r.arg;
            }
            os << "\n";
        }
    }

  private:
    size_t capacity_;
    std::vector<TraceRecord> records_;
    size_t head_ = 0;
    u64 dropped_ = 0;
    std::array<u64, kNumTxEvents> counts_{};
};

} // namespace pimstm::core

#endif // PIMSTM_CORE_TRACE_HH
