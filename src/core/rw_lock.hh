/**
 * @file
 * The 32-bit read-write lock word of the VR design (Fig. 3 of the
 * paper), as pure encode/decode helpers. The word layout:
 *
 *   bits [1:0]   mode: 00 free, 01 read, 10 write
 *   read mode:   bits [25:2]  = 24-bit reader-identity bitmap
 *                bits [31:26] = reader count (6 bits; UPMEM has at most
 *                               24 concurrent tasklets)
 *   write mode:  bits [31:2]  = owner identity (the paper stores the
 *                               word-aligned address of the owner's
 *                               read set; the tasklet id is an
 *                               equivalent owner token here)
 *
 * Atomicity of read-modify-write on the word is provided by the
 * caller, which brackets the update with an acquire/release on the
 * DPU's atomic register, exactly as on real UPMEM hardware.
 */

#ifndef PIMSTM_CORE_RW_LOCK_HH
#define PIMSTM_CORE_RW_LOCK_HH

#include "util/logging.hh"
#include "util/types.hh"

namespace pimstm::core::rwlock
{

enum Mode : u32
{
    Free = 0u,
    Read = 1u,
    Write = 2u,
};

constexpr u32 kModeMask = 0x3u;
constexpr u32 kReaderBitmapShift = 2;
constexpr u32 kReaderBitmapMask = 0xffffffu; // 24 bits
constexpr u32 kReaderCountShift = 26;
constexpr u32 kReaderCountMask = 0x3fu; // 6 bits
constexpr u32 kWriteOwnerShift = 2;

constexpr u32
mode(u32 w)
{
    return w & kModeMask;
}

constexpr bool
isFree(u32 w)
{
    return mode(w) == Free;
}

constexpr bool
isRead(u32 w)
{
    return mode(w) == Read;
}

constexpr bool
isWrite(u32 w)
{
    return mode(w) == Write;
}

/** Reader count (valid in read mode). */
constexpr u32
readerCount(u32 w)
{
    return (w >> kReaderCountShift) & kReaderCountMask;
}

/** Reader-identity bitmap (valid in read mode). */
constexpr u32
readerBitmap(u32 w)
{
    return (w >> kReaderBitmapShift) & kReaderBitmapMask;
}

/** True iff tasklet @p t holds the lock in read mode. */
constexpr bool
hasReader(u32 w, unsigned t)
{
    return isRead(w) && ((readerBitmap(w) >> t) & 1u);
}

/** Owner token (valid in write mode). */
constexpr u32
writeOwner(u32 w)
{
    return w >> kWriteOwnerShift;
}

/** Encode a read-mode word from a bitmap. */
inline u32
makeRead(u32 bitmap)
{
    u32 count = 0;
    for (u32 b = bitmap; b; b &= b - 1)
        ++count;
    panicIf(count > kReaderCountMask, "rw-lock reader count overflow");
    return (count << kReaderCountShift) |
           ((bitmap & kReaderBitmapMask) << kReaderBitmapShift) | Read;
}

/** Encode a write-mode word for @p owner. */
constexpr u32
makeWrite(u32 owner)
{
    return (owner << kWriteOwnerShift) | Write;
}

/** Add tasklet @p t as a reader (word must be free or read mode). */
inline u32
addReader(u32 w, unsigned t)
{
    panicIf(t >= 24, "tasklet id exceeds the 24-bit reader bitmap");
    panicIf(isWrite(w), "addReader on a write-locked word");
    const u32 bitmap = isRead(w) ? readerBitmap(w) : 0u;
    return makeRead(bitmap | (1u << t));
}

/** Remove tasklet @p t as a reader; returns Free when none remain. */
inline u32
removeReader(u32 w, unsigned t)
{
    panicIf(!isRead(w), "removeReader on a non-read-mode word");
    const u32 bitmap = readerBitmap(w) & ~(1u << t);
    return bitmap == 0 ? static_cast<u32>(Free) : makeRead(bitmap);
}

/** True iff @p t is the *only* reader (upgrade precondition). */
constexpr bool
soleReader(u32 w, unsigned t)
{
    return isRead(w) && readerBitmap(w) == (1u << t);
}

} // namespace pimstm::core::rwlock

#endif // PIMSTM_CORE_RW_LOCK_HH
