/**
 * @file
 * NOrec (Dalessandro, Spear & Scott, PPoPP'10) ported to the (simulated)
 * UPMEM DPU, as in §3.2.1 of the paper.
 *
 * A single global sequence lock serializes the commit phase of update
 * transactions; reads are invisible and consistency is ensured by
 * value-based revalidation of the read set whenever a concurrent commit
 * is detected. Commit-time locking + write-back minimize the time the
 * sequence lock is held. The sequence lock doubles as a contention
 * manager: transactions optionally wait for it to be free before
 * starting (StmConfig::norec_start_wait, ablation A2).
 *
 * The CAS the CPU algorithm uses on the sequence lock does not exist on
 * UPMEM; it is emulated with an acquire/release bracket on the atomic
 * register, as §3.2.1 describes.
 */

#ifndef PIMSTM_CORE_NOREC_HH
#define PIMSTM_CORE_NOREC_HH

#include "core/stm.hh"

namespace pimstm::core
{

class NOrecStm : public Stm
{
  public:
    NOrecStm(sim::Dpu &dpu, const StmConfig &cfg);

    const char *name() const override { return "NOrec"; }

    /** Current sequence-lock value (tests only). */
    u64 seqlock() const { return seqlock_; }

    /** The sequence lock is NOrec's only ownership record: held while
     * odd (a write-back in progress). */
    unsigned
    heldOwnershipCount() const override
    {
        return (seqlock_ & 1) != 0 ? 1 : 0;
    }

    void dumpOwnership(std::ostream &os) const override;

  protected:
    void doStart(DpuContext &ctx, TxDescriptor &tx) override;
    u32 doRead(DpuContext &ctx, TxDescriptor &tx, Addr a) override;
    void doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v) override;
    void doCommit(DpuContext &ctx, TxDescriptor &tx) override;
    void doAbortCleanup(DpuContext &ctx, TxDescriptor &tx) override;

    size_t readEntryBytes() const override { return 8; }  // addr + value
    size_t writeEntryBytes() const override { return 8; } // addr + value
    size_t lockTableEntryBytes() const override { return 0; }

    /** A crash mid-commit leaves the seqlock odd; recovery frees it by
     * advancing to the next even value (the write-back it guarded was
     * redone or discarded from the log, so readers restart cleanly). */
    void
    clearLocksForRecovery() override
    {
        seqlock_ += (seqlock_ & 1);
    }

  private:
    /**
     * Wait for an even (free) sequence lock, validate the read set
     * against current memory values, and adopt the new snapshot.
     * Aborts the transaction on validation failure.
     */
    void validateAndExtend(DpuContext &ctx, TxDescriptor &tx);

    /** Atomic-register key guarding sequence-lock CAS emulation. */
    static constexpr u32 kSeqKey = 0x5e91ccccu;

    /** The trace layer's lock index for the global seqlock (NOrec has
     * no lock table, so contention is attributed to a single cell). */
    static constexpr u32 kSeqLockTraceIndex = 0;

    u64 seqlock_ = 0; // even = free, odd = commit in progress
};

} // namespace pimstm::core

#endif // PIMSTM_CORE_NOREC_HH
