#include "core/stm_factory.hh"

#include "core/norec.hh"
#include "core/tiny.hh"
#include "core/vr.hh"
#include "util/logging.hh"

namespace pimstm::core
{

std::unique_ptr<Stm>
makeStm(sim::Dpu &dpu, const StmConfig &cfg)
{
    switch (cfg.kind) {
      case StmKind::NOrec:
        return std::make_unique<NOrecStm>(dpu, cfg);
      case StmKind::TinyEtlWb:
      case StmKind::TinyEtlWt:
      case StmKind::TinyCtlWb:
      case StmKind::Tl2:
        return std::make_unique<TinyStm>(dpu, cfg);
      case StmKind::VrEtlWb:
      case StmKind::VrEtlWt:
      case StmKind::VrCtlWb:
        return std::make_unique<VrStm>(dpu, cfg);
      default:
        fatal("unknown StmKind ", static_cast<int>(cfg.kind));
    }
}

} // namespace pimstm::core
