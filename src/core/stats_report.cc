#include "core/stats_report.hh"

#include <iomanip>
#include <sstream>

namespace pimstm::core
{

std::string
formatRate(double per_second)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (per_second >= 1e9)
        os << per_second / 1e9 << " Gtx/s";
    else if (per_second >= 1e6)
        os << per_second / 1e6 << " Mtx/s";
    else if (per_second >= 1e3)
        os << per_second / 1e3 << " Ktx/s";
    else
        os << per_second << " tx/s";
    return os.str();
}

std::string
formatSeconds(double seconds)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (seconds >= 1.0)
        os << seconds << " s";
    else if (seconds >= 1e-3)
        os << seconds * 1e3 << " ms";
    else if (seconds >= 1e-6)
        os << seconds * 1e6 << " us";
    else
        os << seconds * 1e9 << " ns";
    return os.str();
}

void
printSummaryLine(std::ostream &os, const StmStats &stm,
                 const sim::DpuStats &dpu,
                 const sim::TimingConfig &timing)
{
    const double seconds = timing.cyclesToSeconds(dpu.total_cycles);
    const double tput =
        seconds > 0 ? static_cast<double>(stm.commits) / seconds : 0;
    os << stm.commits << " commits, " << stm.aborts << " aborts ("
       << std::fixed << std::setprecision(1) << stm.abortRate() * 100
       << "%), " << formatSeconds(seconds) << " simulated, "
       << formatRate(tput) << "\n";
}

void
printReport(std::ostream &os, const StmStats &stm,
            const sim::DpuStats &dpu, const sim::TimingConfig &timing)
{
    printSummaryLine(os, stm, dpu, timing);

    os << "  operations: " << stm.reads << " reads, " << stm.writes
       << " writes, " << stm.validations << " validations, "
       << stm.extensions << " extensions, " << stm.read_only_commits
       << " read-only commits\n";

    if (stm.escalations > 0 || stm.serial_commits > 0 ||
        stm.injected_aborts > 0 || stm.crashes > 0) {
        os << "  robustness: " << stm.escalations
           << " escalations, " << stm.serial_commits
           << " serial commits, " << stm.injected_aborts
           << " injected aborts, " << stm.crashes << " crashes\n";
    }

    if (stm.aborts > 0) {
        os << "  abort reasons:";
        for (size_t r = 0; r < kNumAbortReasons; ++r) {
            if (stm.abort_reasons[r] == 0)
                continue;
            os << " " << abortReasonName(static_cast<AbortReason>(r))
               << "=" << stm.abort_reasons[r];
        }
        os << "\n";
    }

    const auto busy = dpu.busyCycles();
    if (busy > 0) {
        os << "  time breakdown:";
        for (size_t p = 0; p < sim::kNumPhases; ++p) {
            const auto cycles = dpu.phase_cycles[p];
            if (cycles == 0)
                continue;
            os << " " << phaseName(static_cast<sim::Phase>(p)) << "="
               << std::fixed << std::setprecision(1)
               << 100.0 * static_cast<double>(cycles) /
                      static_cast<double>(busy)
               << "%";
        }
        os << "\n";
    }

    os << "  memory: " << dpu.mram_reads << " MRAM reads ("
       << dpu.mram_bytes_read << " B), " << dpu.mram_writes
       << " MRAM writes (" << dpu.mram_bytes_written << " B), "
       << dpu.wram_accesses << " WRAM accesses\n"
       << "  atomics: " << dpu.atomic_acquires << " acquires, "
       << dpu.atomic_stalls << " stalls (" << dpu.atomic_stall_cycles
       << " cycles)\n";
}

} // namespace pimstm::core
