/**
 * @file
 * Public API of the PIM-STM library.
 *
 * PIM-STM provides the abstraction of atomic transactions to code
 * running on a (simulated) UPMEM DPU. Seven STM implementations cover
 * the viable corners of the design taxonomy in Fig. 2 of the paper:
 *
 *   NOrec                 global seqlock, invisible reads, CTL, WB
 *   Tiny  ETLWB/ETLWT/CTLWB   ORecs, invisible reads
 *   VR    ETLWB/ETLWT/CTLWB   ORecs as rw-locks, visible reads
 *
 * Transactions are strictly local to one DPU (the paper's key design
 * choice: inter-DPU reads are ~1000x slower and cannot overlap with
 * computation). STM metadata may live in WRAM (fast, 64 KB) or MRAM
 * (slow, 64 MB); the placement is a per-instance configuration knob —
 * the runtime analogue of the paper's compile-time macros.
 *
 * Typical use from a tasklet body:
 * @code
 *   atomically(stm, ctx, [&](TxHandle &tx) {
 *       u32 v = tx.read(addr);
 *       tx.write(addr, v + 1);
 *   });
 * @endcode
 */

#ifndef PIMSTM_CORE_STM_HH
#define PIMSTM_CORE_STM_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/stats.hh"
#include "core/trace.hh"
#include "core/tx_descriptor.hh"
#include "sim/dpu.hh"
#include "util/types.hh"

namespace pimstm::core
{

using sim::Addr;
using sim::DpuContext;
using sim::Tier;

/** The seven STM implementations of the PIM-STM library. */
enum class StmKind : u8
{
    NOrec = 0,
    TinyEtlWb,
    TinyEtlWt,
    TinyCtlWb,
    VrEtlWb,
    VrEtlWt,
    VrCtlWb,
    /** Extension: classic TL2 (Dice, Shalev & Shavit) — Tiny's CTL+WB
     * design WITHOUT snapshot extension; included to quantify the
     * benefit the paper credits Tiny's extension mechanism with. */
    Tl2,
    NumKinds,
};

constexpr size_t kNumStmKinds = static_cast<size_t>(StmKind::NumKinds);

/** Short display name ("NOrec", "Tiny ETLWB", ...). */
const char *stmKindName(StmKind kind);

/** The paper's seven kinds, in taxonomy order, for sweep harnesses. */
const std::vector<StmKind> &allStmKinds();

/** The paper's seven kinds plus the TL2 extension. */
const std::vector<StmKind> &allStmKindsExtended();

/** Where STM metadata lives (the paper's WRAM-vs-MRAM study axis). */
enum class MetadataTier : u8
{
    Wram,
    Mram,
};

constexpr Tier
toSimTier(MetadataTier t)
{
    return t == MetadataTier::Wram ? Tier::Wram : Tier::Mram;
}

constexpr const char *
metadataTierName(MetadataTier t)
{
    return t == MetadataTier::Wram ? "WRAM" : "MRAM";
}

/** Per-instance STM configuration. */
struct StmConfig
{
    StmKind kind = StmKind::NOrec;
    MetadataTier metadata_tier = MetadataTier::Mram;

    /** Tasklets that will use this instance (sizes the descriptors). */
    unsigned num_tasklets = 1;

    /** Per-tasklet read-set / write-set capacity, in entries. */
    unsigned max_read_set = 256;
    unsigned max_write_set = 64;

    /**
     * Shared-data footprint hint in 32-bit words; the ORec lock table is
     * sized to nextPow2(hint), clamped to [min,max]_lock_table_entries.
     * Ignored by NOrec, which has no lock table.
     */
    u32 data_words_hint = 1024;
    u32 min_lock_table_entries = 64;
    u32 max_lock_table_entries = 64 * 1024;
    /** Non-zero overrides the hint-derived lock-table size (A1). */
    u32 lock_table_entries_override = 0;

    /**
     * When WRAM metadata is requested but the lock table does not fit,
     * spill only the lock table to MRAM (the paper does exactly this
     * for ArrayBench A, appendix A). If false, construction fails.
     */
    bool allow_lock_table_spill = true;

    /** NOrec's wait-until-seqlock-free at start (contention manager).
     * Switchable for the A2 ablation. */
    bool norec_start_wait = true;

    /** Cycles NOrec stalls per poll while the seqlock is held. */
    Cycles norec_wait_cycles = 32;

    /**
     * Randomized exponential back-off after an abort. On real hardware
     * retry timing is jittered by the pipeline and DMA engine; in the
     * deterministic simulator an explicit jitter is required to break
     * symmetric abort-retry lockstep (most visible with VR upgrades).
     */
    bool abort_backoff = true;
    Cycles abort_backoff_base = 16;
    unsigned abort_backoff_max_shift = 12;

    /**
     * Graceful degradation: after this many consecutive aborts of one
     * atomic block, the transaction escalates to serial-irrevocable
     * mode — it acquires a global token, waits for in-flight
     * transactions to drain, then runs with direct (uninstrumented)
     * accesses and cannot abort, guaranteeing termination under abort
     * storms for every STM kind. 0 (the default) disables escalation
     * and preserves the paper's behaviour exactly. Incompatible with
     * TxHandle::retry() inside the escalated block (direct writes
     * cannot be undone); see docs/robustness.md.
     */
    unsigned serial_fallback_after = 0;

    /** Poll interval while waiting for the serial token to free / for
     * in-flight transactions to quiesce. */
    Cycles serial_wait_cycles = 128;

    /** Optional transaction event trace (not owned; may be null). */
    TraceBuffer *trace = nullptr;

    /**
     * Wait-on-contention manager (the taxonomy footnote in §3.2: a
     * plausible but less common design where a transaction waits when
     * it encounters a held lock rather than aborting immediately).
     * When non-zero, ORec-based designs poll a contended lock up to
     * cm_wait_polls times, cm_wait_cycles apart, before giving up and
     * aborting. 0 = the paper's abort-immediately behaviour.
     */
    unsigned cm_wait_polls = 0;
    Cycles cm_wait_cycles = 64;

    /**
     * Transactional boosting (docs/boosting.md): boosted data
     * structures apply operations eagerly under striped abstract locks
     * and log semantic inverse operations instead of routing every
     * word through doRead/doWrite. Off by default; when off, no
     * boosted code path runs and every charge sequence is bitwise
     * identical to a build without the subsystem (CI-gated).
     */
    bool boosting = false;

    /** Polls of a held abstract lock (cm_wait_cycles apart) before the
     * boosted operation gives up and aborts the transaction — the
     * boosting analogue of cm_wait_polls, always on because waiting is
     * the point of abstract locks. */
    unsigned boost_wait_polls = 64;

    /**
     * Durable transactions (docs/durability.md): commits become
     * crash-atomic against injected whole-DPU power loss (fault plan
     * `dpu-crash=OPS`). Write-back kinds seal a redo log with a
     * sequenced commit record and a flush fence before applying in
     * place; write-through kinds undo-log each first write under the
     * write-ahead rule. After a sim::DpuCrashError the host calls
     * Stm::recoverAfterCrash(), which rebuilds a consistent committed
     * state from flushed MRAM alone. Off by default; when off no
     * durable code path runs and every charge sequence is bitwise
     * identical to a build without the subsystem (CI-gated).
     * Incompatible with serial_fallback_after (direct writes bypass
     * the log), boosting (semantic operations have no redo image) and
     * external_layout (the kind-switch wrapper owns no log region).
     */
    bool durable = false;

    /**
     * @{ Online-adaptation knobs (docs/adaptive.md). All default-off:
     * with every knob at its default the charge sequence is bitwise
     * identical to a build without the adaptation subsystem (CI-gated).
     */
    /** Cycles per poll while parked by the dynamic tasklet throttle
     * (Stm::setTaskletLimit). */
    Cycles park_poll_cycles = 512;

    /**
     * Count lock-table accesses per entry into a host-side heat vector
     * (Stm::lockHeat), the signal behind the controller's hot-metadata
     * migration policy. Host-only; implied by hot_lock_capacity.
     */
    bool lock_heat = false;

    /**
     * Capacity, in entries, of the WRAM hot-lock cache used by the
     * hot-metadata migration knob. 0 disables migration and keeps
     * lock-table charging bitwise unchanged. When non-zero and the
     * lock table resolves to MRAM, a WRAM region of capacity × entry
     * bytes is reserved at construction; the knob is inert when the
     * table already lives in WRAM or the region does not fit.
     */
    u32 hot_lock_capacity = 0;

    /**
     * Layout is owned externally: an enclosing SwitchableStm has
     * already reserved the maximum metadata footprint across its
     * candidates, so this instance computes its lock-table geometry
     * (indexing must agree with the router's) but reserves no
     * simulated memory. The resolved table tier is taken from
     * external_table_tier instead of re-running spill resolution.
     */
    bool external_layout = false;
    Tier external_table_tier = Tier::Mram;
    /** @} */
};

/** Thrown (internally) to unwind an aborted transaction to its retry
 * loop. User code should not catch it. */
struct TxAbortException
{
    AbortReason reason;
};

/**
 * Process-wide totals of the transactional-set hash-index probe
 * counters (host-side observability, surfaced via --perf-json). Each
 * Stm instance folds its descriptors' counters in at destruction.
 */
struct TxIndexTotals
{
    u64 lookups = 0;
    u64 probes = 0;
    u64 inserts = 0;
    u64 max_probe = 0;
};

/** Snapshot of the accumulated totals (thread-safe). */
TxIndexTotals txIndexTotals();

/**
 * Process-wide totals of the transactional-boosting counters
 * (host-side observability, the `boosted` block of --perf-json).
 * Folded in by Stm::~Stm from StmStats, like the index totals.
 */
struct BoostedTotals
{
    u64 acquires = 0;
    u64 waits = 0;
    u64 semantic_undos = 0;
    u64 false_conflicts_avoided = 0;
};

/** Snapshot of the accumulated totals (thread-safe). */
BoostedTotals boostedTotals();

/**
 * Process-wide totals of the durable-transaction counters (host-side
 * observability, the `durable` block of --perf-json). Folded in by
 * Stm::~Stm from StmStats, like the boosting totals.
 */
struct DurableTotals
{
    u64 log_bytes = 0;
    u64 log_appends = 0;
    u64 flush_fences = 0;
    u64 durable_commits = 0;
    u64 recoveries = 0;
    u64 log_redone = 0;
    u64 log_undone = 0;
    u64 log_discarded = 0;
    u64 torn_logs = 0;
};

/** Snapshot of the accumulated totals (thread-safe). */
DurableTotals durableTotals();

/** What one Stm::recoverAfterCrash() pass found in the log region. */
struct RecoveryReport
{
    /** Committed (redo) logs re-applied, in commit-sequence order. */
    unsigned redone = 0;
    /** Active (undo) logs rolled back. */
    unsigned undone = 0;
    /** Non-empty slots discarded without replay (a record that never
     * reached its durability fence, so no data write depends on it). */
    unsigned discarded = 0;
    /** Slots holding at least one checksum-failed (torn) record. */
    unsigned torn = 0;
};

class Stm;

/**
 * Handle passed to the body of atomically(): the only sanctioned way to
 * touch shared data inside a transaction.
 */
class TxHandle
{
  public:
    TxHandle(Stm &stm, DpuContext &ctx, TxDescriptor &tx)
        : stm_(stm), ctx_(ctx), tx_(tx)
    {}

    /** Transactional 32-bit read. */
    u32 read(Addr a);

    /** Transactional 32-bit write. */
    void write(Addr a, u32 v);

    /** @{ Float convenience (bit-cast over 32-bit words). */
    float readFloat(Addr a);
    void writeFloat(Addr a, float v);
    /** @} */

    /** Explicitly abort and retry the transaction. */
    [[noreturn]] void retry();

    DpuContext &ctx() { return ctx_; }

    /** @{ Plumbing for the boosted data-structure layer
     * (runtime::AbstractLockManager and friends): boosted operations
     * need the STM (stats, abort entry point, config) and the
     * descriptor (semantic locks + undo log) behind the handle. */
    Stm &stm() { return stm_; }
    TxDescriptor &descriptor() { return tx_; }
    /** @} */

  private:
    Stm &stm_;
    DpuContext &ctx_;
    TxDescriptor &tx_;
};

/**
 * RAII tag: marks the enclosing transaction as operating inside one
 * data structure for the dynamic extent of the scope. Host-only (one
 * byte store each way, no simulated cost); feeds trace events and the
 * per-structure abort heatmap of scripts/trace_report.py.
 */
class StructureScope
{
  public:
    StructureScope(TxDescriptor &tx, StructureId id)
        : tx_(tx), saved_(tx.structure)
    {
        tx_.structure = static_cast<u8>(id);
    }

    ~StructureScope() { tx_.structure = saved_; }

    StructureScope(const StructureScope &) = delete;
    StructureScope &operator=(const StructureScope &) = delete;

  private:
    TxDescriptor &tx_;
    u8 saved_;
};

/**
 * Base class of all seven STM implementations. One instance per DPU;
 * tasklets of that DPU share it. The base class owns the descriptors,
 * the statistics, metadata-tier cost charging and the simulated-memory
 * capacity reservation; subclasses implement the algorithm.
 */
class Stm
{
  public:
    Stm(sim::Dpu &dpu, const StmConfig &cfg);
    virtual ~Stm();

    Stm(const Stm &) = delete;
    Stm &operator=(const Stm &) = delete;

    /** Algorithm display name. */
    virtual const char *name() const = 0;

    StmKind kind() const { return cfg_.kind; }
    const StmConfig &config() const { return cfg_; }
    MetadataTier metadataTier() const { return cfg_.metadata_tier; }

    /** Descriptor of @p tasklet (also reachable via ctx.taskletId()). */
    TxDescriptor &descriptor(unsigned tasklet);

    /**
     * @{ Transaction demarcation; normally used via atomically().
     * Virtual so SwitchableStm can route whole transactions to its
     * current inner implementation; the base bodies carry all the
     * cross-algorithm bookkeeping (stats, faults, serial-irrevocable
     * escalation, boosting unwind, tracing, backoff).
     */
    virtual void txStart(DpuContext &ctx, TxDescriptor &tx);
    virtual u32 txRead(DpuContext &ctx, TxDescriptor &tx, Addr a);
    virtual void txWrite(DpuContext &ctx, TxDescriptor &tx, Addr a,
                         u32 v);
    virtual void txCommit(DpuContext &ctx, TxDescriptor &tx);
    /**
     * Abort the transaction. @p conflict_lock names the lock-table
     * index the conflict was detected on (kNoLockIndex when there is
     * no single-lock attribution — NOrec value validation, injected
     * aborts, user retry()); @p conflict_addr the conflicting data
     * address when known. Both feed the trace layer's abort
     * attribution and cost nothing when tracing is off.
     */
    [[noreturn]] virtual void txAbort(DpuContext &ctx, TxDescriptor &tx,
                                      AbortReason reason,
                                      u32 conflict_lock = kNoLockIndex,
                                      Addr conflict_addr = 0);
    /** @} */

    /** Aggregate statistics across all tasklets of this DPU. */
    const StmStats &stats() const { return stats_; }
    StmStats &stats() { return stats_; }

    /** Statistics including any inner instances: SwitchableStm merges
     * its candidates' counters here; plain instances return stats().
     * Result-assembly code (the driver) must use this overload. */
    virtual const StmStats &aggregateStats() const { return stats_; }

    /** Transactions currently between txStart and commit/abort — the
     * quiesce count the kind-switch protocol drains to zero. */
    virtual unsigned activeTxCount() const { return active_txs_; }

    /**
     * @{ Online reconfiguration hooks (docs/adaptive.md). Host-side
     * mutations of config knobs the hot paths already consult, applied
     * by the epoch controller between scheduling points; SwitchableStm
     * forwards them to every candidate so settings survive switches.
     */
    /** Replace the post-abort backoff parameters. base = 0 disables
     * backoff entirely (no RNG draw per abort). */
    virtual void setBackoffParams(Cycles base, unsigned max_shift);
    /** Replace the wait-on-contention poll budget (0 = abort at once). */
    virtual void setCmWaitPolls(unsigned polls);
    /** Replace the per-poll contention wait. */
    virtual void setCmWaitCycles(Cycles cycles);
    /**
     * Dynamic tasklet throttle: tasklets with id >= @p limit park at
     * their next txStart (polling every park_poll_cycles) until the
     * limit is raised. 0 = off. Parking happens at a scheduler-safe
     * point — never inside a transaction — so no ownership records are
     * held while parked.
     */
    virtual void setTaskletLimit(unsigned limit);
    unsigned taskletLimit() const { return tasklet_limit_; }
    /** @} */

    /**
     * @{ Hot-lock migration between MRAM and WRAM (docs/adaptive.md).
     * The heat vector counts per-entry lock-table accesses (host-side,
     * allocated only when StmConfig enables it — empty means off).
     * migrateLocks records promotion/demotion intents host-side at an
     * epoch boundary; the entry transfer is charged lazily through the
     * simulated cost model on the first subsequent access, keeping the
     * decision itself free and deterministic. Capacity enforcement is
     * the caller's job. SwitchableStm forwards to all candidates.
     */
    virtual const std::vector<u32> &lockHeat() const { return lock_heat_; }
    u32 hotLockCapacity() const { return hot_capacity_; }
    virtual void migrateLocks(const std::vector<u32> &promote,
                              const std::vector<u32> &demote);
    /** Per-entry migration state for tests/diagnostics: 0 cold, 1 hot
     * (WRAM-resident), 2 promote-pending, 3 demote-pending. */
    const std::vector<u8> &hotState() const { return hot_state_; }
    /** @} */

    /** Effective tier of the ORec lock table (may have spilled). */
    Tier lockTableTier() const { return lock_table_tier_; }

    /** Entries in the ORec lock table (0 for NOrec). */
    u32 lockTableEntries() const { return lock_table_entries_; }

    /** Bytes of simulated memory reserved for metadata, per tier. */
    size_t metadataBytesWram() const { return meta_bytes_wram_; }
    size_t metadataBytesMram() const { return meta_bytes_mram_; }

    /**
     * @{ Robustness introspection. The count is the number of ownership
     * records (seqlock / ORecs / rw-lock words) currently held by any
     * transaction — 0 when quiescent, which the crash-injection tests
     * assert after a mid-transaction crash. dumpOwnership appends one
     * line per held record to the watchdog's diagnostic dump.
     */
    virtual unsigned heldOwnershipCount() const { return 0; }
    virtual void dumpOwnership(std::ostream &os) const { (void)os; }
    /** @} */

    /**
     * @{ Durable-transaction surface (docs/durability.md). After an
     * injected whole-DPU crash (sim::DpuCrashError) the host calls
     * recoverAfterCrash before re-running the program: committed redo
     * logs are re-applied in commit order, active undo logs are rolled
     * back, torn records are discarded, every slot is truncated and
     * all volatile STM bookkeeping (ownership records, descriptors,
     * serial token) is reset. Access is raw and untimed — recovery
     * models the host reloading the DPU, not DPU cycles. Idempotent:
     * a second pass finds only empty slots.
     */
    bool durable() const { return cfg_.durable; }
    RecoveryReport recoverAfterCrash();
    /** @} */

  protected:
    /** @{ Algorithm hooks. doCommit/doRead/doWrite may abort by calling
     * txAbort(), which cleans up via doAbortCleanup() and throws. */
    virtual void doStart(DpuContext &ctx, TxDescriptor &tx) = 0;
    virtual u32 doRead(DpuContext &ctx, TxDescriptor &tx, Addr a) = 0;
    virtual void doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a,
                         u32 v) = 0;
    virtual void doCommit(DpuContext &ctx, TxDescriptor &tx) = 0;
    virtual void doAbortCleanup(DpuContext &ctx, TxDescriptor &tx) = 0;

    /** Entry sizes, used for capacity reservation and scan costs. */
    virtual size_t readEntryBytes() const = 0;
    virtual size_t writeEntryBytes() const = 0;

    /** Lock-table entry size (0 = no table, i.e. NOrec). */
    virtual size_t lockTableEntryBytes() const = 0;
    /** @} */

    /** @{ Metadata cost charging at the configured placement. */
    void metaRead(DpuContext &ctx, size_t bytes);
    void metaWrite(DpuContext &ctx, size_t bytes);
    /**
     * Lock-table access cost for entry @p index (may differ from
     * metaRead after spill). Index-aware so the adaptation layer can
     * maintain per-entry heat and charge hot entries at WRAM cost after
     * migration; with heat and migration off (the default) this is the
     * plain tier charge plus two never-taken compares.
     */
    void lockTableRead(DpuContext &ctx, u32 index, size_t bytes);
    void lockTableWrite(DpuContext &ctx, u32 index, size_t bytes);
    /** @} */

    /** Map a data address to a lock-table index. Like TinySTM's
     * LOCK_IDX this direct-maps consecutive words to consecutive
     * entries, so a table at least as large as the data has no
     * aliasing at all; smaller tables alias with stride = table size
     * (the paper's memory-vs-aliasing trade-off, ablation A1). */
    u32
    lockIndexFor(Addr a) const
    {
        // With no lock table (NOrec) the mask arithmetic below wraps to
        // 0xffffffff and silently returns garbage — catch the misuse.
        if (lock_table_entries_ == 0) {
            panic("lockIndexFor on an STM without a lock table (",
                  name(), ")");
        }
        return (a >> 2) & (lock_table_entries_ - 1);
    }

    /** Charge the cost of scanning @p entries set entries of
     * @p entry_bytes each (streamed, not per-entry). */
    void scanCost(DpuContext &ctx, size_t entries, size_t entry_bytes);

    /**
     * @{ Trace emission helpers for the algorithm implementations.
     * All are a single null compare when tracing is off; none charge
     * simulated cost. NOrec reports its global seqlock as index 0.
     */
    void
    traceLockAcquire(DpuContext &ctx, u32 index, Cycles wait_cycles)
    {
        if (cfg_.trace) {
            cfg_.trace->record(ctx.now(), ctx.taskletId(),
                               TxEvent::LockAcquire, index, wait_cycles);
            cfg_.trace->noteLockAcquire(index, wait_cycles);
        }
    }

    void
    traceLockWait(DpuContext &ctx, u32 index, Cycles cycles)
    {
        // Host-side contention tally for the epoch controller — the
        // wait itself is charged by the caller; counting it here never
        // changes the charge sequence.
        ++stats_.lock_waits;
        stats_.lock_wait_cycles += cycles;
        if (cfg_.trace) {
            cfg_.trace->record(ctx.now(), ctx.taskletId(),
                               TxEvent::LockWait, index, cycles);
            cfg_.trace->noteLockWait(index, cycles);
        }
    }

    void
    traceValidate(DpuContext &ctx, size_t entries)
    {
        if (cfg_.trace) {
            cfg_.trace->record(ctx.now(), ctx.taskletId(),
                               TxEvent::Validate,
                               static_cast<u32>(entries));
        }
    }
    /** @} */

    /**
     * @{ Durable commit protocol hooks (docs/durability.md). Each is a
     * single never-taken compare when StmConfig::durable is off.
     *
     * Write-back kinds call durableCommitPoint once validation has
     * succeeded and every ownership record is held, BEFORE the first
     * in-place write: it appends the redo image of the write set to
     * the tasklet's log slot, seals it with a sequenced commit record
     * and issues a flush fence — the transaction's durability point.
     * After write-back (ownership still held) durableAfterApply fences
     * the applied data and truncates the slot; the truncation itself
     * stays unfenced because a resurrected committed record only
     * re-applies the values this commit already made durable.
     *
     * Write-through kinds undo-log through durableWalBeforeWrite
     * (called by their recordWrite with the ownership record held,
     * before the in-place write: entry + fence, the write-ahead rule)
     * and call durableCommitInPlace before releasing ownership: fence
     * (the durability point — the in-place writes are now flushed),
     * truncate, fence again so a stale *active* record can never
     * resurface and undo committed data. The abort-side truncation
     * (wired in txAbort) fences the restored values first and leaves
     * the truncation unfenced: replaying a resurrected undo log
     * rewrites the very values doAbortCleanup already restored.
     */
    void durableCommitPoint(DpuContext &ctx, TxDescriptor &tx);
    void durableAfterApply(DpuContext &ctx, TxDescriptor &tx);
    void durableCommitInPlace(DpuContext &ctx, TxDescriptor &tx);
    void durableWalBeforeWrite(DpuContext &ctx, TxDescriptor &tx, Addr a,
                               u32 old_value);
    /** WT abort-side truncation; called by doAbortCleanup AFTER the
     * old values are restored and BEFORE the ownership records are
     * released (the slot must never outlive the locks protecting the
     * addresses its stale undo image names). */
    void durableAbortTruncate(DpuContext &ctx, TxDescriptor &tx);

    /** True for kinds whose doWrite mutates data in place (WT), which
     * durable mode must undo-log under the write-ahead rule. */
    virtual bool writesInPlace() const { return false; }

    /** Reset every ownership record to the free state after a crash.
     * The records are host-side vectors, so they survive the simulated
     * power loss — but only as stale bookkeeping of transactions that
     * no longer exist. */
    virtual void clearLocksForRecovery() {}
    /** @} */

    sim::Dpu &dpu_;
    StmConfig cfg_;
    StmStats stats_;
    std::vector<TxDescriptor> descriptors_;

  private:
    /** Reserve simulated memory for descriptors and the lock table;
     * resolves lock-table spill. Called from the constructor tail via
     * finalizeLayout() in each subclass ctor. */
    friend class StmFactoryAccess;

    void reserveMetadata();

    /** Lock-table size implied by the config (hint, override, clamps). */
    u32 computedLockTableEntries() const;

    /** Allocate the heat / hot-state vectors per the resolved layout. */
    void initLockAdaptState();

    /** @{ Hot-lock migration state (docs/adaptive.md). kHot entries
     * charge WRAM cost; pending entries pay the tier transfer on their
     * first access after the epoch decision (settleMigration). */
    static constexpr u8 kCold = 0;
    static constexpr u8 kHot = 1;
    static constexpr u8 kPromotePending = 2;
    static constexpr u8 kDemotePending = 3;

    void settleMigration(DpuContext &ctx, u32 index);
    /** @} */

    Tier lock_table_tier_ = Tier::Mram;
    u32 lock_table_entries_ = 0;
    size_t meta_bytes_wram_ = 0;
    size_t meta_bytes_mram_ = 0;
    bool layout_done_ = false;

    /** Dynamic tasklet throttle (0 = off; see setTaskletLimit). */
    unsigned tasklet_limit_ = 0;

    /** Per-entry access counts (empty = heat tracking off). */
    std::vector<u32> lock_heat_;
    /** Per-entry migration state (empty = migration off). */
    std::vector<u8> hot_state_;
    /** Resolved WRAM hot-cache capacity in entries (0 = off). */
    u32 hot_capacity_ = 0;

    /** Atomic-register key of the serial-irrevocable global token. */
    static constexpr u32 kSerialTokenKey = 0x5e71a1bcu;

    /** Fault hook shared by the tx wrappers: counts one STM operation
     * and delivers an injected crash or spurious abort (both throw). */
    void maybeInjectFault(DpuContext &ctx, TxDescriptor &tx,
                          bool can_abort, bool in_tx);

    /**
     * @{ Transactional-boosting unwind hooks (no-ops when the
     * transaction holds no semantic state). On abort the undo log is
     * replayed LIFO *after* word-level rollback (doAbortCleanup) and
     * *before* the abstract locks are handed back, so every inverse
     * operation still runs under the exclusivity it was logged under.
     */
    void replaySemanticUndo(DpuContext &ctx, TxDescriptor &tx);
    void releaseSemanticLocks(DpuContext &ctx, TxDescriptor &tx);
    /** @} */

    /** Terminate the calling tasklet with an injected crash, releasing
     * all transaction-held metadata first. */
    [[noreturn]] void crashOut(DpuContext &ctx, TxDescriptor &tx,
                               bool in_tx);

    /** @{ Serial-irrevocable escalation protocol (docs/robustness.md). */
    void acquireSerialToken(DpuContext &ctx, TxDescriptor &tx);
    void releaseSerialToken(DpuContext &ctx, TxDescriptor &tx);
    /** @} */

    /** Watchdog diagnostic callback body (registered with the DPU). */
    void dumpDiagnostics(std::ostream &os) const;

    /** Tasklet id currently holding the serial token, -1 when free. */
    int serial_owner_ = -1;

    /** Transactions between txStart and commit/abort (quiesce count). */
    unsigned active_txs_ = 0;

    /**
     * @{ Durable log state (docs/durability.md). The slot layout is
     * per tasklet: two 16-byte self-checksummed header copies written
     * ping-pong (so at most one copy is ever unflushed, and a torn
     * header write always leaves the other copy readable), then
     * max_write_set 16-byte entries. All mirrors of MRAM content here
     * are host bookkeeping; recovery trusts only the MRAM bytes.
     */
    /** Log region reserved and persist tracking armed. */
    bool durable_log_ = false;
    /** MRAM byte offset of tasklet 0's slot. */
    u32 log_base_ = 0;
    /** Bytes per per-tasklet slot (32-byte header area + entries). */
    size_t log_slot_bytes_ = 0;
    /** Commit sequence source; headers carry its low 32 bits. */
    u64 durable_seq_ = 0;
    /** Per-tasklet open-slot mirror: 0 empty, 1 active, 2 committed. */
    std::vector<u8> slot_state_;
    /** Sequence number of each tasklet's open record. */
    std::vector<u32> slot_seq_;
    /** Which header copy the next header write lands in (ping-pong). */
    std::vector<u8> slot_flip_;
    /** Reused redo-image encoding scratch (host). */
    std::vector<u8> log_scratch_;

    u32
    logSlotBase(unsigned tasklet) const
    {
        return log_base_ + static_cast<u32>(log_slot_bytes_ * tasklet);
    }

    void writeLogHeader(DpuContext &ctx, unsigned tasklet, u32 seq,
                        u32 entries, u32 state);
    void durableFence(DpuContext &ctx);
    /** @} */

  protected:
    /** Must be invoked at the end of every concrete constructor. */
    void finalizeLayout();
};

/**
 * Run @p body as a transaction, retrying on abort until it commits.
 * This is the intended user entry point.
 */
template <typename Body>
void
atomically(Stm &stm, DpuContext &ctx, Body &&body)
{
    TxDescriptor &tx = stm.descriptor(ctx.taskletId());
    for (;;) {
        stm.txStart(ctx, tx);
        try {
            TxHandle h(stm, ctx, tx);
            body(h);
            stm.txCommit(ctx, tx);
            return;
        } catch (const TxAbortException &) {
            // Cleanup already done by txAbort(); just retry.
        }
    }
}

} // namespace pimstm::core

#endif // PIMSTM_CORE_STM_HH
