/**
 * @file
 * STM-level statistics: commits, aborts by reason, operation counts.
 * Together with the simulator's per-phase cycle accounting these
 * regenerate the paper's throughput / abort-rate / time-breakdown plots.
 */

#ifndef PIMSTM_CORE_STATS_HH
#define PIMSTM_CORE_STATS_HH

#include <array>
#include <string_view>

#include "util/types.hh"

namespace pimstm::core
{

/** Why a transaction aborted. */
enum class AbortReason : u8
{
    ReadConflict = 0,  ///< read found a location locked by another tx
    WriteConflict,     ///< write-lock acquisition failed
    UpgradeConflict,   ///< rw-lock read->write upgrade failed (VR)
    ValidationFail,    ///< readset validation / extension failed
    CommitConflict,    ///< commit-time lock acquisition failed (CTL)
    UserAbort,         ///< explicit TxHandle::retry()
    BoostTimeout,      ///< abstract-lock wait exhausted (boosting)
    NumReasons,
};

constexpr size_t kNumAbortReasons =
    static_cast<size_t>(AbortReason::NumReasons);

constexpr std::string_view
abortReasonName(AbortReason r)
{
    switch (r) {
      case AbortReason::ReadConflict: return "read-conflict";
      case AbortReason::WriteConflict: return "write-conflict";
      case AbortReason::UpgradeConflict: return "upgrade-conflict";
      case AbortReason::ValidationFail: return "validation-fail";
      case AbortReason::CommitConflict: return "commit-conflict";
      case AbortReason::UserAbort: return "user-abort";
      case AbortReason::BoostTimeout: return "boost-timeout";
      default: return "?";
    }
}

/** Aggregate STM statistics for one DPU. */
struct StmStats
{
    u64 starts = 0;
    u64 commits = 0;
    u64 aborts = 0;
    std::array<u64, kNumAbortReasons> abort_reasons{};

    u64 reads = 0;
    u64 writes = 0;
    /** Full readset validations performed. */
    u64 validations = 0;
    /** Snapshot extensions (Tiny). */
    u64 extensions = 0;
    /** Read-only commits (no commit-time synchronization needed). */
    u64 read_only_commits = 0;

    /**
     * @{ Robustness counters (zero unless fault injection or the
     * serial-irrevocable fallback is enabled).
     */
    /** Transactions escalated to serial-irrevocable mode. */
    u64 escalations = 0;
    /** Commits completed in serial-irrevocable mode. */
    u64 serial_commits = 0;
    /** Spurious validation-failure aborts injected by a FaultPlan
     * (also counted under aborts / abort_reasons[ValidationFail]). */
    u64 injected_aborts = 0;
    /** Injected tasklet crashes delivered at an STM operation. */
    u64 crashes = 0;
    /** @} */

    /**
     * @{ Transactional-boosting counters (zero unless
     * StmConfig::boosting is on; docs/boosting.md).
     */
    /** Abstract locks acquired (shared + exclusive + upgrades). */
    u64 boosted_acquires = 0;
    /** Poll rounds spent waiting on a held abstract lock. */
    u64 boosted_waits = 0;
    /** Semantic inverse operations replayed on abort. */
    u64 semantic_undos = 0;
    /** Abstract-lock waits that ended in acquisition — each one is a
     * physical conflict a word-based STM would have aborted on but the
     * abstract level could wait out. */
    u64 false_conflicts_avoided = 0;
    /** @} */

    /**
     * @{ Durable-transaction counters (zero unless StmConfig::durable;
     * docs/durability.md). Host-side tallies of log traffic the
     * simulator charges through the ordinary cost model.
     */
    /** Bytes appended to the MRAM redo/undo log. */
    u64 log_bytes = 0;
    /** Log append operations (one per commit for WB kinds, one per
     * first-write-of-an-address for WT kinds). */
    u64 log_appends = 0;
    /** MRAM flush fences issued by the commit protocol. */
    u64 flush_fences = 0;
    /** Transactions whose commit record reached the persist boundary. */
    u64 durable_commits = 0;
    /** Post-crash recovery passes run on this instance. */
    u64 recoveries = 0;
    /** Committed logs re-applied during recovery. */
    u64 log_redone = 0;
    /** Active (undo) logs rolled back during recovery. */
    u64 log_undone = 0;
    /** Logs discarded during recovery (empty or failed checksums). */
    u64 log_discarded = 0;
    /** Logs whose records were observed torn at recovery (checksum
     * mismatch on a non-empty slot). */
    u64 torn_logs = 0;
    /** @} */

    /**
     * @{ Contention-signal counters consumed by the epoch adaptation
     * controller (docs/adaptive.md). Host-side tallies of costs the
     * simulator already charges elsewhere — maintaining them never
     * changes the charge sequence, so they are free to sample.
     */
    /** Poll rounds spent waiting on a held ORec / seqlock (the
     * wait-on-contention manager and NOrec's start wait). */
    u64 lock_waits = 0;
    /** Simulated cycles spent in those waits. */
    u64 lock_wait_cycles = 0;
    /** Simulated cycles spent in post-abort randomized backoff. */
    u64 backoff_cycles = 0;
    /** txStart polls spent parked by the dynamic tasklet throttle. */
    u64 park_polls = 0;
    /** Live STM-kind switches performed (SwitchableStm). */
    u64 kind_switches = 0;
    /** Lock-table entries migrated between tiers (settled
     * promotions + demotions, each charged through the transfer
     * cost model on first access). */
    u64 lock_migrations = 0;
    /** @} */

    /**
     * Abort rate as the paper plots it: aborted executions over all
     * transaction executions (commits + aborts).
     */
    double
    abortRate() const
    {
        const u64 total = commits + aborts;
        return total == 0 ? 0.0
                          : static_cast<double>(aborts) /
                                static_cast<double>(total);
    }

    StmStats &
    operator+=(const StmStats &o)
    {
        starts += o.starts;
        commits += o.commits;
        aborts += o.aborts;
        for (size_t i = 0; i < abort_reasons.size(); ++i)
            abort_reasons[i] += o.abort_reasons[i];
        reads += o.reads;
        writes += o.writes;
        validations += o.validations;
        extensions += o.extensions;
        read_only_commits += o.read_only_commits;
        escalations += o.escalations;
        serial_commits += o.serial_commits;
        injected_aborts += o.injected_aborts;
        crashes += o.crashes;
        boosted_acquires += o.boosted_acquires;
        boosted_waits += o.boosted_waits;
        semantic_undos += o.semantic_undos;
        false_conflicts_avoided += o.false_conflicts_avoided;
        log_bytes += o.log_bytes;
        log_appends += o.log_appends;
        flush_fences += o.flush_fences;
        durable_commits += o.durable_commits;
        recoveries += o.recoveries;
        log_redone += o.log_redone;
        log_undone += o.log_undone;
        log_discarded += o.log_discarded;
        torn_logs += o.torn_logs;
        lock_waits += o.lock_waits;
        lock_wait_cycles += o.lock_wait_cycles;
        backoff_cycles += o.backoff_cycles;
        park_polls += o.park_polls;
        kind_switches += o.kind_switches;
        lock_migrations += o.lock_migrations;
        return *this;
    }
};

} // namespace pimstm::core

#endif // PIMSTM_CORE_STATS_HH
