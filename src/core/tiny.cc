#include "core/tiny.hh"

#include <ostream>

#include "util/logging.hh"

namespace pimstm::core
{

TinyStm::TinyStm(sim::Dpu &dpu, const StmConfig &cfg)
    : Stm(dpu, cfg)
{
    switch (cfg.kind) {
      case StmKind::TinyEtlWb:
        etl_ = true;
        wb_ = true;
        break;
      case StmKind::TinyEtlWt:
        etl_ = true;
        wb_ = false;
        break;
      case StmKind::TinyCtlWb:
        etl_ = false;
        wb_ = true;
        break;
      case StmKind::Tl2:
        // Classic TL2: commit-time locking, write-back, and a FIXED
        // read timestamp — version > snapshot always aborts.
        etl_ = false;
        wb_ = true;
        no_extend_ = true;
        break;
      default:
        fatal("TinyStm constructed with non-Tiny kind");
    }
    finalizeLayout();
    table_.assign(lockTableEntries(), Orec{});
}

const char *
TinyStm::name() const
{
    if (no_extend_)
        return "TL2";
    if (etl_)
        return wb_ ? "Tiny ETLWB" : "Tiny ETLWT";
    return "Tiny CTLWB";
}

u64
TinyStm::incrementClock(DpuContext &ctx)
{
    // fetch-and-increment emulated with the atomic register.
    ctx.acquire(kClockKey);
    metaRead(ctx, 8);
    const u64 wc = ++clock_;
    metaWrite(ctx, 8);
    ctx.release(kClockKey);
    return wc;
}

void
TinyStm::doStart(DpuContext &ctx, TxDescriptor &tx)
{
    metaRead(ctx, 8);
    tx.snapshot = clock_;
    tx.upper = clock_;
}

void
TinyStm::validate(DpuContext &ctx, TxDescriptor &tx)
{
    ++stats_.validations;
    traceValidate(ctx, tx.read_set.size());
    for (const auto &e : tx.read_set) {
        lockTableRead(ctx, e.lock_index, 8);
        const Orec &cur = table_[e.lock_index];
        if (cur.locked && cur.owner != tx.tasklet())
            txAbort(ctx, tx, AbortReason::ValidationFail, e.lock_index,
                    e.addr);
        if (cur.version != e.version)
            txAbort(ctx, tx, AbortReason::ValidationFail, e.lock_index,
                    e.addr);
    }
}

void
TinyStm::extend(DpuContext &ctx, TxDescriptor &tx)
{
    if (no_extend_) // TL2: the read window is fixed at start
        txAbort(ctx, tx, AbortReason::ValidationFail);
    const auto prev_phase = ctx.phase();
    ctx.setPhase(sim::Phase::TxValidate);
    ++stats_.extensions;
    metaRead(ctx, 8);
    const u64 now_clock = clock_;
    validate(ctx, tx);
    tx.upper = now_clock;
    ctx.setPhase(prev_phase);
}

u32
TinyStm::doRead(DpuContext &ctx, TxDescriptor &tx, Addr a)
{
    // CTL buffers writes without locking, so reads-after-writes must
    // scan the write set (one of CTL's costs the paper highlights).
    if (!etl_ && !tx.write_set.empty()) {
        scanCost(ctx, tx.write_set.size(), writeEntryBytes());
        const int w = tx.findWrite(a);
        if (w >= 0)
            return tx.write_set[static_cast<size_t>(w)].value;
    }

    const u32 index = lockIndexFor(a);
    lockTableRead(ctx, index, 8);
    Orec o = table_[index];

    // Optional wait-on-contention manager: poll a foreign lock a
    // bounded number of times before aborting.
    for (unsigned poll = 0;
         o.locked && !(etl_ && o.owner == tx.tasklet()) &&
         poll < cfg_.cm_wait_polls;
         ++poll) {
        traceLockWait(ctx, index, cfg_.cm_wait_cycles);
        ctx.delay(cfg_.cm_wait_cycles);
        lockTableRead(ctx, index, 8);
        o = table_[index];
    }

    if (o.locked) {
        if (etl_ && o.owner == tx.tasklet()) {
            // We hold this ORec. WT: memory already has our value.
            // WB: the value may be in our write set (or the ORec may
            // merely alias an address we wrote).
            if (!wb_)
                return ctx.read32(a);
            scanCost(ctx, tx.write_set.size(), writeEntryBytes());
            const int w = tx.findWrite(a);
            if (w >= 0)
                return tx.write_set[static_cast<size_t>(w)].value;
            return ctx.read32(a);
        }
        txAbort(ctx, tx, AbortReason::ReadConflict, index, a);
    }

    // Invisible read: data read sandwiched between two ORec reads.
    const u32 v = ctx.read32(a);
    lockTableRead(ctx, index, 8);
    const Orec &recheck = table_[index];
    if (recheck.locked || recheck.version != o.version)
        txAbort(ctx, tx, AbortReason::ReadConflict, index, a);

    // The snapshot upper bound lives in the descriptor, i.e. in the
    // metadata tier — consulting it is a real access there (one of the
    // extra MRAM reads the paper charges invisible-read designs with).
    metaRead(ctx, 8);
    if (o.version > tx.upper)
        extend(ctx, tx);

    ReadEntry e;
    e.addr = a;
    e.value = v;
    e.version = o.version;
    e.lock_index = index;
    tx.pushRead(e);
    // Entry plus the descriptor's set-size counter.
    metaWrite(ctx, readEntryBytes() + 8);
    return v;
}

bool
TinyStm::acquireOrec(DpuContext &ctx, TxDescriptor &tx, u32 index)
{
    unsigned poll = 0;
retry:
    ctx.acquire(index);
    lockTableRead(ctx, index, 8);
    Orec &o = table_[index];
    if (o.locked) {
        const bool mine = o.owner == tx.tasklet();
        ctx.release(index);
        if (!mine && poll < cfg_.cm_wait_polls) {
            // Wait-on-contention: back off and retry the acquisition.
            ++poll;
            traceLockWait(ctx, index, cfg_.cm_wait_cycles);
            ctx.delay(cfg_.cm_wait_cycles);
            goto retry;
        }
        return mine;
    }
    if (o.version > tx.upper) {
        // Newer than our snapshot window: try to extend first.
        ctx.release(index);
        extend(ctx, tx); // aborts on failure
        ctx.acquire(index);
        lockTableRead(ctx, index, 8);
        if (table_[index].locked || table_[index].version > tx.upper) {
            ctx.release(index);
            return false;
        }
    }
    o.locked = true;
    o.owner = static_cast<u8>(tx.tasklet());
    lockTableWrite(ctx, index, 8);
    ctx.release(index);
    tx.locks.push_back({index, true});
    traceLockAcquire(ctx, index, poll * u64{cfg_.cm_wait_cycles});
    return true;
}

void
TinyStm::recordWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v,
                     u32 index)
{
    scanCost(ctx, tx.write_set.size(), writeEntryBytes());
    const int w = tx.findWrite(a);
    if (w >= 0) {
        tx.write_set[static_cast<size_t>(w)].value = v;
        metaWrite(ctx, writeEntryBytes());
        if (!wb_)
            ctx.write32(a, v);
        return;
    }
    WriteEntry e;
    e.addr = a;
    e.value = v;
    e.lock_index = index;
    if (!wb_) {
        e.old_value = ctx.read32(a);
        // Write-ahead rule (no-op unless durable): the undo entry is
        // fenced before the in-place write below, with the ORec held.
        durableWalBeforeWrite(ctx, tx, a, e.old_value);
    }
    tx.pushWrite(e);
    metaWrite(ctx, writeEntryBytes());
    if (!wb_)
        ctx.write32(a, v);
}

void
TinyStm::doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v)
{
    const u32 index = lockIndexFor(a);
    if (etl_) {
        if (!acquireOrec(ctx, tx, index))
            txAbort(ctx, tx, AbortReason::WriteConflict, index, a);
    }
    recordWrite(ctx, tx, a, v, index);
}

void
TinyStm::doCommit(DpuContext &ctx, TxDescriptor &tx)
{
    if (tx.write_set.empty())
        return; // read-only: the snapshot window proves serializability

    if (!etl_) {
        // Commit-time locking: acquire every written ORec now.
        for (const auto &e : tx.write_set) {
            // Skip ORecs we already locked via an earlier entry.
            bool already = false;
            for (const auto &l : tx.locks)
                if (l.index == e.lock_index)
                    already = true;
            if (already)
                continue;
            if (!acquireOrec(ctx, tx, e.lock_index))
                txAbort(ctx, tx, AbortReason::CommitConflict, e.lock_index,
                        e.addr);
        }
    }

    const u64 wc = incrementClock(ctx);
    if (wc != tx.upper + 1) {
        const auto prev_phase = ctx.phase();
        ctx.setPhase(sim::Phase::TxValidate);
        validate(ctx, tx);
        ctx.setPhase(prev_phase);
    }

    if (wb_) {
        // Durability point (no-op unless durable): redo image sealed
        // after validation, with every written ORec held.
        durableCommitPoint(ctx, tx);
        scanCost(ctx, tx.write_set.size(), writeEntryBytes());
        for (const auto &e : tx.write_set)
            ctx.write32(e.addr, e.value);
        durableAfterApply(ctx, tx);
    } else {
        // WT durability point: in-place writes flushed, undo retired,
        // before any ORec is released.
        durableCommitInPlace(ctx, tx);
    }

    // Release with the commit timestamp.
    for (const auto &l : tx.locks) {
        Orec &o = table_[l.index];
        o.locked = false;
        o.version = wc;
        lockTableWrite(ctx, l.index, 8);
    }
}

void
TinyStm::doAbortCleanup(DpuContext &ctx, TxDescriptor &tx)
{
    // Write-through: restore overwritten values, newest first.
    if (!wb_) {
        for (auto it = tx.write_set.rbegin(); it != tx.write_set.rend();
             ++it) {
            ctx.write32(it->addr, it->old_value);
        }
        // Flush the restores and retire the undo log while the ORecs
        // are still held (no-op unless durable).
        durableAbortTruncate(ctx, tx);
    }
    // Drop the lock bit; the version is untouched (it was never
    // advanced), so concurrent readers remain consistent.
    for (const auto &l : tx.locks) {
        Orec &o = table_[l.index];
        panicIf(!o.locked || o.owner != tx.tasklet(),
                "abort cleanup releasing an ORec we do not hold");
        o.locked = false;
        lockTableWrite(ctx, l.index, 8);
    }
    tx.locks.clear();
}

unsigned
TinyStm::heldOwnershipCount() const
{
    unsigned held = 0;
    for (const Orec &o : table_)
        held += o.locked ? 1 : 0;
    return held;
}

void
TinyStm::dumpOwnership(std::ostream &os) const
{
    // Cap the listing: the table can have 64K entries, the dump is for
    // humans.
    unsigned listed = 0;
    for (u32 i = 0; i < table_.size() && listed < 16; ++i) {
        if (!table_[i].locked)
            continue;
        os << "    orec " << i << ": locked by tasklet "
           << static_cast<unsigned>(table_[i].owner) << " (version "
           << table_[i].version << ")\n";
        ++listed;
    }
}

} // namespace pimstm::core
