/**
 * @file
 * SwitchableStm: a router that owns one instance of each candidate STM
 * kind and forwards whole transactions to the current one, so the epoch
 * adaptation controller (docs/adaptive.md) can change the STM algorithm
 * mid-run. Switches happen only at quiesce points — a pending request
 * parks new transactions in txStart until the in-flight count drains,
 * exactly the protocol the serial-irrevocable fallback uses.
 *
 * All candidates are constructed up front with the maximum metadata
 * footprint reserved once (the simulated bump allocator cannot free),
 * using StmConfig::external_layout so the inners compute their lock
 * geometry without re-reserving. Descriptors are owned by the router
 * and passed through by reference, so atomically()'s once-captured
 * descriptor and the retry counter survive a switch.
 */

#ifndef PIMSTM_CORE_SWITCHABLE_HH
#define PIMSTM_CORE_SWITCHABLE_HH

#include <memory>
#include <vector>

#include "core/stm.hh"

namespace pimstm::core
{

class SwitchableStm : public Stm
{
  public:
    /**
     * @p cfg.kind selects the initially active kind; it is added to the
     * front of @p candidates if absent. Throws FatalError when the
     * maximum footprint across candidates does not fit the tier.
     */
    SwitchableStm(sim::Dpu &dpu, const StmConfig &cfg,
                  const std::vector<StmKind> &candidates);

    const char *name() const override { return "Switchable"; }

    /** Candidate kinds, construction order (== switch indices). */
    const std::vector<StmKind> &candidates() const { return kinds_; }

    /** Kind transactions are currently routed to. */
    StmKind currentKind() const { return kinds_[current_]; }

    /** A requested switch not yet performed (quiesce pending). */
    bool switchPending() const { return pending_ >= 0; }

    /**
     * Request a live switch to candidate @p k. Returns false (no-op)
     * when @p k is not a candidate or already current. The switch is
     * performed by the next transaction to observe a drained inner —
     * host-side state flip plus a streamed translation charge of both
     * lock tables through the transfer cost model.
     */
    bool requestKindSwitch(StmKind k);

    /** @{ Transaction wrappers: route to the current inner. */
    void txStart(DpuContext &ctx, TxDescriptor &tx) override;
    u32 txRead(DpuContext &ctx, TxDescriptor &tx, Addr a) override;
    void txWrite(DpuContext &ctx, TxDescriptor &tx, Addr a,
                 u32 v) override;
    void txCommit(DpuContext &ctx, TxDescriptor &tx) override;
    [[noreturn]] void txAbort(DpuContext &ctx, TxDescriptor &tx,
                              AbortReason reason,
                              u32 conflict_lock = kNoLockIndex,
                              Addr conflict_addr = 0) override;
    /** @} */

    const StmStats &aggregateStats() const override;
    unsigned activeTxCount() const override;

    /** @{ Reconfiguration: applied to every candidate so settings
     * survive switches (plus the base, for the accessors). */
    void setBackoffParams(Cycles base, unsigned max_shift) override;
    void setCmWaitPolls(unsigned polls) override;
    void setCmWaitCycles(Cycles cycles) override;
    void setTaskletLimit(unsigned limit) override;
    /** @} */

    const std::vector<u32> &lockHeat() const override;
    void migrateLocks(const std::vector<u32> &promote,
                      const std::vector<u32> &demote) override;

    unsigned heldOwnershipCount() const override;
    void dumpOwnership(std::ostream &os) const override;

  protected:
    /** Never reached: the public wrappers delegate before the base
     * bodies (which call these) can run on the router itself. */
    void doStart(DpuContext &ctx, TxDescriptor &tx) override;
    u32 doRead(DpuContext &ctx, TxDescriptor &tx, Addr a) override;
    void doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a,
                 u32 v) override;
    void doCommit(DpuContext &ctx, TxDescriptor &tx) override;
    void doAbortCleanup(DpuContext &ctx, TxDescriptor &tx) override;

    /** Maxima across candidates — the router reserves the worst-case
     * footprint so any inner fits the shared reservation. */
    size_t readEntryBytes() const override { return max_read_entry_; }
    size_t writeEntryBytes() const override { return max_write_entry_; }
    size_t lockTableEntryBytes() const override { return max_lock_entry_; }

  private:
    void performSwitch(DpuContext &ctx);

    std::vector<StmKind> kinds_;
    std::vector<std::unique_ptr<Stm>> inners_;
    size_t current_ = 0;
    /** Candidate index of a requested switch, -1 when none. */
    int pending_ = -1;

    size_t max_read_entry_ = 0;
    size_t max_write_entry_ = 0;
    size_t max_lock_entry_ = 0;

    /** Scratch for the merging accessors (logically const). */
    mutable StmStats merged_;
    mutable std::vector<u32> heat_merged_;
};

/**
 * Factory: a SwitchableStm over @p candidates, initially running
 * @p cfg.kind. With a single candidate equal to cfg.kind this behaves
 * like makeStm() plus routing indirection.
 */
std::unique_ptr<Stm> makeSwitchableStm(
    sim::Dpu &dpu, const StmConfig &cfg,
    const std::vector<StmKind> &candidates);

} // namespace pimstm::core

#endif // PIMSTM_CORE_SWITCHABLE_HH
