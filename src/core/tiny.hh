/**
 * @file
 * Tiny (TinySTM / LSA — Felber, Fetzer, Marlier & Riegel) ported to the
 * simulated UPMEM DPU, covering the ORec + invisible-reads sub-tree of
 * the taxonomy: ETL+WB, ETL+WT and CTL+WB (WT+CTL would expose
 * uncommitted writes and is invalid, per Fig. 2).
 *
 * Each ORec in the hashed lock table carries a lock bit, an owner and a
 * version timestamp drawn from a global version clock. Transactions
 * keep a [snapshot, upper] validity window; reading a location with a
 * newer version triggers *snapshot extension*: the read set is
 * revalidated and, if intact, the window is extended instead of
 * aborting (Tiny's main advantage over TL2).
 *
 * ORec lock words are updated under an acquire/release bracket on the
 * atomic register (the emulated CAS of §3.2.1); the global clock is
 * bumped the same way at commit.
 */

#ifndef PIMSTM_CORE_TINY_HH
#define PIMSTM_CORE_TINY_HH

#include <vector>

#include "core/stm.hh"

namespace pimstm::core
{

class TinyStm : public Stm
{
  public:
    TinyStm(sim::Dpu &dpu, const StmConfig &cfg);

    const char *name() const override;

    bool encounterTimeLocking() const { return etl_; }
    bool writeBack() const { return wb_; }
    /** True for the TL2 variant (no snapshot extension). */
    bool noExtension() const { return no_extend_; }

    /** Current global version clock (tests only). */
    u64 clock() const { return clock_; }

    /** ORec state (tests only). */
    bool orecLocked(u32 index) const { return table_[index].locked; }
    u64 orecVersion(u32 index) const { return table_[index].version; }

    /** Locked ORecs in the table (0 when quiescent). */
    unsigned heldOwnershipCount() const override;

    void dumpOwnership(std::ostream &os) const override;

  protected:
    void doStart(DpuContext &ctx, TxDescriptor &tx) override;
    u32 doRead(DpuContext &ctx, TxDescriptor &tx, Addr a) override;
    void doWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v) override;
    void doCommit(DpuContext &ctx, TxDescriptor &tx) override;
    void doAbortCleanup(DpuContext &ctx, TxDescriptor &tx) override;

    size_t readEntryBytes() const override { return 16; }
    size_t writeEntryBytes() const override { return 24; }
    size_t lockTableEntryBytes() const override { return 8; }

    bool writesInPlace() const override { return !wb_; }

    /** Drop every stale lock bit after a crash; versions are kept (a
     * crashed owner never advanced them, exactly like an abort). */
    void
    clearLocksForRecovery() override
    {
        for (Orec &o : table_)
            o.locked = false;
    }

  private:
    /** One ownership record. The version is only advanced at commit;
     * an aborting owner just clears the lock bit, leaving the version
     * untouched, so concurrent readers stay consistent. */
    struct Orec
    {
        bool locked = false;
        u8 owner = 0;
        u64 version = 0;
    };

    /** Bump the global clock by one, atomically; returns the new value. */
    u64 incrementClock(DpuContext &ctx);

    /**
     * Snapshot extension: revalidate the read set at the current clock
     * and extend the upper bound. Aborts on validation failure.
     */
    void extend(DpuContext &ctx, TxDescriptor &tx);

    /** Validate every read-set entry's ORec (version unchanged, not
     * locked by another transaction). Aborts on failure. */
    void validate(DpuContext &ctx, TxDescriptor &tx);

    /** Acquire the ORec at @p index for @p tx; true on success, false
     * when held by another transaction. Registers the lock in tx. */
    bool acquireOrec(DpuContext &ctx, TxDescriptor &tx, u32 index);

    /** Buffer (WB) or apply (WT) a write after locking is settled. */
    void recordWrite(DpuContext &ctx, TxDescriptor &tx, Addr a, u32 v,
                     u32 index);

    /** Atomic-register key for the global clock. */
    static constexpr u32 kClockKey = 0xc10cc10cu;

    bool etl_;
    bool wb_;
    /** TL2 mode: abort instead of extending the snapshot window. */
    bool no_extend_ = false;
    u64 clock_ = 0;
    std::vector<Orec> table_;
};

} // namespace pimstm::core

#endif // PIMSTM_CORE_TINY_HH
