/**
 * @file
 * The workload driver: runs one benchmark configuration (workload x STM
 * kind x metadata tier x tasklet count x seed) on a fresh simulated DPU
 * and returns everything the paper's plots need — throughput, abort
 * rate, time breakdown and workload-specific metrics.
 */

#ifndef PIMSTM_RUNTIME_DRIVER_HH
#define PIMSTM_RUNTIME_DRIVER_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/stm_factory.hh"
#include "core/trace.hh"
#include "sim/dpu.hh"

namespace pimstm::runtime
{

/**
 * Interface every benchmark implements. A Workload instance describes
 * one problem instance; the driver owns the DPU and STM lifecycles.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Display name, e.g. "ArrayBench A". */
    virtual const char *name() const = 0;

    /** Fill in workload-specific STM requirements (set capacities,
     * data-size hint). Called before the STM is constructed. */
    virtual void configure(core::StmConfig &cfg) const = 0;

    /** Allocate and initialize shared state in simulated memory. */
    virtual void setup(sim::Dpu &dpu, core::Stm &stm) = 0;

    /** Body executed by each tasklet. */
    virtual void tasklet(sim::DpuContext &ctx, core::Stm &stm) = 0;

    /** Check invariants after the run; throw on violation. */
    virtual void verify(sim::Dpu &dpu, core::Stm &stm) = 0;

    /** Application-level operations completed (workload-defined). */
    virtual u64 appOps() const { return 0; }

    /** Extra metrics to surface in results. */
    virtual std::map<std::string, double>
    extraMetrics() const
    {
        return {};
    }
};

/**
 * Online-adaptation configuration (docs/adaptive.md): an epoch
 * feedback controller samples per-epoch stat deltas and actuates the
 * backoff/contention-manager knobs, a dynamic tasklet throttle,
 * hot-lock WRAM migration, and live STM-kind switching. Disabled by
 * default; with enabled = false the run is bitwise identical to a
 * build without the subsystem (CI-gated).
 */
struct AdaptiveSpec
{
    bool enabled = false;

    /** Controller sampling period in simulated cycles. */
    Cycles epoch_cycles = 100000;

    /** @{ Per-knob enables (all on once enabled, for ablations). */
    bool tune_backoff = true;
    bool tune_throttle = true;
    bool tune_migration = true;
    bool tune_kind = true;
    /** @} */

    /** Kind-switch candidates (empty = no kind switching even when
     * tune_kind; RunSpec::kind is always implicitly a candidate). */
    std::vector<core::StmKind> kind_candidates;

    /** Consecutive epochs a signal must persist before acting
     * (hysteresis against flapping). */
    unsigned hysteresis_epochs = 2;

    /** @{ Tasklet-throttle thresholds on the share of tasklet cycles
     * wasted on backoff + lock waits (EpochSample::wasteShare); park
     * above high, unpark below low. */
    double throttle_high = 0.5;
    double throttle_low = 0.1;
    unsigned min_tasklets = 2;
    /** @} */

    /** Wait-on-contention poll budget the backoff policy enables when
     * conflict aborts dominate. */
    unsigned cm_polls = 3;
    /** Ceiling for the doubling backoff base. */
    Cycles backoff_base_max = 256;

    /** @{ Kind policy: explore-then-commit with EWMA scores. A switch
     * needs a candidate this much better (relative); after a switch
     * the policy holds for cooldown epochs; a current-kind score
     * collapse below reexplore_ratio x its best restarts exploration. */
    double kind_switch_margin = 0.10;
    unsigned kind_cooldown_epochs = 4;
    double reexplore_ratio = 0.5;
    /** @} */

    /** @{ Hot-lock migration: WRAM cache capacity (entries) and the
     * minimum per-epoch heat that qualifies an entry for promotion. */
    u32 hot_lock_capacity = 16;
    u32 min_heat = 32;
    /** @} */
};

struct AdaptiveReport; // defined in runtime/adaptive.hh

/** One run configuration. */
struct RunSpec
{
    core::StmKind kind = core::StmKind::NOrec;
    core::MetadataTier tier = core::MetadataTier::Mram;
    unsigned tasklets = 1;
    u64 seed = 1;

    /** MRAM size for the simulated DPU (shrinkable for big sweeps). */
    size_t mram_bytes = 64 * 1024 * 1024;

    /** Disable fiber-switch elision (DpuConfig::always_switch): every
     * timing charge pays a fiber switch. Slower, bitwise-identical
     * results — used by tests/CI to cross-check the elided fast path. */
    bool sim_always_switch = false;

    sim::TimingConfig timing{};

    /** Deterministic fault-injection plan (empty = no injection; see
     * docs/robustness.md). */
    sim::FaultPlan faults;

    /** Livelock watchdog budget in cycles (0 = off). */
    Cycles watchdog_cycles = 0;

    /** Overrides applied to the workload-configured StmConfig
     * (0 = keep workload/default value). */
    u32 lock_table_entries_override = 0;
    int norec_start_wait_override = -1; // -1 keep, 0 off, 1 on
    unsigned atomic_bits_override = 0;  // 0 keep hardware 256
    /** Wait-on-contention polls (-1 keep workload/default). */
    int cm_wait_polls_override = -1;
    /** Per-poll contention wait (0 = keep workload/default). */
    Cycles cm_wait_cycles_override = 0;
    /** Post-abort backoff base (0 = keep workload/default). */
    Cycles abort_backoff_base_override = 0;
    /** Backoff max shift (-1 = keep workload/default). */
    int abort_backoff_max_shift_override = -1;
    /** Serial-irrevocable fallback threshold (0 = keep workload/default,
     * i.e. off — StmConfig::serial_fallback_after). */
    unsigned serial_fallback_override = 0;

    /** Durable transactions (StmConfig::durable, docs/durability.md):
     * every commit is made crash-atomic through a per-tasklet MRAM
     * redo/undo log and explicit persist fences. Also arms the driver's
     * crash-restart loop: a whole-DPU crash (`dpu-crash=` fault plan)
     * is recovered and the run continues instead of failing. Off =
     * bitwise identical to a build without the subsystem (CI-gated). */
    bool durable = false;

    /** Whole-DPU crash restarts tolerated per run (durable mode). */
    unsigned max_restarts = 16;

    /** Route structure operations through the boosted library
     * (StmConfig::boosting; docs/boosting.md). Workloads that have no
     * boosted path ignore it. Off = bitwise-identical to a build
     * without the boosting subsystem (CI-gated). */
    bool boosting = false;

    /** Record a transaction/scheduler trace (docs/observability.md).
     * Host-only: a traced run is bitwise identical to an untraced one. */
    bool trace = false;

    /** Ring capacity (records) of the per-run trace buffer; aggregates
     * (heatmap, histograms) are unaffected by drops. */
    size_t trace_buffer_capacity = 4096;

    /** Online-adaptation controller (docs/adaptive.md). */
    AdaptiveSpec adaptive;
};

/** Result of one run. */
struct RunResult
{
    core::StmStats stm;
    sim::DpuStats dpu;

    /** Simulated wall-clock of the run, seconds. */
    double seconds = 0.0;

    /** Committed transactions per second (the paper's main metric). */
    double throughput = 0.0;

    /** Workload-defined operations per second. */
    double app_ops_per_sec = 0.0;

    double abort_rate = 0.0;

    std::map<std::string, double> extra;

    /** Share of busy cycles per phase, in sim::Phase order. */
    std::array<double, sim::kNumPhases> phase_share{};

    /** The run's trace buffer (null unless RunSpec::trace). Shared so
     * callers can keep it after the RunResult is copied around. */
    std::shared_ptr<core::TraceBuffer> trace;

    /** Epoch-controller decision log (null unless the adaptive
     * controller ran; runtime/adaptive.hh). */
    std::shared_ptr<AdaptiveReport> adaptive;
};

/**
 * Run @p workload under @p spec. Throws FatalError when the
 * configuration is infeasible (e.g. WRAM metadata that does not fit) —
 * sweep harnesses catch this to mark the point "not runnable".
 */
RunResult runWorkload(Workload &workload, const RunSpec &spec);

/**
 * Host-side recovery of a crashed DPU (docs/durability.md): replays
 * committed redo records, rolls back interrupted in-place writers,
 * truncates the durable log and clears every stale lock. Called by the
 * driver's crash-restart loop; exposed for tests and embedders that
 * run the Dpu themselves.
 */
core::RecoveryReport recoverDpu(sim::Dpu &dpu, core::Stm &stm);

/** Creates a fresh problem instance per run (runs must not share
 * workload state when they execute concurrently). */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** Outcome of one spec within runWorkloadMany. */
struct RunOutcome
{
    /** False when the configuration was infeasible (FatalError). */
    bool ok = false;
    RunResult result;
    std::string error; ///< FatalError message when !ok
};

/**
 * Run one workload instance per spec, concurrently on the global
 * util::ThreadPool. outcome[i] corresponds to specs[i]; results are
 * bitwise independent of the job count because every run is a
 * self-contained simulation. FatalError (infeasible configuration) is
 * captured per-outcome; any other exception propagates.
 */
std::vector<RunOutcome> runWorkloadMany(const WorkloadFactory &factory,
                                        const std::vector<RunSpec> &specs);

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_DRIVER_HH
