/**
 * @file
 * Open-loop traffic serving: the production-shaped front-end for the
 * DPU fleet (ROADMAP item 2, docs/serving.md).
 *
 * All current benches are closed-loop sweeps — the next request is
 * issued only after the previous one completes, so the system can
 * never be observed past saturation. This layer models how production
 * actually drives a store: requests arrive on their own schedule
 * (Poisson or bursty/MMPP-2), key popularity is Zipfian, a batcher
 * accumulates requests under a latency budget, bounded per-shard
 * queues shed load when shards saturate, and latency is accounted per
 * request from *arrival* (not dispatch) to completion — so queueing
 * delay, batch-formation delay and the host-link cost all land in the
 * reported percentiles.
 *
 * Layering: this file knows nothing about the KV store or vacation —
 * `runtime` sits below `hostapp`. A backend implements
 * ServingBackend; the harness owns arrivals, queues, batching, shed
 * accounting and SLO reporting. bench/serve_kv.cc provides the
 * DistributedKv and vacation backends.
 *
 * Time model: the harness runs on *simulated* time only. The clock
 * advances by arrival timestamps (drawn from the seeded stream) and
 * by the backend's modelled round cost (DPU cycles + PimSystem link
 * transfers). No host wall-clock ever enters a decision, so a serving
 * run is bitwise deterministic for any host thread count.
 */

#ifndef PIMSTM_RUNTIME_SERVING_HH
#define PIMSTM_RUNTIME_SERVING_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace pimstm::runtime
{

//
// Arrival processes
//

/** Shape of the request arrival process. */
enum class ArrivalKind : u8
{
    /** Memoryless: exponential inter-arrival times at a fixed rate. */
    Poisson,
    /**
     * Bursty: a 2-state Markov-modulated Poisson process. The process
     * alternates between a normal state and a burst state whose rate
     * is `burst_factor` times the normal rate; dwell times in each
     * state are exponential. Parameters are chosen so the *long-run
     * mean* rate equals `rate_per_s`, which makes Poisson and Bursty
     * runs directly comparable at equal offered load.
     */
    Bursty,
};

/** Parameters of an arrival process. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    double rate_per_s = 50e3; ///< long-run mean arrival rate

    // Bursty (MMPP-2) shape knobs; ignored for Poisson.
    double burst_factor = 8.0;    ///< burst rate / normal rate
    double burst_fraction = 0.10; ///< long-run fraction of time bursting
    double burst_dwell_s = 2e-3;  ///< mean dwell per visit to the burst
};

/**
 * Draws a deterministic sequence of absolute arrival timestamps.
 * Same (config, seed) => same sequence, on every platform the repo
 * supports (pure IEEE double arithmetic).
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalConfig &cfg, u64 seed);

    /** Absolute time of the next arrival (seconds, nondecreasing). */
    double next();

  private:
    double exponential(double mean);

    ArrivalConfig cfg_;
    Rng rng_;
    double now_ = 0.0;
    double normal_rate_ = 0.0; ///< rate in the normal MMPP state
    double burst_rate_ = 0.0;
    double dwell_normal_s_ = 0.0;
    bool bursting_ = false;
    double state_end_s_ = 0.0; ///< when the current MMPP state expires
};

//
// Key popularity
//

/**
 * YCSB-style Zipfian rank generator over [0, n): rank 0 is the most
 * popular. theta in (0, 1) sets the skew (0.99 is the YCSB default);
 * theta == 0 degrades to uniform. The zeta(n) normalizer is computed
 * once at construction (O(n)).
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(u64 n, double theta);

    u64 next(Rng &rng);

    u64 universe() const { return n_; }
    double theta() const { return theta_; }

  private:
    u64 n_;
    double theta_;
    double alpha_ = 0.0;
    double zetan_ = 0.0;
    double eta_ = 0.0;
};

//
// Request streams
//

/**
 * One request of the open-loop stream. `key` is a popularity *rank*
 * in [0, keys): 0 hottest. The backend maps ranks to its own key
 * space and interprets `op` (an index into StreamConfig::op_weights)
 * and the `value` payload.
 */
struct ServingRequest
{
    double arrival_s = 0.0;
    u32 key = 0;
    u8 op = 0;
    u32 value = 0;
};

/** Parameters of a generated request stream. */
struct StreamConfig
{
    ArrivalConfig arrival;
    u64 keys = 1u << 16;      ///< popularity universe (ranks)
    double zipf_theta = 0.99; ///< 0 => uniform popularity
    /** Relative weights of the op classes (backend-interpreted op ids
     * 0..k-1). Need not be normalized; must sum > 0. */
    std::vector<double> op_weights{1.0};
    u64 seed = 1;
};

/**
 * Generate @p count requests deterministically from @p cfg. Arrival
 * times, ranks, op classes and value payloads each draw from an
 * independent derived stream, so e.g. changing the op mix does not
 * perturb the arrival schedule.
 */
std::vector<ServingRequest> makeStream(const StreamConfig &cfg, u64 count);

//
// Backend contract
//

/** Modelled cost of one dispatched round, as charged by the backend. */
struct RoundCost
{
    /** End-to-end round makespan: launch overhead + host-link
     * transfers + slowest shard, seconds. */
    double round_seconds = 0.0;
    /** Simulated busy seconds of each shard this round (size must be
     * numShards(); zeros for uninvolved shards). */
    std::vector<double> shard_busy_seconds;
};

/**
 * What the harness needs from a store: a shard count, request
 * routing, and the ability to execute one batched round and report
 * its modelled cost. Implementations live above `runtime` (e.g.
 * bench/serve_kv.cc wraps hostapp::DistributedKv).
 */
class ServingBackend
{
  public:
    virtual ~ServingBackend() = default;

    virtual unsigned numShards() const = 0;

    /** Which shard serves @p req (stable per request). */
    virtual unsigned shardOf(const ServingRequest &req) const = 0;

    /**
     * Execute one round: @p batches has exactly numShards() entries,
     * each the ordered requests dispatched to that shard (possibly
     * empty). Returns the modelled cost. Must be deterministic.
     */
    virtual RoundCost
    executeRound(const std::vector<std::vector<ServingRequest>> &batches)
        = 0;
};

//
// Harness configuration and report
//

/** Batch-formation / admission-control knobs. */
struct ServingConfig
{
    /**
     * Latency budget of the batcher: a round is dispatched as soon as
     * the *oldest* queued request has waited this long (or earlier,
     * when a shard queue reaches max_batch_per_shard while the
     * dispatcher is idle).
     */
    double batch_budget_s = 200e-6;

    /** Max requests dispatched to one shard per round. */
    u32 max_batch_per_shard = 16;

    /**
     * Admission bound: a request arriving to a shard whose queue
     * already holds this many waiting requests is shed (rejected and
     * counted, never silently dropped).
     */
    u32 queue_cap_per_shard = 64;

    /** Reporting granularity of the completion timeline. */
    double timeline_window_s = 5e-3;

    /** Emitted timeline points are merged down to at most this many. */
    u32 max_timeline_points = 48;
};

/** Per-shard serving accounting. */
struct ShardServingStats
{
    u64 offered = 0;   ///< requests routed to this shard
    u64 completed = 0; ///< requests served
    u64 shed = 0;      ///< requests rejected at admission
    u32 peak_queue = 0;
    double busy_seconds = 0.0; ///< simulated shard-busy time
    /** Shard-view latency (ns): arrival -> end of the shard's own
     * service in its round, excluding the round's slower siblings. */
    core::LogHistogram latency_ns;
};

/** One aggregated window of the completion timeline. */
struct TimelinePoint
{
    double t_end_s = 0.0; ///< window end (simulated seconds)
    u64 completed = 0;
    u64 shed = 0;
    u64 p99_ns = 0; ///< end-to-end p99 within the window
};

/** Everything a serving run measured. */
struct ServingReport
{
    u64 offered = 0;
    u64 completed = 0;
    u64 shed = 0;
    u64 rounds = 0;  ///< executeRound calls
    u64 batches = 0; ///< non-empty per-shard batches dispatched

    double makespan_s = 0.0;  ///< completion time of the last round
    double busy_seconds = 0.0; ///< summed shard busy time
    /** numShards() x summed round makespans: the fleet-time the run
     * occupied. busy_seconds / capacity_seconds = mean occupancy. */
    double capacity_seconds = 0.0;

    /** End-to-end latency (ns): arrival -> round completion, which
     * includes queueing, batch formation, launch overhead, host-link
     * transfers and the slowest-shard makespan. */
    core::LogHistogram e2e_ns;

    std::vector<ShardServingStats> shards;
    std::vector<TimelinePoint> timeline;

    double
    throughputPerSec() const
    {
        return makespan_s > 0
            ? static_cast<double>(completed) / makespan_s
            : 0.0;
    }

    double
    meanOccupancy() const
    {
        return capacity_seconds > 0 ? busy_seconds / capacity_seconds
                                    : 0.0;
    }
};

/**
 * Conservative quantile over a log2 histogram: the smallest bucket
 * upper bound covering at least ceil(q * count) samples. Returns the
 * *upper* bound (inclusive) of that bucket — an over-estimate by at
 * most 2x, never an under-estimate — so an SLO judged against it is
 * honest. 0 when the histogram is empty.
 */
u64 histogramPercentile(const core::LogHistogram &h, double q);

/**
 * Run the open-loop serving harness: admit @p stream (in arrival
 * order) into bounded per-shard queues, form rounds under the batch
 * budget, dispatch them to @p backend, and account latency and sheds.
 * After the stream ends the queues drain. Guarantees
 * offered == completed + shed.
 */
ServingReport runServing(ServingBackend &backend,
                         const std::vector<ServingRequest> &stream,
                         const ServingConfig &cfg);

//
// SLO + capacity search
//

/** The SLO a serving run is judged against. */
struct SloSpec
{
    double p99_s = 2e-3;          ///< end-to-end p99 budget
    bool require_zero_shed = true; ///< shed > 0 fails the SLO
};

/** Does @p r meet @p slo? */
bool meetsSlo(const ServingReport &r, const SloSpec &slo);

/** One probe of the capacity search. */
struct CapacityProbe
{
    double rate_per_s = 0.0;
    bool ok = false; ///< met the SLO
    u64 p99_ns = 0;
    u64 shed = 0;
    double throughput_per_s = 0.0;
};

/** Result of findCapacity. */
struct CapacityResult
{
    /** Highest probed rate that met the SLO (0 when even lo failed). */
    double capacity_per_s = 0.0;
    /** The report measured at capacity_per_s. */
    ServingReport at_capacity;
    std::vector<CapacityProbe> probes;
};

/**
 * Max-throughput-under-SLO search: @p run maps an offered rate to a
 * ServingReport (fresh backend + fresh stream per probe, same seed).
 * Doubles from @p lo_rate until the SLO breaks (or @p max_rate),
 * then bisects the bracket for @p refine_iters iterations.
 * Deterministic: probe sequence depends only on the arguments and the
 * (deterministic) reports.
 */
CapacityResult
findCapacity(const std::function<ServingReport(double)> &run,
             const SloSpec &slo, double lo_rate, double max_rate,
             unsigned refine_iters = 7);

//
// Reporting
//

/** One JSON object describing @p r (for the `serving` perf-json
 * block; schema in docs/serving.md). Deterministic field order. */
std::string servingReportJson(const ServingReport &r);

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_SERVING_HH
