/**
 * @file
 * Open-loop serving harness implementation (see serving.hh and
 * docs/serving.md).
 */

#include "runtime/serving.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace pimstm::runtime
{

//
// ArrivalProcess
//

ArrivalProcess::ArrivalProcess(const ArrivalConfig &cfg, u64 seed)
    : cfg_(cfg), rng_(deriveSeed(seed, 0x41525256 /* "ARRV" */))
{
    panicIf(cfg.rate_per_s <= 0, "arrival rate must be positive");
    if (cfg_.kind == ArrivalKind::Bursty) {
        const double f = cfg_.burst_fraction;
        const double B = cfg_.burst_factor;
        panicIf(f <= 0 || f >= 1, "burst_fraction must be in (0,1)");
        panicIf(B <= 1, "burst_factor must exceed 1");
        panicIf(cfg_.burst_dwell_s <= 0, "burst_dwell_s must be positive");
        // Long-run mean rate (1-f)*normal + f*B*normal == rate_per_s.
        normal_rate_ = cfg_.rate_per_s / (1.0 - f + f * B);
        burst_rate_ = B * normal_rate_;
        // Fraction of time bursting f = dwell_b / (dwell_b + dwell_n).
        dwell_normal_s_ = cfg_.burst_dwell_s * (1.0 - f) / f;
        bursting_ = false;
        state_end_s_ = exponential(dwell_normal_s_);
    }
}

double
ArrivalProcess::exponential(double mean)
{
    // Inverse-CDF; uniform() < 1 so log(1-u) is finite.
    return -mean * std::log(1.0 - rng_.uniform());
}

double
ArrivalProcess::next()
{
    if (cfg_.kind == ArrivalKind::Poisson) {
        now_ += exponential(1.0 / cfg_.rate_per_s);
        return now_;
    }
    // MMPP-2: exponential dwell means allow redrawing the residual
    // inter-arrival from scratch at each state switch (memorylessness).
    for (;;) {
        const double rate = bursting_ ? burst_rate_ : normal_rate_;
        const double candidate = now_ + exponential(1.0 / rate);
        if (candidate <= state_end_s_) {
            now_ = candidate;
            return now_;
        }
        now_ = state_end_s_;
        bursting_ = !bursting_;
        state_end_s_ = now_
            + exponential(bursting_ ? cfg_.burst_dwell_s
                                    : dwell_normal_s_);
    }
}

//
// ZipfianGenerator
//

ZipfianGenerator::ZipfianGenerator(u64 n, double theta)
    : n_(n), theta_(theta)
{
    panicIf(n == 0, "Zipfian universe must be non-empty");
    panicIf(theta < 0 || theta >= 1, "zipf theta must be in [0,1)");
    if (theta_ == 0.0)
        return; // uniform
    alpha_ = 1.0 / (1.0 - theta_);
    double zetan = 0.0;
    for (u64 i = 1; i <= n_; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
    zetan_ = zetan;
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_))
        / (1.0 - zeta2 / zetan_);
}

u64
ZipfianGenerator::next(Rng &rng)
{
    if (theta_ == 0.0)
        return rng.below(n_);
    // Gray et al. rejection-free inversion, as used by YCSB.
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const u64 rank = static_cast<u64>(
        static_cast<double>(n_)
        * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank < n_ ? rank : n_ - 1;
}

//
// Stream generation
//

std::vector<ServingRequest>
makeStream(const StreamConfig &cfg, u64 count)
{
    panicIf(cfg.op_weights.empty(), "stream needs at least one op class");
    double weight_sum = 0.0;
    for (double w : cfg.op_weights) {
        panicIf(w < 0, "op weights must be non-negative");
        weight_sum += w;
    }
    panicIf(weight_sum <= 0, "op weights must sum > 0");

    // Independent derived streams: perturbing one axis (say the op
    // mix) leaves the others bit-identical.
    ArrivalProcess arrivals(cfg.arrival, deriveSeed(cfg.seed, 1));
    ZipfianGenerator zipf(cfg.keys, cfg.zipf_theta);
    Rng rank_rng(deriveSeed(cfg.seed, 2));
    Rng op_rng(deriveSeed(cfg.seed, 3));
    Rng value_rng(deriveSeed(cfg.seed, 4));

    std::vector<ServingRequest> stream;
    stream.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        ServingRequest r;
        r.arrival_s = arrivals.next();
        r.key = static_cast<u32>(zipf.next(rank_rng));
        double pick = op_rng.uniform() * weight_sum;
        u8 op = 0;
        for (size_t c = 0; c < cfg.op_weights.size(); ++c) {
            pick -= cfg.op_weights[c];
            if (pick < 0) {
                op = static_cast<u8>(c);
                break;
            }
        }
        r.op = op;
        r.value = static_cast<u32>(value_rng.next() >> 32);
        stream.push_back(r);
    }
    return stream;
}

//
// Percentiles
//

u64
histogramPercentile(const core::LogHistogram &h, double q)
{
    if (h.count == 0)
        return 0;
    panicIf(q <= 0 || q > 1, "percentile q must be in (0,1]");
    const u64 target = std::max<u64>(
        1, static_cast<u64>(
               std::ceil(q * static_cast<double>(h.count))));
    u64 cum = 0;
    for (size_t b = 0; b < core::LogHistogram::kBuckets; ++b) {
        cum += h.buckets[b];
        if (cum >= target) {
            // Inclusive upper bound of bucket b: [2^(b-1), 2^b).
            return b == 0 ? 0 : (u64{1} << b) - 1;
        }
    }
    return h.max; // unreachable (cum == count >= target by then)
}

//
// The harness
//

namespace
{

u64
toNs(double seconds)
{
    return seconds <= 0
        ? 0
        : static_cast<u64>(std::llround(seconds * 1e9));
}

/** Per-window accumulation for the completion timeline. */
struct Window
{
    u64 completed = 0;
    u64 shed = 0;
    core::LogHistogram e2e_ns;
};

} // namespace

ServingReport
runServing(ServingBackend &backend,
           const std::vector<ServingRequest> &stream,
           const ServingConfig &cfg)
{
    const unsigned shards = backend.numShards();
    panicIf(shards == 0, "serving backend has no shards");
    panicIf(cfg.max_batch_per_shard == 0, "max_batch_per_shard must be >= 1");
    panicIf(cfg.queue_cap_per_shard < cfg.max_batch_per_shard,
            "queue cap below batch size would starve the batcher");
    panicIf(cfg.batch_budget_s < 0, "batch budget must be >= 0");

    ServingReport rep;
    rep.shards.resize(shards);

    std::vector<std::deque<u32>> queues(shards);
    std::map<u64, Window> windows;
    const double win = cfg.timeline_window_s > 0 ? cfg.timeline_window_s
                                                 : 5e-3;

    size_t next = 0; // first not-yet-admitted stream index
    u64 queued = 0;
    double clock = 0.0;

    // Admit stream[next] at its arrival time: route, bound-check,
    // shed on overflow.
    auto admitNext = [&]() {
        const ServingRequest &r = stream[next];
        const unsigned s = backend.shardOf(r);
        panicIf(s >= shards, "backend routed past its shard count");
        ++rep.offered;
        ++rep.shards[s].offered;
        if (queues[s].size() >= cfg.queue_cap_per_shard) {
            ++rep.shed;
            ++rep.shards[s].shed;
            ++windows[static_cast<u64>(r.arrival_s / win)].shed;
        } else {
            queues[s].push_back(static_cast<u32>(next));
            ++queued;
            rep.shards[s].peak_queue = std::max(
                rep.shards[s].peak_queue,
                static_cast<u32>(queues[s].size()));
        }
        ++next;
    };

    auto anyShardDispatchable = [&]() {
        for (unsigned s = 0; s < shards; ++s)
            if (queues[s].size() >= cfg.max_batch_per_shard)
                return true;
        return false;
    };

    while (next < stream.size() || queued > 0) {
        if (queued == 0)
            clock = std::max(clock, stream[next].arrival_s);

        // Admit everything that has arrived by now.
        while (next < stream.size()
               && stream[next].arrival_s <= clock)
            admitNext();
        if (queued == 0)
            continue; // everything admitted so far was shed; jump on

        // Pick the dispatch instant: as soon as a shard batch is
        // full, else when the oldest queued request's budget expires
        // — admitting (and possibly shedding) arrivals in between.
        if (!anyShardDispatchable()) {
            double oldest = 1e300;
            for (unsigned s = 0; s < shards; ++s)
                if (!queues[s].empty())
                    oldest = std::min(
                        oldest, stream[queues[s].front()].arrival_s);
            const double deadline = oldest + cfg.batch_budget_s;
            bool full = false;
            while (next < stream.size()
                   && stream[next].arrival_s <= deadline) {
                const double t = stream[next].arrival_s;
                admitNext();
                if (anyShardDispatchable()) {
                    clock = std::max(clock, t);
                    full = true;
                    break;
                }
            }
            if (!full)
                clock = std::max(clock, deadline);
        }

        // Form the round: up to max_batch_per_shard oldest per shard.
        std::vector<std::vector<ServingRequest>> batches(shards);
        for (unsigned s = 0; s < shards; ++s) {
            const size_t take = std::min<size_t>(
                queues[s].size(), cfg.max_batch_per_shard);
            if (take == 0)
                continue;
            batches[s].reserve(take);
            for (size_t k = 0; k < take; ++k) {
                batches[s].push_back(stream[queues[s].front()]);
                queues[s].pop_front();
            }
            queued -= take;
            ++rep.batches;
        }

        const RoundCost cost = backend.executeRound(batches);
        panicIf(cost.shard_busy_seconds.size() != shards,
                "backend cost must cover every shard");
        panicIf(cost.round_seconds < 0, "negative round cost");
        ++rep.rounds;
        rep.capacity_seconds
            += static_cast<double>(shards) * cost.round_seconds;

        const double done = clock + cost.round_seconds;
        for (unsigned s = 0; s < shards; ++s) {
            rep.shards[s].busy_seconds += cost.shard_busy_seconds[s];
            rep.busy_seconds += cost.shard_busy_seconds[s];
            if (batches[s].empty())
                continue;
            const double shard_done
                = clock + cost.shard_busy_seconds[s];
            Window &w = windows[static_cast<u64>(done / win)];
            for (const ServingRequest &r : batches[s]) {
                const u64 e2e = toNs(done - r.arrival_s);
                rep.e2e_ns.add(e2e);
                rep.shards[s].latency_ns.add(
                    toNs(shard_done - r.arrival_s));
                ++rep.completed;
                ++rep.shards[s].completed;
                ++w.completed;
                w.e2e_ns.add(e2e);
            }
        }
        clock = done;
        rep.makespan_s = std::max(rep.makespan_s, done);
    }

    panicIf(rep.offered != rep.completed + rep.shed,
            "serving conservation violated");
    panicIf(rep.offered != stream.size(), "stream not fully offered");

    // Collapse the window map into at most max_timeline_points
    // aggregated points.
    if (!windows.empty()) {
        const u64 cap = std::max<u32>(1, cfg.max_timeline_points);
        const u64 group
            = (windows.size() + cap - 1) / cap; // windows per point
        u64 idx = 0;
        TimelinePoint cur;
        core::LogHistogram cur_hist;
        for (const auto &[wi, w] : windows) {
            cur.completed += w.completed;
            cur.shed += w.shed;
            cur_hist.merge(w.e2e_ns);
            cur.t_end_s = static_cast<double>(wi + 1) * win;
            if (++idx % group == 0) {
                cur.p99_ns = histogramPercentile(cur_hist, 0.99);
                rep.timeline.push_back(cur);
                cur = TimelinePoint{};
                cur_hist = core::LogHistogram{};
            }
        }
        if (cur.completed > 0 || cur.shed > 0) {
            cur.p99_ns = histogramPercentile(cur_hist, 0.99);
            rep.timeline.push_back(cur);
        }
    }
    return rep;
}

//
// SLO + capacity search
//

bool
meetsSlo(const ServingReport &r, const SloSpec &slo)
{
    if (slo.require_zero_shed && r.shed > 0)
        return false;
    return static_cast<double>(histogramPercentile(r.e2e_ns, 0.99))
        <= slo.p99_s * 1e9;
}

CapacityResult
findCapacity(const std::function<ServingReport(double)> &run,
             const SloSpec &slo, double lo_rate, double max_rate,
             unsigned refine_iters)
{
    panicIf(lo_rate <= 0 || max_rate < lo_rate,
            "bad capacity search bracket");
    CapacityResult res;

    auto probe = [&](double rate) {
        ServingReport r = run(rate);
        CapacityProbe p;
        p.rate_per_s = rate;
        p.ok = meetsSlo(r, slo);
        p.p99_ns = histogramPercentile(r.e2e_ns, 0.99);
        p.shed = r.shed;
        p.throughput_per_s = r.throughputPerSec();
        res.probes.push_back(p);
        if (p.ok && rate > res.capacity_per_s) {
            res.capacity_per_s = rate;
            res.at_capacity = std::move(r);
        }
        return p.ok;
    };

    if (!probe(lo_rate))
        return res; // even the floor violates the SLO

    // Geometric expansion to bracket the knee.
    double good = lo_rate;
    double bad = 0.0;
    for (double rate = lo_rate * 2; rate <= max_rate; rate *= 2) {
        if (probe(rate)) {
            good = rate;
        } else {
            bad = rate;
            break;
        }
    }
    if (bad == 0.0)
        return res; // SLO held all the way to max_rate

    // Bisection.
    for (unsigned i = 0; i < refine_iters; ++i) {
        const double mid = 0.5 * (good + bad);
        if (probe(mid))
            good = mid;
        else
            bad = mid;
    }
    return res;
}

//
// JSON
//

namespace
{

void
appendHistogramJson(std::ostringstream &o, const core::LogHistogram &h)
{
    o << "{\"count\": " << h.count << ", \"mean_ns\": " << h.mean()
      << ", \"p50_ns\": " << histogramPercentile(h, 0.50)
      << ", \"p99_ns\": " << histogramPercentile(h, 0.99)
      << ", \"p999_ns\": " << histogramPercentile(h, 0.999)
      << ", \"max_ns\": " << (h.count ? h.max : 0) << "}";
}

} // namespace

std::string
servingReportJson(const ServingReport &r)
{
    std::ostringstream o;
    o.precision(17);
    o << "{\"offered\": " << r.offered
      << ", \"completed\": " << r.completed << ", \"shed\": " << r.shed
      << ", \"rounds\": " << r.rounds << ", \"batches\": " << r.batches
      << ", \"makespan_s\": " << r.makespan_s
      << ", \"throughput_per_s\": " << r.throughputPerSec()
      << ", \"mean_occupancy\": " << r.meanOccupancy()
      << ", \"e2e\": ";
    appendHistogramJson(o, r.e2e_ns);
    o << ", \"shards\": [";
    for (size_t s = 0; s < r.shards.size(); ++s) {
        const ShardServingStats &sh = r.shards[s];
        o << (s ? ", " : "") << "{\"offered\": " << sh.offered
          << ", \"completed\": " << sh.completed
          << ", \"shed\": " << sh.shed
          << ", \"peak_queue\": " << sh.peak_queue
          << ", \"busy_s\": " << sh.busy_seconds << ", \"p99_ns\": "
          << histogramPercentile(sh.latency_ns, 0.99) << "}";
    }
    o << "], \"timeline\": [";
    for (size_t i = 0; i < r.timeline.size(); ++i) {
        const TimelinePoint &t = r.timeline[i];
        o << (i ? ", " : "") << "{\"t_end_s\": " << t.t_end_s
          << ", \"completed\": " << t.completed
          << ", \"shed\": " << t.shed << ", \"p99_ns\": " << t.p99_ns
          << "}";
    }
    o << "]}";
    return o.str();
}

} // namespace pimstm::runtime
