#include "runtime/dpu_pool.hh"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace pimstm::runtime
{

DpuPool::DpuPool()
{
    // Enough pooled instances to keep every sweep worker in hits, with
    // a floor for small machines; beyond that, releases are discarded
    // to bound host memory.
    const unsigned hw = std::thread::hardware_concurrency();
    max_pooled_ = std::max<size_t>(8, 2 * std::max(1u, hw));
    if (const char *env = std::getenv("PIMSTM_NO_DPU_POOL"))
        enabled_ = std::strcmp(env, "0") == 0;
}

DpuPool &
DpuPool::global()
{
    static DpuPool pool;
    return pool;
}

std::unique_ptr<sim::Dpu>
DpuPool::acquire(const sim::DpuConfig &cfg,
                 const sim::TimingConfig &timing)
{
    std::unique_ptr<sim::Dpu> dpu;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (enabled_ && !free_.empty()) {
            dpu = std::move(free_.back());
            free_.pop_back();
            ++hits_;
        } else {
            ++misses_;
        }
    }
    if (dpu) {
        dpu->recycle(cfg, timing); // memset outside the lock
        return dpu;
    }
    return std::make_unique<sim::Dpu>(cfg, timing);
}

void
DpuPool::release(std::unique_ptr<sim::Dpu> dpu)
{
    if (!dpu)
        return;
    std::lock_guard<std::mutex> lk(mutex_);
    if (!enabled_ || free_.size() >= max_pooled_) {
        ++discards_;
        return; // dpu destructs on return (after the lock is dropped)
    }
    free_.push_back(std::move(dpu));
}

DpuPool::Stats
DpuPool::stats() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.discards = discards_;
    s.pooled = free_.size();
    return s;
}

void
DpuPool::clear()
{
    std::vector<std::unique_ptr<sim::Dpu>> doomed;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        doomed.swap(free_);
    }
    // Destruction (freeing materialized tiers) happens outside the lock.
}

void
DpuPool::setEnabled(bool on)
{
    std::lock_guard<std::mutex> lk(mutex_);
    enabled_ = on;
}

bool
DpuPool::enabled() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return enabled_;
}

} // namespace pimstm::runtime
