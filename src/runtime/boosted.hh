/**
 * @file
 * Transactional boosting (Herlihy & Koskinen, PPoPP'08) over PIM-STM:
 * a library of boosted data structures that provide transaction-safe
 * operations at the *abstract* level — striped abstract locks decide
 * conflicts by operation semantics (two inserts to different keys
 * commute and never conflict), operations apply eagerly with raw timed
 * accesses, and a semantic undo log of inverse operations restores the
 * abstract state on abort. This removes the word-level false conflicts
 * that dominate high-contention structure workloads under every one of
 * the paper's seven STMs (probe chains, counters, head/tail words).
 *
 * Protocol (docs/boosting.md has the full rules):
 *  - Abstract locks are strict two-phase: acquired before the
 *    operation applies, released only by the Stm commit/abort wrappers
 *    (core::SemanticLockOwner), in reverse acquisition order.
 *  - A held stripe is polled StmConfig::boost_wait_polls times,
 *    cm_wait_cycles apart; on timeout the transaction aborts with
 *    AbortReason::BoostTimeout and retries through the normal
 *    atomically() loop (back-off breaks symmetric deadlocks).
 *  - Multi-stripe acquisitions sort stripes ascending, so lock order
 *    is deterministic and deadlock-free for every composed operation.
 *  - Physical probe-chain mutation is serialized by a short structure
 *    latch (sim::AtomicRegister key) held only for the duration of the
 *    physical operation — never across an abort point.
 *  - Every probe/update of a stripe word and every undo replay is
 *    charged through the simulated cost model at the stripe table's
 *    tier, so boosted and word-based runs are comparable
 *    cycle-for-cycle.
 *
 * Irrevocable (serial-fallback) transactions skip both locks and undo
 * logging: they run solo after a quiesce, so exclusivity is implied
 * and abort is impossible.
 */

#ifndef PIMSTM_RUNTIME_BOOSTED_HH
#define PIMSTM_RUNTIME_BOOSTED_HH

#include <functional>
#include <vector>

#include "core/stm.hh"
#include "runtime/shared_array.hh"
#include "runtime/tx_hashmap.hh"

namespace pimstm::runtime
{

/** Deterministic atomic-register key for a structure's physical latch
 * (distinct per structure id; @p instance disambiguates multiple
 * structures of the same kind on one DPU). */
constexpr u32
boostLatchKey(core::StructureId sid, u32 instance = 0)
{
    return 0xb0057000u + (static_cast<u32>(sid) << 4) + instance;
}

/** RAII over the structure latch: a short critical section that
 * serializes physical (multi-word) mutation of a boosted structure.
 * Must never enclose an abort point. */
class LatchGuard
{
  public:
    LatchGuard(sim::DpuContext &ctx, u32 key) : ctx_(ctx), key_(key)
    {
        ctx_.acquire(key_);
    }

    ~LatchGuard() { ctx_.release(key_); }

    LatchGuard(const LatchGuard &) = delete;
    LatchGuard &operator=(const LatchGuard &) = delete;

  private:
    sim::DpuContext &ctx_;
    u32 key_;
};

/**
 * Striped abstract-lock table for one boosted structure. Keys hash to
 * one of a power-of-two number of stripes; each stripe is a
 * reader-writer lock (readers = commuting operations, writer =
 * non-commuting). Stripe state lives in host memory — the fiber
 * scheduler only switches at cost-charge points, so the
 * inspect-then-mutate sequences below are atomic by construction — but
 * a simulated twin of 8 bytes per stripe is reserved and every probe
 * and update is charged against it, so the abstract locks cost what
 * they would cost on the DPU.
 */
class AbstractLockManager final : public core::SemanticLockOwner
{
  public:
    /** Reserve @p stripes stripe words (power of two) in @p tier of
     * @p dpu. The default tier is MRAM: stripe tables are small but
     * must never evict descriptors from a tight WRAM budget. */
    AbstractLockManager(sim::Dpu &dpu, core::Stm &stm,
                        core::StructureId sid, u32 stripes = 64,
                        Tier tier = Tier::Mram);

    u32 numStripes() const { return stripes_; }
    core::StructureId structureId() const { return sid_; }

    /** Host-pure stripe hash (exposed for the fiber-free tests). */
    static u32
    stripeHash(u32 key)
    {
        return (key * 2654435761u) >> 16;
    }

    u32 stripeOf(u32 key) const { return stripeHash(key) & (stripes_ - 1); }

    /** Acquire the stripe covering @p key (2PL; released at
     * commit/abort). Aborts the transaction on poll timeout. */
    void
    acquireKey(core::TxHandle &tx, u32 key, bool exclusive)
    {
        acquireStripe(tx, stripeOf(key), exclusive);
    }

    /** Acquire one stripe by index; reentrant (holding exclusive
     * covers a shared request; shared-to-exclusive upgrades in
     * place). */
    void acquireStripe(core::TxHandle &tx, u32 stripe, bool exclusive);

    /** Acquire the stripes covering @p n keys in ascending stripe
     * order (deduplicated) — the deterministic multi-lock order that
     * keeps composed operations deadlock-free. */
    void acquireKeys(core::TxHandle &tx, const u32 *keys, size_t n,
                     bool exclusive);

    /**
     * Release a *shared* stripe hold before commit. Only legal for
     * validation reads whose answer stays correct once released (a
     * monotone bound — see BoostedQueue's empty check); a no-op when
     * the transaction holds the stripe exclusively.
     */
    void earlyReleaseShared(core::TxHandle &tx, u32 stripe);

    /** SemanticLockOwner: hand back a stripe at commit/abort. */
    void releaseAbstract(sim::DpuContext &ctx, unsigned tasklet,
                         u32 stripe, bool exclusive) override;

    /** True when no stripe is held (tests assert this at quiesce). */
    bool quiescent() const;

  private:
    struct Stripe
    {
        /** Tasklet holding the stripe exclusively, -1 when none. */
        int writer = -1;
        /** Bitmask of tasklets holding the stripe shared. */
        u32 readers = 0;
    };

    /** Charge one 8-byte probe (read) or update (write) of a stripe
     * word at the table's tier. */
    void chargeProbe(sim::DpuContext &ctx);
    void chargeUpdate(sim::DpuContext &ctx);

    core::Stm &stm_;
    core::StructureId sid_;
    u32 stripes_;
    Tier tier_;
    /** Simulated twin of the stripe table (2 words per stripe). */
    SharedArray32 words_;
    std::vector<Stripe> state_;
};

/**
 * Boosted view of a TxHashMap: key-granular abstract locks (lookups
 * share, mutations exclude), eager physical operations under the
 * structure latch, inverse operations logged for abort. Commuting
 * operations on different keys proceed in parallel without ever
 * conflicting at the STM word level.
 *
 * The underlying map must not be accessed through its word-based
 * transactional interface while boosted transactions are in flight —
 * the two isolation schemes do not compose within one run.
 */
class BoostedMap
{
  public:
    BoostedMap(sim::Dpu &dpu, core::Stm &stm, TxHashMap &map,
               u32 stripes = 64,
               core::StructureId sid = core::StructureId::Map,
               u32 latch_instance = 0);

    /** Insert or update; false when the table is full. @p outcome
     * (when non-null) reports which case applied. */
    bool insert(core::TxHandle &tx, u32 key, u32 value,
                InsertOutcome *outcome = nullptr);

    /** Lookup under a shared key lock; false when absent. */
    bool lookup(core::TxHandle &tx, u32 key, u32 &value_out);

    /** Erase; false when absent. */
    bool erase(core::TxHandle &tx, u32 key);

    /**
     * Element count (requires enableSizeCounters on the underlying
     * map). Inherently non-commuting with every mutation: acquires all
     * stripes shared — a whole-structure read lock — then sums the
     * counter shards directly.
     */
    u32 size(core::TxHandle &tx);

    AbstractLockManager &locks() { return locks_; }
    TxHashMap &map() { return map_; }

  private:
    void logUndo(core::TxHandle &tx,
                 std::function<void(sim::DpuContext &)> apply);

    TxHashMap &map_;
    AbstractLockManager locks_;
    core::StructureId sid_;
    u32 latch_key_;
};

/** Boosted set: a BoostedMap with unit values and set vocabulary. */
class BoostedSet
{
  public:
    BoostedSet(sim::Dpu &dpu, core::Stm &stm, TxHashMap &map,
               u32 stripes = 64, u32 latch_instance = 0)
        : inner_(dpu, stm, map, stripes, core::StructureId::Set,
                 latch_instance)
    {
        map.setStructureId(core::StructureId::Set);
    }

    /** True when @p value was newly added. */
    bool
    add(core::TxHandle &tx, u32 value)
    {
        InsertOutcome out = InsertOutcome::Full;
        inner_.insert(tx, value, 1, &out);
        return out == InsertOutcome::Inserted;
    }

    bool
    contains(core::TxHandle &tx, u32 value)
    {
        u32 ignored = 0;
        return inner_.lookup(tx, value, ignored);
    }

    /** True when @p value was present. */
    bool
    remove(core::TxHandle &tx, u32 value)
    {
        return inner_.erase(tx, value);
    }

    u32 size(core::TxHandle &tx) { return inner_.size(tx); }

    AbstractLockManager &locks() { return inner_.locks(); }

  private:
    BoostedMap inner_;
};

/**
 * Boosted FIFO ring queue with the classic two-lock protocol: enqueue
 * holds only the tail lock, dequeue holds the head lock plus a
 * momentary shared tail probe for the empty check (released early when
 * the queue is observably non-empty; held to commit when the answer
 * was "empty", the one non-commuting boundary case). Enqueues and
 * dequeues on a non-empty queue commute and run in parallel.
 *
 * Capacity contract: the ring never recycles slots under concurrent
 * retreat, so the caller must size @p capacity to bound
 * (enqueues - dequeues) at every instant; overflow is a panic, not a
 * "full" return. Undo is pointer retreat — the slot value itself is
 * still in place.
 */
class BoostedQueue
{
  public:
    BoostedQueue(sim::Dpu &dpu, core::Stm &stm, Tier tier, u32 capacity);

    /** Append @p value (panics on ring overflow; see class docs). */
    void enqueue(core::TxHandle &tx, u32 value);

    /** Pop the oldest value; false when empty. */
    bool dequeue(core::TxHandle &tx, u32 &value_out);

    u32 capacity() const { return capacity_; }

    /** Untimed host-side element count (verification). */
    u32
    sizeHost(sim::Dpu &dpu) const
    {
        return words_.peek(dpu, kTailWord) - words_.peek(dpu, kHeadWord);
    }

    AbstractLockManager &locks() { return locks_; }

  private:
    static constexpr u32 kHeadWord = 0;
    static constexpr u32 kTailWord = 1;
    static constexpr u32 kSlot0 = 2;
    static constexpr u32 kHeadStripe = 0;
    static constexpr u32 kTailStripe = 1;

    void logUndo(core::TxHandle &tx,
                 std::function<void(sim::DpuContext &)> apply);

    u32 capacity_;
    /** [0]=head, [1]=tail, [2..2+capacity) = slots. */
    SharedArray32 words_;
    AbstractLockManager locks_;
};

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_BOOSTED_HH
