/**
 * @file
 * Process-wide pool of simulated DPUs, so the sweep harnesses recycle
 * fully-constructed instances (materialized memory tiers, allocated
 * buffers) instead of constructing and zero-filling a fresh 64 MB MRAM
 * per sweep point. Recycling goes through sim::Dpu::recycle(), which
 * restores the exact observable state of a fresh Dpu — pooled and
 * fresh runs are bitwise identical (tested), so the pool is a pure
 * host-side optimization, like fiber-switch elision.
 *
 * The pool is shared by all host threads of runtime::runWorkloadMany;
 * acquire/release are mutex-protected (the expensive recycle memset
 * runs outside the lock). PIMSTM_NO_DPU_POOL=1 disables pooling for
 * cross-checking; hit/miss counters feed the --perf-json artifact.
 */

#ifndef PIMSTM_RUNTIME_DPU_POOL_HH
#define PIMSTM_RUNTIME_DPU_POOL_HH

#include <memory>
#include <mutex>
#include <vector>

#include "sim/dpu.hh"

namespace pimstm::runtime
{

/** Bounded free-list of recyclable sim::Dpu instances. */
class DpuPool
{
  public:
    /** The process-wide pool (pooling state of PIMSTM_NO_DPU_POOL is
     * read once, at first use). */
    static DpuPool &global();

    /** A Dpu in the fresh-constructed state for (cfg, timing): a
     * recycled pooled instance when available, else a new one. */
    std::unique_ptr<sim::Dpu> acquire(const sim::DpuConfig &cfg,
                                      const sim::TimingConfig &timing);

    /**
     * Return a Dpu for reuse. Callers must only release instances
     * whose run completed normally (an exception unwinding through
     * Dpu::run leaves the fiber state unusable) — on error paths,
     * simply destroy the unique_ptr instead.
     */
    void release(std::unique_ptr<sim::Dpu> dpu);

    /** Host-side reuse counters for the perf artifact. */
    struct Stats
    {
        u64 hits = 0;     ///< acquires served by recycling
        u64 misses = 0;   ///< acquires that constructed a fresh Dpu
        u64 discards = 0; ///< releases dropped because the pool was full
        size_t pooled = 0; ///< instances currently in the free list
    };

    Stats stats() const;

    /** Drop every pooled instance (tests; bounds host memory). */
    void clear();

    /** @{ Pooling toggle (tests / PIMSTM_NO_DPU_POOL). When disabled,
     * acquire always constructs and release always destroys. */
    void setEnabled(bool on);
    bool enabled() const;
    /** @} */

  private:
    DpuPool();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<sim::Dpu>> free_;
    size_t max_pooled_;
    bool enabled_ = true;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 discards_ = 0;
};

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_DPU_POOL_HH
