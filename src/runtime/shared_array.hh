/**
 * @file
 * Typed views over simulated DPU memory: a thin address-arithmetic
 * wrapper so workloads can allocate arrays/structs in MRAM or WRAM and
 * address elements without sprinkling byte offsets everywhere.
 */

#ifndef PIMSTM_RUNTIME_SHARED_ARRAY_HH
#define PIMSTM_RUNTIME_SHARED_ARRAY_HH

#include "sim/dpu.hh"
#include "util/logging.hh"

namespace pimstm::runtime
{

using sim::Addr;
using sim::Tier;

/** A contiguous array of 32-bit words in simulated memory. */
class SharedArray32
{
  public:
    SharedArray32() = default;

    /** Allocate @p count words in @p tier of @p dpu. */
    SharedArray32(sim::Dpu &dpu, Tier tier, size_t count)
        : tier_(tier), count_(count)
    {
        base_ = sim::makeAddr(tier, dpu.memory(tier).alloc(count * 4, 8));
    }

    /** Address of element @p i. */
    Addr
    at(size_t i) const
    {
        panicIf(i >= count_, "SharedArray32 index ", i, " out of range ",
                count_);
        return base_ + static_cast<Addr>(i * 4);
    }

    Addr operator[](size_t i) const { return at(i); }

    size_t size() const { return count_; }
    Addr base() const { return base_; }
    Tier tier() const { return tier_; }

    /** Untimed bulk initialization (host-side setup, before launch). */
    void
    fill(sim::Dpu &dpu, u32 value) const
    {
        auto &mem = dpu.memory(tier_);
        for (size_t i = 0; i < count_; ++i)
            mem.write32(sim::addrOffset(base_) + static_cast<u32>(i * 4),
                        value);
    }

    /** Untimed host-side peek (setup / verification only). */
    u32
    peek(sim::Dpu &dpu, size_t i) const
    {
        return dpu.memory(tier_).read32(sim::addrOffset(at(i)));
    }

    /** Untimed host-side poke (setup only). */
    void
    poke(sim::Dpu &dpu, size_t i, u32 v) const
    {
        dpu.memory(tier_).write32(sim::addrOffset(at(i)), v);
    }

  private:
    Addr base_ = 0;
    Tier tier_ = Tier::Mram;
    size_t count_ = 0;
};

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_SHARED_ARRAY_HH
