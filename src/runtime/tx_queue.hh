/**
 * @file
 * A transactional work queue: a bounded ticket dispenser whose head
 * index lives in simulated memory and is popped inside a (tiny)
 * transaction. Labyrinth uses it to hand path-routing jobs to tasklets,
 * exactly like the "very short transaction used to extract jobs from a
 * shared queue" the paper describes (§4.2.1) — short, but contended, so
 * it is where VR's spurious upgrade aborts show up.
 */

#ifndef PIMSTM_RUNTIME_TX_QUEUE_HH
#define PIMSTM_RUNTIME_TX_QUEUE_HH

#include "core/stm.hh"
#include "runtime/shared_array.hh"

namespace pimstm::runtime
{

/** Transactional ticket dispenser over [0, size). */
class TxQueue
{
  public:
    TxQueue() = default;

    TxQueue(sim::Dpu &dpu, Tier tier, u32 size)
        : head_(dpu, tier, 1), size_(size)
    {
        head_.poke(dpu, 0, 0);
    }

    /**
     * Pop the next ticket inside its own transaction.
     * @return ticket index, or -1 when the queue is drained.
     */
    s64
    pop(core::Stm &stm, sim::DpuContext &ctx)
    {
        s64 ticket = -1;
        core::atomically(stm, ctx, [&](core::TxHandle &tx) {
            const u32 h = tx.read(head_.at(0));
            if (h >= size_) {
                ticket = -1;
                return;
            }
            tx.write(head_.at(0), h + 1);
            ticket = h;
        });
        return ticket;
    }

    /** Pop as part of an enclosing transaction. */
    s64
    popInTx(core::TxHandle &tx)
    {
        const u32 h = tx.read(head_.at(0));
        if (h >= size_)
            return -1;
        tx.write(head_.at(0), h + 1);
        return h;
    }

    u32 size() const { return size_; }

  private:
    SharedArray32 head_;
    u32 size_ = 0;
};

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_TX_QUEUE_HH
