#include "runtime/driver.hh"

#include "core/switchable.hh"
#include "runtime/adaptive.hh"
#include "runtime/dpu_pool.hh"
#include "util/host_alloc.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pimstm::runtime
{

RunResult
runWorkload(Workload &workload, const RunSpec &spec)
{
    fatalIf(spec.tasklets == 0 || spec.tasklets > 24,
            "tasklet count must be in [1, 24]");

    util::tuneHostAllocator();

    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = spec.mram_bytes;
    dpu_cfg.seed = spec.seed;
    dpu_cfg.always_switch = spec.sim_always_switch;
    dpu_cfg.faults = spec.faults;
    dpu_cfg.watchdog_cycles = spec.watchdog_cycles;
    if (spec.atomic_bits_override)
        dpu_cfg.atomic_bits = spec.atomic_bits_override;

    // Recycle a pooled DPU when one is free: bitwise-identical to a
    // fresh construction, without re-zero-filling a 64 MB MRAM. On any
    // exception below, the unique_ptr destroys the instance instead of
    // pooling it (a Dpu unwound mid-run is not reusable).
    auto dpu_owner = DpuPool::global().acquire(dpu_cfg, spec.timing);
    sim::Dpu &dpu = *dpu_owner;

    core::StmConfig stm_cfg;
    stm_cfg.kind = spec.kind;
    stm_cfg.metadata_tier = spec.tier;
    stm_cfg.num_tasklets = spec.tasklets;
    workload.configure(stm_cfg);
    if (spec.lock_table_entries_override)
        stm_cfg.lock_table_entries_override = spec.lock_table_entries_override;
    if (spec.norec_start_wait_override >= 0)
        stm_cfg.norec_start_wait = spec.norec_start_wait_override != 0;
    if (spec.cm_wait_polls_override >= 0)
        stm_cfg.cm_wait_polls =
            static_cast<unsigned>(spec.cm_wait_polls_override);
    if (spec.cm_wait_cycles_override)
        stm_cfg.cm_wait_cycles = spec.cm_wait_cycles_override;
    if (spec.abort_backoff_base_override)
        stm_cfg.abort_backoff_base = spec.abort_backoff_base_override;
    if (spec.abort_backoff_max_shift_override >= 0)
        stm_cfg.abort_backoff_max_shift =
            static_cast<unsigned>(spec.abort_backoff_max_shift_override);
    if (spec.serial_fallback_override)
        stm_cfg.serial_fallback_after = spec.serial_fallback_override;
    if (spec.boosting)
        stm_cfg.boosting = true;
    if (spec.durable) {
        // The adaptive controller re-plans layout and can switch the
        // live STM kind; neither composes with a persistent log whose
        // format is fixed at reserveMetadata time.
        fatalIf(spec.adaptive.enabled,
                "durable mode is incompatible with the adaptive controller");
        stm_cfg.durable = true;
    }

    // Observability (host-only; docs/observability.md). The buffer is
    // shared with the RunResult; the Dpu and StmConfig only borrow it,
    // and the Dpu's sink is cleared before the instance is pooled.
    std::shared_ptr<core::TraceBuffer> trace_buf;
    if (spec.trace) {
        trace_buf =
            std::make_shared<core::TraceBuffer>(spec.trace_buffer_capacity);
        stm_cfg.trace = trace_buf.get();
        dpu.setTraceSink(trace_buf.get());
    }

    // Online adaptation (docs/adaptive.md): kind switching needs the
    // SwitchableStm router; hot-lock migration needs a heat vector and
    // a WRAM cache. Both change simulated layout/charging, so they are
    // gated on the controller actually being enabled — controller-off
    // stays on the plain makeStm path, bitwise identical (CI-gated).
    const bool adaptive_on = spec.adaptive.enabled;
    const bool switchable = adaptive_on && spec.adaptive.tune_kind &&
        !spec.adaptive.kind_candidates.empty();
    if (adaptive_on && spec.adaptive.tune_migration)
        stm_cfg.hot_lock_capacity = spec.adaptive.hot_lock_capacity;

    // May throw FatalError when the placement is infeasible — that is
    // the paper's "cannot run with WRAM metadata" case.
    auto stm = switchable
        ? core::makeSwitchableStm(dpu, stm_cfg,
                                  spec.adaptive.kind_candidates)
        : core::makeStm(dpu, stm_cfg);

    workload.setup(dpu, *stm);

    // Setup writes MRAM through the untimed host port; on hardware
    // that load DMA completes before the program launches, so the
    // initial image is durable by construction. Fence the persist
    // boundary here so an early crash cannot tear data the tasklets
    // never wrote.
    if (spec.durable)
        dpu.mram().fence();

    core::Stm *stm_ptr = stm.get();
    Workload *wl = &workload;
    dpu.addTasklets(spec.tasklets, [wl, stm_ptr](sim::DpuContext &ctx) {
        wl->tasklet(ctx, *stm_ptr);
    });

    std::unique_ptr<AdaptiveController> controller;
    if (adaptive_on) {
        controller =
            std::make_unique<AdaptiveController>(*stm, dpu, spec.adaptive);
        dpu.setEpochHook(spec.adaptive.epoch_cycles,
                         [&controller] { controller->onEpoch(); });
    }

    // Durable mode's crash-restart loop (docs/durability.md): a
    // whole-DPU crash destroys WRAM and tears unflushed MRAM lines.
    // Recover the STM from its durable log, re-register the tasklets
    // (they restart their bodies from scratch, like a real relaunch)
    // and run again, carrying statistics across rounds. Without
    // durable mode the crash propagates to the caller.
    sim::DpuStats crashed_rounds;
    unsigned restarts = 0;
    for (;;) {
        try {
            dpu.run();
            break;
        } catch (const sim::DpuCrashError &) {
            if (!spec.durable)
                throw;
            fatalIf(restarts >= spec.max_restarts,
                    "DPU crash-restart budget exhausted (max_restarts=",
                    spec.max_restarts, ")");
            ++restarts;
            crashed_rounds += dpu.stats();
            dpu.resetRun(/*reset_faults=*/false);
            recoverDpu(dpu, *stm_ptr);
            dpu.addTasklets(spec.tasklets,
                            [wl, stm_ptr](sim::DpuContext &ctx) {
                                wl->tasklet(ctx, *stm_ptr);
                            });
        }
    }
    if (adaptive_on)
        dpu.setEpochHook(0, nullptr); // borrowed, like the trace sink
    workload.verify(dpu, *stm);

    RunResult r;
    r.stm = stm->aggregateStats();
    if (controller)
        r.adaptive = controller->report();
    r.dpu = dpu.stats();
    r.dpu += crashed_rounds; // rounds ended by a recovered DPU crash
    r.seconds = spec.timing.cyclesToSeconds(r.dpu.total_cycles);
    r.throughput =
        r.seconds > 0 ? static_cast<double>(r.stm.commits) / r.seconds : 0;
    r.app_ops_per_sec =
        r.seconds > 0 ? static_cast<double>(workload.appOps()) / r.seconds
                      : 0;
    r.abort_rate = r.stm.abortRate();
    r.extra = workload.extraMetrics();

    const auto busy = r.dpu.busyCycles();
    if (busy > 0) {
        for (size_t p = 0; p < sim::kNumPhases; ++p) {
            r.phase_share[p] =
                static_cast<double>(r.dpu.phase_cycles[p]) /
                static_cast<double>(busy);
        }
    }

    // Fold this run's robustness counters into the process-wide totals
    // surfaced by --perf-json (host observability only).
    sim::FaultTotals ft;
    ft.injected_stalls = r.dpu.injected_stalls;
    ft.injected_acq_delays = r.dpu.injected_acq_delays;
    ft.tasklet_crashes = r.dpu.tasklet_crashes;
    ft.injected_aborts = r.stm.injected_aborts;
    ft.escalations = r.stm.escalations;
    ft.serial_commits = r.stm.serial_commits;
    ft.dpu_crashes = r.dpu.dpu_crashes;
    sim::accumulateFaultTotals(ft);

    if (trace_buf) {
        core::accumulateTraceTotals(*trace_buf);
        r.trace = trace_buf;
        dpu.setTraceSink(nullptr);
    }

    // The STM (which references the DPU) must be gone before the DPU
    // can be handed to another sweep point.
    stm.reset();
    DpuPool::global().release(std::move(dpu_owner));
    return r;
}

core::RecoveryReport
recoverDpu(sim::Dpu &, core::Stm &stm)
{
    return stm.recoverAfterCrash();
}

std::vector<RunOutcome>
runWorkloadMany(const WorkloadFactory &factory,
                const std::vector<RunSpec> &specs)
{
    std::vector<RunOutcome> outcomes(specs.size());
    util::parallelFor(specs.size(), [&](size_t i) {
        auto wl = factory();
        try {
            outcomes[i].result = runWorkload(*wl, specs[i]);
            outcomes[i].ok = true;
        } catch (const FatalError &e) {
            outcomes[i].ok = false;
            outcomes[i].error = e.what();
        }
    });
    return outcomes;
}

} // namespace pimstm::runtime
