/**
 * @file
 * A concurrent open-addressing hash map built on the PIM-STM API —
 * the concurrent-data-structure layer the paper's conclusion proposes
 * building on top of PIM-STM. One instance lives in a single DPU's
 * MRAM (transactions are DPU-local by design); the distributed variant
 * in hostapp/distributed_kv.hh shards instances across DPUs.
 *
 * Slots are (key, value) word pairs with linear probing; erased slots
 * become tombstones so probe chains stay intact. All three operations
 * are usable either standalone (own transaction) or compositionally
 * within an enclosing transaction — the composability argument for TM
 * over locks (§1).
 *
 * The probe loops are templated over an accessor so the identical
 * logic serves two access paths:
 *   - TxAccess      word-transactional (tx.read/tx.write), the
 *                   default path every existing caller uses;
 *   - DirectAccess  raw timed accesses (ctx.read32/write32), used by
 *                   runtime::BoostedMap which provides isolation at
 *                   the abstract level instead (docs/boosting.md).
 * The direct path additionally captures displaced values so the
 * boosted layer can log semantic inverse operations.
 *
 * size() is backed by optional per-tasklet sharded counters: each
 * tasklet increments its own shard word, so concurrent inserts to
 * different keys no longer collide on one shared counter word (a
 * standing false-conflict hotspot when callers kept an external
 * count); size() sums the shards transactionally on read. Shards are
 * u32 words updated with wrapping arithmetic — an individual shard
 * may underflow when one tasklet erases what another inserted, but
 * the mod-2^32 sum is exact.
 */

#ifndef PIMSTM_RUNTIME_TX_HASHMAP_HH
#define PIMSTM_RUNTIME_TX_HASHMAP_HH

#include "core/stm.hh"
#include "runtime/shared_array.hh"

namespace pimstm::runtime
{

/** Accessor running map internals through the word-based STM. */
struct TxAccess
{
    core::TxHandle &tx;
    /** Tx path never captures displaced values (the write log is the
     * undo mechanism); keeps the charge sequence identical to the
     * pre-template implementation. */
    static constexpr bool kCaptureOld = false;

    u32 read(sim::Addr a) { return tx.read(a); }
    void write(sim::Addr a, u32 v) { tx.write(a, v); }
    unsigned taskletId() { return tx.ctx().taskletId(); }
};

/** Accessor running map internals as raw timed accesses. */
struct DirectAccess
{
    sim::DpuContext &ctx;
    static constexpr bool kCaptureOld = true;

    u32 read(sim::Addr a) { return ctx.read32(a); }
    void write(sim::Addr a, u32 v) { ctx.write32(a, v); }
    unsigned taskletId() { return ctx.taskletId(); }
};

/** Outcome of an insert (the boosted layer needs the distinction to
 * pick the right inverse operation). */
enum class InsertOutcome : u8
{
    Inserted, ///< key was absent; a new slot was claimed
    Updated,  ///< key existed; its value was overwritten
    Full,     ///< table full; nothing was mutated
};

/** Transactional open-addressing hash map over one DPU's memory. */
class TxHashMap
{
  public:
    static constexpr u32 kEmpty = 0xffffffffu;
    static constexpr u32 kTombstone = 0xfffffffeu;

    TxHashMap() = default;

    /** Allocate a map of @p capacity slots (power of two) in @p tier. */
    TxHashMap(sim::Dpu &dpu, Tier tier, u32 capacity)
        : capacity_(capacity),
          keys_(dpu, tier, capacity),
          values_(dpu, tier, capacity)
    {
        fatalIf(!isPow2(capacity),
                "TxHashMap capacity must be a power of two");
        keys_.fill(dpu, kEmpty);
        values_.fill(dpu, 0);
    }

    u32 capacity() const { return capacity_; }

    /** Keys may not collide with the slot markers. */
    static bool
    validKey(u32 key)
    {
        return key != kEmpty && key != kTombstone;
    }

    /**
     * Allocate @p shards per-tasklet size-counter words in @p tier and
     * start maintaining them. Opt-in (and only legal on an empty map)
     * so maps that never call size() pay nothing — and existing
     * memory layouts stay bitwise identical.
     */
    void
    enableSizeCounters(sim::Dpu &dpu, Tier tier, u32 shards)
    {
        panicIf(shards == 0, "TxHashMap size counters need >= 1 shard");
        panicIf(size_shard_count_ != 0,
                "TxHashMap size counters enabled twice");
        panicIf(population(dpu) != 0,
                "TxHashMap size counters must be enabled while empty");
        size_shard_count_ = shards;
        size_shards_ = SharedArray32(dpu, tier, shards);
        size_shards_.fill(dpu, 0);
    }

    bool sizeCountersEnabled() const { return size_shard_count_ != 0; }

    /** @{ Counter-shard layout, for the boosted layer's direct
     * summing (BoostedMap::size holds every stripe shared instead of
     * reading the shards transactionally). */
    u32 sizeShardCount() const { return size_shard_count_; }

    sim::Addr
    sizeShardAddr(u32 shard) const
    {
        return size_shards_.at(shard);
    }
    /** @} */

    /** Sum the sharded counters transactionally. */
    u32
    size(core::TxHandle &tx)
    {
        panicIf(size_shard_count_ == 0,
                "TxHashMap::size() without enableSizeCounters()");
        core::StructureScope scope(tx.descriptor(),
                                   static_cast<core::StructureId>(sid_));
        u32 n = 0;
        for (u32 s = 0; s < size_shard_count_; ++s)
            n += tx.read(size_shards_.at(s));
        return n;
    }

    /** Tag this instance for per-structure trace attribution
     * (default StructureId::Map; distributed_kv distinguishes its
     * store and pin tables). */
    void
    setStructureId(core::StructureId sid)
    {
        sid_ = static_cast<u8>(sid);
    }

    core::StructureId
    structureId() const
    {
        return static_cast<core::StructureId>(sid_);
    }

    /** Insert or update inside @p tx; false when the table is full. */
    bool
    insert(core::TxHandle &tx, u32 key, u32 value)
    {
        core::StructureScope scope(tx.descriptor(),
                                   static_cast<core::StructureId>(sid_));
        TxAccess a{tx};
        u32 old = 0;
        return insertImpl(a, key, value, old) != InsertOutcome::Full;
    }

    /** Lookup inside @p tx; false when absent. */
    bool
    lookup(core::TxHandle &tx, u32 key, u32 &value_out)
    {
        core::StructureScope scope(tx.descriptor(),
                                   static_cast<core::StructureId>(sid_));
        TxAccess a{tx};
        return lookupImpl(a, key, value_out);
    }

    /** Erase inside @p tx; false when absent. */
    bool
    erase(core::TxHandle &tx, u32 key)
    {
        core::StructureScope scope(tx.descriptor(),
                                   static_cast<core::StructureId>(sid_));
        TxAccess a{tx};
        u32 old = 0;
        return eraseImpl(a, key, old);
    }

    /**
     * @{ Direct (raw timed) variants for the boosted layer, which
     * serializes physical probe-chain mutation with a structure latch
     * and provides isolation via abstract locks. The displaced value
     * comes back so the caller can log the inverse operation.
     */
    InsertOutcome
    insertDirect(sim::DpuContext &ctx, u32 key, u32 value, u32 &old_value)
    {
        DirectAccess a{ctx};
        return insertImpl(a, key, value, old_value);
    }

    bool
    lookupDirect(sim::DpuContext &ctx, u32 key, u32 &value_out)
    {
        DirectAccess a{ctx};
        return lookupImpl(a, key, value_out);
    }

    bool
    eraseDirect(sim::DpuContext &ctx, u32 key, u32 &old_value)
    {
        DirectAccess a{ctx};
        return eraseImpl(a, key, old_value);
    }
    /** @} */

    /**
     * Host-side reset to the empty state (all slots kEmpty). Only
     * legal while the DPU is idle — the UPMEM constraint the whole
     * host-coordination layer relies on. Used by coordinators to
     * recycle a quiescent table (e.g. the distributed KV's pin tables
     * between batches) so tombstones from expired entries cannot grow
     * probe chains without bound; callers charge the copy through
     * their cost model.
     */
    void
    clear(sim::Dpu &dpu)
    {
        keys_.fill(dpu, kEmpty);
        values_.fill(dpu, 0);
        if (size_shard_count_ != 0)
            size_shards_.fill(dpu, 0);
    }

    /** Untimed host-side population count (verification). */
    u32
    population(sim::Dpu &dpu) const
    {
        u32 n = 0;
        for (u32 i = 0; i < capacity_; ++i)
            if (validKey(keys_.peek(dpu, i)))
                ++n;
        return n;
    }

    /** Untimed host-side lookup (verification). */
    bool
    peekValue(sim::Dpu &dpu, u32 key, u32 &value_out) const
    {
        u32 slot = hash(key);
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = keys_.peek(dpu, slot);
            if (k == key) {
                value_out = values_.peek(dpu, slot);
                return true;
            }
            if (k == kEmpty)
                return false;
            slot = (slot + 1) & (capacity_ - 1);
        }
        return false;
    }

  private:
    template <typename A>
    InsertOutcome
    insertImpl(A &a, u32 key, u32 value, u32 &old_value)
    {
        panicIf(!validKey(key), "invalid TxHashMap key");
        u32 slot = hash(key);
        int first_tombstone = -1;
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = a.read(keys_.at(slot));
            if (k == key) {
                if constexpr (A::kCaptureOld)
                    old_value = a.read(values_.at(slot));
                a.write(values_.at(slot), value);
                return InsertOutcome::Updated;
            }
            if (k == kTombstone && first_tombstone < 0) {
                first_tombstone = static_cast<int>(slot);
            } else if (k == kEmpty) {
                const u32 target = first_tombstone >= 0
                    ? static_cast<u32>(first_tombstone)
                    : slot;
                a.write(keys_.at(target), key);
                a.write(values_.at(target), value);
                bumpSize(a, 1);
                return InsertOutcome::Inserted;
            }
            slot = (slot + 1) & (capacity_ - 1);
        }
        if (first_tombstone >= 0) {
            a.write(keys_.at(static_cast<u32>(first_tombstone)), key);
            a.write(values_.at(static_cast<u32>(first_tombstone)),
                    value);
            bumpSize(a, 1);
            return InsertOutcome::Inserted;
        }
        return InsertOutcome::Full;
    }

    template <typename A>
    bool
    lookupImpl(A &a, u32 key, u32 &value_out)
    {
        u32 slot = hash(key);
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = a.read(keys_.at(slot));
            if (k == key) {
                value_out = a.read(values_.at(slot));
                return true;
            }
            if (k == kEmpty)
                return false;
            slot = (slot + 1) & (capacity_ - 1);
        }
        return false;
    }

    template <typename A>
    bool
    eraseImpl(A &a, u32 key, u32 &old_value)
    {
        u32 slot = hash(key);
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = a.read(keys_.at(slot));
            if (k == key) {
                if constexpr (A::kCaptureOld)
                    old_value = a.read(values_.at(slot));
                a.write(keys_.at(slot), kTombstone);
                bumpSize(a, static_cast<u32>(-1));
                return true;
            }
            if (k == kEmpty)
                return false;
            slot = (slot + 1) & (capacity_ - 1);
        }
        return false;
    }

    /** Wrapping add to the calling tasklet's counter shard; a no-op
     * (and charge-free) unless counters were enabled. */
    template <typename A>
    void
    bumpSize(A &a, u32 delta)
    {
        if (size_shard_count_ == 0)
            return;
        const sim::Addr c =
            size_shards_.at(a.taskletId() % size_shard_count_);
        a.write(c, a.read(c) + delta);
    }

    u32
    hash(u32 key) const
    {
        return (key * 2654435761u) & (capacity_ - 1);
    }

    u32 capacity_ = 0;
    SharedArray32 keys_;
    SharedArray32 values_;
    SharedArray32 size_shards_;
    u32 size_shard_count_ = 0;
    u8 sid_ = static_cast<u8>(core::StructureId::Map);
};

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_TX_HASHMAP_HH
