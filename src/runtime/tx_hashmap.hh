/**
 * @file
 * A concurrent open-addressing hash map built on the PIM-STM API —
 * the concurrent-data-structure layer the paper's conclusion proposes
 * building on top of PIM-STM. One instance lives in a single DPU's
 * MRAM (transactions are DPU-local by design); the distributed variant
 * in hostapp/distributed_kv.hh shards instances across DPUs.
 *
 * Slots are (key, value) word pairs with linear probing; erased slots
 * become tombstones so probe chains stay intact. All three operations
 * are usable either standalone (own transaction) or compositionally
 * within an enclosing transaction — the composability argument for TM
 * over locks (§1).
 */

#ifndef PIMSTM_RUNTIME_TX_HASHMAP_HH
#define PIMSTM_RUNTIME_TX_HASHMAP_HH

#include "core/stm.hh"
#include "runtime/shared_array.hh"

namespace pimstm::runtime
{

/** Transactional open-addressing hash map over one DPU's memory. */
class TxHashMap
{
  public:
    static constexpr u32 kEmpty = 0xffffffffu;
    static constexpr u32 kTombstone = 0xfffffffeu;

    TxHashMap() = default;

    /** Allocate a map of @p capacity slots (power of two) in @p tier. */
    TxHashMap(sim::Dpu &dpu, Tier tier, u32 capacity)
        : capacity_(capacity),
          keys_(dpu, tier, capacity),
          values_(dpu, tier, capacity)
    {
        fatalIf(!isPow2(capacity),
                "TxHashMap capacity must be a power of two");
        keys_.fill(dpu, kEmpty);
        values_.fill(dpu, 0);
    }

    u32 capacity() const { return capacity_; }

    /** Keys may not collide with the slot markers. */
    static bool
    validKey(u32 key)
    {
        return key != kEmpty && key != kTombstone;
    }

    /** Insert or update inside @p tx; false when the table is full. */
    bool
    insert(core::TxHandle &tx, u32 key, u32 value)
    {
        panicIf(!validKey(key), "invalid TxHashMap key");
        u32 slot = hash(key);
        int first_tombstone = -1;
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = tx.read(keys_.at(slot));
            if (k == key) {
                tx.write(values_.at(slot), value);
                return true;
            }
            if (k == kTombstone && first_tombstone < 0) {
                first_tombstone = static_cast<int>(slot);
            } else if (k == kEmpty) {
                const u32 target = first_tombstone >= 0
                    ? static_cast<u32>(first_tombstone)
                    : slot;
                tx.write(keys_.at(target), key);
                tx.write(values_.at(target), value);
                return true;
            }
            slot = (slot + 1) & (capacity_ - 1);
        }
        if (first_tombstone >= 0) {
            tx.write(keys_.at(static_cast<u32>(first_tombstone)), key);
            tx.write(values_.at(static_cast<u32>(first_tombstone)),
                     value);
            return true;
        }
        return false;
    }

    /** Lookup inside @p tx; false when absent. */
    bool
    lookup(core::TxHandle &tx, u32 key, u32 &value_out)
    {
        u32 slot = hash(key);
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = tx.read(keys_.at(slot));
            if (k == key) {
                value_out = tx.read(values_.at(slot));
                return true;
            }
            if (k == kEmpty)
                return false;
            slot = (slot + 1) & (capacity_ - 1);
        }
        return false;
    }

    /** Erase inside @p tx; false when absent. */
    bool
    erase(core::TxHandle &tx, u32 key)
    {
        u32 slot = hash(key);
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = tx.read(keys_.at(slot));
            if (k == key) {
                tx.write(keys_.at(slot), kTombstone);
                return true;
            }
            if (k == kEmpty)
                return false;
            slot = (slot + 1) & (capacity_ - 1);
        }
        return false;
    }

    /**
     * Host-side reset to the empty state (all slots kEmpty). Only
     * legal while the DPU is idle — the UPMEM constraint the whole
     * host-coordination layer relies on. Used by coordinators to
     * recycle a quiescent table (e.g. the distributed KV's pin tables
     * between batches) so tombstones from expired entries cannot grow
     * probe chains without bound; callers charge the copy through
     * their cost model.
     */
    void
    clear(sim::Dpu &dpu)
    {
        keys_.fill(dpu, kEmpty);
        values_.fill(dpu, 0);
    }

    /** Untimed host-side population count (verification). */
    u32
    population(sim::Dpu &dpu) const
    {
        u32 n = 0;
        for (u32 i = 0; i < capacity_; ++i)
            if (validKey(keys_.peek(dpu, i)))
                ++n;
        return n;
    }

    /** Untimed host-side lookup (verification). */
    bool
    peekValue(sim::Dpu &dpu, u32 key, u32 &value_out) const
    {
        u32 slot = hash(key);
        for (u32 probe = 0; probe < capacity_; ++probe) {
            const u32 k = keys_.peek(dpu, slot);
            if (k == key) {
                value_out = values_.peek(dpu, slot);
                return true;
            }
            if (k == kEmpty)
                return false;
            slot = (slot + 1) & (capacity_ - 1);
        }
        return false;
    }

  private:
    u32
    hash(u32 key) const
    {
        return (key * 2654435761u) & (capacity_ - 1);
    }

    u32 capacity_ = 0;
    SharedArray32 keys_;
    SharedArray32 values_;
};

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_TX_HASHMAP_HH
