#include "runtime/boosted.hh"

#include <algorithm>

namespace pimstm::runtime
{

using core::AbortReason;
using core::SemanticLock;
using core::SemanticUndo;
using core::StructureId;
using core::StructureScope;
using core::TxEvent;
using core::TxHandle;

//
// AbstractLockManager
//

AbstractLockManager::AbstractLockManager(sim::Dpu &dpu, core::Stm &stm,
                                         StructureId sid, u32 stripes,
                                         Tier tier)
    : stm_(stm), sid_(sid), stripes_(stripes), tier_(tier),
      words_(dpu, tier, static_cast<size_t>(stripes) * 2),
      state_(stripes)
{
    fatalIf(!isPow2(stripes),
            "AbstractLockManager stripes must be a power of two");
    words_.fill(dpu, 0);
}

void
AbstractLockManager::chargeProbe(sim::DpuContext &ctx)
{
    ctx.touchRead(tier_, 8);
}

void
AbstractLockManager::chargeUpdate(sim::DpuContext &ctx)
{
    ctx.touchWrite(tier_, 8);
}

void
AbstractLockManager::acquireStripe(TxHandle &tx, u32 stripe,
                                   bool exclusive)
{
    panicIf(stripe >= stripes_, "abstract-lock stripe ", stripe,
            " out of range ", stripes_);
    auto &ctx = tx.ctx();
    core::TxDescriptor &d = tx.descriptor();

    // Irrevocable transactions run solo after a quiesce: every stripe
    // is free and will stay free, and the transaction cannot abort.
    if (d.irrevocable)
        return;

    // Reentrancy: an exclusive hold covers any re-request; a shared
    // hold covers a shared re-request and upgrades in place for an
    // exclusive one.
    SemanticLock *held = nullptr;
    for (auto &l : d.semantic_locks) {
        if (l.owner == this && l.stripe == stripe) {
            held = &l;
            break;
        }
    }
    if (held && (held->exclusive || !exclusive))
        return;

    Stripe &s = state_[stripe];
    const unsigned self = ctx.taskletId();
    const u32 self_bit = 1u << self;
    const core::StmConfig &cfg = stm_.config();

    u64 waited = 0;
    for (unsigned poll = 0;; ++poll) {
        // Probe the stripe word, then decide. Decision and mutation
        // run between charge points, i.e. atomically under the fiber
        // scheduler.
        chargeProbe(ctx);
        const bool free = exclusive
            ? (s.writer < 0 && (s.readers & ~self_bit) == 0)
            : (s.writer < 0);
        if (free) {
            if (exclusive) {
                s.writer = static_cast<int>(self);
                s.readers &= ~self_bit;
            } else {
                s.readers |= self_bit;
            }
            if (held)
                held->exclusive = true; // upgrade reuses the entry
            else
                d.semantic_locks.push_back({this, stripe, exclusive});
            ++stm_.stats().boosted_acquires;
            if (waited != 0) {
                // A word-based STM would have aborted here; the
                // abstract lock turned the conflict into a wait.
                ++stm_.stats().false_conflicts_avoided;
            }
            if (cfg.trace) {
                cfg.trace->record(ctx.now(), self, TxEvent::BoostAcquire,
                                  stripe, waited, sid_);
            }
            chargeUpdate(ctx);
            return;
        }
        if (poll >= cfg.boost_wait_polls)
            break;
        ++stm_.stats().boosted_waits;
        if (cfg.trace) {
            cfg.trace->record(ctx.now(), self, TxEvent::BoostWait, stripe,
                              cfg.cm_wait_cycles, sid_);
        }
        ctx.delay(cfg.cm_wait_cycles);
        waited += cfg.cm_wait_cycles;
    }

    // Timed out: the holder may be waiting on a stripe we hold
    // (symmetric upgrade, composed operations). Abort and retry
    // through the normal back-off path.
    stm_.txAbort(ctx, d, AbortReason::BoostTimeout, core::kNoLockIndex,
                 words_.at(static_cast<size_t>(stripe) * 2));
}

void
AbstractLockManager::acquireKeys(TxHandle &tx, const u32 *keys, size_t n,
                                 bool exclusive)
{
    u32 stripes[64];
    panicIf(n > 64, "acquireKeys: too many keys (", n, ")");
    for (size_t i = 0; i < n; ++i)
        stripes[i] = stripeOf(keys[i]);
    std::sort(stripes, stripes + n);
    const u32 *end = std::unique(stripes, stripes + n);
    for (const u32 *s = stripes; s != end; ++s)
        acquireStripe(tx, *s, exclusive);
}

void
AbstractLockManager::earlyReleaseShared(TxHandle &tx, u32 stripe)
{
    core::TxDescriptor &d = tx.descriptor();
    if (d.irrevocable)
        return;
    for (size_t i = d.semantic_locks.size(); i-- > 0;) {
        SemanticLock &l = d.semantic_locks[i];
        if (l.owner != this || l.stripe != stripe)
            continue;
        if (l.exclusive)
            return; // exclusive hold stays until commit/abort
        d.semantic_locks.erase(d.semantic_locks.begin() +
                               static_cast<long>(i));
        releaseAbstract(tx.ctx(), tx.descriptor().tasklet(), stripe,
                        false);
        return;
    }
    panic("earlyReleaseShared of a stripe the transaction does not "
          "hold (stripe ", stripe, ")");
}

void
AbstractLockManager::releaseAbstract(sim::DpuContext &ctx,
                                     unsigned tasklet, u32 stripe,
                                     bool exclusive)
{
    Stripe &s = state_[stripe];
    if (exclusive) {
        panicIf(s.writer != static_cast<int>(tasklet),
                "abstract-lock release: stripe ", stripe,
                " not write-held by tasklet ", tasklet);
        s.writer = -1;
    } else {
        const u32 bit = 1u << tasklet;
        panicIf((s.readers & bit) == 0, "abstract-lock release: stripe ",
                stripe, " not read-held by tasklet ", tasklet);
        s.readers &= ~bit;
    }
    chargeUpdate(ctx);
}

bool
AbstractLockManager::quiescent() const
{
    for (const Stripe &s : state_)
        if (s.writer >= 0 || s.readers != 0)
            return false;
    return true;
}

//
// BoostedMap
//

BoostedMap::BoostedMap(sim::Dpu &dpu, core::Stm &stm, TxHashMap &map,
                       u32 stripes, StructureId sid, u32 latch_instance)
    : map_(map), locks_(dpu, stm, sid, stripes), sid_(sid),
      latch_key_(boostLatchKey(sid, latch_instance))
{
    map_.setStructureId(sid);
}

void
BoostedMap::logUndo(TxHandle &tx,
                    std::function<void(sim::DpuContext &)> apply)
{
    if (tx.descriptor().irrevocable)
        return;
    tx.descriptor().semantic_undo.push_back(
        SemanticUndo{std::move(apply), static_cast<u8>(sid_)});
}

bool
BoostedMap::insert(TxHandle &tx, u32 key, u32 value,
                   InsertOutcome *outcome)
{
    StructureScope scope(tx.descriptor(), sid_);
    locks_.acquireKey(tx, key, true);
    auto &ctx = tx.ctx();
    u32 old = 0;
    InsertOutcome out;
    {
        LatchGuard latch(ctx, latch_key_);
        out = map_.insertDirect(ctx, key, value, old);
    }
    if (outcome)
        *outcome = out;
    if (out == InsertOutcome::Full)
        return false; // nothing mutated, nothing to undo
    TxHashMap *m = &map_;
    const u32 lk = latch_key_;
    if (out == InsertOutcome::Updated) {
        logUndo(tx, [m, lk, key, old](sim::DpuContext &c) {
            LatchGuard latch(c, lk);
            u32 ignored = 0;
            m->insertDirect(c, key, old, ignored);
        });
    } else {
        logUndo(tx, [m, lk, key](sim::DpuContext &c) {
            LatchGuard latch(c, lk);
            u32 ignored = 0;
            m->eraseDirect(c, key, ignored);
        });
    }
    return true;
}

bool
BoostedMap::lookup(TxHandle &tx, u32 key, u32 &value_out)
{
    StructureScope scope(tx.descriptor(), sid_);
    locks_.acquireKey(tx, key, false);
    auto &ctx = tx.ctx();
    LatchGuard latch(ctx, latch_key_);
    return map_.lookupDirect(ctx, key, value_out);
}

bool
BoostedMap::erase(TxHandle &tx, u32 key)
{
    StructureScope scope(tx.descriptor(), sid_);
    locks_.acquireKey(tx, key, true);
    auto &ctx = tx.ctx();
    u32 old = 0;
    bool found;
    {
        LatchGuard latch(ctx, latch_key_);
        found = map_.eraseDirect(ctx, key, old);
    }
    if (!found)
        return false;
    TxHashMap *m = &map_;
    const u32 lk = latch_key_;
    logUndo(tx, [m, lk, key, old](sim::DpuContext &c) {
        LatchGuard latch(c, lk);
        u32 ignored = 0;
        m->insertDirect(c, key, old, ignored);
    });
    return true;
}

u32
BoostedMap::size(TxHandle &tx)
{
    panicIf(!map_.sizeCountersEnabled(),
            "BoostedMap::size() without enableSizeCounters()");
    StructureScope scope(tx.descriptor(), sid_);
    // size() does not commute with any mutation: take every stripe
    // shared (ascending order — deadlock-free against acquireKeys).
    for (u32 s = 0; s < locks_.numStripes(); ++s)
        locks_.acquireStripe(tx, s, false);
    // With all stripes read-held no mutation is in flight; sum the
    // shards directly — one timed read per shard, the same charge
    // shape as the word-based transactional sum.
    auto &ctx = tx.ctx();
    u32 n = 0;
    for (u32 shard = 0; shard < map_.sizeShardCount(); ++shard)
        n += ctx.read32(map_.sizeShardAddr(shard));
    return n;
}

//
// BoostedQueue
//

BoostedQueue::BoostedQueue(sim::Dpu &dpu, core::Stm &stm, Tier tier,
                           u32 capacity)
    : capacity_(capacity),
      words_(dpu, tier, static_cast<size_t>(capacity) + kSlot0),
      locks_(dpu, stm, StructureId::Queue, 2)
{
    fatalIf(!isPow2(capacity),
            "BoostedQueue capacity must be a power of two");
    words_.fill(dpu, 0);
}

void
BoostedQueue::logUndo(TxHandle &tx,
                      std::function<void(sim::DpuContext &)> apply)
{
    if (tx.descriptor().irrevocable)
        return;
    tx.descriptor().semantic_undo.push_back(SemanticUndo{
        std::move(apply), static_cast<u8>(StructureId::Queue)});
}

void
BoostedQueue::enqueue(TxHandle &tx, u32 value)
{
    StructureScope scope(tx.descriptor(), StructureId::Queue);
    locks_.acquireStripe(tx, kTailStripe, true);
    auto &ctx = tx.ctx();
    const u32 tail = ctx.read32(words_.at(kTailWord));
    // Best-effort overflow guard; the capacity contract (class docs)
    // makes a true overflow a caller bug, not a runtime condition.
    const u32 head = ctx.read32(words_.at(kHeadWord));
    panicIf(tail - head >= capacity_, "BoostedQueue overflow (capacity ",
            capacity_, "); size the ring to bound in-flight elements");
    ctx.write32(words_.at(kSlot0 + (tail & (capacity_ - 1))), value);
    ctx.write32(words_.at(kTailWord), tail + 1);
    const Addr tail_addr = words_.at(kTailWord);
    logUndo(tx, [tail_addr, tail](sim::DpuContext &c) {
        c.write32(tail_addr, tail); // retreat: slot beyond tail is dead
    });
}

bool
BoostedQueue::dequeue(TxHandle &tx, u32 &value_out)
{
    StructureScope scope(tx.descriptor(), StructureId::Queue);
    locks_.acquireStripe(tx, kHeadStripe, true);
    auto &ctx = tx.ctx();
    const u32 head = ctx.read32(words_.at(kHeadWord));
    // The empty check needs a committed tail: probe it shared. While
    // read-held, no enqueue is in flight, so the observed tail is
    // all-committed.
    locks_.acquireStripe(tx, kTailStripe, false);
    const u32 tail = ctx.read32(words_.at(kTailWord));
    if (head == tail) {
        // Empty: the answer stays correct only while no enqueue
        // commits — keep the shared tail hold until commit (the
        // non-commuting boundary case).
        return false;
    }
    // Non-empty: tail can only grow (our head-exclusive hold blocks
    // every dequeue retreat), so the answer is monotone-safe; hand the
    // tail stripe back and let enqueues commute with us.
    locks_.earlyReleaseShared(tx, kTailStripe);
    value_out = ctx.read32(words_.at(kSlot0 + (head & (capacity_ - 1))));
    ctx.write32(words_.at(kHeadWord), head + 1);
    const Addr head_addr = words_.at(kHeadWord);
    logUndo(tx, [head_addr, head](sim::DpuContext &c) {
        c.write32(head_addr, head); // retreat: slot value still in place
    });
    return true;
}

} // namespace pimstm::runtime
