#include "runtime/adaptive.hh"

#include <string>

#include "util/logging.hh"

namespace pimstm::runtime
{

namespace
{

std::string
candidateName(core::StmKind kind, core::MetadataTier tier)
{
    std::string s = core::stmKindName(kind);
    s += tier == core::MetadataTier::Wram ? " (WRAM)" : " (MRAM)";
    return s;
}

} // namespace

AdaptiveResult
adaptiveRun(const AdaptiveFactory &factory, const RunSpec &spec,
            const AdaptiveOptions &options)
{
    const std::vector<core::StmKind> &candidates =
        options.candidates.empty() ? core::allStmKinds()
                                   : options.candidates;
    std::vector<core::MetadataTier> tiers{spec.tier};
    if (options.probe_both_tiers) {
        tiers = {core::MetadataTier::Mram, core::MetadataTier::Wram};
    }

    AdaptiveResult result;
    double best = -1.0;
    bool any = false;

    // Probe all (tier, kind) candidates concurrently on the global
    // pool; the selection below walks the outcomes in candidate order,
    // so the chosen STM (and the probe-time sum, which is FP-order
    // sensitive) match the old serial loop exactly. Infeasible
    // configurations (e.g. WRAM metadata that does not fit) come back
    // as !ok and are skipped, like the paper.
    std::vector<RunSpec> probe_specs;
    for (const core::MetadataTier tier : tiers) {
        for (const core::StmKind kind : candidates) {
            RunSpec probe_spec = spec;
            probe_spec.kind = kind;
            probe_spec.tier = tier;
            probe_specs.push_back(probe_spec);
        }
    }
    const auto outcomes = runWorkloadMany(
        [&] { return factory(/*probe=*/true); }, probe_specs);
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok)
            continue;
        const RunResult &r = outcomes[i].result;
        result.probe_seconds += r.seconds;
        result.probe_throughput[candidateName(probe_specs[i].kind,
                                              probe_specs[i].tier)] =
            r.throughput;
        if (r.throughput > best) {
            best = r.throughput;
            result.chosen_kind = probe_specs[i].kind;
            result.chosen_tier = probe_specs[i].tier;
            any = true;
        }
    }
    fatalIf(!any, "no STM candidate was runnable for this workload");

    RunSpec final_spec = spec;
    final_spec.kind = result.chosen_kind;
    final_spec.tier = result.chosen_tier;
    auto wl = factory(/*probe=*/false);
    result.final = runWorkload(*wl, final_spec);
    return result;
}

} // namespace pimstm::runtime
