#include "runtime/adaptive.hh"

#include <algorithm>
#include <string>

#include "core/switchable.hh"
#include "util/logging.hh"

namespace pimstm::runtime
{

namespace
{

std::string
candidateName(core::StmKind kind, core::MetadataTier tier)
{
    std::string s = core::stmKindName(kind);
    s += tier == core::MetadataTier::Wram ? " (WRAM)" : " (MRAM)";
    return s;
}

} // namespace

AdaptiveResult
adaptiveRun(const AdaptiveFactory &factory, const RunSpec &spec,
            const AdaptiveOptions &options)
{
    const std::vector<core::StmKind> &candidates =
        options.candidates.empty() ? core::allStmKinds()
                                   : options.candidates;
    std::vector<core::MetadataTier> tiers{spec.tier};
    if (options.probe_both_tiers) {
        tiers = {core::MetadataTier::Mram, core::MetadataTier::Wram};
    }

    AdaptiveResult result;
    double best = -1.0;
    bool any = false;

    // Probe all (tier, kind) candidates concurrently on the global
    // pool; the selection below walks the outcomes in candidate order,
    // so the chosen STM (and the probe-time sum, which is FP-order
    // sensitive) match the old serial loop exactly. Infeasible
    // configurations (e.g. WRAM metadata that does not fit) come back
    // as !ok and are skipped, like the paper.
    std::vector<RunSpec> probe_specs;
    for (const core::MetadataTier tier : tiers) {
        for (const core::StmKind kind : candidates) {
            RunSpec probe_spec = spec;
            probe_spec.kind = kind;
            probe_spec.tier = tier;
            probe_specs.push_back(probe_spec);
        }
    }
    const auto outcomes = runWorkloadMany(
        [&] { return factory(/*probe=*/true); }, probe_specs);
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok)
            continue;
        const RunResult &r = outcomes[i].result;
        result.probe_seconds += r.seconds;
        result.probe_throughput[candidateName(probe_specs[i].kind,
                                              probe_specs[i].tier)] =
            r.throughput;
        if (r.throughput > best) {
            best = r.throughput;
            result.chosen_kind = probe_specs[i].kind;
            result.chosen_tier = probe_specs[i].tier;
            any = true;
        }
    }
    fatalIf(!any, "no STM candidate was runnable for this workload");

    RunSpec final_spec = spec;
    final_spec.kind = result.chosen_kind;
    final_spec.tier = result.chosen_tier;
    auto wl = factory(/*probe=*/false);
    result.final = runWorkload(*wl, final_spec);
    return result;
}

//
// Epoch feedback controller
//

const char *
adaptiveActionName(AdaptiveAction a)
{
    switch (a) {
      case AdaptiveAction::None: return "none";
      case AdaptiveAction::ThrottleDown: return "throttle-down";
      case AdaptiveAction::ThrottleUp: return "throttle-up";
      case AdaptiveAction::EnableCmWait: return "enable-cm-wait";
      case AdaptiveAction::DisableCmWait: return "disable-cm-wait";
      case AdaptiveAction::RaiseBackoff: return "raise-backoff";
      case AdaptiveAction::LowerBackoff: return "lower-backoff";
      case AdaptiveAction::Migrate: return "migrate";
      case AdaptiveAction::SwitchKind: return "switch-kind";
      default: return "?";
    }
}

namespace
{

size_t
kindIndex(core::StmKind k)
{
    return static_cast<size_t>(k);
}

/** Throttle policy: park surplus tasklets when the share of tasklet
 * cycles wasted on backoff and lock waits stays above the high
 * threshold, unpark when it stays below the low one (hysteresis band
 * between). */
void
decideThrottle(ControllerState &st, const EpochSample &s,
               const AdaptiveSpec &spec,
               std::vector<AdaptiveDecision> &out)
{
    const unsigned effective =
        st.tasklet_limit == 0 ? st.num_tasklets : st.tasklet_limit;

    // Safety valve: a throttled epoch with zero commits means the
    // runnable tasklets are stuck behind the parked ones (e.g. a
    // barrier) — lift the throttle entirely, at once.
    if (st.tasklet_limit != 0 && s.commits == 0) {
        st.tasklet_limit = 0;
        st.high_streak = st.low_streak = 0;
        st.throttle_probe = false;
        out.push_back({st.epoch, 0, AdaptiveAction::ThrottleUp, 0.0,
                       s.wasteShare(effective)});
        return;
    }

    // Settle last epoch's throttle-down: parking must have bought
    // commit rate, else revert and hold off for this episode.
    if (st.throttle_probe) {
        st.throttle_probe = false;
        if (s.commitRate() < 1.05 * st.pre_throttle_rate) {
            st.tasklet_limit = st.pre_throttle_limit;
            st.throttle_hold = true;
            st.high_streak = st.low_streak = 0;
            out.push_back({st.epoch, 0, AdaptiveAction::ThrottleUp,
                           static_cast<double>(st.pre_throttle_limit),
                           st.pre_throttle_rate > 0
                               ? s.commitRate() / st.pre_throttle_rate
                               : 0.0});
            return;
        }
    }

    const double waste = s.wasteShare(effective);
    if (waste > spec.throttle_high) {
        ++st.high_streak;
        st.low_streak = 0;
        if (!st.throttle_hold &&
            st.high_streak >= spec.hysteresis_epochs &&
            effective > spec.min_tasklets) {
            const unsigned next =
                std::max(spec.min_tasklets, effective * 2 / 3);
            st.throttle_probe = true;
            st.pre_throttle_limit = st.tasklet_limit;
            st.pre_throttle_rate = s.commitRate();
            st.tasklet_limit = next;
            st.high_streak = 0;
            out.push_back({st.epoch, 0, AdaptiveAction::ThrottleDown,
                           static_cast<double>(next), waste});
        }
    } else if (waste < spec.throttle_low) {
        ++st.low_streak;
        st.high_streak = 0;
        st.throttle_hold = false; // pressure episode over
        if (st.low_streak >= spec.hysteresis_epochs &&
            st.tasklet_limit != 0) {
            // Multiplicative recovery: symmetric with the 2/3 cut and
            // fast enough that a passed phase does not linger (a +1
            // ramp would hold 14 tasklets parked for ~28 epochs).
            unsigned next = effective * 2;
            if (next >= st.num_tasklets)
                next = 0; // fully unparked: throttle off
            st.tasklet_limit = next;
            st.low_streak = 0;
            out.push_back({st.epoch, 0, AdaptiveAction::ThrottleUp,
                           static_cast<double>(next), waste});
        }
    } else {
        st.high_streak = st.low_streak = 0;
    }
}

/** Backoff / contention-manager policy: under sustained conflict
 * pressure, first wait on held locks instead of aborting, then raise
 * the backoff floor (the window ceiling stays put — see apply()).
 * Every raise is a probe: if the next epoch's commit rate drops, it
 * is reverted and raises are held off until the pressure episode
 * ends. Relax step by step when pressure is gone. */
void
decideBackoff(ControllerState &st, const EpochSample &s,
              const AdaptiveSpec &spec,
              std::vector<AdaptiveDecision> &out)
{
    const double rate = s.abortRate();
    const double waste = static_cast<double>(s.backoff_cycles) +
                         static_cast<double>(s.lock_wait_cycles);
    const bool backoff_dominated =
        waste > 0 && static_cast<double>(s.backoff_cycles) >= waste * 0.5;

    // Settle last epoch's ladder step: waiting must have bought
    // commit rate, else retrying was the better use of those cycles.
    if (st.cm_probe) {
        st.cm_probe = false;
        if (s.commitRate() < 1.02 * st.pre_raise_rate) {
            st.cm_wait_polls = 0;
            st.backoff_hold = true;
            out.push_back({st.epoch, 0, AdaptiveAction::DisableCmWait,
                           0.0,
                           st.pre_raise_rate > 0
                               ? s.commitRate() / st.pre_raise_rate
                               : 0.0});
        }
    }
    if (st.backoff_probe) {
        st.backoff_probe = false;
        if (s.commitRate() < 1.02 * st.pre_raise_rate) {
            st.backoff_base = st.default_backoff_base;
            st.backoff_hold = true;
            out.push_back({st.epoch, 0, AdaptiveAction::LowerBackoff,
                           static_cast<double>(st.backoff_base),
                           st.pre_raise_rate > 0
                               ? s.commitRate() / st.pre_raise_rate
                               : 0.0});
        }
    }

    if (rate > 0.5) {
        ++st.pressure_streak;
        st.calm_streak = 0;
        if (st.pressure_streak >= spec.hysteresis_epochs &&
            !st.backoff_hold) {
            st.pressure_streak = 0;
            if (st.cm_wait_polls == 0) {
                st.cm_wait_polls = spec.cm_polls;
                st.cm_probe = true;
                st.pre_raise_rate = s.commitRate();
                out.push_back({st.epoch, 0, AdaptiveAction::EnableCmWait,
                               static_cast<double>(spec.cm_polls), rate});
            } else if (backoff_dominated &&
                       st.backoff_base < spec.backoff_base_max) {
                st.backoff_base = std::min<Cycles>(
                    st.backoff_base * 2, spec.backoff_base_max);
                st.backoff_probe = true;
                st.pre_raise_rate = s.commitRate();
                out.push_back({st.epoch, 0, AdaptiveAction::RaiseBackoff,
                               static_cast<double>(st.backoff_base),
                               rate});
            }
        }
    } else if (rate < 0.05) {
        ++st.calm_streak;
        st.pressure_streak = 0;
        if (st.calm_streak >= spec.hysteresis_epochs) {
            st.calm_streak = 0;
            st.backoff_hold = false; // pressure episode over
            if (st.backoff_base != st.default_backoff_base) {
                st.backoff_base = st.default_backoff_base;
                out.push_back({st.epoch, 0, AdaptiveAction::LowerBackoff,
                               static_cast<double>(st.backoff_base),
                               rate});
            } else if (st.cm_wait_polls != 0) {
                st.cm_wait_polls = 0;
                out.push_back({st.epoch, 0,
                               AdaptiveAction::DisableCmWait, 0.0, rate});
            }
        }
    } else {
        st.pressure_streak = st.calm_streak = 0;
    }
}

/** Kind policy: explore-then-commit. Score each kind by EWMA commits
 * per 1000 cycles; visit untried candidates once, then settle on the
 * best; a collapse of the incumbent's score restarts exploration
 * (phase-change detection). */
void
decideKind(ControllerState &st, const EpochSample &s,
           const AdaptiveSpec &spec, std::vector<AdaptiveDecision> &out)
{
    if (spec.kind_candidates.size() < 2)
        return;
    const auto cur_it =
        std::find(spec.kind_candidates.begin(),
                  spec.kind_candidates.end(), st.current_kind);
    if (cur_it == spec.kind_candidates.end())
        return;
    const size_t cur = kindIndex(st.current_kind);

    const double score = s.commitRate();
    st.kind_score[cur] = st.kind_tried[cur]
        ? 0.5 * st.kind_score[cur] + 0.5 * score
        : score;
    st.kind_tried[cur] = true;
    st.kind_best[cur] = std::max(st.kind_best[cur], st.kind_score[cur]);

    if (st.cooldown > 0) {
        --st.cooldown;
        return;
    }

    // Phase change: the incumbent used to do much better than now —
    // what we learned about the other kinds is stale too, so re-probe.
    if (st.kind_best[cur] > 0 &&
        st.kind_score[cur] < spec.reexplore_ratio * st.kind_best[cur]) {
        for (core::StmKind k : spec.kind_candidates) {
            if (k != st.current_kind)
                st.kind_tried[kindIndex(k)] = false;
        }
        st.kind_best[cur] = st.kind_score[cur];
    }

    // Explore: give every untried candidate one scored epoch.
    for (core::StmKind k : spec.kind_candidates) {
        if (st.kind_tried[kindIndex(k)])
            continue;
        st.current_kind = k;
        st.cooldown = 1; // let it run a full epoch before judging
        out.push_back({st.epoch, 0, AdaptiveAction::SwitchKind,
                       static_cast<double>(kindIndex(k)),
                       st.kind_score[cur]});
        return;
    }

    // Commit: switch to the best-scoring candidate when it beats the
    // incumbent by the margin.
    size_t best = cur;
    for (core::StmKind k : spec.kind_candidates) {
        if (st.kind_score[kindIndex(k)] > st.kind_score[best])
            best = kindIndex(k);
    }
    if (best != cur &&
        st.kind_score[best] >
            st.kind_score[cur] * (1.0 + spec.kind_switch_margin)) {
        st.current_kind = static_cast<core::StmKind>(best);
        st.cooldown = spec.kind_cooldown_epochs;
        out.push_back({st.epoch, 0, AdaptiveAction::SwitchKind,
                       static_cast<double>(best),
                       st.kind_score[cur] > 0
                           ? st.kind_score[best] / st.kind_score[cur]
                           : 0.0});
    }
}

} // namespace

std::vector<AdaptiveDecision>
AdaptiveController::decide(ControllerState &st, const EpochSample &s,
                           const AdaptiveSpec &spec)
{
    ++st.epoch;
    std::vector<AdaptiveDecision> out;
    if (spec.tune_throttle)
        decideThrottle(st, s, spec, out);
    if (spec.tune_backoff)
        decideBackoff(st, s, spec, out);
    if (spec.tune_kind)
        decideKind(st, s, spec, out);
    return out;
}

void
AdaptiveController::pickMigrations(const std::vector<u32> &heat_delta,
                                   std::vector<u8> &hot_flags,
                                   u32 capacity, u32 min_heat,
                                   std::vector<u32> &promote,
                                   std::vector<u32> &demote)
{
    promote.clear();
    demote.clear();
    if (capacity == 0 || heat_delta.empty())
        return;
    if (hot_flags.size() < heat_delta.size())
        hot_flags.resize(heat_delta.size(), 0);

    // Promotion candidates: cold entries hot enough this epoch,
    // hottest first (index ascending on ties, for determinism).
    std::vector<std::pair<u32, u32>> cands; // (heat, index)
    std::vector<std::pair<u32, u32>> hot;   // (heat, index), current set
    for (u32 i = 0; i < heat_delta.size(); ++i) {
        if (hot_flags[i])
            hot.push_back({heat_delta[i], i});
        else if (heat_delta[i] >= min_heat)
            cands.push_back({heat_delta[i], i});
    }
    std::sort(cands.begin(), cands.end(), [](const auto &a, const auto &b) {
        return a.first != b.first ? a.first > b.first
                                  : a.second < b.second;
    });
    // Current set coldest-first: those are the eviction victims.
    std::sort(hot.begin(), hot.end(), [](const auto &a, const auto &b) {
        return a.first != b.first ? a.first < b.first
                                  : a.second > b.second;
    });

    size_t victim = 0;
    u32 free = capacity > hot.size()
        ? capacity - static_cast<u32>(hot.size())
        : 0;
    for (const auto &[heat, idx] : cands) {
        if (free > 0) {
            --free;
        } else if (victim < hot.size() && hot[victim].first < heat) {
            // Evict the coldest hot entry to make room.
            demote.push_back(hot[victim].second);
            hot_flags[hot[victim].second] = 0;
            ++victim;
        } else {
            break; // candidates are sorted: nothing else fits either
        }
        promote.push_back(idx);
        hot_flags[idx] = 1;
    }
}

AdaptiveController::AdaptiveController(core::Stm &stm, sim::Dpu &dpu,
                                       const AdaptiveSpec &spec)
    : stm_(stm), dpu_(dpu), spec_(spec),
      report_(std::make_shared<AdaptiveReport>())
{
    // Normalize the candidate list: the running kind always leads.
    std::vector<core::StmKind> cands{stm.kind()};
    for (core::StmKind k : spec.kind_candidates) {
        if (std::find(cands.begin(), cands.end(), k) == cands.end())
            cands.push_back(k);
    }
    spec_.kind_candidates = std::move(cands);

    const core::StmConfig &cfg = stm.config();
    state_.num_tasklets = cfg.num_tasklets;
    state_.cm_wait_polls = cfg.cm_wait_polls;
    state_.backoff_base = cfg.abort_backoff ? cfg.abort_backoff_base : 0;
    state_.backoff_max_shift = cfg.abort_backoff_max_shift;
    state_.default_backoff_base = state_.backoff_base;
    state_.current_kind = stm.kind();
    report_->final_kind = stm.kind();
}

std::shared_ptr<AdaptiveReport>
AdaptiveController::report()
{
    report_->final_kind = state_.current_kind;
    report_->final_tasklet_limit = state_.tasklet_limit;
    return report_;
}

void
AdaptiveController::apply(const AdaptiveDecision &d)
{
    switch (d.action) {
      case AdaptiveAction::ThrottleDown:
      case AdaptiveAction::ThrottleUp:
        stm_.setTaskletLimit(static_cast<unsigned>(d.value));
        break;
      case AdaptiveAction::EnableCmWait:
        stm_.setCmWaitPolls(static_cast<unsigned>(d.value));
        break;
      case AdaptiveAction::DisableCmWait:
        stm_.setCmWaitPolls(0);
        break;
      case AdaptiveAction::RaiseBackoff:
      case AdaptiveAction::LowerBackoff: {
        // A raised base lifts the window floor, not its ceiling:
        // shrink the shift so base << shift stays at the configured
        // maximum (16 << 12 would become a 1M-cycle window at base
        // 256 otherwise, and makespan pays for every sleep).
        const auto base = static_cast<Cycles>(d.value);
        unsigned shift = state_.backoff_max_shift;
        for (Cycles b = state_.default_backoff_base;
             b < base && shift > 0; b <<= 1)
            --shift;
        stm_.setBackoffParams(base, shift);
        break;
      }
      case AdaptiveAction::SwitchKind:
        if (auto *sw = dynamic_cast<core::SwitchableStm *>(&stm_)) {
            sw->requestKindSwitch(
                static_cast<core::StmKind>(static_cast<int>(d.value)));
        }
        break;
      default:
        break;
    }
}

void
AdaptiveController::onEpoch()
{
    const core::StmStats &agg = stm_.aggregateStats();

    EpochSample s;
    s.commits = agg.commits - last_stats_.commits;
    s.aborts = agg.aborts - last_stats_.aborts;
    for (size_t r = 0; r < core::kNumAbortReasons; ++r)
        s.abort_reasons[r] =
            agg.abort_reasons[r] - last_stats_.abort_reasons[r];
    s.lock_waits = agg.lock_waits - last_stats_.lock_waits;
    s.lock_wait_cycles =
        agg.lock_wait_cycles - last_stats_.lock_wait_cycles;
    s.backoff_cycles = agg.backoff_cycles - last_stats_.backoff_cycles;
    s.park_polls = agg.park_polls - last_stats_.park_polls;
    s.epoch_cycles = dpu_.now() - last_cycle_;
    last_stats_ = agg; // copy: agg may reference merge scratch
    last_cycle_ = dpu_.now();

    ++report_->epochs;

    // Hot-lock migration works on per-entry heat deltas, outside the
    // pure policy (the heat vector can be large; everything else is a
    // fixed-size sample).
    if (spec_.tune_migration && stm_.hotLockCapacity() != 0) {
        const std::vector<u32> &heat = stm_.lockHeat();
        std::vector<u32> delta(heat.size(), 0);
        for (size_t i = 0; i < heat.size(); ++i) {
            const u32 prev = i < last_heat_.size() ? last_heat_[i] : 0;
            delta[i] = heat[i] - prev;
        }
        last_heat_ = heat;
        std::vector<u32> promote, demote;
        pickMigrations(delta, hot_flags_, stm_.hotLockCapacity(),
                       spec_.min_heat, promote, demote);
        if (!promote.empty() || !demote.empty()) {
            stm_.migrateLocks(promote, demote);
            report_->promotions += promote.size();
            report_->demotions += demote.size();
            report_->decisions.push_back(
                {state_.epoch + 1, dpu_.now(), AdaptiveAction::Migrate,
                 static_cast<double>(promote.size()),
                 static_cast<double>(demote.size())});
        }
    }

    std::vector<AdaptiveDecision> decisions = decide(state_, s, spec_);
    for (AdaptiveDecision &d : decisions) {
        d.cycle = dpu_.now();
        apply(d);
        report_->decisions.push_back(d);
    }
}

} // namespace pimstm::runtime
