#include "runtime/adaptive.hh"

#include <string>

#include "util/logging.hh"

namespace pimstm::runtime
{

namespace
{

std::string
candidateName(core::StmKind kind, core::MetadataTier tier)
{
    std::string s = core::stmKindName(kind);
    s += tier == core::MetadataTier::Wram ? " (WRAM)" : " (MRAM)";
    return s;
}

} // namespace

AdaptiveResult
adaptiveRun(const AdaptiveFactory &factory, const RunSpec &spec,
            const AdaptiveOptions &options)
{
    const std::vector<core::StmKind> &candidates =
        options.candidates.empty() ? core::allStmKinds()
                                   : options.candidates;
    std::vector<core::MetadataTier> tiers{spec.tier};
    if (options.probe_both_tiers) {
        tiers = {core::MetadataTier::Mram, core::MetadataTier::Wram};
    }

    AdaptiveResult result;
    double best = -1.0;
    bool any = false;

    for (const core::MetadataTier tier : tiers) {
        for (const core::StmKind kind : candidates) {
            RunSpec probe_spec = spec;
            probe_spec.kind = kind;
            probe_spec.tier = tier;
            auto wl = factory(/*probe=*/true);
            try {
                const RunResult r = runWorkload(*wl, probe_spec);
                result.probe_seconds += r.seconds;
                result.probe_throughput[candidateName(kind, tier)] =
                    r.throughput;
                if (r.throughput > best) {
                    best = r.throughput;
                    result.chosen_kind = kind;
                    result.chosen_tier = tier;
                    any = true;
                }
            } catch (const FatalError &) {
                // Not runnable in this configuration (e.g. WRAM
                // metadata that does not fit) — skip, like the paper.
            }
        }
    }
    fatalIf(!any, "no STM candidate was runnable for this workload");

    RunSpec final_spec = spec;
    final_spec.kind = result.chosen_kind;
    final_spec.tier = result.chosen_tier;
    auto wl = factory(/*probe=*/false);
    result.final = runWorkload(*wl, final_spec);
    return result;
}

} // namespace pimstm::runtime
