/**
 * @file
 * Adaptive STM selection — the natural consequence of the paper's
 * central finding that *no one-size-fits-all STM exists* (§4.2.2) and
 * of its own pointer to ProteusTM [13]: since PIM-STM lets an
 * application switch implementations "via trivial configuration
 * changes", a thin selector can probe the taxonomy on a shortened
 * version of the workload and run the real job under the winner.
 *
 * The probe phase runs each candidate on a small replica of the
 * workload (same seed, same tasklet count) and ranks candidates by
 * committed throughput; infeasible configurations (WRAM metadata that
 * does not fit) are skipped exactly like the paper's "not runnable"
 * cases. The measured probe cost is reported so callers can reason
 * about amortization.
 */

#ifndef PIMSTM_RUNTIME_ADAPTIVE_HH
#define PIMSTM_RUNTIME_ADAPTIVE_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "runtime/driver.hh"

namespace pimstm::runtime
{

/** Factory producing a workload instance; @p probe selects the
 * shortened probe replica vs the full job. */
using AdaptiveFactory =
    std::function<std::unique_ptr<Workload>(bool probe)>;

struct AdaptiveOptions
{
    /** Candidate set (defaults to the full taxonomy when empty). */
    std::vector<core::StmKind> candidates;
    /** Probe both tiers too? Otherwise only spec.tier is probed. */
    bool probe_both_tiers = false;
};

struct AdaptiveResult
{
    core::StmKind chosen_kind = core::StmKind::NOrec;
    core::MetadataTier chosen_tier = core::MetadataTier::Mram;

    /** Probe throughput per candidate (missing = not runnable). */
    std::map<std::string, double> probe_throughput;

    /** Simulated seconds spent probing (amortization cost). */
    double probe_seconds = 0;

    /** Result of the full run under the chosen configuration. */
    RunResult final;
};

/**
 * Probe the candidates on the shortened workload, pick the best, and
 * run the full workload under it.
 */
AdaptiveResult adaptiveRun(const AdaptiveFactory &factory,
                           const RunSpec &spec,
                           const AdaptiveOptions &options = {});

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_ADAPTIVE_HH
