/**
 * @file
 * Adaptive STM selection — the natural consequence of the paper's
 * central finding that *no one-size-fits-all STM exists* (§4.2.2) and
 * of its own pointer to ProteusTM [13]: since PIM-STM lets an
 * application switch implementations "via trivial configuration
 * changes", a thin selector can probe the taxonomy on a shortened
 * version of the workload and run the real job under the winner.
 *
 * The probe phase runs each candidate on a small replica of the
 * workload (same seed, same tasklet count) and ranks candidates by
 * committed throughput; infeasible configurations (WRAM metadata that
 * does not fit) are skipped exactly like the paper's "not runnable"
 * cases. The measured probe cost is reported so callers can reason
 * about amortization.
 */

#ifndef PIMSTM_RUNTIME_ADAPTIVE_HH
#define PIMSTM_RUNTIME_ADAPTIVE_HH

#include <array>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "runtime/driver.hh"

namespace pimstm::runtime
{

/** Factory producing a workload instance; @p probe selects the
 * shortened probe replica vs the full job. */
using AdaptiveFactory =
    std::function<std::unique_ptr<Workload>(bool probe)>;

struct AdaptiveOptions
{
    /** Candidate set (defaults to the full taxonomy when empty). */
    std::vector<core::StmKind> candidates;
    /** Probe both tiers too? Otherwise only spec.tier is probed. */
    bool probe_both_tiers = false;
};

struct AdaptiveResult
{
    core::StmKind chosen_kind = core::StmKind::NOrec;
    core::MetadataTier chosen_tier = core::MetadataTier::Mram;

    /** Probe throughput per candidate (missing = not runnable). */
    std::map<std::string, double> probe_throughput;

    /** Simulated seconds spent probing (amortization cost). */
    double probe_seconds = 0;

    /** Result of the full run under the chosen configuration. */
    RunResult final;
};

/**
 * Probe the candidates on the shortened workload, pick the best, and
 * run the real job under it.
 */
AdaptiveResult adaptiveRun(const AdaptiveFactory &factory,
                           const RunSpec &spec,
                           const AdaptiveOptions &options = {});

//
// Online epoch feedback controller (docs/adaptive.md). Where
// adaptiveRun() decides once, before the run, the controller keeps
// deciding during it: every AdaptiveSpec::epoch_cycles of simulated
// time it samples the stat deltas below and actuates the backoff /
// contention-manager knobs, the dynamic tasklet throttle, hot-lock
// WRAM migration, and live STM-kind switching.
//

/** Per-epoch deltas of the contention signals the controller reads. */
struct EpochSample
{
    u64 commits = 0;
    u64 aborts = 0;
    std::array<u64, core::kNumAbortReasons> abort_reasons{};
    u64 lock_waits = 0;
    /** Cycles spent polling held locks (wait-on-contention + NOrec). */
    u64 lock_wait_cycles = 0;
    /** Cycles spent in post-abort randomized backoff. */
    u64 backoff_cycles = 0;
    u64 park_polls = 0;
    /** Simulated time the sample covers. */
    Cycles epoch_cycles = 0;

    double
    abortRate() const
    {
        const u64 total = commits + aborts;
        return total == 0 ? 0.0
                          : static_cast<double>(aborts) /
                                static_cast<double>(total);
    }

    /** Wasted cycles (backoff + lock waits) per committed tx.
     * All-waste epochs read as +inf. */
    double
    wastePerCommit() const
    {
        const double waste = static_cast<double>(backoff_cycles) +
                             static_cast<double>(lock_wait_cycles);
        if (commits == 0)
            return waste > 0 ? std::numeric_limits<double>::infinity()
                             : 0.0;
        return waste / static_cast<double>(commits);
    }

    /** Share of the epoch's available tasklet-cycles spent on backoff
     * and lock waits — the throttle signal. Unlike waste-per-commit,
     * it is insensitive to transaction size: a kind that commits
     * slowly but cleanly does not look contended. */
    double
    wasteShare(unsigned effective_tasklets) const
    {
        if (epoch_cycles == 0 || effective_tasklets == 0)
            return 0.0;
        const double waste = static_cast<double>(backoff_cycles) +
                             static_cast<double>(lock_wait_cycles);
        return waste / (static_cast<double>(epoch_cycles) *
                        static_cast<double>(effective_tasklets));
    }

    /** Commits per 1000 simulated cycles — the score used by both the
     * kind policy and the backoff probe-and-revert check. */
    double
    commitRate() const
    {
        return epoch_cycles == 0
            ? 0.0
            : 1000.0 * static_cast<double>(commits) /
                  static_cast<double>(epoch_cycles);
    }
};

/** What the controller did at an epoch boundary. */
enum class AdaptiveAction : u8
{
    None = 0,
    ThrottleDown,  ///< lower the tasklet limit (value = new limit)
    ThrottleUp,    ///< raise it (value = new limit, 0 = off)
    EnableCmWait,  ///< turn on wait-on-contention (value = polls)
    DisableCmWait, ///< back to abort-immediately
    RaiseBackoff,  ///< double the backoff base (value = new base)
    LowerBackoff,  ///< back to the configured base (value = base)
    Migrate,       ///< hot-lock migration (value = promotions)
    SwitchKind,    ///< live STM-kind switch (value = StmKind)
};

const char *adaptiveActionName(AdaptiveAction a);

/** One controller decision, timestamped for the timeline. */
struct AdaptiveDecision
{
    unsigned epoch = 0;
    Cycles cycle = 0;
    AdaptiveAction action = AdaptiveAction::None;
    /** Action-specific operand (new limit / polls / base / kind). */
    double value = 0;
    /** The signal that triggered it (waste-per-commit, abort rate,
     * score ratio, demotion count — action-specific). */
    double metric = 0;
};

/**
 * The controller's decision state. Kept separate from the actuation
 * wrapper so the policy is a pure function of (state, sample, spec) —
 * unit-testable on synthetic counter streams with no simulator.
 */
struct ControllerState
{
    unsigned num_tasklets = 0;

    /** @{ Actuator shadows (what the controller believes is set). */
    unsigned tasklet_limit = 0; // 0 = off
    unsigned cm_wait_polls = 0;
    Cycles backoff_base = 16;
    unsigned backoff_max_shift = 12;
    /** @} */

    /** The relax target of LowerBackoff. */
    Cycles default_backoff_base = 16;

    /** @{ Probe-and-revert for the contention ladder (EnableCmWait,
     * RaiseBackoff): each step is a bet that waiting beats retrying;
     * the next epoch's commit rate settles it. A step that does not
     * improve the rate is reverted and the ladder is held off until
     * the pressure episode ends. */
    bool cm_probe = false;
    bool backoff_probe = false;
    bool backoff_hold = false;
    double pre_raise_rate = 0;
    /** @} */

    /** @{ Probe-and-revert for ThrottleDown, same shape: parking
     * tasklets must raise the commit rate, else concurrency was not
     * the problem (NOrec commits through contention that would drown
     * a lock-based kind). */
    bool throttle_probe = false;
    bool throttle_hold = false;
    unsigned pre_throttle_limit = 0;
    double pre_throttle_rate = 0;
    /** @} */

    /** @{ Hysteresis streaks. */
    unsigned high_streak = 0;     // waste above throttle_high
    unsigned low_streak = 0;      // waste below throttle_low
    unsigned pressure_streak = 0; // abort rate above 0.5
    unsigned calm_streak = 0;     // abort rate below 0.05
    /** @} */

    /** @{ Kind policy: explore-then-commit over EWMA scores (commits
     * per 1000 cycles). kind_best remembers each kind's high-water
     * mark; a collapse of the current kind's score below
     * reexplore_ratio x its best restarts exploration. */
    std::array<double, core::kNumStmKinds> kind_score{};
    std::array<double, core::kNumStmKinds> kind_best{};
    std::array<bool, core::kNumStmKinds> kind_tried{};
    core::StmKind current_kind = core::StmKind::NOrec;
    unsigned cooldown = 0;
    /** @} */

    unsigned epoch = 0;
};

/** Decision log of one run, surfaced as the `adaptive` perf-json
 * block and by the --adaptive-timeline of scripts/trace_report.py. */
struct AdaptiveReport
{
    unsigned epochs = 0;
    std::vector<AdaptiveDecision> decisions;
    core::StmKind final_kind = core::StmKind::NOrec;
    unsigned final_tasklet_limit = 0;
    u64 promotions = 0;
    u64 demotions = 0;
};

/**
 * The actuation wrapper: binds the pure policy to a live Stm/Dpu.
 * Wire it up as `dpu.setEpochHook(spec.epoch_cycles, [&]{ c.onEpoch(); })`.
 * The hook only reads host-side counters and mutates host-side knobs;
 * all simulated costs of its decisions are charged where they land
 * (park polls, lazy migration settlement, quiesce switch translation).
 */
class AdaptiveController
{
  public:
    AdaptiveController(core::Stm &stm, sim::Dpu &dpu,
                       const AdaptiveSpec &spec);

    /** Epoch-hook body: sample deltas, decide, actuate, log. */
    void onEpoch();

    /** Decision log (stable across calls; shared for RunResult). */
    std::shared_ptr<AdaptiveReport> report();

    /**
     * The pure policy: consume one sample, mutate @p st, return the
     * actions to apply. @p spec.kind_candidates must already contain
     * st.current_kind (the constructor normalizes its copy).
     */
    static std::vector<AdaptiveDecision> decide(ControllerState &st,
                                                const EpochSample &s,
                                                const AdaptiveSpec &spec);

    /**
     * The pure migration policy: given per-entry heat deltas and the
     * controller's hot-set model (@p hot_flags, 1 = hot, mutated to the
     * new set), pick promotions (heat >= min_heat, hottest first) and
     * the demotions needed to stay within @p capacity (coldest hot
     * entries evicted only when a hotter candidate needs the slot).
     */
    static void pickMigrations(const std::vector<u32> &heat_delta,
                               std::vector<u8> &hot_flags, u32 capacity,
                               u32 min_heat, std::vector<u32> &promote,
                               std::vector<u32> &demote);

  private:
    void apply(const AdaptiveDecision &d);

    core::Stm &stm_;
    sim::Dpu &dpu_;
    AdaptiveSpec spec_;
    ControllerState state_;

    /** Last-epoch snapshots for delta computation. */
    core::StmStats last_stats_;
    Cycles last_cycle_ = 0;
    std::vector<u32> last_heat_;
    std::vector<u8> hot_flags_;

    std::shared_ptr<AdaptiveReport> report_;
};

} // namespace pimstm::runtime

#endif // PIMSTM_RUNTIME_ADAPTIVE_HH
