/**
 * @file
 * Epoch-invalidated open-addressing hash index, mapping keys to small
 * integer values (typically "index of the entry in a companion vector").
 *
 * Designed for the transactional-set hot path: lookups and inserts are
 * O(1) linear probes, and clear() is O(1) — it bumps an epoch counter
 * instead of re-zeroing the table, so a transaction retry loop that
 * resets its read/write sets thousands of times per second never pays
 * for the table size. Host-side only: the *simulated* cost of set
 * lookups is still charged by the caller (Stm::scanCost et al.); this
 * structure exists so the host does not pay O(n) per lookup for a scan
 * the simulated machine is already being billed for.
 */

#ifndef PIMSTM_UTIL_EPOCH_INDEX_HH
#define PIMSTM_UTIL_EPOCH_INDEX_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace pimstm::util
{

/** Host-side probe counters (observability for --perf-json). */
struct EpochIndexStats
{
    u64 lookups = 0;   ///< find() calls
    u64 probes = 0;    ///< slots inspected across all find() calls
    u64 inserts = 0;   ///< insert() calls
    u64 max_probe = 0; ///< longest single find() probe sequence

    EpochIndexStats &
    operator+=(const EpochIndexStats &o)
    {
        lookups += o.lookups;
        probes += o.probes;
        inserts += o.inserts;
        max_probe = max_probe > o.max_probe ? max_probe : o.max_probe;
        return *this;
    }
};

/**
 * Open-addressing index from Key to a u32 value. Keys are integral or
 * pointer types. Duplicate inserts keep the first value (matching
 * read-set semantics, where only the first entry for an address
 * matters); callers that must update in place find() first.
 */
template <typename Key>
class EpochIndex
{
  public:
    /** Size the table for @p max_entries live keys (load factor kept
     * at or below 1/2). May be called again to re-initialize. */
    void
    init(size_t max_entries)
    {
        const size_t want = nextPow2(
            max_entries < 4 ? 8 : 2 * static_cast<u64>(max_entries));
        slots_.assign(want, Slot{});
        mask_ = want - 1;
        epoch_ = 1;
        live_ = 0;
    }

    /** Forget every entry in O(1): stale slots are recognized by their
     * epoch tag, not by re-zeroing the table. */
    void
    clear()
    {
        ++epoch_;
        live_ = 0;
    }

    /** Insert @p key -> @p value; keeps the existing value if the key
     * is already present. Grows (and rehashes) when the load factor
     * would exceed 1/2. */
    void
    insert(Key key, u32 value)
    {
        panicIf(slots_.empty(), "EpochIndex used before init()");
        ++stats_.inserts;
        if (2 * (live_ + 1) > slots_.size())
            grow();
        size_t i = hashKey(key) & mask_;
        for (;;) {
            Slot &s = slots_[i];
            if (s.epoch != epoch_) {
                s.epoch = epoch_;
                s.key = key;
                s.value = value;
                ++live_;
                return;
            }
            if (s.key == key)
                return; // keep the first value
            i = (i + 1) & mask_;
        }
    }

    /** Value stored for @p key, or -1 when absent. */
    int
    find(Key key) const
    {
        panicIf(slots_.empty(), "EpochIndex used before init()");
        ++stats_.lookups;
        u64 probe = 0;
        size_t i = hashKey(key) & mask_;
        for (;;) {
            const Slot &s = slots_[i];
            ++probe;
            if (s.epoch != epoch_) {
                noteProbe(probe);
                return -1;
            }
            if (s.key == key) {
                noteProbe(probe);
                return static_cast<int>(s.value);
            }
            i = (i + 1) & mask_;
        }
    }

    size_t size() const { return live_; }
    size_t slotCount() const { return slots_.size(); }

    const EpochIndexStats &stats() const { return stats_; }

  private:
    struct Slot
    {
        u64 epoch = 0; ///< live iff equal to the index's current epoch
        Key key{};
        u32 value = 0;
    };

    static u64
    hashKey(Key key)
    {
        u64 x;
        if constexpr (std::is_pointer_v<Key>)
            x = reinterpret_cast<std::uintptr_t>(key);
        else
            x = static_cast<u64>(key);
        // splitmix64 finalizer: cheap, well-mixed, deterministic.
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return x;
    }

    void
    noteProbe(u64 probe) const
    {
        stats_.probes += probe;
        if (probe > stats_.max_probe)
            stats_.max_probe = probe;
    }

    /** Double the table, re-inserting the live entries. */
    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        mask_ = slots_.size() - 1;
        const u64 old_epoch = epoch_;
        epoch_ = 1;
        for (const Slot &s : old) {
            if (s.epoch != old_epoch)
                continue;
            size_t i = hashKey(s.key) & mask_;
            while (slots_[i].epoch == epoch_)
                i = (i + 1) & mask_;
            slots_[i].epoch = epoch_;
            slots_[i].key = s.key;
            slots_[i].value = s.value;
        }
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    u64 epoch_ = 0;
    size_t live_ = 0;
    mutable EpochIndexStats stats_;
};

} // namespace pimstm::util

#endif // PIMSTM_UTIL_EPOCH_INDEX_HH
