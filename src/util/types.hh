/**
 * @file
 * Fundamental integer typedefs and small helpers shared across the
 * PIM-STM reproduction codebase.
 */

#ifndef PIMSTM_UTIL_TYPES_HH
#define PIMSTM_UTIL_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace pimstm
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Simulated cycle count. */
using Cycles = u64;

/** Round @p v up to the next power of two (v must be > 0). */
constexpr u64
nextPow2(u64 v)
{
    --v;
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    v |= v >> 32;
    return v + 1;
}

/** True iff @p v is a power of two. */
constexpr bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer division rounding up. */
constexpr u64
divCeil(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/** Align @p v up to a multiple of @p align (power of two). */
constexpr u64
alignUp(u64 v, u64 align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace pimstm

#endif // PIMSTM_UTIL_TYPES_HH
