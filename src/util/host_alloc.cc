#include "util/host_alloc.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#ifdef __GLIBC__
#include <malloc.h>
#endif

namespace pimstm::util
{

void
tuneHostAllocator()
{
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char *env = std::getenv("PIMSTM_NO_MALLOC_TUNE")) {
            if (std::strcmp(env, "0") != 0)
                return;
        }
#ifdef __GLIBC__
        // 32 MB covers the largest per-sweep-point allocation (STM
        // metadata, index tables) and the common materialized extent
        // of a pooled MRAM tier. Setting the thresholds explicitly
        // also disables glibc's dynamic adjustment, so behaviour does
        // not depend on allocation order.
        constexpr int kThreshold = 32 * 1024 * 1024;
        mallopt(M_MMAP_THRESHOLD, kThreshold);
        mallopt(M_TRIM_THRESHOLD, kThreshold);
#endif
    });
}

} // namespace pimstm::util
