/**
 * @file
 * Deterministic host-side parallel executor.
 *
 * The simulator's outer loops — DPUs within a PimSystem, seed replicas
 * within a sweep point, sweep points within a figure harness — are
 * embarrassingly parallel: each unit of work is a self-contained
 * simulation (own Memory, fibers, AtomicRegister, RNG) whose result
 * depends only on its inputs, never on which host thread runs it or in
 * which order units complete. ThreadPool::parallelFor exploits that:
 * work is distributed dynamically for load balance, but every result is
 * written to a caller-provided slot indexed by work-item position, so
 * output is bitwise identical for any job count (--jobs=1 vs --jobs=8).
 *
 * Work-stealing is deliberately absent: a shared atomic index is all
 * the scheduling this workload shape needs, and it keeps the executor
 * small enough to audit for the determinism guarantee.
 *
 * Nested use: a parallelFor issued from inside a pool task runs inline
 * on the calling thread (serially). This makes composition safe — e.g.
 * a sweep harness parallelizes over points while runPoint parallelizes
 * over seeds — without deadlock or thread explosion.
 */

#ifndef PIMSTM_UTIL_THREAD_POOL_HH
#define PIMSTM_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hh"

namespace pimstm::util
{

/**
 * Fixed-size thread pool with a single primitive: parallelFor.
 *
 * The calling thread participates in the work, so a pool of J jobs
 * spawns J-1 workers; a pool with jobs == 1 spawns none and runs
 * everything inline (making --jobs=1 exactly the old serial path).
 */
class ThreadPool
{
  public:
    using IndexFn = std::function<void(size_t)>;

    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of host threads this pool uses (including the caller). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(0) .. fn(n-1), distributing indices over the pool. Blocks
     * until every index has run. Indices are claimed dynamically, so
     * completion order is unspecified — callers must write results into
     * per-index slots, never append to shared containers.
     *
     * Exceptions: a throwing index does not cancel the others; after
     * the barrier the exception from the smallest throwing index is
     * rethrown (deterministic regardless of scheduling).
     *
     * Nested use (from inside a pool task, any pool) runs inline and
     * serially on the calling thread. Concurrent use of one pool from
     * two unrelated host threads is a caller bug and panics.
     */
    void parallelFor(size_t n, const IndexFn &fn);

    /** True while the calling thread is executing a pool task. */
    static bool insideTask();

    /**
     * Job count used when none is given explicitly: the PIMSTM_JOBS
     * environment variable if set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (at least 1).
     */
    static unsigned defaultJobs();

    /**
     * The process-wide pool shared by PimSystem, the workload driver
     * and the bench harnesses. Created on first use with defaultJobs().
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of @p jobs threads (0 =
     * defaultJobs()). Must not be called while parallel work is in
     * flight; intended for CLI --jobs=N handling and tests.
     */
    static void setGlobalJobs(unsigned jobs);

  private:
    void workerLoop();
    void runIndices();

    unsigned jobs_ = 1;
    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    bool stop_ = false;
    bool busy_ = false;
    u64 generation_ = 0;

    // Current job (valid while busy_).
    size_t job_n_ = 0;
    const IndexFn *job_fn_ = nullptr;
    std::atomic<size_t> next_index_{0};
    unsigned active_workers_ = 0;
    std::exception_ptr first_ex_;
    size_t first_ex_index_ = 0;
};

/** parallelFor on the process-wide pool. */
inline void
parallelFor(size_t n, const ThreadPool::IndexFn &fn)
{
    ThreadPool::global().parallelFor(n, fn);
}

} // namespace pimstm::util

#endif // PIMSTM_UTIL_THREAD_POOL_HH
