/**
 * @file
 * One-shot host allocator tuning for the simulation hot path.
 *
 * Every sweep point constructs and destroys a few hundred KB of STM
 * metadata (descriptor arrays, transactional-set index tables). With
 * glibc's default dynamic thresholds those allocations are served by
 * mmap and returned to the kernel on free, so a sweep pays a fresh set
 * of page faults per point — hundreds of thousands of minor faults
 * over a fig6 run, all kernel time. Raising M_MMAP_THRESHOLD and
 * M_TRIM_THRESHOLD keeps that churn on the heap, where freed blocks
 * (and their faulted pages) are reused by the next sweep point.
 *
 * Purely a host-side optimization: allocator placement can never
 * change simulated timing. No-op on non-glibc libcs.
 */

#ifndef PIMSTM_UTIL_HOST_ALLOC_HH
#define PIMSTM_UTIL_HOST_ALLOC_HH

namespace pimstm::util
{

/** Apply the allocator tuning once per process (idempotent,
 * thread-safe). Set PIMSTM_NO_MALLOC_TUNE=1 to skip it. */
void tuneHostAllocator();

} // namespace pimstm::util

#endif // PIMSTM_UTIL_HOST_ALLOC_HH
