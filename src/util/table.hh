/**
 * @file
 * Plain-text / CSV table writer used by every benchmark harness to print
 * the rows and series that correspond to the paper's tables and figures.
 */

#ifndef PIMSTM_UTIL_TABLE_HH
#define PIMSTM_UTIL_TABLE_HH

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace pimstm
{

/**
 * A simple column-aligned table. Columns are declared once; rows are
 * appended cell by cell. Output as aligned text (for terminals) or CSV
 * (for plotting scripts).
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    /** Begin a new row. */
    Table &
    newRow()
    {
        rows_.emplace_back();
        return *this;
    }

    /** Append a string cell to the current row. */
    Table &
    cell(const std::string &value)
    {
        panicIf(rows_.empty(), "Table::cell before Table::newRow");
        rows_.back().push_back(value);
        return *this;
    }

    /** Append a floating-point cell with @p precision decimals. */
    Table &
    cell(double value, int precision = 3)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        return cell(os.str());
    }

    /** Append an integral cell. */
    Table &
    cell(u64 value)
    {
        return cell(std::to_string(value));
    }

    Table &
    cell(int value)
    {
        return cell(std::to_string(value));
    }

    Table &
    cell(unsigned value)
    {
        return cell(std::to_string(value));
    }

    size_t numRows() const { return rows_.size(); }
    size_t numCols() const { return headers_.size(); }

    /** Write as a column-aligned text table. */
    void
    printText(std::ostream &os) const
    {
        std::vector<size_t> widths(headers_.size());
        for (size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string> &row) {
            for (size_t c = 0; c < row.size(); ++c) {
                os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                   << row[c];
            }
            os << '\n';
        };
        print_row(headers_);
        for (size_t c = 0; c < headers_.size(); ++c)
            os << std::string(widths[c], '-') << "  ";
        os << '\n';
        for (const auto &row : rows_)
            print_row(row);
    }

    /** Write as CSV. */
    void
    printCsv(std::ostream &os) const
    {
        auto print_row = [&](const std::vector<std::string> &row) {
            for (size_t c = 0; c < row.size(); ++c) {
                if (c)
                    os << ',';
                os << escape(row[c]);
            }
            os << '\n';
        };
        print_row(headers_);
        for (const auto &row : rows_)
            print_row(row);
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pimstm

#endif // PIMSTM_UTIL_TABLE_HH
