/**
 * @file
 * Error-reporting helpers, in the spirit of gem5's fatal()/panic().
 *
 * fatal() is for user-caused conditions (bad configuration, capacity
 * exceeded); panic() is for internal invariant violations.
 */

#ifndef PIMSTM_UTIL_LOGGING_HH
#define PIMSTM_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace pimstm
{

/** Thrown on user-caused errors (e.g. a WRAM allocation that cannot fit). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Thrown on internal invariant violations (simulator bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

namespace detail
{

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

} // namespace detail

/** Abort the current operation due to a user-level error. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Abort due to an internal bug. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Like assert but always on; raises PanicError with a message. */
template <typename... Args>
void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

/** Raise FatalError when @p cond holds. */
template <typename... Args>
void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

} // namespace pimstm

#endif // PIMSTM_UTIL_LOGGING_HH
