/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator and the workloads draws from
 * an explicitly-seeded Xoshiro256** generator so that entire experiments
 * are bit-reproducible. The paper reports averages of 10 runs; here a
 * "run" is one seed.
 */

#ifndef PIMSTM_UTIL_RNG_HH
#define PIMSTM_UTIL_RNG_HH

#include <array>

#include "util/types.hh"

namespace pimstm
{

/**
 * Xoshiro256** generator (Blackman & Vigna). Small, fast and of far
 * better quality than rand(); seeded via SplitMix64 so that any 64-bit
 * seed yields a well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a single 64-bit seed. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Reset the state deterministically from @p seed. */
    void
    reseed(u64 seed)
    {
        // SplitMix64 state expansion.
        u64 x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    u64
    below(u64 bound)
    {
        // Debiased multiply-shift (Lemire).
        u64 x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        u64 l = static_cast<u64>(m);
        if (l < bound) {
            u64 t = (-bound) % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<u64>(m);
            }
        }
        return static_cast<u64>(m >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static constexpr u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<u64, 4> state_;
};

/**
 * Derive a stream seed from a base seed and stream identifiers, so each
 * (run, DPU, tasklet) triple gets an independent deterministic stream.
 */
constexpr u64
deriveSeed(u64 base, u64 stream_a, u64 stream_b = 0)
{
    u64 z = base ^ (stream_a * 0x9e3779b97f4a7c15ULL)
        ^ (stream_b * 0xc2b2ae3d27d4eb4fULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace pimstm

#endif // PIMSTM_UTIL_RNG_HH
