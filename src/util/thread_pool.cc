#include "util/thread_pool.hh"

#include <cstdlib>
#include <limits>
#include <memory>

#include "util/logging.hh"

namespace pimstm::util
{

namespace
{

/** Set while this host thread is executing a pool task; a nested
 * parallelFor (from any pool) then runs inline. */
thread_local bool inside_task = false;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

} // namespace

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
    workers_.reserve(jobs_ - 1);
    for (unsigned i = 0; i + 1 < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::insideTask()
{
    return inside_task;
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("PIMSTM_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v >= 1 &&
            v <= std::numeric_limits<unsigned>::max())
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(g_global_mutex);
    if (!g_global_pool)
        g_global_pool = std::make_unique<ThreadPool>();
    return *g_global_pool;
}

void
ThreadPool::setGlobalJobs(unsigned jobs)
{
    panicIf(inside_task, "ThreadPool::setGlobalJobs from inside a task");
    std::lock_guard<std::mutex> lk(g_global_mutex);
    const unsigned want = jobs ? jobs : defaultJobs();
    if (g_global_pool && g_global_pool->jobs() == want)
        return;
    g_global_pool.reset(); // join old workers before replacing
    g_global_pool = std::make_unique<ThreadPool>(want);
}

void
ThreadPool::runIndices()
{
    inside_task = true;
    for (;;) {
        const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_n_)
            break;
        try {
            (*job_fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (!first_ex_ || i < first_ex_index_) {
                first_ex_ = std::current_exception();
                first_ex_index_ = i;
            }
        }
    }
    inside_task = false;
}

void
ThreadPool::workerLoop()
{
    u64 seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        lk.unlock();
        runIndices();
        lk.lock();
        if (--active_workers_ == 0)
            cv_done_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t n, const IndexFn &fn)
{
    if (n == 0)
        return;
    // Serial paths: a one-thread pool, a single item, or a nested call
    // from inside a task. All run inline, in index order, with natural
    // exception propagation — bitwise identical to the parallel path.
    if (jobs_ <= 1 || n == 1 || inside_task) {
        const bool was_inside = inside_task;
        inside_task = true;
        try {
            for (size_t i = 0; i < n; ++i)
                fn(i);
        } catch (...) {
            inside_task = was_inside;
            throw;
        }
        inside_task = was_inside;
        return;
    }

    std::unique_lock<std::mutex> lk(m_);
    panicIf(busy_,
            "ThreadPool::parallelFor re-entered concurrently from an "
            "unrelated host thread");
    busy_ = true;
    job_n_ = n;
    job_fn_ = &fn;
    next_index_.store(0, std::memory_order_relaxed);
    first_ex_ = nullptr;
    first_ex_index_ = 0;
    active_workers_ = static_cast<unsigned>(workers_.size());
    ++generation_;
    lk.unlock();
    cv_start_.notify_all();

    runIndices(); // the caller is one of the pool's threads

    lk.lock();
    cv_done_.wait(lk, [&] { return active_workers_ == 0; });
    job_fn_ = nullptr;
    job_n_ = 0;
    busy_ = false;
    std::exception_ptr ex = first_ex_;
    first_ex_ = nullptr;
    lk.unlock();

    if (ex)
        std::rethrow_exception(ex);
}

} // namespace pimstm::util
