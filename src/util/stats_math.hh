/**
 * @file
 * Small statistics helpers used by the benchmark harnesses: mean, standard
 * deviation, geometric mean, percentiles — everything the paper's plots
 * report about multi-seed runs.
 */

#ifndef PIMSTM_UTIL_STATS_MATH_HH
#define PIMSTM_UTIL_STATS_MATH_HH

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace pimstm
{

/** Arithmetic mean of @p xs; 0 for an empty vector. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
inline double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

/** Geometric mean; all inputs must be positive. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        fatalIf(x <= 0.0, "geomean requires positive inputs, got ", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Minimum; 0 for empty. */
inline double
minOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

/** Maximum; 0 for empty. */
inline double
maxOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

/**
 * Percentile with linear interpolation, @p p in [0, 100].
 * The input does not need to be sorted.
 */
inline double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<size_t>(std::floor(rank));
    const auto hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/** Median (50th percentile). */
inline double
median(const std::vector<double> &xs)
{
    return percentile(xs, 50.0);
}

} // namespace pimstm

#endif // PIMSTM_UTIL_STATS_MATH_HH
