/**
 * @file
 * Host-side NOrec STM on real threads — the CPU baseline of the
 * paper's §4.3 study (the authors use NOrec on the CPU side as well).
 *
 * This is a genuine concurrent STM: a global sequence lock
 * (std::atomic), value-based validation, commit-time locking and
 * write-back, operating on 32-bit words addressed by pointer. Data
 * accesses go through std::atomic_ref so racing reads during invisible
 * read attempts are well-defined.
 */

#ifndef PIMSTM_CPU_NOREC_CPU_HH
#define PIMSTM_CPU_NOREC_CPU_HH

#include <atomic>
#include <vector>

#include "util/epoch_index.hh"
#include "util/types.hh"

namespace pimstm::cpu
{

/** Thrown internally to unwind an aborted CPU transaction. */
struct CpuTxAbort
{
};

/** Per-thread transaction context. */
class CpuTx
{
  public:
    CpuTx() { write_index_.init(kInitialIndexEntries); }

    void
    reset()
    {
        read_set.clear();
        write_set.clear();
        write_index_.clear(); // O(1) epoch bump
    }

    /** O(1) write-set lookup (hash index over addresses; grows with
     * the set). findWriteLinear() is the scan reference for tests. */
    int
    findWrite(u32 *addr) const
    {
        return write_index_.find(addr);
    }

    int
    findWriteLinear(u32 *addr) const
    {
        for (size_t i = 0; i < write_set.size(); ++i)
            if (write_set[i].addr == addr)
                return static_cast<int>(i);
        return -1;
    }

    /** Record a new write-set entry (addr must not be present yet). */
    void
    pushWrite(u32 *addr, u32 value)
    {
        write_index_.insert(addr,
                            static_cast<u32>(write_set.size()));
        write_set.push_back({addr, value});
    }

    struct Entry
    {
        u32 *addr;
        u32 value;
    };
    std::vector<Entry> read_set;
    std::vector<Entry> write_set;
    u64 snapshot = 0;
    u64 commits = 0;
    u64 aborts = 0;

  private:
    static constexpr size_t kInitialIndexEntries = 32;

    util::EpochIndex<u32 *> write_index_;
};

/** The global NOrec instance (one per shared-data domain). */
class CpuNOrec
{
  public:
    /** Begin: wait for an even (free) sequence lock and snapshot it. */
    void
    start(CpuTx &tx)
    {
        tx.reset();
        for (;;) {
            const u64 s = seqlock_.load(std::memory_order_acquire);
            if ((s & 1) == 0) {
                tx.snapshot = s;
                return;
            }
            cpuRelax();
        }
    }

    u32
    read(CpuTx &tx, u32 *addr)
    {
        const int w = tx.findWrite(addr);
        if (w >= 0)
            return tx.write_set[static_cast<size_t>(w)].value;

        u32 v = load(addr);
        while (seqlock_.load(std::memory_order_acquire) != tx.snapshot) {
            tx.snapshot = validate(tx);
            v = load(addr);
        }
        tx.read_set.push_back({addr, v});
        return v;
    }

    void
    write(CpuTx &tx, u32 *addr, u32 value)
    {
        const int w = tx.findWrite(addr);
        if (w >= 0) {
            tx.write_set[static_cast<size_t>(w)].value = value;
            return;
        }
        tx.pushWrite(addr, value);
    }

    /** Commit; throws CpuTxAbort when validation fails. */
    void
    commit(CpuTx &tx)
    {
        if (tx.write_set.empty()) {
            ++tx.commits;
            return;
        }
        u64 expected = tx.snapshot;
        while (!seqlock_.compare_exchange_weak(
            expected, expected + 1, std::memory_order_acquire,
            std::memory_order_relaxed)) {
            tx.snapshot = validate(tx);
            expected = tx.snapshot;
        }
        for (const auto &e : tx.write_set)
            store(e.addr, e.value);
        seqlock_.store(tx.snapshot + 2, std::memory_order_release);
        ++tx.commits;
    }

    u64 seqlock() const { return seqlock_.load(); }

  private:
    /**
     * Value-based validation: wait for a free lock, recheck every read
     * value, confirm no commit raced. Returns the validated snapshot;
     * throws CpuTxAbort when a read value changed.
     */
    u64
    validate(CpuTx &tx)
    {
        for (;;) {
            const u64 s = seqlock_.load(std::memory_order_acquire);
            if (s & 1) {
                cpuRelax();
                continue;
            }
            for (const auto &e : tx.read_set) {
                if (load(e.addr) != e.value) {
                    ++tx.aborts;
                    throw CpuTxAbort{};
                }
            }
            if (seqlock_.load(std::memory_order_acquire) == s)
                return s;
        }
    }

    static u32
    load(u32 *addr)
    {
        return std::atomic_ref<u32>(*addr).load(
            std::memory_order_relaxed);
    }

    static void
    store(u32 *addr, u32 value)
    {
        std::atomic_ref<u32>(*addr).store(value,
                                          std::memory_order_relaxed);
    }

    static void
    cpuRelax()
    {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
    }

    std::atomic<u64> seqlock_{0};
};

/** Run @p body transactionally, retrying until commit. */
template <typename Body>
void
cpuAtomically(CpuNOrec &stm, CpuTx &tx, Body &&body)
{
    for (;;) {
        stm.start(tx);
        try {
            body(tx);
            stm.commit(tx);
            return;
        } catch (const CpuTxAbort &) {
        }
    }
}

} // namespace pimstm::cpu

#endif // PIMSTM_CPU_NOREC_CPU_HH
