/**
 * @file
 * CPU baseline for the multi-DPU KMeans study (§4.3): the same
 * transactional k-means kernel as the DPU port, on real host threads
 * with the host NOrec STM, timed in wall-clock.
 */

#ifndef PIMSTM_CPU_KMEANS_CPU_HH
#define PIMSTM_CPU_KMEANS_CPU_HH

#include <vector>

#include "sim/config.hh"
#include "util/types.hh"

namespace pimstm::cpu
{

struct KMeansCpuParams
{
    u32 clusters = 15;
    u32 dims = 14;
    u32 total_points = 100000;
    u32 rounds = 3;
    unsigned threads = 4; // the paper's optimum for KMeans
    u64 seed = 1;
};

struct KMeansCpuResult
{
    double seconds = 0;
    u64 commits = 0;
    u64 aborts = 0;
    std::vector<float> centroids; // clusters x dims
};

/** Run the CPU KMeans baseline and return timing + stats. */
KMeansCpuResult runKMeansCpu(const KMeansCpuParams &params);

/**
 * Deterministic closed-form model of runKMeansCpu's wall-clock: per
 * point and round the CPU computes clusters x dims squared distances
 * (3 FLOPs each) and commits one transaction updating dims+1 shared
 * accumulator words (a read and a write each), divided across threads
 * at the configured efficiency. Used by the figure harnesses so their
 * cpu_s / speedup columns are bitwise stable (--measured-cpu restores
 * the timed baseline).
 */
double modelKMeansCpuSeconds(const KMeansCpuParams &params,
                             const sim::HostCpuConfig &cpu = {});

} // namespace pimstm::cpu

#endif // PIMSTM_CPU_KMEANS_CPU_HH
