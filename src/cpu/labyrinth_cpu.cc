#include "cpu/labyrinth_cpu.hh"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "cpu/norec_cpu.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pimstm::cpu
{

namespace
{

constexpr u32 kFree = 0;
constexpr u32 kBlocked = 0xffffffffu;
constexpr u32 kUnvisited = 0xfffffffeu;

struct Instance
{
    const LabyrinthCpuParams &p;

    u32
    cellIndex(u32 cx, u32 cy, u32 cz) const
    {
        return (cz * p.y + cy) * p.x + cx;
    }

    unsigned
    neighbors(u32 index, u32 *out) const
    {
        const u32 cx = index % p.x;
        const u32 cy = (index / p.x) % p.y;
        const u32 cz = index / (p.x * p.y);
        unsigned n = 0;
        if (cx > 0)
            out[n++] = cellIndex(cx - 1, cy, cz);
        if (cx + 1 < p.x)
            out[n++] = cellIndex(cx + 1, cy, cz);
        if (cy > 0)
            out[n++] = cellIndex(cx, cy - 1, cz);
        if (cy + 1 < p.y)
            out[n++] = cellIndex(cx, cy + 1, cz);
        if (cz > 0)
            out[n++] = cellIndex(cx, cy, cz - 1);
        if (cz + 1 < p.z)
            out[n++] = cellIndex(cx, cy, cz + 1);
        return n;
    }
};

/** Lee expansion + backtrack on a private snapshot. When @p words is
 * non-null, the memory words touched (grid/dist reads and writes,
 * frontier traffic) are counted into it — the deterministic operation
 * count behind modelLabyrinthCpuSeconds. */
std::vector<u32>
route(const Instance &inst, std::vector<u32> &local, u32 src, u32 dst,
      u64 *words = nullptr)
{
    u64 w = 2;
    if (local[src] != kFree || local[dst] != kFree) {
        if (words)
            *words += w;
        return {};
    }
    std::vector<u32> &dist = local;
    for (u32 i = 0; i < inst.p.cells(); ++i)
        dist[i] = (local[i] == kFree) ? kUnvisited : kBlocked;
    dist[src] = 0;
    w += 2 * static_cast<u64>(inst.p.cells()) + 1;

    std::deque<u32> frontier{src};
    bool found = false;
    u32 nb[6];
    while (!frontier.empty() && !found) {
        const u32 cell = frontier.front();
        frontier.pop_front();
        const unsigned n = inst.neighbors(cell, nb);
        w += 1 + n;
        for (unsigned k = 0; k < n; ++k) {
            if (dist[nb[k]] != kUnvisited)
                continue;
            dist[nb[k]] = dist[cell] + 1;
            w += 2;
            if (nb[k] == dst) {
                found = true;
                break;
            }
            frontier.push_back(nb[k]);
        }
    }
    if (!found) {
        if (words)
            *words += w;
        return {};
    }

    std::vector<u32> path{dst};
    u32 cur = dst;
    while (cur != src) {
        const unsigned n = inst.neighbors(cur, nb);
        u32 next = kBlocked;
        for (unsigned k = 0; k < n; ++k) {
            if (dist[nb[k]] < dist[cur]) {
                next = nb[k];
                break;
            }
        }
        panicIf(next == kBlocked, "CPU Lee backtrack lost the trail");
        w += n + 2;
        path.push_back(next);
        cur = next;
    }
    if (words)
        *words += w;
    return path;
}

/** The deterministic endpoint list both the timed baseline and the
 * cost model route (same generator as the DPU port). */
std::vector<std::pair<u32, u32>>
generateJobs(const Instance &inst, const LabyrinthCpuParams &params)
{
    Rng rng(deriveSeed(params.seed, 0x1abu));
    std::vector<u8> used(params.cells(), 0);
    std::vector<std::pair<u32, u32>> jobs;
    const u32 cap = params.x / 2 + params.y / 2 + params.z;
    for (u32 j = 0; j < params.num_paths; ++j) {
        u32 src = 0, dst = 0;
        for (int attempt = 0;; ++attempt) {
            fatalIf(attempt > 10000, "CPU Labyrinth endpoint placement");
            src = static_cast<u32>(rng.below(params.cells()));
            if (used[src])
                continue;
            const u32 sx = src % params.x;
            const u32 sy = (src / params.x) % params.y;
            const u32 dx = static_cast<u32>(rng.range(0, cap));
            const u32 dy = static_cast<u32>(rng.range(0, cap - dx));
            const u32 tx = static_cast<u32>(std::min<u64>(
                params.x - 1,
                rng.chance(0.5) && sx >= dx ? sx - dx : sx + dx));
            const u32 ty = static_cast<u32>(std::min<u64>(
                params.y - 1,
                rng.chance(0.5) && sy >= dy ? sy - dy : sy + dy));
            const u32 tz = static_cast<u32>(rng.below(params.z));
            dst = inst.cellIndex(tx, ty, tz);
            if (dst == src || used[dst])
                continue;
            break;
        }
        used[src] = 1;
        used[dst] = 1;
        jobs.emplace_back(src, dst);
    }
    return jobs;
}

} // namespace

double
modelLabyrinthCpuSeconds(const LabyrinthCpuParams &params,
                         const sim::HostCpuConfig &cpu)
{
    fatalIf(params.threads == 0,
            "Labyrinth CPU needs at least one thread");
    Instance inst{params};
    const auto jobs = generateJobs(inst, params);

    // Replay the routing serially in job order, counting the memory
    // words each attempt walks. The serial schedule is one of the
    // schedules the racy parallel run can produce, and the per-attempt
    // work is dominated by the grid snapshot and Lee expansion, which
    // conflicts only perturb at the margin.
    std::vector<u32> grid(params.cells(), kFree);
    std::vector<u32> local(params.cells());
    u64 words = 0, stm_ops = 0, txs = 0;
    for (u32 j = 0; j < jobs.size(); ++j) {
        words += 2 * static_cast<u64>(params.cells()); // snapshot copy
        for (u32 i = 0; i < params.cells(); ++i)
            local[i] = grid[i];
        const auto path =
            route(inst, local, jobs[j].first, jobs[j].second, &words);
        ++txs;
        stm_ops += 2 * path.size(); // transactional claim: read+write
        for (const u32 cell : path)
            grid[cell] = j + 1;
    }

    const double seq =
        static_cast<double>(words) / cpu.mem_words_per_s +
        (static_cast<double>(stm_ops) * cpu.stm_op_ns +
         static_cast<double>(txs) * cpu.stm_tx_ns) *
            1e-9;
    return seq / (params.threads * cpu.parallel_efficiency);
}

LabyrinthCpuResult
runLabyrinthCpu(const LabyrinthCpuParams &params)
{
    Instance inst{params};
    std::vector<u32> grid(params.cells(), kFree);
    const auto jobs = generateJobs(inst, params);

    CpuNOrec stm;
    std::vector<CpuTx> txs(params.threads);
    std::atomic<u32> next_job{0};
    std::atomic<u64> routed{0}, failed{0};

    auto worker = [&](unsigned me) {
        CpuTx &tx = txs[me];
        std::vector<u32> local(params.cells());
        for (;;) {
            const u32 j = next_job.fetch_add(1);
            if (j >= jobs.size())
                return;
            bool ok = false;
            cpuAtomically(stm, tx, [&](CpuTx &t) {
                ok = false;
                // Private snapshot (racy reads are fine: the claim
                // below revalidates every path cell via the STM).
                for (u32 i = 0; i < params.cells(); ++i)
                    local[i] = std::atomic_ref<u32>(grid[i]).load(
                        std::memory_order_relaxed);
                auto path =
                    route(inst, local, jobs[j].first, jobs[j].second);
                if (path.empty())
                    return;
                for (const u32 cell : path) {
                    if (stm.read(t, &grid[cell]) != kFree) {
                        ++t.aborts;
                        throw CpuTxAbort{};
                    }
                    stm.write(t, &grid[cell], j + 1);
                }
                ok = true;
            });
            if (ok)
                ++routed;
            else
                ++failed;
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(params.threads);
    for (unsigned t = 0; t < params.threads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    LabyrinthCpuResult result;
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.routed = routed.load();
    result.failed = failed.load();
    for (const auto &tx : txs) {
        result.commits += tx.commits;
        result.aborts += tx.aborts;
    }
    return result;
}

} // namespace pimstm::cpu
