#include "cpu/kmeans_cpu.hh"

#include <barrier>
#include <bit>
#include <chrono>
#include <thread>

#include "cpu/norec_cpu.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pimstm::cpu
{

double
modelKMeansCpuSeconds(const KMeansCpuParams &params,
                      const sim::HostCpuConfig &cpu)
{
    fatalIf(params.threads == 0, "KMeans CPU needs at least one thread");
    const double flops = 3.0 * params.clusters * params.dims;
    const double stm_ns =
        2.0 * (params.dims + 1) * cpu.stm_op_ns + cpu.stm_tx_ns;
    const double seq_per_point_round =
        flops / cpu.flops_per_s + stm_ns * 1e-9;
    const double wall_per_point_round =
        seq_per_point_round /
        (params.threads * cpu.parallel_efficiency);
    return wall_per_point_round *
           static_cast<double>(params.total_points) * params.rounds;
}

KMeansCpuResult
runKMeansCpu(const KMeansCpuParams &params)
{
    const u32 k = params.clusters;
    const u32 n = params.dims;
    fatalIf(params.threads == 0, "KMeans CPU needs at least one thread");

    // Same synthetic blob generator as the DPU port.
    Rng rng(deriveSeed(params.seed, 0x6b6d6561u));
    std::vector<float> points(static_cast<size_t>(params.total_points) * n);
    for (u32 p = 0; p < params.total_points; ++p) {
        const u32 blob = static_cast<u32>(rng.below(k));
        for (u32 d = 0; d < n; ++d) {
            const float center = static_cast<float>(blob * 10 + d % 3);
            const float jitter =
                static_cast<float>(rng.uniform() * 4.0 - 2.0);
            points[static_cast<size_t>(p) * n + d] = center + jitter;
        }
    }

    std::vector<float> centroids(static_cast<size_t>(k) * n);
    for (u32 c = 0; c < k; ++c)
        for (u32 d = 0; d < n; ++d)
            centroids[c * n + d] = points[c * n + d];

    // Shared accumulators as u32 words (float bits), STM-protected.
    std::vector<u32> sums(static_cast<size_t>(k) * n,
                          std::bit_cast<u32>(0.0f));
    std::vector<u32> counts(k, 0);

    CpuNOrec stm;
    std::vector<CpuTx> txs(params.threads);
    std::barrier barrier(static_cast<std::ptrdiff_t>(params.threads));

    auto worker = [&](unsigned me) {
        CpuTx &tx = txs[me];
        for (u32 round = 0; round < params.rounds; ++round) {
            for (u32 p = me; p < params.total_points;
                 p += params.threads) {
                u32 best = 0;
                float best_dist = 0.0f;
                for (u32 c = 0; c < k; ++c) {
                    float dist = 0.0f;
                    for (u32 d = 0; d < n; ++d) {
                        const float diff =
                            centroids[c * n + d] -
                            points[static_cast<size_t>(p) * n + d];
                        dist += diff * diff;
                    }
                    if (c == 0 || dist < best_dist) {
                        best_dist = dist;
                        best = c;
                    }
                }
                cpuAtomically(stm, tx, [&](CpuTx &t) {
                    for (u32 d = 0; d < n; ++d) {
                        const float s = std::bit_cast<float>(
                            stm.read(t, &sums[best * n + d]));
                        stm.write(
                            t, &sums[best * n + d],
                            std::bit_cast<u32>(
                                s +
                                points[static_cast<size_t>(p) * n + d]));
                    }
                    stm.write(t, &counts[best],
                              stm.read(t, &counts[best]) + 1);
                });
            }
            barrier.arrive_and_wait();
            if (me == 0) {
                for (u32 c = 0; c < k; ++c) {
                    const u32 count = counts[c];
                    for (u32 d = 0; d < n; ++d) {
                        if (count > 0) {
                            centroids[c * n + d] =
                                std::bit_cast<float>(sums[c * n + d]) /
                                static_cast<float>(count);
                        }
                        sums[c * n + d] = std::bit_cast<u32>(0.0f);
                    }
                    counts[c] = 0;
                }
            }
            barrier.arrive_and_wait();
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(params.threads);
    for (unsigned t = 0; t < params.threads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    KMeansCpuResult result;
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const auto &tx : txs) {
        result.commits += tx.commits;
        result.aborts += tx.aborts;
    }
    result.centroids = centroids;
    return result;
}

} // namespace pimstm::cpu
