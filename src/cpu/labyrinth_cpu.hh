/**
 * @file
 * CPU baseline for the multi-DPU Labyrinth study (§4.3): one circuit-
 * routing instance solved on real host threads with the host NOrec
 * STM — the same copy / Lee-route / transactionally-claim structure as
 * the DPU port, timed in wall-clock.
 */

#ifndef PIMSTM_CPU_LABYRINTH_CPU_HH
#define PIMSTM_CPU_LABYRINTH_CPU_HH

#include <vector>

#include "sim/config.hh"
#include "util/types.hh"

namespace pimstm::cpu
{

struct LabyrinthCpuParams
{
    u32 x = 16, y = 16, z = 3;
    u32 num_paths = 100;
    unsigned threads = 8; // the paper's optimum for Labyrinth
    u64 seed = 1;

    u32 cells() const { return x * y * z; }
};

struct LabyrinthCpuResult
{
    double seconds = 0;
    u64 routed = 0;
    u64 failed = 0;
    u64 commits = 0;
    u64 aborts = 0;
};

/** Solve one instance on the CPU and return timing + stats. */
LabyrinthCpuResult runLabyrinthCpu(const LabyrinthCpuParams &params);

/**
 * Deterministic model of runLabyrinthCpu's wall-clock: replay the
 * routing serially (same endpoint list), counting the memory words
 * each attempt touches (grid snapshot, Lee expansion, backtrack) and
 * the transactional claim operations, then charge them against the
 * calibrated host rates. Bitwise stable across runs and machines;
 * --measured-cpu in the figure harnesses restores the timed baseline.
 */
double modelLabyrinthCpuSeconds(const LabyrinthCpuParams &params,
                                const sim::HostCpuConfig &cpu = {});

} // namespace pimstm::cpu

#endif // PIMSTM_CPU_LABYRINTH_CPU_HH
