/**
 * @file
 * Simulated address representation.
 *
 * The DPU is a 32-bit architecture with two data tiers: MRAM (64 MB) and
 * WRAM (64 KB). A simulated address is a 32-bit value whose top bit
 * selects the tier and whose remaining bits are the byte offset within
 * that tier. The STM operates on 32-bit words at 4-byte-aligned
 * addresses, mirroring the word-based designs the paper ports.
 */

#ifndef PIMSTM_SIM_ADDR_HH
#define PIMSTM_SIM_ADDR_HH

#include "util/types.hh"

namespace pimstm::sim
{

/** A simulated DPU address (tier tag in bit 31, offset below). */
using Addr = u32;

/** Memory tier selector. */
enum class Tier : u8
{
    Mram = 0,
    Wram = 1,
};

constexpr Addr kTierBit = 0x80000000u;
constexpr Addr kOffsetMask = 0x7fffffffu;

/** Build an address from a tier and byte offset. */
constexpr Addr
makeAddr(Tier tier, u32 offset)
{
    return (tier == Tier::Wram ? kTierBit : 0u) | (offset & kOffsetMask);
}

/** Tier of an address. */
constexpr Tier
addrTier(Addr a)
{
    return (a & kTierBit) ? Tier::Wram : Tier::Mram;
}

/** Byte offset of an address within its tier. */
constexpr u32
addrOffset(Addr a)
{
    return a & kOffsetMask;
}

/** Human-readable tier name. */
constexpr const char *
tierName(Tier t)
{
    return t == Tier::Wram ? "WRAM" : "MRAM";
}

} // namespace pimstm::sim

#endif // PIMSTM_SIM_ADDR_HH
