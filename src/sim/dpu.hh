/**
 * @file
 * The simulated DPU: tasklet fibers, cycle-accounting scheduler,
 * pipeline and MRAM-DMA timing model, atomic-register blocking, and
 * per-phase statistics.
 *
 * Execution model
 * ---------------
 * Tasklet code is ordinary C++ running on a fiber. Every operation with
 * a simulated cost goes through the DpuContext handed to the tasklet
 * body; the context computes the cost under the TimingConfig, advances
 * the tasklet's local clock and hands control to the scheduler, which
 * always resumes the globally-earliest runnable tasklet (ties broken by
 * id). Interleaving is thus decided purely by simulated time —
 * deterministic, yet fine-grained enough (a scheduling point on every
 * memory access and atomic op) that real STM conflicts, aborts and lock
 * aliasing all occur.
 *
 * As a pure host-side optimization, a timing charge whose tasklet would
 * be the scheduler's next pick anyway advances the clock in place and
 * keeps running instead of paying two fiber switches ("fiber-switch
 * elision"); the observable schedule is identical by construction, and
 * PIMSTM_SIM_ALWAYS_SWITCH=1 (or DpuConfig::always_switch) restores
 * the switch-on-every-charge behaviour for cross-checking. See
 * docs/simulator.md §"Scheduler and timing model".
 */

#ifndef PIMSTM_SIM_DPU_HH
#define PIMSTM_SIM_DPU_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/addr.hh"
#include "sim/atomic_register.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/fiber.hh"
#include "sim/memory.hh"
#include "sim/phase.hh"
#include "sim/sched_trace.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace pimstm::sim
{

class Dpu;
class DpuContext;

/** Signature of a tasklet body. */
using TaskletBody = std::function<void(DpuContext &)>;

/** Aggregate statistics of one DPU run. */
struct DpuStats
{
    /** Simulated cycles from launch to the last tasklet finishing. */
    Cycles total_cycles = 0;

    /** Busy cycles per phase, summed over tasklets. */
    PhaseCycles phase_cycles{};

    u64 instructions = 0;
    u64 wram_accesses = 0;
    u64 mram_reads = 0;
    u64 mram_writes = 0;
    u64 mram_bytes_read = 0;
    u64 mram_bytes_written = 0;
    u64 atomic_acquires = 0;
    /** Times a tasklet found its atomic bit held and had to block. */
    u64 atomic_stalls = 0;
    /** Cycles spent blocked on a held atomic bit, summed over tasklets. */
    Cycles atomic_stall_cycles = 0;

    /**
     * @{ Fault-injection counters (zero unless a FaultPlan is armed;
     * simulated state, so they replay deterministically).
     */
    /** Injected tasklet stalls delivered. */
    u64 injected_stalls = 0;
    /** Cycles added by injected stalls. */
    Cycles injected_stall_cycles = 0;
    /** Injected atomic-register acquire delays delivered. */
    u64 injected_acq_delays = 0;
    /** Cycles added by injected acquire delays. */
    Cycles injected_acq_delay_cycles = 0;
    /** Tasklets terminated cleanly by an injected crash. */
    u64 tasklet_crashes = 0;
    /** Whole-DPU crashes delivered this run (0 or 1: a crash ends the
     * run; restarts accumulate via operator+=). */
    u64 dpu_crashes = 0;
    /** @} */

    /**
     * @{ Persist-boundary counters (zero unless durable mode issues
     * flush fences; simulated state, deterministic).
     */
    /** Flush fences executed. */
    u64 mram_fences = 0;
    /** Unflushed lines pushed to the persist boundary by fences. */
    u64 mram_fence_lines = 0;
    /** @} */

    /**
     * @{ Host-side scheduler counters (not simulated time; excluded
     * from cross-mode determinism checks — an elided and an
     * always-switch run of the same workload agree on every field
     * above but differ here by construction).
     */
    /** Fiber entries performed by the scheduler. */
    u64 sched_switches = 0;
    /** Timing charges absorbed in place without a fiber switch. */
    u64 sched_elisions = 0;
    /** @} */

    Cycles
    busyCycles() const
    {
        Cycles total = 0;
        for (Cycles c : phase_cycles)
            total += c;
        return total;
    }

    /** Fold another run's counters in (crash-restart accumulation:
     * the driver sums the stats of every launch of a durable run). */
    DpuStats &
    operator+=(const DpuStats &o)
    {
        total_cycles += o.total_cycles;
        for (size_t p = 0; p < phase_cycles.size(); ++p)
            phase_cycles[p] += o.phase_cycles[p];
        instructions += o.instructions;
        wram_accesses += o.wram_accesses;
        mram_reads += o.mram_reads;
        mram_writes += o.mram_writes;
        mram_bytes_read += o.mram_bytes_read;
        mram_bytes_written += o.mram_bytes_written;
        atomic_acquires += o.atomic_acquires;
        atomic_stalls += o.atomic_stalls;
        atomic_stall_cycles += o.atomic_stall_cycles;
        injected_stalls += o.injected_stalls;
        injected_stall_cycles += o.injected_stall_cycles;
        injected_acq_delays += o.injected_acq_delays;
        injected_acq_delay_cycles += o.injected_acq_delay_cycles;
        tasklet_crashes += o.tasklet_crashes;
        dpu_crashes += o.dpu_crashes;
        mram_fences += o.mram_fences;
        mram_fence_lines += o.mram_fence_lines;
        sched_switches += o.sched_switches;
        sched_elisions += o.sched_elisions;
        return *this;
    }
};

/**
 * Per-tasklet view of the DPU, passed to the tasklet body. All methods
 * must be called from inside that tasklet's fiber.
 */
class DpuContext
{
  public:
    DpuContext(Dpu &dpu, unsigned id, u64 seed);

    /** @{ Identity. */
    unsigned taskletId() const { return id_; }
    Dpu &dpu() { return dpu_; }
    unsigned numTasklets() const;
    /** @} */

    /** Per-tasklet deterministic RNG. */
    Rng &rng() { return rng_; }

    /** @{ Compute: charge @p instrs pipeline-issued instructions. */
    void compute(u64 instrs);
    /** @} */

    /** @{ Timed data access. Word accesses must be 4-byte aligned. */
    u32 read32(Addr a);
    void write32(Addr a, u32 v);
    u64 read64(Addr a);
    void write64(Addr a, u64 v);
    void readBlock(Addr a, void *dst, size_t n);
    void writeBlock(Addr a, const void *src, size_t n);
    /** @} */

    /**
     * @{ Charge the cost of a memory access on @p tier without touching
     * backing storage. The STM uses this to price accesses to metadata
     * whose values live in host structures (read/write sets, lock
     * tables), per the configured metadata placement.
     */
    void touchRead(Tier tier, size_t bytes);
    void touchWrite(Tier tier, size_t bytes);

    /**
     * Charge @p count dependent random accesses of @p bytes_each to
     * @p tier in one scheduling event. Unlike touchRead/touchWrite
     * (which model one streamed DMA), this prices the latency-bound
     * pattern of pointer-chasing kernels — each access pays full DMA
     * latency — while still reserving DMA-engine bandwidth, so the
     * cross-tasklet contention model stays intact without a fiber
     * switch per word. Used by batch-simulated kernels (Lee expansion).
     */
    void touchRandom(Tier tier, u64 count, size_t bytes_each,
                     bool is_write);
    /** @} */

    /** @{ Atomic register operations. acquire() blocks until granted. */
    void acquire(u32 key);
    bool tryAcquire(u32 key);
    void release(u32 key);
    /** @} */

    /**
     * MRAM flush fence (docs/durability.md): wait for the DMA engine
     * to drain, push every unflushed line to the persist boundary, and
     * charge mram_fence_base_cycles plus one beat per line. Only the
     * durable commit protocol issues fences; a run that never fences
     * is bitwise identical to one built without the persist model.
     */
    void flushFence();

    /** All-tasklet rendezvous. */
    void barrier();

    /** Reschedule without charging cycles. */
    void yield();

    /** Stall for @p cycles of simulated time (busy wait / back-off). */
    void delay(Cycles cycles);

    /** Current simulated time. */
    Cycles now() const;

    /** @{ Phase accounting used by the STM layer. */
    void setPhase(Phase p) { phase_ = p; }
    Phase phase() const { return phase_; }

    /** Mark transaction start: subsequent cycles accumulate separately
     * so they can be re-binned as Wasted if the transaction aborts. */
    void txAccountingBegin();
    /** Flush accumulated tx cycles to their phases (commit path). */
    void txAccountingCommit();
    /** Re-bin all accumulated tx cycles as Wasted (abort path). */
    void txAccountingAbort();
    /** @} */

  private:
    friend class Dpu;

    void charge(Phase p, Cycles c);

    Dpu &dpu_;
    unsigned id_;
    Rng rng_;
    Phase phase_ = Phase::NonTx;
    bool in_tx_ = false;
    PhaseCycles tx_acc_{};
};

/** One simulated DPU. */
class Dpu
{
  public:
    Dpu(const DpuConfig &cfg, const TimingConfig &timing);
    ~Dpu();

    Dpu(const Dpu &) = delete;
    Dpu &operator=(const Dpu &) = delete;

    /** Register one tasklet; call before run(). Returns its id. */
    unsigned addTasklet(TaskletBody body);

    /** Convenience: register @p n tasklets sharing one body. */
    void addTasklets(unsigned n, const TaskletBody &body);

    /**
     * Run all registered tasklets to completion. Exceptions thrown by
     * tasklet bodies propagate out. May be called again after
     * resetRun() with fresh tasklets.
     */
    void run();

    /**
     * Clear tasklets and run-statistics; memory contents persist.
     * By default the fault injector restarts its per-tasklet operation
     * counts too (each run sees the plan from scratch). Multi-launch
     * hosts — e.g. the distributed KV's 2PC rounds — pass
     * @p reset_faults = false so op counts accumulate across launches
     * and a `crash=TID@OPS` event stays one-shot for the DPU's whole
     * lifetime instead of re-firing every round.
     */
    void resetRun(bool reset_faults = true);

    /**
     * Return this DPU to the state of a freshly constructed
     * Dpu(cfg, timing): tasklets and statistics cleared, memory tiers
     * re-zeroed (only their materialized extents — the point of
     * pooling), atomic register freed, configuration adopted. A
     * recycled DPU produces bitwise-identical simulations to a fresh
     * one; runtime::DpuPool uses this to recycle instances across
     * sweep points instead of reconstructing 64 MB tiers.
     */
    void recycle(const DpuConfig &cfg, const TimingConfig &timing);

    /** @{ Components. */
    Memory &wram() { return wram_; }
    Memory &mram() { return mram_; }
    Memory &memory(Tier t) { return t == Tier::Wram ? wram_ : mram_; }
    AtomicRegister &atomics() { return atomic_reg_; }
    const DpuConfig &config() const { return cfg_; }
    const TimingConfig &timing() const { return timing_; }
    /** @} */

    /** Statistics of the current / most recent run. */
    const DpuStats &stats() const { return stats_; }

    /** Current simulated cycle. */
    Cycles now() const { return now_; }

    /** Number of registered tasklets. */
    unsigned numTasklets() const { return static_cast<unsigned>(tasklets_.size()); }

    /** Tasklets currently in the Ready state (maintained incrementally;
     * the pipeline model prices instruction issue with this). */
    unsigned runnableCount() const { return runnable_count_; }

    /** Tasklets whose body has returned. */
    unsigned finishedCount() const { return finished_count_; }

    /** True when every timing charge forces a fiber switch (the
     * PIMSTM_SIM_ALWAYS_SWITCH / DpuConfig::always_switch
     * cross-checking mode); false in the default elided mode. */
    bool alwaysSwitch() const { return always_switch_; }

    /** Fault-delivery engine, or nullptr when the plan is empty (the
     * common case — callers hook injection behind this null check). */
    FaultInjector *faultInjector() { return fault_injector_.get(); }

    /**
     * @{ Whole-DPU crash delivery (docs/durability.md). beginCrash()
     * arms the pending-crash flag; the caller then throws
     * DpuCrashException from its fiber, the trampoline swallows it and
     * the scheduler stops at once, abandoning every other tasklet
     * mid-stack (their fiber stacks are freed, not unwound — exactly a
     * power loss). Dpu::run then wipes WRAM, resolves unfenced MRAM
     * lines (crashScramble, seeded by plan seed and crash ordinal),
     * clears the atomic register and throws DpuCrashError, leaving the
     * DPU restartable via resetRun(reset_faults=false).
     */
    void beginCrash() { crash_pending_ = true; }
    bool crashPending() const { return crash_pending_; }
    /** @} */

    /**
     * @{ Scheduler trace sink. Host-only observability: emission sites
     * are behind a null check and never charge simulated cycles, so a
     * traced run is bitwise identical to an untraced one. The sink is
     * borrowed, not owned — callers must clear it (or keep the sink
     * alive) for the Dpu's remaining lifetime; recycle() clears it.
     */
    void setTraceSink(SchedTraceSink *sink) { trace_sink_ = sink; }
    SchedTraceSink *traceSink() const { return trace_sink_; }
    /** @} */

    /** A tasklet body that terminated abnormally during run(). */
    struct TaskletFault
    {
        unsigned tasklet;
        std::string message;
        /** True for injected crashes (clean termination); false for
         * escaped exceptions (the run fails with a TaskletError). */
        bool injected_crash;
    };

    /** Faults recorded during the current / most recent run. */
    const std::vector<TaskletFault> &taskletFaults() const
    {
        return tasklet_faults_;
    }

    /** Progress notification: an STM commit happened. Re-arms the
     * livelock watchdog; a no-op (one branch) when it is disabled. */
    void
    noteProgress()
    {
        if (watchdog_cycles_ != 0)
            watchdog_deadline_ = now_ + watchdog_cycles_;
    }

    /**
     * @{ Epoch hook: a host-side callback fired the first time a timing
     * charge moves the clock past each period boundary — the sampling
     * tick of the adaptation controller (docs/adaptive.md). The hook
     * runs on the charging tasklet's fiber stack, charges no simulated
     * cycles, and must not touch simulated memory; like the watchdog,
     * the disarmed check is a single never-taken compare in consume().
     * The hook is borrowed state: recycle() clears it, and passing
     * period 0 (or an empty hook) disarms. Calling mid-run re-arms
     * relative to the current cycle.
     */
    void setEpochHook(Cycles period, std::function<void()> hook);
    Cycles epochPeriod() const { return epoch_period_; }
    /** @} */

    /**
     * @{ Diagnostic providers for the watchdog dump. An STM instance
     * registers a callback describing its held ownership records and
     * abort histogram; @p key (the instance address) unregisters it.
     */
    void addDiagnostic(const void *key,
                       std::function<void(std::ostream &)> fn);
    void removeDiagnostic(const void *key);
    /** @} */

    /** Structured progress dump (per-tasklet state, held atomic bits,
     * registered STM diagnostics) as used in WatchdogError::what(). */
    std::string progressDump(const std::string &verdict) const;

  private:
    friend class DpuContext;

    enum class TaskletState : u8
    {
        Ready,          ///< runnable at ready_at
        BlockedAtomic,  ///< waiting for an atomic register bit
        BlockedBarrier, ///< waiting at the barrier
        Finished,
    };

    struct Tasklet
    {
        std::unique_ptr<Fiber> fiber;
        std::unique_ptr<DpuContext> ctx;
        TaskletState state = TaskletState::Ready;
        Cycles ready_at = 0;
        unsigned waiting_bit = 0;      // valid when BlockedAtomic
        Cycles blocked_since = 0;      // for atomic stall accounting
    };

    /** One entry of the ready min-heap: a Ready, not-running tasklet
     * keyed by its wake-up time. Entries are never stale — a Ready
     * tasklet's ready_at only changes while it runs, and the running
     * tasklet is not in the heap. */
    struct ReadyEntry
    {
        Cycles ready_at;
        unsigned tid;
    };

    /** Min-heap order on (ready_at, tid) — mirrors the scheduler's
     * earliest-clock, lowest-id-on-tie selection rule exactly. */
    static bool
    laterThan(const ReadyEntry &a, const ReadyEntry &b)
    {
        return a.ready_at > b.ready_at ||
               (a.ready_at == b.ready_at && a.tid > b.tid);
    }

    /** Cost in cycles of issuing @p instrs instructions now. */
    Cycles instrCost(u64 instrs) const;

    /** Charge @p cycles to @p t; keeps running in place when @p tid
     * would be the scheduler's next pick anyway, else suspends it
     * until now + cycles. */
    void consume(unsigned tid, Cycles cycles, Phase phase);

    /** Push @p tid (state Ready) into the ready heap. */
    void pushReady(unsigned tid);

    /** True when the running tasklet @p tid, becoming runnable again at
     * @p at, is exactly what scheduleLoop would pick next. */
    bool currentStaysNext(unsigned tid, Cycles at) const;

    /** Requeue the running tasklet (ready_at already set) and yield. */
    void yieldRunning(unsigned tid);

    /** Move the running tasklet to BlockedAtomic on @p bit and yield. */
    void blockOnAtomic(unsigned tid, unsigned bit);

    /** Barrier arrival of the running tasklet: block, maybe release,
     * and yield until the generation advances. */
    void arriveBarrier(unsigned tid);

    /** Schedule an MRAM DMA of @p bytes; returns completion time. */
    Cycles mramAccess(unsigned tid, size_t bytes, bool is_write);

    /** Schedule @p count dependent random MRAM accesses; returns the
     * completion time of the last one. */
    Cycles mramRandomAccess(unsigned tid, u64 count, size_t bytes_each,
                            bool is_write);

    /** Suspend the calling tasklet and return to the scheduler. */
    void suspend(unsigned tid);

    /** Wake tasklets blocked on atomic @p bit. */
    void wakeAtomicWaiters(unsigned bit);

    /** Release the barrier if every live tasklet has arrived. */
    void maybeReleaseBarrier();

    /** Fail the run with a WatchdogError carrying the progress dump. */
    [[noreturn]] void watchdogFire(WatchdogError::Kind kind);

    /** Advance epoch_next_ past now_ and invoke the epoch hook. */
    void fireEpoch();

    void scheduleLoop();

    DpuConfig cfg_;
    TimingConfig timing_;
    Memory wram_;
    Memory mram_;
    AtomicRegister atomic_reg_;
    std::vector<Tasklet> tasklets_;
    DpuStats stats_;

    Cycles now_ = 0;
    Cycles mram_engine_free_ = 0;
    unsigned running_tid_ = 0;
    bool in_run_ = false;
    /** An injected whole-DPU crash is unwinding the current run. */
    bool crash_pending_ = false;

    // Incremental scheduler state: counts are updated at every tasklet
    // state transition so the hot path (instrCost on each compute /
    // memory touch, the pick in scheduleLoop, the alive count in
    // maybeReleaseBarrier) never scans all tasklets.
    unsigned runnable_count_ = 0;
    unsigned finished_count_ = 0;
    unsigned blocked_atomic_count_ = 0;
    std::vector<ReadyEntry> ready_heap_;
    bool always_switch_ = false;

    // Barrier state.
    unsigned barrier_count_ = 0;
    u64 barrier_generation_ = 0;

    // Robustness layer. The injector exists only for non-empty plans;
    // the livelock deadline is UINT64_MAX when the watchdog is off, so
    // the hot-path check in consume() is a single always-false compare.
    std::unique_ptr<FaultInjector> fault_injector_;
    SchedTraceSink *trace_sink_ = nullptr;
    Cycles watchdog_cycles_ = 0;
    Cycles watchdog_deadline_ = ~Cycles{0};
    // Epoch hook (disarmed: next = UINT64_MAX, same trick as the
    // watchdog so the off cost is one never-taken compare).
    Cycles epoch_period_ = 0;
    Cycles epoch_next_ = ~Cycles{0};
    std::function<void()> epoch_hook_;
    std::vector<TaskletFault> tasklet_faults_;
    std::vector<std::pair<const void *, std::function<void(std::ostream &)>>>
        diagnostics_;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_DPU_HH
