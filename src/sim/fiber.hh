/**
 * @file
 * Cooperative user-level fibers.
 *
 * Each simulated tasklet runs on its own fiber; the DPU scheduler switches
 * into a fiber to advance that tasklet and the fiber switches back on
 * every simulated-cost operation that cannot be elided (see
 * Dpu::consume). One DPU's fibers all stay on the host thread that called
 * Dpu::run(), so simulated "concurrency" is fully deterministic —
 * while independent DPUs may run concurrently on different host
 * threads (a fiber must not migrate between host threads mid-run).
 *
 * Two switch primitives are provided:
 *
 *  - **fast** (default on x86-64): a hand-rolled System V context
 *    switch that saves/restores only the callee-saved registers and the
 *    stack pointer. glibc's swapcontext additionally saves the signal
 *    mask with a real rt_sigprocmask syscall on *every* switch, which
 *    dominated the inner simulation loop; the simulator never touches
 *    signal masks, so the fast path simply skips it (~20 ns vs ~1 us).
 *  - **ucontext** (other architectures, sanitized builds, or
 *    -DPIMSTM_FIBER_UCONTEXT): the portable POSIX implementation.
 *
 * Both are semantically identical to the scheduler; tests and CI run
 * the same suite whichever primitive is compiled in.
 */

#ifndef PIMSTM_SIM_FIBER_HH
#define PIMSTM_SIM_FIBER_HH

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PIMSTM_FIBER_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PIMSTM_FIBER_SANITIZED 1
#endif
#endif

#if !defined(PIMSTM_FIBER_UCONTEXT) && !defined(PIMSTM_FIBER_SANITIZED) && \
    defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define PIMSTM_FIBER_FAST 1
#else
#include <ucontext.h>
#endif

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "util/types.hh"

namespace pimstm::sim
{

/**
 * A single fiber. The owner (scheduler) calls enter() to run it; the
 * fiber body calls yieldOut() to suspend back to the owner. When the
 * body returns (or throws), the fiber becomes finished and control
 * returns to the owner; a stored exception is rethrown by enter().
 */
class Fiber
{
  public:
    using Body = std::function<void()>;

    Fiber() = default;
    ~Fiber() = default;

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Prepare the fiber with a stack and a body. May be called again
     * after the previous body finished, to reuse the stack.
     */
    void init(size_t stack_bytes, Body body);

    /**
     * Switch from the owner into the fiber; returns when the fiber
     * yields or finishes. Rethrows any exception the body raised.
     *
     * @retval true the fiber is still runnable (it yielded)
     * @retval false the body finished
     */
    bool enter();

    /** Suspend back to the owner. Must be called from inside the body. */
    void yieldOut();

    /** True once the body has returned or thrown. */
    bool finished() const { return finished_; }

    /** True if init() has been called and the body has not finished. */
    bool runnable() const { return started_ && !finished_; }

    /** True when the fast (syscall-free) switch primitive is in use. */
    static constexpr bool
    fastSwitch()
    {
#ifdef PIMSTM_FIBER_FAST
        return true;
#else
        return false;
#endif
    }

  private:
#ifdef PIMSTM_FIBER_FAST
    friend void fiberEntry();
#else
    static void trampoline();
#endif
    void run();

    std::unique_ptr<char[]> stack_;
    size_t stack_bytes_ = 0;
    Body body_;
#ifdef PIMSTM_FIBER_FAST
    /** Saved stack pointer of the suspended fiber / owner. */
    void *sp_ = nullptr;
    void *owner_sp_ = nullptr;
#else
    ucontext_t ctx_{};
    ucontext_t owner_ctx_{};
#endif
    bool started_ = false;
    bool finished_ = true;
    bool inside_ = false;
    std::exception_ptr pending_exception_;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_FIBER_HH
