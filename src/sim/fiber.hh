/**
 * @file
 * Cooperative user-level fibers built on POSIX ucontext.
 *
 * Each simulated tasklet runs on its own fiber; the DPU scheduler switches
 * into a fiber to advance that tasklet and the fiber switches back on
 * every simulated-cost operation (memory access, instruction batch,
 * atomic op). One DPU's fibers all stay on the host thread that called
 * Dpu::run(), so simulated "concurrency" is fully deterministic —
 * while independent DPUs may run concurrently on different host
 * threads (a fiber must not migrate between host threads mid-run).
 */

#ifndef PIMSTM_SIM_FIBER_HH
#define PIMSTM_SIM_FIBER_HH

#include <ucontext.h>

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "util/types.hh"

namespace pimstm::sim
{

/**
 * A single fiber. The owner (scheduler) calls enter() to run it; the
 * fiber body calls yieldOut() to suspend back to the owner. When the
 * body returns (or throws), the fiber becomes finished and control
 * returns to the owner; a stored exception is rethrown by enter().
 */
class Fiber
{
  public:
    using Body = std::function<void()>;

    Fiber() = default;
    ~Fiber() = default;

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Prepare the fiber with a stack and a body. May be called again
     * after the previous body finished, to reuse the stack.
     */
    void init(size_t stack_bytes, Body body);

    /**
     * Switch from the owner into the fiber; returns when the fiber
     * yields or finishes. Rethrows any exception the body raised.
     *
     * @retval true the fiber is still runnable (it yielded)
     * @retval false the body finished
     */
    bool enter();

    /** Suspend back to the owner. Must be called from inside the body. */
    void yieldOut();

    /** True once the body has returned or thrown. */
    bool finished() const { return finished_; }

    /** True if init() has been called and the body has not finished. */
    bool runnable() const { return started_ && !finished_; }

  private:
    static void trampoline();
    void run();

    std::unique_ptr<char[]> stack_;
    size_t stack_bytes_ = 0;
    Body body_;
    ucontext_t ctx_{};
    ucontext_t owner_ctx_{};
    bool started_ = false;
    bool finished_ = true;
    bool inside_ = false;
    std::exception_ptr pending_exception_;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_FIBER_HH
