#include "sim/fault.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/logging.hh"

namespace pimstm::sim
{

namespace
{

/** Strict unsigned parse of a full token; throws FatalError naming the
 * offending item. */
u64
parseU64(const std::string &tok, const std::string &item)
{
    fatalIf(tok.empty(), "--faults: empty number in item '", item, "'");
    u64 v = 0;
    for (char c : tok) {
        fatalIf(c < '0' || c > '9', "--faults: bad number '", tok,
                "' in item '", item, "'");
        const u64 next = v * 10 + static_cast<u64>(c - '0');
        fatalIf(next / 10 != v, "--faults: number '", tok,
                "' overflows in item '", item, "'");
        v = next;
    }
    return v;
}

/** TID field: decimal tasklet id or '*' for all tasklets. */
unsigned
parseTid(const std::string &tok, const std::string &item)
{
    if (tok == "*")
        return kAllTasklets;
    const u64 v = parseU64(tok, item);
    fatalIf(v >= 24, "--faults: tasklet id ", v, " out of range in item '",
            item, "'");
    return static_cast<unsigned>(v);
}

u32
parsePermille(const std::string &tok, const std::string &item)
{
    const u64 v = parseU64(tok, item);
    fatalIf(v > 1000, "--faults: permille value ", v,
            " exceeds 1000 in item '", item, "'");
    return static_cast<u32>(v);
}

/** Split "A<sep>B" exactly once; throws when @p sep is absent. */
std::pair<std::string, std::string>
splitOnce(const std::string &s, char sep, const std::string &item)
{
    const size_t pos = s.find(sep);
    fatalIf(pos == std::string::npos, "--faults: expected '", std::string(1, sep),
            "' in item '", item, "'");
    return {s.substr(0, pos), s.substr(pos + 1)};
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    if (spec.empty() || spec == "none")
        return plan;

    size_t start = 0;
    while (start <= spec.size()) {
        size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;

        const size_t eq = item.find('=');
        fatalIf(eq == std::string::npos,
                "--faults: item '", item, "' is not KEY=VALUE");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);

        if (key == "seed") {
            plan.seed = parseU64(val, item);
        } else if (key == "stall") {
            // stall=TID@INSTRS:CYCLES
            auto [tid_s, rest] = splitOnce(val, '@', item);
            auto [at_s, cyc_s] = splitOnce(rest, ':', item);
            StallFault f;
            f.tid = parseTid(tid_s, item);
            f.at_instrs = parseU64(at_s, item);
            f.cycles = parseU64(cyc_s, item);
            fatalIf(f.cycles == 0, "--faults: zero-cycle stall in item '",
                    item, "'");
            plan.stalls.push_back(f);
        } else if (key == "crash") {
            // crash=TID@OPS
            auto [tid_s, op_s] = splitOnce(val, '@', item);
            CrashFault f;
            f.tid = parseTid(tid_s, item);
            f.at_op = parseU64(op_s, item);
            fatalIf(f.at_op == 0,
                    "--faults: crash op count is 1-based in item '", item,
                    "'");
            plan.crashes.push_back(f);
        } else if (key == "dpu-crash") {
            // dpu-crash=OPS (global, cross-tasklet STM-op count)
            const u64 at_op = parseU64(val, item);
            fatalIf(at_op == 0,
                    "--faults: dpu-crash op count is 1-based in item '",
                    item, "'");
            plan.dpu_crashes.push_back(at_op);
        } else if (key == "acq-delay") {
            // acq-delay=PERMILLE:CYCLES
            auto [pm_s, cyc_s] = splitOnce(val, ':', item);
            plan.acq_delay_permille = parsePermille(pm_s, item);
            plan.acq_delay_cycles = parseU64(cyc_s, item);
            fatalIf(plan.acq_delay_permille != 0
                        && plan.acq_delay_cycles == 0,
                    "--faults: zero-cycle acquire delay in item '", item,
                    "'");
        } else if (key == "abort") {
            // abort=PERMILLE
            plan.abort_permille = parsePermille(val, item);
        } else {
            fatal("--faults: unknown item key '", key, "' (expected seed, "
                  "stall, crash, dpu-crash, acq-delay or abort)");
        }
    }
    return plan;
}

FaultInjector::FaultInjector(const FaultPlan &plan, unsigned max_tasklets)
    : plan_(plan), tasklets_(max_tasklets)
{
    reset();
}

void
FaultInjector::reset()
{
    global_ops_ = 0;
    next_dpu_crash_ = 0;
    dpu_crashes_delivered_ = 0;
    dpu_crashes_ = plan_.dpu_crashes;
    std::sort(dpu_crashes_.begin(), dpu_crashes_.end());
    for (unsigned tid = 0; tid < tasklets_.size(); ++tid) {
        TaskletState &t = tasklets_[tid];
        t.instrs = 0;
        t.stm_ops = 0;
        t.stalls.clear();
        t.next_stall = 0;
        t.crashes.clear();
        t.next_crash = 0;
        // Independent per-tasklet stream, decoupled from the workload's
        // streams by a fixed salt so arming faults never perturbs
        // workload randomness.
        t.rng.reseed(deriveSeed(plan_.seed, 0xfa017u, tid));
        for (const StallFault &f : plan_.stalls)
            if (f.tid == kAllTasklets || f.tid == tid)
                t.stalls.emplace_back(f.at_instrs, f.cycles);
        std::sort(t.stalls.begin(), t.stalls.end());
        for (const CrashFault &f : plan_.crashes)
            if (f.tid == kAllTasklets || f.tid == tid)
                t.crashes.push_back(f.at_op);
        std::sort(t.crashes.begin(), t.crashes.end());
    }
}

Cycles
FaultInjector::onInstructions(unsigned tid, u64 instrs)
{
    TaskletState &t = tasklets_[tid];
    t.instrs += instrs;
    Cycles stall = 0;
    // Several stall points can be crossed by one large charge; deliver
    // them all at once (their order within the charge is unobservable).
    while (t.next_stall < t.stalls.size()
           && t.instrs >= t.stalls[t.next_stall].first) {
        stall += t.stalls[t.next_stall].second;
        ++t.next_stall;
    }
    return stall;
}

Cycles
FaultInjector::acquireDelay(unsigned tid)
{
    if (plan_.acq_delay_permille == 0)
        return 0;
    TaskletState &t = tasklets_[tid];
    if (t.rng.below(1000) < plan_.acq_delay_permille)
        return plan_.acq_delay_cycles;
    return 0;
}

StmFault
FaultInjector::onStmOp(unsigned tid, bool can_abort)
{
    TaskletState &t = tasklets_[tid];
    ++t.stm_ops;
    ++global_ops_;
    if (next_dpu_crash_ < dpu_crashes_.size()
        && global_ops_ >= dpu_crashes_[next_dpu_crash_]) {
        ++next_dpu_crash_;
        ++dpu_crashes_delivered_;
        return StmFault::DpuCrash;
    }
    if (t.next_crash < t.crashes.size()
        && t.stm_ops >= t.crashes[t.next_crash]) {
        ++t.next_crash;
        return StmFault::Crash;
    }
    if (can_abort && plan_.abort_permille != 0
        && t.rng.below(1000) < plan_.abort_permille)
        return StmFault::SpuriousAbort;
    return StmFault::None;
}

namespace
{

/** Process-wide totals; relaxed atomics (folded once per run, read
 * once at report time). */
std::atomic<u64> g_stalls{0};
std::atomic<u64> g_acq_delays{0};
std::atomic<u64> g_crashes{0};
std::atomic<u64> g_injected_aborts{0};
std::atomic<u64> g_escalations{0};
std::atomic<u64> g_serial_commits{0};
std::atomic<u64> g_dpu_crashes{0};

} // namespace

FaultTotals
faultTotals()
{
    FaultTotals t;
    t.injected_stalls = g_stalls.load(std::memory_order_relaxed);
    t.injected_acq_delays = g_acq_delays.load(std::memory_order_relaxed);
    t.tasklet_crashes = g_crashes.load(std::memory_order_relaxed);
    t.injected_aborts = g_injected_aborts.load(std::memory_order_relaxed);
    t.escalations = g_escalations.load(std::memory_order_relaxed);
    t.serial_commits = g_serial_commits.load(std::memory_order_relaxed);
    t.dpu_crashes = g_dpu_crashes.load(std::memory_order_relaxed);
    return t;
}

void
accumulateFaultTotals(const FaultTotals &delta)
{
    g_stalls.fetch_add(delta.injected_stalls, std::memory_order_relaxed);
    g_acq_delays.fetch_add(delta.injected_acq_delays,
                           std::memory_order_relaxed);
    g_crashes.fetch_add(delta.tasklet_crashes, std::memory_order_relaxed);
    g_injected_aborts.fetch_add(delta.injected_aborts,
                                std::memory_order_relaxed);
    g_escalations.fetch_add(delta.escalations, std::memory_order_relaxed);
    g_serial_commits.fetch_add(delta.serial_commits,
                               std::memory_order_relaxed);
    g_dpu_crashes.fetch_add(delta.dpu_crashes, std::memory_order_relaxed);
}

} // namespace pimstm::sim
