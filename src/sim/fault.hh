/**
 * @file
 * Deterministic fault injection and progress-failure reporting.
 *
 * A FaultPlan is a small, seeded description of adverse events to
 * inject into one simulated DPU: tasklet stalls at chosen instruction
 * counts, tasklet crashes at chosen STM-operation counts, probabilistic
 * atomic-register acquire delays, and probabilistic spurious
 * validation-failure aborts. The plan is parsed from the `--faults=`
 * bench flag (grammar in docs/robustness.md) and carried by
 * DpuConfig / runtime::RunSpec.
 *
 * Everything is deterministic: probabilistic faults draw from per-
 * tasklet Xoshiro streams derived from the plan seed (independent of
 * the workload's RNG streams), so the same plan + seed replays the
 * same schedule bit-for-bit. An empty plan means no injector is
 * constructed at all — the fast path is a single null-pointer check.
 *
 * This header also defines the failure vocabulary of the robustness
 * layer: TaskletCrashException (the injected crash unwinding a tasklet
 * fiber), TaskletError (any other exception escaping a tasklet body,
 * re-attributed to its tasklet id), and WatchdogError (the progress
 * watchdog's livelock / deadlock verdict, carrying the diagnostic dump
 * and a distinct process exit code).
 */

#ifndef PIMSTM_SIM_FAULT_HH
#define PIMSTM_SIM_FAULT_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace pimstm::sim
{

/** Tasklet id wildcard in stall / crash plan items ("*"). */
constexpr unsigned kAllTasklets = ~0u;

/** One-shot stall: when @p tid has issued @p at_instrs instructions,
 * it stalls for @p cycles. */
struct StallFault
{
    unsigned tid = kAllTasklets;
    u64 at_instrs = 0;
    Cycles cycles = 0;
};

/** Crash: @p tid terminates cleanly at its @p at_op-th STM operation
 * (1-based; operations are tx starts, reads, writes and commits). */
struct CrashFault
{
    unsigned tid = kAllTasklets;
    u64 at_op = 0;
};

/**
 * Parsed `--faults=` specification. Default-constructed (or "none") is
 * the empty plan: no injector is built and behaviour is bitwise
 * identical to a build without the robustness layer.
 */
struct FaultPlan
{
    /** Seed for the probabilistic fault streams (item `seed=U64`). */
    u64 seed = 1;

    /** One-shot stalls (items `stall=TID@INSTRS:CYCLES`). */
    std::vector<StallFault> stalls;

    /** Crash points (items `crash=TID@OPS`). */
    std::vector<CrashFault> crashes;

    /**
     * Whole-DPU crash points (items `dpu-crash=OPS`): the DPU dies at
     * its OPS-th STM operation counted across all tasklets (1-based).
     * WRAM is destroyed, MRAM keeps only flushed lines (unfenced lines
     * are dropped or torn, seeded from the plan seed), and the DPU is
     * left restartable; Dpu::run throws DpuCrashError.
     */
    std::vector<u64> dpu_crashes;

    /** Per-acquire delay probability in permille (item
     * `acq-delay=PERMILLE:CYCLES`). */
    u32 acq_delay_permille = 0;

    /** Cycles added to an atomic-register acquire when the delay
     * fires. */
    Cycles acq_delay_cycles = 0;

    /** Per-STM-operation spurious-abort probability in permille (item
     * `abort=PERMILLE`; 1000 = abort storm). */
    u32 abort_permille = 0;

    /** True iff the plan injects nothing. */
    bool
    empty() const
    {
        return stalls.empty() && crashes.empty() && dpu_crashes.empty()
            && acq_delay_permille == 0 && abort_permille == 0;
    }

    /**
     * Parse a `--faults=` specification (';'-separated items; see
     * docs/robustness.md for the grammar). Throws FatalError on any
     * malformed item so harnesses reject bad plans up front.
     */
    static FaultPlan parse(const std::string &spec);
};

/** Outcome of the per-STM-operation fault hook. */
enum class StmFault : u8
{
    None,
    /** Abort the transaction with AbortReason::ValidationFail. */
    SpuriousAbort,
    /** Terminate the tasklet cleanly mid-transaction. */
    Crash,
    /** Kill the whole DPU at this operation (docs/durability.md). */
    DpuCrash,
};

/**
 * Per-DPU fault delivery engine. Owned by sim::Dpu; null when the plan
 * is empty. All queries are deterministic functions of (plan, per-
 * tasklet event counts, per-tasklet RNG stream).
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, unsigned max_tasklets);

    /** Restore the initial state (new run on the same DPU). */
    void reset();

    /** Account @p instrs instructions issued by @p tid; returns the
     * stall cycles to inject now (0 almost always). */
    Cycles onInstructions(unsigned tid, u64 instrs);

    /** Per-acquire delay injection for @p tid (0 = none). */
    Cycles acquireDelay(unsigned tid);

    /**
     * Count one STM operation by @p tid and decide its fate. Crash
     * points are deterministic (plan-listed op counts); spurious
     * aborts draw from the tasklet's fault stream and are only
     * delivered when @p can_abort (tx starts cannot abort).
     */
    StmFault onStmOp(unsigned tid, bool can_abort);

    const FaultPlan &
    plan() const
    {
        return plan_;
    }

    /** Whole-DPU crashes delivered so far (seeds the torn-write RNG of
     * the Nth crash; not reset by resetRun(reset_faults=false)). */
    u64 dpuCrashesDelivered() const { return dpu_crashes_delivered_; }

  private:
    struct TaskletState
    {
        u64 instrs = 0;
        u64 stm_ops = 0;
        /** Instruction counts (ascending) with pending stalls. */
        std::vector<std::pair<u64, Cycles>> stalls;
        size_t next_stall = 0;
        /** STM-op counts (ascending) with pending crashes. */
        std::vector<u64> crashes;
        size_t next_crash = 0;
        Rng rng;
    };

    FaultPlan plan_;
    std::vector<TaskletState> tasklets_;

    /** Global (cross-tasklet) STM-op count driving dpu-crash points. */
    u64 global_ops_ = 0;
    /** Plan-listed dpu-crash op counts, ascending. */
    std::vector<u64> dpu_crashes_;
    size_t next_dpu_crash_ = 0;
    u64 dpu_crashes_delivered_ = 0;
};

/**
 * Injected tasklet crash. Thrown by core::Stm after releasing all
 * transaction-held metadata, caught at the tasklet trampoline in
 * sim::Dpu, where it terminates the tasklet cleanly and is recorded as
 * a DPU fault (it does not fail the run).
 */
struct TaskletCrashException
{
    unsigned tasklet;
};

/**
 * Injected whole-DPU crash unwinding the tasklet that hit the crash
 * point. Caught at the tasklet trampoline; the scheduler then stops
 * immediately (other tasklets are abandoned mid-stack, exactly like a
 * power loss), applies the memory crash effects and throws
 * DpuCrashError from Dpu::run.
 */
struct DpuCrashException
{
    unsigned tasklet;
};

/**
 * Host-level result of an injected whole-DPU crash: WRAM is wiped,
 * unfenced MRAM lines are dropped or torn, and the DPU is restartable
 * via resetRun(). Durable runs catch this, run recovery and restart;
 * non-durable runs let it escape (guardedMain exits with code 3, like
 * a watchdog verdict — the machine did not complete its program).
 */
class DpuCrashError : public std::runtime_error
{
  public:
    DpuCrashError(u64 at_cycle, const std::string &message)
        : std::runtime_error(message), at_cycle_(at_cycle)
    {
    }

    u64
    atCycle() const
    {
        return at_cycle_;
    }

  private:
    u64 at_cycle_;
};

/**
 * Any other exception escaping a tasklet body, re-thrown on the host
 * stack with the originating tasklet attributed. Without this, a
 * panic() inside a fiber would unwind through the hand-rolled stack
 * switch with no attribution at all.
 */
class TaskletError : public std::runtime_error
{
  public:
    TaskletError(unsigned tasklet, const std::string &message)
        : std::runtime_error("tasklet " + std::to_string(tasklet) + ": "
                             + message),
          tasklet_(tasklet)
    {
    }

    unsigned
    tasklet() const
    {
        return tasklet_;
    }

  private:
    unsigned tasklet_;
};

/** Process exit code for watchdog-detected progress failures, distinct
 * from generic failure (1) and usage errors (2). */
constexpr int kWatchdogExitCode = 3;

/**
 * Thrown instead of hanging when the progress watchdog detects a
 * deadlock (every live tasklet blocked on the atomic register) or a
 * livelock (no transaction committed system-wide for the configured
 * cycle budget). what() carries the full structured diagnostic dump.
 */
class WatchdogError : public std::runtime_error
{
  public:
    enum class Kind : u8
    {
        Deadlock,
        Livelock,
    };

    WatchdogError(Kind kind, const std::string &dump)
        : std::runtime_error(dump), kind_(kind)
    {
    }

    Kind
    kind() const
    {
        return kind_;
    }

  private:
    Kind kind_;
};

/**
 * Process-wide fault / robustness counter totals, accumulated by
 * runtime::runWorkload after each run and reported in the --perf-json
 * `host` block. Host-side observability only — never fed back into
 * simulated state.
 */
struct FaultTotals
{
    u64 injected_stalls = 0;
    u64 injected_acq_delays = 0;
    u64 tasklet_crashes = 0;
    u64 injected_aborts = 0;
    u64 escalations = 0;
    u64 serial_commits = 0;
    /** Whole-DPU crashes delivered (docs/durability.md). */
    u64 dpu_crashes = 0;
};

/** Snapshot of the process-wide fault totals. */
FaultTotals faultTotals();

/** Fold one run's counters into the process-wide totals. */
void accumulateFaultTotals(const FaultTotals &delta);

} // namespace pimstm::sim

#endif // PIMSTM_SIM_FAULT_HH
