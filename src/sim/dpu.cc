#include "sim/dpu.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/logging.hh"

namespace pimstm::sim
{

//
// DpuContext
//

DpuContext::DpuContext(Dpu &dpu, unsigned id, u64 seed)
    : dpu_(dpu), id_(id), rng_(seed)
{}

unsigned
DpuContext::numTasklets() const
{
    return dpu_.numTasklets();
}

Cycles
DpuContext::now() const
{
    return dpu_.now();
}

void
DpuContext::charge(Phase p, Cycles c)
{
    if (in_tx_)
        tx_acc_[static_cast<size_t>(p)] += c;
    else
        dpu_.stats_.phase_cycles[static_cast<size_t>(p)] += c;
}

void
DpuContext::txAccountingBegin()
{
    panicIf(in_tx_, "nested txAccountingBegin");
    tx_acc_.fill(0);
    in_tx_ = true;
}

void
DpuContext::txAccountingCommit()
{
    panicIf(!in_tx_, "txAccountingCommit outside tx");
    for (size_t p = 0; p < kNumPhases; ++p)
        dpu_.stats_.phase_cycles[p] += tx_acc_[p];
    tx_acc_.fill(0);
    in_tx_ = false;
}

void
DpuContext::txAccountingAbort()
{
    panicIf(!in_tx_, "txAccountingAbort outside tx");
    Cycles total = 0;
    for (Cycles c : tx_acc_)
        total += c;
    dpu_.stats_.phase_cycles[static_cast<size_t>(Phase::Wasted)] += total;
    tx_acc_.fill(0);
    in_tx_ = false;
}

void
DpuContext::compute(u64 instrs)
{
    if (instrs == 0)
        return;
    const Cycles cost = dpu_.instrCost(instrs);
    dpu_.stats_.instructions += instrs;
    charge(phase_, cost);
    dpu_.consume(id_, cost, phase_);
    if (FaultInjector *fi = dpu_.fault_injector_.get()) {
        // Injected stall: the tasklet crossed a plan-listed instruction
        // count. Delivered as an ordinary timing charge so blocked
        // peers, the DMA engine and the watchdog all see it.
        const Cycles stall = fi->onInstructions(id_, instrs);
        if (stall != 0) {
            ++dpu_.stats_.injected_stalls;
            dpu_.stats_.injected_stall_cycles += stall;
            if (dpu_.trace_sink_)
                dpu_.trace_sink_->schedEvent(dpu_.now_, id_,
                                             SchedEvent::FaultStall, stall,
                                             0);
            charge(phase_, stall);
            dpu_.consume(id_, stall, phase_);
        }
    }
}

u32
DpuContext::read32(Addr a)
{
    panicIf(addrOffset(a) % 4 != 0, "misaligned read32 at ", a);
    touchRead(addrTier(a), 4);
    return dpu_.memory(addrTier(a)).read32(addrOffset(a));
}

void
DpuContext::write32(Addr a, u32 v)
{
    panicIf(addrOffset(a) % 4 != 0, "misaligned write32 at ", a);
    touchWrite(addrTier(a), 4);
    dpu_.memory(addrTier(a)).write32(addrOffset(a), v);
}

u64
DpuContext::read64(Addr a)
{
    panicIf(addrOffset(a) % 8 != 0, "misaligned read64 at ", a);
    touchRead(addrTier(a), 8);
    return dpu_.memory(addrTier(a)).read64(addrOffset(a));
}

void
DpuContext::write64(Addr a, u64 v)
{
    panicIf(addrOffset(a) % 8 != 0, "misaligned write64 at ", a);
    touchWrite(addrTier(a), 8);
    dpu_.memory(addrTier(a)).write64(addrOffset(a), v);
}

void
DpuContext::readBlock(Addr a, void *dst, size_t n)
{
    touchRead(addrTier(a), n);
    dpu_.memory(addrTier(a)).readBlock(addrOffset(a), dst, n);
}

void
DpuContext::writeBlock(Addr a, const void *src, size_t n)
{
    touchWrite(addrTier(a), n);
    dpu_.memory(addrTier(a)).writeBlock(addrOffset(a), src, n);
}

void
DpuContext::touchRead(Tier tier, size_t bytes)
{
    if (tier == Tier::Wram) {
        const u64 instrs =
            dpu_.timing_.wram_access_instrs * divCeil(bytes, 8);
        ++dpu_.stats_.wram_accesses;
        compute(instrs);
    } else {
        const Cycles done = dpu_.mramAccess(id_, bytes, false);
        const Cycles cost = done - dpu_.now_;
        charge(phase_, cost);
        dpu_.consume(id_, cost, phase_);
    }
}

void
DpuContext::touchWrite(Tier tier, size_t bytes)
{
    if (tier == Tier::Wram) {
        const u64 instrs =
            dpu_.timing_.wram_access_instrs * divCeil(bytes, 8);
        ++dpu_.stats_.wram_accesses;
        compute(instrs);
    } else {
        const Cycles done = dpu_.mramAccess(id_, bytes, true);
        const Cycles cost = done - dpu_.now_;
        charge(phase_, cost);
        dpu_.consume(id_, cost, phase_);
    }
}

void
DpuContext::touchRandom(Tier tier, u64 count, size_t bytes_each,
                        bool is_write)
{
    if (count == 0)
        return;
    if (tier == Tier::Wram) {
        dpu_.stats_.wram_accesses += count;
        compute(count * dpu_.timing_.wram_access_instrs *
                divCeil(bytes_each, 8));
        return;
    }
    const Cycles done =
        dpu_.mramRandomAccess(id_, count, bytes_each, is_write);
    const Cycles cost = done - dpu_.now_;
    charge(phase_, cost);
    dpu_.consume(id_, cost, phase_);
}

void
DpuContext::acquire(u32 key)
{
    if (FaultInjector *fi = dpu_.fault_injector_.get()) {
        const Cycles d = fi->acquireDelay(id_);
        if (d != 0) {
            ++dpu_.stats_.injected_acq_delays;
            dpu_.stats_.injected_acq_delay_cycles += d;
            if (dpu_.trace_sink_)
                dpu_.trace_sink_->schedEvent(dpu_.now_, id_,
                                             SchedEvent::FaultAcqDelay, d,
                                             0);
            charge(phase_, d);
            dpu_.consume(id_, d, phase_);
        }
    }
    const unsigned bit = dpu_.atomic_reg_.bitFor(key);
    for (;;) {
        compute(dpu_.timing_.atomic_op_instrs);
        if (dpu_.atomic_reg_.tryAcquire(bit, id_)) {
            ++dpu_.stats_.atomic_acquires;
            return;
        }
        ++dpu_.stats_.atomic_stalls;
        dpu_.blockOnAtomic(id_, bit);
    }
}

bool
DpuContext::tryAcquire(u32 key)
{
    const unsigned bit = dpu_.atomic_reg_.bitFor(key);
    compute(dpu_.timing_.atomic_op_instrs);
    if (dpu_.atomic_reg_.tryAcquire(bit, id_)) {
        ++dpu_.stats_.atomic_acquires;
        return true;
    }
    return false;
}

void
DpuContext::release(u32 key)
{
    const unsigned bit = dpu_.atomic_reg_.bitFor(key);
    compute(dpu_.timing_.atomic_op_instrs);
    dpu_.atomic_reg_.release(bit, id_);
    dpu_.wakeAtomicWaiters(bit);
}

void
DpuContext::flushFence()
{
    // The fence drains the DMA engine (wait until it is idle), then
    // pushes every unflushed line across the persist boundary at one
    // beat per line. Charged like any other MRAM engine occupancy so
    // concurrent tasklets feel it through mram_engine_free_.
    const u64 lines = dpu_.mram_.pendingPersistLines();
    const Cycles busy = dpu_.timing_.mram_fence_base_cycles +
                        lines * dpu_.timing_.mram_cycles_per_beat;
    const Cycles start = std::max(dpu_.now_, dpu_.mram_engine_free_);
    dpu_.mram_engine_free_ = start + busy;
    const Cycles done = start + busy;
    ++dpu_.stats_.mram_fences;
    dpu_.stats_.mram_fence_lines += lines;
    dpu_.mram_.fence();
    const Cycles cost = done - dpu_.now_;
    charge(phase_, cost);
    dpu_.consume(id_, cost, phase_);
}

void
DpuContext::barrier()
{
    compute(1);
    dpu_.arriveBarrier(id_);
}

void
DpuContext::yield()
{
    auto &t = dpu_.tasklets_[id_];
    t.ready_at = dpu_.now_ + 1;
    dpu_.yieldRunning(id_);
}

void
DpuContext::delay(Cycles cycles)
{
    charge(phase_, cycles);
    dpu_.consume(id_, cycles, phase_);
}

//
// Dpu
//

namespace
{

bool
resolveAlwaysSwitch(const DpuConfig &cfg)
{
    bool always = cfg.always_switch;
    if (const char *env = std::getenv("PIMSTM_SIM_ALWAYS_SWITCH"))
        always = always || std::strcmp(env, "0") != 0;
    return always;
}

} // namespace

Dpu::Dpu(const DpuConfig &cfg, const TimingConfig &timing)
    : cfg_(cfg), timing_(timing),
      wram_(Tier::Wram, cfg.wram_bytes),
      mram_(Tier::Mram, cfg.mram_bytes),
      atomic_reg_(cfg.atomic_bits)
{
    always_switch_ = resolveAlwaysSwitch(cfg);
    ready_heap_.reserve(cfg.max_tasklets);
    if (!cfg.faults.empty())
        fault_injector_ =
            std::make_unique<FaultInjector>(cfg.faults, cfg.max_tasklets);
    watchdog_cycles_ = cfg.watchdog_cycles;
}

void
Dpu::recycle(const DpuConfig &cfg, const TimingConfig &timing)
{
    fatalIf(in_run_, "Dpu::recycle during run");
    cfg_ = cfg;
    timing_ = timing;
    wram_.recycle(cfg.wram_bytes);
    mram_.recycle(cfg.mram_bytes);
    atomic_reg_.recycle(cfg.atomic_bits);
    trace_sink_ = nullptr; // borrowed; the previous owner is gone
    epoch_period_ = 0;     // the epoch hook is borrowed state too
    epoch_hook_ = nullptr;
    always_switch_ = resolveAlwaysSwitch(cfg);
    ready_heap_.reserve(cfg.max_tasklets);
    fault_injector_.reset();
    if (!cfg.faults.empty())
        fault_injector_ =
            std::make_unique<FaultInjector>(cfg.faults, cfg.max_tasklets);
    watchdog_cycles_ = cfg.watchdog_cycles;
    resetRun();
}

Dpu::~Dpu() = default;

unsigned
Dpu::addTasklet(TaskletBody body)
{
    fatalIf(in_run_, "addTasklet during run");
    fatalIf(tasklets_.size() >= cfg_.max_tasklets,
            "DPU supports at most ", cfg_.max_tasklets, " tasklets");
    const unsigned tid = static_cast<unsigned>(tasklets_.size());
    Tasklet t;
    t.fiber = std::make_unique<Fiber>();
    t.ctx = std::make_unique<DpuContext>(*this, tid,
                                         deriveSeed(cfg_.seed, tid));
    t.state = TaskletState::Ready;
    t.ready_at = 0;
    auto *ctx_ptr = t.ctx.get();
    // Tasklet trampoline: anything escaping the body is attributed to
    // its tasklet here, before the exception crosses the fiber switch —
    // injected crashes terminate the tasklet cleanly, everything else
    // is recorded as a DPU fault and rethrown on the host stack.
    t.fiber->init(
        cfg_.fiber_stack_bytes,
        [body = std::move(body), ctx_ptr, this, tid]() {
            try {
                body(*ctx_ptr);
            } catch (const TaskletCrashException &) {
                // The STM released all held metadata before throwing;
                // returning normally is a clean tasklet exit.
                ++stats_.tasklet_crashes;
                tasklet_faults_.push_back({tid, "injected crash", true});
            } catch (const DpuCrashException &) {
                // Whole-DPU crash: nothing is released — that is the
                // point. The scheduler sees crash_pending_ and stops.
                ++stats_.dpu_crashes;
                tasklet_faults_.push_back({tid, "dpu crash", true});
            } catch (const WatchdogError &) {
                throw; // a scheduler verdict, not a tasklet fault
            } catch (const std::exception &e) {
                tasklet_faults_.push_back({tid, e.what(), false});
                throw; // preserve the concrete type for callers
            } catch (...) {
                tasklet_faults_.push_back({tid, "unknown exception", false});
                throw TaskletError(tid, "unknown exception");
            }
        });
    tasklets_.push_back(std::move(t));
    ++runnable_count_;
    return tid;
}

void
Dpu::addTasklets(unsigned n, const TaskletBody &body)
{
    for (unsigned i = 0; i < n; ++i)
        addTasklet(body);
}

void
Dpu::resetRun(bool reset_faults)
{
    fatalIf(in_run_, "resetRun during run");
    tasklets_.clear();
    stats_ = DpuStats{};
    now_ = 0;
    mram_engine_free_ = 0;
    barrier_count_ = 0;
    barrier_generation_ = 0;
    runnable_count_ = 0;
    finished_count_ = 0;
    blocked_atomic_count_ = 0;
    ready_heap_.clear();
    if (fault_injector_ && reset_faults)
        fault_injector_->reset();
    watchdog_deadline_ = ~Cycles{0};
    epoch_next_ = ~Cycles{0};
    tasklet_faults_.clear();
}

void
Dpu::setEpochHook(Cycles period, std::function<void()> hook)
{
    epoch_period_ = period;
    epoch_hook_ = std::move(hook);
    if (in_run_ && epoch_period_ != 0 && epoch_hook_)
        epoch_next_ = now_ + epoch_period_;
    else
        epoch_next_ = ~Cycles{0};
}

void
Dpu::fireEpoch()
{
    // Catch up past a long stall in one go: the controller samples
    // deltas, so collapsing missed boundaries into one firing is the
    // honest reading (no activity happened in between).
    do {
        epoch_next_ += epoch_period_;
    } while (now_ >= epoch_next_);
    epoch_hook_();
}

Cycles
Dpu::instrCost(u64 instrs) const
{
    const unsigned interval =
        std::max<unsigned>(timing_.reissue_interval, runnable_count_);
    return instrs * interval;
}

void
Dpu::pushReady(unsigned tid)
{
    ready_heap_.push_back({tasklets_[tid].ready_at, tid});
    std::push_heap(ready_heap_.begin(), ready_heap_.end(), laterThan);
}

bool
Dpu::currentStaysNext(unsigned tid, Cycles at) const
{
    if (ready_heap_.empty())
        return true;
    const ReadyEntry &top = ready_heap_.front();
    return at < top.ready_at || (at == top.ready_at && tid < top.tid);
}

void
Dpu::consume(unsigned tid, Cycles cycles, Phase)
{
    // Livelock watchdog. The deadline is UINT64_MAX when disarmed, so
    // the disabled fast path costs one never-taken compare. Checked
    // here (not only in scheduleLoop) because elided charges can keep a
    // tasklet running without ever returning to the scheduler.
    if (now_ >= watchdog_deadline_)
        watchdogFire(WatchdogError::Kind::Livelock);
    // Epoch tick, same placement rationale as the watchdog. Fires
    // before this charge is applied, so the hook observes the clock at
    // the boundary-crossing instant.
    if (now_ >= epoch_next_)
        fireEpoch();
    auto &t = tasklets_[tid];
    t.ready_at = now_ + cycles;
    // Fiber-switch elision: when this tasklet would be the scheduler's
    // earliest-clock pick anyway (ties by id), resuming it is the only
    // thing scheduleLoop could do — advance the clock in place and keep
    // running instead of paying two context switches.
    if (!always_switch_ && currentStaysNext(tid, t.ready_at)) {
        now_ = t.ready_at;
        ++stats_.sched_elisions;
        return;
    }
    pushReady(tid);
    suspend(tid);
}

void
Dpu::yieldRunning(unsigned tid)
{
    pushReady(tid);
    suspend(tid);
}

void
Dpu::blockOnAtomic(unsigned tid, unsigned bit)
{
    auto &t = tasklets_[tid];
    t.state = TaskletState::BlockedAtomic;
    t.waiting_bit = bit;
    t.blocked_since = now_;
    --runnable_count_;
    ++blocked_atomic_count_;
    if (trace_sink_)
        trace_sink_->schedEvent(now_, tid, SchedEvent::Stall, bit, 0);
    suspend(tid);
}

void
Dpu::arriveBarrier(unsigned tid)
{
    auto &t = tasklets_[tid];
    const u64 my_generation = barrier_generation_;
    ++barrier_count_;
    t.state = TaskletState::BlockedBarrier;
    --runnable_count_;
    if (trace_sink_)
        trace_sink_->schedEvent(now_, tid, SchedEvent::BarrierArrive,
                                my_generation, 0);
    maybeReleaseBarrier();
    while (barrier_generation_ == my_generation &&
           t.state == TaskletState::BlockedBarrier) {
        suspend(tid);
    }
}

Cycles
Dpu::mramAccess(unsigned tid, size_t bytes, bool is_write)
{
    (void)tid;
    const u64 beats = divCeil(std::max<size_t>(bytes, 1),
                              timing_.mram_beat_bytes);
    const u64 transfers = divCeil(std::max<size_t>(bytes, 1),
                                  timing_.mram_max_transfer_bytes);
    const Cycles busy = transfers * timing_.mram_engine_setup_cycles +
                        beats * timing_.mram_cycles_per_beat;
    // The issuing tasklet first runs the SDK access routine.
    const Cycles issue =
        instrCost(transfers * timing_.mram_access_instrs);
    stats_.instructions += transfers * timing_.mram_access_instrs;
    const Cycles start = std::max(now_ + issue, mram_engine_free_);
    mram_engine_free_ = start + busy;
    const Cycles done = start + timing_.mram_latency_cycles + busy;

    if (is_write) {
        ++stats_.mram_writes;
        stats_.mram_bytes_written += bytes;
    } else {
        ++stats_.mram_reads;
        stats_.mram_bytes_read += bytes;
    }
    return done;
}

Cycles
Dpu::mramRandomAccess(unsigned tid, u64 count, size_t bytes_each,
                      bool is_write)
{
    (void)tid;
    const u64 beats = divCeil(std::max<size_t>(bytes_each, 1),
                              timing_.mram_beat_bytes);
    const Cycles per_busy =
        timing_.mram_engine_setup_cycles +
        timing_.mram_random_extra_cycles +
        beats * timing_.mram_cycles_per_beat;
    // Each access is dependent (pointer-chasing): the issuing tasklet
    // pays the SDK routine plus full latency per access; the engine is
    // reserved for the aggregate bandwidth.
    stats_.instructions += count * timing_.mram_access_instrs;
    const Cycles per_serial = timing_.mram_latency_cycles + per_busy +
                              instrCost(timing_.mram_access_instrs) +
                              timing_.reissue_interval;
    const Cycles start = std::max(now_, mram_engine_free_);
    mram_engine_free_ = start + count * per_busy;
    const Cycles done =
        std::max(start + count * per_busy, now_ + count * per_serial);

    if (is_write) {
        stats_.mram_writes += count;
        stats_.mram_bytes_written += count * bytes_each;
    } else {
        stats_.mram_reads += count;
        stats_.mram_bytes_read += count * bytes_each;
    }
    return done;
}

void
Dpu::suspend(unsigned tid)
{
    panicIf(running_tid_ != tid, "suspend from a non-running tasklet");
    tasklets_[tid].fiber->yieldOut();
}

void
Dpu::wakeAtomicWaiters(unsigned bit)
{
    if (blocked_atomic_count_ == 0)
        return;
    for (size_t i = 0; i < tasklets_.size(); ++i) {
        auto &t = tasklets_[i];
        if (t.state == TaskletState::BlockedAtomic && t.waiting_bit == bit) {
            t.state = TaskletState::Ready;
            t.ready_at = now_ + 1;
            stats_.atomic_stall_cycles += now_ - t.blocked_since;
            if (trace_sink_)
                trace_sink_->schedEvent(now_, static_cast<unsigned>(i),
                                        SchedEvent::Wake, bit,
                                        now_ - t.blocked_since);
            ++runnable_count_;
            --blocked_atomic_count_;
            pushReady(static_cast<unsigned>(i));
        }
    }
}

void
Dpu::maybeReleaseBarrier()
{
    const unsigned alive = numTasklets() - finished_count_;
    if (alive == 0 || barrier_count_ < alive)
        return;
    panicIf(barrier_count_ > alive, "barrier overshoot");
    ++barrier_generation_;
    barrier_count_ = 0;
    if (trace_sink_)
        trace_sink_->schedEvent(now_, running_tid_,
                                SchedEvent::BarrierRelease,
                                barrier_generation_, 0);
    for (size_t i = 0; i < tasklets_.size(); ++i) {
        auto &t = tasklets_[i];
        if (t.state == TaskletState::BlockedBarrier) {
            t.state = TaskletState::Ready;
            t.ready_at = now_ + 1;
            ++runnable_count_;
            // The last arriver releases the barrier from inside its own
            // fiber and continues running; only the others go back into
            // the ready heap. (When called from scheduleLoop after a
            // tasklet finished, running_tid_ is that Finished tasklet
            // and every waiter is pushed.)
            if (static_cast<unsigned>(i) != running_tid_)
                pushReady(static_cast<unsigned>(i));
        }
    }
}

void
Dpu::run()
{
    fatalIf(tasklets_.empty(), "Dpu::run with no tasklets");
    fatalIf(in_run_, "Dpu::run re-entered");
    in_run_ = true;
    if (watchdog_cycles_ != 0)
        watchdog_deadline_ = now_ + watchdog_cycles_;
    if (epoch_period_ != 0 && epoch_hook_)
        epoch_next_ = now_ + epoch_period_;
    scheduleLoop();
    in_run_ = false;
    stats_.total_cycles = now_;
    if (crash_pending_) {
        crash_pending_ = false;
        // Crash effects, in hardware order: WRAM contents are gone,
        // unfenced MRAM lines resolve kept / dropped / torn under the
        // plan-seeded RNG (ordinal-salted so each crash of a multi-
        // crash plan tears differently), and the atomic register —
        // a hardware latch — comes back clear on reboot.
        const u64 ordinal = fault_injector_
            ? fault_injector_->dpuCrashesDelivered()
            : 1;
        wram_.wipe();
        mram_.crashScramble(
            deriveSeed(cfg_.faults.seed, 0xdc0dedu, ordinal));
        atomic_reg_.recycle(cfg_.atomic_bits);
        throw DpuCrashError(
            now_, "injected whole-DPU crash at cycle "
                      + std::to_string(now_)
                      + " (restartable; durable runs recover)");
    }
}

void
Dpu::addDiagnostic(const void *key, std::function<void(std::ostream &)> fn)
{
    diagnostics_.emplace_back(key, std::move(fn));
}

void
Dpu::removeDiagnostic(const void *key)
{
    diagnostics_.erase(
        std::remove_if(diagnostics_.begin(), diagnostics_.end(),
                       [key](const auto &d) { return d.first == key; }),
        diagnostics_.end());
}

std::string
Dpu::progressDump(const std::string &verdict) const
{
    static const char *const kStateNames[] = {"Ready", "BlockedAtomic",
                                              "BlockedBarrier", "Finished"};
    std::ostringstream os;
    os << "watchdog: " << verdict << "\n";
    os << "  cycle " << now_ << ", tasklets: " << numTasklets() << " total, "
       << runnable_count_ << " runnable, " << blocked_atomic_count_
       << " blocked on atomics, "
       << (numTasklets() - runnable_count_ - blocked_atomic_count_
           - finished_count_)
       << " at the barrier, " << finished_count_ << " finished\n";
    for (size_t i = 0; i < tasklets_.size(); ++i) {
        const Tasklet &t = tasklets_[i];
        os << "  tasklet " << i << ": "
           << kStateNames[static_cast<size_t>(t.state)];
        if (t.state == TaskletState::Ready)
            os << " ready_at=" << t.ready_at;
        else if (t.state == TaskletState::BlockedAtomic)
            os << " waiting on atomic bit " << t.waiting_bit
               << " (held by tasklet "
               << atomic_reg_.holder(t.waiting_bit) << ") since cycle "
               << t.blocked_since;
        os << "\n";
    }
    bool any_held = false;
    for (unsigned b = 0; b < atomic_reg_.numBits(); ++b) {
        if (!atomic_reg_.isHeld(b))
            continue;
        if (!any_held)
            os << "  atomic bits held:";
        any_held = true;
        os << " " << b << "->t" << atomic_reg_.holder(b);
    }
    if (any_held)
        os << "\n";
    for (const auto &d : diagnostics_)
        d.second(os);
    if (trace_sink_)
        trace_sink_->dumpTail(os, 32);
    return os.str();
}

void
Dpu::watchdogFire(WatchdogError::Kind kind)
{
    std::string verdict;
    if (kind == WatchdogError::Kind::Deadlock) {
        verdict = "deadlock — every live tasklet is blocked";
    } else {
        verdict = "livelock — no transaction committed for "
            + std::to_string(watchdog_cycles_) + " cycles";
    }
    throw WatchdogError(kind, progressDump(verdict));
}

void
Dpu::scheduleLoop()
{
    // (Re)derive the incremental scheduler state from the tasklet
    // states — O(T) once per run, never again inside the loop.
    ready_heap_.clear();
    runnable_count_ = 0;
    finished_count_ = 0;
    blocked_atomic_count_ = 0;
    for (size_t i = 0; i < tasklets_.size(); ++i) {
        const auto &t = tasklets_[i];
        panicIf(t.state != TaskletState::Ready &&
                    t.state != TaskletState::Finished,
                "tasklet blocked before the run started");
        if (t.state == TaskletState::Ready) {
            ++runnable_count_;
            pushReady(static_cast<unsigned>(i));
        } else {
            ++finished_count_;
        }
    }

    for (;;) {
        // Resume the runnable tasklet with the earliest local clock
        // (ties broken by id — fully deterministic). The heap holds
        // exactly the Ready, not-running tasklets, so its top is the
        // same tasklet the old O(T) scan would have picked.
        if (ready_heap_.empty()) {
            // No runnable tasklet: either everyone finished, or we are
            // deadlocked on atomics / the barrier.
            if (finished_count_ == numTasklets())
                return;
            // Every live tasklet is blocked (atomic register or
            // barrier): a guaranteed deadlock. Fail with the full
            // progress dump instead of the old unattributed panic.
            watchdogFire(WatchdogError::Kind::Deadlock);
        }
        std::pop_heap(ready_heap_.begin(), ready_heap_.end(), laterThan);
        const ReadyEntry e = ready_heap_.back();
        ready_heap_.pop_back();

        auto &t = tasklets_[e.tid];
        panicIf(t.state != TaskletState::Ready || t.ready_at != e.ready_at,
                "stale ready-heap entry");
        now_ = std::max(now_, e.ready_at);
        running_tid_ = e.tid;
        ++stats_.sched_switches;
        if (trace_sink_)
            trace_sink_->schedEvent(now_, e.tid, SchedEvent::Switch,
                                    e.ready_at, 0);
        const bool alive = t.fiber->enter();
        if (!alive) {
            t.state = TaskletState::Finished;
            --runnable_count_;
            ++finished_count_;
            // A finishing tasklet may satisfy an outstanding barrier.
            maybeReleaseBarrier();
        }
        // Whole-DPU crash: stop scheduling at once. Every other
        // tasklet is abandoned wherever it was suspended — a power
        // loss does not unwind stacks. Dpu::run applies the memory
        // crash effects and reports.
        if (crash_pending_)
            return;
    }
}

} // namespace pimstm::sim
