#include "sim/dpu.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pimstm::sim
{

//
// DpuContext
//

DpuContext::DpuContext(Dpu &dpu, unsigned id, u64 seed)
    : dpu_(dpu), id_(id), rng_(seed)
{}

unsigned
DpuContext::numTasklets() const
{
    return dpu_.numTasklets();
}

Cycles
DpuContext::now() const
{
    return dpu_.now();
}

void
DpuContext::charge(Phase p, Cycles c)
{
    if (in_tx_)
        tx_acc_[static_cast<size_t>(p)] += c;
    else
        dpu_.stats_.phase_cycles[static_cast<size_t>(p)] += c;
}

void
DpuContext::txAccountingBegin()
{
    panicIf(in_tx_, "nested txAccountingBegin");
    tx_acc_.fill(0);
    in_tx_ = true;
}

void
DpuContext::txAccountingCommit()
{
    panicIf(!in_tx_, "txAccountingCommit outside tx");
    for (size_t p = 0; p < kNumPhases; ++p)
        dpu_.stats_.phase_cycles[p] += tx_acc_[p];
    tx_acc_.fill(0);
    in_tx_ = false;
}

void
DpuContext::txAccountingAbort()
{
    panicIf(!in_tx_, "txAccountingAbort outside tx");
    Cycles total = 0;
    for (Cycles c : tx_acc_)
        total += c;
    dpu_.stats_.phase_cycles[static_cast<size_t>(Phase::Wasted)] += total;
    tx_acc_.fill(0);
    in_tx_ = false;
}

void
DpuContext::compute(u64 instrs)
{
    if (instrs == 0)
        return;
    const Cycles cost = dpu_.instrCost(instrs);
    dpu_.stats_.instructions += instrs;
    charge(phase_, cost);
    dpu_.consume(id_, cost, phase_);
}

u32
DpuContext::read32(Addr a)
{
    panicIf(addrOffset(a) % 4 != 0, "misaligned read32 at ", a);
    touchRead(addrTier(a), 4);
    return dpu_.memory(addrTier(a)).read32(addrOffset(a));
}

void
DpuContext::write32(Addr a, u32 v)
{
    panicIf(addrOffset(a) % 4 != 0, "misaligned write32 at ", a);
    touchWrite(addrTier(a), 4);
    dpu_.memory(addrTier(a)).write32(addrOffset(a), v);
}

u64
DpuContext::read64(Addr a)
{
    panicIf(addrOffset(a) % 8 != 0, "misaligned read64 at ", a);
    touchRead(addrTier(a), 8);
    return dpu_.memory(addrTier(a)).read64(addrOffset(a));
}

void
DpuContext::write64(Addr a, u64 v)
{
    panicIf(addrOffset(a) % 8 != 0, "misaligned write64 at ", a);
    touchWrite(addrTier(a), 8);
    dpu_.memory(addrTier(a)).write64(addrOffset(a), v);
}

void
DpuContext::readBlock(Addr a, void *dst, size_t n)
{
    touchRead(addrTier(a), n);
    dpu_.memory(addrTier(a)).readBlock(addrOffset(a), dst, n);
}

void
DpuContext::writeBlock(Addr a, const void *src, size_t n)
{
    touchWrite(addrTier(a), n);
    dpu_.memory(addrTier(a)).writeBlock(addrOffset(a), src, n);
}

void
DpuContext::touchRead(Tier tier, size_t bytes)
{
    if (tier == Tier::Wram) {
        const u64 instrs =
            dpu_.timing_.wram_access_instrs * divCeil(bytes, 8);
        ++dpu_.stats_.wram_accesses;
        compute(instrs);
    } else {
        const Cycles done = dpu_.mramAccess(id_, bytes, false);
        const Cycles cost = done - dpu_.now_;
        charge(phase_, cost);
        dpu_.consume(id_, cost, phase_);
    }
}

void
DpuContext::touchWrite(Tier tier, size_t bytes)
{
    if (tier == Tier::Wram) {
        const u64 instrs =
            dpu_.timing_.wram_access_instrs * divCeil(bytes, 8);
        ++dpu_.stats_.wram_accesses;
        compute(instrs);
    } else {
        const Cycles done = dpu_.mramAccess(id_, bytes, true);
        const Cycles cost = done - dpu_.now_;
        charge(phase_, cost);
        dpu_.consume(id_, cost, phase_);
    }
}

void
DpuContext::touchRandom(Tier tier, u64 count, size_t bytes_each,
                        bool is_write)
{
    if (count == 0)
        return;
    if (tier == Tier::Wram) {
        dpu_.stats_.wram_accesses += count;
        compute(count * dpu_.timing_.wram_access_instrs);
        return;
    }
    const Cycles done =
        dpu_.mramRandomAccess(id_, count, bytes_each, is_write);
    const Cycles cost = done - dpu_.now_;
    charge(phase_, cost);
    dpu_.consume(id_, cost, phase_);
}

void
DpuContext::acquire(u32 key)
{
    const unsigned bit = dpu_.atomic_reg_.bitFor(key);
    for (;;) {
        compute(dpu_.timing_.atomic_op_instrs);
        if (dpu_.atomic_reg_.tryAcquire(bit, id_)) {
            ++dpu_.stats_.atomic_acquires;
            return;
        }
        ++dpu_.stats_.atomic_stalls;
        auto &t = dpu_.tasklets_[id_];
        t.state = Dpu::TaskletState::BlockedAtomic;
        t.waiting_bit = bit;
        t.blocked_since = dpu_.now_;
        dpu_.suspend(id_);
    }
}

bool
DpuContext::tryAcquire(u32 key)
{
    const unsigned bit = dpu_.atomic_reg_.bitFor(key);
    compute(dpu_.timing_.atomic_op_instrs);
    if (dpu_.atomic_reg_.tryAcquire(bit, id_)) {
        ++dpu_.stats_.atomic_acquires;
        return true;
    }
    return false;
}

void
DpuContext::release(u32 key)
{
    const unsigned bit = dpu_.atomic_reg_.bitFor(key);
    compute(dpu_.timing_.atomic_op_instrs);
    dpu_.atomic_reg_.release(bit, id_);
    dpu_.wakeAtomicWaiters(bit);
}

void
DpuContext::barrier()
{
    compute(1);
    auto &t = dpu_.tasklets_[id_];
    const u64 my_generation = dpu_.barrier_generation_;
    ++dpu_.barrier_count_;
    t.state = Dpu::TaskletState::BlockedBarrier;
    dpu_.maybeReleaseBarrier();
    while (dpu_.barrier_generation_ == my_generation &&
           t.state == Dpu::TaskletState::BlockedBarrier) {
        dpu_.suspend(id_);
    }
}

void
DpuContext::yield()
{
    auto &t = dpu_.tasklets_[id_];
    t.ready_at = dpu_.now_ + 1;
    dpu_.suspend(id_);
}

void
DpuContext::delay(Cycles cycles)
{
    charge(phase_, cycles);
    dpu_.consume(id_, cycles, phase_);
}

//
// Dpu
//

Dpu::Dpu(const DpuConfig &cfg, const TimingConfig &timing)
    : cfg_(cfg), timing_(timing),
      wram_(Tier::Wram, cfg.wram_bytes),
      mram_(Tier::Mram, cfg.mram_bytes),
      atomic_reg_(cfg.atomic_bits)
{}

Dpu::~Dpu() = default;

unsigned
Dpu::addTasklet(TaskletBody body)
{
    fatalIf(in_run_, "addTasklet during run");
    fatalIf(tasklets_.size() >= cfg_.max_tasklets,
            "DPU supports at most ", cfg_.max_tasklets, " tasklets");
    const unsigned tid = static_cast<unsigned>(tasklets_.size());
    Tasklet t;
    t.fiber = std::make_unique<Fiber>();
    t.ctx = std::make_unique<DpuContext>(*this, tid,
                                         deriveSeed(cfg_.seed, tid));
    t.state = TaskletState::Ready;
    t.ready_at = 0;
    auto *ctx_ptr = t.ctx.get();
    t.fiber->init(cfg_.fiber_stack_bytes,
                  [body = std::move(body), ctx_ptr]() { body(*ctx_ptr); });
    tasklets_.push_back(std::move(t));
    return tid;
}

void
Dpu::addTasklets(unsigned n, const TaskletBody &body)
{
    for (unsigned i = 0; i < n; ++i)
        addTasklet(body);
}

void
Dpu::resetRun()
{
    fatalIf(in_run_, "resetRun during run");
    tasklets_.clear();
    stats_ = DpuStats{};
    now_ = 0;
    mram_engine_free_ = 0;
    barrier_count_ = 0;
    barrier_generation_ = 0;
}

Cycles
Dpu::instrCost(u64 instrs) const
{
    const unsigned interval =
        std::max<unsigned>(timing_.reissue_interval, runnableCount());
    return instrs * interval;
}

unsigned
Dpu::runnableCount() const
{
    unsigned n = 0;
    for (const auto &t : tasklets_)
        if (t.state == TaskletState::Ready)
            ++n;
    return n;
}

void
Dpu::consume(unsigned tid, Cycles cycles, Phase)
{
    auto &t = tasklets_[tid];
    t.ready_at = now_ + cycles;
    suspend(tid);
}

Cycles
Dpu::mramAccess(unsigned tid, size_t bytes, bool is_write)
{
    (void)tid;
    const u64 beats = divCeil(std::max<size_t>(bytes, 1),
                              timing_.mram_beat_bytes);
    const u64 transfers = divCeil(std::max<size_t>(bytes, 1),
                                  timing_.mram_max_transfer_bytes);
    const Cycles busy = transfers * timing_.mram_engine_setup_cycles +
                        beats * timing_.mram_cycles_per_beat;
    // The issuing tasklet first runs the SDK access routine.
    const Cycles issue =
        instrCost(transfers * timing_.mram_access_instrs);
    stats_.instructions += transfers * timing_.mram_access_instrs;
    const Cycles start = std::max(now_ + issue, mram_engine_free_);
    mram_engine_free_ = start + busy;
    const Cycles done = start + timing_.mram_latency_cycles + busy;

    if (is_write) {
        ++stats_.mram_writes;
        stats_.mram_bytes_written += bytes;
    } else {
        ++stats_.mram_reads;
        stats_.mram_bytes_read += bytes;
    }
    return done;
}

Cycles
Dpu::mramRandomAccess(unsigned tid, u64 count, size_t bytes_each,
                      bool is_write)
{
    (void)tid;
    const u64 beats = divCeil(std::max<size_t>(bytes_each, 1),
                              timing_.mram_beat_bytes);
    const Cycles per_busy =
        timing_.mram_engine_setup_cycles +
        timing_.mram_random_extra_cycles +
        beats * timing_.mram_cycles_per_beat;
    // Each access is dependent (pointer-chasing): the issuing tasklet
    // pays the SDK routine plus full latency per access; the engine is
    // reserved for the aggregate bandwidth.
    stats_.instructions += count * timing_.mram_access_instrs;
    const Cycles per_serial = timing_.mram_latency_cycles + per_busy +
                              instrCost(timing_.mram_access_instrs) +
                              timing_.reissue_interval;
    const Cycles start = std::max(now_, mram_engine_free_);
    mram_engine_free_ = start + count * per_busy;
    const Cycles done =
        std::max(start + count * per_busy, now_ + count * per_serial);

    if (is_write) {
        stats_.mram_writes += count;
        stats_.mram_bytes_written += count * bytes_each;
    } else {
        stats_.mram_reads += count;
        stats_.mram_bytes_read += count * bytes_each;
    }
    return done;
}

void
Dpu::suspend(unsigned tid)
{
    panicIf(running_tid_ != tid, "suspend from a non-running tasklet");
    tasklets_[tid].fiber->yieldOut();
}

void
Dpu::wakeAtomicWaiters(unsigned bit)
{
    for (auto &t : tasklets_) {
        if (t.state == TaskletState::BlockedAtomic && t.waiting_bit == bit) {
            t.state = TaskletState::Ready;
            t.ready_at = now_ + 1;
            stats_.atomic_stall_cycles += now_ - t.blocked_since;
        }
    }
}

void
Dpu::maybeReleaseBarrier()
{
    unsigned alive = 0;
    for (const auto &t : tasklets_)
        if (t.state != TaskletState::Finished)
            ++alive;
    if (alive == 0 || barrier_count_ < alive)
        return;
    panicIf(barrier_count_ > alive, "barrier overshoot");
    ++barrier_generation_;
    barrier_count_ = 0;
    for (auto &t : tasklets_) {
        if (t.state == TaskletState::BlockedBarrier) {
            t.state = TaskletState::Ready;
            t.ready_at = now_ + 1;
        }
    }
}

void
Dpu::run()
{
    fatalIf(tasklets_.empty(), "Dpu::run with no tasklets");
    fatalIf(in_run_, "Dpu::run re-entered");
    in_run_ = true;
    scheduleLoop();
    in_run_ = false;
    stats_.total_cycles = now_;
}

void
Dpu::scheduleLoop()
{
    for (;;) {
        // Pick the runnable tasklet with the earliest local clock
        // (ties broken by id — fully deterministic).
        int next = -1;
        for (size_t i = 0; i < tasklets_.size(); ++i) {
            const auto &t = tasklets_[i];
            if (t.state != TaskletState::Ready)
                continue;
            if (next < 0 || t.ready_at < tasklets_[next].ready_at)
                next = static_cast<int>(i);
        }
        if (next < 0) {
            // No runnable tasklet: either everyone finished, or we are
            // deadlocked on atomics / the barrier.
            bool all_finished = true;
            for (const auto &t : tasklets_)
                if (t.state != TaskletState::Finished)
                    all_finished = false;
            if (all_finished)
                return;
            panic("DPU deadlock: tasklets blocked with none runnable");
        }

        auto &t = tasklets_[next];
        now_ = std::max(now_, t.ready_at);
        running_tid_ = static_cast<unsigned>(next);
        const bool alive = t.fiber->enter();
        if (!alive) {
            t.state = TaskletState::Finished;
            // A finishing tasklet may satisfy an outstanding barrier.
            maybeReleaseBarrier();
        }
    }
}

} // namespace pimstm::sim
