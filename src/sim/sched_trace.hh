/**
 * @file
 * Scheduler-event trace hook. The simulator sits below core/ in the
 * layering (sim must not depend on core), so the Dpu emits its
 * scheduling events — fiber switches, atomic-register stalls and
 * wake-ups, barrier traffic, injected faults — through this abstract
 * sink; core::TraceBuffer implements it and merges the scheduler
 * timeline with the STM transaction events on one clock.
 *
 * Everything here is host-side observability: emission sites are
 * guarded by a single null-pointer compare, and no simulated state or
 * cost ever depends on whether a sink is attached, so a traced run is
 * bitwise identical to an untraced one (CI-gated, like --faults=none).
 */

#ifndef PIMSTM_SIM_SCHED_TRACE_HH
#define PIMSTM_SIM_SCHED_TRACE_HH

#include <iosfwd>
#include <string_view>

#include "util/types.hh"

namespace pimstm::sim
{

/** Scheduler-level events a Dpu reports to an attached sink. */
enum class SchedEvent : u8
{
    /** The scheduler entered a tasklet fiber (arg = ready_at). */
    Switch = 0,
    /** A tasklet found its atomic bit held and blocked (arg = bit). */
    Stall,
    /** A blocked tasklet was woken by a release (arg = bit,
     * arg2 = cycles it spent blocked). */
    Wake,
    /** A tasklet arrived at the all-tasklet barrier. */
    BarrierArrive,
    /** The barrier released (arg = generation just completed);
     * reported once per release, attributed to the releasing tasklet. */
    BarrierRelease,
    /** The fault injector delivered a tasklet stall (arg = cycles). */
    FaultStall,
    /** The fault injector delayed an acquire (arg = cycles). */
    FaultAcqDelay,
    NumEvents,
};

constexpr size_t kNumSchedEvents =
    static_cast<size_t>(SchedEvent::NumEvents);

constexpr std::string_view
schedEventName(SchedEvent e)
{
    switch (e) {
      case SchedEvent::Switch: return "sched_switch";
      case SchedEvent::Stall: return "sched_stall";
      case SchedEvent::Wake: return "sched_wake";
      case SchedEvent::BarrierArrive: return "barrier_arrive";
      case SchedEvent::BarrierRelease: return "barrier_release";
      case SchedEvent::FaultStall: return "fault_stall";
      case SchedEvent::FaultAcqDelay: return "fault_acq_delay";
      default: return "?";
    }
}

/** Receiver of scheduler events; attached with Dpu::setTraceSink. */
class SchedTraceSink
{
  public:
    virtual ~SchedTraceSink() = default;

    /** One scheduler event at simulated time @p time on @p tasklet.
     * The meaning of @p arg / @p arg2 is per-event (see SchedEvent). */
    virtual void schedEvent(Cycles time, unsigned tasklet, SchedEvent e,
                            u64 arg, u64 arg2) = 0;

    /** Append the last @p n trace records to @p os, one per line —
     * called by Dpu::progressDump so a watchdog verdict carries the
     * events leading up to the wedge. */
    virtual void dumpTail(std::ostream &os, size_t n) const = 0;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_SCHED_TRACE_HH
