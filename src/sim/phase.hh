/**
 * @file
 * Execution-phase labels used for the paper's time-breakdown plots
 * (Figs. 4i-l, 5i-l, 9i-l, 10c-d). The scheduler attributes every cycle
 * a tasklet consumes to the phase the STM currently marks itself in;
 * cycles of transactions that ultimately abort are re-binned as Wasted.
 */

#ifndef PIMSTM_SIM_PHASE_HH
#define PIMSTM_SIM_PHASE_HH

#include <array>
#include <string_view>

#include "util/types.hh"

namespace pimstm::sim
{

enum class Phase : u8
{
    NonTx = 0,     ///< outside any transaction
    TxStart,       ///< transaction begin bookkeeping
    TxRead,        ///< STM read instrumentation + data read
    TxWrite,       ///< STM write instrumentation + data write
    TxValidate,    ///< readset validation / snapshot extension
    TxCommit,      ///< commit-time work (locking, write-back, clock)
    TxOther,       ///< user code executing inside a transaction
    Wasted,        ///< all cycles of transactions that aborted
    NumPhases,
};

constexpr size_t kNumPhases = static_cast<size_t>(Phase::NumPhases);

constexpr std::string_view
phaseName(Phase p)
{
    switch (p) {
      case Phase::NonTx: return "non-tx";
      case Phase::TxStart: return "start";
      case Phase::TxRead: return "read";
      case Phase::TxWrite: return "write";
      case Phase::TxValidate: return "validate";
      case Phase::TxCommit: return "commit";
      case Phase::TxOther: return "other-executing";
      case Phase::Wasted: return "wasted";
      default: return "?";
    }
}

/** Per-phase cycle accumulator. */
using PhaseCycles = std::array<Cycles, kNumPhases>;

} // namespace pimstm::sim

#endif // PIMSTM_SIM_PHASE_HH
