#include "sim/fiber.hh"

#include <cstdint>
#include <cstdlib>

#include "util/logging.hh"

// A whole-DPU crash abandons suspended fibers without unwinding them
// (sim/dpu.cc), so a reused stack buffer can carry stale ASan shadow
// poison from frames that never returned. Clear it on re-init.
#if defined(__SANITIZE_ADDRESS__)
#define PIMSTM_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PIMSTM_FIBER_ASAN 1
#endif
#endif
#ifdef PIMSTM_FIBER_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace pimstm::sim
{

namespace
{

// The fiber about to be started. The switch primitives only transfer
// control, so the pointer is handed to the entry routine through this
// slot. Each DPU runs on one host thread, but different DPUs may run
// on different host threads concurrently (util::ThreadPool), so the
// slot must be thread-local: a plain static would let one thread's
// enter() clobber the fiber another thread is about to start.
thread_local Fiber *starting_fiber = nullptr;

} // namespace

#ifdef PIMSTM_FIBER_FAST

// ---------------------------------------------------------------------
// Fast path: System V x86-64 stack switch. Saves the callee-saved
// registers and the stack pointer, nothing else — in particular not the
// signal mask, whose save/restore makes glibc's swapcontext issue an
// rt_sigprocmask syscall per switch and dominated the simulator's
// inner loop. Caller-saved registers are clobbered by the call itself
// (the compiler treats pimstm_fiber_switch as an opaque function), and
// every context eventually returns from its own call to the switch
// with its own stack intact, so ordinary call semantics hold on both
// sides.
// ---------------------------------------------------------------------

extern "C" void pimstm_fiber_switch(void **save_sp, void **load_sp);

asm(R"(
    .text
    .globl pimstm_fiber_switch
    .align 16
pimstm_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq (%rsi), %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
)");

/** First frame of every fiber: recover the Fiber and run its body. */
void
fiberEntry()
{
    Fiber *self = starting_fiber;
    starting_fiber = nullptr;
    self->run();
    // run() switches back to the owner after the body finishes and a
    // finished fiber is never re-entered.
    std::abort();
}

void
Fiber::init(size_t stack_bytes, Body body)
{
    panicIf(inside_, "Fiber::init called from inside the fiber");
    panicIf(started_ && !finished_, "Fiber::init on a live fiber");

    if (!stack_ || stack_bytes_ < stack_bytes) {
        stack_ = std::make_unique<char[]>(stack_bytes);
        stack_bytes_ = stack_bytes;
    }
    body_ = std::move(body);
    pending_exception_ = nullptr;
    finished_ = false;
    started_ = false;

    // Prepare the stack so the first switch "returns" into fiberEntry:
    // [top-16] holds its address at a 16-byte boundary (so rsp % 16 ==
    // 8 at entry, as after a call), preceded by six zeroed callee-saved
    // register slots, and topped by a null fake return address.
    auto top = reinterpret_cast<uintptr_t>(stack_.get()) + stack_bytes_;
    top &= ~static_cast<uintptr_t>(15);
    auto *slot = reinterpret_cast<u64 *>(top);
    *--slot = 0; // fake caller, terminates backtraces
    *--slot = reinterpret_cast<u64>(&fiberEntry);
    for (int i = 0; i < 6; ++i)
        *--slot = 0; // r15, r14, r13, r12, rbx, rbp
    sp_ = slot;
}

void
Fiber::run()
{
    try {
        body_();
    } catch (...) {
        pending_exception_ = std::current_exception();
    }
    finished_ = true;
    // Return to the most recent enter().
    pimstm_fiber_switch(&sp_, &owner_sp_);
}

bool
Fiber::enter()
{
    panicIf(finished_, "Fiber::enter on a finished fiber");
    panicIf(inside_, "Fiber::enter re-entered");

    inside_ = true;
    if (!started_) {
        started_ = true;
        starting_fiber = this;
    }
    pimstm_fiber_switch(&owner_sp_, &sp_);
    inside_ = false;

    if (pending_exception_) {
        auto ex = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(ex);
    }
    return !finished_;
}

void
Fiber::yieldOut()
{
    panicIf(!inside_, "Fiber::yieldOut outside the fiber");
    pimstm_fiber_switch(&sp_, &owner_sp_);
}

#else // PIMSTM_FIBER_FAST

// ---------------------------------------------------------------------
// Portable path: POSIX ucontext. Used on non-x86-64 hosts and in
// sanitized builds (the sanitizers understand swapcontext but not a
// hand-rolled stack switch).
// ---------------------------------------------------------------------

void
Fiber::init(size_t stack_bytes, Body body)
{
    panicIf(inside_, "Fiber::init called from inside the fiber");
    panicIf(started_ && !finished_, "Fiber::init on a live fiber");

    if (!stack_ || stack_bytes_ < stack_bytes) {
        stack_ = std::make_unique<char[]>(stack_bytes);
        stack_bytes_ = stack_bytes;
    }
#ifdef PIMSTM_FIBER_ASAN
    __asan_unpoison_memory_region(stack_.get(), stack_bytes_);
#endif
    body_ = std::move(body);
    pending_exception_ = nullptr;
    finished_ = false;
    started_ = false;

    panicIf(getcontext(&ctx_) != 0, "getcontext failed");
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &owner_ctx_;
    makecontext(&ctx_, &Fiber::trampoline, 0);
}

void
Fiber::trampoline()
{
    Fiber *self = starting_fiber;
    starting_fiber = nullptr;
    self->run();
    // Falling off the trampoline returns to owner_ctx_ via uc_link, but
    // run() already marks the fiber finished and we prefer the explicit
    // swap so the owner context is the one captured by the last enter().
}

void
Fiber::run()
{
    try {
        body_();
    } catch (...) {
        pending_exception_ = std::current_exception();
    }
    finished_ = true;
    // Return to the most recent enter().
    swapcontext(&ctx_, &owner_ctx_);
}

bool
Fiber::enter()
{
    panicIf(finished_, "Fiber::enter on a finished fiber");
    panicIf(inside_, "Fiber::enter re-entered");

    inside_ = true;
    if (!started_) {
        started_ = true;
        starting_fiber = this;
    }
    panicIf(swapcontext(&owner_ctx_, &ctx_) != 0, "swapcontext failed");
    inside_ = false;

    if (pending_exception_) {
        auto ex = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(ex);
    }
    return !finished_;
}

void
Fiber::yieldOut()
{
    panicIf(!inside_, "Fiber::yieldOut outside the fiber");
    panicIf(swapcontext(&ctx_, &owner_ctx_) != 0, "swapcontext failed");
}

#endif // PIMSTM_FIBER_FAST

} // namespace pimstm::sim
