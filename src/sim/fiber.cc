#include "sim/fiber.hh"

#include "util/logging.hh"

namespace pimstm::sim
{

namespace
{

// The fiber about to be started. makecontext() only portably passes int
// arguments, so the pointer is handed over through this slot instead.
// Each DPU runs on one host thread, but different DPUs may run on
// different host threads concurrently (util::ThreadPool), so the slot
// must be thread-local: a plain static would let one thread's enter()
// clobber the fiber another thread is about to trampoline into.
thread_local Fiber *starting_fiber = nullptr;

} // namespace

void
Fiber::init(size_t stack_bytes, Body body)
{
    panicIf(inside_, "Fiber::init called from inside the fiber");
    panicIf(started_ && !finished_, "Fiber::init on a live fiber");

    if (!stack_ || stack_bytes_ < stack_bytes) {
        stack_ = std::make_unique<char[]>(stack_bytes);
        stack_bytes_ = stack_bytes;
    }
    body_ = std::move(body);
    pending_exception_ = nullptr;
    finished_ = false;
    started_ = false;

    panicIf(getcontext(&ctx_) != 0, "getcontext failed");
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &owner_ctx_;
    makecontext(&ctx_, &Fiber::trampoline, 0);
}

void
Fiber::trampoline()
{
    Fiber *self = starting_fiber;
    starting_fiber = nullptr;
    self->run();
    // Falling off the trampoline returns to owner_ctx_ via uc_link, but
    // run() already marks the fiber finished and we prefer the explicit
    // swap so the owner context is the one captured by the last enter().
}

void
Fiber::run()
{
    try {
        body_();
    } catch (...) {
        pending_exception_ = std::current_exception();
    }
    finished_ = true;
    // Return to the most recent enter().
    swapcontext(&ctx_, &owner_ctx_);
}

bool
Fiber::enter()
{
    panicIf(finished_, "Fiber::enter on a finished fiber");
    panicIf(inside_, "Fiber::enter re-entered");

    inside_ = true;
    if (!started_) {
        started_ = true;
        starting_fiber = this;
    }
    panicIf(swapcontext(&owner_ctx_, &ctx_) != 0, "swapcontext failed");
    inside_ = false;

    if (pending_exception_) {
        auto ex = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(ex);
    }
    return !finished_;
}

void
Fiber::yieldOut()
{
    panicIf(!inside_, "Fiber::yieldOut outside the fiber");
    panicIf(swapcontext(&ctx_, &owner_ctx_) != 0, "swapcontext failed");
}

} // namespace pimstm::sim
