/**
 * @file
 * Multi-DPU system model for the §4.3 experiments.
 *
 * UPMEM DPUs cannot talk to each other: all inter-DPU data movement is
 * CPU-mediated, and the CPU may only touch MRAM while the DPU is idle.
 * PimSystem owns a *sample* of fully-simulated DPUs (the benchmarks'
 * DPUs are symmetric — disjoint shards / independent problem instances)
 * and a cost model for host<->DPU transfers, from which whole-system
 * execution time for `logicalDpus()` devices is derived, exactly
 * mirroring the paper's own scaling argument (§4.3.2).
 */

#ifndef PIMSTM_SIM_PIM_SYSTEM_HH
#define PIMSTM_SIM_PIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/dpu.hh"
#include "util/types.hh"

namespace pimstm::sim
{

/** A PIM system: N logical DPUs, of which a sample is simulated. */
class PimSystem
{
  public:
    /**
     * @param logical_dpus  DPUs the modelled system contains
     * @param simulated_dpus fully-simulated sample size (<= logical)
     */
    PimSystem(unsigned logical_dpus, unsigned simulated_dpus,
              const DpuConfig &dpu_cfg, const TimingConfig &timing,
              const HostLinkConfig &link);

    unsigned logicalDpus() const { return logical_dpus_; }
    unsigned simulatedDpus() const
    {
        return static_cast<unsigned>(dpus_.size());
    }

    /** Simulated DPU @p i of the sample. */
    Dpu &dpu(unsigned i);

    const TimingConfig &timing() const { return timing_; }
    const HostLinkConfig &link() const { return link_; }

    /**
     * Run every simulated DPU to completion and return the simulated
     * wall time of the slowest one (DPUs run in parallel on hardware).
     */
    double runAllSeconds();

    /** Time for the host to copy @p bytes_per_dpu to every DPU. */
    double hostToDpusSeconds(size_t bytes_per_dpu) const;

    /** Time for the host to gather @p bytes_per_dpu from every DPU. */
    double dpusToHostSeconds(size_t bytes_per_dpu) const;

    /** Cost of one CPU-mediated inter-DPU 64-bit word read (E1). */
    double interDpuWordReadSeconds() const;

    /** Cost of a local MRAM 64-bit word read, for the E1 comparison. */
    double localMramWordReadSeconds() const;

    /** Fixed DPU-batch launch/sync overhead. */
    double launchOverheadSeconds() const;

    /**
     * Time for the host to move @p total_bytes over the host<->MRAM
     * link in one batched copy (fixed setup term + bytes at the
     * aggregate bandwidth). hostToDpusSeconds / dpusToHostSeconds are
     * the per-DPU-uniform special case; coordinators with ragged
     * per-shard payloads (e.g. 2PC fragment/vote/decision rounds)
     * charge their exact byte totals here.
     */
    double transferSeconds(double total_bytes) const;

  private:
    unsigned logical_dpus_;
    TimingConfig timing_;
    HostLinkConfig link_;
    std::vector<std::unique_ptr<Dpu>> dpus_;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_PIM_SYSTEM_HH
