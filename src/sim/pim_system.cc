#include "sim/pim_system.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pimstm::sim
{

PimSystem::PimSystem(unsigned logical_dpus, unsigned simulated_dpus,
                     const DpuConfig &dpu_cfg, const TimingConfig &timing,
                     const HostLinkConfig &link)
    : logical_dpus_(logical_dpus), timing_(timing), link_(link)
{
    fatalIf(logical_dpus == 0, "PimSystem needs at least one DPU");
    fatalIf(simulated_dpus == 0 || simulated_dpus > logical_dpus,
            "simulated sample must be in [1, logical_dpus]");
    dpus_.reserve(simulated_dpus);
    for (unsigned i = 0; i < simulated_dpus; ++i) {
        DpuConfig cfg = dpu_cfg;
        cfg.seed = deriveSeed(dpu_cfg.seed, 0xD9u, i);
        dpus_.push_back(std::make_unique<Dpu>(cfg, timing));
    }
}

Dpu &
PimSystem::dpu(unsigned i)
{
    panicIf(i >= dpus_.size(), "simulated DPU index out of range");
    return *dpus_[i];
}

double
PimSystem::runAllSeconds()
{
    // Each Dpu is fully self-contained (own Memory, fibers, atomic
    // register, RNG streams), so the sampled DPUs can run on separate
    // host threads; per-DPU cycle counts are unaffected. Results land
    // in per-index slots, so the reduction below is order-independent
    // anyway and output is identical for any --jobs value.
    std::vector<double> seconds(dpus_.size(), 0.0);
    util::parallelFor(dpus_.size(), [&](size_t i) {
        try {
            dpus_[i]->run();
        } catch (const WatchdogError &e) {
            // Attribute the progress failure to its DPU before it
            // propagates out of the multi-DPU run.
            throw WatchdogError(e.kind(), "dpu " + std::to_string(i) +
                                              ": " + e.what());
        }
        seconds[i] =
            timing_.cyclesToSeconds(dpus_[i]->stats().total_cycles);
    });
    double worst = 0.0;
    for (double s : seconds)
        worst = std::max(worst, s);
    return worst;
}

double
PimSystem::transferSeconds(double total_bytes) const
{
    // Host<->MRAM copies are batched across ranks; total bytes move at
    // the aggregate link bandwidth, plus a fixed setup term.
    const double bw = link_.host_copy_bandwidth_gbps * 1e9;
    return link_.copy_base_us * 1e-6 + total_bytes / bw;
}

double
PimSystem::hostToDpusSeconds(size_t bytes_per_dpu) const
{
    return transferSeconds(static_cast<double>(bytes_per_dpu) *
                           logical_dpus_);
}

double
PimSystem::dpusToHostSeconds(size_t bytes_per_dpu) const
{
    return transferSeconds(static_cast<double>(bytes_per_dpu) *
                           logical_dpus_);
}

double
PimSystem::interDpuWordReadSeconds() const
{
    return link_.interdpu_word_read_us * 1e-6;
}

double
PimSystem::localMramWordReadSeconds() const
{
    return link_.local_mram_word_read_ns * 1e-9;
}

double
PimSystem::launchOverheadSeconds() const
{
    return link_.launch_overhead_us * 1e-6;
}

} // namespace pimstm::sim
