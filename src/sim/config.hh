/**
 * @file
 * All timing and capacity constants of the simulated UPMEM system live
 * here, in one place, so experiments can state exactly which hardware
 * model they ran against.
 *
 * The constants reproduce the published characteristics of the UPMEM
 * DPU (Gomez-Luna et al., IGSC'21; UPMEM SDK docs) and the latencies the
 * PIM-STM paper itself measured (331 us inter-DPU word read vs 231 ns
 * local MRAM read).
 */

#ifndef PIMSTM_SIM_CONFIG_HH
#define PIMSTM_SIM_CONFIG_HH

#include <cstddef>

#include "sim/fault.hh"
#include "util/types.hh"

namespace pimstm::sim
{

/**
 * Intra-DPU timing model.
 *
 * The DPU is a fine-grained multithreaded in-order core: one instruction
 * is dispatched per cycle, round-robin over ready tasklets, and a given
 * tasklet may dispatch its next instruction no earlier than
 * reissue_interval cycles after its previous one (the "revolver"
 * pipeline, effective depth 11). Hence a lone tasklet executes one
 * instruction every 11 cycles, and aggregate IPC grows linearly up to 11
 * tasklets and is flat beyond — the saturation the paper leans on.
 *
 * MRAM is reached through a single per-DPU DMA engine: accesses pay a
 * fixed latency plus a bandwidth term, and transfers from different
 * tasklets serialize on the engine, which is why strongly memory-bound
 * workloads (Labyrinth) saturate below 11 tasklets.
 */
struct TimingConfig
{
    /** DPU clock frequency (Hz). */
    double clock_hz = 350.0e6;

    /** Minimum cycles between two instructions of the same tasklet. */
    unsigned reissue_interval = 11;

    /** Fixed MRAM DMA latency in cycles before the engine stage; a
     * single word access totals SDK issue (4 instrs x 11 cy) + latency
     * + setup + 1 beat = 80 cy = 229 ns at 350 MHz — the paper's
     * measured local MRAM read, SDK overhead included. */
    unsigned mram_latency_cycles = 28;

    /** DMA engine setup occupancy per transfer. Together with the
     * per-beat term this caps word-granular MRAM throughput at
     * ~44 M accesses/s, so workloads of word-sized DPU accesses keep
     * scaling to ~10 tasklets while block-transfer-heavy workloads
     * (Labyrinth's grid copies) saturate the engine much earlier. */
    unsigned mram_engine_setup_cycles = 4;

    /** DMA engine occupancy per 8-byte beat (8 B / 4 cy at 350 MHz is
     * ~700 MB/s streaming, matching measured MRAM bandwidth). */
    unsigned mram_cycles_per_beat = 4;

    /** DMA transfer granularity in bytes (accesses are rounded up). */
    unsigned mram_beat_bytes = 8;

    /** Fixed cost of an MRAM flush fence (docs/durability.md): the
     * issuing tasklet waits for the DMA engine to drain, then pays
     * this base plus one beat per unflushed line pushed to the
     * persist boundary. Only charged in durable mode. */
    unsigned mram_fence_base_cycles = 8;

    /** Extra engine occupancy for *random* (dependent, pointer-chasing)
     * word accesses, which defeat DMA pipelining: the effective random
     * word bandwidth is ~17 M accesses/s, so random-access kernels
     * (Lee expansion) stop scaling around 5 tasklets — the paper's
     * Labyrinth saturation point. */
    unsigned mram_random_extra_cycles = 12;

    /** Maximum bytes one DMA transfer can move (2 KB on UPMEM);
     * larger block accesses issue multiple back-to-back transfers. */
    unsigned mram_max_transfer_bytes = 2048;

    /** Instructions charged for a WRAM word access. */
    unsigned wram_access_instrs = 1;

    /** Instruction overhead of issuing one MRAM DMA (the SDK's
     * mram_read/mram_write: WRAM staging-buffer management, alignment
     * handling, DMA programming). Paid once per transfer — word
     * accesses feel it fully; 2 KB streams amortize it. */
    unsigned mram_access_instrs = 4;

    /** Instructions per single-precision floating-point operation.
     * The DPU has no FPU; floats are software-emulated at tens of
     * cycles per op — a first-order reason a lone DPU is 100-300x
     * slower than a Xeon on KMeans (§4.3.2). */
    unsigned float_op_instrs = 32;

    /** Instructions charged for an acquire/release on the atomic
     * register (operates on a hardware register, not memory). */
    unsigned atomic_op_instrs = 1;

    /** Convert cycles to seconds under this clock. */
    double
    cyclesToSeconds(Cycles c) const
    {
        return static_cast<double>(c) / clock_hz;
    }
};

/** Capacity model of one DPU. */
struct DpuConfig
{
    /** WRAM scratchpad capacity (64 KB on UPMEM). */
    size_t wram_bytes = 64 * 1024;

    /** MRAM bank capacity (64 MB on UPMEM). Simulations that need many
     * DPUs may shrink this to bound host memory; allocation beyond the
     * configured size fails just like on hardware. */
    size_t mram_bytes = 64 * 1024 * 1024;

    /** Hardware thread (tasklet) count. */
    unsigned max_tasklets = 24;

    /** Host stack size for each tasklet fiber. */
    size_t fiber_stack_bytes = 256 * 1024;

    /** Number of usable entries in the 256-bit atomic register. Lowering
     * this (the aliasing ablation) amplifies lock aliasing. */
    unsigned atomic_bits = 256;

    /** Base RNG seed for this DPU's tasklet streams. */
    u64 seed = 1;

    /** Deterministic fault-injection plan (docs/robustness.md). The
     * default empty plan builds no injector at all: behaviour and all
     * stats stay bitwise identical to a fault-free build. */
    FaultPlan faults;

    /** Progress-watchdog budget: fail the run with WatchdogError
     * (livelock) when no transaction commits on this DPU for this many
     * simulated cycles. 0 disables the livelock watchdog; deadlock
     * detection (all live tasklets blocked on the atomic register) is
     * always on — it replaces what used to be an unattributed panic. */
    Cycles watchdog_cycles = 0;

    /** Force a fiber switch on every timing charge instead of eliding
     * switches when the running tasklet stays the scheduler's next
     * pick. Simulated results are bitwise identical either way (the
     * test suite and CI cross-check this); the switching mode is only
     * slower. The PIMSTM_SIM_ALWAYS_SWITCH environment variable
     * forces this on for any Dpu regardless of the field. */
    bool always_switch = false;
};

/**
 * Host-link cost model for the multi-DPU experiments (§4.3).
 *
 * All inter-DPU communication is CPU-mediated on UPMEM, and the CPU can
 * only touch MRAM while the DPU is idle. The constants reproduce the
 * paper's measured 331 us CPU-mediated inter-DPU 64-bit read, and a
 * batched host<->MRAM copy bandwidth of a few GB/s aggregated across
 * ranks.
 */
struct HostLinkConfig
{
    /** CPU-mediated read of one 64-bit word from another DPU (us). */
    double interdpu_word_read_us = 331.0;

    /** Local MRAM read of a 64-bit word (ns), for the E1 microbench. */
    double local_mram_word_read_ns = 231.0;

    /** Fixed cost of launching a batch of DPUs / syncing (us). */
    double launch_overhead_us = 50.0;

    /** Aggregate host<->MRAM copy bandwidth across all ranks (GB/s). */
    double host_copy_bandwidth_gbps = 8.0;

    /** Fixed per-transfer-batch setup cost (us). */
    double copy_base_us = 10.0;
};

/**
 * First-order cost model of the host CPU baselines (§4.3).
 *
 * The multi-DPU figures compare against CPU implementations whose
 * runtime is, by construction, linear in simple operation counts
 * (points x rounds for KMeans, memory words walked for Labyrinth).
 * Charging those counts against calibrated rates — instead of timing
 * real threads with the wall clock — makes every column of the figures
 * bitwise reproducible across runs, machines and --jobs settings. The
 * rates below were fitted once against measured runs of the real
 * baselines on the reference machine (runKMeansCpu: 0.429 us per
 * point-round at k=15/d=14 with 4 threads, 0.212 us at k=2;
 * runLabyrinthCpu: 0.7/1.2/20 ms for the S/M/L quick instances), and
 * the measured paths remain available behind --measured-cpu.
 */
struct HostCpuConfig
{
    /** Sustained scalar float throughput per host thread (FLOP/s). */
    double flops_per_s = 0.9e9;

    /** Effective touched-words rate per host thread for the pointer-
     * heavy Labyrinth routing (snapshot, Lee expansion, backtrack). */
    double mem_words_per_s = 70.0e6;

    /** Host NOrec cost per transactional read-or-write (ns). */
    double stm_op_ns = 15.0;

    /** Host NOrec per-transaction begin+commit overhead (ns). */
    double stm_tx_ns = 50.0;

    /** Host-side centroid merge throughput (adds/s, single thread —
     * the merge runs on thread 0 between rounds). */
    double merge_adds_per_s = 2.0e9;

    /** Multi-thread scaling efficiency of the CPU baselines (the
     * fraction of linear speedup real threads achieve). */
    double parallel_efficiency = 0.7;
};

/** Energy model used by the Fig. 8 reproduction. */
struct EnergyConfig
{
    /** Full UPMEM system thermal design power (W), as used by the
     * paper's own estimate (Falevoz & Legriel, PECS'23). */
    double pim_system_tdp_w = 370.0;

    /** Total DPUs in the full system the TDP refers to. */
    unsigned pim_system_dpus = 2560;

    /** CPU package power for the baseline machine (W). The paper
     * measured via RAPL on a Xeon Gold 5218 (TDP 125 W); RAPL is not
     * readable here, so package TDP plus a DRAM term is used instead. */
    double cpu_package_w = 125.0;

    /** DRAM subsystem power for the CPU baseline (W). */
    double cpu_dram_w = 30.0;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_CONFIG_HH
