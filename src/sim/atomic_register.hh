/**
 * @file
 * Model of the UPMEM 256-bit atomic register.
 *
 * The DPU's only synchronization primitives are acquire/release on a
 * 256-entry bit array: the hardware hashes the supplied address to one
 * of the 256 bits, so two unrelated addresses can alias to the same bit
 * and serialize (§2.1 / §3.2.1 of the paper). This class models the
 * register state and the hash; blocking semantics (a tasklet spinning on
 * a held bit) are implemented by the Dpu scheduler, which knows how to
 * suspend and wake tasklets.
 */

#ifndef PIMSTM_SIM_ATOMIC_REGISTER_HH
#define PIMSTM_SIM_ATOMIC_REGISTER_HH

#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace pimstm::sim
{

/** The 256-bit atomic register of one DPU. */
class AtomicRegister
{
  public:
    static constexpr unsigned kHardwareBits = 256;

    /**
     * @param usable_bits effective number of distinct bits; lowering it
     *        below 256 amplifies aliasing (used by the aliasing
     *        ablation). Must be a power of two in [1, 256].
     */
    explicit AtomicRegister(unsigned usable_bits = kHardwareBits)
    {
        recycle(usable_bits);
    }

    /** Return to the all-free state of a fresh register with
     * @p usable_bits entries (Dpu pool reuse). */
    void
    recycle(unsigned usable_bits)
    {
        fatalIf(!isPow2(usable_bits) || usable_bits > kHardwareBits,
                "atomic register bits must be a power of two <= 256, got ",
                usable_bits);
        bits_ = usable_bits;
        holder_.assign(usable_bits, kFree);
        acquires_ = 0;
    }

    /** Hardware hash from an address-like key to a bit index. */
    unsigned
    bitFor(u32 key) const
    {
        // Fibonacci hashing: good mixing, cheap, and deterministic —
        // the real hardware hash is undocumented but behaves like a
        // uniform hash over the 256 entries.
        u32 h = key * 2654435761u;
        return (h >> 16) & (bits_ - 1);
    }

    /** Try to acquire @p bit for @p tasklet. */
    bool
    tryAcquire(unsigned bit, unsigned tasklet)
    {
        checkBit(bit);
        if (holder_[bit] != kFree)
            return false;
        holder_[bit] = static_cast<s16>(tasklet);
        ++acquires_;
        return true;
    }

    /** Release @p bit; must be held by @p tasklet. */
    void
    release(unsigned bit, unsigned tasklet)
    {
        checkBit(bit);
        panicIf(holder_[bit] != static_cast<s16>(tasklet),
                "atomic release of bit ", bit, " by tasklet ", tasklet,
                " which does not hold it");
        holder_[bit] = kFree;
    }

    /** True iff @p bit is currently held. */
    bool
    isHeld(unsigned bit) const
    {
        checkBit(bit);
        return holder_[bit] != kFree;
    }

    /** Holder tasklet of @p bit, or -1 if free. */
    int
    holder(unsigned bit) const
    {
        checkBit(bit);
        return holder_[bit];
    }

    unsigned numBits() const { return bits_; }

    /** Total successful acquires (for the aliasing ablation stats). */
    u64 acquireCount() const { return acquires_; }

  private:
    static constexpr s16 kFree = -1;

    void
    checkBit(unsigned bit) const
    {
        panicIf(bit >= bits_, "atomic register bit ", bit, " out of range");
    }

    unsigned bits_ = 0;
    std::vector<s16> holder_;
    u64 acquires_ = 0;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_ATOMIC_REGISTER_HH
