/**
 * @file
 * Backing store for one memory tier (WRAM or MRAM) of a simulated DPU,
 * plus a bump allocator with hard capacity enforcement.
 *
 * This class only stores bytes; all timing is charged by the Dpu
 * scheduler, which knows about the DMA engine and the pipeline.
 * Capacity enforcement matters: the paper's WRAM-metadata experiments
 * hinge on allocations that do not fit in 64 KB (Labyrinth read/write
 * sets, the ArrayBench A lock table), and alloc() failing loudly is how
 * this reproduction triggers the same fallbacks.
 *
 * Host backing is lazy: the simulated tier has a fixed capacity (64 MB
 * MRAM), but host bytes are only materialized — zero-filled, growing
 * geometrically — when an offset is actually written. Reads beyond the
 * materialized high-water mark return zeros, which is exactly what a
 * fresh (or recycled) tier holds, so simulated behaviour is identical
 * to an eagerly zero-filled buffer while a 64 MB MRAM whose workload
 * touches 2 MB costs the host 2 MB. recycle() re-zeroes only the
 * materialized extent, which is what makes pooled Dpu reuse cheap.
 */

#ifndef PIMSTM_SIM_MEMORY_HH
#define PIMSTM_SIM_MEMORY_HH

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <vector>

#include "sim/addr.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace pimstm::sim
{

/** One memory tier: raw byte storage plus a bump allocator. */
class Memory
{
  public:
    Memory(Tier tier, size_t capacity)
        : tier_(tier), capacity_(capacity)
    {}

    Tier tier() const { return tier_; }
    size_t capacity() const { return capacity_; }
    size_t allocated() const { return brk_; }
    size_t available() const { return capacity_ - brk_; }

    /** Host bytes actually materialized (the high-water mark of
     * written offsets, rounded up by the growth policy). */
    size_t hostBackedBytes() const { return data_.size(); }

    /**
     * Allocate @p bytes (aligned to @p align) and return the byte
     * offset. Throws FatalError when the tier is full — callers use
     * this to reproduce the paper's "does not fit in WRAM" cases.
     * Allocation only moves the break; host bytes materialize on
     * first write.
     */
    u32
    alloc(size_t bytes, size_t align = 8)
    {
        panicIf(!isPow2(align), "alignment must be a power of two");
        const size_t start = alignUp(brk_, align);
        if (start + bytes > capacity_) {
            fatal(tierName(tier_), " allocation of ", bytes,
                  " bytes does not fit (", available(), " of ",
                  capacity(), " bytes free)");
        }
        brk_ = start + bytes;
        return static_cast<u32>(start);
    }

    /** True iff alloc(bytes, align) would succeed. */
    bool
    canAlloc(size_t bytes, size_t align = 8) const
    {
        panicIf(!isPow2(align), "alignment must be a power of two");
        return alignUp(brk_, align) + bytes <= capacity_;
    }

    /** Release everything allocated so far (arena-style reset).
     * Contents persist, as on hardware. */
    void resetAlloc() { brk_ = 0; }

    /**
     * Return the tier to the all-zero state of a fresh DPU and adopt
     * @p capacity (Dpu pool reuse). Only the materialized extent is
     * re-zeroed — the whole point of pooling: a recycled 64 MB MRAM
     * costs memset(high-water), not a fresh 64 MB zero-fill.
     */
    void
    recycle(size_t capacity)
    {
        capacity_ = capacity;
        if (data_.size() > capacity_)
            data_.resize(capacity_);
        if (!data_.empty())
            std::memset(data_.data(), 0, data_.size());
        brk_ = 0;
        persist_ = false;
        pending_.clear();
    }

    /**
     * @{ Persist-boundary model (docs/durability.md). When tracking is
     * on, every write captures the pre-image of each touched 8-byte
     * line the first time the line is dirtied after the last fence();
     * a fence() marks all pending lines durable, and crashScramble()
     * resolves each still-pending line deterministically (kept,
     * reverted to its last-flushed content, or half-torn) from a
     * seeded RNG. Off (the default) costs one predictable branch per
     * write; no state is kept and crashScramble is a no-op.
     */
    void
    setPersistTracking(bool on)
    {
        persist_ = on;
        pending_.clear();
    }

    bool persistTracking() const { return persist_; }

    /** Lines dirtied since the last fence. */
    size_t pendingPersistLines() const { return pending_.size(); }

    /** Mark every pending line durable; returns how many there were. */
    size_t
    fence()
    {
        const size_t n = pending_.size();
        pending_.clear();
        return n;
    }

    /**
     * Crash resolution of the unfenced write-back queue: each pending
     * 8-byte line is independently kept, fully reverted to its
     * last-flushed pre-image, or torn (one 4-byte half reverted),
     * chosen by an RNG seeded from the fault plan. Deterministic:
     * lines are visited in ascending offset order. Returns the number
     * of lines not kept intact (reverted or torn).
     */
    size_t
    crashScramble(u64 seed)
    {
        if (pending_.empty())
            return 0;
        Rng rng(seed);
        size_t damaged = 0;
        for (const auto &[line, pre] : pending_) {
            switch (rng.below(4)) {
              case 0: // kept: the line made it to the array
                break;
              case 1: // dropped: revert the whole line
                writeRaw(line, pre.data(), 8);
                ++damaged;
                break;
              case 2: // torn: low half reverted, high half kept
                writeRaw(line, pre.data(), 4);
                ++damaged;
                break;
              default: // torn: high half reverted, low half kept
                writeRaw(line + 4, pre.data() + 4, 4);
                ++damaged;
                break;
            }
        }
        pending_.clear();
        return damaged;
    }

    /** Crash loss of a volatile tier: zero the materialized extent
     * (allocations persist, as the bump allocator is host bookkeeping
     * the restarted program re-derives). */
    void
    wipe()
    {
        if (!data_.empty())
            std::memset(data_.data(), 0, data_.size());
        pending_.clear();
    }
    /** @} */

    /** @{ Raw, untimed accessors. Offsets must be in range. */
    u32
    read32(u32 offset) const
    {
        if (static_cast<size_t>(offset) + 4 > data_.size()) {
            u32 v;
            readSparse(offset, &v, 4);
            return v;
        }
        u32 v;
        std::memcpy(&v, data_.data() + offset, 4);
        return v;
    }

    void
    write32(u32 offset, u32 value)
    {
        if (persist_)
            notePersistWrite(offset, 4);
        if (static_cast<size_t>(offset) + 4 > data_.size())
            materialize(offset, 4);
        std::memcpy(data_.data() + offset, &value, 4);
    }

    u64
    read64(u32 offset) const
    {
        if (static_cast<size_t>(offset) + 8 > data_.size()) {
            u64 v;
            readSparse(offset, &v, 8);
            return v;
        }
        u64 v;
        std::memcpy(&v, data_.data() + offset, 8);
        return v;
    }

    void
    write64(u32 offset, u64 value)
    {
        if (persist_)
            notePersistWrite(offset, 8);
        if (static_cast<size_t>(offset) + 8 > data_.size())
            materialize(offset, 8);
        std::memcpy(data_.data() + offset, &value, 8);
    }

    void
    readBlock(u32 offset, void *dst, size_t n) const
    {
        if (static_cast<size_t>(offset) + n > data_.size()) {
            readSparse(offset, dst, n);
            return;
        }
        std::memcpy(dst, data_.data() + offset, n);
    }

    void
    writeBlock(u32 offset, const void *src, size_t n)
    {
        if (persist_)
            notePersistWrite(offset, n);
        if (static_cast<size_t>(offset) + n > data_.size())
            materialize(offset, n);
        std::memcpy(data_.data() + offset, src, n);
    }

    void
    fill(u32 offset, u8 byte, size_t n)
    {
        if (persist_)
            notePersistWrite(offset, n);
        if (static_cast<size_t>(offset) + n > data_.size())
            materialize(offset, n);
        std::memset(data_.data() + offset, byte, n);
    }
    /** @} */

  private:
    /** Minimum materialization step, to amortize vector growth. */
    static constexpr size_t kGrowQuantum = 64 * 1024;

    void
    checkRange(u32 offset, size_t n) const
    {
        panicIf(static_cast<size_t>(offset) + n > capacity_,
                tierName(tier_), " access out of range: offset ", offset,
                " size ", n, " capacity ", capacity_);
    }

    /** Read [offset, offset+n) when it extends past the materialized
     * extent: the unbacked suffix reads as zero. */
    void
    readSparse(u32 offset, void *dst, size_t n) const
    {
        checkRange(offset, n);
        const size_t avail =
            offset < data_.size() ? data_.size() - offset : 0;
        const size_t take = std::min(avail, n);
        if (take > 0)
            std::memcpy(dst, data_.data() + offset, take);
        std::memset(static_cast<char *>(dst) + take, 0, n - take);
    }

    /** Grow the backing so [offset, offset+n) is materialized. New
     * bytes are zero-filled; growth is geometric with a 64 KB floor so
     * repeated small writes do not pay repeated copies. */
    void
    materialize(u32 offset, size_t n)
    {
        checkRange(offset, n);
        const size_t end = static_cast<size_t>(offset) + n;
        const size_t target = std::max(
            end, std::min(capacity_,
                          std::max(data_.size() * 2, kGrowQuantum)));
        data_.resize(target); // value-initializes (zeros) the new tail
    }

    /** Record the pre-image of every 8-byte line [offset, offset+n)
     * touches, the first time each is dirtied since the last fence. */
    void
    notePersistWrite(u32 offset, size_t n)
    {
        const u32 first = offset & ~7u;
        const u32 last = static_cast<u32>((offset + n - 1) & ~7u);
        for (u32 line = first;; line += 8) {
            auto it = pending_.lower_bound(line);
            if (it == pending_.end() || it->first != line) {
                std::array<u8, 8> pre;
                readSparse(line, pre.data(), 8);
                pending_.emplace_hint(it, line, pre);
            }
            if (line == last)
                break;
        }
    }

    /** Write bytes without persist bookkeeping (crash resolution). */
    void
    writeRaw(u32 offset, const u8 *src, size_t n)
    {
        if (static_cast<size_t>(offset) + n > data_.size())
            materialize(offset, n);
        std::memcpy(data_.data() + offset, src, n);
    }

    Tier tier_;
    size_t capacity_;
    std::vector<u8> data_;
    size_t brk_ = 0;

    /** Persist boundary (off unless durable mode enables it). */
    bool persist_ = false;
    /** Unflushed 8-byte lines -> last-flushed pre-image (ordered, so
     * crash resolution is deterministic). */
    std::map<u32, std::array<u8, 8>> pending_;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_MEMORY_HH
