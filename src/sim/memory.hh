/**
 * @file
 * Backing store for one memory tier (WRAM or MRAM) of a simulated DPU,
 * plus a bump allocator with hard capacity enforcement.
 *
 * This class only stores bytes; all timing is charged by the Dpu
 * scheduler, which knows about the DMA engine and the pipeline.
 * Capacity enforcement matters: the paper's WRAM-metadata experiments
 * hinge on allocations that do not fit in 64 KB (Labyrinth read/write
 * sets, the ArrayBench A lock table), and alloc() failing loudly is how
 * this reproduction triggers the same fallbacks.
 */

#ifndef PIMSTM_SIM_MEMORY_HH
#define PIMSTM_SIM_MEMORY_HH

#include <cstring>
#include <vector>

#include "sim/addr.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace pimstm::sim
{

/** One memory tier: raw byte storage plus a bump allocator. */
class Memory
{
  public:
    Memory(Tier tier, size_t capacity)
        : tier_(tier), data_(capacity, 0)
    {}

    Tier tier() const { return tier_; }
    size_t capacity() const { return data_.size(); }
    size_t allocated() const { return brk_; }
    size_t available() const { return data_.size() - brk_; }

    /**
     * Allocate @p bytes (aligned to @p align) and return the byte
     * offset. Throws FatalError when the tier is full — callers use
     * this to reproduce the paper's "does not fit in WRAM" cases.
     */
    u32
    alloc(size_t bytes, size_t align = 8)
    {
        panicIf(!isPow2(align), "alignment must be a power of two");
        const size_t start = alignUp(brk_, align);
        if (start + bytes > data_.size()) {
            fatal(tierName(tier_), " allocation of ", bytes,
                  " bytes does not fit (", available(), " of ",
                  capacity(), " bytes free)");
        }
        brk_ = start + bytes;
        return static_cast<u32>(start);
    }

    /** True iff alloc(bytes, align) would succeed. */
    bool
    canAlloc(size_t bytes, size_t align = 8) const
    {
        return alignUp(brk_, align) + bytes <= data_.size();
    }

    /** Release everything allocated so far (arena-style reset). */
    void resetAlloc() { brk_ = 0; }

    /** @{ Raw, untimed accessors. Offsets must be in range. */
    u32
    read32(u32 offset) const
    {
        checkRange(offset, 4);
        u32 v;
        std::memcpy(&v, data_.data() + offset, 4);
        return v;
    }

    void
    write32(u32 offset, u32 value)
    {
        checkRange(offset, 4);
        std::memcpy(data_.data() + offset, &value, 4);
    }

    u64
    read64(u32 offset) const
    {
        checkRange(offset, 8);
        u64 v;
        std::memcpy(&v, data_.data() + offset, 8);
        return v;
    }

    void
    write64(u32 offset, u64 value)
    {
        checkRange(offset, 8);
        std::memcpy(data_.data() + offset, &value, 8);
    }

    void
    readBlock(u32 offset, void *dst, size_t n) const
    {
        checkRange(offset, n);
        std::memcpy(dst, data_.data() + offset, n);
    }

    void
    writeBlock(u32 offset, const void *src, size_t n)
    {
        checkRange(offset, n);
        std::memcpy(data_.data() + offset, src, n);
    }

    void
    fill(u32 offset, u8 byte, size_t n)
    {
        checkRange(offset, n);
        std::memset(data_.data() + offset, byte, n);
    }
    /** @} */

  private:
    void
    checkRange(u32 offset, size_t n) const
    {
        panicIf(static_cast<size_t>(offset) + n > data_.size(),
                tierName(tier_), " access out of range: offset ", offset,
                " size ", n, " capacity ", data_.size());
    }

    Tier tier_;
    std::vector<u8> data_;
    size_t brk_ = 0;
};

} // namespace pimstm::sim

#endif // PIMSTM_SIM_MEMORY_HH
