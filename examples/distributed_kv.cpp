/**
 * @file
 * Distributed KV: the paper's future-work scenario (§5) — a key-value
 * store sharded across several DPUs so the dataset can outgrow one
 * DPU's 64 MB. The host routes batched operations to shards (DPUs run
 * in parallel, tasklets within each DPU are isolated by PIM-STM), and
 * cross-shard relocations (movek) commit atomically via
 * host-coordinated two-phase commit over per-shard fragments.
 *
 * The example doubles as the CI scale-smoke driver: it replays every
 * batch against a host-side reference model and exits non-zero when
 * the store diverges (population, per-key values, relocated tokens,
 * leaked pins) — under any shard count or fault plan.
 *
 * Flags (all optional):
 *   --shards=N           shard/DPU count            (default 8)
 *   --ops=N              operations per batch       (default 2000)
 *   --batches=N          mixed batches to run       (default 2)
 *   --movek-permille=N   movek share per batch      (default 100)
 *   --capacity=N         slots per shard            (default 2048)
 *   --tasklets=N         tasklets per DPU           (default 11)
 *   --seed=N             workload seed              (default 2026)
 *   --faults=SPEC        fault plan (docs/robustness.md grammar)
 *   --boosting=on|off    boosted shard maps (docs/boosting.md)
 *   --durable=on|off     durable shard STMs + coordinator WAL, so
 *                        dpu-crash fault items recover instead of
 *                        failing the run (docs/durability.md);
 *                        excludes --boosting=on
 */

#include <charconv>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hostapp/distributed_kv.hh"
#include "sim/fault.hh"
#include "util/rng.hh"

using namespace pimstm;
using namespace pimstm::hostapp;

namespace
{

u64
parseNum(const std::string &arg, const char *prefix)
{
    const std::string v = arg.substr(std::strlen(prefix));
    u64 out = 0;
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), out);
    if (v.empty() || ec != std::errc() || ptr != v.data() + v.size()) {
        std::cerr << "invalid number in '" << arg << "'\n";
        std::exit(2);
    }
    return out;
}

int
runExample(int argc, char **argv)
{
    unsigned shards = 8, tasklets = 11;
    u32 ops_per_batch = 2000, batches = 2, movek_permille = 100;
    u32 capacity = 2048;
    u64 seed = 2026;
    bool boosting = false;
    bool durable = false;
    sim::FaultPlan faults;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--shards=", 0) == 0)
            shards = static_cast<unsigned>(parseNum(a, "--shards="));
        else if (a.rfind("--ops=", 0) == 0)
            ops_per_batch = static_cast<u32>(parseNum(a, "--ops="));
        else if (a.rfind("--batches=", 0) == 0)
            batches = static_cast<u32>(parseNum(a, "--batches="));
        else if (a.rfind("--movek-permille=", 0) == 0)
            movek_permille =
                static_cast<u32>(parseNum(a, "--movek-permille="));
        else if (a.rfind("--capacity=", 0) == 0)
            capacity = static_cast<u32>(parseNum(a, "--capacity="));
        else if (a.rfind("--tasklets=", 0) == 0)
            tasklets = static_cast<unsigned>(parseNum(a, "--tasklets="));
        else if (a.rfind("--seed=", 0) == 0)
            seed = parseNum(a, "--seed=");
        else if (a.rfind("--faults=", 0) == 0)
            faults = sim::FaultPlan::parse(
                a.substr(std::strlen("--faults=")));
        else if (a == "--boosting=on")
            boosting = true;
        else if (a == "--boosting=off")
            boosting = false;
        else if (a == "--durable=on")
            durable = true;
        else if (a == "--durable=off")
            durable = false;
        else {
            std::cerr << "unknown option '" << a << "'\n";
            return 2;
        }
    }
    if (movek_permille > 1000) {
        std::cerr << "--movek-permille must be <= 1000\n";
        return 2;
    }
    if (durable && boosting) {
        std::cerr << "--durable=on excludes --boosting=on "
                     "(docs/durability.md)\n";
        return 2;
    }

    DistributedKvConfig cfg;
    cfg.shards = shards;
    cfg.capacity_per_shard = capacity;
    cfg.kind = core::StmKind::NOrec;
    cfg.tasklets_per_dpu = tasklets;
    cfg.mram_bytes = 4 * 1024 * 1024;
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.boosting = boosting;
    cfg.durable = durable;
    auto kv = std::make_unique<DistributedKv>(cfg);

    // Host-side reference model, updated from each batch's reported
    // results and compared against the store after every batch.
    std::map<u32, u32> ref;
    auto verify = [&](const char *stage) {
        if (kv->population() != ref.size()) {
            std::cerr << "FAIL(" << stage << "): population "
                      << kv->population() << " != reference "
                      << ref.size() << "\n";
            return false;
        }
        for (const auto &[key, value] : ref) {
            u32 got = 0;
            if (!kv->peek(key, got) || got != value) {
                std::cerr << "FAIL(" << stage << "): key " << key
                          << " expected " << value << ", store has "
                          << got << "\n";
                return false;
            }
        }
        if (kv->livePins() != 0) {
            std::cerr << "FAIL(" << stage << "): " << kv->livePins()
                      << " pins leaked\n";
            return false;
        }
        return true;
    };

    // Load one batch of puts so moveks have tokens to relocate.
    Rng rng(deriveSeed(seed, 0xe6a3));
    std::vector<u32> keys;
    std::vector<KvOp> load;
    for (u32 i = 0; i < ops_per_batch; ++i) {
        const u32 key = static_cast<u32>(rng.below(1000000)) + 1;
        if (ref.count(key))
            continue; // a duplicate would just overwrite
        keys.push_back(key);
        load.push_back(KvOp::put(key, key * 3));
        ref[key] = key * 3;
    }
    kv->execute(load);
    if (!verify("load"))
        return 1;
    std::cout << "loaded " << kv->population() << " keys across "
              << kv->numShards() << " DPU shards\n";

    // Mixed batches: gets/puts with the requested movek share, all
    // flowing through the same launches. Moveks relocate keys that
    // existed before the batch (each at most once) to fresh keys, so
    // every one must commit — a direct check of 2PC atomicity.
    u32 next_fresh = 2000000;
    u64 total_items = 0, moveks_committed = 0;
    for (u32 b = 0; b < batches; ++b) {
        std::vector<size_t> movable(keys.size());
        for (size_t i = 0; i < movable.size(); ++i)
            movable[i] = i;
        std::vector<KvOp> ops;
        std::vector<CrossShardTx> txs;

        // Pick the batch's moveks first: each relocates a key that
        // existed before the batch (at most once) to a fresh key.
        // Keys involved in a movek are off-limits to this batch's
        // puts — a put racing the fragments would non-deterministically
        // re-create the erased source or occupy the destination.
        std::set<u32> banned;
        u32 n_plain = 0;
        for (u32 i = 0; i < ops_per_batch; ++i) {
            if (rng.below(1000) < movek_permille && !movable.empty()) {
                const size_t slot = rng.below(movable.size());
                const size_t pick = movable[slot];
                movable[slot] = movable.back();
                movable.pop_back();
                const u32 src = keys[pick];
                const u32 dst = next_fresh++;
                keys[pick] = dst;
                banned.insert(src);
                banned.insert(dst);
                txs.push_back(CrossShardTx::move(src, dst));
            } else {
                ++n_plain;
            }
        }
        for (u32 i = 0; i < n_plain; ++i) {
            if (rng.chance(0.8)) {
                // Gets may touch anything, pinned keys included: the
                // coordinator defers them behind the in-flight movek.
                ops.push_back(KvOp::get(keys[rng.below(keys.size())]));
            } else {
                u32 key = keys[rng.below(keys.size())];
                if (banned.count(key))
                    key = 3000000u + next_fresh++;
                ops.push_back(KvOp::put(key, key * 7));
                if (!ref.count(key))
                    keys.push_back(key);
            }
        }
        const auto res = kv->execute(ops, txs);
        total_items += ops.size() + txs.size();

        // Fold the reported outcomes into the reference model.
        for (size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].type == KvOp::Type::Put && res.ops[i].ok)
                ref[ops[i].key] = ops[i].value;
        }
        for (size_t i = 0; i < txs.size(); ++i) {
            if (!res.txs[i].committed) {
                std::cerr << "FAIL(batch " << b << "): movek "
                          << txs[i].src_key << " -> " << txs[i].dst_key
                          << " refused (attempts "
                          << res.txs[i].attempts << ")\n";
                return 1;
            }
            const auto it = ref.find(txs[i].src_key);
            if (it == ref.end() || it->second != res.txs[i].value) {
                std::cerr << "FAIL(batch " << b
                          << "): movek relocated a wrong value\n";
                return 1;
            }
            ref[txs[i].dst_key] = it->second;
            ref.erase(it);
            ++moveks_committed;
        }
        if (!verify("batch"))
            return 1;
    }

    const auto &st = kv->stats();
    std::cout << "ran " << batches << " mixed batches: " << total_items
              << " items, " << moveks_committed
              << " cross-shard moveks committed atomically\n"
              << "2PC: prepare_rounds=" << st.prepare_rounds
              << " commit_rounds=" << st.commit_rounds
              << " conflict_retries=" << st.tx_conflict_retries
              << " serial_fallbacks=" << st.serial_fallbacks
              << " deferred_ops=" << st.deferred_ops
              << " redeliveries=" << st.participant_redeliveries << "\n"
              << "link: bytes_down=" << st.bytes_down
              << " bytes_up=" << st.bytes_up << " occupancy="
              << st.meanShardOccupancy() << "\n"
              << "totals: commits=" << kv->totalCommits()
              << " aborts=" << kv->totalAborts()
              << " modeled time=" << kv->elapsedSeconds() * 1e3
              << " ms\n"
              << "verification: store matches the reference model "
                 "(population "
              << kv->population() << ", all values, no leaked pins)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runExample(argc, argv);
    } catch (const sim::WatchdogError &e) {
        std::cerr << e.what();
        return sim::kWatchdogExitCode;
    } catch (const sim::DpuCrashError &e) {
        // A whole-DPU shard crash outside durable mode is
        // unrecoverable by design: the shard's data died with the DPU.
        // Same "workload died, harness fine" exit as the bench
        // harnesses (bench/common.hh guardedMain).
        std::cerr << "whole-DPU crash at cycle " << e.atCycle() << ": "
                  << e.what()
                  << "\n(run with --durable=on to recover; "
                     "docs/durability.md)\n";
        return sim::kWatchdogExitCode;
    }
}
