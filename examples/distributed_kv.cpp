/**
 * @file
 * Distributed KV: the paper's future-work scenario (§5) — a key-value
 * store sharded across several DPUs so the dataset can outgrow one
 * DPU's 64 MB. The host routes batched operations to shards (DPUs run
 * in parallel, tasklets within each DPU are isolated by PIM-STM), and
 * cross-shard relocations are CPU-coordinated per §3.1.
 */

#include <iostream>
#include <vector>

#include "hostapp/distributed_kv.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace pimstm;
using namespace pimstm::hostapp;

int
main()
{
    DistributedKvConfig cfg;
    cfg.shards = 8;
    cfg.capacity_per_shard = 2048;
    cfg.kind = core::StmKind::NOrec;
    cfg.tasklets_per_dpu = 11;
    auto kv = std::make_unique<DistributedKv>(cfg);

    // Load 4000 keys in one batch: the host groups by shard, the
    // shards run in parallel, each shard's tasklets run transactions.
    Rng rng(2026);
    std::vector<KvOp> load;
    std::vector<u32> keys;
    for (u32 i = 0; i < 4000; ++i) {
        const u32 key = static_cast<u32>(rng.below(1000000)) + 1;
        keys.push_back(key);
        load.push_back(KvOp::put(key, key * 3));
    }
    kv->execute(load);
    std::cout << "loaded " << kv->population() << " keys across "
              << kv->numShards() << " DPU shards\n";

    // Mixed read-mostly batch.
    std::vector<KvOp> mixed;
    for (u32 i = 0; i < 2000; ++i) {
        const u32 key = keys[rng.below(keys.size())];
        if (rng.chance(0.8))
            mixed.push_back(KvOp::get(key));
        else
            mixed.push_back(KvOp::put(key, key * 7));
    }
    const auto results = kv->execute(mixed);
    u64 hits = 0;
    for (const auto &r : results)
        hits += r.ok ? 1 : 0;
    std::cout << "mixed batch: " << hits << "/" << mixed.size()
              << " operations found their key\n";

    // CPU-coordinated cross-shard relocation.
    const u32 victim = keys[0];
    const u32 target = 2000000;
    u32 moved_value = 0;
    const bool moved = kv->moveKey(victim, target);
    kv->peek(target, moved_value);
    std::cout << "moveKey(" << victim << " -> " << target << "): "
              << (moved ? "ok" : "failed") << ", value " << moved_value
              << " now lives on shard " << kv->shardOf(target) << "\n";

    std::cout << "\ntotals: commits=" << kv->totalCommits()
              << " aborts=" << kv->totalAborts()
              << " modeled time=" << kv->elapsedSeconds() * 1e3
              << " ms\n";
    return moved && kv->population() > 0 ? 0 : 1;
}
