/**
 * @file
 * Quickstart: the smallest complete PIM-STM program.
 *
 * Creates one simulated DPU, picks an STM implementation, launches 8
 * tasklets that concurrently increment a shared MRAM counter inside
 * transactions, and prints the result with basic statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"

using namespace pimstm;

int
main()
{
    // 1. A DPU: 64 KB WRAM, 64 MB MRAM, up to 24 tasklets.
    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024; // plenty for this demo
    sim::Dpu dpu(dpu_cfg, sim::TimingConfig{});

    // 2. An STM instance. Every algorithm of the paper's taxonomy is
    //    one enum value away; metadata placement is a config knob.
    core::StmConfig stm_cfg;
    stm_cfg.kind = core::StmKind::NOrec; // the paper's all-rounder
    stm_cfg.metadata_tier = core::MetadataTier::Wram;
    stm_cfg.num_tasklets = 8;
    auto stm = core::makeStm(dpu, stm_cfg);

    // 3. Shared data lives in simulated DPU memory.
    runtime::SharedArray32 counter(dpu, sim::Tier::Mram, 1);
    counter.fill(dpu, 0);

    // 4. Tasklet code: a transactional increment, retried on conflict
    //    automatically by atomically().
    dpu.addTasklets(8, [&](sim::DpuContext &ctx) {
        for (int i = 0; i < 1000; ++i) {
            core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                tx.write(counter.at(0), tx.read(counter.at(0)) + 1);
            });
        }
    });

    // 5. Run to completion (deterministic, cycle-accounted).
    dpu.run();

    const auto &s = stm->stats();
    const double seconds =
        dpu.timing().cyclesToSeconds(dpu.stats().total_cycles);
    std::cout << "counter        = " << counter.peek(dpu, 0) << " (expected "
              << 8 * 1000 << ")\n"
              << "commits        = " << s.commits << "\n"
              << "aborts         = " << s.aborts << " (abort rate "
              << s.abortRate() << ")\n"
              << "simulated time = " << seconds * 1e3 << " ms @350 MHz\n"
              << "throughput     = " << s.commits / seconds
              << " tx/s on one DPU\n";
    return counter.peek(dpu, 0) == 8 * 1000 ? 0 : 1;
}
