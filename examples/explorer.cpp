/**
 * @file
 * Explorer: a command-line tool to run any benchmark under any STM
 * configuration and print the full statistics report — the quickest
 * way to poke at the design space by hand.
 *
 * Usage:
 *   explorer [workload] [stm] [tier] [tasklets] [seed]
 *     workload: arraybench-a|arraybench-b|linkedlist-lc|linkedlist-hc|
 *               kmeans-lc|kmeans-hc|labyrinth-s|labyrinth-m|
 *               skiplist-lc|skiplist-hc|vacation-lc|vacation-hc
 *     stm:      norec|tiny-etlwb|tiny-etlwt|tiny-ctlwb|
 *               vr-etlwb|vr-etlwt|vr-ctlwb|adaptive
 *     tier:     mram|wram
 *
 * Examples:
 *   explorer arraybench-a vr-etlwb mram 11
 *   explorer linkedlist-hc adaptive
 */

#include <iostream>
#include <string>

#include "core/stats_report.hh"
#include "runtime/adaptive.hh"
#include "workloads/arraybench.hh"
#include "workloads/kmeans.hh"
#include "workloads/labyrinth.hh"
#include "workloads/linkedlist.hh"
#include "workloads/skiplist.hh"
#include "workloads/vacation.hh"

using namespace pimstm;
using namespace pimstm::runtime;
using namespace pimstm::workloads;

namespace
{

AdaptiveFactory
workloadFactory(const std::string &name)
{

    if (name == "arraybench-a") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<ArrayBench>(
                ArrayBenchParams::workloadA(probe ? 4 : 30));
        };
    }
    if (name == "arraybench-b") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<ArrayBench>(
                ArrayBenchParams::workloadB(probe ? 20 : 200));
        };
    }
    if (name == "linkedlist-lc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<LinkedList>(
                LinkedListParams::lowContention(probe ? 15 : 100));
        };
    }
    if (name == "linkedlist-hc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<LinkedList>(
                LinkedListParams::highContention(probe ? 15 : 100));
        };
    }
    if (name == "kmeans-lc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<KMeans>(
                KMeansParams::lowContention(probe ? 3 : 16));
        };
    }
    if (name == "kmeans-hc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<KMeans>(
                KMeansParams::highContention(probe ? 3 : 16));
        };
    }
    if (name == "labyrinth-s") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<Labyrinth>(
                LabyrinthParams::small(probe ? 8 : 64));
        };
    }
    if (name == "labyrinth-m") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<Labyrinth>(
                LabyrinthParams::medium(probe ? 6 : 48));
        };
    }
    if (name == "skiplist-lc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<SkipList>(
                SkipListParams::lowContention(probe ? 15 : 100));
        };
    }
    if (name == "skiplist-hc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<SkipList>(
                SkipListParams::highContention(probe ? 15 : 100));
        };
    }
    if (name == "vacation-lc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<Vacation>(
                VacationParams::lowContention(probe ? 10 : 60));
        };
    }
    if (name == "vacation-hc") {
        return [](bool probe) -> std::unique_ptr<Workload> {
            return std::make_unique<Vacation>(
                VacationParams::highContention(probe ? 10 : 60));
        };
    }
    fatal("unknown workload '", name, "' (see --help)");
}

core::StmKind
parseKind(const std::string &name)
{
    if (name == "norec")
        return core::StmKind::NOrec;
    if (name == "tiny-etlwb")
        return core::StmKind::TinyEtlWb;
    if (name == "tiny-etlwt")
        return core::StmKind::TinyEtlWt;
    if (name == "tiny-ctlwb")
        return core::StmKind::TinyCtlWb;
    if (name == "vr-etlwb")
        return core::StmKind::VrEtlWb;
    if (name == "vr-etlwt")
        return core::StmKind::VrEtlWt;
    if (name == "vr-ctlwb")
        return core::StmKind::VrCtlWb;
    fatal("unknown STM '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "arraybench-a";
    const std::string stm_name = argc > 2 ? argv[2] : "norec";
    const std::string tier_name = argc > 3 ? argv[3] : "mram";
    const unsigned tasklets =
        argc > 4 ? static_cast<unsigned>(std::stoul(argv[4])) : 11;
    const u64 seed = argc > 5 ? std::stoull(argv[5]) : 1;

    if (workload == "--help" || workload == "-h") {
        std::cout << "usage: explorer [workload] [stm|adaptive] "
                     "[mram|wram] [tasklets] [seed]\n";
        return 0;
    }

    try {
        const AdaptiveFactory factory = workloadFactory(workload);
        RunSpec spec;
        spec.tier = tier_name == "wram" ? core::MetadataTier::Wram
                                        : core::MetadataTier::Mram;
        spec.tasklets = tasklets;
        spec.seed = seed;
        spec.mram_bytes = 16 * 1024 * 1024;

        sim::TimingConfig timing;
        if (stm_name == "adaptive") {
            const AdaptiveResult r = adaptiveRun(factory, spec);
            std::cout << workload << " via adaptive selection -> "
                      << core::stmKindName(r.chosen_kind) << " ("
                      << core::metadataTierName(r.chosen_tier)
                      << "), probe cost "
                      << core::formatSeconds(r.probe_seconds) << "\n";
            for (const auto &[name, tput] : r.probe_throughput)
                std::cout << "  probe " << name << ": "
                          << core::formatRate(tput) << "\n";
            core::printReport(std::cout, r.final.stm, r.final.dpu,
                              timing);
        } else {
            spec.kind = parseKind(stm_name);
            auto wl = factory(false);
            const RunResult r = runWorkload(*wl, spec);
            std::cout << workload << " under "
                      << core::stmKindName(spec.kind) << " ("
                      << core::metadataTierName(spec.tier) << "), "
                      << tasklets << " tasklets:\n";
            core::printReport(std::cout, r.stm, r.dpu, timing);
        }
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
