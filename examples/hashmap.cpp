/**
 * @file
 * Hashmap: a concurrent open-addressing hash map from the PIM-STM
 * runtime library (runtime/tx_hashmap.hh) exercised by 11 tasklets
 * with a mixed insert/lookup/erase workload — the kind of concurrent
 * data structure the paper's conclusion proposes building on top of
 * PIM-STM. Per-tasklet net-insert accounting lets the final
 * population be checked exactly.
 */

#include <iostream>
#include <vector>

#include "core/stm_factory.hh"
#include "runtime/tx_hashmap.hh"

using namespace pimstm;
using runtime::TxHashMap;

int
main()
{
    constexpr unsigned kTasklets = 11;
    constexpr u32 kCapacity = 1024;
    constexpr u32 kKeyRange = 400;
    constexpr unsigned kOps = 400;

    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024;
    sim::Dpu dpu(dpu_cfg, sim::TimingConfig{});

    core::StmConfig stm_cfg;
    stm_cfg.kind = core::StmKind::TinyEtlWb;
    stm_cfg.num_tasklets = kTasklets;
    stm_cfg.max_read_set = 128;
    stm_cfg.max_write_set = 16;
    stm_cfg.data_words_hint = kCapacity * 2;
    auto stm = core::makeStm(dpu, stm_cfg);

    TxHashMap map(dpu, sim::Tier::Mram, kCapacity);

    // Each tasklet mixes inserts, lookups and erases over a shared key
    // range; per-tasklet net-insert counts let us check the final
    // population exactly.
    std::vector<s64> net(kTasklets, 0);
    std::vector<u64> hits(kTasklets, 0);
    dpu.addTasklets(kTasklets, [&](sim::DpuContext &ctx) {
        const unsigned me = ctx.taskletId();
        for (unsigned i = 0; i < kOps; ++i) {
            const u32 key =
                static_cast<u32>(ctx.rng().below(kKeyRange));
            const double dice = ctx.rng().uniform();
            if (dice < 0.5) {
                bool fresh = false;
                core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                    u32 dummy;
                    fresh = !map.lookup(tx, key, dummy);
                    map.insert(tx, key, me * 100000 + i);
                });
                if (fresh)
                    ++net[me];
            } else if (dice < 0.8) {
                bool found = false;
                u32 v = 0;
                core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                    found = map.lookup(tx, key, v);
                });
                if (found)
                    ++hits[me];
            } else {
                bool erased = false;
                core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                    erased = map.erase(tx, key);
                });
                if (erased)
                    --net[me];
            }
        }
    });
    dpu.run();

    s64 expected = 0;
    u64 total_hits = 0;
    for (unsigned t = 0; t < kTasklets; ++t) {
        expected += net[t];
        total_hits += hits[t];
    }
    const u32 population = map.population(dpu);

    const auto &s = stm->stats();
    std::cout << "tx hashmap: " << kTasklets << " tasklets x " << kOps
              << " mixed ops over " << kKeyRange << " keys\n"
              << "population = " << population << " (expected "
              << expected << ")\n"
              << "lookup hits = " << total_hits << "\n"
              << "commits = " << s.commits << ", aborts = " << s.aborts
              << " (rate " << s.abortRate() << ")\n";
    return population == static_cast<u32>(expected) ? 0 : 1;
}
