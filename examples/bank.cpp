/**
 * @file
 * Bank: the classic STM demo — concurrent money transfers between
 * accounts with an invariant total — run against EVERY PIM-STM
 * implementation, with and without WRAM metadata, printing a
 * comparison table. Shows how an application can A/B-test the whole
 * taxonomy with a one-line config change (the paper's stated goal:
 * "test the performance of alternative STM designs with their own
 * applications via trivial configuration changes").
 */

#include <iomanip>
#include <iostream>

#include "core/stm_factory.hh"
#include "runtime/shared_array.hh"
#include "util/table.hh"

using namespace pimstm;

namespace
{

struct BankResult
{
    bool total_ok = false;
    double throughput = 0;
    double abort_rate = 0;
};

BankResult
runBank(core::StmKind kind, core::MetadataTier tier)
{
    constexpr unsigned kTasklets = 11;
    constexpr unsigned kAccounts = 64;
    constexpr unsigned kTransfers = 300;
    constexpr u32 kInitial = 1000;

    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = 1 * 1024 * 1024;
    dpu_cfg.seed = 42;
    sim::Dpu dpu(dpu_cfg, sim::TimingConfig{});

    core::StmConfig stm_cfg;
    stm_cfg.kind = kind;
    stm_cfg.metadata_tier = tier;
    stm_cfg.num_tasklets = kTasklets;
    stm_cfg.max_read_set = 16;
    stm_cfg.max_write_set = 8;
    stm_cfg.data_words_hint = kAccounts;
    auto stm = core::makeStm(dpu, stm_cfg);

    runtime::SharedArray32 accounts(dpu, sim::Tier::Mram, kAccounts);
    accounts.fill(dpu, kInitial);

    dpu.addTasklets(kTasklets, [&](sim::DpuContext &ctx) {
        for (unsigned i = 0; i < kTransfers; ++i) {
            const u32 from =
                static_cast<u32>(ctx.rng().below(kAccounts));
            u32 to = static_cast<u32>(ctx.rng().below(kAccounts));
            if (to == from)
                to = (to + 1) % kAccounts;
            const u32 amount = static_cast<u32>(ctx.rng().range(1, 20));
            core::atomically(*stm, ctx, [&](core::TxHandle &tx) {
                const u32 f = tx.read(accounts.at(from));
                const u32 t = tx.read(accounts.at(to));
                tx.write(accounts.at(from), f - amount);
                tx.write(accounts.at(to), t + amount);
            });
        }
    });
    dpu.run();

    u64 total = 0;
    for (unsigned i = 0; i < kAccounts; ++i)
        total += accounts.peek(dpu, i);

    BankResult r;
    r.total_ok = total == static_cast<u64>(kAccounts) * kInitial;
    const double seconds =
        dpu.timing().cyclesToSeconds(dpu.stats().total_cycles);
    r.throughput = stm->stats().commits / seconds;
    r.abort_rate = stm->stats().abortRate();
    return r;
}

} // namespace

int
main()
{
    std::cout << "Bank: 11 tasklets x 300 random transfers over 64 "
                 "accounts, per STM design\n\n";

    Table table({"stm", "metadata", "tput_tx_per_s", "abort_rate",
                 "invariant"});
    bool all_ok = true;
    for (core::StmKind kind : core::allStmKinds()) {
        for (const auto tier :
             {core::MetadataTier::Mram, core::MetadataTier::Wram}) {
            const BankResult r = runBank(kind, tier);
            all_ok = all_ok && r.total_ok;
            table.newRow()
                .cell(core::stmKindName(kind))
                .cell(core::metadataTierName(tier))
                .cell(r.throughput, 1)
                .cell(r.abort_rate, 4)
                .cell(r.total_ok ? "OK" : "BROKEN");
        }
    }
    table.printText(std::cout);
    std::cout << "\nMoney is " << (all_ok ? "conserved" : "NOT conserved")
              << " under every design.\n";
    return all_ok ? 0 : 1;
}
