/**
 * @file
 * Router: a visual mini-Labyrinth. Routes a handful of circuits over a
 * small 2-layer grid with transactional claiming (the STAMP Labyrinth
 * structure: snapshot -> Lee expansion -> claim through the STM), then
 * prints the layers as ASCII art so you can see the disjoint paths.
 */

#include <iostream>

#include "runtime/driver.hh"
#include "workloads/labyrinth.hh"

using namespace pimstm;
using namespace pimstm::workloads;

int
main()
{
    LabyrinthParams params;
    params.x = 24;
    params.y = 12;
    params.z = 2;
    params.num_paths = 9;

    Labyrinth workload(params);

    runtime::RunSpec spec;
    spec.kind = core::StmKind::NOrec;
    spec.tier = core::MetadataTier::Mram;
    spec.tasklets = 6;
    spec.seed = 20260706;
    spec.mram_bytes = 4 * 1024 * 1024;

    sim::DpuConfig dpu_cfg;
    dpu_cfg.mram_bytes = spec.mram_bytes;
    dpu_cfg.seed = spec.seed;
    sim::Dpu dpu(dpu_cfg, spec.timing);

    core::StmConfig stm_cfg;
    stm_cfg.kind = spec.kind;
    stm_cfg.metadata_tier = spec.tier;
    stm_cfg.num_tasklets = spec.tasklets;
    workload.configure(stm_cfg);
    auto stm = core::makeStm(dpu, stm_cfg);
    workload.setup(dpu, *stm);
    dpu.addTasklets(spec.tasklets, [&](sim::DpuContext &ctx) {
        workload.tasklet(ctx, *stm);
    });
    dpu.run();
    workload.verify(dpu, *stm);

    std::cout << "routed " << workload.routedPaths() << "/"
              << params.num_paths << " circuits ("
              << workload.failedPaths() << " unroutable), commits="
              << stm->stats().commits
              << " aborts=" << stm->stats().aborts << "\n\n";

    // Render each layer; path ids as digits, free cells as dots.
    for (u32 layer = 0; layer < params.z; ++layer) {
        std::cout << "layer " << layer << ":\n";
        for (u32 row = 0; row < params.y; ++row) {
            std::cout << "  ";
            for (u32 col = 0; col < params.x; ++col) {
                const u32 cell =
                    (layer * params.y + row) * params.x + col;
                const u32 v = workload.gridValue(dpu, cell);
                if (v == 0)
                    std::cout << '.';
                else
                    std::cout << static_cast<char>('0' + (v % 10));
            }
            std::cout << '\n';
        }
        std::cout << '\n';
    }
    return 0;
}
