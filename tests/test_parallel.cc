/**
 * @file
 * Host-parallel execution tests: the util::ThreadPool executor itself
 * (index coverage, exception propagation, nested-use guard), the
 * thread-safety of the fiber machinery under concurrent Dpus, and the
 * hard determinism requirement — identical DpuStats / StmStats no
 * matter how many host threads run the sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/driver.hh"
#include "sim/dpu.hh"
#include "sim/pim_system.hh"
#include "util/thread_pool.hh"
#include "workloads/arraybench.hh"
#include "workloads/linkedlist.hh"

using namespace pimstm;

namespace
{

void
expectEqualDpuStats(const sim::DpuStats &a, const sim::DpuStats &b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    for (size_t p = 0; p < sim::kNumPhases; ++p)
        EXPECT_EQ(a.phase_cycles[p], b.phase_cycles[p]) << "phase " << p;
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.wram_accesses, b.wram_accesses);
    EXPECT_EQ(a.mram_reads, b.mram_reads);
    EXPECT_EQ(a.mram_writes, b.mram_writes);
    EXPECT_EQ(a.mram_bytes_read, b.mram_bytes_read);
    EXPECT_EQ(a.mram_bytes_written, b.mram_bytes_written);
    EXPECT_EQ(a.atomic_acquires, b.atomic_acquires);
    EXPECT_EQ(a.atomic_stalls, b.atomic_stalls);
    EXPECT_EQ(a.atomic_stall_cycles, b.atomic_stall_cycles);
}

void
expectEqualStmStats(const core::StmStats &a, const core::StmStats &b)
{
    EXPECT_EQ(a.starts, b.starts);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.aborts, b.aborts);
    for (size_t r = 0; r < core::kNumAbortReasons; ++r)
        EXPECT_EQ(a.abort_reasons[r], b.abort_reasons[r]) << "reason " << r;
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.validations, b.validations);
    EXPECT_EQ(a.extensions, b.extensions);
    EXPECT_EQ(a.read_only_commits, b.read_only_commits);
}

} // namespace

// ---------------------------------------------------------------------
// ThreadPool unit tests
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    util::ThreadPool pool(4);
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroAndOneItemWork)
{
    util::ThreadPool pool(4);
    pool.parallelFor(0, [&](size_t) { FAIL() << "fn called for n=0"; });
    int calls = 0;
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, JobsOneRunsInlineInOrder)
{
    util::ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<size_t> order;
    pool.parallelFor(64, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SpreadsWorkAcrossThreads)
{
    util::ThreadPool pool(4);
    std::mutex m;
    std::set<std::thread::id> tids;
    pool.parallelFor(256, [&](size_t) {
        // A little spinning so one thread cannot gulp all indices
        // before the workers wake up.
        volatile unsigned sink = 0;
        for (unsigned k = 0; k < 20000; ++k)
            sink = sink + k;
        std::lock_guard<std::mutex> lk(m);
        tids.insert(std::this_thread::get_id());
    });
    // All four may not always participate, but on any host more than
    // one thread must have claimed indices.
    EXPECT_GE(tids.size(), 1u);
    EXPECT_LE(tids.size(), 4u);
}

TEST(ThreadPool, PropagatesSmallestIndexException)
{
    util::ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(100, [&](size_t i) {
            if (i == 11 || i == 37)
                throw std::runtime_error("boom " + std::to_string(i));
            completed.fetch_add(1);
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // Deterministic choice regardless of which thread threw first.
        EXPECT_STREQ(e.what(), "boom 11");
    }
    // A throwing index does not cancel the rest of the job.
    EXPECT_EQ(completed.load(), 98);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    util::ThreadPool outer(4);
    util::ThreadPool inner(4);
    std::atomic<int> total{0};
    outer.parallelFor(8, [&](size_t) {
        EXPECT_TRUE(util::ThreadPool::insideTask());
        const auto tid = std::this_thread::get_id();
        // Nested use of a different pool — and of the same pool — must
        // run inline on this thread instead of deadlocking or spawning.
        inner.parallelFor(4, [&](size_t) {
            EXPECT_EQ(std::this_thread::get_id(), tid);
            total.fetch_add(1);
        });
        outer.parallelFor(2, [&](size_t) {
            EXPECT_EQ(std::this_thread::get_id(), tid);
            total.fetch_add(1);
        });
    });
    EXPECT_FALSE(util::ThreadPool::insideTask());
    EXPECT_EQ(total.load(), 8 * (4 + 2));
}

TEST(ThreadPool, NestedExceptionDoesNotUnwindGuard)
{
    util::ThreadPool pool(2);
    pool.parallelFor(2, [&](size_t) {
        try {
            pool.parallelFor(1, [](size_t) {
                throw std::runtime_error("inner");
            });
        } catch (const std::runtime_error &) {
            // The inline nested call must restore, not clear, the
            // inside-task flag when unwinding.
        }
        EXPECT_TRUE(util::ThreadPool::insideTask());
    });
}

TEST(ThreadPool, DefaultJobsHonorsEnv)
{
    ::setenv("PIMSTM_JOBS", "3", 1);
    EXPECT_EQ(util::ThreadPool::defaultJobs(), 3u);
    ::setenv("PIMSTM_JOBS", "garbage", 1);
    EXPECT_GE(util::ThreadPool::defaultJobs(), 1u);
    ::unsetenv("PIMSTM_JOBS");
    EXPECT_GE(util::ThreadPool::defaultJobs(), 1u);
}

// ---------------------------------------------------------------------
// Fiber thread-safety: concurrent Dpus on distinct host threads
// ---------------------------------------------------------------------

namespace
{

/** A small but non-trivial DPU run exercising fibers, the scheduler,
 * atomics and barriers; returns its stats. */
sim::DpuStats
runSmallDpu(u64 seed)
{
    sim::DpuConfig cfg;
    cfg.mram_bytes = 1 << 20;
    cfg.seed = seed;
    sim::TimingConfig timing;
    sim::Dpu dpu(cfg, timing);
    dpu.addTasklets(4, [](sim::DpuContext &ctx) {
        for (int i = 0; i < 40; ++i) {
            ctx.compute(5 + ctx.rng().below(10));
            const sim::Addr a = sim::makeAddr(
                sim::Tier::Mram,
                static_cast<u32>(4 * ctx.rng().below(64)));
            ctx.acquire(7);
            ctx.write32(a, ctx.read32(a) + 1);
            ctx.release(7);
            if (i % 8 == 0)
                ctx.barrier();
        }
    });
    dpu.run();
    return dpu.stats();
}

} // namespace

TEST(FiberThreading, TwoDpusOnTwoHostThreads)
{
    // Serial reference runs.
    const sim::DpuStats ref1 = runSmallDpu(101);
    const sim::DpuStats ref2 = runSmallDpu(202);

    // The same two simulations, concurrently on two host threads. The
    // fiber trampoline hand-off slot used to be a plain static; a race
    // there would crash or corrupt one run's schedule.
    sim::DpuStats got1, got2;
    std::thread t1([&] { got1 = runSmallDpu(101); });
    std::thread t2([&] { got2 = runSmallDpu(202); });
    t1.join();
    t2.join();

    expectEqualDpuStats(ref1, got1);
    expectEqualDpuStats(ref2, got2);
}

TEST(FiberThreading, ManyConcurrentDpusViaPool)
{
    constexpr size_t n = 8;
    std::vector<sim::DpuStats> ref(n), got(n);
    for (size_t i = 0; i < n; ++i)
        ref[i] = runSmallDpu(1000 + i);
    util::ThreadPool pool(4);
    pool.parallelFor(n, [&](size_t i) { got[i] = runSmallDpu(1000 + i); });
    for (size_t i = 0; i < n; ++i)
        expectEqualDpuStats(ref[i], got[i]);
}

TEST(PimSystem, RunAllSecondsMatchesSerialPerDpuStats)
{
    auto build = [] {
        sim::DpuConfig cfg;
        cfg.mram_bytes = 1 << 20;
        cfg.seed = 7;
        sim::TimingConfig timing;
        sim::HostLinkConfig link;
        auto sys = std::make_unique<sim::PimSystem>(64, 4, cfg, timing,
                                                    link);
        for (unsigned d = 0; d < 4; ++d) {
            sys->dpu(d).addTasklets(3, [](sim::DpuContext &ctx) {
                for (int i = 0; i < 30; ++i) {
                    ctx.compute(8);
                    ctx.acquire(3);
                    const sim::Addr a = sim::makeAddr(
                        sim::Tier::Wram,
                        static_cast<u32>(4 * ctx.rng().below(16)));
                    ctx.write32(a, ctx.read32(a) + 1);
                    ctx.release(3);
                }
            });
        }
        return sys;
    };

    util::ThreadPool::setGlobalJobs(1);
    auto serial = build();
    const double serial_seconds = serial->runAllSeconds();

    util::ThreadPool::setGlobalJobs(4);
    auto parallel = build();
    const double parallel_seconds = parallel->runAllSeconds();
    util::ThreadPool::setGlobalJobs(0);

    EXPECT_EQ(serial_seconds, parallel_seconds);
    for (unsigned d = 0; d < 4; ++d)
        expectEqualDpuStats(serial->dpu(d).stats(),
                            parallel->dpu(d).stats());
}

// ---------------------------------------------------------------------
// Bitwise determinism of the driver across host thread counts
// ---------------------------------------------------------------------

namespace
{

std::vector<runtime::RunSpec>
seedSpecs(core::StmKind kind, unsigned seeds)
{
    std::vector<runtime::RunSpec> specs(seeds);
    for (unsigned s = 0; s < seeds; ++s) {
        specs[s].kind = kind;
        specs[s].tier = core::MetadataTier::Mram;
        specs[s].tasklets = 6;
        specs[s].seed = 1 + s * 7919;
        specs[s].mram_bytes = 4 * 1024 * 1024;
    }
    return specs;
}

void
checkSerialVsParallel(const runtime::WorkloadFactory &factory,
                      core::StmKind kind)
{
    const auto specs = seedSpecs(kind, 4);

    util::ThreadPool::setGlobalJobs(1);
    const auto serial = runtime::runWorkloadMany(factory, specs);
    util::ThreadPool::setGlobalJobs(8);
    const auto parallel = runtime::runWorkloadMany(factory, specs);
    util::ThreadPool::setGlobalJobs(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << "spec " << i;
        ASSERT_TRUE(parallel[i].ok) << "spec " << i;
        expectEqualDpuStats(serial[i].result.dpu, parallel[i].result.dpu);
        expectEqualStmStats(serial[i].result.stm, parallel[i].result.stm);
        EXPECT_EQ(serial[i].result.seconds, parallel[i].result.seconds);
        EXPECT_EQ(serial[i].result.throughput,
                  parallel[i].result.throughput);
        EXPECT_EQ(serial[i].result.abort_rate,
                  parallel[i].result.abort_rate);
    }
}

runtime::WorkloadFactory
arrayBenchFactory()
{
    return [] {
        return std::make_unique<workloads::ArrayBench>(
            workloads::ArrayBenchParams::workloadA(4));
    };
}

runtime::WorkloadFactory
linkedListFactory()
{
    return [] {
        return std::make_unique<workloads::LinkedList>(
            workloads::LinkedListParams::lowContention(20));
    };
}

} // namespace

TEST(Determinism, ArrayBenchNOrecSerialVsParallel)
{
    checkSerialVsParallel(arrayBenchFactory(), core::StmKind::NOrec);
}

TEST(Determinism, ArrayBenchTinySerialVsParallel)
{
    checkSerialVsParallel(arrayBenchFactory(), core::StmKind::TinyEtlWb);
}

TEST(Determinism, ArrayBenchVrSerialVsParallel)
{
    checkSerialVsParallel(arrayBenchFactory(), core::StmKind::VrEtlWb);
}

TEST(Determinism, LinkedListNOrecSerialVsParallel)
{
    checkSerialVsParallel(linkedListFactory(), core::StmKind::NOrec);
}

TEST(Determinism, LinkedListTinySerialVsParallel)
{
    checkSerialVsParallel(linkedListFactory(), core::StmKind::TinyEtlWb);
}

TEST(Determinism, LinkedListVrSerialVsParallel)
{
    checkSerialVsParallel(linkedListFactory(), core::StmKind::VrEtlWb);
}

TEST(Determinism, InfeasiblePointReportedIdentically)
{
    // A WRAM-metadata configuration that cannot fit: both serial and
    // parallel execution must capture the same per-spec FatalError.
    auto factory = [] {
        return std::make_unique<workloads::ArrayBench>(
            workloads::ArrayBenchParams::workloadA(2));
    };
    std::vector<runtime::RunSpec> specs(2);
    for (auto &s : specs) {
        s.tier = core::MetadataTier::Wram;
        s.kind = core::StmKind::VrEtlWb;
        s.tasklets = 24;
        // Force the lock table far past 64 KB of WRAM.
        s.lock_table_entries_override = 64 * 1024;
    }

    util::ThreadPool::setGlobalJobs(1);
    const auto serial = runtime::runWorkloadMany(factory, specs);
    util::ThreadPool::setGlobalJobs(4);
    const auto parallel = runtime::runWorkloadMany(factory, specs);
    util::ThreadPool::setGlobalJobs(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].ok, parallel[i].ok);
        EXPECT_EQ(serial[i].error, parallel[i].error);
    }
}
