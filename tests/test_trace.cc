/**
 * @file
 * Observability-layer tests (docs/observability.md): ring wrap and
 * snapshot order, STM event-stream equality between the elided and the
 * always-switch scheduler (tracing must describe the simulation, not
 * the host optimization), heatmap/histogram agreement with StmStats
 * across every STM kind, the trace-off bitwise-identity guarantee,
 * Perfetto export validity (parsed by a small in-test JSON parser),
 * the watchdog dump's trace tail, and the process-wide totals.
 *
 * Suites are named Trace* so CI's sanitizer jobs can select them.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>

#include "core/stm_factory.hh"
#include "core/trace.hh"
#include "runtime/driver.hh"
#include "workloads/arraybench.hh"

using namespace pimstm;
using namespace pimstm::core;

namespace
{

runtime::RunResult
runArrayBenchB(const runtime::RunSpec &spec, u32 tx_per_tasklet)
{
    workloads::ArrayBench wl(
        workloads::ArrayBenchParams::workloadB(tx_per_tasklet));
    return runtime::runWorkload(wl, spec);
}

runtime::RunSpec
tracedSpec(StmKind kind)
{
    runtime::RunSpec spec;
    spec.kind = kind;
    spec.tasklets = 6;
    spec.mram_bytes = 8 * 1024 * 1024;
    spec.trace = true;
    spec.trace_buffer_capacity = 1u << 20; // no drops in these runs
    return spec;
}

bool
isSchedEvent(TxEvent e)
{
    return e >= TxEvent::SchedSwitch;
}

/**
 * Minimal recursive-descent JSON parser: accepts exactly the JSON
 * grammar (objects, arrays, strings with escapes, numbers, true/
 * false/null) and rejects trailing commas / trailing garbage. Enough
 * to gate "loads in Perfetto without errors" without a JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    members(char close, bool want_keys)
    {
        ++pos_; // opening bracket
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == close) {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (want_keys) {
                if (pos_ >= s_.size() || !string())
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != ':')
                    return false;
                ++pos_;
                skipWs();
            }
            if (!value())
                return false;
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == close) {
                ++pos_;
                return true;
            }
            if (s_[pos_] != ',')
                return false;
            ++pos_;
        }
    }

    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return members('}', true);
          case '[': return members(']', false);
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    const std::string &s_;
    size_t pos_ = 0;
};

} // namespace

//
// Ring mechanics.
//

TEST(TraceRing, SnapshotStaysChronologicalAcrossWrap)
{
    TraceBuffer trace(5);
    for (u32 i = 0; i < 13; ++i)
        trace.record(i * 10, i % 3, TxEvent::Write, i);
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace.dropped(), 8u);
    EXPECT_EQ(trace.count(TxEvent::Write), 13u);
    const auto events = trace.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].arg, 8 + i) << "oldest surviving is #8";
        if (i > 0) {
            EXPECT_LT(events[i - 1].time, events[i].time);
        }
    }
}

TEST(TraceRing, AggregatesSurviveRingDrops)
{
    TraceBuffer trace(2); // tiny ring, everything wraps
    trace.noteLockAcquire(7, 50);
    trace.noteLockWait(7, 25);
    trace.noteAbort(AbortReason::ReadConflict, 7);
    trace.noteAbort(AbortReason::ValidationFail, kNoLockIndex);
    trace.noteCommit(1000, 100, 4, 2);
    for (u32 i = 0; i < 100; ++i)
        trace.record(i, 0, TxEvent::Read, i);

    ASSERT_EQ(trace.lockContention().size(), 8u);
    const LockContention &c = trace.lockContention()[7];
    EXPECT_EQ(c.acquires, 1u);
    EXPECT_EQ(c.waits, 1u);
    EXPECT_EQ(c.wait_cycles, 75u);
    EXPECT_EQ(c.aborts_caused, 1u);
    EXPECT_EQ(
        trace.abortsByReason()[static_cast<size_t>(
            AbortReason::ReadConflict)],
        1u);
    EXPECT_EQ(
        trace.abortsByReason()[static_cast<size_t>(
            AbortReason::ValidationFail)],
        1u);
    EXPECT_EQ(trace.txLatency().count, 1u);
    EXPECT_EQ(trace.txLatency().sum, 1000u);
    EXPECT_EQ(trace.commitLatency().min, 100u);
    EXPECT_EQ(trace.readSetSize().max, 4u);
    EXPECT_EQ(trace.writeSetSize().max, 2u);
}

TEST(TraceRing, LogHistogramBucketsByBitWidth)
{
    LogHistogram h;
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(1024);
    EXPECT_EQ(h.buckets[0], 1u); // {0}
    EXPECT_EQ(h.buckets[1], 1u); // {1}
    EXPECT_EQ(h.buckets[2], 2u); // {2, 3}
    EXPECT_EQ(h.buckets[3], 1u); // {4..7}
    EXPECT_EQ(h.buckets[11], 1u); // {1024..2047}
    EXPECT_EQ(h.count, 6u);
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, 1024u);
    EXPECT_EQ(LogHistogram::bucketLow(11), 1024u);

    LogHistogram other;
    other.add(7);
    h.merge(other);
    EXPECT_EQ(h.count, 7u);
    EXPECT_EQ(h.buckets[3], 2u);
}

//
// The trace describes the simulation, not the host scheduler mode.
//

TEST(TraceSched, StmEventStreamIdenticalElidedVsAlwaysSwitch)
{
    runtime::RunSpec elided = tracedSpec(StmKind::TinyEtlWb);
    runtime::RunSpec switching = elided;
    switching.sim_always_switch = true;

    const auto a = runArrayBenchB(elided, 20);
    const auto b = runArrayBenchB(switching, 20);
    ASSERT_TRUE(a.trace && b.trace);
    EXPECT_EQ(a.trace->dropped(), 0u);
    EXPECT_EQ(b.trace->dropped(), 0u);

    // The host modes differ in scheduler events by construction...
    EXPECT_GT(b.trace->count(TxEvent::SchedSwitch),
              a.trace->count(TxEvent::SchedSwitch));

    // ...but the STM event streams must agree record for record.
    auto stmEvents = [](const TraceBuffer &t) {
        std::vector<TraceRecord> out;
        for (const TraceRecord &r : t.snapshot())
            if (!isSchedEvent(r.event))
                out.push_back(r);
        return out;
    };
    const auto ea = stmEvents(*a.trace);
    const auto eb = stmEvents(*b.trace);
    ASSERT_EQ(ea.size(), eb.size());
    ASSERT_FALSE(ea.empty());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].time, eb[i].time) << "record " << i;
        EXPECT_EQ(ea[i].tasklet, eb[i].tasklet) << "record " << i;
        EXPECT_EQ(ea[i].event, eb[i].event) << "record " << i;
        EXPECT_EQ(ea[i].arg, eb[i].arg) << "record " << i;
        EXPECT_EQ(ea[i].arg2, eb[i].arg2) << "record " << i;
    }
}

//
// Heatmap / histogram fidelity, all seven kinds.
//

class TraceFidelity : public ::testing::TestWithParam<StmKind>
{};

TEST_P(TraceFidelity, AggregatesMatchStmStats)
{
    const auto r = runArrayBenchB(tracedSpec(GetParam()), 20);
    ASSERT_TRUE(r.trace);
    const TraceBuffer &t = *r.trace;
    EXPECT_EQ(t.dropped(), 0u);

    EXPECT_EQ(t.count(TxEvent::Start), r.stm.starts);
    EXPECT_EQ(t.count(TxEvent::Commit), r.stm.commits);
    EXPECT_EQ(t.count(TxEvent::Abort), r.stm.aborts);
    EXPECT_EQ(t.count(TxEvent::Read), r.stm.reads);
    EXPECT_EQ(t.count(TxEvent::Write), r.stm.writes);
    EXPECT_EQ(t.abortsByReason(), r.stm.abort_reasons);

    // One histogram sample per commit; set sizes bounded by ArrayBench
    // B's transaction shape.
    EXPECT_EQ(t.txLatency().count, r.stm.commits);
    EXPECT_EQ(t.commitLatency().count, r.stm.commits);
    EXPECT_EQ(t.readSetSize().count, r.stm.commits);
    EXPECT_EQ(t.writeSetSize().count, r.stm.commits);
    if (r.stm.commits > 0) {
        EXPECT_GT(t.txLatency().min, 0u);
        EXPECT_LE(t.commitLatency().min, t.txLatency().max);
    }

    // Every heatmap abort attribution corresponds to a real abort.
    u64 attributed = 0;
    for (const LockContention &c : t.lockContention())
        attributed += c.aborts_caused;
    EXPECT_LE(attributed, r.stm.aborts);

    // Lock-acquire events carry their aggregate twin.
    u64 acquires = 0;
    for (const LockContention &c : t.lockContention())
        acquires += c.acquires;
    EXPECT_EQ(acquires, t.count(TxEvent::LockAcquire));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TraceFidelity,
                         ::testing::ValuesIn(allStmKinds()),
                         [](const auto &info) {
                             std::string n = stmKindName(info.param);
                             for (char &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

//
// Tracing is free when off and invisible when on.
//

TEST(TraceOff, TracedRunIsBitwiseIdenticalToUntraced)
{
    for (StmKind kind : {StmKind::NOrec, StmKind::VrEtlWb}) {
        runtime::RunSpec off = tracedSpec(kind);
        off.trace = false;
        const runtime::RunSpec on = tracedSpec(kind);

        const auto a = runArrayBenchB(off, 20);
        const auto b = runArrayBenchB(on, 20);
        EXPECT_FALSE(a.trace);
        ASSERT_TRUE(b.trace);

        EXPECT_EQ(a.dpu.total_cycles, b.dpu.total_cycles);
        EXPECT_EQ(a.dpu.instructions, b.dpu.instructions);
        EXPECT_EQ(a.dpu.mram_reads, b.dpu.mram_reads);
        EXPECT_EQ(a.dpu.mram_writes, b.dpu.mram_writes);
        EXPECT_EQ(a.dpu.atomic_acquires, b.dpu.atomic_acquires);
        EXPECT_EQ(a.dpu.atomic_stall_cycles, b.dpu.atomic_stall_cycles);
        EXPECT_EQ(a.dpu.phase_cycles, b.dpu.phase_cycles);
        EXPECT_EQ(a.stm.starts, b.stm.starts);
        EXPECT_EQ(a.stm.commits, b.stm.commits);
        EXPECT_EQ(a.stm.aborts, b.stm.aborts);
        EXPECT_EQ(a.stm.abort_reasons, b.stm.abort_reasons);
        EXPECT_EQ(a.stm.reads, b.stm.reads);
        EXPECT_EQ(a.stm.writes, b.stm.writes);
    }
}

//
// Perfetto export.
//

TEST(TracePerfetto, ExportIsValidJsonWithBalancedSpans)
{
    const auto r = runArrayBenchB(tracedSpec(StmKind::VrCtlWb), 20);
    ASSERT_TRUE(r.trace);

    std::ostringstream os;
    os << "[\n";
    bool first = true;
    r.trace->writePerfetto(os, 1, "test-run", first);
    os << "\n]\n";
    const std::string json = os.str();

    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);

    // Spans must balance or Perfetto reports unterminated slices.
    size_t begins = 0, ends = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
        const char ph = json[pos + 6];
        begins += ph == 'B';
        ends += ph == 'E';
        ++pos;
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);

    // Appending a second process keeps the array valid (the writer
    // streams many runs into one file).
    std::ostringstream multi;
    multi << "[";
    bool f2 = true;
    r.trace->writePerfetto(multi, 1, "run-a", f2);
    r.trace->writePerfetto(multi, 2, "run-b", f2);
    multi << "]";
    EXPECT_TRUE(JsonChecker(multi.str()).valid());
}

//
// Watchdog integration: the dump ends with the trace tail.
//

TEST(TraceWatchdog, ProgressDumpCarriesTraceTail)
{
    sim::DpuConfig dc;
    dc.mram_bytes = 1 << 20;
    sim::Dpu dpu(dc, sim::TimingConfig{});
    TraceBuffer trace(8);
    dpu.setTraceSink(&trace);
    dpu.addTasklet([](sim::DpuContext &ctx) {
        ctx.acquire(0);
        ctx.compute(100);
        ctx.acquire(1);
    });
    dpu.addTasklet([](sim::DpuContext &ctx) {
        ctx.acquire(1);
        ctx.compute(100);
        ctx.acquire(0);
    });
    try {
        dpu.run();
        FAIL() << "ABBA deadlock not detected";
    } catch (const sim::WatchdogError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("trace records"), std::string::npos) << what;
        EXPECT_NE(what.find("sched_stall"), std::string::npos) << what;
    }
    dpu.setTraceSink(nullptr);
}

//
// Process-wide totals.
//

TEST(TraceTotalsTest, AccumulateMergesRuns)
{
    const TraceTotals before = traceTotals();

    const auto r = runArrayBenchB(tracedSpec(StmKind::TinyCtlWb), 10);
    ASSERT_TRUE(r.trace);

    const TraceTotals after = traceTotals();
    EXPECT_EQ(after.runs, before.runs + 1);
    EXPECT_EQ(after.events[static_cast<size_t>(TxEvent::Commit)],
              before.events[static_cast<size_t>(TxEvent::Commit)] +
                  r.trace->count(TxEvent::Commit));
    EXPECT_EQ(after.tx_latency.count,
              before.tx_latency.count + r.trace->txLatency().count);
    EXPECT_GE(after.locks.size(), r.trace->lockContention().size());
}
