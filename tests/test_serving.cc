/**
 * @file
 * Serving-layer tests (runtime/serving.hh, docs/serving.md): the
 * arrival / popularity generators, the open-loop harness against a
 * deterministic stub backend, and the SLO arithmetic. Everything here
 * is host-pure and fiber-free (no sim::Dpu), so the Serving* suites
 * run under the TSan filter as well as ASan.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "runtime/serving.hh"
#include "util/rng.hh"

using namespace pimstm;
using namespace pimstm::runtime;

namespace
{

//
// Generators
//

TEST(ServingStream, DeterministicReplay)
{
    StreamConfig cfg;
    cfg.arrival.rate_per_s = 10e3;
    cfg.keys = 1024;
    cfg.op_weights = {0.5, 0.4, 0.1};
    cfg.seed = 42;

    const auto a = makeStream(cfg, 5000);
    const auto b = makeStream(cfg, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].value, b[i].value);
    }

    // A different seed perturbs every axis.
    cfg.seed = 43;
    const auto c = makeStream(cfg, 5000);
    size_t diff = 0;
    for (size_t i = 0; i < a.size(); ++i)
        diff += a[i].arrival_s != c[i].arrival_s ? 1 : 0;
    EXPECT_GT(diff, 4000u);
}

TEST(ServingStream, PoissonInterArrivalMoments)
{
    const double rate = 50e3;
    ArrivalConfig cfg;
    cfg.rate_per_s = rate;
    ArrivalProcess p(cfg, 7);

    const size_t n = 50000;
    double prev = 0;
    double sum = 0, sum_sq = 0;
    for (size_t i = 0; i < n; ++i) {
        const double t = p.next();
        ASSERT_GT(t, prev); // strictly increasing
        const double dt = t - prev;
        sum += dt;
        sum_sq += dt * dt;
        prev = t;
    }
    const double mean = sum / static_cast<double>(n);
    const double var =
        sum_sq / static_cast<double>(n) - mean * mean;
    // Exponential(rate): mean == std == 1/rate. 50k samples put the
    // sample moments well within 5%.
    EXPECT_NEAR(mean, 1.0 / rate, 0.05 / rate);
    EXPECT_NEAR(std::sqrt(var), 1.0 / rate, 0.05 / rate);
}

TEST(ServingStream, BurstyMatchesMeanRateAndOverdisperses)
{
    const double rate = 50e3;
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.rate_per_s = rate;
    ArrivalProcess p(cfg, 11);

    const size_t n = 200000;
    double prev = 0;
    double sum = 0, sum_sq = 0;
    for (size_t i = 0; i < n; ++i) {
        const double t = p.next();
        const double dt = t - prev;
        sum += dt;
        sum_sq += dt * dt;
        prev = t;
    }
    const double mean = sum / static_cast<double>(n);
    const double var =
        sum_sq / static_cast<double>(n) - mean * mean;
    // Long-run rate is calibrated to rate_per_s...
    EXPECT_NEAR(mean * rate, 1.0, 0.05);
    // ...but the process is burstier than Poisson: the squared
    // coefficient of variation of a Poisson stream is 1.
    const double cv2 = var / (mean * mean);
    EXPECT_GT(cv2, 1.3);
}

TEST(ServingStream, ZipfianSkewAndBounds)
{
    const u64 keys = 1000;
    ZipfianGenerator zipf(keys, 0.99);
    Rng rng(5);
    std::vector<u64> counts(keys, 0);
    const size_t n = 200000;
    for (size_t i = 0; i < n; ++i) {
        const u64 r = zipf.next(rng);
        ASSERT_LT(r, keys);
        ++counts[r];
    }
    // Rank 0 dominates any deep rank decisively.
    EXPECT_GT(counts[0], 20 * counts[500] + 1);
    // The hottest 1% of ranks draw a disproportionate share.
    u64 top = 0;
    for (size_t r = 0; r < keys / 100; ++r)
        top += counts[r];
    EXPECT_GT(static_cast<double>(top) / static_cast<double>(n), 0.2);

    // theta == 0 degrades to uniform: no rank stands out 3x.
    ZipfianGenerator uni(keys, 0.0);
    std::vector<u64> ucounts(keys, 0);
    for (size_t i = 0; i < n; ++i)
        ++ucounts[uni.next(rng)];
    const double expect = static_cast<double>(n) / keys;
    EXPECT_LT(ucounts[0], 3 * expect);
    EXPECT_GT(ucounts[keys - 1], expect / 3);
}

TEST(ServingStream, OpMixFollowsWeights)
{
    StreamConfig cfg;
    cfg.arrival.rate_per_s = 100e3;
    cfg.keys = 64;
    cfg.op_weights = {0.6, 0.3, 0.1};
    cfg.seed = 3;
    const auto stream = makeStream(cfg, 30000);
    u64 by_op[3] = {};
    for (const auto &r : stream) {
        ASSERT_LT(r.op, 3);
        ++by_op[r.op];
    }
    const double n = static_cast<double>(stream.size());
    EXPECT_NEAR(by_op[0] / n, 0.6, 0.02);
    EXPECT_NEAR(by_op[1] / n, 0.3, 0.02);
    EXPECT_NEAR(by_op[2] / n, 0.1, 0.02);
}

//
// Harness (stub backend: fixed per-item service + per-round overhead;
// no simulator involved).
//

class StubBackend : public ServingBackend
{
  public:
    StubBackend(unsigned shards, double per_item_s, double fixed_s)
        : shards_(shards), per_item_s_(per_item_s), fixed_s_(fixed_s)
    {
    }

    unsigned
    numShards() const override
    {
        return shards_;
    }

    unsigned
    shardOf(const ServingRequest &req) const override
    {
        return req.key % shards_;
    }

    RoundCost
    executeRound(
        const std::vector<std::vector<ServingRequest>> &batches)
        override
    {
        RoundCost c;
        c.shard_busy_seconds.assign(shards_, 0.0);
        double worst = 0;
        for (unsigned s = 0; s < shards_; ++s) {
            const double busy = per_item_s_
                * static_cast<double>(batches[s].size());
            c.shard_busy_seconds[s] = busy;
            worst = std::max(worst, busy);
            served_ += batches[s].size();
        }
        c.round_seconds = fixed_s_ + worst;
        ++rounds_;
        return c;
    }

    u64 served() const { return served_; }
    u64 rounds() const { return rounds_; }

  private:
    unsigned shards_;
    double per_item_s_;
    double fixed_s_;
    u64 served_ = 0;
    u64 rounds_ = 0;
};

ServingConfig
tightConfig()
{
    ServingConfig cfg;
    cfg.batch_budget_s = 200e-6;
    cfg.max_batch_per_shard = 4;
    cfg.queue_cap_per_shard = 8;
    return cfg;
}

TEST(ServingHarness, ConservationUnderOverload)
{
    // Service is far slower than arrivals and queues are tiny, so
    // admission control must shed — and account for every request.
    StubBackend backend(4, /*per_item_s=*/1e-3, /*fixed_s=*/1e-3);
    StreamConfig scfg;
    scfg.arrival.rate_per_s = 100e3;
    scfg.keys = 64;
    scfg.seed = 9;
    const auto stream = makeStream(scfg, 4000);

    const ServingReport rep =
        runServing(backend, stream, tightConfig());
    EXPECT_EQ(rep.offered, stream.size());
    EXPECT_GT(rep.shed, 0u);
    EXPECT_EQ(rep.offered, rep.completed + rep.shed);
    EXPECT_EQ(rep.completed, backend.served());
    EXPECT_EQ(rep.rounds, backend.rounds());

    // Shard-level conservation too.
    u64 offered = 0, completed = 0, shed = 0;
    for (const auto &sh : rep.shards) {
        offered += sh.offered;
        completed += sh.completed;
        shed += sh.shed;
        EXPECT_EQ(sh.offered, sh.completed + sh.shed);
        EXPECT_LE(sh.peak_queue, 8u);
    }
    EXPECT_EQ(offered, rep.offered);
    EXPECT_EQ(completed, rep.completed);
    EXPECT_EQ(shed, rep.shed);
}

TEST(ServingHarness, NoShedBelowCapacity)
{
    // 4 shards x 4-item batches every ~300us is far above the
    // offered 10k req/s: nothing is shed and every percentile is
    // bounded by budget + round time.
    StubBackend backend(4, /*per_item_s=*/5e-6, /*fixed_s=*/50e-6);
    StreamConfig scfg;
    scfg.arrival.rate_per_s = 10e3;
    scfg.keys = 64;
    scfg.seed = 4;
    const auto stream = makeStream(scfg, 2000);

    const ServingReport rep =
        runServing(backend, stream, tightConfig());
    EXPECT_EQ(rep.shed, 0u);
    EXPECT_EQ(rep.completed, stream.size());
    // Worst case: waits a full budget, then one round behind a full
    // round in flight. Generous cap in bucket space: 1 ms.
    EXPECT_LT(histogramPercentile(rep.e2e_ns, 0.999), 1000000u);
}

TEST(ServingHarness, DeterministicReplay)
{
    StreamConfig scfg;
    scfg.arrival.rate_per_s = 30e3;
    scfg.keys = 128;
    scfg.seed = 21;
    const auto stream = makeStream(scfg, 3000);

    StubBackend b1(8, 2e-5, 6e-5);
    StubBackend b2(8, 2e-5, 6e-5);
    const ServingReport r1 =
        runServing(b1, stream, tightConfig());
    const ServingReport r2 =
        runServing(b2, stream, tightConfig());
    // Bitwise-identical accounting, including the JSON rendering
    // (the perf-json gate depends on this).
    EXPECT_EQ(servingReportJson(r1), servingReportJson(r2));
    EXPECT_EQ(r1.makespan_s, r2.makespan_s);
    EXPECT_EQ(r1.rounds, r2.rounds);
}

TEST(ServingHarness, SingleRequestLatencyIsBudgetPlusRound)
{
    // One request, alone in the world: it waits out the full batch
    // budget, then one round of fixed + one-item service. The
    // histogram stores nanoseconds, so the percentile must return
    // the upper bound of that exact value's log2 bucket.
    StubBackend backend(2, /*per_item_s=*/100e-6, /*fixed_s=*/50e-6);
    std::vector<ServingRequest> stream(1);
    stream[0].arrival_s = 0.001;
    stream[0].key = 1;

    ServingConfig cfg;
    cfg.batch_budget_s = 200e-6;
    cfg.max_batch_per_shard = 4;
    cfg.queue_cap_per_shard = 8;
    const ServingReport rep = runServing(backend, stream, cfg);

    ASSERT_EQ(rep.completed, 1u);
    // latency = 200us budget + 150us round = 350'000 ns; bucket
    // [2^18, 2^19) has inclusive upper bound 524287.
    const u64 expect_bucket_hi = (u64{1} << 19) - 1;
    EXPECT_EQ(histogramPercentile(rep.e2e_ns, 0.50), expect_bucket_hi);
    EXPECT_EQ(histogramPercentile(rep.e2e_ns, 0.99), expect_bucket_hi);
    EXPECT_EQ(rep.e2e_ns.count, 1u);
    EXPECT_EQ(rep.e2e_ns.min, 350000u);
    EXPECT_EQ(rep.e2e_ns.max, 350000u);
}

//
// SLO arithmetic
//

TEST(ServingSlo, PercentileAgainstHandComputedHistogram)
{
    core::LogHistogram h;
    for (int i = 0; i < 10; ++i)
        h.add(100); // bucket bit_width(100)=7, upper bound 127
    for (int i = 0; i < 89; ++i)
        h.add(1000); // bucket 10, upper bound 1023
    h.add(1000000); // bucket 20, upper bound 1048575

    // count=100: p50 -> 50th sample (1000s), p90 -> 90th (1000s),
    // p99 -> 99th (1000s), p999 -> ceil(99.9)=100th (the outlier).
    EXPECT_EQ(histogramPercentile(h, 0.10), 127u);
    EXPECT_EQ(histogramPercentile(h, 0.50), 1023u);
    EXPECT_EQ(histogramPercentile(h, 0.99), 1023u);
    EXPECT_EQ(histogramPercentile(h, 0.999), 1048575u);

    core::LogHistogram empty;
    EXPECT_EQ(histogramPercentile(empty, 0.99), 0u);
}

TEST(ServingSlo, MeetsSloRespectsShedAndP99)
{
    ServingReport r;
    r.e2e_ns.add(100000); // p99 bucket upper bound 131071 ns
    SloSpec slo;
    slo.p99_s = 1e-3;
    EXPECT_TRUE(meetsSlo(r, slo));

    r.shed = 1;
    EXPECT_FALSE(meetsSlo(r, slo));
    slo.require_zero_shed = false;
    EXPECT_TRUE(meetsSlo(r, slo));

    slo.p99_s = 100e-9; // tighter than the bucket bound
    EXPECT_FALSE(meetsSlo(r, slo));
}

TEST(ServingSlo, CapacitySearchFindsTheKnee)
{
    // Synthetic system with a hard knee at 100k req/s.
    auto run = [](double rate) {
        ServingReport r;
        r.e2e_ns.add(rate <= 100e3 ? 100000u : 10000000u);
        r.completed = 1;
        r.makespan_s = 1.0;
        return r;
    };
    SloSpec slo;
    slo.p99_s = 1e-3;
    const CapacityResult res =
        findCapacity(run, slo, /*lo_rate=*/10e3, /*max_rate=*/1e6);
    EXPECT_GT(res.capacity_per_s, 99e3);
    EXPECT_LE(res.capacity_per_s, 100e3);
    // Probes: strictly below the knee all pass, above all fail.
    for (const auto &p : res.probes)
        EXPECT_EQ(p.ok, p.rate_per_s <= 100e3);

    // A floor above the knee reports no capacity.
    const CapacityResult none =
        findCapacity(run, slo, 200e3, 1e6);
    EXPECT_EQ(none.capacity_per_s, 0.0);
}

} // namespace
