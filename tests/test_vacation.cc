/**
 * @file
 * Tests for the Vacation extension workload: reservation conservation
 * across the STM matrix, action accounting, and determinism.
 */

#include <gtest/gtest.h>

#include "runtime/driver.hh"
#include "workloads/vacation.hh"

using namespace pimstm;
using namespace pimstm::core;
using namespace pimstm::runtime;
using namespace pimstm::workloads;

namespace
{

class VacationAll : public testing::TestWithParam<StmKind>
{
};

std::string
kindName(const testing::TestParamInfo<StmKind> &info)
{
    std::string s = stmKindName(info.param);
    for (auto &c : s)
        if (c == ' ')
            c = '_';
    return s;
}

RunSpec
spec(StmKind kind, unsigned tasklets, u64 seed = 13)
{
    RunSpec s;
    s.kind = kind;
    s.tasklets = tasklets;
    s.seed = seed;
    s.mram_bytes = 8 * 1024 * 1024;
    return s;
}

} // namespace

TEST_P(VacationAll, LowContentionConservesInventory)
{
    Vacation wl(VacationParams::lowContention(25));
    // verify() enforces conservation; a clean run is the assertion.
    const auto r = runWorkload(wl, spec(GetParam(), 6));
    EXPECT_EQ(r.stm.commits, 6u * 25u);
    EXPECT_GT(r.extra.at("reservations"), 0.0);
}

TEST_P(VacationAll, HighContentionConservesInventory)
{
    Vacation wl(VacationParams::highContention(25));
    const auto r = runWorkload(wl, spec(GetParam(), 8));
    EXPECT_EQ(r.stm.commits, 8u * 25u);
    // 8 hot items across 8 tasklets: contention must be visible.
    EXPECT_GT(r.stm.starts, r.stm.commits);
}

TEST_P(VacationAll, WramMetadataWorks)
{
    Vacation wl(VacationParams::highContention(15));
    RunSpec s = spec(GetParam(), 4);
    s.tier = MetadataTier::Wram;
    const auto r = runWorkload(wl, s);
    EXPECT_EQ(r.stm.commits, 4u * 15u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, VacationAll,
                         testing::ValuesIn(allStmKinds()), kindName);

TEST(VacationTest, ActionMixFollowsRatios)
{
    VacationParams p = VacationParams::lowContention(200);
    p.reserve_ratio = 0.5;
    p.delete_ratio = 0.25;
    Vacation wl(p);
    const auto r = runWorkload(wl, spec(StmKind::NOrec, 4, 7));
    // updates always "succeed"; their count reflects the mix within
    // binomial noise (~25% of 800 ops).
    const double updates = r.extra.at("updates");
    EXPECT_GT(updates, 800 * 0.25 * 0.7);
    EXPECT_LT(updates, 800 * 0.25 * 1.3);
}

TEST(VacationTest, CustomersEventuallyFillUp)
{
    // With no deletes, reservations saturate customer slots and then
    // every further attempt is a committed no-op — inventory must
    // still balance (verify) and successes must be bounded by slots.
    VacationParams p = VacationParams::lowContention(120);
    p.reserve_ratio = 1.0;
    p.delete_ratio = 0.0;
    p.customers = 4;
    p.slots_per_customer = 6; // 4*6 = 24 slots = 8 reservations max
    Vacation wl(p);
    const auto r = runWorkload(wl, spec(StmKind::TinyEtlWb, 4, 9));
    EXPECT_LE(r.extra.at("reservations"), 8.0);
    EXPECT_GT(r.extra.at("reservations"), 0.0);
}

TEST(VacationTest, DeterministicReplay)
{
    auto run_once = [] {
        Vacation wl(VacationParams::highContention(20));
        const auto r = runWorkload(wl, spec(StmKind::VrEtlWb, 5, 3));
        return std::make_tuple(r.dpu.total_cycles, r.stm.aborts,
                               r.extra.at("reservations"));
    };
    EXPECT_EQ(run_once(), run_once());
}
